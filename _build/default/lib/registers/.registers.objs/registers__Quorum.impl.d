lib/registers/quorum.ml: List Messages
