test/test_kv.ml: Alcotest Array Byzantine Harness Kv List Oracles Printf Registers Sim Util
