lib/sim/fault.mli: Engine Rng Vtime
