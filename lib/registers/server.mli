(** The server automaton — lines 19–23 of Figs. 2/3/5, shared verbatim by
    all constructions.

    A server keeps, {e per register instance}, its internal representation
    of the register: [last_val] (the last written value it knows) and
    [helping_val] (the value frozen for a reader whose read is overrun by
    writes; [None] is the paper's [⊥]).  Instances are created on demand
    with arbitrary ([bot]) content, which is exactly the self-stabilization
    setting: the initial configuration is untrusted. *)

type instance = { mutable last_val : Messages.cell; mutable helping : Messages.help }

type t

val create : id:int -> t

val id : t -> int

val handle : t -> Messages.server_envelope -> Messages.to_client option
(** Process one ss-delivered message and return the acknowledgment to send
    back to the emitting client, if any:
    - [Write c]: store [c] in [last_val]; ack with the current helping value
      (lines 19–20).
    - [New_help c]: store [Some c] in [helping_val]; no ack (line 21).
    - [Read new]: reset [helping_val] to [⊥] when [new]; ack with
      [(last_val, helping_val)] (lines 22–23). *)

val instance : t -> int -> instance
(** The state for a register instance (created with [bot] content on first
    access). *)

val instances : t -> (int * instance) list

val reset : t -> unit
(** Crash-recovery wipe: every instance back to pristine [bot] content —
    what a server that lost its volatile state rejoins with. *)

val corrupt : t -> Sim.Rng.t -> unit
(** Transient fault: overwrite every instance's variables with arbitrary
    cells (and an arbitrary choice of [⊥]/non-[⊥] helping value). *)
