(* Export to the Chrome trace_event JSON format (the "JSON Object
   Format": {"traceEvents":[...]}), loadable in Perfetto / chrome://tracing.

   Mapping: every causal span becomes one complete ("X") slice spanning
   its subtree's first..last event, placed on the thread of the peer that
   owns the span (the client for operation and broadcast-round spans, the
   server for reply spans); span-less fault/mark/stabilized events become
   instant ("i") events.  Virtual-clock ticks are exported 1:1 as
   microseconds. *)

type owner = Peer of Event.peer | Ambient

(* Disjoint, deterministic thread ids: servers on odd, clients on even. *)
let tid_of_owner = function
  | Ambient -> 0
  | Peer (Event.Server i) -> (2 * i) + 1
  | Peer (Event.Client i) -> (2 * i) + 2

let owner_name = function
  | Ambient -> "(ambient)"
  | Peer (Event.Client i) -> Printf.sprintf "c%d" i
  | Peer (Event.Server i) -> Printf.sprintf "s%d" i

let span_owner (t : Tracefile.tree) =
  match t.Tracefile.events with
  | Event.Op_invoke _ :: _ -> (
    (* The op span belongs to the invoking client; recover the peer from
       the first message the operation sent. *)
    match
      List.find_map
        (fun e ->
          match e with
          | Event.Send { src; _ } -> Some (Peer src)
          | Event.Recv _ | Event.Drop _ | Event.Op_invoke _
          | Event.Op_return _ | Event.Phase _ | Event.Fault_injected _
          | Event.Stabilized _ | Event.Mark _ -> None)
        (List.concat_map (fun c -> c.Tracefile.events) t.Tracefile.children)
    with
    | Some o -> o
    | None -> Ambient)
  | Event.Send { src; _ } :: _ -> Peer src
  | Event.Recv { dst; _ } :: _ -> Peer dst
  | Event.Phase { server; _ } :: _ -> Peer (Event.Server server)
  | ( Event.Drop _ | Event.Op_return _ | Event.Fault_injected _
    | Event.Stabilized _ | Event.Mark _ )
    :: _
  | [] -> Ambient

let slice ~name ~cat ~ts ~dur ~tid ~args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "X");
      ("ts", Json.Int ts);
      ("dur", Json.Int dur);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let instant ~name ~cat ~ts =
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "i");
      ("ts", Json.Int ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int 0);
      ("s", Json.Str "g");
    ]

let thread_meta ~tid ~name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let to_json events =
  let trees = Tracefile.trees events in
  let threads = ref [] in
  let note_thread o =
    let tid = tid_of_owner o in
    if not (List.mem_assoc tid !threads) then
      threads := (tid, owner_name o) :: !threads
  in
  let slices = ref [] in
  let rec walk t =
    let o = span_owner t in
    note_thread o;
    let lo, hi = Tracefile.span_interval t in
    slices :=
      slice ~name:(Tracefile.span_label t) ~cat:"span" ~ts:lo ~dur:(hi - lo)
        ~tid:(tid_of_owner o)
        ~args:
          [
            ("trace", Json.Int t.Tracefile.trace);
            ("span", Json.Int t.Tracefile.span);
            ("parent", Json.Int t.Tracefile.parent);
          ]
      :: !slices;
    List.iter walk t.Tracefile.children
  in
  List.iter walk trees;
  let instants =
    List.filter_map
      (fun e ->
        match e with
        | Event.Fault_injected { time; target; _ } ->
          Some (instant ~name:("fault " ^ target) ~cat:"fault" ~ts:time)
        | Event.Stabilized { time } ->
          Some (instant ~name:"stabilized" ~cat:"milestone" ~ts:time)
        | Event.Mark { time; label } ->
          Some (instant ~name:label ~cat:"mark" ~ts:time)
        | Event.Send _ | Event.Recv _ | Event.Drop _ | Event.Op_invoke _
        | Event.Op_return _ | Event.Phase _ -> None)
      events
  in
  let metas =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) !threads
    |> List.map (fun (tid, name) -> thread_meta ~tid ~name)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ List.rev !slices @ instants));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* --- validation ------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let int_field ctx key j =
  match Json.member key j with
  | Some v -> (
    match Json.to_int_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s.%s: expected an integer" ctx key))
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let str_field ctx key j =
  match Json.member key j with
  | Some v -> (
    match Json.to_string_opt v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "%s.%s: expected a string" ctx key))
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let validate_entry ctx j =
  let* ph = str_field ctx "ph" j in
  let* _ = int_field ctx "pid" j in
  let* _ = int_field ctx "tid" j in
  match ph with
  | "X" ->
    let* _ = str_field ctx "name" j in
    let* ts = int_field ctx "ts" j in
    let* dur = int_field ctx "dur" j in
    if ts < 0 || dur < 0 then Error (ctx ^ ": negative ts/dur") else Ok ()
  | "i" ->
    let* _ = str_field ctx "name" j in
    let* _ = int_field ctx "ts" j in
    let* _ = str_field ctx "s" j in
    Ok ()
  | "M" ->
    let* _ = str_field ctx "name" j in
    Ok ()
  | other -> Error (Printf.sprintf "%s: unexpected phase %S" ctx other)

let validate j =
  let* events =
    match Json.member "traceEvents" j with
    | Some v -> (
      match Json.to_list_opt v with
      | Some l -> Ok l
      | None -> Error "traceEvents: expected a list")
    | None -> Error "missing field \"traceEvents\""
  in
  let rec go i = function
    | [] -> Ok ()
    | e :: rest ->
      let* () = validate_entry (Printf.sprintf "traceEvents[%d]" i) e in
      go (i + 1) rest
  in
  go 0 events
