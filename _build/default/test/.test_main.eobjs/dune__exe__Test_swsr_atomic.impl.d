test/test_swsr_atomic.ml: Alcotest Byzantine Harness List Oracles Printf Registers Sim Swsr_atomic Util Value
