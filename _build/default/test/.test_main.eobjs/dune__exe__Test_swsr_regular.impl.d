test/test_swsr_regular.ml: Alcotest Byzantine Harness List Oracles Printf Registers Sim Swsr_regular Util Value
