type cell = { sn : Seqnum.t; v : Value.t }

let cell_equal c1 c2 = c1.sn = c2.sn && Value.equal c1.v c2.v

let bot_cell = { sn = Seqnum.zero; v = Value.bot }

type help = cell option

let help_equal h1 h2 =
  match (h1, h2) with
  | None, None -> true
  | Some c1, Some c2 -> cell_equal c1 c2
  | (None | Some _), _ -> false

type to_server = Write of cell | New_help of cell | Read of bool

type to_client = Ack_write of help | Ack_read of cell * help

type server_envelope = {
  round : int;
  client : int;
  inst : int;
  body : to_server;
  span : Obs.Trace_ctx.span;
}

type client_envelope = {
  round : int;
  server : int;
  body : to_client;
  span : Obs.Trace_ctx.span;
}

let pp_cell ppf c = Format.fprintf ppf "(%a,%a)" Seqnum.pp c.sn Value.pp c.v

let pp_help ppf = function
  | None -> Format.pp_print_string ppf "⊥"
  | Some c -> pp_cell ppf c

let pp_to_server ppf = function
  | Write c -> Format.fprintf ppf "WRITE%a" pp_cell c
  | New_help c -> Format.fprintf ppf "NEW_HELP_VAL%a" pp_cell c
  | Read b -> Format.fprintf ppf "READ(%b)" b

let pp_to_client ppf = function
  | Ack_write h -> Format.fprintf ppf "ACK_WRITE(%a)" pp_help h
  | Ack_read (c, h) ->
    Format.fprintf ppf "ACK_READ(%a,%a)" pp_cell c pp_help h

let class_of_to_server : to_server -> Obs.Event.msg_class = function
  | Write _ -> Obs.Event.Write
  | New_help _ -> Obs.Event.New_help
  | Read _ -> Obs.Event.Read

let class_of_to_client : to_client -> Obs.Event.msg_class = function
  | Ack_write _ -> Obs.Event.Ack_write
  | Ack_read _ -> Obs.Event.Ack_read

let cell_bytes c = 8 + Value.wire_bytes c.v

let help_bytes = function None -> 1 | Some c -> 1 + cell_bytes c

(* 1-byte constructor tag + payload; envelope headers count their integer
   fields at 4 bytes each. *)
let to_server_bytes = function
  | Write c | New_help c -> 1 + cell_bytes c
  | Read _ -> 2

let to_client_bytes = function
  | Ack_write h -> 1 + help_bytes h
  | Ack_read (c, h) -> 1 + cell_bytes c + help_bytes h

let server_envelope_bytes (env : server_envelope) = 12 + to_server_bytes env.body

let client_envelope_bytes (env : client_envelope) = 8 + to_client_bytes env.body

let arbitrary_cell rng =
  { sn = Sim.Rng.int rng 1024; v = Value.arbitrary rng }
