lib/registers/messages.mli: Format Seqnum Sim Value
