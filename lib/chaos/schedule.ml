type direction = To_servers | From_servers | Both

type event =
  | Inject of { at : int; prefix : string }
  | Roam of { at : int; assign : (int * Strategy.t) list }
  | Window of {
      at : int;
      duration : int;
      loss : float;
      dup : float;
      dir : direction;
      server : int option;
    }
  | Crash of { at : int; server : int; down_for : int option }

type t = event list

let time = function
  | Inject { at; _ } | Roam { at; _ } | Window { at; _ } | Crash { at; _ } ->
    at

let sort events =
  List.stable_sort (fun a b -> Int.compare (time a) (time b)) events

let disturbance_points events =
  events
  |> List.concat_map (function
       | Inject { at; _ } | Roam { at; _ } -> [ at ]
       | Window { at; duration; _ } -> [ at; at + duration ]
       | Crash { at; down_for = None; _ } -> [ at ]
       | Crash { at; down_for = Some d; _ } -> [ at; at + d ])
  |> List.sort_uniq Int.compare

let direction_to_string = function
  | To_servers -> "to_servers"
  | From_servers -> "from_servers"
  | Both -> "both"

let direction_of_string = function
  | "to_servers" -> Ok To_servers
  | "from_servers" -> Ok From_servers
  | "both" -> Ok Both
  | s -> Error (Printf.sprintf "unknown window direction %S" s)

let event_to_json = function
  | Inject { at; prefix } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "inject");
        ("at", Obs.Json.Int at);
        ("prefix", Obs.Json.Str prefix);
      ]
  | Roam { at; assign } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "roam");
        ("at", Obs.Json.Int at);
        ( "assign",
          Obs.Json.List
            (List.map
               (fun (slot, s) ->
                 Obs.Json.Obj
                   [
                     ("slot", Obs.Json.Int slot);
                     ("strategy", Obs.Json.Str (Strategy.to_string s));
                   ])
               assign) );
      ]
  | Window { at; duration; loss; dup; dir; server } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "window");
        ("at", Obs.Json.Int at);
        ("duration", Obs.Json.Int duration);
        ("loss", Obs.Json.Float loss);
        ("dup", Obs.Json.Float dup);
        ("dir", Obs.Json.Str (direction_to_string dir));
        ( "server",
          match server with
          | Some s -> Obs.Json.Int s
          | None -> Obs.Json.Null );
      ]
  | Crash { at; server; down_for } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "crash");
        ("at", Obs.Json.Int at);
        ("server", Obs.Json.Int server);
        ( "down_for",
          match down_for with
          | Some d -> Obs.Json.Int d
          | None -> Obs.Json.Null );
      ]

let to_json events = Obs.Json.List (List.map event_to_json events)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ctx key j =
  match Obs.Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let as_int ctx j =
  match Obs.Json.to_int_opt j with
  | Some i -> Ok i
  | None -> Error (ctx ^ ": expected an integer")

let as_float ctx j =
  match Obs.Json.to_float_opt j with
  | Some x -> Ok x
  | None -> Error (ctx ^ ": expected a number")

let as_string ctx j =
  match Obs.Json.to_string_opt j with
  | Some s -> Ok s
  | None -> Error (ctx ^ ": expected a string")

let assign_of_json ctx j =
  match Obs.Json.to_list_opt j with
  | None -> Error (ctx ^ ": expected a list")
  | Some items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* slot = field ctx "slot" item in
        let* slot = as_int (ctx ^ ".slot") slot in
        let* s = field ctx "strategy" item in
        let* s = as_string (ctx ^ ".strategy") s in
        let* s = Strategy.of_string s in
        Ok ((slot, s) :: acc))
      (Ok []) items
    |> Result.map List.rev

let event_of_json j =
  let* kind = field "event" "kind" j in
  let* kind = as_string "event.kind" kind in
  let* at = field "event" "at" j in
  let* at = as_int "event.at" at in
  match kind with
  | "inject" ->
    let* prefix = field "inject" "prefix" j in
    let* prefix = as_string "inject.prefix" prefix in
    Ok (Inject { at; prefix })
  | "roam" ->
    let* assign = field "roam" "assign" j in
    let* assign = assign_of_json "roam.assign" assign in
    Ok (Roam { at; assign })
  | "window" ->
    let* duration = field "window" "duration" j in
    let* duration = as_int "window.duration" duration in
    let* loss = field "window" "loss" j in
    let* loss = as_float "window.loss" loss in
    let* dup = field "window" "dup" j in
    let* dup = as_float "window.dup" dup in
    let* dir = field "window" "dir" j in
    let* dir = as_string "window.dir" dir in
    let* dir = direction_of_string dir in
    let* server =
      match Obs.Json.member "server" j with
      | None | Some Obs.Json.Null -> Ok None
      | Some s ->
        let* s = as_int "window.server" s in
        Ok (Some s)
    in
    Ok (Window { at; duration; loss; dup; dir; server })
  | "crash" ->
    let* server = field "crash" "server" j in
    let* server = as_int "crash.server" server in
    let* down_for =
      match Obs.Json.member "down_for" j with
      | None | Some Obs.Json.Null -> Ok None
      | Some d ->
        let* d = as_int "crash.down_for" d in
        Ok (Some d)
    in
    Ok (Crash { at; server; down_for })
  | k -> Error (Printf.sprintf "unknown event kind %S" k)

let of_json j =
  match Obs.Json.to_list_opt j with
  | None -> Error "schedule: expected a list"
  | Some items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* ev = event_of_json item in
        Ok (ev :: acc))
      (Ok []) items
    |> Result.map (fun evs -> sort (List.rev evs))

let event_equal a b =
  match (a, b) with
  | Inject a, Inject b -> a.at = b.at && String.equal a.prefix b.prefix
  | Roam a, Roam b ->
    a.at = b.at
    && List.length a.assign = List.length b.assign
    && List.for_all2
         (fun (sa, ta) (sb, tb) -> sa = sb && Strategy.equal ta tb)
         a.assign b.assign
  | Window a, Window b ->
    a.at = b.at && a.duration = b.duration
    && Float.equal a.loss b.loss
    && Float.equal a.dup b.dup
    && a.dir = b.dir && a.server = b.server
  | Crash a, Crash b ->
    a.at = b.at && a.server = b.server && a.down_for = b.down_for
  | (Inject _ | Roam _ | Window _ | Crash _), _ -> false

let equal a b =
  List.length a = List.length b && List.for_all2 event_equal a b

let pp_event fmt = function
  | Inject { at; prefix } ->
    Format.fprintf fmt "@%d inject %S" at
      (if prefix = "" then "*" else prefix)
  | Roam { at; assign } ->
    Format.fprintf fmt "@%d roam {%s}" at
      (String.concat ", "
         (List.map
            (fun (slot, s) ->
              Printf.sprintf "s%d:%s" slot (Strategy.to_string s))
            assign))
  | Window { at; duration; loss; dup; dir; server } ->
    Format.fprintf fmt "@%d window %dt loss=%g dup=%g %s%s" at duration loss
      dup
      (direction_to_string dir)
      (match server with
      | Some s -> Printf.sprintf " s%d" s
      | None -> "")
  | Crash { at; server; down_for } ->
    Format.fprintf fmt "@%d crash s%d%s" at server
      (match down_for with
      | Some d -> Printf.sprintf " (recover +%d)" d
      | None -> " (stop)")
