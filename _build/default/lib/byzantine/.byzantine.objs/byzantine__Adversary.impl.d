lib/byzantine/adversary.ml: Array Behavior Int List Net Params Registers Server Sim
