type span = { trace : int; id : int; parent : int }

type t = { mutable next : int }

let none = { trace = 0; id = 0; parent = 0 }

let is_none s = s.id = 0

let create () = { next = 1 }

let root t =
  let id = t.next in
  t.next <- id + 1;
  { trace = id; id; parent = 0 }

let child t parent =
  if is_none parent then root t
  else begin
    let id = t.next in
    t.next <- id + 1;
    { trace = parent.trace; id; parent = parent.id }
  end

let allocated t = t.next - 1

let pp ppf s =
  if is_none s then Format.pp_print_string ppf "span:-"
  else Format.fprintf ppf "span:%d/%d<-%d" s.trace s.id s.parent

let fields s =
  [
    ("trace", Json.Int s.trace);
    ("span", Json.Int s.id);
    ("parent", Json.Int s.parent);
  ]
