lib/sim/mailbox.mli: Engine Vtime
