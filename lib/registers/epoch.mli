(** Bounded epoch labels (§5.2; Alon, Attiya, Dolev, Dubois,
    Potop-Butucaru, Tixeuil, SSS'11).

    Fix [k > 1] and [K = k^2 + 1].  An epoch is a pair [(s, A)] with
    [s] in [X = {1..K}] and [A] a [k]-subset of [X].  The comparison
    [(s_i,A_i) > (s_j,A_j)] iff [s_j ∈ A_i  ∧  s_i ∉ A_j] is antisymmetric
    but {e partial}: [next_epoch] can always manufacture a label greater
    than any [k] given labels, which is what the MWMR construction needs
    when sequence numbers exhaust or corruption destroys comparability. *)

type t = { s : int; a : int list }
(** [a] is sorted, duplicate-free.  Transient faults may produce values
    violating the well-formedness invariants; all operations below are
    total and treat such values defensively. *)

val capacity : k:int -> int
(** [K = k*k + 1], the size of the ground set [X]. *)

val genesis : k:int -> t
(** A fixed well-formed epoch: [(1, {2..k+1})]. *)

val is_wellformed : k:int -> t -> bool

val equal : t -> t -> bool

val compare_structural : t -> t -> int
(** A {e total} structural order ([s], then [a] lexicographically),
    consistent with [equal].  This is not the semantic (partial) epoch
    order {!gt}; it exists so containers and typed comparators over
    values carrying epochs never fall back to polymorphic compare. *)

val gt : t -> t -> bool
(** The partial order [>]: [gt ei ej] iff [ej.s ∈ ei.a  ∧  ei.s ∉ ej.a]. *)

val ge : t -> t -> bool
(** [gt] or structural equality. *)

val max_epoch : t list -> t option
(** The element [>=] all others, if one exists (the paper's
    [max_epoch] predicate/selector). *)

val next_epoch : k:int -> t list -> t
(** An epoch [>] every one of the (at most [k]) given epochs: [s] is a
    ground-set element in none of their [a]-sets, and [a] contains all
    their [s]-components, padded deterministically to size [k].
    Out-of-range components of corrupted inputs are ignored.
    Raises [Invalid_argument] if more than [k] epochs are given. *)

val arbitrary : Sim.Rng.t -> k:int -> t
(** A random (well-formed) epoch, for fault injection. *)

val pp : Format.formatter -> t -> unit
