lib/history/atomicity.ml: Format Hashtbl History Int List Printf Registers Regularity Sim
