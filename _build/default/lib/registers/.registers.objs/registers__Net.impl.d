lib/registers/net.ml: Array Format Int List Messages Params Printf Server Sim Ss_transport
