type reason = {
  attempts : int;
  acks : int;
  need : int;
  suspects : int list;
}

type 'a t = Ok of 'a | Degraded of reason | Timed_out of reason

let no_reason = { attempts = 0; acks = 0; need = 0; suspects = [] }

let is_ok = function Ok _ -> true | Degraded _ | Timed_out _ -> false

let to_option = function Ok v -> Some v | Degraded _ | Timed_out _ -> None

let map f = function
  | Ok v -> Ok (f v)
  | Degraded r -> Degraded r
  | Timed_out r -> Timed_out r

let reason = function
  | Ok _ -> None
  | Degraded r | Timed_out r -> Some r

let rank = function Ok _ -> 0 | Degraded _ -> 1 | Timed_out _ -> 2

let kind = function
  | Ok _ -> "ok"
  | Degraded _ -> "degraded"
  | Timed_out _ -> "timeout"

(* Merge two failure diagnoses: the deepest retry effort, the weakest
   service level actually seen, the union of suspicions. *)
let merge_reason a b =
  {
    attempts = max a.attempts b.attempts;
    acks = min a.acks b.acks;
    need = max a.need b.need;
    suspects = List.sort_uniq Int.compare (a.suspects @ b.suspects);
  }

(* Worst of two outcomes (for composite operations spanning several
   sub-operations, e.g. a SWMR write into every copy).  Keeps [a]'s value
   on ties of rank; failure reasons merge. *)
let worse a b =
  match (a, b) with
  | Ok _, _ -> b
  | _, Ok _ -> a
  | Degraded ra, Degraded rb -> Degraded (merge_reason ra rb)
  | (Degraded ra | Timed_out ra), (Degraded rb | Timed_out rb) ->
    Timed_out (merge_reason ra rb)

let pp_reason ppf r =
  Format.fprintf ppf "{attempts=%d; acks=%d/%d%s}" r.attempts r.acks r.need
    (match r.suspects with
    | [] -> ""
    | l ->
      Printf.sprintf "; suspects=[%s]"
        (String.concat "," (List.map string_of_int l)))

let pp pp_v ppf = function
  | Ok v -> Format.fprintf ppf "Ok %a" pp_v v
  | Degraded r -> Format.fprintf ppf "Degraded %a" pp_reason r
  | Timed_out r -> Format.fprintf ppf "Timed_out %a" pp_reason r

let reason_to_json r =
  Obs.Json.Obj
    [
      ("attempts", Obs.Json.Int r.attempts);
      ("acks", Obs.Json.Int r.acks);
      ("need", Obs.Json.Int r.need);
      ("suspects", Obs.Json.List (List.map (fun s -> Obs.Json.Int s) r.suspects));
    ]
