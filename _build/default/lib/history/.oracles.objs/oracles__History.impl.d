lib/history/history.ml: Format List Registers Sim
