examples/scoreboard.ml: Array Harness Mwmr Params Printf Registers Sim Value
