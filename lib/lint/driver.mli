(** The stablint driver: parse, run rules, suppress, aggregate.

    [scan] is what [bin/lint.exe] and the self-lint test use; the
    [lint_source]/[lint_file] entry points let fixture tests target one
    rule at one file without directory-scoping getting in the way. *)

type file_result = { findings : Finding.t list; suppressed : int }

val lint_source :
  rules:Rule.t list ->
  scope:Rule.scope ->
  file:string ->
  string ->
  file_result
(** Run the AST rules of [rules] that apply to [scope] over one source
    text; [file] is the display path used in findings.  A file that does
    not parse yields a single [PARSE] finding. *)

val lint_file :
  rules:Rule.t list ->
  ?scope:Rule.scope ->
  ?display:string ->
  string ->
  file_result
(** Read and lint one file.  [scope] defaults to [Rule.classify display];
    [display] defaults to the given path. *)

type scan_result = {
  files_scanned : int;
  findings : Finding.t list;  (** canonical order, suppressions applied *)
  suppressed : int;
}

val scan :
  ?rules:Rule.t list -> root:string -> paths:string list -> unit -> scan_result
(** Walk [root/<path>] for every [path] in [paths], lint every [.ml]
    (skipping [_build]-style and hidden directories), and run tree rules
    (mli coverage) over the collected file list.  [rules] defaults to
    {!Rules.all}.  The scan order — and therefore the report — is
    deterministic: files are visited in sorted path order and findings
    are sorted canonically. *)

val parse_rule_id : string
(** The pseudo rule id used for files that fail to parse. *)
