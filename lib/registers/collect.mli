(** Waiting for acknowledgments from distinct servers (the [wait]
    statements of lines 02 and 11).

    Only acknowledgments tagged with the port's current round are
    considered (see {!Net} on the round tag); at most one acknowledgment
    per server counts, per the paper's "from (n-t) {e different} servers".
    In async mode the wait blocks until [Params.ack_wait] distinct servers
    answered; in sync mode it collects until all [n] answered or the
    round-trip timeout elapses (lines 02.M / 11.M of Fig. 5). *)

val acks :
  net:Net.t ->
  port:Net.client_port ->
  round:int ->
  filter:(Messages.to_client -> 'a option) ->
  'a list
(** [acks ~net ~port ~round ~filter] returns the filtered payloads
    collected, in server-id order.  [round] is the tag returned by the
    {!Net.ss_broadcast} this wait answers.  [filter] selects/decodes the
    expected acknowledgment kind; non-matching bodies from a server are
    ignored (a Byzantine server may send anything). *)

val ack_writes :
  net:Net.t -> port:Net.client_port -> round:int -> Messages.help list
(** Collect ACK_WRITE payloads (helping values). *)

val ack_reads :
  net:Net.t ->
  port:Net.client_port ->
  round:int ->
  (Messages.cell * Messages.help) list
(** Collect ACK_READ payloads ((last_val, helping_val) pairs). *)

(** {2 Deadline-bounded attempts}

    When the deployment's {!Params.retry} policy is installed, waits are
    bounded: each {e attempt} collects until its target count or a
    per-attempt deadline, feeds the port's {!Health} tracker with who
    answered, and retries after deterministic exponential backoff.  The
    first attempt waits for the paper's full quota; retries stop counting
    on suspected slots (floored at the read quorum).  With no policy these
    entry points degenerate to the legacy blocking semantics, tick for
    tick. *)

type 'a attempt = {
  payloads : 'a list;  (** filtered payloads, in server-id order *)
  acks : int;  (** distinct servers that answered in time *)
  expired : bool;  (** the attempt deadline fired *)
}

val attempt_once :
  net:Net.t ->
  port:Net.client_port ->
  round:int ->
  attempt:int ->
  filter:(Messages.to_client -> 'a option) ->
  'a attempt
(** One deadline-bounded collection pass for broadcast [round] ([attempt]
    is 0-based; it selects the target count as described above). *)

val backoff_wait : net:Net.t -> port:Net.client_port -> attempt:int -> unit
(** Sleep the policy's backoff (plus per-port jitter) before retry number
    [attempt] (1-based); bumps the ["collect.retries"] metric and emits a
    ["retry.c<id>.a<k>"] mark.  No-op without a policy. *)

val sleep : net:Net.t -> Sim.Vtime.span -> unit
(** Park the calling fiber for [span] ticks of virtual time. *)

type 'a collected = {
  payloads : 'a list;  (** from the best attempt *)
  acks : int;
  attempts : int;  (** attempts spent (1 = first try sufficed) *)
  complete : bool;  (** the full [Params.ack_wait] quota answered *)
}

val retrying :
  ?span:Obs.Trace_ctx.span ->
  net:Net.t ->
  port:Net.client_port ->
  inst:int ->
  body:Messages.to_server ->
  filter:(Messages.to_client -> 'a option) ->
  unit ->
  'a collected
(** One logical collect: ss-broadcast [body], gather, and retry (fresh
    broadcast each time) until the full quota answers or the policy's
    attempt budget runs out; returns the best attempt.  Each re-broadcast
    opens its own child span of [span], so retry rounds are visible in
    traces. *)

val judge :
  net:Net.t -> port:Net.client_port -> 'a collected -> unit Outcome.t
(** Classify a collect against {!Params.write_ok_threshold} (full service)
    and {!Params.read_quorum} (degraded vs timed out), naming the port's
    current suspects in the reason. *)

val reason_of :
  net:Net.t ->
  port:Net.client_port ->
  attempts:int ->
  acks:int ->
  need:int ->
  Outcome.reason

val write_filter : Messages.to_client -> Messages.help option

val read_filter :
  Messages.to_client -> (Messages.cell * Messages.help) option
