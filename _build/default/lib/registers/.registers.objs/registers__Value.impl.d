lib/registers/value.ml: Epoch Format Printf Sim Stdlib String
