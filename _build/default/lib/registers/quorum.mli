(** Counting identical values among acknowledgments (reader lines 12/14,
    writer line 03). *)

val find : eq:('a -> 'a -> bool) -> threshold:int -> 'a list -> 'a option
(** [find ~eq ~threshold xs] is the first value (in order of appearance)
    occurring at least [threshold] times in [xs], if any. *)

val find_cell :
  threshold:int -> Messages.cell list -> Messages.cell option
(** [find] specialized to cells (matching both sequence number and value,
    as in Fig. 3; Fig. 2 cells always carry [sn = 0]). *)

val find_help : threshold:int -> Messages.help list -> Messages.cell option
(** The paper's "∃ w ≠ ⊥ such that helping_val = w for [threshold] of the
    messages": only non-[⊥] helping values count. *)
