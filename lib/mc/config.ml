type family = Regular | Atomic | Mwmr

let family_to_string = function
  | Regular -> "regular"
  | Atomic -> "atomic"
  | Mwmr -> "mwmr"

let family_of_string = function
  | "regular" -> Ok Regular
  | "atomic" -> Ok Atomic
  | "mwmr" -> Ok Mwmr
  | s -> Error (Printf.sprintf "unknown register family %S" s)

type byz_kind = Silent | Collude of { sn : int; v : int }

type corruption =
  | Corrupt_server of { server : int; sn : int; v : int }
  | Corrupt_reader of { pwsn : int; v : int }
  | Corrupt_writer_sn of int
  | Corrupt_round of { client : int; round : int }
  | Crash_recover of { server : int }

type oracle = Family_default | Atomic_oracle

let oracle_to_string = function
  | Family_default -> "default"
  | Atomic_oracle -> "atomic"

let oracle_of_string = function
  | "default" -> Ok Family_default
  | "atomic" -> Ok Atomic_oracle
  | s -> Error (Printf.sprintf "unknown oracle %S" s)

type t = {
  family : family;
  n : int;
  f : int;
  byz : (int * byz_kind) list;
  writes : int;
  reads : int;
  read_budget : int;
  menu : corruption list;
  oracle : oracle;
}

let default ~family =
  {
    family;
    n = 9;
    f = 1;
    byz = [];
    writes = 1;
    reads = 1;
    read_budget = 8;
    menu = [];
    oracle = Family_default;
  }

let validate c =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if c.n < 1 then err "n must be positive"
  else if c.f < 0 then err "f must be non-negative"
  else if c.writes < 0 || c.reads < 0 then err "writes/reads must be non-negative"
  else if c.read_budget < 1 then err "read_budget must be positive"
  else if
    List.exists (fun (slot, _) -> slot < 0 || slot >= c.n) c.byz
  then err "byzantine slot out of range"
  else if
    List.length (List.sort_uniq Int.compare (List.map fst c.byz))
    <> List.length c.byz
  then err "duplicate byzantine slot"
  else if
    c.family <> Atomic
    && List.exists
         (function
           | Corrupt_reader _ | Corrupt_writer_sn _ -> true | _ -> false)
         c.menu
  then err "reader/writer corruption items require the atomic family"
  else if
    List.exists
      (function
        | Corrupt_server { server; _ } | Crash_recover { server } ->
          server < 0 || server >= c.n
        | _ -> false)
      c.menu
  then err "corruption target server out of range"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)

let byz_to_json byz =
  Obs.Json.List
    (List.map
       (fun (slot, k) ->
         match k with
         | Silent ->
           Obs.Json.Obj
             [ ("slot", Obs.Json.Int slot); ("kind", Obs.Json.Str "silent") ]
         | Collude { sn; v } ->
           Obs.Json.Obj
             [
               ("slot", Obs.Json.Int slot);
               ("kind", Obs.Json.Str "collude");
               ("sn", Obs.Json.Int sn);
               ("v", Obs.Json.Int v);
             ])
       byz)

let corruption_to_json = function
  | Corrupt_server { server; sn; v } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "server");
        ("server", Obs.Json.Int server);
        ("sn", Obs.Json.Int sn);
        ("v", Obs.Json.Int v);
      ]
  | Corrupt_reader { pwsn; v } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "reader");
        ("pwsn", Obs.Json.Int pwsn);
        ("v", Obs.Json.Int v);
      ]
  | Corrupt_writer_sn sn ->
    Obs.Json.Obj [ ("kind", Obs.Json.Str "writer"); ("sn", Obs.Json.Int sn) ]
  | Corrupt_round { client; round } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "round");
        ("client", Obs.Json.Int client);
        ("round", Obs.Json.Int round);
      ]
  | Crash_recover { server } ->
    Obs.Json.Obj
      [ ("kind", Obs.Json.Str "crashrec"); ("server", Obs.Json.Int server) ]

let to_json c =
  Obs.Json.Obj
    [
      ("family", Obs.Json.Str (family_to_string c.family));
      ("n", Obs.Json.Int c.n);
      ("f", Obs.Json.Int c.f);
      ("byz", byz_to_json c.byz);
      ("writes", Obs.Json.Int c.writes);
      ("reads", Obs.Json.Int c.reads);
      ("read_budget", Obs.Json.Int c.read_budget);
      ("menu", Obs.Json.List (List.map corruption_to_json c.menu));
      ("oracle", Obs.Json.Str (oracle_to_string c.oracle));
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ctx key j =
  match Obs.Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let as_int ctx j =
  match Obs.Json.to_int_opt j with
  | Some i -> Ok i
  | None -> Error (ctx ^ ": expected an integer")

let as_string ctx j =
  match Obs.Json.to_string_opt j with
  | Some s -> Ok s
  | None -> Error (ctx ^ ": expected a string")

let int_field ctx key j =
  let* v = field ctx key j in
  as_int (ctx ^ "." ^ key) v

let str_field ctx key j =
  let* v = field ctx key j in
  as_string (ctx ^ "." ^ key) v

let list_field ctx key j =
  let* v = field ctx key j in
  match Obs.Json.to_list_opt v with
  | Some items -> Ok items
  | None -> Error (Printf.sprintf "%s.%s: expected a list" ctx key)

let fold_results f items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = f item in
      Ok (v :: acc))
    (Ok []) items
  |> Result.map List.rev

let byz_of_json ctx j =
  fold_results
    (fun item ->
      let* slot = int_field ctx "slot" item in
      let* kind = str_field ctx "kind" item in
      match kind with
      | "silent" -> Ok (slot, Silent)
      | "collude" ->
        let* sn = int_field ctx "sn" item in
        let* v = int_field ctx "v" item in
        Ok (slot, Collude { sn; v })
      | s -> Error (Printf.sprintf "%s: unknown byzantine kind %S" ctx s))
    j

let corruption_of_json ctx item =
  let* kind = str_field ctx "kind" item in
  match kind with
  | "server" ->
    let* server = int_field ctx "server" item in
    let* sn = int_field ctx "sn" item in
    let* v = int_field ctx "v" item in
    Ok (Corrupt_server { server; sn; v })
  | "reader" ->
    let* pwsn = int_field ctx "pwsn" item in
    let* v = int_field ctx "v" item in
    Ok (Corrupt_reader { pwsn; v })
  | "writer" ->
    let* sn = int_field ctx "sn" item in
    Ok (Corrupt_writer_sn sn)
  | "round" ->
    let* client = int_field ctx "client" item in
    let* round = int_field ctx "round" item in
    Ok (Corrupt_round { client; round })
  | "crashrec" ->
    let* server = int_field ctx "server" item in
    Ok (Crash_recover { server })
  | s -> Error (Printf.sprintf "%s: unknown corruption kind %S" ctx s)

let of_json j =
  let ctx = "config" in
  let* family = str_field ctx "family" j in
  let* family = family_of_string family in
  let* n = int_field ctx "n" j in
  let* f = int_field ctx "f" j in
  let* byz = list_field ctx "byz" j in
  let* byz = byz_of_json (ctx ^ ".byz") byz in
  let* writes = int_field ctx "writes" j in
  let* reads = int_field ctx "reads" j in
  let* read_budget = int_field ctx "read_budget" j in
  let* menu = list_field ctx "menu" j in
  let* menu = fold_results (corruption_of_json (ctx ^ ".menu")) menu in
  let* oracle = str_field ctx "oracle" j in
  let* oracle = oracle_of_string oracle in
  let c = { family; n; f; byz; writes; reads; read_budget; menu; oracle } in
  let* () = validate c in
  Ok c
