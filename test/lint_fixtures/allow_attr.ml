(* Fixture: [@@lint.allow] binding attributes suppress named rules. *)

let roll () = Random.int 6 [@@lint.allow "R1"]

let both () = (List.hd [], Sys.time ()) [@@lint.allow "R1 R4"]

let still_flagged () = Unix.gettimeofday ()
