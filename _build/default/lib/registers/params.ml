type mode =
  | Async
  | Sync of { max_delay : int; slack : int }

type t = { n : int; f : int; mode : mode }

let satisfies_bound t =
  match t.mode with
  | Async -> t.n >= (8 * t.f) + 1
  | Sync _ -> t.n >= (3 * t.f) + 1

let create_unchecked ~n ~f ~mode =
  if n <= 0 then invalid_arg "Params: n must be positive";
  if f < 0 then invalid_arg "Params: f must be non-negative";
  { n; f; mode }

let create ~n ~f ~mode =
  let t = create_unchecked ~n ~f ~mode in
  if satisfies_bound t then Ok t
  else
    Error
      (Printf.sprintf "resilience bound violated: n=%d, t=%d requires %s" n f
         (match mode with
         | Async -> "n >= 8t+1 (asynchronous)"
         | Sync _ -> "n >= 3t+1 (synchronous)"))

let create_exn ~n ~f ~mode =
  match create ~n ~f ~mode with Ok t -> t | Error msg -> invalid_arg msg

let ack_wait t = match t.mode with Async -> t.n - t.f | Sync _ -> t.n

let read_quorum t =
  match t.mode with Async -> (2 * t.f) + 1 | Sync _ -> t.f + 1

let help_refresh_threshold t =
  match t.mode with Async -> (4 * t.f) + 1 | Sync _ -> t.f + 1

let sync_timeout t =
  match t.mode with
  | Async -> None
  | Sync { max_delay; slack } -> Some ((2 * max_delay) + slack)

let pp ppf t =
  Format.fprintf ppf "{n=%d; t=%d; %s}" t.n t.f
    (match t.mode with Async -> "async" | Sync _ -> "sync")
