lib/registers/server.ml: Hashtbl Int List Messages Sim
