open Util
open Registers

(* Run one write+read against a deployment with server 0 compromised by the
   given behavior; return what the read saw. *)
let run_with_behavior ?(seed = 7) behavior =
  let scn = async_scenario ~seed () in
  (match behavior with
  | Some b -> Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0 (b scn)
  | None -> ());
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let got = ref None in
  run_fiber scn "wr" (fun () ->
      Swsr_regular.write w (int_value 8);
      got := Swsr_regular.read r);
  (scn, !got)

let test_silent () =
  let _, got = run_with_behavior (Some (fun _ -> Byzantine.Behavior.silent)) in
  Alcotest.(check (option value)) "tolerated" (Some (int_value 8)) got

let test_garbage () =
  let _, got = run_with_behavior (Some (fun _ -> Byzantine.Behavior.garbage)) in
  Alcotest.(check (option value)) "tolerated" (Some (int_value 8)) got

let test_equivocate () =
  let _, got = run_with_behavior (Some (fun _ -> Byzantine.Behavior.equivocate)) in
  Alcotest.(check (option value)) "tolerated" (Some (int_value 8)) got

let test_frozen () =
  let _, got =
    run_with_behavior
      (Some
         (fun scn ->
           Byzantine.Behavior.frozen
             (Byzantine.Adversary.server scn.Harness.Scenario.adversary 0)))
  in
  Alcotest.(check (option value)) "tolerated" (Some (int_value 8)) got

let test_flaky () =
  let _, got =
    run_with_behavior
      (Some
         (fun scn ->
           Byzantine.Behavior.flaky ~drop_probability:0.5
             (Byzantine.Adversary.server scn.Harness.Scenario.adversary 0)))
  in
  Alcotest.(check (option value)) "tolerated" (Some (int_value 8)) got

let test_delayed () =
  let _, got =
    run_with_behavior
      (Some
         (fun scn ->
           Byzantine.Behavior.delayed ~by:500
             (Byzantine.Adversary.server scn.Harness.Scenario.adversary 0)))
  in
  Alcotest.(check (option value)) "tolerated" (Some (int_value 8)) got

(* Soak a concurrent writer/reader pair over an atomic register with the
   given slot-0 behavior and assert the whole history is atomic (no
   cutoff: there are no transient faults, only the Byzantine server). *)
let soak_atomic_with ?(seed = 23) behavior =
  let scn = async_scenario ~seed () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    (behavior scn);
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_atomic.write w)
            ~count:120 ~gap:(Harness.Workload.gap 0 15) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_atomic.read r)
            ~count:100 ~gap:(Harness.Workload.gap 0 20) () );
    ];
  let h = scn.Harness.Scenario.history in
  check_int "all reads answered" 100 (Harness.Metrics.ok_reads h);
  let report = Oracles.Atomicity.Sw.check h in
  if not (Oracles.Atomicity.Sw.is_clean report) then
    Alcotest.failf "%a" Oracles.Atomicity.Sw.pp report

let test_flaky_soak_atomic () =
  soak_atomic_with (fun scn ->
      Byzantine.Behavior.flaky ~drop_probability:0.5
        (Byzantine.Adversary.server scn.Harness.Scenario.adversary 0))

let test_delayed_soak_atomic () =
  soak_atomic_with (fun scn ->
      Byzantine.Behavior.delayed ~by:40
        (Byzantine.Adversary.server scn.Harness.Scenario.adversary 0))

let test_collude_below_threshold_harmless () =
  let junk = { Messages.sn = 999; v = Value.str "forged" } in
  let _, got =
    run_with_behavior (Some (fun _ -> Byzantine.Behavior.collude ~cell:junk))
  in
  Alcotest.(check (option value)) "single colluder harmless"
    (Some (int_value 8)) got

let test_collude_at_quorum_forges_reads () =
  (* 2t+1 = 3 colluders (more than the assumed t = 1) agreeing on a forged
     cell reach the read quorum: safety collapses, as the resilience bound
     predicts when the Byzantine assumption is violated. *)
  let scn = async_scenario ~seed:9 () in
  let junk = { Messages.sn = 999; v = Value.str "forged" } in
  for s = 0 to 2 do
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary s
      (Byzantine.Behavior.collude ~cell:junk)
  done;
  let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let got = ref None in
  run_fiber scn "r" (fun () -> got := Swsr_regular.read r);
  Alcotest.(check (option value)) "forged value read"
    (Some (Value.str "forged")) !got

let test_crash_after () =
  let scn = async_scenario ~seed:17 () in
  let srv = Byzantine.Adversary.server scn.Harness.Scenario.adversary 0 in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    (Byzantine.Behavior.crash_after 3 srv);
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let results = ref [] in
  run_fiber scn "wr" (fun () ->
      for i = 1 to 6 do
        Swsr_regular.write w (int_value i);
        results := (i, Swsr_regular.read r) :: !results
      done);
  List.iter
    (fun (i, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "op %d despite the crash" i)
        (Some (int_value i))
        v)
    !results

let test_adversary_bookkeeping () =
  let scn = async_scenario () in
  let adv = scn.Harness.Scenario.adversary in
  check_true "none initially" (Byzantine.Adversary.byzantine_ids adv = []);
  Byzantine.Adversary.compromise adv 4 Byzantine.Behavior.silent;
  Byzantine.Adversary.compromise adv 2 Byzantine.Behavior.garbage;
  check_true "tracked" (Byzantine.Adversary.byzantine_ids adv = [ 2; 4 ]);
  check_false "net ground truth" (Net.is_correct scn.Harness.Scenario.net 4);
  Byzantine.Adversary.restore adv 4;
  check_true "restored" (Byzantine.Adversary.byzantine_ids adv = [ 2 ]);
  check_true "correct again" (Net.is_correct scn.Harness.Scenario.net 4)

let test_restore_corrupts_state () =
  (* A machine released by the adversary holds arbitrary state. *)
  let scn = async_scenario () in
  let adv = scn.Harness.Scenario.adversary in
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  run_fiber scn "w" (fun () -> Swsr_regular.write w (int_value 1));
  Byzantine.Adversary.compromise adv 0 Byzantine.Behavior.silent;
  Byzantine.Adversary.restore adv 0;
  let i = Server.instance (Byzantine.Adversary.server adv 0) 0 in
  check_false "state scrambled on hand-back"
    (Messages.cell_equal i.Server.last_val { Messages.sn = 0; v = int_value 1 })

let test_mobile_byzantine_between_ops () =
  (* Footnote 1: the Byzantine fault moves between operations; every
     post-move write re-establishes correctness. *)
  let scn = async_scenario ~seed:15 () in
  let adv = scn.Harness.Scenario.adversary in
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  Byzantine.Adversary.compromise adv 0 Byzantine.Behavior.garbage;
  let results = ref [] in
  run_fiber scn "wr" (fun () ->
      for i = 1 to 8 do
        Swsr_regular.write w (int_value i);
        results := (i, Swsr_regular.read r) :: !results;
        (* Move the fault to the next server between operations. *)
        Byzantine.Adversary.move adv ~from:((i - 1) mod 9) ~to_:(i mod 9)
          Byzantine.Behavior.garbage
      done);
  List.iter
    (fun (i, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "correct despite mobility, op %d" i)
        (Some (int_value i))
        v)
    !results

let tests =
  [
    case "silent tolerated" test_silent;
    case "garbage tolerated" test_garbage;
    case "equivocation tolerated" test_equivocate;
    case "frozen tolerated" test_frozen;
    case "flaky tolerated" test_flaky;
    case "delayed tolerated" test_delayed;
    case "flaky soak stays atomic" test_flaky_soak_atomic;
    case "delayed soak stays atomic" test_delayed_soak_atomic;
    case "lone colluder harmless" test_collude_below_threshold_harmless;
    case "crash-stop tolerated" test_crash_after;
    case "collusion at quorum forges reads" test_collude_at_quorum_forges_reads;
    case "adversary bookkeeping" test_adversary_bookkeeping;
    case "restore corrupts state" test_restore_corrupts_state;
    case "mobile byzantine (footnote 1)" test_mobile_byzantine_between_ops;
  ]
