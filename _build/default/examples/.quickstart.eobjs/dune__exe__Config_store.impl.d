examples/config_store.ml: Array Byzantine Harness Mwmr Params Printf Registers Sim Value
