(** Stabilizing Byzantine-tolerant MWMR atomic register — Figure 4.

    Every one of the [m] processes is both a reader and a writer; process
    [i] owns the SWMR register [REG\[i\]] and reads all of them.  Values are
    timestamped with a bounded epoch ({!Epoch}) and a sequence number
    bounded by [seq_bound]; when the sequence space of the greatest epoch is
    exhausted — or transient faults left the epochs without a maximum — the
    operating process opens a fresh epoch with [next_epoch].

    Register instances [base_inst + j*m + i] carry [REG\[j\]]'s copy for
    reader [i]. *)

type config = {
  m : int;  (** number of processes *)
  base_inst : int;
  modulus : int;  (** bound on the SWSR-level write sequence numbers *)
  seq_bound : int;  (** the paper's [2^64] bound on timestamp seq numbers *)
  tie : [ `Min_index | `Max_index ];
      (** Line 15 tie-break among same-timestamp values.  The paper's code
          picks the {e minimal} index while its Definition 1 orders writes
          by {e larger} process id; both are sound (any fixed tie-break is),
          and the checker follows whichever is configured.  Default
          [`Min_index] (paper-literal). *)
  view_budget : int;
      (** Inquiry-iteration budget for each underlying swmr_read when
          collecting the view of REG\[1..m\] (lines 01/09).  The paper's
          unbounded read terminates only once each register's writer has
          written after the last transient fault; because every MWMR
          operation starts by reading {e all} registers, a fully scrambled
          configuration would deadlock circularly.  A sub-read that
          exhausts this budget is absorbed as a genesis-stamped [Bot]
          triple, letting the operation proceed and (through its write)
          re-establish exactly the state the paper's assumption provides.
          Default 64. *)
}

val default_config : m:int -> config
(** [base_inst = 0], [modulus = Seqnum.default_modulus],
    [seq_bound = 2^61], [tie = `Min_index], [view_budget = 64]. *)

val epoch_k : config -> int
(** The labeling-scheme parameter [k = max m 2] used by this register. *)

type process

val process : net:Net.t -> cfg:config -> id:int -> client_id:int -> process
(** Endpoint for process [id] (0-based, [< cfg.m]). *)

val write : ?parent:Obs.Trace_ctx.span -> process -> Value.t -> unit
(** mwmr_write(v): lines 01–08. Must run inside a fiber. *)

val read :
  ?parent:Obs.Trace_ctx.span -> ?max_iterations:int -> process -> Value.t option
(** mwmr_read(): lines 09–16. Must run inside a fiber. *)

val read_timestamped :
  ?parent:Obs.Trace_ctx.span ->
  ?max_iterations:int ->
  process ->
  (Value.t * Epoch.t * int * int) option
(** Like {!read} but exposing the returned value's full timestamp
    [(epoch, seq, writer-index)] for the atomicity checker. *)

val write_o : ?parent:Obs.Trace_ctx.span -> process -> Value.t -> unit Outcome.t
(** {!write} with a typed outcome: the worst of the line-07 SWMR write and
    (when a retry policy is installed) the line-01 view collection. *)

val read_o :
  ?parent:Obs.Trace_ctx.span -> ?max_iterations:int -> process -> Value.t Outcome.t
(** {!read} with a typed outcome. *)

val read_timestamped_o :
  ?parent:Obs.Trace_ctx.span ->
  ?max_iterations:int ->
  process ->
  (Value.t * Epoch.t * int * int) Outcome.t
(** {!read_timestamped} with a typed outcome. *)

val id : process -> int

val last_write_timestamp : process -> (Epoch.t * int) option
(** Timestamp chosen by this process's most recent {!write} (for the
    checker; [None] before the first write). *)

val epochs_opened : process -> int
(** How many times this process executed the next_epoch branch. *)

val restamps : process -> (Value.t * Epoch.t * int) list
(** The pending line-11 internal-write log, oldest first, without clearing
    it — for state fingerprinting by the model checker. *)

val own : process -> Swmr.writer
(** The underlying SWMR writer endpoint this process owns (for state
    inspection; mutating it directly voids the register's guarantees). *)

val views : process -> Swmr.reader array
(** The underlying SWMR reader endpoints, one per register (for state
    inspection). *)

val take_restamps : process -> (Value.t * Epoch.t * int) list
(** Line-11 internal writes performed by this process's reads since the
    last call (value restamped, fresh epoch, seq = 0), oldest first, and
    clear the log.  Histories fed to the {!Oracles.Atomicity.Mw} checker
    must include these as writes: they modify the register. *)
