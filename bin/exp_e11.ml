(* E11 — The registers over genuinely unreliable links.

   The paper's model gives the clients reliable FIFO links and the
   ss-broadcast abstraction; footnote 3 sketches how to build those from
   bounded-capacity unreliable links.  E8 validated that construction in
   isolation; here the whole stack runs together: the Fig. 3 register over
   the engine-integrated self-stabilizing transport (stop-and-wait,
   bounded wrapping tags, retransmission), on links that lose, duplicate
   and reorder packets.  Correctness must be unchanged; the price is paid
   in packets and latency. *)

open Registers

let run_one ~seed ~loss =
  let params = Common.async_params ~n:9 ~f:1 in
  let medium = Net.Stabilizing { loss; dup = 0.1; retrans = 30 } in
  let scn = Common.scenario ~seed ~medium ~params () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 2
    Byzantine.Behavior.garbage;
  let w, r = Common.atomic_pair scn in
  let ops = 15 in
  Common.run_jobs scn
    [
      ( "wr",
        fun () ->
          for i = 1 to ops do
            ignore
              (Harness.Scenario.record scn ~proc:"writer"
                 ~kind:Oracles.History.Write (fun () ->
                   Swsr_atomic.write w (Value.int i);
                   Some (Value.int i)));
            ignore
              (Harness.Scenario.record scn ~proc:"reader"
                 ~kind:Oracles.History.Read (fun () -> Swsr_atomic.read r))
          done );
    ];
  Common.observe_scn scn;
  let cutoff =
    match Common.first_write_resp scn with
    | Some t -> t
    | None -> Sim.Vtime.zero
  in
  let report = Oracles.Atomicity.Sw.check ~cutoff scn.Harness.Scenario.history in
  let lat =
    Harness.Metrics.latencies ~kind:Oracles.History.Read
      scn.Harness.Scenario.history
  in
  let pkts =
    Sim.Trace.counter (Sim.Engine.trace scn.Harness.Scenario.engine) "net.pkts"
  in
  ( Oracles.Atomicity.Sw.is_clean report,
    float_of_int pkts /. float_of_int (2 * ops),
    (Harness.Metrics.summary lat).Harness.Metrics.mean )

let run ~seed =
  Harness.Report.section
    "E11: the Fig. 3 register over lossy/duplicating/reordering links";
  let rows =
    List.map
      (fun loss ->
        let clean = ref true and pkts = ref 0.0 and lat = ref 0.0 in
        let seeds = 4 in
        for s = 0 to seeds - 1 do
          let c, p, l = run_one ~seed:(seed + s) ~loss in
          clean := !clean && c;
          pkts := !pkts +. p;
          lat := !lat +. l
        done;
        let k = float_of_int seeds in
        [
          Printf.sprintf "%.0f%%" (loss *. 100.0);
          (if !clean then "atomic" else "VIOLATED");
          Harness.Report.f1 (!pkts /. k);
          Harness.Report.f1 (!lat /. k);
        ])
      [ 0.0; 0.1; 0.3; 0.5 ]
  in
  Harness.Report.table
    ~title:
      "n=9, t=1, one garbage Byzantine server; stop-and-wait ss-transport,\n\
       retransmission every 30 ticks; 15 write+read pairs x 4 seeds"
    ~header:[ "packet loss"; "oracle verdict"; "packets/op"; "read latency" ]
    rows;
  print_endline
    "  Shape: atomicity is loss-invariant — the self-stabilizing transport\n\
    \  reconstructs the model's reliable FIFO links — while packets/op and\n\
    \  latency grow with loss (retransmissions), exactly the footnote-3\n\
    \  trade."
