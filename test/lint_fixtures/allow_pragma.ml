(* Fixture: line pragmas suppress on their line only. *)

let roll () = Random.int 6 (* lint: allow R1 -- fixture rationale *)

let still_flagged () = Random.bool ()
