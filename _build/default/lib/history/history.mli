(** Operation histories.

    Experiments record every operation's invocation/response interval and
    value; the checkers in {!Regularity} and {!Atomicity} then decide
    whether the history satisfies the register specifications of §2.2
    after a stabilization cutoff.

    Histories rely on the workload discipline that {e written values are
    pairwise distinct} (the generators guarantee it), which lets a read be
    mapped back to the write that produced its value — the standard device
    for checking register conditions on concrete executions. *)

type kind = Write | Read

type op = {
  proc : string;  (** e.g. ["writer"], ["reader"], ["p2"] *)
  kind : kind;
  inv : Sim.Vtime.t;  (** invocation instant *)
  resp : Sim.Vtime.t;  (** response instant *)
  value : Registers.Value.t;  (** written, or returned ([Bot] if the read
                                   gave up under a finite budget) *)
  ok : bool;  (** [false] for a read whose iteration budget ran out *)
  ts : (Registers.Epoch.t * int * int) option;
      (** (epoch, seq, writer-id) timestamp, for MWMR histories *)
}

type t

val create : unit -> t

val record :
  t ->
  proc:string ->
  kind:kind ->
  inv:Sim.Vtime.t ->
  resp:Sim.Vtime.t ->
  ?ts:Registers.Epoch.t * int * int ->
  ?ok:bool ->
  Registers.Value.t ->
  unit

val ops : t -> op list
(** All operations, sorted by invocation time (ties by recording order). *)

val writes : t -> op list

val reads : t -> op list

val length : t -> int

val overlap : op -> op -> bool
(** Whether the two operations' [\[inv, resp\]] intervals intersect — the
    paper's "concurrent". *)

val pp_op : Format.formatter -> op -> unit
