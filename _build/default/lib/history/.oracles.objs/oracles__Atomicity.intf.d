lib/history/atomicity.mli: Format History Regularity Sim
