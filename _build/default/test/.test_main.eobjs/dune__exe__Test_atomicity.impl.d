test/test_atomicity.ml: Atomicity History List Oracles Registers Regularity Sim Util
