bin/exp_e11.ml: Byzantine Common Harness List Net Oracles Printf Registers Sim Swsr_atomic Value
