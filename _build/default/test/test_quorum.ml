open Util
open Registers

let cell sn v = { Messages.sn; v = Value.int v }

let test_find_basic () =
  let xs = [ 1; 2; 2; 3; 2 ] in
  check_true "finds majority" (Quorum.find ~eq:Int.equal ~threshold:3 xs = Some 2);
  check_true "threshold unmet" (Quorum.find ~eq:Int.equal ~threshold:4 xs = None);
  check_true "empty" (Quorum.find ~eq:Int.equal ~threshold:1 [] = None)

let test_find_first_by_appearance () =
  let xs = [ 5; 7; 7; 5 ] in
  check_true "first qualifying value wins"
    (Quorum.find ~eq:Int.equal ~threshold:2 xs = Some 5)

let test_find_threshold_validation () =
  Alcotest.check_raises "zero threshold"
    (Invalid_argument "Quorum.find: threshold must be positive") (fun () ->
      ignore (Quorum.find ~eq:Int.equal ~threshold:0 [ 1 ]))

let test_find_cell () =
  let xs = [ cell 1 10; cell 1 10; cell 2 10 ] in
  check_true "sn participates in equality"
    (Quorum.find_cell ~threshold:2 xs = Some (cell 1 10));
  check_true "sn mismatch breaks quorum"
    (Quorum.find_cell ~threshold:3 xs = None)

let test_find_help_ignores_bot () =
  let h = Some (cell 1 7) in
  check_true "bots don't count"
    (Quorum.find_help ~threshold:2 [ None; h; None; h; None ] = Some (cell 1 7));
  check_true "only bots -> none"
    (Quorum.find_help ~threshold:1 [ None; None ] = None)

let prop_find_counts =
  QCheck.Test.make ~name:"find agrees with naive counting" ~count:300
    QCheck.(pair (list (int_bound 5)) (int_range 1 4))
    (fun (xs, threshold) ->
      let naive =
        List.exists
          (fun x -> List.length (List.filter (Int.equal x) xs) >= threshold)
          xs
      in
      let found = Quorum.find ~eq:Int.equal ~threshold xs <> None in
      naive = found)

let tests =
  [
    case "find basic" test_find_basic;
    case "first by appearance" test_find_first_by_appearance;
    case "threshold validation" test_find_threshold_validation;
    case "find_cell" test_find_cell;
    case "find_help ignores bot" test_find_help_ignores_bot;
    qcheck prop_find_counts;
  ]
