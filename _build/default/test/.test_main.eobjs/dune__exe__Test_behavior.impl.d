test/test_behavior.ml: Alcotest Byzantine Harness List Messages Net Printf Registers Server Swsr_regular Util Value
