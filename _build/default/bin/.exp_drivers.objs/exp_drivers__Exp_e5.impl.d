bin/exp_e5.ml: Byzantine Common Harness List Printf Registers Swsr_atomic Value
