open Registers

type move =
  | Deliver of string
  | Tick of int
  | Corrupt of int

let move_to_string = function
  | Deliver label -> "deliver " ^ label
  | Tick i -> Printf.sprintf "tick %d" i
  | Corrupt i -> Printf.sprintf "corrupt %d" i

let move_equal (a : move) b = a = b

let compare_move (a : move) b = compare a b

(* "link:c100->s3" -> ("c100", "s3"); anything unparsable gets no
   endpoints, which makes it dependent with everything (safe). *)
let endpoints label =
  match String.index_opt label ':' with
  | None -> None
  | Some i -> (
    let name = String.sub label (i + 1) (String.length label - i - 1) in
    match String.index_opt name '-' with
    | Some j
      when j + 1 < String.length name
           && Char.equal name.[j + 1] '>' ->
      let src = String.sub name 0 j in
      let dst = String.sub name (j + 2) (String.length name - j - 2) in
      Some (src, dst)
    | Some _ | None -> None)

(* Two moves are independent when they commute from every state: firing
   them in either order yields the same global state.  Deliveries on links
   with disjoint endpoint sets touch disjoint process/link state, so they
   commute; anything sharing an endpoint (same server's automaton, same
   client's mailbox/fiber) — and every corruption — is treated as
   dependent.  This conservative relation is what the sleep-set reduction
   is sound for; [--cross-check] re-runs without it. *)
let independent a b =
  match (a, b) with
  | Deliver la, Deliver lb -> (
    match (endpoints la, endpoints lb) with
    | Some (sa, da), Some (sb, db) ->
      (not (String.equal sa sb))
      && (not (String.equal sa db))
      && (not (String.equal da sb))
      && not (String.equal da db)
    | _ -> false)
  | _ -> false

type clients =
  | Regular_c of Swsr_regular.writer * Swsr_regular.reader
  | Atomic_c of Swsr_atomic.writer * Swsr_atomic.reader
  | Mwmr_c of Mwmr.process array

type t = {
  cfg : Config.t;
  engine : Sim.Engine.t;
  net : Net.t;
  adv : Byzantine.Adversary.t;
  history : Oracles.History.t;
  clients : clients;
  fibers : (string * Sim.Fiber.handle) list;
  mutable applied : int list; (* menu indices fired so far, newest first *)
  mutable corrupt_times : Sim.Vtime.t list; (* newest first *)
}

let behavior_of = function
  | Config.Silent -> Byzantine.Behavior.silent
  | Config.Collude { sn; v } ->
    Byzantine.Behavior.collude ~cell:{ Messages.sn; v = Value.int v }

let mwmr_m = 2

let create (cfg : Config.t) =
  let rng = Sim.Rng.create 42 in
  let engine = Sim.Engine.create ~rng () in
  let params =
    Params.create_unchecked ~n:cfg.n ~f:cfg.f ~mode:Params.Async ()
  in
  (* Fixed unit delay: the explorer owns all ordering nondeterminism, so
     sampled delays would only smear states apart without adding behaviors. *)
  let net =
    Net.create ~engine ~params ~link_delay:(fun _ -> Sim.Link.fixed 1) ()
  in
  let adv = Byzantine.Adversary.deploy ~net ~rng:(Sim.Rng.split rng) in
  List.iter
    (fun (slot, k) -> Byzantine.Adversary.compromise adv slot (behavior_of k))
    cfg.byz;
  let history = Oracles.History.create () in
  let record ~proc ~kind f =
    let inv = Sim.Engine.now engine in
    let v, ok, ts = f () in
    let resp = Sim.Engine.now engine in
    Oracles.History.record history ~proc ~kind ~inv ~resp ?ts ~ok v
  in
  let clients, jobs =
    match cfg.family with
    | Config.Regular ->
      let w = Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
      let r = Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
      ( Regular_c (w, r),
        [
          ( "writer",
            fun () ->
              for k = 1 to cfg.writes do
                record ~proc:"writer" ~kind:Oracles.History.Write (fun () ->
                    let v = Value.int k in
                    Swsr_regular.write w v;
                    (v, true, None))
              done );
          ( "reader",
            fun () ->
              for _ = 1 to cfg.reads do
                record ~proc:"reader" ~kind:Oracles.History.Read (fun () ->
                    match
                      Swsr_regular.read ~max_iterations:cfg.read_budget r
                    with
                    | Some v -> (v, true, None)
                    | None -> (Value.bot, false, None))
              done );
        ] )
    | Config.Atomic ->
      let w = Swsr_atomic.writer ~net ~client_id:100 ~inst:0 () in
      let r = Swsr_atomic.reader ~net ~client_id:101 ~inst:0 () in
      ( Atomic_c (w, r),
        [
          ( "writer",
            fun () ->
              for k = 1 to cfg.writes do
                record ~proc:"writer" ~kind:Oracles.History.Write (fun () ->
                    let v = Value.int k in
                    Swsr_atomic.write w v;
                    (v, true, None))
              done );
          ( "reader",
            fun () ->
              for _ = 1 to cfg.reads do
                record ~proc:"reader" ~kind:Oracles.History.Read (fun () ->
                    match
                      Swsr_atomic.read ~max_iterations:cfg.read_budget r
                    with
                    | Some v -> (v, true, None)
                    | None -> (Value.bot, false, None))
              done );
        ] )
    | Config.Mwmr ->
      let mcfg = Mwmr.default_config ~m:mwmr_m in
      let procs =
        Array.init mwmr_m (fun i ->
            Mwmr.process ~net ~cfg:mcfg ~id:i ~client_id:(300 + i))
      in
      let job i p =
        let proc = Printf.sprintf "p%d" i in
        fun () ->
          for k = 1 to cfg.writes do
            let v = Value.int ((1000 * (i + 1)) + k) in
            let inv = Sim.Engine.now engine in
            Mwmr.write p v;
            let resp = Sim.Engine.now engine in
            let ts =
              match Mwmr.last_write_timestamp p with
              | Some (e, s) -> Some (e, s, i)
              | None -> None
            in
            Oracles.History.record history ~proc
              ~kind:Oracles.History.Write ~inv ~resp ?ts v
          done;
          for _ = 1 to cfg.reads do
            let inv = Sim.Engine.now engine in
            let result =
              Mwmr.read_timestamped ~max_iterations:cfg.read_budget p
            in
            let resp = Sim.Engine.now engine in
            (* Epoch-crossing reads perform the line-11 internal write; the
               checker must see it as a write. *)
            List.iter
              (fun (v, e, s) ->
                Oracles.History.record history ~proc
                  ~kind:Oracles.History.Write ~inv ~resp ~ts:(e, s, i) v)
              (Mwmr.take_restamps p);
            match result with
            | Some (v, e, s, j) ->
              Oracles.History.record history ~proc
                ~kind:Oracles.History.Read ~inv ~resp ~ts:(e, s, j) v
            | None ->
              Oracles.History.record history ~proc
                ~kind:Oracles.History.Read ~inv ~resp ~ok:false Value.bot
          done
      in
      ( Mwmr_c procs,
        Array.to_list (Array.mapi (fun i p -> (Printf.sprintf "p%d" i, job i p)) procs)
      )
  in
  let fibers =
    List.map (fun (name, f) -> (name, Sim.Fiber.spawn ~name f)) jobs
  in
  {
    cfg;
    engine;
    net;
    adv;
    history;
    clients;
    fibers;
    applied = [];
    corrupt_times = [];
  }

let config t = t.cfg

let engine t = t.engine

let history t = t.history

let corrupt_times t =
  List.rev_map Sim.Vtime.to_int t.corrupt_times |> List.sort Int.compare

let client_active t =
  List.exists
    (fun (_, h) ->
      match Sim.Fiber.status h with
      | Sim.Fiber.Running -> true
      | Sim.Fiber.Done | Sim.Fiber.Failed _ -> false)
    t.fibers

let stuck t =
  List.filter_map
    (fun (name, h) ->
      match Sim.Fiber.status h with
      | Sim.Fiber.Done -> None
      | Sim.Fiber.Running -> Some name
      | Sim.Fiber.Failed e ->
        Some (name ^ " (raised: " ^ Printexc.to_string e ^ ")"))
    t.fibers

(* ------------------------------------------------------------------ *)
(* Enabled moves                                                      *)

let enabled t =
  let ready = Sim.Engine.ready t.engine in
  let seen = Hashtbl.create 16 in
  let delivers =
    List.filter_map
      (fun (r : Sim.Engine.ready_event) ->
        if String.equal r.r_label "" then None
        else if Hashtbl.mem seen r.r_label then None
        else begin
          Hashtbl.add seen r.r_label ();
          Some (Deliver r.r_label)
        end)
      ready
    |> List.sort compare_move
  in
  let ticks =
    List.filter
      (fun (r : Sim.Engine.ready_event) -> String.equal r.r_label "")
      ready
    |> List.mapi (fun i _ -> Tick i)
  in
  let corrupts =
    if t.cfg.menu = [] || not (client_active t) then []
    else
      List.mapi (fun i _ -> i) t.cfg.menu
      |> List.filter (fun i -> not (List.mem i t.applied))
      |> List.map (fun i -> Corrupt i)
  in
  delivers @ ticks @ corrupts

(* ------------------------------------------------------------------ *)
(* Applying a move                                                    *)

let apply_corruption t = function
  | Config.Corrupt_server { server; sn; v } ->
    let srv = Byzantine.Adversary.server t.adv server in
    let insts =
      match Server.instances srv with
      | [] -> [ (0, Server.instance srv 0) ]
      | l -> l
    in
    let cell = { Messages.sn; v = Value.int v } in
    List.iter
      (fun ((_, i) : int * Server.instance) ->
        i.last_val <- cell;
        i.helping <- Some cell)
      insts
  | Config.Corrupt_reader { pwsn; v } -> (
    match t.clients with
    | Atomic_c (_, r) ->
      Swsr_atomic.corrupt_reader_to r ~pwsn ~pv:(Value.int v)
    | Regular_c _ | Mwmr_c _ -> ())
  | Config.Corrupt_writer_sn sn -> (
    match t.clients with
    | Atomic_c (w, _) -> Swsr_atomic.set_wsn w sn
    | Regular_c _ | Mwmr_c _ -> ())
  | Config.Corrupt_round { client; round } -> (
    match List.assoc_opt client (Net.client_ports t.net) with
    | Some port -> port.Net.round <- abs round mod (1 lsl 30)
    | None -> ())
  | Config.Crash_recover { server } ->
    (* Crash plus recovery with lost volatile state, collapsed into one
       model step: the automaton keeps running (deliveries during the
       down window are a scheduling choice the explorer already owns) but
       its state reverts to pristine bot content. *)
    let srv = Byzantine.Adversary.server t.adv server in
    (match Server.instances srv with
    | [] -> ignore (Server.instance srv 0)
    | _ :: _ -> ());
    Server.reset srv

(* Every explored step advances the clock by one tick before firing, so
   execution order and virtual-time order coincide: the history the
   oracles see has strictly increasing instants along the explored
   interleaving, exactly as if a wall clock had witnessed it. *)
let bump t =
  Sim.Engine.advance_to t.engine
    (Sim.Vtime.add (Sim.Engine.now t.engine) 1)

let apply ?(strict = true) t mv =
  let fail msg =
    if strict then
      invalid_arg
        (Printf.sprintf "Mc.Sys.apply: %s (%s)" msg (move_to_string mv))
    else false
  in
  match mv with
  | Deliver label -> (
    let ready = Sim.Engine.ready t.engine in
    (* [ready] is (time, seq)-sorted, so the first match is the per-link
       FIFO head — the only delivery the paper's model admits next on
       this channel. *)
    match
      List.find_opt
        (fun (r : Sim.Engine.ready_event) -> String.equal r.r_label label)
        ready
    with
    | None -> fail "no pending delivery on that link"
    | Some r ->
      bump t;
      ignore (Sim.Engine.fire t.engine ~seq:r.r_seq);
      true)
  | Tick i -> (
    let unlabeled =
      List.filter
        (fun (r : Sim.Engine.ready_event) -> String.equal r.r_label "")
        (Sim.Engine.ready t.engine)
    in
    match List.nth_opt unlabeled i with
    | None -> fail "no such unlabeled event"
    | Some r ->
      bump t;
      ignore (Sim.Engine.fire t.engine ~seq:r.r_seq);
      true)
  | Corrupt i ->
    if List.mem i t.applied then fail "menu item already fired"
    else (
      match List.nth_opt t.cfg.menu i with
      | None -> fail "no such menu item"
      | Some c ->
        bump t;
        t.applied <- i :: t.applied;
        t.corrupt_times <- Sim.Engine.now t.engine :: t.corrupt_times;
        apply_corruption t c;
        true)

(* ------------------------------------------------------------------ *)
(* State fingerprint                                                  *)

let add_cell b (c : Messages.cell) =
  Buffer.add_string b (string_of_int c.sn);
  Buffer.add_char b ':';
  Buffer.add_string b (Value.to_string c.v)

let add_help b = function
  | None -> Buffer.add_char b '-'
  | Some c -> add_cell b c

let add_to_server b (env : Messages.server_envelope) =
  Buffer.add_string b
    (Printf.sprintf "%d/%d/%d/" env.round env.client env.inst);
  match env.body with
  | Messages.Write c ->
    Buffer.add_char b 'W';
    add_cell b c
  | Messages.New_help c ->
    Buffer.add_char b 'H';
    add_cell b c
  | Messages.Read nr -> Buffer.add_string b (if nr then "Rn" else "Ro")

let add_to_client ?(ren = fun s -> s) b (env : Messages.client_envelope) =
  Buffer.add_string b (Printf.sprintf "%d/%d/" env.round (ren env.server));
  match env.body with
  | Messages.Ack_write h ->
    Buffer.add_char b 'a';
    add_help b h
  | Messages.Ack_read (c, h) ->
    Buffer.add_char b 'A';
    add_cell b c;
    Buffer.add_char b ',';
    add_help b h

let add_epoch b (e : Epoch.t) =
  Buffer.add_string b (string_of_int e.s);
  Buffer.add_char b '{';
  List.iter (fun x -> Buffer.add_string b (string_of_int x); Buffer.add_char b ' ') e.a;
  Buffer.add_char b '}'

let add_ts b = function
  | None -> Buffer.add_char b '-'
  | Some (e, s, j) ->
    add_epoch b e;
    Buffer.add_string b (Printf.sprintf "/%d/%d" s j)

(* The oracles only compare instants for order, so the fingerprint keeps
   the order type of the recorded instants rather than their absolute
   values: order-isomorphic pasts merge, which is what lets permuted
   interleavings converge on one canonical state. *)
let add_history b t =
  let ops = Oracles.History.ops t.history in
  let times =
    List.concat_map
      (fun (o : Oracles.History.op) ->
        [ Sim.Vtime.to_int o.inv; Sim.Vtime.to_int o.resp ])
      ops
    @ List.map Sim.Vtime.to_int t.corrupt_times
  in
  let distinct = List.sort_uniq Int.compare times in
  let rank =
    let tbl = Hashtbl.create 64 in
    List.iteri (fun i v -> Hashtbl.add tbl v i) distinct;
    fun v -> Hashtbl.find tbl v
  in
  List.iter
    (fun (o : Oracles.History.op) ->
      Buffer.add_string b
        (Printf.sprintf "%s|%c|%d|%d|%s|%b|" o.proc
           (match o.kind with Oracles.History.Write -> 'W' | _ -> 'R')
           (rank (Sim.Vtime.to_int o.inv))
           (rank (Sim.Vtime.to_int o.resp))
           (Value.to_string o.value) o.ok);
      add_ts b o.ts;
      Buffer.add_char b ';')
    ops;
  Buffer.add_string b "X:";
  List.iter
    (fun ct -> Buffer.add_string b (string_of_int (rank ct)); Buffer.add_char b ' ')
    (List.sort Int.compare (List.map Sim.Vtime.to_int t.corrupt_times))

let add_atomic_rw b w r =
  Buffer.add_string b
    (Printf.sprintf "wsn=%d;pwsn=%d;pv=%s" (Swsr_atomic.wsn w)
       (Swsr_atomic.pwsn r)
       (Value.to_string (Swsr_atomic.pv r)))

(* Everything attached to one server slot, rendered WITHOUT its id: the
   automaton instances (or the byzantine behavior marker — the assignment
   is config-constant, but two byzantine slots with different behaviors
   must not be interchangeable) and the in-flight payloads on its links,
   per client in client order.  Two servers with equal blocks are
   observationally interchangeable. *)
let server_block t b srv =
  let s = Server.id srv in
  (match List.assoc_opt s t.cfg.byz with
  | Some Config.Silent -> Buffer.add_string b "Bs"
  | Some (Config.Collude { sn; v }) ->
    Buffer.add_string b (Printf.sprintf "Bc%d:%d" sn v)
  | None ->
    List.iter
      (fun ((inst, i) : int * Server.instance) ->
        Buffer.add_string b (string_of_int inst);
        Buffer.add_char b '=';
        add_cell b i.last_val;
        Buffer.add_char b '+';
        add_help b i.helping;
        Buffer.add_char b ',')
      (Server.instances srv));
  List.iter
    (fun ((id, port) : int * Net.client_port) ->
      Buffer.add_string b (Printf.sprintf "|c%d>" id);
      List.iter
        (fun env -> add_to_server b env; Buffer.add_char b ';')
        (Sim.Link.in_flight port.Net.to_servers.(s));
      Buffer.add_char b '<';
      (* the server field of an ack on this server's own reply link is
         self-referential; elide it *)
      List.iter
        (fun env ->
          add_to_client ~ren:(fun _ -> 0) b env;
          Buffer.add_char b ';')
        (Sim.Link.in_flight port.Net.from_servers.(s)))
    (Net.client_ports t.net)

(* Symmetry reduction: the protocols never branch on a server's identity
   (uniform broadcast, uniform links) and the oracles only read the
   client-side history, so permuting server slots yields an isomorphic
   state with the same verdicts.  Only slots named by a corruption-menu
   item must keep their identity (a pending [Corrupt_server {server=2}]
   distinguishes slot 2).  The fingerprint renders the state in canonical
   coordinates — named slots first in id order, then the anonymous slots
   sorted by their serialized block — and returns the renaming so the
   checker can put sleep sets into the same coordinates (comparing sleep
   sets across symmetry-merged states is only sound canonically). *)
let fingerprint_raw_ex t =
  let servers = Byzantine.Adversary.servers t.adv in
  let n = Array.length servers in
  let named =
    List.filter_map
      (function
        | Config.Corrupt_server { server; _ } | Config.Crash_recover { server }
          ->
          Some server
        | _ -> None)
      t.cfg.menu
    |> List.sort_uniq Int.compare
  in
  let block = Buffer.create 256 in
  let blocks =
    Array.map
      (fun srv ->
        Buffer.clear block;
        server_block t block srv;
        Buffer.contents block)
      servers
  in
  (* The only mailbox consumer is [Collect.acks], which files responses
     into a per-server slots array — so the arrival ORDER of queued acks
     is semantically inert and the mailbox can be treated as a multiset.
     The one exception: an envelope whose round tag has gone stale is
     normally dead forever, but a pending [Corrupt_round] item could
     resurrect it, and whether a stale envelope was consumed-and-dropped
     or still queued does depend on order.  So order is only erased when
     the menu carries no round corruption. *)
  let mailbox_ordered =
    List.exists
      (function Config.Corrupt_round _ -> true | _ -> false)
      t.cfg.menu
  in
  let render_env ren env =
    Buffer.clear block;
    add_to_client ~ren block env;
    Buffer.contents block
  in
  (* A server id also escapes into client mailboxes (ack envelopes name
     their origin).  The references to a server — rendered without ids —
     are permutation-invariant, so refining the sort key with them makes
     the canonical form complete: two states that differ only by a
     permutation of anonymous servers always render identically, and
     servers left tied (equal block, equal references) are true
     automorphisms, so the id tie-break is harmless. *)
  let refkeys = Array.make n "" in
  List.iteri
    (fun ci ((_, port) : int * Net.client_port) ->
      let refs = Array.make n [] in
      List.iteri
        (fun pos (env : Messages.client_envelope) ->
          let s = env.server in
          if s >= 0 && s < n then
            refs.(s) <-
              (if mailbox_ordered then Printf.sprintf "@%d" pos
               else render_env (fun _ -> 0) env)
              :: refs.(s))
        (Sim.Mailbox.to_list port.Net.mailbox);
      Array.iteri
        (fun s occurrences ->
          if occurrences <> [] then
            refkeys.(s) <-
              refkeys.(s)
              ^ Printf.sprintf "%d[%s];" ci
                  (String.concat ","
                     (List.sort String.compare occurrences)))
        refs)
    (Net.client_ports t.net);
  let anonymous =
    List.filter
      (fun s -> not (List.mem s named))
      (List.init n Fun.id)
    |> List.sort (fun a b ->
           match String.compare blocks.(a) blocks.(b) with
           | 0 -> (
             match String.compare refkeys.(a) refkeys.(b) with
             | 0 -> Int.compare a b
             | c -> c)
           | c -> c)
  in
  let order = Array.of_list (named @ anonymous) in
  let canon = Array.make n 0 in
  Array.iteri (fun pos s -> canon.(s) <- pos) order;
  let ren s = if s >= 0 && s < n then canon.(s) else s in
  (* Servers still tied after the (block, refkey) sort are genuinely
     interchangeable — swapping them is a state automorphism.  Map each
     to the least member of its tie group: the explorer only fires
     deliveries at class representatives, since the other successors are
     isomorphic (equal blocks include the link contents, so a
     representative's move is enabled whenever a class member's is). *)
  let rep_arr = Array.init n Fun.id in
  (let prev = ref None in
   List.iter
     (fun s ->
       (match !prev with
       | Some p
         when String.equal blocks.(p) blocks.(s)
              && String.equal refkeys.(p) refkeys.(s) ->
         rep_arr.(s) <- rep_arr.(p)
       | _ -> ());
       prev := Some s)
     anonymous);
  let rep s = if s >= 0 && s < n then rep_arr.(s) else s in
  let b = Buffer.create 2048 in
  (* servers in canonical order *)
  Array.iteri
    (fun pos s ->
      Buffer.add_string b (Printf.sprintf "s%d:" pos);
      Buffer.add_string b blocks.(s);
      Buffer.add_char b '\n')
    order;
  (* client ports: round tag and queued acks (ack origins renamed, and
     the queue rendered as a sorted multiset unless a round corruption
     could make order matter); link traffic lives inside the server
     blocks *)
  List.iter
    (fun ((id, port) : int * Net.client_port) ->
      Buffer.add_string b (Printf.sprintf "c%d r%d q[" id port.Net.round);
      let rendered =
        List.map (render_env ren) (Sim.Mailbox.to_list port.Net.mailbox)
      in
      let rendered =
        if mailbox_ordered then rendered
        else List.sort String.compare rendered
      in
      List.iter
        (fun s ->
          Buffer.add_string b s;
          Buffer.add_char b ';')
        rendered;
      Buffer.add_string b "]\n")
    (Net.client_ports t.net);
  (* client persistent state *)
  (match t.clients with
  | Regular_c _ -> Buffer.add_string b "reg"
  | Atomic_c (w, r) -> add_atomic_rw b w r
  | Mwmr_c procs ->
    Array.iter
      (fun p ->
        Buffer.add_string b (Printf.sprintf "p%d:" (Mwmr.id p));
        (match Mwmr.last_write_timestamp p with
        | None -> Buffer.add_char b '-'
        | Some (e, s) ->
          add_epoch b e;
          Buffer.add_string b (Printf.sprintf "/%d" s));
        Buffer.add_string b
          (Printf.sprintf ";eo=%d;" (Mwmr.epochs_opened p));
        List.iter
          (fun (v, e, s) ->
            Buffer.add_string b (Value.to_string v);
            Buffer.add_char b '@';
            add_epoch b e;
            Buffer.add_string b (Printf.sprintf "/%d," s))
          (Mwmr.restamps p);
        Array.iter
          (fun w ->
            Buffer.add_string b
              (Printf.sprintf "w%d," (Swsr_atomic.wsn w)))
          (Swmr.copies (Mwmr.own p));
        Array.iter
          (fun rd ->
            let sr = Swmr.sr_reader rd in
            Buffer.add_string b
              (Printf.sprintf "r%d:%s," (Swsr_atomic.pwsn sr)
                 (Value.to_string (Swsr_atomic.pv sr))))
          (Mwmr.views p);
        Buffer.add_char b '\n')
      procs);
  (* which corruption choices are still available *)
  Buffer.add_string b "\nM:";
  List.iter
    (fun i -> Buffer.add_string b (string_of_int i); Buffer.add_char b ' ')
    (List.sort Int.compare t.applied);
  (* fiber progress *)
  List.iter
    (fun (name, h) ->
      Buffer.add_string b name;
      Buffer.add_char b
        (match Sim.Fiber.status h with
        | Sim.Fiber.Running -> 'r'
        | Sim.Fiber.Done -> 'd'
        | Sim.Fiber.Failed _ -> 'f'))
    t.fibers;
  Buffer.add_char b '\n';
  add_history b t;
  (Digest.string (Buffer.contents b), ren, rep)

let fingerprint_ex t =
  let d, ren, rep = fingerprint_raw_ex t in
  (Digest.to_hex d, ren, rep)

let fingerprint t =
  let d, _, _ = fingerprint_ex t in
  d

(* Rewrite every "s<digits>" token of a link label through the canonical
   renaming, so a sleep-set move recorded at one member of a symmetry
   class is comparable with the same move at another member. *)
let rename_servers_in_label ren label =
  let n = String.length label in
  let b = Buffer.create n in
  let is_digit c = c >= '0' && c <= '9' in
  let is_word c =
    is_digit c || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  in
  let i = ref 0 in
  while !i < n do
    if
      Char.equal label.[!i] 's'
      && !i + 1 < n
      && is_digit label.[!i + 1]
      && (!i = 0 || not (is_word label.[!i - 1]))
    then begin
      let j = ref (!i + 1) in
      while !j < n && is_digit label.[!j] do incr j done;
      let id = int_of_string (String.sub label (!i + 1) (!j - !i - 1)) in
      Buffer.add_char b 's';
      Buffer.add_string b (string_of_int (ren id));
      i := !j
    end
    else begin
      Buffer.add_char b label.[!i];
      incr i
    end
  done;
  Buffer.contents b

let canonical_move ren = function
  | Deliver label -> Deliver (rename_servers_in_label ren label)
  | (Tick _ | Corrupt _) as m -> m
