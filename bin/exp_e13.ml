(* E13 — The §5.1 SWMR composition vs. the classical reader write-back.

   §5.1 composes one SWSR atomic register per reader and asserts the
   result is an SWMR register.  Per-reader atomicity holds, but the copies
   are written sequentially, so a scripted schedule produces a
   cross-reader new/old inversion: reader 0 returns the new value, a
   strictly later reader 1 returns the old one.  The classical reader
   write-back ([13, 15]; module Registers.Swmr_wb) closes the gap at the
   cost of extra exchange-register traffic. *)

open Registers

let random_workload ~seed kind =
  let params = Common.async_params ~n:9 ~f:1 in
  let scn = Common.scenario ~seed ~params () in
  let net = scn.Harness.Scenario.net in
  let h = scn.Harness.Scenario.history in
  let record proc kind_ inv v =
    Oracles.History.record h ~proc ~kind:kind_ ~inv
      ~resp:(Harness.Scenario.now scn) v
  in
  let write, read0, read1 =
    match kind with
    | `Paper ->
      let w = Swmr.writer ~net ~client_id:100 ~base_inst:0 ~readers:2 () in
      let r0 = Swmr.reader ~net ~client_id:200 ~base_inst:0 ~reader_index:0 () in
      let r1 = Swmr.reader ~net ~client_id:201 ~base_inst:0 ~reader_index:1 () in
      (Swmr.write w, (fun () -> Swmr.read r0), fun () -> Swmr.read r1)
    | `Write_back ->
      let w = Swmr_wb.writer ~net ~client_id:100 ~base_inst:0 ~readers:2 () in
      let r0 =
        Swmr_wb.reader ~net ~client_id:200 ~base_inst:0 ~reader_index:0 ()
      in
      let r1 =
        Swmr_wb.reader ~net ~client_id:201 ~base_inst:0 ~reader_index:1 ()
      in
      (Swmr_wb.write w, (fun () -> Swmr_wb.read r0), fun () -> Swmr_wb.read r1)
  in
  Common.run_jobs scn
    [
      ( "writer",
        fun () ->
          for i = 1 to 25 do
            let inv = Harness.Scenario.now scn in
            write (Value.int i);
            record "writer" Oracles.History.Write inv (Value.int i)
          done );
      ( "r0",
        fun () ->
          let rng = Harness.Scenario.split_rng scn in
          for _ = 1 to 20 do
            let inv = Harness.Scenario.now scn in
            (match read0 () with
            | Some v -> record "r0" Oracles.History.Read inv v
            | None -> ());
            Harness.Scenario.sleep scn (Sim.Rng.int_in rng 0 10)
          done );
      ( "r1",
        fun () ->
          let rng = Harness.Scenario.split_rng scn in
          for _ = 1 to 20 do
            let inv = Harness.Scenario.now scn in
            (match read1 () with
            | Some v -> record "r1" Oracles.History.Read inv v
            | None -> ());
            Harness.Scenario.sleep scn (Sim.Rng.int_in rng 0 10)
          done );
    ];
  Common.observe_scn scn;
  let cutoff =
    match Common.first_write_resp scn with Some t -> t | None -> Sim.Vtime.zero
  in
  let report = Oracles.Atomicity.Sw.check ~cutoff h in
  ( List.length report.Oracles.Atomicity.Sw.inversions,
    Harness.Scenario.messages_sent scn )

let run ~seed =
  Harness.Report.section
    "E13: §5.1 SWMR composition vs classical reader write-back";
  let scripted kind =
    let o = Harness.Swmr_inversion.run kind in
    [
      (match kind with `Paper -> "§5.1 composition" | `Write_back -> "with write-back");
      Common.value_str o.Harness.Swmr_inversion.read_r0;
      Common.value_str o.Harness.Swmr_inversion.read_r1;
      Common.bool_str o.Harness.Swmr_inversion.inversion;
    ]
  in
  Harness.Report.table
    ~title:
      "scripted schedule: write(2) updates reader-0's copy, then stalls\n\
       before reader-1's; reader 0 reads, then reader 1 reads"
    ~header:[ "variant"; "reader 0"; "reader 1 (later)"; "cross-reader inversion" ]
    [ scripted `Paper; scripted `Write_back ];
  let seeds = 5 in
  let rows =
    List.map
      (fun kind ->
        let inv = ref 0 and msgs = ref 0 in
        for s = 0 to seeds - 1 do
          let i, m = random_workload ~seed:(seed + s) kind in
          inv := !inv + i;
          msgs := !msgs + m
        done;
        [
          (match kind with
          | `Paper -> "§5.1 composition"
          | `Write_back -> "with write-back");
          string_of_int !inv;
          string_of_int (!msgs / seeds);
        ])
      [ `Paper; `Write_back ]
  in
  Harness.Report.table
    ~title:"random concurrent workload: 25 writes vs 2x20 reads, 5 seeds"
    ~header:[ "variant"; "cross-reader inversions"; "messages/run" ]
    rows;
  print_endline
    "  Shape: the §5.1 composition is atomic per reader but admits\n\
    \  cross-reader inversions under adversarial scheduling (random\n\
    \  schedules rarely show them); the classical write-back eliminates\n\
    \  them, paying ~2x the messages for two readers (one exchange-\n\
    \  register read and write per incoming/outgoing neighbour)."
