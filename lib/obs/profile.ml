let schema_version = "stabreg/mc-profile/v1"

type t = {
  kind : string;
  every : int;
  clock : unit -> float;
  t0 : float;
  mutable last_tick : int;
  mutable samples_rev : Json.t list;
  mutable sections_rev : (string * Json.t) list;
}

let create ?(every = 1000) ?(clock = fun () -> 0.) ~kind () =
  if every <= 0 then invalid_arg "Profile.create: every must be positive";
  {
    kind;
    every;
    clock;
    t0 = clock ();
    last_tick = min_int;
    samples_rev = [];
    sections_rev = [];
  }

let branch t =
  {
    kind = t.kind;
    every = t.every;
    clock = t.clock;
    t0 = t.clock ();
    last_tick = min_int;
    samples_rev = [];
    sections_rev = [];
  }

let due t ~tick = t.last_tick = min_int || tick - t.last_tick >= t.every

let record t ~tick fields =
  t.last_tick <- tick;
  t.samples_rev <-
    Json.Obj
      (("tick", Json.Int tick)
      :: ("elapsed_s", Json.Float (t.clock () -. t.t0))
      :: fields)
    :: t.samples_rev

let sample ?(force = false) t ~tick fields =
  if force || due t ~tick then record t ~tick (fields ())

let add_section t name v = t.sections_rev <- (name, v) :: t.sections_rev

let samples t = List.length t.samples_rev

let sample_jsons t = List.rev t.samples_rev

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("kind", Json.Str t.kind);
      ("every", Json.Int t.every);
      ("samples", Json.List (List.rev t.samples_rev));
      ("sections", Json.Obj (List.rev t.sections_rev));
    ]

(* --- validation ------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ctx key j =
  match Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let validate j =
  let* schema = field "profile" "schema" j in
  let* () =
    match Json.to_string_opt schema with
    | Some s when String.equal s schema_version -> Ok ()
    | Some s ->
      Error
        (Printf.sprintf "profile: schema mismatch: got %S, want %S" s
           schema_version)
    | None -> Error "profile.schema: expected a string"
  in
  let* kind = field "profile" "kind" j in
  let* () =
    match Json.to_string_opt kind with
    | Some _ -> Ok ()
    | None -> Error "profile.kind: expected a string"
  in
  let* every = field "profile" "every" j in
  let* () =
    match Json.to_int_opt every with
    | Some e when e > 0 -> Ok ()
    | Some _ -> Error "profile.every: expected a positive integer"
    | None -> Error "profile.every: expected an integer"
  in
  let* samples = field "profile" "samples" j in
  let* sample_list =
    match Json.to_list_opt samples with
    | Some l -> Ok l
    | None -> Error "profile.samples: expected a list"
  in
  let check_sample i s =
    let ctx = Printf.sprintf "profile.samples[%d]" i in
    let* _ =
      match Json.to_obj_opt s with
      | Some fields -> Ok fields
      | None -> Error (ctx ^ ": expected an object")
    in
    let* tick = field ctx "tick" s in
    let* () =
      match Json.to_int_opt tick with
      | Some _ -> Ok ()
      | None -> Error (ctx ^ ".tick: expected an integer")
    in
    let* elapsed = field ctx "elapsed_s" s in
    match Json.to_float_opt elapsed with
    | Some _ -> Ok ()
    | None -> Error (ctx ^ ".elapsed_s: expected a number")
  in
  let rec go i = function
    | [] -> Ok ()
    | s :: rest ->
      let* () = check_sample i s in
      go (i + 1) rest
  in
  let* () = go 0 sample_list in
  let* sections = field "profile" "sections" j in
  match Json.to_obj_opt sections with
  | Some _ -> Ok ()
  | None -> Error "profile.sections: expected an object"

let write ~dir ~name t =
  Report.mkdir_p dir;
  let path = Filename.concat dir (name ^ ".json") in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  output_char oc '\n';
  close_out oc;
  path
