(** Byzantine server strategies.

    A Byzantine server "behaves arbitrarily" (§2.1).  A {!t} replaces the
    honest automaton at a server slot: it receives every ss-delivered
    envelope and may answer with anything, to anyone, at any time — each
    strategy here is one point in that arbitrary-behaviour space, chosen
    either to sample it (random strategies) or to be a worst case for a
    specific quorum predicate (the colluding strategies used by the
    bound-tightness experiments). *)

type ctx = {
  net : Registers.Net.t;
  server_id : int;
  rng : Sim.Rng.t;
}

type t = ctx -> Registers.Messages.server_envelope -> unit
(** Invoked on each ss-delivery at the compromised server. *)

val silent : t
(** Never answers: the pure omission adversary (stresses the [n - t]
    ack-wait). *)

type wipe = [ `Arbitrary | `Reset | `Keep ]
(** What a recovering server's volatile state looks like when it rejoins:
    arbitrary (a transient fault drew it), reset to pristine [bot] content
    (lost everything), or kept (crash hit only the process, e.g. a restart
    with durable state).  [`Arbitrary] and [`Reset] make recovery a
    transient fault by construction. *)

val apply_wipe : wipe -> Registers.Server.t -> Sim.Rng.t -> unit
(** Rewrite a server's volatile state per the wipe kind (the generator is
    consumed only by [`Arbitrary]). *)

val crash_recover :
  down_for:Sim.Vtime.span -> wipe:wipe -> Registers.Server.t -> t
(** Crash-recovery fault: drop every delivery for [down_for] ticks (the
    down window starts at the first delivery observed), then resume the
    honest automaton over state rewritten per [wipe]. *)

val crash_after : int -> Registers.Server.t -> t
(** Honest for the first [k] deliveries, then crashed (a benign fault,
    strictly weaker than Byzantine — useful to check the algorithms never
    depend on crashed servers resuming). *)

val honest : Registers.Server.t -> t
(** The correct automaton (used to restore a slot when Byzantine faults
    move away — the state it resumes over is whatever the slot holds). *)

val garbage : t
(** Answers every message with a randomly shaped, randomly valued
    acknowledgment carrying the correct round tag (so it is counted). *)

val frozen : Registers.Server.t -> t
(** Acknowledges like a correct server but never applies writes: it
    forever echoes the state its automaton had when compromised — the
    stale-replay adversary that stresses regularity. *)

val equivocate : t
(** Sends well-formed but per-client-divergent values (derived
    deterministically from the client id), attacking agreement between the
    writer's and the reader's views. *)

val collude : cell:Registers.Messages.cell -> t
(** All colluders vouch for the same fabricated cell in both the
    [last_val] and [helping_val] positions.  With enough colluders
    ([>= read_quorum]) this forges a read quorum for a value never written
    — the safety attack the resilience bounds exclude. *)

val flaky : drop_probability:float -> Registers.Server.t -> t
(** Honest, but drops each delivery with the given probability (models a
    server "committing Byzantine failures" only sometimes). *)

val delayed : by:Sim.Vtime.span -> Registers.Server.t -> t
(** Honest, but processes every delivery only after an extra delay —
    violating the zero-processing-time assumption correct servers obey. *)
