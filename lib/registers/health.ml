type t = { misses : int array; threshold : int }

let create ?(threshold = 2) ~n () =
  if n <= 0 then invalid_arg "Health: n must be positive";
  if threshold <= 0 then invalid_arg "Health: threshold must be positive";
  { misses = Array.make n 0; threshold }

let n t = Array.length t.misses

let note t ~server ~answered =
  if server >= 0 && server < Array.length t.misses then
    if answered then t.misses.(server) <- 0
    else t.misses.(server) <- t.misses.(server) + 1

let misses t server =
  if server >= 0 && server < Array.length t.misses then t.misses.(server)
  else 0

let suspected t server = misses t server >= t.threshold

let suspects t =
  let acc = ref [] in
  for s = Array.length t.misses - 1 downto 0 do
    if t.misses.(s) >= t.threshold then acc := s :: !acc
  done;
  !acc

let responsive t = Array.length t.misses - List.length (suspects t)

let forget t = Array.fill t.misses 0 (Array.length t.misses) 0
