type writer = {
  net : Net.t;
  port : Net.client_port;
  inst : int;
  modulus : int;
  probe : Instr.probe;
  mutable wsn : Seqnum.t;
}

type reader = {
  net : Net.t;
  port : Net.client_port;
  inst : int;
  modulus : int;
  probe : Instr.probe;
  sanity_check : bool;
  mutable pwsn : Seqnum.t;
  mutable pv : Value.t;
  mutable iterations : int;
  mutable help_returns : int;
  mutable preventions : int;
}

let writer ~net ~client_id ~inst ?(modulus = Seqnum.default_modulus) () =
  Seqnum.validate_modulus modulus;
  {
    net;
    port = Net.add_client net ~id:client_id;
    inst;
    modulus;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swsr_atomic" `Write;
    wsn = Seqnum.zero;
  }

let reader ~net ~client_id ~inst ?(modulus = Seqnum.default_modulus)
    ?(sanity_check = true) () =
  Seqnum.validate_modulus modulus;
  {
    net;
    port = Net.add_client net ~id:client_id;
    inst;
    modulus;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swsr_atomic" `Read;
    sanity_check;
    pwsn = Seqnum.zero;
    pv = Value.bot;
    iterations = 0;
    help_returns = 0;
    preventions = 0;
  }

(* prac_at_write(v): lines N1, 01M, 02-06. *)
let write_o ?parent (w : writer) v =
  let span = Instr.start ?parent w.probe in
  let ctx = Instr.ctx span in
  let params = Net.params w.net in
  w.wsn <- Seqnum.succ ~modulus:w.modulus w.wsn;
  let cell = { Messages.sn = w.wsn; v } in
  let c =
    Collect.retrying ~span:ctx ~net:w.net ~port:w.port ~inst:w.inst
      ~body:(Messages.Write cell) ~filter:Collect.write_filter ()
  in
  let threshold = Params.help_refresh_threshold params in
  (match Quorum.find_help ~threshold c.Collect.payloads with
  | Some _ -> ()
  | None ->
    ignore
      (Net.ss_broadcast ~span:ctx w.net w.port ~inst:w.inst
         (Messages.New_help cell)));
  let outcome = Collect.judge ~net:w.net ~port:w.port c in
  Sim.Trace.incr (Sim.Engine.trace (Net.engine w.net)) "write.ops";
  Instr.finish
    ~ok:(Outcome.is_ok outcome || Params.retry params = None)
    w.probe span;
  outcome

let write ?parent (w : writer) v = ignore (write_o ?parent w v)

(* prac_at_read(): lines N2-N7 (sanity check) then 07-18 with 13M/15M. *)
let read_o ?parent ?(max_iterations = max_int) (r : reader) =
  let span = Instr.start ?parent r.probe in
  let ctx = Instr.ctx span in
  let params = Net.params r.net in
  let threshold = Params.read_quorum params in
  let modulus = r.modulus in
  (* Lines N2-N7: sanity-check the local pair (pwsn, pv) against a quorum
     of helping values.  READ(false) does not reset any helping_val.  The
     check is advisory, so an expired attempt simply skips it. *)
  if r.sanity_check then begin
    let round =
      Net.ss_broadcast ~span:ctx r.net r.port ~inst:r.inst
        (Messages.Read false)
    in
    let a =
      Collect.attempt_once ~net:r.net ~port:r.port ~round ~attempt:0
        ~filter:Collect.read_filter
    in
    match Quorum.find_help ~threshold (List.map snd a.Collect.payloads) with
    | Some { Messages.sn; v } ->
      if Seqnum.gt_cd ~modulus r.pwsn sn then begin
        r.pwsn <- sn;
        r.pv <- v
      end
    | None -> ()
  end;
  (* Lines 07-18. *)
  let timeout_budget =
    match Params.retry params with
    | None -> max_int
    | Some rc -> max 1 rc.Params.attempts
  in
  let new_read = ref true in
  let attempts = ref 0 in
  let timeouts = ref 0 in
  let best_acks = ref 0 in
  let rec loop budget =
    if budget <= 0 || !timeouts >= timeout_budget then None
    else begin
      r.iterations <- r.iterations + 1;
      incr attempts;
      let round =
        Net.ss_broadcast ~span:ctx r.net r.port ~inst:r.inst
          (Messages.Read !new_read)
      in
      new_read := false;
      let a =
        Collect.attempt_once ~net:r.net ~port:r.port ~round
          ~attempt:(!attempts - 1) ~filter:Collect.read_filter
      in
      if a.Collect.acks > !best_acks then best_acks := a.Collect.acks;
      let acks = a.Collect.payloads in
      match Quorum.find_cell ~threshold (List.map fst acks) with
      | Some { Messages.sn; v } ->
        if Seqnum.gt_cd ~modulus sn r.pwsn then begin
          (* line 13M2 *)
          r.pwsn <- sn;
          r.pv <- v;
          Some v
        end
        else begin
          (* line 13M3: prevention of new/old inversion *)
          r.preventions <- r.preventions + 1;
          Some r.pv
        end
      | None -> (
        match Quorum.find_help ~threshold (List.map snd acks) with
        | Some { Messages.sn; v } ->
          (* line 15M: already atomic *)
          r.pwsn <- sn;
          r.pv <- v;
          r.help_returns <- r.help_returns + 1;
          Some v
        | None ->
          if a.Collect.expired then begin
            incr timeouts;
            if !timeouts < timeout_budget && budget > 1 then
              Collect.backoff_wait ~net:r.net ~port:r.port ~attempt:!timeouts
          end;
          loop (budget - 1))
    end
  in
  let result = loop max_iterations in
  let outcome =
    match result with
    | Some v -> Outcome.Ok v
    | None ->
      let reason =
        Collect.reason_of ~net:r.net ~port:r.port ~attempts:(max 1 !attempts)
          ~acks:!best_acks ~need:(Params.ack_wait params)
      in
      if !best_acks >= threshold then Outcome.Degraded reason
      else Outcome.Timed_out reason
  in
  Sim.Trace.incr (Sim.Engine.trace (Net.engine r.net)) "read.ops";
  Instr.finish ~ok:(Outcome.is_ok outcome) r.probe span;
  outcome

let read ?parent ?max_iterations (r : reader) =
  Outcome.to_option (read_o ?parent ?max_iterations r)

let wsn w = w.wsn

let set_wsn (w : writer) sn = w.wsn <- Seqnum.norm ~modulus:w.modulus sn

let pwsn r = r.pwsn

let pv r = r.pv

let corrupt_writer (w : writer) rng = w.wsn <- Sim.Rng.int rng w.modulus

let corrupt_reader r rng =
  r.pwsn <- Sim.Rng.int rng r.modulus;
  r.pv <- Value.arbitrary rng

let corrupt_reader_to r ~pwsn ~pv =
  r.pwsn <- Seqnum.norm ~modulus:r.modulus pwsn;
  r.pv <- pv

let reader_iterations r = r.iterations

let help_returns r = r.help_returns

let inversion_preventions r = r.preventions

let writer_port (w : writer) = w.port

let reader_port (r : reader) = r.port
