open Util
open Oracles

let t i = Sim.Vtime.of_int i

let mk_op ?(proc = "p") ?(ok = true) kind inv resp v =
  (proc, kind, t inv, t resp, int_value v, ok)

let record h (proc, kind, inv, resp, v, ok) =
  History.record h ~proc ~kind ~inv ~resp ~ok v

let test_record_and_sort () =
  let h = History.create () in
  record h (mk_op History.Read 10 20 1);
  record h (mk_op History.Write 0 5 2);
  record h (mk_op History.Read 7 9 3);
  check_int "length" 3 (History.length h);
  let invs = List.map (fun (o : History.op) -> Sim.Vtime.to_int o.inv) (History.ops h) in
  check_true "sorted by invocation" (invs = [ 0; 7; 10 ]);
  check_int "writes" 1 (List.length (History.writes h));
  check_int "reads" 2 (List.length (History.reads h))

let test_stable_order_on_ties () =
  let h = History.create () in
  History.record h ~proc:"a" ~kind:History.Read ~inv:(t 5) ~resp:(t 6) (int_value 1);
  History.record h ~proc:"b" ~kind:History.Read ~inv:(t 5) ~resp:(t 6) (int_value 2);
  match History.ops h with
  | [ o1; o2 ] ->
    Alcotest.(check string) "recording order kept" "a" o1.History.proc;
    Alcotest.(check string) "second" "b" o2.History.proc
  | _ -> Alcotest.fail "expected two ops"

let test_overlap_semantics () =
  let h = History.create () in
  record h (mk_op History.Write 0 10 1);
  record h (mk_op History.Write 10 20 2);
  record h (mk_op History.Write 5 15 3);
  match History.ops h with
  | [ w1; w3; w2 ] ->
    check_false "touching endpoints are sequential" (History.overlap w1 w2);
    check_true "genuine overlap" (History.overlap w1 w3);
    check_true "overlap symmetric" (History.overlap w3 w1);
    check_true "w3/w2 overlap" (History.overlap w3 w2)
  | _ -> Alcotest.fail "unexpected ordering"

let test_failed_read_flag () =
  let h = History.create () in
  record h (mk_op ~ok:false History.Read 0 4 0);
  match History.ops h with
  | [ o ] ->
    check_false "not ok" o.History.ok;
    check_true "prints budget note"
      (let s = Format.asprintf "%a" History.pp_op o in
       String.length s > 0)
  | _ -> Alcotest.fail "one op expected"

let test_ts_recorded () =
  let h = History.create () in
  let e = Registers.Epoch.genesis ~k:2 in
  History.record h ~proc:"p" ~kind:History.Write ~inv:(t 0) ~resp:(t 1)
    ~ts:(e, 4, 2) (int_value 9);
  match History.ops h with
  | [ o ] -> check_true "timestamp kept" (o.History.ts = Some (e, 4, 2))
  | _ -> Alcotest.fail "one op expected"

let tests =
  [
    case "record and sort" test_record_and_sort;
    case "stable order on ties" test_stable_order_on_ties;
    case "overlap semantics" test_overlap_semantics;
    case "failed read flag" test_failed_read_flag;
    case "timestamps recorded" test_ts_recorded;
  ]
