test/test_report.ml: Alcotest Buffer Format Harness List String Util
