(** Discrete-event simulation engine.

    The engine owns virtual time and a priority queue of pending actions.
    Everything else (links, fibers, fault plans) schedules thunks here.
    Two events at the same instant fire in scheduling order, which keeps
    executions deterministic. *)

type t

val create : ?trace:Trace.t -> rng:Rng.t -> unit -> t
(** A fresh engine at time {!Vtime.zero}. [rng] is the root generator from
    which component generators should be {!Rng.split}. *)

val now : t -> Vtime.t

val rng : t -> Rng.t

val trace : t -> Trace.t

val metrics : t -> Obs.Metrics.t
(** The metrics registry of the engine's trace. *)

val hub : t -> Obs.Hub.t
(** The typed-event hub of the engine's trace. *)

val schedule : t -> delay:Vtime.span -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + max delay 0]. *)

val schedule_at : t -> Vtime.t -> (unit -> unit) -> unit
(** Like {!schedule} with an absolute instant; instants in the past fire at
    the current time. *)

val run : ?until:Vtime.t -> ?max_events:int -> t -> unit
(** Process events until the queue is empty, [until] is reached, or
    [max_events] events have fired.  Events scheduled exactly at [until]
    still fire. *)

val pending : t -> int
(** Number of queued events. *)

val quiescent : t -> bool
(** [true] when no events are queued. *)
