(* MC: bounded model checking of the register protocols — exhaustive
   interleaving + corruption exploration with replayable counterexamples.

     dune exec bin/experiments.exe -- mc --family regular --servers 3 --t 0
     dune exec bin/experiments.exe -- mc --family regular --byz 2 \
       --expect violation --out results/mc
     dune exec bin/experiments.exe -- mc --replay examples/mc/....json
*)

open Mc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let parent = Filename.dirname path in
  if parent <> "" && parent <> "." then Obs.Report.mkdir_p parent;
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let stats_to_json (s : Checker.stats) =
  Obs.Json.Obj
    [
      ("states", Obs.Json.Int s.states);
      ("transitions", Obs.Json.Int s.transitions);
      ("terminals", Obs.Json.Int s.terminals);
      ("revisits", Obs.Json.Int s.revisits);
      ("sleep_skips", Obs.Json.Int s.sleep_skips);
      ("sym_skips", Obs.Json.Int s.sym_skips);
      ("replays", Obs.Json.Int s.replays);
      ("off_target", Obs.Json.Int s.off_target);
      ("fp_collisions", Obs.Json.Int s.fp_collisions);
      ("peak_visited", Obs.Json.Int s.peak_visited);
      ("max_depth_seen", Obs.Json.Int s.max_depth_seen);
      ("truncated", Obs.Json.Bool s.truncated);
    ]

let pp_stats (s : Checker.stats) =
  Printf.printf
    "  states=%d transitions=%d terminals=%d revisits=%d sleep_skips=%d \
     sym_skips=%d replays=%d off_target=%d fp_collisions=%d \
     peak_visited=%d max_depth=%d%s\n"
    s.states s.transitions s.terminals s.revisits s.sleep_skips s.sym_skips
    s.replays s.off_target s.fp_collisions s.peak_visited s.max_depth_seen
    (if s.truncated then " TRUNCATED" else "")

let describe_outcome tag (o : Checker.outcome) =
  Format.printf "%s: %a — %s@." tag Checker.pp_verdict o.verdict
    (if o.exhaustive then "exhaustive (every reachable state checked)"
     else "bounded (budget truncated the search)");
  pp_stats o.stats

let artifact_path ~out (cfg : Config.t) v =
  Filename.concat out
    (Printf.sprintf "mc-%s-%s.json"
       (Config.family_to_string cfg.family)
       (Checker.verdict_kind v))

let emit_cex ~out cfg (result : Checker.run) =
  match result.cex with
  | None -> None
  | Some cex ->
    let path = artifact_path ~out cfg cex.Checker.verdict in
    write_file path (Obs.Json.to_string_pretty (Checker.cex_to_json cex));
    Printf.printf "counterexample: %d move(s) after %d shrink run(s) -> %s\n"
      (List.length cex.Checker.trace)
      result.shrink_runs path;
    (match Checker.replay cex with
    | Ok _ -> Printf.printf "artifact replays bit-for-bit\n"
    | Error e -> Printf.printf "REPLAY FAILED: %s\n" e);
    Some (path, cex)

(* Run one search (plus the optional no-reduction cross-check); returns
   [Ok ()] or a CI-facing error. *)
let run ~cfg ~budgets ~reduction ~use_visited ~seed ~target ~cross_check
    ~domains ~sequential_check ~expect ~out ?recorder () =
  Printf.printf
    "mc: family=%s n=%d t=%d byz=%d writes=%d reads=%d menu=%d oracle=%s \
     reduction=%s max_states=%d max_depth=%d domains=%d%s%s\n\n"
    (Config.family_to_string cfg.Config.family)
    cfg.Config.n cfg.Config.f
    (List.length cfg.Config.byz)
    cfg.Config.writes cfg.Config.reads
    (List.length cfg.Config.menu)
    (Config.oracle_to_string cfg.Config.oracle)
    (Checker.reduction_to_string reduction)
    budgets.Checker.max_states budgets.Checker.max_depth domains
    (match seed with
    | None -> ""
    | Some s -> Printf.sprintf " seed=%d" s)
    (match target with
    | None -> ""
    | Some t -> Printf.sprintf " target=%s" t);
  let t0 = Stdlib.Sys.time () in
  let result =
    Checker.check ~budgets ~reduction ~use_visited ?seed ?target ?recorder
      ~domains ~log:print_endline cfg
  in
  let dt = Stdlib.Sys.time () -. t0 in
  describe_outcome "search" result.outcome;
  Printf.printf "  %.2fs (%.0f states/s)\n" dt
    (float_of_int result.outcome.stats.states /. Float.max dt 1e-9);
  let artifact = emit_cex ~out cfg result in
  (* --sequential-check: re-run the plain sequential search and demand the
     parallel portfolio reported the same verdict and the same trace.
     Slice 0 of the portfolio IS the sequential search and the merge
     prefers the lowest slice index, so any disagreement is a bug. *)
  let sequential =
    if not sequential_check then None
    else begin
      Printf.printf "\nsequential-check: re-searching with domains=1\n";
      let o = Checker.search ~budgets ~reduction ~use_visited ?seed ?target cfg in
      describe_outcome "sequential" o;
      Some o
    end
  in
  let cross =
    if not cross_check then None
    else begin
      Printf.printf "\ncross-check: re-searching with reduction=none\n";
      let o =
        Checker.search ~budgets ~reduction:Checker.No_reduction ~use_visited
          ?seed ?target cfg
      in
      describe_outcome "cross-check" o;
      Some o
    end
  in
  Common.add_extra "mc"
    (Obs.Json.Obj
       ([
          ("config", Config.to_json cfg);
          ("reduction", Obs.Json.Str (Checker.reduction_to_string reduction));
          ( "seed",
            match seed with
            | None -> Obs.Json.Null
            | Some s -> Obs.Json.Int s );
          ( "target",
            match target with
            | None -> Obs.Json.Null
            | Some t -> Obs.Json.Str t );
          ( "verdict",
            Obs.Json.Str (Checker.verdict_kind result.outcome.verdict) );
          ("exhaustive", Obs.Json.Bool result.outcome.exhaustive);
          ("stats", stats_to_json result.outcome.stats);
          ("seconds", Obs.Json.Float dt);
          ("domains", Obs.Json.Int domains);
          ("sequential_check", Obs.Json.Bool sequential_check);
        ]
       @ (match artifact with
         | Some (path, _) -> [ ("artifact", Obs.Json.Str path) ]
         | None -> [])
       @
       match cross with
       | Some o ->
         [
           ( "cross_check",
             Obs.Json.Obj
               [
                 ("verdict", Obs.Json.Str (Checker.verdict_kind o.verdict));
                 ("exhaustive", Obs.Json.Bool o.exhaustive);
                 ("stats", stats_to_json o.stats);
               ] );
         ]
       | None -> []));
  let verdict_errors =
    match (expect, result.outcome.verdict) with
    | None, _ -> []
    | Some `Clean, Checker.Clean when result.outcome.exhaustive -> []
    | Some `Clean, Checker.Clean ->
      [ "expected an exhaustive clean verdict, but a budget truncated the \
         search (raise --max-states/--depth)" ]
    | Some `Clean, v ->
      [ Format.asprintf "expected clean, found %a" Checker.pp_verdict v ]
    | Some `Violation, Checker.Violation _ -> (
      match artifact with
      | Some (_, cex) -> (
        match Checker.replay cex with
        | Ok _ -> []
        | Error e -> [ "violation artifact failed to replay: " ^ e ])
      | None -> [ "violation found but no artifact was produced" ])
    | Some `Violation, Checker.Clean ->
      [ "expected a violation, search came back clean" ]
  in
  let sequential_errors =
    match sequential with
    | None -> []
    | Some o ->
      let traces_equal =
        match (result.outcome.trace, o.Checker.trace) with
        | None, None -> true
        | Some a, Some b ->
          List.length a = List.length b && List.for_all2 Sys.move_equal a b
        | _ -> false
      in
      if Checker.verdict_equal result.outcome.verdict o.Checker.verdict
         && traces_equal
      then []
      else
        [
          Format.asprintf
            "sequential-check disagrees: parallel search found %a, \
             sequential found %a%s"
            Checker.pp_verdict result.outcome.verdict Checker.pp_verdict
            o.Checker.verdict
            (if traces_equal then "" else " (traces differ)");
        ]
  in
  let cross_errors =
    match cross with
    | None -> []
    | Some o ->
      if Checker.same_verdict o.verdict result.outcome.verdict then []
      else
        [
          Format.asprintf
            "cross-check disagrees: reduced search found %a, unreduced \
             found %a"
            Checker.pp_verdict result.outcome.verdict Checker.pp_verdict
            o.verdict;
        ]
  in
  match verdict_errors @ sequential_errors @ cross_errors with
  | [] -> Ok ()
  | errs -> Error (String.concat "; " errs)

(* Check a hand-written witness schedule: the file names the config and
   the critical deliveries to force, the drain is deterministic, and a
   violation is shrunk into the same replayable artifact the search
   produces. *)
let guide ~expect ~out path =
  match Obs.Json.parse (read_file path) with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok j -> (
    match Checker.guide_of_json j with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok (cfg, schedule) -> (
      Printf.printf "guide: %s (%d scheduled move(s))\n" path
        (List.length schedule);
      let result = Checker.guided ~log:print_endline cfg schedule in
      describe_outcome "guided" result.outcome;
      let artifact = emit_cex ~out cfg result in
      Common.add_extra "mc_guide"
        (Obs.Json.Obj
           ([
              ("schedule", Obs.Json.Str path);
              ("config", Config.to_json cfg);
              ( "verdict",
                Obs.Json.Str (Checker.verdict_kind result.outcome.verdict)
              );
            ]
           @
           match artifact with
           | Some (p, _) -> [ ("artifact", Obs.Json.Str p) ]
           | None -> []));
      match (expect, result.outcome.verdict) with
      | None, _ -> Ok ()
      | Some `Clean, Checker.Clean -> Ok ()
      | Some `Clean, v ->
        Error (Format.asprintf "expected clean, found %a" Checker.pp_verdict v)
      | Some `Violation, Checker.Violation _ -> (
        match artifact with
        | Some (_, cex) -> (
          match Checker.replay cex with
          | Ok _ -> Ok ()
          | Error e -> Error ("violation artifact failed to replay: " ^ e))
        | None -> Error "violation found but no artifact was produced")
      | Some `Violation, Checker.Clean ->
        Error "expected a violation, guided run came back clean"))

(* Replay a counterexample artifact; Ok when it reproduces bit-for-bit. *)
let replay path =
  match Obs.Json.parse (read_file path) with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok j -> (
    match Checker.cex_of_json j with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok cex ->
      Format.printf "recorded verdict: %a (%d move(s), digest %s)@."
        Checker.pp_verdict cex.Checker.verdict
        (List.length cex.Checker.trace)
        cex.Checker.digest;
      let outcome = Checker.replay cex in
      Common.add_extra "mc_replay"
        (Obs.Json.Obj
           [
             ("artifact", Obs.Json.Str path);
             ( "recorded",
               Obs.Json.Str (Checker.verdict_kind cex.Checker.verdict) );
             ( "replayed",
               Obs.Json.Str
                 (match outcome with
                 | Ok v -> Checker.verdict_kind v
                 | Error _ -> "error") );
           ]);
      (match outcome with
      | Ok v ->
        Format.printf "replayed verdict: %a@." Checker.pp_verdict v;
        Printf.printf "replay reproduced the artifact bit-for-bit\n";
        Ok ()
      | Error e -> Error (Printf.sprintf "%s: %s" path e)))
