type writer = { copies : Swsr_atomic.writer array }

type reader = { sr : Swsr_atomic.reader }

let writer ~net ~client_id ~base_inst ~readers ?(modulus = Seqnum.default_modulus)
    () =
  if readers <= 0 then invalid_arg "Swmr.writer: need at least one reader";
  {
    copies =
      Array.init readers (fun j ->
          Swsr_atomic.writer ~net ~client_id ~inst:(base_inst + j) ~modulus ());
  }

let reader ~net ~client_id ~base_inst ~reader_index
    ?(modulus = Seqnum.default_modulus) () =
  {
    sr =
      Swsr_atomic.reader ~net ~client_id ~inst:(base_inst + reader_index)
        ~modulus ();
  }

let write w v = Array.iter (fun c -> Swsr_atomic.write c v) w.copies

let read ?max_iterations r = Swsr_atomic.read ?max_iterations r.sr

let copies w = w.copies

let sr_reader r = r.sr
