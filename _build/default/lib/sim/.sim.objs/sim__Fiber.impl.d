lib/sim/fiber.ml: Effect
