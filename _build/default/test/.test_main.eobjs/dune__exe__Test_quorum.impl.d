test/test_quorum.ml: Alcotest Int List Messages QCheck Quorum Registers Util Value
