(** The footnote-3 self-stabilizing data link: an alternating-bit protocol
    over a bounded-capacity, lossy, duplicating, reordering channel.

    For each message [m], the sender repeatedly transmits the packet
    [(0, m)] until it has received [cap + 1] packets from the receiver
    (at most [cap] can be stale, so at least one acknowledges the current
    phase); then repeatedly transmits [(1, m)] until another [cap + 1]
    packets arrive.  The receiver acknowledges each data packet with its
    bit and executes ss_deliver(m) exactly when it receives [(1, m)]
    immediately after a [(0, m)].

    This module is the executable witness that the six ss-broadcast
    properties assumed by the registers are realizable over arbitrary
    initial link contents; the registers themselves run over the
    abstraction-level implementation in {!Registers.Net}. *)

type 'm session

val create : rng:Sim.Rng.t -> cap:int -> ?loss:float -> ?dup:float -> unit -> 'm session

val scramble : 'm session -> garbage:'m list -> unit
(** Transient fault: fill both channels with garbage packets (random bits
    over the given payloads) and corrupt the sender's phase bit and the
    receiver's last-packet memory. *)

val send : ?max_steps:int -> 'm session -> 'm -> (unit, string) result
(** Run the two-phase handshake for one message to completion.
    [Error] only if [max_steps] (default 100_000) scheduler steps did not
    complete the handshake (possible only under extreme loss rates). *)

val delivered : 'm session -> 'm list
(** Everything the receiver has ss-delivered so far, oldest first.
    Includes pre-stabilization debris from scrambled channel contents. *)

val take_delivered : 'm session -> 'm list
(** Like {!delivered} but also clears the list. *)

val steps : 'm session -> int
(** Total scheduler steps executed (cost metric for experiment E8). *)

val packets_sent : 'm session -> int
