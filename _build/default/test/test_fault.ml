open Util

let test_register_and_names () =
  let f = Sim.Fault.create () in
  Sim.Fault.register f ~name:"server.0" ignore;
  Sim.Fault.register f ~name:"server.1" ignore;
  Sim.Fault.register f ~name:"client.w" ignore;
  check_true "names in order"
    (Sim.Fault.names f = [ "server.0"; "server.1"; "client.w" ])

let test_inject_matching () =
  let f = Sim.Fault.create () in
  let hits = ref [] in
  List.iter
    (fun name -> Sim.Fault.register f ~name (fun _ -> hits := name :: !hits))
    [ "server.0"; "server.1"; "client.w" ];
  let rng = Sim.Rng.create 1 in
  let n = Sim.Fault.inject_matching f ~rng ~prefix:"server." in
  check_int "two hit" 2 n;
  check_true "right targets"
    (List.sort String.compare !hits = [ "server.0"; "server.1" ])

let test_inject_all () =
  let f = Sim.Fault.create () in
  let count = ref 0 in
  for i = 0 to 4 do
    Sim.Fault.register f
      ~name:(Printf.sprintf "t%d" i)
      (fun _ -> incr count)
  done;
  let rng = Sim.Rng.create 1 in
  check_int "all five" 5 (Sim.Fault.inject_all f ~rng);
  check_int "all ran" 5 !count

let test_rng_passed_through () =
  let f = Sim.Fault.create () in
  let seen = ref (-1) in
  Sim.Fault.register f ~name:"x" (fun rng -> seen := Sim.Rng.int rng 100);
  ignore (Sim.Fault.inject_all f ~rng:(Sim.Rng.create 5));
  check_true "corruption drew randomness" (!seen >= 0)

let test_scheduled_injection () =
  let rng = Sim.Rng.create 1 in
  let e = Sim.Engine.create ~rng () in
  let f = Sim.Fault.create () in
  let corrupted_at = ref (-1) in
  Sim.Fault.register f ~name:"cell" (fun _ ->
      corrupted_at := Sim.Vtime.to_int (Sim.Engine.now e));
  Sim.Fault.schedule f ~engine:e ~at:(Sim.Vtime.of_int 25) ~prefix:"";
  Sim.Engine.run e;
  check_int "fired at the right instant" 25 !corrupted_at;
  check_int "counter recorded" 1
    (Sim.Trace.counter (Sim.Engine.trace e) "fault.injections")

let tests =
  [
    case "register/names" test_register_and_names;
    case "inject matching" test_inject_matching;
    case "inject all" test_inject_all;
    case "rng passthrough" test_rng_passed_through;
    case "scheduled injection" test_scheduled_injection;
  ]
