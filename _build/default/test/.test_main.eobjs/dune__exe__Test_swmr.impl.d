test/test_swmr.ml: Alcotest Array Byzantine Harness List Oracles Printf Registers Sim Swmr Swmr_wb Util
