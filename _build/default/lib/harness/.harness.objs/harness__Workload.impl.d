lib/harness/workload.ml: List Oracles Registers Scenario Sim
