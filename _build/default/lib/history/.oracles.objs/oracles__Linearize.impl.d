lib/history/linearize.ml: Array History Registers Sim
