(** Aggregate statistics over histories and traces, for the experiment
    tables and benchmarks. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

val summary : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val summary_opt : float list -> summary option

val latencies : kind:Oracles.History.kind -> Oracles.History.t -> float list
(** Operation latencies (ticks) of the given kind, successful ops only. *)

val ok_reads : Oracles.History.t -> int

val failed_reads : Oracles.History.t -> int

val stabilization_read_index :
  valid:(Oracles.History.op -> bool) -> Oracles.History.t -> int option
(** Index (0-based, in invocation order) of the first read from which all
    subsequent reads satisfy [valid] — the empirically observed
    stabilization point; [None] if no suffix is clean or there are no
    reads. *)

val pp_summary : Format.formatter -> summary -> unit
