(** A deterministic cross-reader new/old inversion against the §5.1 SWMR
    composition — and its elimination by the reader write-back extension.

    The §5.1 text composes one SWSR atomic register per reader and writes
    each value to all copies, claiming the result is an SWMR (atomic)
    register.  Because the copies are written {e sequentially}, a reader of
    an early copy can return the new value while a strictly later reader of
    a late copy still returns the old one — per-reader atomicity holds but
    cross-reader atomicity does not.  {!run} builds the schedule exhibiting
    this ([`Paper]) and shows {!Registers.Swmr_wb}'s classical reader
    write-back removing it ([`Write_back]).  Experiment E13. *)

type outcome = {
  read_r0 : Registers.Value.t option;
  read_r1 : Registers.Value.t option;
  inversion : bool;
}

val run : [ `Paper | `Write_back ] -> outcome
