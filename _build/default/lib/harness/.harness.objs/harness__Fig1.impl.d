lib/harness/fig1.ml: Array Registers Script Sim
