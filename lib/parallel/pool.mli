(** Deterministic fan-out over OCaml 5 domains.

    The one guarantee everything else in this repo leans on: the value
    [map ~domains f items] returns — including which exception it
    raises, if any — is a function of [f] and [items] alone, never of
    how the runtime schedules domains.  Work is assigned round-robin
    before any domain starts, results land in distinct slots, and
    failures are reported in item order.  [f] must itself be
    self-contained: it runs concurrently with the other items and must
    not touch shared mutable state. *)

val available_domains : unit -> int
(** Domains worth spawning beside the caller's:
    [recommended_domain_count () - 1], floored at 1. *)

exception Worker_failure of int * exn
(** [Worker_failure (i, e)]: applying [f] to item [i] raised [e].  When
    several items fail, the lowest index wins — deterministically —
    regardless of which domain crashed first in wall-clock time. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f items] is [List.map f items] computed on up to
    [domains] domains ([domains - 1] spawned workers plus the calling
    domain).  Item order is preserved.  Item [0] always runs on the
    calling domain, so callers may give it caller-local side effects
    (e.g. attaching an observability sink).  With [domains = 1] (or a
    single item) no domain is spawned at all and the call is exactly
    [List.map].  Raises [Invalid_argument] if [domains < 1]. *)
