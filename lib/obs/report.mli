(** Machine-readable per-run reports with a stable schema.

    Every experiment driver emits one of these (as [results/<exp>.json])
    when run with [--json]; the schema is versioned so reports from
    different commits can be diffed mechanically.  See EXPERIMENTS.md for
    the field-by-field description. *)

val schema_version : string

type op_summary = {
  count : int;
  mean : float;
  min : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

type t

val create : experiment:string -> seed:int -> t

val experiment : t -> string

val set_params : t -> n:int -> f:int -> mode:string -> unit

val has_params : t -> bool

val set_stabilization : t -> int -> unit
(** Stabilization delay in ticks; never calling this serializes as
    [null]. *)

val add_message_class :
  t -> name:string -> sent:int -> recv:int -> bytes:int -> unit

val add_op_summary : t -> name:string -> op_summary -> unit

val op_summary_of_histogram : Metrics.histogram -> op_summary

val set_counters : t -> (string * int) list -> unit

val add_extra : t -> string -> Json.t -> unit
(** Free-form driver-specific payload under the ["extra"] key; not
    schema-checked beyond being an object member. *)

val to_json : t -> Json.t

val validate : Json.t -> (unit, string) result
(** Structural check of the versioned schema: required fields, their
    types, and the exact [schema] string. *)

val mkdir_p : string -> unit
(** [mkdir -p]: create the directory and any missing parents; existing
    components are left alone. *)

val write : dir:string -> t -> string
(** Write [<dir>/<experiment>.json] (pretty-printed), creating [dir] if
    needed; returns the path. *)
