type peer = Client of int | Server of int

type msg_class =
  | Write
  | New_help
  | Read
  | Ack_write
  | Ack_read
  | Link_ack

type op_kind = [ `Read | `Write ]

type t =
  | Send of {
      time : int;
      src : peer;
      dst : peer;
      cls : msg_class;
      bytes : int;
      span : Trace_ctx.span;
    }
  | Recv of {
      time : int;
      src : peer;
      dst : peer;
      cls : msg_class;
      bytes : int;
      span : Trace_ctx.span;
    }
  | Drop of { time : int; link : string; cls : msg_class option }
  | Op_invoke of {
      time : int;
      id : int;
      proc : string;
      reg : string;
      op : op_kind;
      span : Trace_ctx.span;
    }
  | Op_return of {
      time : int;
      id : int;
      proc : string;
      reg : string;
      op : op_kind;
      ok : bool;
      span : Trace_ctx.span;
    }
  | Phase of { time : int; server : int; phase : string; span : Trace_ctx.span }
  | Fault_injected of { time : int; target : string; hits : int }
  | Stabilized of { time : int }
  | Mark of { time : int; label : string }

let all_classes = [ Write; New_help; Read; Ack_write; Ack_read; Link_ack ]

let num_classes = List.length all_classes

let class_index = function
  | Write -> 0
  | New_help -> 1
  | Read -> 2
  | Ack_write -> 3
  | Ack_read -> 4
  | Link_ack -> 5

let class_name = function
  | Write -> "WRITE"
  | New_help -> "NEW_HELP_VAL"
  | Read -> "READ"
  | Ack_write -> "ACK_WRITE"
  | Ack_read -> "ACK_READ"
  | Link_ack -> "LINK_ACK"

let op_name = function `Read -> "read" | `Write -> "write"

let time = function
  | Send { time; _ }
  | Recv { time; _ }
  | Drop { time; _ }
  | Op_invoke { time; _ }
  | Op_return { time; _ }
  | Phase { time; _ }
  | Fault_injected { time; _ }
  | Stabilized { time }
  | Mark { time; _ } -> time

let span = function
  | Send { span; _ }
  | Recv { span; _ }
  | Op_invoke { span; _ }
  | Op_return { span; _ }
  | Phase { span; _ } -> span
  | Drop _ | Fault_injected _ | Stabilized _ | Mark _ -> Trace_ctx.none

let peer_to_json = function
  | Client i -> Json.Str (Printf.sprintf "c%d" i)
  | Server i -> Json.Str (Printf.sprintf "s%d" i)

let to_json e =
  let base kind time rest =
    Json.Obj (("ev", Json.Str kind) :: ("t", Json.Int time) :: rest)
  in
  match e with
  | Send { time; src; dst; cls; bytes; span } ->
    base "send" time
      ([
         ("src", peer_to_json src);
         ("dst", peer_to_json dst);
         ("msg", Json.Str (class_name cls));
         ("bytes", Json.Int bytes);
       ]
      @ Trace_ctx.fields span)
  | Recv { time; src; dst; cls; bytes; span } ->
    base "recv" time
      ([
         ("src", peer_to_json src);
         ("dst", peer_to_json dst);
         ("msg", Json.Str (class_name cls));
         ("bytes", Json.Int bytes);
       ]
      @ Trace_ctx.fields span)
  | Drop { time; link; cls } ->
    base "drop" time
      [
        ("link", Json.Str link);
        ( "msg",
          match cls with
          | Some c -> Json.Str (class_name c)
          | None -> Json.Null );
      ]
  | Op_invoke { time; id; proc; reg; op; span } ->
    base "op-invoke" time
      ([
         ("op_id", Json.Int id);
         ("proc", Json.Str proc);
         ("reg", Json.Str reg);
         ("op", Json.Str (op_name op));
       ]
      @ Trace_ctx.fields span)
  | Op_return { time; id; proc; reg; op; ok; span } ->
    base "op-return" time
      ([
         ("op_id", Json.Int id);
         ("proc", Json.Str proc);
         ("reg", Json.Str reg);
         ("op", Json.Str (op_name op));
         ("ok", Json.Bool ok);
       ]
      @ Trace_ctx.fields span)
  | Phase { time; server; phase; span } ->
    base "phase" time
      ([ ("server", Json.Int server); ("phase", Json.Str phase) ]
      @ Trace_ctx.fields span)
  | Fault_injected { time; target; hits } ->
    base "fault" time
      [ ("target", Json.Str target); ("hits", Json.Int hits) ]
  | Stabilized { time } -> base "stabilized" time []
  | Mark { time; label } -> base "mark" time [ ("label", Json.Str label) ]

let pp ppf e = Json.pp ppf (to_json e)
