(** Transient-fault injection.

    The paper's transient faults arbitrarily modify the local variables of
    any process (writer, reader, servers) and the state of the links; after
    an unknown time [tau_no_tr] they stop.  Components register their
    corruptible state here under hierarchical names
    (e.g. ["server.3.cell"], ["client.reader.pwsn"], ["link.s2->r"]); a
    fault plan then corrupts a chosen subset at chosen instants.

    Corruption functions receive a generator so that "arbitrary" values are
    drawn deterministically from the experiment seed. *)

type t

val create : unit -> t

val register : t -> name:string -> (Rng.t -> unit) -> unit
(** Expose one piece of mutable state to the injector. Multiple
    registrations may share a name. *)

val names : t -> string list
(** Registered target names, in registration order (duplicates kept). *)

val inject_matching : t -> rng:Rng.t -> prefix:string -> int
(** Corrupt every target [prefix] matches; returns how many targets were
    hit.  Matching respects dot-separated segment boundaries: a prefix must
    cover whole segments (["server.1"] hits ["server.1"] and
    ["server.1.cell"] but not ["server.10"]); a prefix ending in ['.'] — or
    the empty prefix — plain string-prefix-matches. *)

val inject_all : t -> rng:Rng.t -> int
(** Corrupt every registered target (a full "arbitrary configuration"). *)

val schedule : t -> engine:Engine.t -> at:Vtime.t -> prefix:string -> unit
(** Arrange for [inject_matching ~prefix] to run at instant [at], drawing
    from a generator split off the engine's.  Use prefix [""] for
    everything. *)

(** {2 Crash faults}

    Beyond state corruption, whole processes can crash.  A {e crash-stop}
    fault silences a process forever; a {e crash-recovery} fault brings it
    back after a down window with wiped or arbitrary volatile state — which
    makes recovery a transient fault by construction, exactly the events
    the paper's registers must stabilize from.  Deployments register each
    crashable process once with its crash and recovery actions. *)

val register_process :
  t -> name:string -> crash:(unit -> unit) -> recover:(Rng.t -> unit) -> unit
(** Expose one crashable process under a hierarchical [name] (same
    matching rules as state targets, e.g. ["server.3"]).  [crash] must
    silence it; [recover rng] must resume it, drawing any arbitrary
    rejoin-state from [rng]. *)

val process_names : t -> string list
(** Registered process names, in registration order (duplicates kept). *)

val crash_matching : t -> prefix:string -> int
(** Crash every registered process [prefix] matches; returns the number
    hit. *)

val recover_matching : t -> rng:Rng.t -> prefix:string -> int
(** Recover every registered process [prefix] matches; returns the number
    hit. *)

val schedule_crash :
  t ->
  engine:Engine.t ->
  at:Vtime.t ->
  ?down_for:Vtime.span ->
  prefix:string ->
  unit ->
  unit
(** Arrange for the processes matching [prefix] to crash at [at] and — when
    [down_for] is given — recover at [at + down_for] (crash-recovery);
    omitting [down_for] is crash-stop.  Both edges emit a ["fault"] trace
    line and an {!Obs.Event.Fault_injected} event whose target is
    ["crash:<prefix>"] / ["recover:<prefix>"].  The recovery generator is
    split off the engine's at scheduling time, so the rejoin state depends
    only on the schedule. *)
