open Util

let mk () = Sim.Engine.create ~rng:(Sim.Rng.create 1) ()

let test_time_advances () =
  let e = mk () in
  let fired = ref [] in
  Sim.Engine.schedule e ~delay:10 (fun () ->
      fired := Sim.Vtime.to_int (Sim.Engine.now e) :: !fired);
  Sim.Engine.schedule e ~delay:5 (fun () ->
      fired := Sim.Vtime.to_int (Sim.Engine.now e) :: !fired);
  Sim.Engine.run e;
  check_true "fired in time order" (List.rev !fired = [ 5; 10 ]);
  check_int "clock at last event" 10 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_same_time_fifo () =
  let e = mk () in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule e ~delay:3 (fun () -> order := i :: !order)
  done;
  Sim.Engine.run e;
  check_true "scheduling order preserved" (List.rev !order = [ 1; 2; 3; 4; 5 ])

let test_nested_scheduling () =
  let e = mk () in
  let log = ref [] in
  Sim.Engine.schedule e ~delay:1 (fun () ->
      log := "outer" :: !log;
      Sim.Engine.schedule e ~delay:2 (fun () -> log := "inner" :: !log));
  Sim.Engine.run e;
  check_true "nested fires" (List.rev !log = [ "outer"; "inner" ]);
  check_int "clock" 3 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_until () =
  let e = mk () in
  let fired = ref 0 in
  Sim.Engine.schedule e ~delay:5 (fun () -> incr fired);
  Sim.Engine.schedule e ~delay:15 (fun () -> incr fired);
  Sim.Engine.run ~until:(Sim.Vtime.of_int 10) e;
  check_int "only first fired" 1 !fired;
  check_int "clock parked at until" 10 (Sim.Vtime.to_int (Sim.Engine.now e));
  Sim.Engine.run e;
  check_int "remainder fires" 2 !fired

let test_until_inclusive () =
  let e = mk () in
  let fired = ref false in
  Sim.Engine.schedule e ~delay:10 (fun () -> fired := true);
  Sim.Engine.run ~until:(Sim.Vtime.of_int 10) e;
  check_true "event at the deadline fires" !fired

let test_max_events () =
  let e = mk () in
  let fired = ref 0 in
  for _ = 1 to 10 do
    Sim.Engine.schedule e ~delay:1 (fun () -> incr fired)
  done;
  Sim.Engine.run ~max_events:4 e;
  check_int "bounded" 4 !fired

let test_past_schedule_clamped () =
  let e = mk () in
  let at = ref (-1) in
  Sim.Engine.schedule e ~delay:5 (fun () ->
      Sim.Engine.schedule_at e Sim.Vtime.zero (fun () ->
          at := Sim.Vtime.to_int (Sim.Engine.now e)));
  Sim.Engine.run e;
  check_int "past event fires now" 5 !at

let test_negative_delay_clamped () =
  let e = mk () in
  let fired = ref false in
  Sim.Engine.schedule e ~delay:(-3) (fun () -> fired := true);
  Sim.Engine.run e;
  check_true "fires at current time" !fired;
  check_int "no time travel" 0 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_quiescent () =
  let e = mk () in
  check_true "initially quiescent" (Sim.Engine.quiescent e);
  Sim.Engine.schedule e ~delay:1 ignore;
  check_false "pending event" (Sim.Engine.quiescent e);
  check_int "pending count" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  check_true "quiescent after run" (Sim.Engine.quiescent e)

(* A workload with same-instant collisions and nested scheduling, fired
   two ways: the classic [run] loop and iterated [step].  Both must
   produce the same firing order and final clock. *)
let test_run_equals_iterated_step () =
  let execute drive =
    let e = mk () in
    let log = ref [] in
    let fire tag () =
      log := (tag, Sim.Vtime.to_int (Sim.Engine.now e)) :: !log
    in
    for i = 1 to 5 do
      Sim.Engine.schedule e ~delay:(i mod 3) (fun () ->
          fire (Printf.sprintf "a%d" i) ();
          if i mod 2 = 0 then
            Sim.Engine.schedule e ~delay:i (fire (Printf.sprintf "b%d" i)))
    done;
    Sim.Engine.schedule e ~delay:2 (fire "c");
    drive e;
    (List.rev !log, Sim.Vtime.to_int (Sim.Engine.now e))
  in
  let via_run = execute Sim.Engine.run in
  let via_step = execute (fun e -> while Sim.Engine.step e do () done) in
  check_true "same firing order and final clock" (via_run = via_step)

let test_step_empty () =
  let e = mk () in
  check_false "step on empty queue" (Sim.Engine.step e);
  check_int "clock untouched" 0 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_ready_snapshot () =
  let e = mk () in
  Sim.Engine.schedule ~label:"b" e ~delay:2 ignore;
  Sim.Engine.schedule ~label:"a" e ~delay:1 ignore;
  Sim.Engine.schedule ~label:"c" e ~delay:1 ignore;
  let rs = Sim.Engine.ready e in
  let labels = List.map (fun (r : Sim.Engine.ready_event) -> r.r_label) rs in
  check_true "(time, seq) order: a and c tie on time, a was first"
    (labels = [ "a"; "c"; "b" ]);
  check_int "snapshot does not consume" 3 (Sim.Engine.pending e);
  check_true "ready is stable" (Sim.Engine.ready e = rs)

let test_fire_out_of_order () =
  let e = mk () in
  let order = ref [] in
  Sim.Engine.schedule ~label:"x" e ~delay:5 (fun () -> order := "x" :: !order);
  Sim.Engine.schedule ~label:"y" e ~delay:1 (fun () -> order := "y" :: !order);
  let seq_of label =
    (List.find
       (fun (r : Sim.Engine.ready_event) -> String.equal r.r_label label)
       (Sim.Engine.ready e))
      .r_seq
  in
  check_true "fire the later event first" (Sim.Engine.fire e ~seq:(seq_of "x"));
  check_int "clock jumps to it" 5 (Sim.Vtime.to_int (Sim.Engine.now e));
  check_true "fire the earlier event" (Sim.Engine.fire e ~seq:(seq_of "y"));
  check_int "clock never rewinds" 5 (Sim.Vtime.to_int (Sim.Engine.now e));
  check_false "unknown seq refused" (Sim.Engine.fire e ~seq:9999);
  check_true "both fired, chosen order" (List.rev !order = [ "x"; "y" ])

let tests =
  [
    case "time advances" test_time_advances;
    case "same-time FIFO" test_same_time_fifo;
    case "nested scheduling" test_nested_scheduling;
    case "run until" test_until;
    case "until inclusive" test_until_inclusive;
    case "max events" test_max_events;
    case "past schedule clamped" test_past_schedule_clamped;
    case "negative delay clamped" test_negative_delay_clamped;
    case "quiescence" test_quiescent;
    case "run equals iterated step" test_run_equals_iterated_step;
    case "step on empty queue" test_step_empty;
    case "ready snapshot" test_ready_snapshot;
    case "fire out of order" test_fire_out_of_order;
  ]
