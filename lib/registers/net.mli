(** The client/server communication fabric: 4n directed FIFO links plus the
    ss-broadcast abstraction of §2.1.

    Each of the [n] server slots is an {!endpoint} whose handler the
    deployment chooses (the honest automaton of {!Server}, or a Byzantine
    strategy).  Each client owns a {!client_port}: an outgoing ss-delivery
    link to every server, an incoming acknowledgment link from every
    server, and a mailbox merging arrivals.

    {2 ss-broadcast realization}

    {!ss_broadcast} schedules an ss-delivery at every server (per-link
    sampled delays, FIFO) and suspends the calling fiber until the
    [(n-2t)]-th delivery at a {e correct} server — exactly the synchronized
    delivery property.  The simulator's ground-truth knowledge of which
    servers are currently Byzantine substitutes for the bounded-capacity
    data-link construction of footnote 3, whose executable model lives in
    [stabreg.datalink] (module [Alt_bit]) and is validated separately:
    registers only rely on the six abstract properties, which this module
    provides verbatim.

    The per-port [round] tag matches acknowledgments to broadcasts (the
    §3.1 remark: FIFO makes protocol-level sequence numbers unnecessary;
    the tag is the data-link layer's generalized alternating bit).  It is
    part of the corruptible link state. *)

type endpoint = { mutable on_deliver : Messages.server_envelope -> unit }

type medium =
  | Reliable_fifo
      (** the model of §2.1: FIFO reliable links; synchronized delivery
          realized from the simulator's ground truth *)
  | Stabilizing of { loss : float; dup : float; retrans : int }
      (** every link is an {!Ss_transport} over a lossy, duplicating,
          reordering medium; synchronized delivery realized from the
          transport's own delivery acknowledgments — the registers then
          run end-to-end over genuinely unreliable links *)

type port_transport
(** Internals of a port's [Stabilizing]-medium transports (opaque). *)

type client_port = {
  client_id : int;
  mailbox : Messages.client_envelope Sim.Mailbox.t;
  to_servers : Messages.server_envelope Sim.Link.t array;
      (** [Reliable_fifo] links; empty under [Stabilizing] *)
  from_servers : Messages.client_envelope Sim.Link.t array;
      (** [Reliable_fifo] links; empty under [Stabilizing] *)
  mutable round : int;
  transport : port_transport;
  health : Health.t;
      (** per-server responsiveness evidence, fed by deadline-bounded
          collection attempts (see {!Collect}) *)
  retry_rng : Sim.Rng.t;
      (** backoff-jitter stream, seeded from
          [Params.retry.jitter_seed + client_id] — deliberately {e not}
          split off the engine's generator so installing a retry policy
          perturbs no other random stream *)
}

type t

val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  ?medium:medium ->
  link_delay:(Sim.Rng.t -> Sim.Link.sampler) ->
  unit ->
  t
(** [link_delay] builds a delay sampler per directed link from a split
    generator; in sync mode it must respect the mode's [max_delay] for
    links touching correct processes.  [medium] defaults to
    [Reliable_fifo]. *)

type chaos_dir = [ `To_servers | `From_servers | `Both ]

val set_port_chaos :
  client_port ->
  ?dir:chaos_dir ->
  ?server:int ->
  loss:float ->
  dup:float ->
  unit ->
  int
(** Runtime link-chaos knob (only meaningful under the [Stabilizing]
    medium): retune loss/duplication on the port's transports.  [dir]
    (default [`Both]) selects the client-to-server direction, the
    acknowledgment direction, or both; [server], when given, restricts the
    change to the links touching that one server slot — [loss = 1.0] on a
    single slot is a directed partition.  Returns how many transports were
    adjusted ([0] under [Reliable_fifo], where links are reliable by
    assumption and there is nothing to retune). *)

val corrupt_transport : client_port -> Sim.Rng.t -> unit
(** Transient fault on the port's [Stabilizing] transports (both ends' tag
    state and packets in flight); no-op under [Reliable_fifo]. *)

val engine : t -> Sim.Engine.t

val params : t -> Params.t

val endpoints : t -> endpoint array

val set_correct : t -> (int -> bool) -> unit
(** Ground truth for the synchronized-delivery property; updated by the
    adversary when Byzantine faults are mobile (footnote 1). *)

val is_correct : t -> int -> bool

val add_client : t -> id:int -> client_port
(** Create (or return the existing) port for client [id]. *)

val client_ports : t -> (int * client_port) list

val reply :
  ?parent:Obs.Trace_ctx.span ->
  t ->
  server:int ->
  client:int ->
  Messages.to_client ->
  round:int ->
  unit
(** Send an acknowledgment from server [server] to client [client] on
    their FIFO link (used by server deployments, honest or Byzantine).
    The acknowledgment gets a fresh causal span, a child of [parent]
    (normally the span of the request being answered; default
    {!Obs.Trace_ctx.none}, which makes it a causal root — unsolicited
    chatter). *)

val install_honest_server : t -> Server.t -> unit
(** Wire server slot [Server.id] to the honest automaton. *)

val ss_broadcast :
  ?span:Obs.Trace_ctx.span ->
  t ->
  client_port ->
  inst:int ->
  Messages.to_server ->
  int
(** Blocking (fiber) ss-broadcast of one protocol message to all servers;
    bumps the trace counter ["ss.broadcasts"].  Returns the data-link round
    tag used, which the caller passes to {!Collect.acks} — capturing it at
    broadcast time keeps the matching correct even if a transient fault
    corrupts the port's tag while the round trip is in flight.  The round
    gets a fresh causal span, a child of [span] (normally the operation's
    root span from [Instr.start]). *)
