(** The typed event schema of the observability pipeline.

    Every instrumented layer (engine, links, transports, register
    protocols, adversary, fault injector) reports one of these variants
    instead of a formatted string; sinks decide how to render or store
    them.  Times are virtual-clock ticks ([Sim.Vtime.to_int]) — this
    library sits below [sim] and therefore uses plain integers. *)

type peer = Client of int | Server of int

(** Protocol message classes, for per-type traffic accounting.  The first
    five mirror [Registers.Messages]; [Link_ack] is the ss-transport's
    link-layer acknowledgment. *)
type msg_class =
  | Write
  | New_help
  | Read
  | Ack_write
  | Ack_read
  | Link_ack

type op_kind = [ `Read | `Write ]

type t =
  | Send of {
      time : int;
      src : peer;
      dst : peer;
      cls : msg_class;
      bytes : int;
      span : Trace_ctx.span;
    }
  | Recv of {
      time : int;
      src : peer;
      dst : peer;
      cls : msg_class;
      bytes : int;
      span : Trace_ctx.span;
    }
  | Drop of { time : int; link : string; cls : msg_class option }
      (** A packet lost by an unreliable link. *)
  | Op_invoke of {
      time : int;
      id : int;
      proc : string;
      reg : string;
      op : op_kind;
      span : Trace_ctx.span;
    }
  | Op_return of {
      time : int;
      id : int;
      proc : string;
      reg : string;
      op : op_kind;
      ok : bool;
      span : Trace_ctx.span;
    }
      (** [Op_invoke]/[Op_return] bracket one register operation; [id]
          pairs them, [reg] names the register class (e.g.
          ["swsr_atomic"]). *)
  | Phase of { time : int; server : int; phase : string; span : Trace_ctx.span }
      (** A server-side protocol phase transition (e.g. handling a WRITE),
          attributed to the span of the message that triggered it. *)
  | Fault_injected of { time : int; target : string; hits : int }
  | Stabilized of { time : int }
  | Mark of { time : int; label : string }

val all_classes : msg_class list

val num_classes : int

val class_index : msg_class -> int
(** Dense index in [0, num_classes), for per-class counter arrays. *)

val class_name : msg_class -> string

val op_name : op_kind -> string

val time : t -> int

val span : t -> Trace_ctx.span
(** The causal span an event belongs to; {!Trace_ctx.none} for the
    span-less constructors ([Drop], [Fault_injected], [Stabilized],
    [Mark]). *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
