# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint lint-baseline experiments bench examples clean outputs

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis (stablint): fails on any finding not in the committed
# lint-baseline.json.  Writes the machine-readable report next to it.
lint:
	dune exec bin/lint.exe -- run --json lint-report.json

# Re-absorb the current findings into the baseline.  Use sparingly and
# only with a justification per entry.
lint-baseline:
	dune exec bin/lint.exe -- run --update-baseline

experiments:
	dune exec bin/experiments.exe -- run all

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/config_store.exe
	dune exec examples/scoreboard.exe
	dune exec examples/recovery_demo.exe
	dune exec examples/kv_demo.exe

# The final artifacts recorded in the repository.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt
	dune exec bin/experiments.exe -- run all 2>&1 | tee experiments_output.txt

clean:
	dune clean
