open Util

let render f =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  f out;
  Format.pp_print_flush out ();
  Buffer.contents buf

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_table_renders () =
  let s =
    render (fun out ->
        Harness.Report.table ~out ~title:"T" ~header:[ "a"; "bbb" ]
          [ [ "1"; "2" ]; [ "333"; "4" ] ])
  in
  check_true "title present" (contains ~needle:"T" s);
  check_true "has header" (contains ~needle:"bbb" s);
  check_true "has cells" (contains ~needle:"333" s)

let test_table_alignment () =
  let s =
    render (fun out ->
        Harness.Report.table ~out ~title:"T" ~header:[ "col" ]
          [ [ "x" ]; [ "longer" ] ])
  in
  (* The separator row must be as wide as the longest cell. *)
  check_true "separator sized" (String.length s > 10)

let test_kv () =
  let s =
    render (fun out -> Harness.Report.kv ~out [ ("k", "v"); ("key2", "v2") ])
  in
  check_true "both lines" (String.split_on_char '\n' s |> List.length >= 2)

let test_section () =
  let s = render (fun out -> Harness.Report.section ~out "hello") in
  check_true "banner" (String.length s >= String.length "=== hello ===")

let test_formatters () =
  Alcotest.(check string) "f1" "3.1" (Harness.Report.f1 3.14159);
  Alcotest.(check string) "pct" "1/4 (25%)" (Harness.Report.pct 1 4);
  Alcotest.(check string) "pct zero denom" "0/0 (—)" (Harness.Report.pct 0 0)

let test_json_kv () =
  let j = Harness.Report.json_kv [ ("k", "v"); ("k2", "v2") ] in
  check_true "object of strings"
    (j = Obs.Json.Obj [ ("k", Obs.Json.Str "v"); ("k2", Obs.Json.Str "v2") ]);
  (* Round-trips through the printer/parser unchanged. *)
  check_true "round trip" (Obs.Json.parse_exn (Obs.Json.to_string j) = j)

let tests =
  [
    case "table renders" test_table_renders;
    case "table alignment" test_table_alignment;
    case "kv" test_kv;
    case "section" test_section;
    case "formatters" test_formatters;
    case "json kv" test_json_kv;
  ]
