test/test_swsr_sync.ml: Alcotest Byzantine Harness List Oracles Registers Sim Swsr_atomic Swsr_regular Util
