open Util
open Registers

let test_equal () =
  check_true "bot" (Value.equal Value.bot Value.bot);
  check_true "int" (Value.equal (Value.int 3) (Value.int 3));
  check_false "int neq" (Value.equal (Value.int 3) (Value.int 4));
  check_true "str" (Value.equal (Value.str "a") (Value.str "a"));
  check_false "cross kind" (Value.equal (Value.int 0) Value.bot)

let test_stamped_equal () =
  let e = Epoch.genesis ~k:2 in
  let v1 = Value.stamped ~data:(Value.int 1) ~epoch:e ~seq:5 in
  let v2 = Value.stamped ~data:(Value.int 1) ~epoch:e ~seq:5 in
  let v3 = Value.stamped ~data:(Value.int 1) ~epoch:e ~seq:6 in
  check_true "same triple" (Value.equal v1 v2);
  check_false "different seq" (Value.equal v1 v3)

let test_nested_stamped () =
  let e = Epoch.genesis ~k:2 in
  let inner = Value.stamped ~data:(Value.str "x") ~epoch:e ~seq:0 in
  let outer = Value.stamped ~data:inner ~epoch:e ~seq:1 in
  check_true "nested compares" (Value.equal outer outer)

let test_pp () =
  Alcotest.(check string) "int" "7" (Value.to_string (Value.int 7));
  Alcotest.(check string) "bot" "\xe2\x8a\xa5" (Value.to_string Value.bot);
  Alcotest.(check string) "str" "\"hi\"" (Value.to_string (Value.str "hi"))

(* The typed structural order that replaced Stdlib.compare (stablint R2):
   total, antisymmetric, consistent with equal, Bot < Int < Str <
   Stamped, and componentwise within a constructor. *)
let test_compare_total_order () =
  let e = Epoch.genesis ~k:2 in
  let e' = Epoch.next_epoch ~k:2 [ e ] in
  let samples =
    [
      Value.bot;
      Value.int (-3);
      Value.int 7;
      Value.str "a";
      Value.str "b";
      Value.stamped ~data:(Value.int 7) ~epoch:e ~seq:0;
      Value.stamped ~data:(Value.int 7) ~epoch:e ~seq:1;
      Value.stamped ~data:(Value.int 7) ~epoch:e' ~seq:0;
      Value.stamped
        ~data:(Value.stamped ~data:Value.bot ~epoch:e ~seq:2)
        ~epoch:e ~seq:0;
    ]
  in
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          let c = Value.compare v w in
          check_int "antisymmetric" (-c) (Value.compare w v);
          check_bool "consistent with equal" (Value.equal v w) (c = 0))
        samples)
    samples;
  check_true "Bot < Int" (Value.compare Value.bot (Value.int 0) < 0);
  check_true "Int < Str" (Value.compare (Value.int 999) (Value.str "") < 0);
  check_true "Str < Stamped"
    (Value.compare (Value.str "z")
       (Value.stamped ~data:Value.bot ~epoch:e ~seq:0)
     < 0);
  check_true "ints by value" (Value.compare (Value.int 1) (Value.int 2) < 0);
  check_true "seq breaks ties"
    (Value.compare
       (Value.stamped ~data:Value.bot ~epoch:e ~seq:0)
       (Value.stamped ~data:Value.bot ~epoch:e ~seq:1)
     < 0)

let test_compare_sorts_deterministically () =
  let e = Epoch.genesis ~k:2 in
  let l =
    [
      Value.str "b";
      Value.int 2;
      Value.bot;
      Value.stamped ~data:Value.bot ~epoch:e ~seq:0;
      Value.int 1;
      Value.str "a";
    ]
  in
  let sorted = List.sort Value.compare l in
  let resorted = List.sort Value.compare (List.rev l) in
  check_true "sort is order-independent"
    (List.for_all2 Value.equal sorted resorted);
  check_true "bot first" (Value.equal (List.nth sorted 0) Value.bot)

let test_arbitrary_not_stamped () =
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 50 do
    match Value.arbitrary rng with
    | Value.Stamped _ -> Alcotest.fail "arbitrary produced Stamped"
    | Value.Bot | Value.Int _ | Value.Str _ -> ()
  done

let tests =
  [
    case "equal" test_equal;
    case "stamped equal" test_stamped_equal;
    case "nested stamped" test_nested_stamped;
    case "pretty printing" test_pp;
    case "compare is a typed total order" test_compare_total_order;
    case "compare sorts deterministically" test_compare_sorts_deterministically;
    case "arbitrary shape" test_arbitrary_not_stamped;
  ]
