open Util
open Registers

(* A writer fiber and a reader fiber over a fresh deployment; returns the
   scenario plus the endpoints. *)
let setup ?(seed = 7) ?(n = 9) ?(f = 1) () =
  let scn = async_scenario ~seed ~n ~f () in
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  (scn, w, r)

let test_write_then_read () =
  let scn, w, r = setup () in
  let got = ref None in
  run_fiber scn "wr" (fun () ->
      Swsr_regular.write w (int_value 42);
      got := Swsr_regular.read r);
  Alcotest.(check (option value)) "last written value" (Some (int_value 42)) !got

let test_read_before_any_write_terminates () =
  (* All-bot initial server state: the read terminates (liveness) and, the
     configuration being uniform, returns Bot. *)
  let scn, _w, r = setup () in
  let got = ref None in
  run_fiber scn "r" (fun () -> got := Swsr_regular.read r);
  Alcotest.(check (option value)) "bot" (Some Value.bot) !got

let test_sequence_of_writes () =
  let scn, w, r = setup () in
  let got = ref [] in
  run_fiber scn "wr" (fun () ->
      for i = 1 to 10 do
        Swsr_regular.write w (int_value i);
        got := Swsr_regular.read r :: !got
      done);
  List.iteri
    (fun i v ->
      Alcotest.(check (option value))
        (Printf.sprintf "read %d" i)
        (Some (int_value (10 - i)))
        v)
    !got

let concurrent_workload ?(writes = 30) ?(reads = 30) scn w r =
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_regular.write w)
            ~count:writes ~gap:(Harness.Workload.gap 0 20) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_regular.read r)
            ~count:reads ~gap:(Harness.Workload.gap 0 20) () );
    ]

let first_write_completion scn =
  match Oracles.History.writes scn.Harness.Scenario.history with
  | w :: _ -> w.Oracles.History.resp
  | [] -> Alcotest.fail "no writes recorded"

let check_regular ?cutoff scn =
  let cutoff =
    match cutoff with Some c -> c | None -> first_write_completion scn
  in
  let report = Oracles.Regularity.check ~cutoff scn.Harness.Scenario.history in
  if not (Oracles.Regularity.is_clean report) then
    Alcotest.failf "%a" Oracles.Regularity.pp report

let test_concurrent_reads_writes_regular () =
  let scn, w, r = setup () in
  concurrent_workload scn w r;
  check_regular scn;
  check_true "reads took few iterations"
    (Swsr_regular.reader_iterations r <= 3 * 30)

let test_many_seeds_regular () =
  for seed = 1 to 20 do
    let scn, w, r = setup ~seed () in
    concurrent_workload ~writes:15 ~reads:15 scn w r;
    check_regular scn
  done

let test_with_silent_byzantine () =
  let scn, w, r = setup () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 3
    Byzantine.Behavior.silent;
  concurrent_workload scn w r;
  check_regular scn

let test_with_garbage_byzantine () =
  let scn, w, r = setup () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    Byzantine.Behavior.garbage;
  concurrent_workload scn w r;
  check_regular scn

let test_with_frozen_byzantine () =
  let scn, w, r = setup () in
  let srv = Byzantine.Adversary.server scn.Harness.Scenario.adversary 5 in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 5
    (Byzantine.Behavior.frozen srv);
  concurrent_workload scn w r;
  check_regular scn

let test_with_equivocating_byzantine () =
  let scn, w, r = setup () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 7
    Byzantine.Behavior.equivocate;
  concurrent_workload scn w r;
  check_regular scn

let test_larger_system () =
  let scn, w, r = setup ~n:17 ~f:2 ~seed:3 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    Byzantine.Behavior.garbage;
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 1
    Byzantine.Behavior.silent;
  concurrent_workload ~writes:15 ~reads:15 scn w r;
  check_regular scn

let test_trivial_system () =
  (* n = 1, t = 0: a single perfectly reliable server. *)
  let scn, w, r = setup ~n:1 ~f:0 () in
  let got = ref None in
  run_fiber scn "wr" (fun () ->
      Swsr_regular.write w (int_value 5);
      got := Swsr_regular.read r);
  Alcotest.(check (option value)) "single server" (Some (int_value 5)) !got

(* --- stabilization after transient faults (Theorem 1) --- *)

let test_stabilizes_after_corruption () =
  let scn, w, r = setup ~seed:13 () in
  Harness.Scenario.register_port scn (Swsr_regular.writer_port w);
  Harness.Scenario.register_port scn (Swsr_regular.reader_port r);
  (* Corrupt all server state at t=300, mid-workload. *)
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int 300)
    ~prefix:"server.";
  concurrent_workload ~writes:40 ~reads:40 scn w r;
  (* Find the first write completing after the fault; reads invoked after
     it must be regular. *)
  let cutoff =
    Oracles.History.writes scn.Harness.Scenario.history
    |> List.filter (fun (o : Oracles.History.op) ->
           Sim.Vtime.to_int o.Oracles.History.inv >= 300)
    |> function
    | o :: _ -> o.Oracles.History.resp
    | [] -> Alcotest.fail "no write after fault"
  in
  check_regular ~cutoff scn

let tests =
  [
    case "write then read" test_write_then_read;
    case "read before any write terminates" test_read_before_any_write_terminates;
    case "sequence of writes" test_sequence_of_writes;
    case "concurrent ops regular" test_concurrent_reads_writes_regular;
    case "regular across seeds" test_many_seeds_regular;
    case "silent byzantine" test_with_silent_byzantine;
    case "garbage byzantine" test_with_garbage_byzantine;
    case "frozen byzantine" test_with_frozen_byzantine;
    case "equivocating byzantine" test_with_equivocating_byzantine;
    case "larger system n=17 t=2" test_larger_system;
    case "trivial n=1 t=0" test_trivial_system;
    case "stabilizes after corruption (Thm 1)" test_stabilizes_after_corruption;
  ]
