type 'm entry = { id : int; mutable payload : 'm option; arrival : Vtime.t }

type 'm t = {
  engine : Engine.t;
  delay : unit -> Vtime.span;
  name : string;
  deliver : 'm -> unit;
  mutable last_arrival : Vtime.t;
  mutable next_id : int;
  mutable flight : 'm entry list; (* newest first *)
}

type sampler = unit -> Vtime.span

let uniform rng ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Link.uniform: bad delay range";
  fun () -> Rng.int_in rng lo hi

let fixed d =
  if d < 0 then invalid_arg "Link.fixed: negative delay";
  fun () -> d

let bimodal rng ~fast:(flo, fhi) ~slow:(slo, shi) ~slow_probability =
  if flo < 0 || fhi < flo || slo < 0 || shi < slo then
    invalid_arg "Link.bimodal: bad delay ranges";
  if slow_probability < 0.0 || slow_probability > 1.0 then
    invalid_arg "Link.bimodal: bad probability";
  fun () ->
    if Rng.float rng 1.0 < slow_probability then Rng.int_in rng slo shi
    else Rng.int_in rng flo fhi

let create ~engine ~delay ~name ~deliver =
  {
    engine;
    delay;
    name;
    deliver;
    last_arrival = Vtime.zero;
    next_id = 0;
    flight = [];
  }

let transmit_timed ?on_delivered t payload =
  let proposed = Vtime.add (Engine.now t.engine) (t.delay ()) in
  (* FIFO: never overtake a message already in flight. *)
  let arrival = Vtime.max proposed t.last_arrival in
  t.last_arrival <- arrival;
  let entry = { id = t.next_id; payload = Some payload; arrival } in
  t.next_id <- entry.id + 1;
  t.flight <- entry :: t.flight;
  (* Label the event with the link name so an external scheduling policy
     (the model checker) can tell which channel each pending delivery
     belongs to and preserve per-link FIFO while reordering across links. *)
  Engine.schedule_at ~label:("link:" ^ t.name) t.engine arrival (fun () ->
      t.flight <- List.filter (fun e -> e.id <> entry.id) t.flight;
      (* Read the payload at fire time: a transient fault may have rewritten
         or dropped it while in transit. *)
      (match entry.payload with
      | None -> ()
      | Some m ->
        Trace.incr (Engine.trace t.engine) "net.msgs";
        t.deliver m);
      (* Notify after the receiver processed the message, even if a
         transient fault dropped the payload: the delivery *slot* happened,
         which is what synchronized-broadcast waiters count. *)
      match on_delivered with None -> () | Some f -> f ());
  arrival

let send t m = ignore (transmit_timed t m)

let send_timed ?on_delivered t m = transmit_timed ?on_delivered t m

let in_flight t =
  List.rev t.flight
  |> List.filter_map (fun e -> e.payload)

let corrupt_in_flight t f =
  List.iter
    (fun e ->
      match e.payload with None -> () | Some m -> e.payload <- f m)
    t.flight

let inject t m = ignore (transmit_timed t m)
