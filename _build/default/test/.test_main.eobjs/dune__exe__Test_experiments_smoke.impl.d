test/test_experiments_smoke.ml: Exp_drivers List Printf Util
