(* The Figure 1 schedule of the paper, constructed deterministically.

   A completed write of 0 is followed by a write of 1 whose ss-deliveries
   reach servers 1..3 immediately and everyone else only much later, so the
   write stays pending across two reads.  Acknowledgment links are scripted
   so that the first read's (n-t)-ack set excludes server 0 (it sees the
   quorum {s1,s2,s3} carrying 1 first) while the second read's set excludes
   server 8 and includes server 0 (it sees the old-value quorum first).

   On the regular register of Fig. 2 this yields the classic new/old
   inversion: read1 = 1, read2 = 0.  On the practically atomic register of
   Fig. 3 the bounded sequence number makes read2 return the locally stored
   pair instead (line 13M3): read1 = read2 = 1. *)

type outcome = {
  read1 : Registers.Value.t option;
  read2 : Registers.Value.t option;
  write1_pending_during_reads : bool;
  inversion : bool;
  trace : Sim.Trace.t;
}

let scripted = Script.scripted

let far = 300 (* "much later": past both reads *)

let build_link_delay kind =
  (* Links are created in a fixed order: the writer's client port first
     (9 client->server links, then 9 server->client links), then the
     reader's.  The factory keys each link's script off that order. *)
  let call = ref 0 in
  fun _rng ->
    incr call;
    let c = !call in
    if c <= 9 then begin
      (* writer -> server (c-1): WRITE(0), NEW_HELP_VAL(0), then WRITE(1)
         which is fast only to servers 1..3. *)
      let server = c - 1 in
      let w1 = if server >= 1 && server <= 3 then 2 else far in
      scripted [ 1; 1; w1 ] 1
    end
    else if c <= 18 then scripted [] 1 (* server -> writer acks *)
    else if c <= 27 then scripted [] 1 (* reader -> server *)
    else begin
      (* server (c-28) -> reader acknowledgments.  The regular read makes
         one collect per read; the atomic read makes two (sanity phase +
         loop).  Server 0's acks are slow for the whole first read, server
         8's ack is slow for the second read's final collect. *)
      let server = c - 28 in
      match (kind, server) with
      | `Regular, 0 -> scripted [ far ] 1
      | `Regular, 8 -> scripted [ 1; far ] 1
      | `Atomic, 0 -> scripted [ far; far ] 1
      | `Atomic, 8 -> scripted [ 1; 1; 1; far ] 1
      | (`Regular | `Atomic), _ -> scripted [] 1
    end

let run ?(instrument = fun _ -> ()) kind =
  let params = Registers.Params.create_exn ~n:9 ~f:1 ~mode:Registers.Params.Async () in
  let rng = Sim.Rng.create 1 in
  let trace = Sim.Trace.create ~record_events:false () in
  let engine = Sim.Engine.create ~trace ~rng () in
  instrument engine;
  let net =
    Registers.Net.create ~engine ~params ~link_delay:(build_link_delay kind) ()
  in
  let servers = Array.init 9 (fun id -> Registers.Server.create ~id) in
  Array.iter (Registers.Net.install_honest_server net) servers;
  let sleep d = Sim.Fiber.suspend (fun k -> Sim.Engine.schedule engine ~delay:d k) in
  let read1 = ref None and read2 = ref None in
  let write1_start = ref Sim.Vtime.zero and write1_end = ref Sim.Vtime.zero in
  let read1_start = ref Sim.Vtime.zero and read2_start = ref Sim.Vtime.zero in
  let v0 = Registers.Value.int 0 and v1 = Registers.Value.int 1 in
  (match kind with
  | `Regular ->
    let w = Registers.Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
    let r = Registers.Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
    ignore
      (Sim.Fiber.spawn ~name:"writer" (fun () ->
           Registers.Swsr_regular.write w v0;
           write1_start := Sim.Engine.now engine;
           Registers.Swsr_regular.write w v1;
           write1_end := Sim.Engine.now engine));
    ignore
      (Sim.Fiber.spawn ~name:"reader" (fun () ->
           sleep 10;
           read1_start := Sim.Engine.now engine;
           read1 := Registers.Swsr_regular.read r;
           read2_start := Sim.Engine.now engine;
           read2 := Registers.Swsr_regular.read r))
  | `Atomic ->
    let w = Registers.Swsr_atomic.writer ~net ~client_id:100 ~inst:0 () in
    let r = Registers.Swsr_atomic.reader ~net ~client_id:101 ~inst:0 () in
    ignore
      (Sim.Fiber.spawn ~name:"writer" (fun () ->
           Registers.Swsr_atomic.write w v0;
           write1_start := Sim.Engine.now engine;
           Registers.Swsr_atomic.write w v1;
           write1_end := Sim.Engine.now engine));
    ignore
      (Sim.Fiber.spawn ~name:"reader" (fun () ->
           sleep 10;
           read1_start := Sim.Engine.now engine;
           read1 := Registers.Swsr_atomic.read r;
           read2_start := Sim.Engine.now engine;
           read2 := Registers.Swsr_atomic.read r)));
  Sim.Engine.run engine;
  let inversion =
    match (!read1, !read2) with
    | Some a, Some b ->
      Registers.Value.equal a v1 && Registers.Value.equal b v0
    | _ -> false
  in
  {
    read1 = !read1;
    read2 = !read2;
    (* Figure 1 requires write(1) concurrent with both reads: it starts
       before read1 and is still incomplete when read2 starts. *)
    write1_pending_during_reads =
      Sim.Vtime.( < ) !write1_start !read1_start
      && Sim.Vtime.( < ) !read2_start !write1_end;
    inversion;
    trace;
  }
