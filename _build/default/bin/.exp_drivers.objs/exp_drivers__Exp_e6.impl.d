bin/exp_e6.ml: Array Common Harness List Mwmr Oracles Printf Registers
