(** Discrete-event simulation engine.

    The engine owns virtual time and a priority queue of pending actions.
    Everything else (links, fibers, fault plans) schedules thunks here.
    Two events at the same instant fire in scheduling order, which keeps
    executions deterministic (see {!Heap} for why the tie-break lives in
    the comparison function rather than the heap).

    Besides the classic [run] loop the engine exposes the pending set
    ({!ready}) and out-of-order firing ({!fire}) so that a model checker
    can enumerate delivery interleavings instead of following heap
    order. *)

type t

type ready_event = { r_time : Vtime.t; r_seq : int; r_label : string }
(** A queued event as seen by a scheduling policy: its instant, its unique
    sequence number (the handle for {!fire}) and the label it was scheduled
    under ([""] when unlabeled). *)

val create : ?trace:Trace.t -> rng:Rng.t -> unit -> t
(** A fresh engine at time {!Vtime.zero}. [rng] is the root generator from
    which component generators should be {!Rng.split}. *)

val now : t -> Vtime.t

val rng : t -> Rng.t

val trace : t -> Trace.t

val metrics : t -> Obs.Metrics.t
(** The metrics registry of the engine's trace. *)

val hub : t -> Obs.Hub.t
(** The typed-event hub of the engine's trace. *)

val spans : t -> Obs.Trace_ctx.t
(** The causal-span allocator of the engine's trace. *)

val schedule : ?label:string -> t -> delay:Vtime.span -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + max delay 0].  [label]
    tags the event for {!ready}; components use it to identify the
    channel an event belongs to (e.g. ["link:c100->s3"]). *)

val schedule_at : ?label:string -> t -> Vtime.t -> (unit -> unit) -> unit
(** Like {!schedule} with an absolute instant; instants in the past fire at
    the current time. *)

val run : ?until:Vtime.t -> ?max_events:int -> t -> unit
(** Process events until the queue is empty, [until] is reached, or
    [max_events] events have fired.  Events scheduled exactly at [until]
    still fire.  [run] is exactly iterated {!step} plus the deadline
    bookkeeping. *)

val step : t -> bool
(** Fire exactly the next event in (time, seq) order.  Returns [false]
    (and does nothing) on an empty queue.  [run ?until:None t] is
    equivalent to [while step t do () done]. *)

val ready : t -> ready_event list
(** Snapshot of every queued event, sorted by (time, seq) — the choice
    menu for an external scheduling policy.  Does not consume anything. *)

val fire : t -> seq:int -> bool
(** [fire t ~seq] fires the queued event with sequence number [seq]
    regardless of its heap position, advancing the clock to
    [max (now t) time].  Returns [false] if no such event is queued.
    Out-of-order firing never rewinds the clock, so timestamps stay
    monotone. *)

val advance_to : t -> Vtime.t -> unit
(** Push the clock forward to [time] without firing anything (no-op if
    [time] is in the past).  The model checker uses this to give every
    explored step a distinct instant. *)

val pending : t -> int
(** Number of queued events. *)

val quiescent : t -> bool
(** [true] when no events are queued. *)
