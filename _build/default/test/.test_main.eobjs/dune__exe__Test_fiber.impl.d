test/test_fiber.ml: Alcotest List Queue Sim Util
