(* Instance layout for a register with r readers at [base]:
     base + j                    reader j's copy (written by the writer)
     base + r + (i*r + j)        EX[i][j], written by reader i, read by j *)

type writer = {
  copies : Swsr_atomic.writer array;
  modulus : int;
  probe : Instr.probe;
  mutable shared_sn : Seqnum.t;
}

type reader = {
  own : Swsr_atomic.reader;
  incoming : Swsr_atomic.reader array; (* EX[i][me] for i <> me *)
  outgoing : Swsr_atomic.writer array; (* EX[me][i] for i <> me *)
  modulus : int;
  probe : Instr.probe;
  mutable wb_writes : int;
}

let ex_inst ~base_inst ~readers ~from_reader ~to_reader =
  base_inst + readers + (from_reader * readers) + to_reader

let writer ~net ~client_id ~base_inst ~readers
    ?(modulus = Seqnum.default_modulus) () =
  if readers <= 0 then invalid_arg "Swmr_wb.writer: need at least one reader";
  {
    copies =
      Array.init readers (fun j ->
          Swsr_atomic.writer ~net ~client_id ~inst:(base_inst + j) ~modulus ());
    modulus;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swmr_wb" `Write;
    shared_sn = Seqnum.zero;
  }

let reader ~net ~client_id ~base_inst ~reader_index ?(readers = 2)
    ?(modulus = Seqnum.default_modulus) () =
  if reader_index < 0 || reader_index >= readers then
    invalid_arg "Swmr_wb.reader: index out of range";
  let others =
    List.filter (fun i -> i <> reader_index) (List.init readers (fun i -> i))
    |> Array.of_list
  in
  {
    own =
      Swsr_atomic.reader ~net ~client_id ~inst:(base_inst + reader_index)
        ~modulus ();
    incoming =
      Array.map
        (fun i ->
          Swsr_atomic.reader ~net ~client_id
            ~inst:(ex_inst ~base_inst ~readers ~from_reader:i ~to_reader:reader_index)
            ~modulus ())
        others;
    outgoing =
      Array.map
        (fun i ->
          Swsr_atomic.writer ~net ~client_id
            ~inst:(ex_inst ~base_inst ~readers ~from_reader:reader_index ~to_reader:i)
            ~modulus ())
        others;
    modulus;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swmr_wb" `Read;
    wb_writes = 0;
  }

let write_o ?parent (w : writer) v =
  let span = Instr.start ?parent w.probe in
  let ctx = Instr.ctx span in
  (* One shared sequence number for all copies: re-impose it on each copy
     so that cross-copy comparisons stay meaningful even after transient
     faults desynchronized the per-copy counters. *)
  w.shared_sn <- Seqnum.succ ~modulus:w.modulus w.shared_sn;
  let outcome =
    Array.fold_left
      (fun acc c ->
        Swsr_atomic.set_wsn c
          (Seqnum.norm ~modulus:w.modulus (w.shared_sn - 1));
        Outcome.worse acc (Swsr_atomic.write_o ~parent:ctx c v))
      (Outcome.Ok ()) w.copies
  in
  Instr.finish ~ok:(Outcome.is_ok outcome) w.probe span;
  outcome

let write ?parent (w : writer) v = ignore (write_o ?parent w v)

(* Exchange payloads embed (wsn, value) as a genesis-stamped value. *)
let encode ~sn v = Value.stamped ~data:v ~epoch:(Epoch.genesis ~k:2) ~seq:sn

let decode ~modulus = function
  | Value.Stamped { data; seq; _ } -> (Seqnum.norm ~modulus seq, data)
  | (Value.Bot | Value.Int _ | Value.Str _) as v -> (Seqnum.zero, v)

let read_o ?parent ?max_iterations (r : reader) =
  let span = Instr.start ?parent r.probe in
  let ctx = Instr.ctx span in
  match Swsr_atomic.read_o ~parent:ctx ?max_iterations r.own with
  | Outcome.Degraded re ->
    Instr.finish ~ok:false r.probe span;
    Outcome.Degraded re
  | Outcome.Timed_out re ->
    Instr.finish ~ok:false r.probe span;
    Outcome.Timed_out re
  | Outcome.Ok own_v ->
    let own = (Swsr_atomic.pwsn r.own, own_v) in
    (* Exchange reads stay best-effort: a degraded or starved exchange
       cannot invalidate the value read from our own copy, it only loses
       freshness hints — so failures are absorbed, not propagated. *)
    let candidates =
      own
      :: (Array.to_list r.incoming
         |> List.filter_map (fun ex ->
                match Swsr_atomic.read ~parent:ctx ?max_iterations ex with
                | Some v -> Some (decode ~modulus:r.modulus v)
                | None -> None))
    in
    let best_sn, best_v =
      List.fold_left
        (fun (bsn, bv) (sn, v) ->
          if Seqnum.gt_cd ~modulus:r.modulus sn bsn then (sn, v)
          else (bsn, bv))
        own candidates
    in
    (* Write-back: inform the other readers before returning.  A degraded
       write-back degrades the read — other readers may miss the
       freshness this read is about to rely on. *)
    let wb =
      Array.fold_left
        (fun acc out ->
          r.wb_writes <- r.wb_writes + 1;
          Outcome.worse acc
            (Swsr_atomic.write_o ~parent:ctx out (encode ~sn:best_sn best_v)))
        (Outcome.Ok ()) r.outgoing
    in
    let outcome = Outcome.worse (Outcome.Ok best_v) (Outcome.map (fun () -> best_v) wb) in
    Instr.finish ~ok:(Outcome.is_ok outcome) r.probe span;
    outcome

let read ?parent ?max_iterations (r : reader) =
  Outcome.to_option (read_o ?parent ?max_iterations r)

let exchange_writes r = r.wb_writes
