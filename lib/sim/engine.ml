type event = { time : Vtime.t; seq : int; action : unit -> unit }

type t = {
  mutable clock : Vtime.t;
  mutable next_seq : int;
  queue : event Heap.t;
  rng : Rng.t;
  trace : Trace.t;
}

let compare_event a b =
  let c = Vtime.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?trace ~rng () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  { clock = Vtime.zero; next_seq = 0; queue = Heap.create ~cmp:compare_event; rng; trace }

let now t = t.clock

let rng t = t.rng

let trace t = t.trace

let metrics t = Trace.metrics t.trace

let hub t = Trace.hub t.trace

let schedule_at t time action =
  let time = Vtime.max time t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; action }

let schedule t ~delay action =
  schedule_at t (Vtime.add t.clock (max delay 0)) action

let run ?until ?(max_events = max_int) t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue && !fired < max_events do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev ->
      let past_deadline =
        match until with Some u -> Vtime.( < ) u ev.time | None -> false
      in
      if past_deadline then continue := false
      else begin
        ignore (Heap.pop t.queue);
        t.clock <- ev.time;
        incr fired;
        ev.action ()
      end
  done;
  match until with
  | Some u when Vtime.( < ) t.clock u && !fired < max_events -> t.clock <- u
  | _ -> ()

let pending t = Heap.length t.queue

let quiescent t = Heap.is_empty t.queue
