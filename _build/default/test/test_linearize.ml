open Util
open Oracles

let t i = Sim.Vtime.of_int i

let w h inv resp v =
  History.record h ~proc:"writer" ~kind:History.Write ~inv:(t inv)
    ~resp:(t resp) (int_value v)

let r h ?(proc = "reader") inv resp v =
  History.record h ~proc ~kind:History.Read ~inv:(t inv) ~resp:(t resp)
    (int_value v)

let linearizable h =
  match Linearize.check h with
  | Some b -> b
  | None -> Alcotest.fail "linearizer ran out of budget"

let test_sequential_clean () =
  let h = History.create () in
  w h 0 10 1;
  r h 20 30 1;
  w h 40 50 2;
  r h 60 70 2;
  check_true "linearizable" (linearizable h)

let test_stale_read_rejected () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 30 2;
  r h 40 50 1;
  check_false "stale read not linearizable" (linearizable h)

let test_concurrent_read_either_value () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 60 2;
  (* overlaps the second write: may return either *)
  r h 30 40 1;
  check_true "old value fine while write pending" (linearizable h);
  let h2 = History.create () in
  w h2 0 10 1;
  w h2 20 60 2;
  r h2 30 40 2;
  check_true "new value fine too" (linearizable h2)

let test_new_old_inversion_rejected () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 100 2;
  r h 30 40 2;
  r h 50 60 1;
  check_false "inversion not linearizable" (linearizable h)

let test_initial_value () =
  let h = History.create () in
  r h 0 5 99;
  check_false "phantom initial read" (linearizable h);
  let h2 = History.create () in
  History.record h2 ~proc:"r" ~kind:History.Read ~inv:(t 0) ~resp:(t 5)
    Registers.Value.bot;
  check_true "Bot before any write" (linearizable h2)

let test_multi_writer_tie () =
  (* Two overlapping writes; two sequential reads seeing them in one order
     — fine; in both orders — impossible. *)
  let h = History.create () in
  History.record h ~proc:"w1" ~kind:History.Write ~inv:(t 0) ~resp:(t 50)
    (int_value 1);
  History.record h ~proc:"w2" ~kind:History.Write ~inv:(t 0) ~resp:(t 50)
    (int_value 2);
  r h 60 70 1;
  check_true "either overlapping write may win" (linearizable h);
  let h2 = History.create () in
  History.record h2 ~proc:"w1" ~kind:History.Write ~inv:(t 0) ~resp:(t 50)
    (int_value 1);
  History.record h2 ~proc:"w2" ~kind:History.Write ~inv:(t 0) ~resp:(t 50)
    (int_value 2);
  r h2 60 70 1;
  r h2 80 90 2;
  check_false "cannot read the loser afterwards" (linearizable h2)

(* Cross-validation: on real simulator histories, the polynomial Sw oracle
   and the brute-force linearizer must agree. *)
let test_cross_validates_sw_oracle () =
  for seed = 1 to 12 do
    let scn = async_scenario ~seed () in
    let wtr = Registers.Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
    let rdr = Registers.Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
    run_fibers scn
      [
        ( "writer",
          fun () ->
            Harness.Workload.writer_job scn
              ~write:(Registers.Swsr_atomic.write wtr) ~count:6
              ~gap:(Harness.Workload.gap 0 15) () );
        ( "reader",
          fun () ->
            Harness.Workload.reader_job scn
              ~read:(fun () -> Registers.Swsr_atomic.read rdr)
              ~count:6 ~gap:(Harness.Workload.gap 0 15) () );
      ];
    let h = scn.Harness.Scenario.history in
    let sw_clean = Atomicity.Sw.is_clean (Atomicity.Sw.check h) in
    match Linearize.check h with
    | Some lin -> check_bool (Printf.sprintf "seed %d oracles agree" seed) sw_clean lin
    | None -> Alcotest.fail "budget exhausted on a 12-op history"
  done

(* And on the Fig. 1 histories: the regular register's is NOT linearizable,
   the atomic one's is. *)
let test_fig1_histories () =
  let build kind =
    let o = Harness.Fig1.run kind in
    let h = History.create () in
    w h 0 5 0;
    (* write(1) spans both reads *)
    History.record h ~proc:"writer" ~kind:History.Write ~inv:(t 6)
      ~resp:(t 1000) (int_value 1);
    (match o.Harness.Fig1.read1 with
    | Some v ->
      History.record h ~proc:"reader" ~kind:History.Read ~inv:(t 10)
        ~resp:(t 20) v
    | None -> ());
    (match o.Harness.Fig1.read2 with
    | Some v ->
      History.record h ~proc:"reader" ~kind:History.Read ~inv:(t 30)
        ~resp:(t 40) v
    | None -> ());
    linearizable h
  in
  check_false "regular register's Fig 1 history not linearizable"
    (build `Regular);
  check_true "atomic register's is" (build `Atomic)

let tests =
  [
    case "sequential clean" test_sequential_clean;
    case "stale read rejected" test_stale_read_rejected;
    case "concurrent read both ways" test_concurrent_read_either_value;
    case "new/old inversion rejected" test_new_old_inversion_rejected;
    case "initial value" test_initial_value;
    case "multi-writer ties" test_multi_writer_tie;
    case "cross-validates the Sw oracle" test_cross_validates_sw_oracle;
    case "Fig 1 histories" test_fig1_histories;
  ]
