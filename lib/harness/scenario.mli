(** Experiment wiring: engine + network + adversary + fault plan + history.

    A scenario owns one simulated deployment of the paper's system model:
    [n] server slots behind an adversary controller, FIFO links with
    sampled delays, a transient-fault injector with every piece of
    corruptible state registered, and an operation history fed by the
    workload jobs. *)

type t = {
  seed : int;
  engine : Sim.Engine.t;
  net : Registers.Net.t;
  fault : Sim.Fault.t;
  adversary : Byzantine.Adversary.t;
  history : Oracles.History.t;
}

val create :
  ?seed:int ->
  ?record_events:bool ->
  ?delay:int * int ->
  ?medium:Registers.Net.medium ->
  params:Registers.Params.t ->
  unit ->
  t
(** Build a deployment.  [delay] is the uniform per-link delay range
    (default [(1, 10)] in async mode; in sync mode the default upper bound
    is the mode's [max_delay], and a custom [delay] must respect it).
    Server state is registered with the fault injector under
    ["server.<i>"] — both as a corruptible state target and as a crashable
    process ({!Sim.Fault.schedule_crash} with prefix ["server.<i>"] crashes
    it; with [down_for] it recovers over arbitrary state); client-side
    state is registered by the [register_*] helpers below. *)

val run : ?until:Sim.Vtime.t -> t -> unit
(** Drive the engine until quiescence (or [until]). *)

exception Deadlock of string
(** The engine quiesced while job fibers were still suspended — the
    message lists each wedged fiber with the suspension point it blocks on
    (e.g. ["Mailbox.recv"], ["Collect.backoff"]). *)

val stuck_jobs : (string * Sim.Fiber.handle) list -> string list
(** Human-readable descriptions of the still-running fibers among
    [(name, handle)] pairs, with their {!Sim.Fiber.blocked_on} labels. *)

val check_jobs : (string * Sim.Fiber.handle) list -> unit
(** Watchdog: re-raise the first failed job's exception, then raise
    {!Deadlock} if any job is still suspended.  Call after {!run} returns
    to turn a silent hang into a diagnosed error. *)

val now : t -> Sim.Vtime.t

val rng : t -> Sim.Rng.t

val split_rng : t -> Sim.Rng.t

val sleep : t -> Sim.Vtime.span -> unit
(** Suspend the calling fiber for a duration. *)

val register_port : t -> Registers.Net.client_port -> unit
(** Expose a client port's data-link round tag (and in-flight link
    contents) to the fault injector, under ["client.<id>.round"] and
    ["link.c<id>"]. *)

val register_atomic_writer : t -> name:string -> Registers.Swsr_atomic.writer -> unit
(** Register the writer's persistent [wsn] under ["client.<name>.wsn"]. *)

val register_atomic_reader : t -> name:string -> Registers.Swsr_atomic.reader -> unit
(** Register the reader's persistent [(pwsn, pv)] under
    ["client.<name>.p"]. *)

val record :
  t ->
  proc:string ->
  kind:Oracles.History.kind ->
  ?ts:Registers.Epoch.t * int * int ->
  (unit -> Registers.Value.t option) ->
  Registers.Value.t option
(** Time an operation (must run inside a fiber) and append it to the
    history; a [None] result is recorded as a failed ([ok = false]) read of
    [Bot].  Returns the operation's result. *)

val metrics : t -> Obs.Metrics.t
(** The engine's metrics registry (counters, histograms). *)

val hub : t -> Obs.Hub.t
(** The engine's typed-event hub; attach sinks here to capture the
    deployment's event stream. *)

val messages_sent : t -> int
(** Engine-wide delivered-message count (trace counter ["net.msgs"]). *)

val broadcasts : t -> int
