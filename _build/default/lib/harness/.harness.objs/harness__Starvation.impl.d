lib/harness/starvation.ml: Byzantine Registers Script Sim
