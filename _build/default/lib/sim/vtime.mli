(** Virtual time for the discrete-event simulator.

    Time is a non-negative integer number of abstract ticks.  The paper's
    model assumes processing takes zero time and only message transfers take
    time, so ticks measure message-transfer delays exclusively.  Integer
    ticks keep the simulator fully deterministic (no floating-point drift
    across platforms). *)

type t
(** An absolute instant. *)

type span = int
(** A duration in ticks; always non-negative in well-formed uses. *)

val zero : t
(** The simulation origin. *)

val of_int : int -> t
(** [of_int ticks] is the instant [ticks] after the origin.  Raises
    [Invalid_argument] if [ticks < 0]. *)

val to_int : t -> int
(** Ticks since the origin. *)

val add : t -> span -> t
(** [add t d] is the instant [d] ticks after [t]. *)

val diff : t -> t -> span
(** [diff later earlier] is the (possibly negative) span between them. *)

val compare : t -> t -> int

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val max : t -> t -> t

val pp : Format.formatter -> t -> unit
