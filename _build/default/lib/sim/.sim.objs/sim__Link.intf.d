lib/sim/link.mli: Engine Rng Vtime
