(** The metrics registry: named counters, gauges, and log-bucketed
    latency histograms.

    One registry lives next to each engine (via [Sim.Trace]); protocol
    and substrate code bump counters and observe latencies, run reports
    serialize the registry.  Counters are plain [int ref]s — hot paths
    can resolve {!counter_ref} once and skip the name lookup. *)

(** {1 Histograms} *)

type histogram

val observe : histogram -> float -> unit
(** Record one sample (negative samples clamp to 0). *)

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_min : histogram -> float

val hist_max : histogram -> float
(** Exact extremes (0 on an empty histogram). *)

val hist_mean : histogram -> float

val quantile : histogram -> float -> float
(** Estimated quantile by linear interpolation inside the containing log
    bucket; exact at [q <= 0] (min) and [q >= 1] (max); within one
    bucket's relative width (~19%) otherwise.  0 on an empty
    histogram. *)

val bucket_index : float -> int
(** Bucket 0 holds [0, 1); bucket [i >= 1] holds
    [2^((i-1)/4), 2^(i/4)) — four buckets per doubling.  Exposed for the
    boundary tests. *)

val bucket_bounds : int -> float * float
(** Inclusive-lo/exclusive-hi bounds of a bucket; the last bucket's hi is
    [infinity]. *)

val num_buckets : int

val hist_to_json : histogram -> Json.t
(** [{count, mean, min, p50, p90, p95, p99, p999, max}]. *)

(** {1 Registry} *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val counter : t -> string -> int
(** 0 if never bumped. *)

val counter_ref : t -> string -> int ref
(** Find-or-create; the returned ref stays valid until
    {!reset_counters}. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val reset_counters : t -> unit

val set_gauge : t -> string -> float -> unit

val gauge : t -> string -> float option

val gauges : t -> (string * float) list

val histogram : t -> string -> histogram
(** Find-or-create. *)

val observe_named : t -> string -> float -> unit

val histograms : t -> (string * histogram) list

val to_json : t -> Json.t
