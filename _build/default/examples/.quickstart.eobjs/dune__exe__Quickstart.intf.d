examples/quickstart.mli:
