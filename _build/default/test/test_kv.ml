open Util

let schema = [ "alpha"; "beta"; "gamma" ]

let setup ?(seed = 7) ?(clients = 2) () =
  let scn = async_scenario ~seed () in
  let cfg = Kv.Store.config ~keys:schema ~clients in
  let stores =
    Array.init clients (fun id ->
        Kv.Store.client ~net:scn.Harness.Scenario.net ~cfg ~id
          ~client_id:(400 + id))
  in
  (scn, stores)

let test_config_validation () =
  Alcotest.check_raises "empty schema" (Invalid_argument "Kv.config: empty schema")
    (fun () -> ignore (Kv.Store.config ~keys:[] ~clients:2));
  Alcotest.check_raises "duplicate keys"
    (Invalid_argument "Kv.config: duplicate keys") (fun () ->
      ignore (Kv.Store.config ~keys:[ "a"; "a" ] ~clients:2));
  Alcotest.check_raises "no clients"
    (Invalid_argument "Kv.config: need at least one client") (fun () ->
      ignore (Kv.Store.config ~keys:[ "a" ] ~clients:0))

let test_set_get () =
  let scn, stores = setup () in
  let got = ref None in
  run_fiber scn "kv" (fun () ->
      Kv.Store.set stores.(0) ~key:"alpha" (int_value 1);
      got := Kv.Store.get stores.(0) ~key:"alpha");
  Alcotest.(check (option value)) "read own write" (Some (int_value 1)) !got

let test_cross_client_visibility () =
  let scn, stores = setup () in
  let got = ref None in
  run_fiber scn "kv" (fun () ->
      Kv.Store.set stores.(0) ~key:"beta" (int_value 7);
      got := Kv.Store.get stores.(1) ~key:"beta");
  Alcotest.(check (option value)) "visible to the other client"
    (Some (int_value 7)) !got

let test_keys_isolated () =
  let scn, stores = setup () in
  let a = ref None and b = ref None and c = ref None in
  run_fiber scn "kv" (fun () ->
      Kv.Store.set stores.(0) ~key:"alpha" (int_value 1);
      Kv.Store.set stores.(1) ~key:"beta" (int_value 2);
      a := Kv.Store.get stores.(0) ~key:"alpha";
      b := Kv.Store.get stores.(0) ~key:"beta";
      c := Kv.Store.get stores.(0) ~key:"gamma");
  Alcotest.(check (option value)) "alpha" (Some (int_value 1)) !a;
  Alcotest.(check (option value)) "beta" (Some (int_value 2)) !b;
  Alcotest.(check (option value)) "gamma unwritten"
    (Some Registers.Value.bot) !c

let test_unknown_key () =
  let scn, stores = setup () in
  run_fiber scn "kv" (fun () ->
      match Kv.Store.get stores.(0) ~key:"nope" with
      | exception Not_found -> ()
      | _ -> Alcotest.fail "expected Not_found")

let test_snapshot () =
  let scn, stores = setup () in
  let snap = ref [] in
  run_fiber scn "kv" (fun () ->
      Kv.Store.set stores.(0) ~key:"alpha" (int_value 1);
      Kv.Store.set stores.(1) ~key:"gamma" (int_value 3);
      snap := Kv.Store.snapshot stores.(1));
  check_true "snapshot in schema order"
    (List.map fst !snap = schema);
  check_true "values present"
    (List.assoc "alpha" !snap = int_value 1
    && List.assoc "gamma" !snap = int_value 3)

let test_last_writer_wins_per_key () =
  let scn, stores = setup () in
  let got = ref None in
  run_fiber scn "kv" (fun () ->
      Kv.Store.set stores.(0) ~key:"alpha" (int_value 1);
      Kv.Store.set stores.(1) ~key:"alpha" (int_value 2);
      Kv.Store.set stores.(0) ~key:"alpha" (int_value 3);
      got := Kv.Store.get stores.(1) ~key:"alpha");
  Alcotest.(check (option value)) "latest" (Some (int_value 3)) !got

let test_survives_byzantine_and_corruption () =
  let scn, stores = setup ~seed:9 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 3
    Byzantine.Behavior.garbage;
  let final = ref None in
  run_fiber scn "kv" (fun () ->
      Kv.Store.set stores.(0) ~key:"alpha" (int_value 1);
      (* transient fault on every server *)
      ignore
        (Sim.Fault.inject_matching scn.Harness.Scenario.fault
           ~rng:(Harness.Scenario.split_rng scn) ~prefix:"server.");
      (* the fault burst ends; the next write stabilizes the key *)
      Kv.Store.set stores.(1) ~key:"alpha" (int_value 2);
      final := Kv.Store.get stores.(0) ~key:"alpha");
  Alcotest.(check (option value)) "recovered" (Some (int_value 2)) !final

let test_concurrent_clients_atomic_per_key () =
  let scn, stores = setup ~seed:11 () in
  (* Both clients hammer the same key; record and check with the MWMR
     oracle. *)
  let jobs =
    Array.to_list
      (Array.mapi
         (fun i store ->
           ( Printf.sprintf "client%d" i,
             fun () ->
               let rng = Harness.Scenario.split_rng scn in
               for k = 1 to 8 do
                 let v = Harness.Workload.value_for ~writer:(500 + i) k in
                 let inv = Harness.Scenario.now scn in
                 Kv.Store.set store ~key:"alpha" v;
                 let resp = Harness.Scenario.now scn in
                 Oracles.History.record scn.Harness.Scenario.history
                   ~proc:(Printf.sprintf "c%d" i)
                   ~kind:Oracles.History.Write ~inv ~resp v;
                 Harness.Scenario.sleep scn (Sim.Rng.int_in rng 0 30);
                 let inv = Harness.Scenario.now scn in
                 (match Kv.Store.get store ~key:"alpha" with
                 | Some v ->
                   Oracles.History.record scn.Harness.Scenario.history
                     ~proc:(Printf.sprintf "c%d" i)
                     ~kind:Oracles.History.Read ~inv
                     ~resp:(Harness.Scenario.now scn) v
                 | None -> Alcotest.fail "read failed");
                 Harness.Scenario.sleep scn (Sim.Rng.int_in rng 0 30)
               done ))
         stores)
  in
  run_fibers scn jobs;
  (* Multi-writer histories break the single-writer regularity checker's
     "last completed write" notion (overlapping writes order arbitrarily),
     so require the weaker but well-defined properties: liveness, and no
     phantom reads (every value read was actually written or is Bot). *)
  let report =
    Oracles.Regularity.check ~initial_ok:true scn.Harness.Scenario.history
  in
  check_int "no liveness failures" 0 report.Oracles.Regularity.liveness_failures;
  let written =
    List.map
      (fun (o : Oracles.History.op) -> o.Oracles.History.value)
      (Oracles.History.writes scn.Harness.Scenario.history)
  in
  List.iter
    (fun (o : Oracles.History.op) ->
      check_true "no phantom values"
        (Registers.Value.equal o.Oracles.History.value Registers.Value.bot
        || List.exists (Registers.Value.equal o.Oracles.History.value) written))
    (Oracles.History.reads scn.Harness.Scenario.history)

let tests =
  [
    case "config validation" test_config_validation;
    case "set/get" test_set_get;
    case "cross-client visibility" test_cross_client_visibility;
    case "keys isolated" test_keys_isolated;
    case "unknown key" test_unknown_key;
    case "snapshot" test_snapshot;
    case "last writer wins per key" test_last_writer_wins_per_key;
    case "byzantine + corruption" test_survives_byzantine_and_corruption;
    case "concurrent clients" test_concurrent_clients_atomic_per_key;
  ]
