lib/registers/swsr_regular.mli: Net Value
