lib/sim/fault.ml: Engine List Printf Rng String Trace
