exception Out_of_budget

let check ?(initial = Registers.Value.bot) ?(max_steps = 2_000_000) h =
  let ops = Array.of_list (History.ops h) in
  let n = Array.length ops in
  (* precedes.(i).(j): op i responded before op j was invoked. *)
  let precedes =
    Array.init n (fun i ->
        Array.init n (fun j ->
            i <> j && Sim.Vtime.( <= ) ops.(i).History.resp ops.(j).History.inv))
  in
  let used = Array.make n false in
  let steps = ref 0 in
  (* DFS: extend the linearization with any unused op that is real-time
     minimal among the unused, keeping track of the current register
     value. *)
  let rec go placed current =
    if placed = n then true
    else begin
      incr steps;
      if !steps > max_steps then raise Out_of_budget;
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let cand = !i in
        incr i;
        if not used.(cand) then begin
          let minimal =
            let blocked = ref false in
            for j = 0 to n - 1 do
              if (not used.(j)) && j <> cand && precedes.(j).(cand) then
                blocked := true
            done;
            not !blocked
          in
          if minimal then begin
            let op = ops.(cand) in
            match op.History.kind with
            | History.Write ->
              used.(cand) <- true;
              if go (placed + 1) op.History.value then ok := true;
              used.(cand) <- false
            | History.Read ->
              if
                op.History.ok
                && Registers.Value.equal op.History.value current
              then begin
                used.(cand) <- true;
                if go (placed + 1) current then ok := true;
                used.(cand) <- false
              end
          end
        end
      done;
      !ok
    end
  in
  match go 0 initial with
  | result -> Some result
  | exception Out_of_budget -> None
