type 'm packet = { bit : bool; payload : 'm }

type 'm session = {
  rng : Sim.Rng.t;
  data : 'm packet Channel.t; (* sender -> receiver *)
  acks : bool Channel.t; (* receiver -> sender: the ack's bit *)
  mutable sender_bit : bool;
  mutable last_rx : 'm packet option;
  mutable delivered_rev : 'm list;
  mutable steps : int;
  mutable sent : int;
}

let create ~rng ~cap ?loss ?dup () =
  let mk () = Channel.create ~rng:(Sim.Rng.split rng) ~cap ?loss ?dup () in
  {
    rng;
    data = mk ();
    acks = Channel.create ~rng:(Sim.Rng.split rng) ~cap ?loss ?dup ();
    sender_bit = false;
    last_rx = None;
    delivered_rev = [];
    steps = 0;
    sent = 0;
  }

let scramble t ~garbage =
  let junk_packets =
    List.map (fun payload -> { bit = Sim.Rng.bool t.rng; payload }) garbage
  in
  Channel.preload t.data junk_packets;
  Channel.preload t.acks
    (List.map (fun _ -> Sim.Rng.bool t.rng) garbage);
  t.sender_bit <- Sim.Rng.bool t.rng;
  t.last_rx <-
    (match junk_packets with p :: _ when Sim.Rng.bool t.rng -> Some p | _ -> None)

(* Receiver step: consume one data packet if available; ack it; deliver on
   a (0,m) -> (1,m) transition. *)
let receiver_step t =
  match Channel.deliver t.data with
  | None -> ()
  | Some p ->
    Channel.send t.acks p.bit;
    (match (t.last_rx, p.bit) with
    | Some prev, true when prev.bit = false ->
      (* (1, m) immediately after (0, m'): the footnote delivers the
         payload of the phase-1 packet. *)
      t.delivered_rev <- p.payload :: t.delivered_rev
    | _ -> ());
    t.last_rx <- Some p

(* One phase of the handshake: push (bit, m) until cap+1 packets arrived
   from the receiver since the phase began.  [deadline] is an absolute
   step count: the budget is per send, while [t.steps] accumulates over
   the session's lifetime. *)
let phase ~deadline t bit m =
  let needed = Channel.capacity t.acks + 1 in
  let got = ref 0 in
  let ok = ref true in
  while !ok && !got < needed do
    if t.steps >= deadline then ok := false
    else begin
      t.steps <- t.steps + 1;
      Channel.send t.data { bit; payload = m };
      t.sent <- t.sent + 1;
      (* Let the medium and receiver make progress a random amount. *)
      for _ = 0 to Sim.Rng.int t.rng 3 do
        receiver_step t
      done;
      match Channel.deliver t.acks with
      | Some _ -> incr got
      | None -> ()
    end
  done;
  !ok

let send ?(max_steps = 100_000) t m =
  let deadline = t.steps + max_steps in
  t.sender_bit <- false;
  if
    phase ~deadline t false m
    && (t.sender_bit <- true;
        phase ~deadline t true m)
  then Ok ()
  else Error "alt_bit: handshake did not complete within max_steps"

let delivered t = List.rev t.delivered_rev

let take_delivered t =
  let d = delivered t in
  t.delivered_rev <- [];
  d

let steps t = t.steps

let packets_sent t = t.sent
