let schema_version = "stabreg/trace/v1"

let header ~experiment ~seed =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("experiment", Json.Str experiment);
      ("seed", Json.Int seed);
    ]

(* --- validation ------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ctx key j =
  match Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let as_int ctx j =
  match Json.to_int_opt j with
  | Some i -> Ok i
  | None -> Error (ctx ^ ": expected an integer")

let as_string ctx j =
  match Json.to_string_opt j with
  | Some s -> Ok s
  | None -> Error (ctx ^ ": expected a string")

let int_field ctx key j =
  let* v = field ctx key j in
  as_int (ctx ^ "." ^ key) v

let str_field ctx key j =
  let* v = field ctx key j in
  as_string (ctx ^ "." ^ key) v

let validate_header j =
  let* schema = str_field "header" "schema" j in
  let* () =
    if String.equal schema schema_version then Ok ()
    else
      Error
        (Printf.sprintf "header: schema mismatch: got %S, want %S" schema
           schema_version)
  in
  let* _ = str_field "header" "experiment" j in
  let* _ = int_field "header" "seed" j in
  Ok ()

let span_fields ctx j =
  let* _ = int_field ctx "trace" j in
  let* _ = int_field ctx "span" j in
  let* _ = int_field ctx "parent" j in
  Ok ()

let validate_event j =
  let* kind = str_field "event" "ev" j in
  let ctx = kind in
  let* _ = int_field ctx "t" j in
  match kind with
  | "send" | "recv" ->
    let* _ = str_field ctx "src" j in
    let* _ = str_field ctx "dst" j in
    let* _ = str_field ctx "msg" j in
    let* _ = int_field ctx "bytes" j in
    span_fields ctx j
  | "drop" ->
    let* _ = str_field ctx "link" j in
    let* v = field ctx "msg" j in
    (match v with
    | Json.Null | Json.Str _ -> Ok ()
    | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _ | Json.Obj _ ->
      Error (ctx ^ ".msg: expected a string or null"))
  | "op-invoke" | "op-return" ->
    let* _ = int_field ctx "op_id" j in
    let* _ = str_field ctx "proc" j in
    let* _ = str_field ctx "reg" j in
    let* _ = str_field ctx "op" j in
    let* () =
      if String.equal kind "op-return" then
        let* ok = field ctx "ok" j in
        match ok with
        | Json.Bool _ -> Ok ()
        | Json.Null | Json.Str _ | Json.Int _ | Json.Float _ | Json.List _
        | Json.Obj _ -> Error (ctx ^ ".ok: expected a boolean")
      else Ok ()
    in
    span_fields ctx j
  | "phase" ->
    let* _ = int_field ctx "server" j in
    let* _ = str_field ctx "phase" j in
    span_fields ctx j
  | "fault" ->
    let* _ = str_field ctx "target" j in
    let* _ = int_field ctx "hits" j in
    Ok ()
  | "stabilized" -> Ok ()
  | "mark" ->
    let* _ = str_field ctx "label" j in
    Ok ()
  | other -> Error (Printf.sprintf "event: unknown kind %S" other)

let fold_lines s f init =
  (* Split on '\n', tolerating a trailing newline; blank lines are
     rejected by the per-line callback receiving "". *)
  let lines = String.split_on_char '\n' s in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let rec go acc n = function
    | [] -> acc
    | l :: rest -> (
      match acc with Error _ as e -> e | Ok v -> go (f v n l) (n + 1) rest)
  in
  go (Ok init) 1 lines

let validate s =
  if String.equal s "" then Error "empty trace file"
  else
    let* (_ : bool) =
      fold_lines s
        (fun seen_header n line ->
          let* j =
            match Json.parse line with
            | Ok j -> Ok j
            | Error e -> Error (Printf.sprintf "line %d: %s" n e)
          in
          let* () =
            let r =
              if not seen_header then validate_header j else validate_event j
            in
            match r with
            | Ok () -> Ok ()
            | Error e -> Error (Printf.sprintf "line %d: %s" n e)
          in
          Ok true)
        false
    in
    Ok ()

(* --- causal-tree reconstruction --------------------------------------- *)

type tree = {
  span : int;
  parent : int;
  trace : int;
  events : Event.t list;
  children : tree list;
}

let peer_name = function
  | Event.Client i -> Printf.sprintf "c%d" i
  | Event.Server i -> Printf.sprintf "s%d" i

(* Group events by span id, then link children to parents.  Events within
   a span keep emission order (which is time order); children are ordered
   by span id, i.e. by allocation order — again deterministic. *)
let trees events =
  let attributed =
    List.filter (fun e -> not (Trace_ctx.is_none (Event.span e))) events
  in
  let by_span = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let s = Event.span e in
      let prev =
        match Hashtbl.find_opt by_span s.Trace_ctx.id with
        | Some (_, evs) -> evs
        | None -> []
      in
      Hashtbl.replace by_span s.Trace_ctx.id (s, e :: prev))
    attributed;
  let span_ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) by_span []
    |> List.sort Int.compare
  in
  let rec build id =
    let s, evs_rev = Hashtbl.find by_span id in
    let children =
      List.filter_map
        (fun cid ->
          if cid = id then None
          else
            let c, _ = Hashtbl.find by_span cid in
            if c.Trace_ctx.parent = id then Some (build cid) else None)
        span_ids
    in
    {
      span = id;
      parent = s.Trace_ctx.parent;
      trace = s.Trace_ctx.trace;
      events = List.rev evs_rev;
      children;
    }
  in
  (* Roots: spans whose parent was never observed (normally parent = 0). *)
  List.filter_map
    (fun id ->
      let s, _ = Hashtbl.find by_span id in
      if Hashtbl.mem by_span s.Trace_ctx.parent then None else Some (build id))
    span_ids

let tree_for events ~trace =
  List.find_opt (fun t -> t.trace = trace) (trees events)

let rec span_interval t =
  let times = List.map Event.time t.events in
  List.fold_left
    (fun (lo, hi) c ->
      let clo, chi = span_interval c in
      (min lo clo, max hi chi))
    ( List.fold_left min max_int times,
      List.fold_left max min_int times )
    t.children

let describe_event e =
  match e with
  | Event.Send { src; dst; cls; _ } ->
    Printf.sprintf "send %s->%s %s" (peer_name src) (peer_name dst)
      (Event.class_name cls)
  | Event.Recv { src; dst; cls; _ } ->
    Printf.sprintf "recv %s->%s %s" (peer_name src) (peer_name dst)
      (Event.class_name cls)
  | Event.Drop { link; _ } -> Printf.sprintf "drop on %s" link
  | Event.Op_invoke { proc; reg; op; _ } ->
    Printf.sprintf "invoke %s.%s by %s" reg (Event.op_name op) proc
  | Event.Op_return { proc; reg; op; ok; _ } ->
    Printf.sprintf "return %s.%s by %s%s" reg (Event.op_name op) proc
      (if ok then "" else " (failed)")
  | Event.Phase { server; phase; _ } -> Printf.sprintf "s%d %s" server phase
  | Event.Fault_injected { target; _ } -> Printf.sprintf "fault %s" target
  | Event.Stabilized _ -> "stabilized"
  | Event.Mark { label; _ } -> Printf.sprintf "mark %s" label

let span_label t =
  match t.events with
  | Event.Op_invoke { proc; reg; op; _ } :: _ ->
    Printf.sprintf "op %s.%s by %s" reg (Event.op_name op) proc
  | Event.Send { cls; _ } :: _ ->
    Printf.sprintf "round %s" (Event.class_name cls)
  | Event.Recv { cls; _ } :: _ ->
    (* A reply span normally starts with its Send at the server; a span
       opening on a Recv means the send was not observed. *)
    Printf.sprintf "reply %s" (Event.class_name cls)
  | Event.Phase _ :: _ -> "phase"
  | ( Event.Drop _ | Event.Op_return _ | Event.Fault_injected _
    | Event.Stabilized _ | Event.Mark _ )
    :: _
  | [] -> "span"

let pp_tree ppf t =
  let rec go indent node =
    let lo, hi = span_interval node in
    Format.fprintf ppf "%s%s (span %d, t %d..%d, %d ticks)@," indent
      (span_label node) node.span lo hi (hi - lo);
    List.iter
      (fun e ->
        Format.fprintf ppf "%s  @%d %s@," indent (Event.time e)
          (describe_event e))
      node.events;
    List.iter (go (indent ^ "  ")) node.children
  in
  Format.fprintf ppf "@[<v>";
  go "" t;
  Format.fprintf ppf "@]"

(* Per-phase latency breakdown: one row per direct child span (a broadcast
   round or a reply), plus one for the whole operation. *)
let breakdown t =
  let lo, hi = span_interval t in
  let total = (span_label t, lo, hi) in
  let rows =
    List.map
      (fun c ->
        let clo, chi = span_interval c in
        (span_label c, clo, chi))
      t.children
  in
  total :: rows

let pp_breakdown ppf rows =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (label, lo, hi) ->
      Format.fprintf ppf "%-24s t %6d .. %6d   %6d ticks@," label lo hi
        (hi - lo))
    rows;
  Format.fprintf ppf "@]"
