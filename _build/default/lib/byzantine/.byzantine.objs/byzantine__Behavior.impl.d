lib/byzantine/behavior.ml: Messages Net Registers Server Sim Value
