type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let v ~file ~line ~col ~rule ~severity message =
  { file; line; col; rule; severity; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> (
        match String.compare a.rule b.rule with
        | 0 -> String.compare a.message b.message
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let to_json t =
  Obs.Json.Obj
    [
      ("file", Obs.Json.Str t.file);
      ("line", Obs.Json.Int t.line);
      ("col", Obs.Json.Int t.col);
      ("rule", Obs.Json.Str t.rule);
      ("severity", Obs.Json.Str (severity_to_string t.severity));
      ("message", Obs.Json.Str t.message);
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Obs.Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "finding: missing or ill-typed %S" name)
  in
  let* file = field "file" Obs.Json.to_string_opt in
  let* line = field "line" Obs.Json.to_int_opt in
  let* col = field "col" Obs.Json.to_int_opt in
  let* rule = field "rule" Obs.Json.to_string_opt in
  let* sev = field "severity" Obs.Json.to_string_opt in
  let* severity =
    match severity_of_string sev with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "finding: unknown severity %S" sev)
  in
  let* message = field "message" Obs.Json.to_string_opt in
  Ok { file; line; col; rule; severity; message }

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s: %s" t.file t.line t.col t.rule
    (severity_to_string t.severity)
    t.message

let to_string t = Format.asprintf "%a" pp t
