(* RECOVERY: crash-recovery bursts, client degradation, and the
   stabilization-time oracle.

     dune exec bin/experiments.exe -- recovery
     dune exec bin/experiments.exe -- recovery --n 9 --bursts 3 --out results/recovery
     dune exec bin/experiments.exe -- recovery --replay examples/recovery/....json
*)

open Chaos

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let parent = Filename.dirname path in
  if parent <> "" && parent <> "." then Obs.Report.mkdir_p parent;
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let artifact_path ~out ~n ~seed =
  Filename.concat out (Printf.sprintf "recovery-n%d-seed%d.json" n seed)

let pp_tally fmt (t : Recovery.tally) =
  Format.fprintf fmt "%d ok / %d degraded / %d timed out" t.Recovery.ok
    t.Recovery.degraded t.Recovery.timed_out

let print_report (r : Recovery.report) =
  let cfg = r.Recovery.config in
  Printf.printf
    "n=%d t=%d: %d burst(s) x %d slot(s), down %d ticks, every %d ticks\n"
    cfg.Recovery.n cfg.Recovery.f cfg.Recovery.bursts cfg.Recovery.crashed
    cfg.Recovery.down_for cfg.Recovery.gap;
  List.iter
    (fun b -> Format.printf "  %a@." Recovery.pp_burst b)
    r.Recovery.bursts;
  Format.printf "  writes: %a@." pp_tally r.Recovery.write_ops;
  Format.printf "  reads:  %a@." pp_tally r.Recovery.read_ops;
  (match r.Recovery.stuck with
  | [] -> ()
  | stuck ->
    Printf.printf "  STUCK fibers: %s\n" (String.concat "; " stuck));
  Printf.printf "  duration: %d ticks, converged: %b\n" r.Recovery.duration
    r.Recovery.converged

let report_json ~n (r : Recovery.report) path =
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int n);
      ("converged", Obs.Json.Bool r.Recovery.converged);
      ( "stab_times",
        Obs.Json.List
          (List.map
             (fun (b : Recovery.burst_report) ->
               match b.Recovery.stab_time with
               | Some t -> Obs.Json.Int t
               | None -> Obs.Json.Null)
             r.Recovery.bursts) );
      ("stuck", Obs.Json.Int (List.length r.Recovery.stuck));
      ("artifact", Obs.Json.Str path);
    ]

(* Run the convergence sweep; returns the ns that failed to converge (or
   got stuck), for the caller's exit-status logic. *)
let run ~ns ~bursts ~crashed ~down_for ~retry ~seed ~out () =
  Printf.printf
    "recovery sweep: n=[%s] bursts=%d crashed=%d down_for=%d retry=%b \
     seed=%d\n\n"
    (String.concat "; " (List.map string_of_int ns))
    bursts crashed down_for retry seed;
  let first = ref true in
  let on_scenario scn =
    if !first then begin
      first := false;
      Common.attach_trace_sink (Harness.Scenario.hub scn);
      Common.observe_scn scn
    end
  in
  let results =
    List.map
      (fun n ->
        let cfg =
          {
            Recovery.default_config with
            Recovery.n;
            bursts;
            crashed;
            down_for;
            retry;
          }
        in
        let r = Recovery.run ~on_scenario cfg ~seed in
        print_report r;
        let path = artifact_path ~out ~n ~seed in
        write_file path (Obs.Json.to_string_pretty (Recovery.to_json r));
        Printf.printf "  artifact: %s\n\n" path;
        (n, r, path))
      ns
  in
  Common.add_extra "recovery"
    (Obs.Json.Obj
       [
         ("seed", Obs.Json.Int seed);
         ("bursts", Obs.Json.Int bursts);
         ("crashed", Obs.Json.Int crashed);
         ("down_for", Obs.Json.Int down_for);
         ("retry", Obs.Json.Bool retry);
         ( "runs",
           Obs.Json.List
             (List.map (fun (n, r, path) -> report_json ~n r path) results)
         );
       ]);
  List.filter_map
    (fun (n, r, _) ->
      if r.Recovery.converged && r.Recovery.stuck = [] then None else Some n)
    results

(* Replay a committed stabreg/recovery/v1 artifact; Ok only when the
   re-execution reproduces the recorded report bit-for-bit. *)
let replay path =
  match Obs.Json.parse (read_file path) with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok j -> (
    match Recovery.of_json j with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok recorded ->
      let on_scenario scn =
        Common.attach_trace_sink (Harness.Scenario.hub scn);
        Common.observe_scn scn
      in
      let replayed = Recovery.replay ~on_scenario recorded in
      Printf.printf "recorded:\n";
      print_report recorded;
      Printf.printf "replayed:\n";
      print_report replayed;
      let same = Recovery.matches recorded replayed in
      Common.add_extra "recovery_replay"
        (Obs.Json.Obj
           [
             ("artifact", Obs.Json.Str path);
             ("identical", Obs.Json.Bool same);
             ("converged", Obs.Json.Bool replayed.Recovery.converged);
           ]);
      if same then begin
        Printf.printf "replay reproduced the recorded report bit-for-bit\n";
        Ok ()
      end
      else Error "replay did NOT reproduce the recorded report")
