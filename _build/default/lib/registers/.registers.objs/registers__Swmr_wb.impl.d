lib/registers/swmr_wb.ml: Array Epoch List Seqnum Swsr_atomic Value
