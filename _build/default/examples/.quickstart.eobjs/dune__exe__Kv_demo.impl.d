examples/kv_demo.ml: Byzantine Harness Kv List Params Printf Registers Sim String Value
