(* E12 — Ablations: what each design ingredient of Fig. 3 buys.

   (a) The lines N2–N7 sanity phase: after the reader's (pwsn, pv)
   bookkeeping is corrupted above the writer's counter, how many reads
   return stale values before recovery, with and without the phase?
   Without it, recovery waits for the bounded counter to wrap past the
   corruption (here: a tiny modulus makes that observable; at 2^64 it
   would be the system's lifetime).

   (b) The read quorum on (wsn, value) pairs vs. the regular register's
   value-only cells: measured indirectly as the message/latency premium of
   Fig. 3 over Fig. 2 (also visible in E9). *)

open Registers

let recovery_reads ~seed ~sanity_check =
  let modulus = 101 in
  let params = Common.async_params ~n:9 ~f:1 in
  let scn = Common.scenario ~seed ~params () in
  let net = scn.Harness.Scenario.net in
  let w = Swsr_atomic.writer ~net ~client_id:100 ~inst:0 ~modulus () in
  let r =
    Swsr_atomic.reader ~net ~client_id:101 ~inst:0 ~modulus ~sanity_check ()
  in
  let stale = ref 0 and recovered_at = ref None in
  Common.run_jobs scn
    [
      ( "wr",
        fun () ->
          for i = 1 to 5 do
            Swsr_atomic.write w (Value.int i)
          done;
          (* Worst-case transient fault: pwsn lands clockwise-AHEAD of the
             writer's counter (5), so the 13M3 guard keeps preferring the
             stale local value until something repairs it. *)
          let rng = Harness.Scenario.split_rng scn in
          Swsr_atomic.corrupt_reader_to r
            ~pwsn:(10 + Sim.Rng.int rng 40)
            ~pv:(Value.str "stale");
          for i = 6 to 105 do
            Swsr_atomic.write w (Value.int i);
            match Swsr_atomic.read r with
            | Some v when Value.equal v (Value.int i) ->
              if !recovered_at = None then recovered_at := Some (i - 5)
            | Some _ | None ->
              incr stale;
              recovered_at := None
          done );
    ];
  Common.observe_scn scn;
  (!stale, !recovered_at)

let run ~seed =
  Harness.Report.section "E12: ablation — the lines N2-N7 sanity phase";
  let seeds = 6 in
  let rows =
    List.map
      (fun sanity_check ->
        let stale = ref 0 and worst = ref 0 in
        for s = 0 to seeds - 1 do
          let st, _ = recovery_reads ~seed:(seed + s) ~sanity_check in
          stale := !stale + st;
          worst := max !worst st
        done;
        [
          (if sanity_check then "with sanity phase (paper)" else "ablated");
          Harness.Report.pct !stale (seeds * 100);
          string_of_int !worst;
        ])
      [ true; false ]
  in
  Harness.Report.table
    ~title:
      "reader bookkeeping corrupted after write #5; modulus 101; 100\n\
       subsequent write+read pairs x 6 seeds"
    ~header:[ "variant"; "stale reads"; "worst single-seed stale reads" ]
    rows;
  print_endline
    "  Shape: the sanity phase repairs the reader's (pwsn, pv) from a\n\
    \  helping-value quorum within a read or two; ablated, recovery must\n\
    \  wait for the bounded counter to wrap past the corruption — ~half\n\
    \  the modulus on average, i.e. beyond the system's lifetime at the\n\
    \  paper's 2^64."
