(* E3 — Tightness of the asynchronous resilience requirement (Theorem 1).

   Two probes: (a) random schedules with an equivocating Byzantine server
   never starve reads even below n = 8t+1 (the helping path is robust);
   (b) the scripted worst-case scheduler of Harness.Starvation starves
   reads deterministically exactly for n <= 6t, giving the measured
   liveness crossover against this adversary (the paper's 8t+1 also covers
   the helping-refresh interplay of Lemma 2's proof). *)

open Registers

let random_starved ~seed ~n ~f =
  let params = Common.async_params ~n ~f in
  let scn = Common.scenario ~seed ~params () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    Byzantine.Behavior.equivocate;
  let w, r = Common.regular_pair scn in
  let starved = ref 0 in
  Common.run_jobs scn
    [
      ( "writer",
        fun () ->
          for i = 1 to 100 do
            Swsr_regular.write w (Value.int i)
          done );
      ( "reader",
        fun () ->
          for _ = 1 to 12 do
            match Swsr_regular.read ~max_iterations:4 r with
            | None -> incr starved
            | Some _ -> ()
          done );
    ];
  Common.observe_scn scn;
  !starved

let run ~seed =
  Harness.Report.section "E3: asynchronous liveness vs n (Thm 1, t < n/8)";
  let rows =
    List.map
      (fun (n, f) ->
        let random =
          let s = ref 0 in
          for i = 0 to 3 do
            s := !s + random_starved ~seed:(seed + i) ~n ~f
          done;
          !s
        in
        let scripted =
          Harness.Starvation.run ~n ~f
            ~instrument:(fun e -> Common.attach_trace_sink (Sim.Engine.hub e))
            ()
        in
        [
          string_of_int n;
          string_of_int f;
          (if n >= (8 * f) + 1 then "yes" else "no");
          Printf.sprintf "%d/48" random;
          Common.bool_str
            (Harness.Starvation.predicted_starvation ~n ~f ~sync:false);
          Common.bool_str scripted.Harness.Starvation.starved;
          string_of_int scripted.Harness.Starvation.rounds_used;
        ])
      [
        (5, 1); (6, 1); (7, 1); (8, 1); (9, 1); (10, 1);
        (11, 2); (12, 2); (13, 2); (17, 2);
      ]
  in
  Harness.Report.table
    ~title:"read starvation under an equivocating splitter"
    ~header:
      [
        "n"; "t"; "n>=8t+1"; "random starved"; "predicted (scripted)";
        "scripted starved"; "rounds";
      ]
    rows;
  print_endline
    "  Shape: no starvation at or above the bound; the scripted worst case\n\
    \  starves deterministically for n <= 6t; random schedules never do."
