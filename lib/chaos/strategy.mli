(** Serializable Byzantine strategy names.

    Chaos schedules must be writable to (and replayable from) JSON, so the
    adversary's per-slot strategies are named data rather than closures.
    {!to_behavior} resolves a name against a deployed adversary into the
    corresponding {!Byzantine.Behavior} — the slot argument matters for the
    strategies that wrap the slot's honest automaton (frozen, flaky,
    delayed, crash). *)

type t =
  | Silent
  | Garbage
  | Equivocate
  | Frozen
  | Collude  (** all colluders vouch for the one {!forged_cell} *)
  | Flaky of float  (** honest, dropping each delivery with this probability *)
  | Delayed of int  (** honest, processing every delivery this many ticks late *)
  | Crash of int  (** honest for that many deliveries, then crashed *)
  | Crash_recover of { down : int; wipe : Byzantine.Behavior.wipe }
      (** crash-recovery: down for that many ticks, then honest again over
          state rewritten per [wipe] (see {!Byzantine.Behavior.crash_recover}) *)

val forged_cell : Registers.Messages.cell
(** The fixed cell every [Collude] slot vouches for.  Its value is outside
    the workload generators' namespaced-integer value space, so a read
    returning it is detectable as "never written". *)

val default_pool : t array
(** The strategies a generated schedule roams through: every shape of
    arbitrary behaviour that is {e individually} tolerable under the
    resilience bound (no [Collude] — collusion above the bound is a
    deliberate campaign configuration, not background noise). *)

val to_behavior :
  Byzantine.Adversary.t -> slot:int -> t -> Byzantine.Behavior.t

val to_string : t -> string
(** Stable wire names: ["silent"], ["garbage"], ["equivocate"], ["frozen"],
    ["collude"], ["flaky:<p>"], ["delayed:<ticks>"], ["crash:<k>"],
    ["crashrec:<down>:<arbitrary|reset|keep>"]. *)

val wipe_to_string : Byzantine.Behavior.wipe -> string

val wipe_of_string : string -> (Byzantine.Behavior.wipe, string) result

val of_string : string -> (t, string) result

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
