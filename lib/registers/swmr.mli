(** Stabilizing SWMR atomic register from SWSR atomic registers (§5.1).

    The classical composition: the writer keeps one SWSR atomic register
    per reader and writes every value to all of them (the servers maintain
    the per-reader variables — here, one register {e instance} per reader);
    reader [j] reads its own copy.  Register instances [base_inst + j] for
    [j] in [0 .. readers-1] are used. *)

type writer

type reader

val writer :
  net:Net.t ->
  client_id:int ->
  base_inst:int ->
  readers:int ->
  ?modulus:int ->
  unit ->
  writer

val reader :
  net:Net.t ->
  client_id:int ->
  base_inst:int ->
  reader_index:int ->
  ?modulus:int ->
  unit ->
  reader

val write : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit
(** swmr_write(v): prac_at_write the value to every reader's copy, in
    reader-index order.  Must run inside a fiber. *)

val read :
  ?parent:Obs.Trace_ctx.span -> ?max_iterations:int -> reader -> Value.t option
(** swmr_read() by this reader: prac_at_read its own copy. *)

val write_o : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit Outcome.t
(** {!write} with a typed outcome: the worst outcome over the per-reader
    copies (a write that starved on any copy is degraded — that reader may
    not see it). *)

val read_o :
  ?parent:Obs.Trace_ctx.span ->
  ?max_iterations:int ->
  reader ->
  Value.t Outcome.t
(** {!read} with a typed service-level outcome. *)

val copies : writer -> Swsr_atomic.writer array
(** The underlying per-reader SWSR writers (inspection/fault targets). *)

val sr_reader : reader -> Swsr_atomic.reader
(** The underlying SWSR reader (inspection/fault target). *)
