open Util

let test_spawn_runs_immediately () =
  let ran = ref false in
  let h = Sim.Fiber.spawn (fun () -> ran := true) in
  check_true "body ran" !ran;
  check_true "done" (Sim.Fiber.status h = Sim.Fiber.Done)

let test_suspend_resume () =
  let resume_cell = ref None in
  let got = ref 0 in
  let h =
    Sim.Fiber.spawn (fun () ->
        got := Sim.Fiber.suspend (fun resume -> resume_cell := Some resume))
  in
  check_true "suspended" (Sim.Fiber.status h = Sim.Fiber.Running);
  (match !resume_cell with
  | Some resume -> resume 42
  | None -> Alcotest.fail "no resumption registered");
  check_int "value passed through" 42 !got;
  check_true "done after resume" (Sim.Fiber.status h = Sim.Fiber.Done)

let test_multiple_suspensions () =
  let resumes = Queue.create () in
  let log = ref [] in
  let _h =
    Sim.Fiber.spawn (fun () ->
        for _ = 1 to 3 do
          let v =
            Sim.Fiber.suspend (fun resume -> Queue.push resume resumes)
          in
          log := v :: !log
        done)
  in
  let rec pump i =
    if not (Queue.is_empty resumes) then begin
      (Queue.pop resumes) i;
      pump (i + 1)
    end
  in
  pump 1;
  check_true "all three resumed in order" (List.rev !log = [ 1; 2; 3 ])

exception Boom

let test_exception_propagates () =
  let resume_cell = ref None in
  let h =
    Sim.Fiber.spawn (fun () ->
        let () = Sim.Fiber.suspend (fun r -> resume_cell := Some r) in
        raise Boom)
  in
  (match !resume_cell with
  | Some resume -> (
    try
      resume ();
      Alcotest.fail "expected Boom to propagate"
    with Boom -> ())
  | None -> Alcotest.fail "no resumption");
  check_true "failed status" (Sim.Fiber.status h = Sim.Fiber.Failed Boom)

let test_immediate_exception () =
  try
    ignore (Sim.Fiber.spawn (fun () -> raise Boom));
    Alcotest.fail "expected Boom"
  with Boom -> ()

let test_name () =
  let h = Sim.Fiber.spawn ~name:"bob" (fun () -> ()) in
  Alcotest.(check string) "name" "bob" (Sim.Fiber.name h)

let test_two_fibers_interleave () =
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  let sleep d =
    Sim.Fiber.suspend (fun resume -> Sim.Engine.schedule e ~delay:d resume)
  in
  let log = ref [] in
  let _a =
    Sim.Fiber.spawn (fun () ->
        sleep 1;
        log := "a1" :: !log;
        sleep 10;
        log := "a2" :: !log)
  in
  let _b =
    Sim.Fiber.spawn (fun () ->
        sleep 5;
        log := "b1" :: !log)
  in
  Sim.Engine.run e;
  check_true "interleaved by virtual time"
    (List.rev !log = [ "a1"; "b1"; "a2" ])

let tests =
  [
    case "spawn runs immediately" test_spawn_runs_immediately;
    case "suspend/resume" test_suspend_resume;
    case "multiple suspensions" test_multiple_suspensions;
    case "exception propagates" test_exception_propagates;
    case "immediate exception" test_immediate_exception;
    case "name" test_name;
    case "two fibers interleave" test_two_fibers_interleave;
  ]
