(* Fixture: polymorphic-compare patterns R2 must flag. *)

type pair = { a : int; b : string }

let cmp = Stdlib.compare

let sort_pairs ps = List.sort compare ps

let same_record x = x = { a = 1; b = "s" }

let diff_list l = l <> [ 1; 2 ]

let qualified_eq x y = Stdlib.( = ) x y

let ok x y = Int.compare x y
