(** Fault schedules: the machine-generated adversity a campaign applies.

    A schedule is a time-sorted list of fully concrete disturbance events —
    every random choice (targets, slots, strategies, window shapes) is
    resolved at generation time, so a schedule replays bit-identically, can
    be serialized to JSON, and shrinks by plain list surgery. *)

type direction = To_servers | From_servers | Both

type event =
  | Inject of { at : int; prefix : string }
      (** {!Sim.Fault.inject_matching} over the prefix at instant [at]. *)
  | Roam of { at : int; assign : (int * Strategy.t) list }
      (** {!Byzantine.Adversary.roam}: the Byzantine set becomes exactly
          [assign] (vacated slots resume honest over corrupted state). *)
  | Window of {
      at : int;
      duration : int;
      loss : float;
      dup : float;
      dir : direction;
      server : int option;
          (** [Some s] restricts the window to links touching slot [s] — a
              directed partition when [loss = 1.0]. *)
    }
      (** Link-chaos window: every client port's transports run at
          [loss]/[dup] from [at] until [at + duration], then return to the
          medium's base rates.  A no-op under the [Reliable_fifo] medium. *)
  | Crash of { at : int; server : int; down_for : int option }
      (** {!Sim.Fault.schedule_crash} on ["server.<server>"]: crash-stop
          when [down_for] is [None], crash-recovery (rejoining over
          arbitrary state at [at + down_for]) otherwise. *)

type t = event list
(** Sorted by {!time} (stable for equal instants). *)

val time : event -> int

val sort : t -> t

val disturbance_points : t -> int list
(** Sorted, deduplicated instants after which the oracle expects the next
    completed write to re-establish the register condition: every event's
    [at], plus each window's closing instant, plus each crash-recovery's
    recovery instant (the rejoin over arbitrary state is itself a
    transient fault). *)

val event_to_json : event -> Obs.Json.t

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result

val equal : t -> t -> bool

val pp_event : Format.formatter -> event -> unit
