test/test_baseline.ml: Alcotest Baseline Byzantine Harness List Messages Params Printf Registers Server Swsr_atomic Swsr_regular Util Value
