test/test_history.ml: Alcotest Format History List Oracles Registers Sim String Util
