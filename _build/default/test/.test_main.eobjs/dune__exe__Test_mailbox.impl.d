test/test_mailbox.ml: Alcotest List Sim Util
