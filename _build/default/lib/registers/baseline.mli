(** Comparison registers for the experiments (E7).

    {!Nonstab} is a classical Byzantine-quorum SWSR register in the style
    of Malkhi–Reiter/ABD: unbounded integer timestamps, highest-timestamp
    read, {e no} self-stabilization machinery.  A transient fault that
    plants a huge timestamp at [t+1] servers (or rolls the writer's counter
    back) wedges it permanently — the behaviour the paper's bounded
    [>_cd] order and helping mechanism eliminate.

    {!Quiescent} models the register of Bonomi–Potop-Butucaru–Tixeuil
    (reference [3]): a stabilizing {e regular} register whose reads succeed
    only by finding a plain quorum of identical [last_val]s — no helping
    path.  It needs the paper-[3] "write quiescence" assumption: under a
    continuously active writer a read may never converge, which is the gap
    the Fig. 2 helping mechanism closes. *)

module Nonstab : sig
  type writer

  type reader

  val install_servers : net:Net.t -> Server.t array -> unit
  (** Classical timestamped storage servers: a WRITE is applied only if its
      timestamp exceeds the stored one (the monotonicity that makes the
      classical register safe — and, after a transient fault plants a huge
      timestamp, unrecoverable). Replaces the slots' current handlers. *)

  val writer : net:Net.t -> client_id:int -> inst:int -> writer

  val reader : net:Net.t -> client_id:int -> inst:int -> reader

  val write : writer -> Value.t -> unit

  val read : ?max_iterations:int -> reader -> Value.t option
  (** Highest-timestamp value appearing at least [t+1] times among [n-t]
      acknowledgments; retries (up to [max_iterations], default 64) until
      such a value exists. *)

  val timestamp : writer -> int

  val corrupt_writer : writer -> Sim.Rng.t -> unit
  (** Transient fault: rolls the volatile timestamp to a random small
      value.  (Planting poisoned cells at servers is done directly on
      {!Server.instance} state by the experiment code.) *)
end

module Quiescent : sig
  type writer

  type reader

  val writer : net:Net.t -> client_id:int -> inst:int -> writer

  val reader : net:Net.t -> client_id:int -> inst:int -> reader

  val write : writer -> Value.t -> unit

  val read : ?max_iterations:int -> reader -> Value.t option
  (** Retries until a {!Params.read_quorum} of identical [last_val]s shows
      up; gives up after [max_iterations] (default 64) rounds. *)

  val reader_iterations : reader -> int
end
