(** A single static-analysis finding.

    Findings are value types: the driver collects them from every rule,
    sorts them into a canonical order and serializes them into the
    [stabreg/lint-report/v1] artifact, so two runs over the same tree
    produce byte-identical output. *)

type severity = Error | Warning

type t = {
  file : string;  (** path relative to the scan root, [/]-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler locations *)
  rule : string;  (** rule id, e.g. ["R1"] *)
  severity : severity;
  message : string;
}

val v :
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  severity:severity ->
  string ->
  t

val compare : t -> t -> int
(** Canonical report order: file, line, col, rule, message. *)

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result

val pp : Format.formatter -> t -> unit
(** [file:line:col: [rule] severity: message], the human-readable line
    the CLI prints. *)

val to_string : t -> string
