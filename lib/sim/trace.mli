(** Execution traces: the engine-side front door of the observability
    pipeline.

    A trace bundles the typed-event {!Obs.Hub} and the {!Obs.Metrics}
    registry that instrumented code reports into, plus a legacy buffer of
    human-readable tagged string events (used by the annotated [trace]
    subcommand; disabled by default on long runs).  Counters delegate to
    the metrics registry, so [Trace.counter] and [Obs.Metrics.counter]
    observe the same values. *)

type event = { time : Vtime.t; tag : string; detail : string }

type t

val create :
  ?record_events:bool -> ?metrics:Obs.Metrics.t -> ?hub:Obs.Hub.t -> unit -> t
(** [record_events] (default true) controls only the string-event buffer;
    typed events flow whenever a sink is attached to the hub. *)

val metrics : t -> Obs.Metrics.t

val hub : t -> Obs.Hub.t

val spans : t -> Obs.Trace_ctx.t
(** The run's causal-span allocator.  Ids are handed out whether or not
    tracing sinks are attached, so span assignment never depends on
    observability configuration. *)

val emit : t -> time:Vtime.t -> tag:string -> string -> unit
(** Record a string event (no-op when event recording is disabled). *)

val emit_lazy : t -> time:Vtime.t -> tag:string -> (unit -> string) -> unit
(** Like {!emit}, but the detail string is only computed when recording is
    enabled — use on hot paths. *)

val recording : t -> bool

val events : t -> event list
(** All recorded string events, oldest first. *)

val events_tagged : t -> string -> event list
(** Recorded string events with the given tag, oldest first. *)

val incr : t -> string -> unit
(** Bump a named counter by one. *)

val add : t -> string -> int -> unit
(** Bump a named counter by [n]. *)

val counter : t -> string -> int
(** Current value of a counter (0 if never bumped). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val reset_counters : t -> unit

val pp_event : Format.formatter -> event -> unit
