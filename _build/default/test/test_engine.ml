open Util

let mk () = Sim.Engine.create ~rng:(Sim.Rng.create 1) ()

let test_time_advances () =
  let e = mk () in
  let fired = ref [] in
  Sim.Engine.schedule e ~delay:10 (fun () ->
      fired := Sim.Vtime.to_int (Sim.Engine.now e) :: !fired);
  Sim.Engine.schedule e ~delay:5 (fun () ->
      fired := Sim.Vtime.to_int (Sim.Engine.now e) :: !fired);
  Sim.Engine.run e;
  check_true "fired in time order" (List.rev !fired = [ 5; 10 ]);
  check_int "clock at last event" 10 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_same_time_fifo () =
  let e = mk () in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule e ~delay:3 (fun () -> order := i :: !order)
  done;
  Sim.Engine.run e;
  check_true "scheduling order preserved" (List.rev !order = [ 1; 2; 3; 4; 5 ])

let test_nested_scheduling () =
  let e = mk () in
  let log = ref [] in
  Sim.Engine.schedule e ~delay:1 (fun () ->
      log := "outer" :: !log;
      Sim.Engine.schedule e ~delay:2 (fun () -> log := "inner" :: !log));
  Sim.Engine.run e;
  check_true "nested fires" (List.rev !log = [ "outer"; "inner" ]);
  check_int "clock" 3 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_until () =
  let e = mk () in
  let fired = ref 0 in
  Sim.Engine.schedule e ~delay:5 (fun () -> incr fired);
  Sim.Engine.schedule e ~delay:15 (fun () -> incr fired);
  Sim.Engine.run ~until:(Sim.Vtime.of_int 10) e;
  check_int "only first fired" 1 !fired;
  check_int "clock parked at until" 10 (Sim.Vtime.to_int (Sim.Engine.now e));
  Sim.Engine.run e;
  check_int "remainder fires" 2 !fired

let test_until_inclusive () =
  let e = mk () in
  let fired = ref false in
  Sim.Engine.schedule e ~delay:10 (fun () -> fired := true);
  Sim.Engine.run ~until:(Sim.Vtime.of_int 10) e;
  check_true "event at the deadline fires" !fired

let test_max_events () =
  let e = mk () in
  let fired = ref 0 in
  for _ = 1 to 10 do
    Sim.Engine.schedule e ~delay:1 (fun () -> incr fired)
  done;
  Sim.Engine.run ~max_events:4 e;
  check_int "bounded" 4 !fired

let test_past_schedule_clamped () =
  let e = mk () in
  let at = ref (-1) in
  Sim.Engine.schedule e ~delay:5 (fun () ->
      Sim.Engine.schedule_at e Sim.Vtime.zero (fun () ->
          at := Sim.Vtime.to_int (Sim.Engine.now e)));
  Sim.Engine.run e;
  check_int "past event fires now" 5 !at

let test_negative_delay_clamped () =
  let e = mk () in
  let fired = ref false in
  Sim.Engine.schedule e ~delay:(-3) (fun () -> fired := true);
  Sim.Engine.run e;
  check_true "fires at current time" !fired;
  check_int "no time travel" 0 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_quiescent () =
  let e = mk () in
  check_true "initially quiescent" (Sim.Engine.quiescent e);
  Sim.Engine.schedule e ~delay:1 ignore;
  check_false "pending event" (Sim.Engine.quiescent e);
  check_int "pending count" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  check_true "quiescent after run" (Sim.Engine.quiescent e)

let tests =
  [
    case "time advances" test_time_advances;
    case "same-time FIFO" test_same_time_fifo;
    case "nested scheduling" test_nested_scheduling;
    case "run until" test_until;
    case "until inclusive" test_until_inclusive;
    case "max events" test_max_events;
    case "past schedule clamped" test_past_schedule_clamped;
    case "negative delay clamped" test_negative_delay_clamped;
    case "quiescence" test_quiescent;
  ]
