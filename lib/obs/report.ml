let schema_version = "stabreg/run-report/v1"

type op_summary = {
  count : int;
  mean : float;
  min : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

type msg_stats = { sent : int; recv : int; bytes : int }

type t = {
  experiment : string;
  seed : int;
  mutable params : (int * int * string) option;
  mutable messages : (string * msg_stats) list; (* insertion order *)
  mutable ops : (string * op_summary) list;
  mutable stabilization : int option;
  mutable counters : (string * int) list;
  mutable extra : (string * Json.t) list;
}

let create ~experiment ~seed =
  {
    experiment;
    seed;
    params = None;
    messages = [];
    ops = [];
    stabilization = None;
    counters = [];
    extra = [];
  }

let experiment t = t.experiment

let set_params t ~n ~f ~mode = t.params <- Some (n, f, mode)

let has_params t = t.params <> None

let set_stabilization t ticks = t.stabilization <- Some ticks

let add_message_class t ~name ~sent ~recv ~bytes =
  t.messages <- t.messages @ [ (name, { sent; recv; bytes }) ]

let add_op_summary t ~name s = t.ops <- t.ops @ [ (name, s) ]

let op_summary_of_histogram h =
  {
    count = Metrics.hist_count h;
    mean = Metrics.hist_mean h;
    min = Metrics.hist_min h;
    p50 = Metrics.quantile h 0.5;
    p90 = Metrics.quantile h 0.9;
    p95 = Metrics.quantile h 0.95;
    p99 = Metrics.quantile h 0.99;
    p999 = Metrics.quantile h 0.999;
    max = Metrics.hist_max h;
  }

let set_counters t cs = t.counters <- cs

let add_extra t key v = t.extra <- t.extra @ [ (key, v) ]

let op_summary_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("min", Json.Float s.min);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p95", Json.Float s.p95);
      ("p99", Json.Float s.p99);
      ("p999", Json.Float s.p999);
      ("max", Json.Float s.max);
    ]

let to_json t =
  let n, f, mode =
    match t.params with Some p -> p | None -> (0, 0, "unset")
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("experiment", Json.Str t.experiment);
      ("seed", Json.Int t.seed);
      ( "params",
        Json.Obj
          [ ("n", Json.Int n); ("f", Json.Int f); ("mode", Json.Str mode) ] );
      ( "messages",
        Json.Obj
          (List.map
             (fun (name, (m : msg_stats)) ->
               ( name,
                 Json.Obj
                   [
                     ("sent", Json.Int m.sent);
                     ("recv", Json.Int m.recv);
                     ("bytes", Json.Int m.bytes);
                   ] ))
             t.messages) );
      ( "ops",
        Json.Obj
          (List.map (fun (name, s) -> (name, op_summary_to_json s)) t.ops) );
      ( "stabilization_time",
        match t.stabilization with Some d -> Json.Int d | None -> Json.Null );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters) );
      ("extra", Json.Obj t.extra);
    ]

(* --- schema validation --- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ctx key j =
  match Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let as_int ctx j =
  match Json.to_int_opt j with
  | Some i -> Ok i
  | None -> Error (ctx ^ ": expected an integer")

let as_float ctx j =
  match Json.to_float_opt j with
  | Some x -> Ok x
  | None -> Error (ctx ^ ": expected a number")

let as_string ctx j =
  match Json.to_string_opt j with
  | Some s -> Ok s
  | None -> Error (ctx ^ ": expected a string")

let as_obj ctx j =
  match Json.to_obj_opt j with
  | Some fields -> Ok fields
  | None -> Error (ctx ^ ": expected an object")

let validate_op_summary ctx j =
  let* _ = as_obj ctx j in
  let* count = field ctx "count" j in
  let* _ = as_int (ctx ^ ".count") count in
  let check_stat acc key =
    let* () = acc in
    let* v = field ctx key j in
    let* _ = as_float (ctx ^ "." ^ key) v in
    Ok ()
  in
  List.fold_left check_stat (Ok ())
    [ "mean"; "min"; "p50"; "p90"; "p95"; "p99"; "p999"; "max" ]

let validate_msg_stats ctx j =
  let* _ = as_obj ctx j in
  let check acc key =
    let* () = acc in
    let* v = field ctx key j in
    let* _ = as_int (ctx ^ "." ^ key) v in
    Ok ()
  in
  List.fold_left check (Ok ()) [ "sent"; "recv"; "bytes" ]

let validate j =
  let* _ = as_obj "report" j in
  let* schema = field "report" "schema" j in
  let* schema = as_string "schema" schema in
  let* () =
    if String.equal schema schema_version then Ok ()
    else
      Error
        (Printf.sprintf "schema mismatch: got %S, want %S" schema
           schema_version)
  in
  let* experiment = field "report" "experiment" j in
  let* _ = as_string "experiment" experiment in
  let* seed = field "report" "seed" j in
  let* _ = as_int "seed" seed in
  let* params = field "report" "params" j in
  let* _ = as_obj "params" params in
  let* n = field "params" "n" params in
  let* _ = as_int "params.n" n in
  let* f = field "params" "f" params in
  let* _ = as_int "params.f" f in
  let* mode = field "params" "mode" params in
  let* _ = as_string "params.mode" mode in
  let* messages = field "report" "messages" j in
  let* message_fields = as_obj "messages" messages in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        validate_msg_stats ("messages." ^ name) v)
      (Ok ()) message_fields
  in
  let* ops = field "report" "ops" j in
  let* op_fields = as_obj "ops" ops in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        validate_op_summary ("ops." ^ name) v)
      (Ok ()) op_fields
  in
  let* stab = field "report" "stabilization_time" j in
  let* () =
    match stab with
    | Json.Null | Json.Int _ -> Ok ()
    | _ -> Error "stabilization_time: expected null or an integer"
  in
  let* counters = field "report" "counters" j in
  let* counter_fields = as_obj "counters" counters in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        let* _ = as_int ("counters." ^ name) v in
        Ok ())
      (Ok ()) counter_fields
  in
  Ok ()

(* --- file output --- *)

let mkdir_p dir =
  let parts = String.split_on_char '/' dir in
  ignore
    (List.fold_left
       (fun prefix part ->
         if String.equal part "" then
           if String.equal prefix "" then "/" else prefix
         else begin
           let path =
             if String.equal prefix "" then part
             else if String.equal prefix "/" then "/" ^ part
             else prefix ^ "/" ^ part
           in
           (if not (Sys.file_exists path) then
              try Sys.mkdir path 0o755 with Sys_error _ -> ());
           path
         end)
       "" parts)

let write ~dir t =
  mkdir_p dir;
  let path = Filename.concat dir (t.experiment ^ ".json") in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  output_char oc '\n';
  close_out oc;
  path
