type config = {
  keys : string list;
  clients : int;
  base_inst : int;
  seq_bound : int;
}

let config ~keys ~clients =
  if keys = [] then invalid_arg "Kv.config: empty schema";
  if List.sort_uniq String.compare keys <> List.sort String.compare keys then
    invalid_arg "Kv.config: duplicate keys";
  if clients <= 0 then invalid_arg "Kv.config: need at least one client";
  { keys; clients; base_inst = 0; seq_bound = 1 lsl 61 }

type t = {
  cfg : config;
  registers : (string * Registers.Mwmr.process) list;
  wprobe : Registers.Instr.probe;
  rprobe : Registers.Instr.probe;
}

let client ~net ~cfg ~id ~client_id =
  (* Each key's MWMR register occupies a disjoint instance range of size
     m*m, derived from its schema position. *)
  let m = cfg.clients in
  let registers =
    List.mapi
      (fun idx key ->
        let mwmr_cfg =
          {
            (Registers.Mwmr.default_config ~m) with
            Registers.Mwmr.base_inst = cfg.base_inst + (idx * m * m);
            seq_bound = cfg.seq_bound;
          }
        in
        (key, Registers.Mwmr.process ~net ~cfg:mwmr_cfg ~id ~client_id))
      cfg.keys
  in
  let engine = Registers.Net.engine net in
  let proc = Printf.sprintf "c%d" client_id in
  {
    cfg;
    registers;
    wprobe = Registers.Instr.probe ~engine ~proc ~reg:"kv" `Write;
    rprobe = Registers.Instr.probe ~engine ~proc ~reg:"kv" `Read;
  }

let register t key =
  match List.assoc_opt key t.registers with
  | Some r -> r
  | None -> raise Not_found

let set t ~key v =
  let span = Registers.Instr.start t.wprobe in
  Registers.Mwmr.write ~parent:(Registers.Instr.ctx span) (register t key) v;
  Registers.Instr.finish t.wprobe span

let get t ~key =
  let span = Registers.Instr.start t.rprobe in
  let result =
    Registers.Mwmr.read ~parent:(Registers.Instr.ctx span) (register t key)
  in
  Registers.Instr.finish ~ok:(result <> None) t.rprobe span;
  result

let keys t = t.cfg.keys

let snapshot t =
  List.map
    (fun key ->
      ( key,
        match get t ~key with
        | Some v -> v
        | None -> Registers.Value.bot ))
    t.cfg.keys
