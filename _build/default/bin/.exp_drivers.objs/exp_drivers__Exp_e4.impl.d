bin/exp_e4.ml: Common Harness List
