open Util
open Registers

let sync = Params.Sync { max_delay = 10; slack = 2 }

let test_async_bound () =
  check_true "9,1 ok" (Result.is_ok (Params.create ~n:9 ~f:1 ~mode:Params.Async ()));
  check_true "8,1 rejected"
    (Result.is_error (Params.create ~n:8 ~f:1 ~mode:Params.Async ()));
  check_true "17,2 ok"
    (Result.is_ok (Params.create ~n:17 ~f:2 ~mode:Params.Async ()));
  check_true "16,2 rejected"
    (Result.is_error (Params.create ~n:16 ~f:2 ~mode:Params.Async ()))

let test_sync_bound () =
  check_true "4,1 ok" (Result.is_ok (Params.create ~n:4 ~f:1 ~mode:sync ()));
  check_true "3,1 rejected" (Result.is_error (Params.create ~n:3 ~f:1 ~mode:sync ()));
  check_true "7,2 ok" (Result.is_ok (Params.create ~n:7 ~f:2 ~mode:sync ()))

let test_unchecked () =
  let p = Params.create_unchecked ~n:5 ~f:2 ~mode:Params.Async () in
  check_false "bound violated" (Params.satisfies_bound p);
  check_int "n kept" 5 p.Params.n

let test_zero_faults () =
  let p = Params.create_exn ~n:1 ~f:0 ~mode:Params.Async () in
  check_int "ack wait 1" 1 (Params.ack_wait p);
  check_int "read quorum 1" 1 (Params.read_quorum p);
  check_int "help threshold 1" 1 (Params.help_refresh_threshold p)

let test_async_thresholds () =
  let p = Params.create_exn ~n:17 ~f:2 ~mode:Params.Async () in
  check_int "ack wait n-t" 15 (Params.ack_wait p);
  check_int "read quorum 2t+1" 5 (Params.read_quorum p);
  check_int "help threshold 4t+1" 9 (Params.help_refresh_threshold p);
  check_true "no timeout" (Params.sync_timeout p = None)

let test_sync_thresholds () =
  let p = Params.create_exn ~n:7 ~f:2 ~mode:sync () in
  check_int "ack wait n" 7 (Params.ack_wait p);
  check_int "read quorum t+1" 3 (Params.read_quorum p);
  check_int "help threshold t+1" 3 (Params.help_refresh_threshold p);
  check_true "timeout 2*max+slack" (Params.sync_timeout p = Some 22)

let test_invalid_sizes () =
  Alcotest.check_raises "n=0" (Invalid_argument "Params: n must be positive")
    (fun () -> ignore (Params.create_unchecked ~n:0 ~f:0 ~mode:Params.Async ()));
  Alcotest.check_raises "f<0"
    (Invalid_argument "Params: f must be non-negative") (fun () ->
      ignore (Params.create_unchecked ~n:3 ~f:(-1) ~mode:Params.Async ()))

let tests =
  [
    case "async bound n>=8t+1" test_async_bound;
    case "sync bound n>=3t+1" test_sync_bound;
    case "unchecked" test_unchecked;
    case "zero faults degenerate" test_zero_faults;
    case "async thresholds" test_async_thresholds;
    case "sync thresholds" test_sync_thresholds;
    case "invalid sizes" test_invalid_sizes;
  ]
