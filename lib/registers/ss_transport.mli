(** A self-stabilizing, FIFO, at-least-once transport over an unreliable
    medium — the engine-integrated counterpart of the footnote-3 data link,
    used by {!Net}'s [`Stabilizing] medium to run the registers over links
    that actually lose, duplicate and reorder packets.

    One {!t} carries one direction of one link.  The sender is
    stop-and-wait with a bounded, wrapping transfer tag (the generalized
    alternating bit): it retransmits the current [(tag, body)] packet every
    [retrans] ticks until an acknowledgment echoing [tag] returns, then
    advances the tag and takes the next queued message.  The receiver
    acknowledges every packet; it delivers a packet when its tag is
    clockwise-newer than the last delivered tag, and re-synchronizes on a
    tag it has seen rejected [3] times in a row (only the sender's live
    retransmissions repeat that persistently).

    Self-stabilization contract: transient corruption of either side's tag
    state, or of the packets in flight, causes at most a bounded number of
    anomalous deliveries (loss, duplication or reordering of a few
    messages) before the link is again FIFO/exactly-once — and the
    register protocols tolerate exactly that class of anomaly (corrupted
    link state is part of their fault model). *)

type 'm t

val create :
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  delay:Sim.Link.sampler ->
  ?loss:float ->
  ?dup:float ->
  ?retrans:int ->
  ?tag_space:int ->
  ?classify:('m -> Obs.Event.msg_class) ->
  name:string ->
  deliver:('m -> unit) ->
  unit ->
  'm t
(** [retrans] defaults to 25 ticks (pick > the round-trip time to avoid
    useless retransmissions); [tag_space] to 1024 (must exceed a few times
    the plausible number of stale packets in flight).  [classify] labels
    the data link's typed drop events; the acknowledgment link always
    classifies as [Link_ack].  Retransmissions bump the
    ["transport.retrans"] counter. *)

val set_loss : 'm t -> float -> unit
(** Runtime chaos knob: retune the loss probability of both underlying
    media (data and acknowledgment links).  [1.0] partitions the link —
    the stop-and-wait sender keeps retransmitting, so traffic resumes and
    nothing queued is lost once the rate is lowered again. *)

val set_dup : 'm t -> float -> unit
(** Runtime chaos knob for the duplication probability of both media. *)

val send : 'm t -> ?on_delivered:(unit -> unit) -> 'm -> unit
(** Queue a message.  [on_delivered] fires when the sender learns (from
    the acknowledgment) that the receiver delivered it — strictly after
    the delivery itself. *)

val pending : 'm t -> int
(** Messages queued or in transfer. *)

val packets_sent : 'm t -> int

val corrupt : 'm t -> Sim.Rng.t -> unit
(** Transient fault: scramble both endpoints' tag state and the in-flight
    packets. *)
