open Util
open Registers

(* Figure 5: the synchronous model tolerates t < n/3 — here n = 4, t = 1,
   far below the asynchronous n >= 8t+1 requirement. *)
let setup ?(seed = 7) ?(n = 4) ?(f = 1) () =
  let scn = sync_scenario ~seed ~n ~f () in
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  (scn, w, r)

let concurrent_workload ?(writes = 20) ?(reads = 20) scn w r =
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_regular.write w)
            ~count:writes ~gap:(Harness.Workload.gap 0 20) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_regular.read r)
            ~count:reads ~gap:(Harness.Workload.gap 0 20) () );
    ]

let check_regular scn =
  let cutoff =
    match Oracles.History.writes scn.Harness.Scenario.history with
    | w :: _ -> w.Oracles.History.resp
    | [] -> Alcotest.fail "no writes"
  in
  let report = Oracles.Regularity.check ~cutoff scn.Harness.Scenario.history in
  if not (Oracles.Regularity.is_clean report) then
    Alcotest.failf "%a" Oracles.Regularity.pp report

let test_write_then_read () =
  let scn, w, r = setup () in
  let got = ref None in
  run_fiber scn "wr" (fun () ->
      Swsr_regular.write w (int_value 9);
      got := Swsr_regular.read r);
  Alcotest.(check (option value)) "read back" (Some (int_value 9)) !got

let test_concurrent_regular () =
  let scn, w, r = setup () in
  concurrent_workload scn w r;
  check_regular scn

let test_across_seeds () =
  for seed = 1 to 15 do
    let scn, w, r = setup ~seed () in
    concurrent_workload ~writes:10 ~reads:10 scn w r;
    check_regular scn
  done

let test_silent_byzantine_times_out_not_hangs () =
  (* A silent Byzantine server forces every wait to run to its timeout;
     operations must still terminate and be regular — the whole point of
     the t < n/3 synchronous construction. *)
  let scn, w, r = setup ~seed:3 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 2
    Byzantine.Behavior.silent;
  concurrent_workload scn w r;
  check_regular scn

let test_garbage_byzantine () =
  let scn, w, r = setup ~seed:4 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    Byzantine.Behavior.garbage;
  concurrent_workload scn w r;
  check_regular scn

let test_n7_f2 () =
  let scn, w, r = setup ~n:7 ~f:2 ~seed:5 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 1
    Byzantine.Behavior.silent;
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 4
    Byzantine.Behavior.equivocate;
  concurrent_workload ~writes:12 ~reads:12 scn w r;
  check_regular scn

let test_stabilizes_after_corruption () =
  let scn, w, r = setup ~seed:6 () in
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int 400)
    ~prefix:"server.";
  concurrent_workload ~writes:30 ~reads:30 scn w r;
  let cutoff =
    Oracles.History.writes scn.Harness.Scenario.history
    |> List.filter (fun (o : Oracles.History.op) ->
           Sim.Vtime.to_int o.Oracles.History.inv >= 400)
    |> function
    | o :: _ -> o.Oracles.History.resp
    | [] -> Alcotest.fail "no write after fault"
  in
  let report = Oracles.Regularity.check ~cutoff scn.Harness.Scenario.history in
  if not (Oracles.Regularity.is_clean report) then
    Alcotest.failf "%a" Oracles.Regularity.pp report

let test_sync_atomic_variant () =
  (* The §4 remark: the same Fig. 3 extension works over synchronous links
     with t < n/3. *)
  let scn = sync_scenario ~seed:8 ~n:4 ~f:1 () in
  let w =
    Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 ()
  in
  let r =
    Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 ()
  in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 3
    Byzantine.Behavior.garbage;
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_atomic.write w)
            ~count:20 ~gap:(Harness.Workload.gap 0 15) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_atomic.read r)
            ~count:20 ~gap:(Harness.Workload.gap 0 15) () );
    ];
  let cutoff =
    match Oracles.History.writes scn.Harness.Scenario.history with
    | w :: _ -> w.Oracles.History.resp
    | [] -> Alcotest.fail "no writes"
  in
  let report = Oracles.Atomicity.Sw.check ~cutoff scn.Harness.Scenario.history in
  if not (Oracles.Atomicity.Sw.is_clean report) then
    Alcotest.failf "%a" Oracles.Atomicity.Sw.pp report

let tests =
  [
    case "write then read (n=4, t=1)" test_write_then_read;
    case "concurrent regular" test_concurrent_regular;
    case "across seeds" test_across_seeds;
    case "silent byzantine, timeouts" test_silent_byzantine_times_out_not_hangs;
    case "garbage byzantine" test_garbage_byzantine;
    case "n=7 t=2 mixed adversary" test_n7_f2;
    case "stabilizes after corruption (Thm 2)" test_stabilizes_after_corruption;
    case "sync atomic variant (§4 remark)" test_sync_atomic_variant;
  ]
