type config = {
  keys : string list;
  clients : int;
  base_inst : int;
  seq_bound : int;
}

let config ~keys ~clients =
  if keys = [] then invalid_arg "Kv.config: empty schema";
  if List.sort_uniq String.compare keys <> List.sort String.compare keys then
    invalid_arg "Kv.config: duplicate keys";
  if clients <= 0 then invalid_arg "Kv.config: need at least one client";
  { keys; clients; base_inst = 0; seq_bound = 1 lsl 61 }

type t = { cfg : config; registers : (string * Registers.Mwmr.process) list }

let client ~net ~cfg ~id ~client_id =
  (* Each key's MWMR register occupies a disjoint instance range of size
     m*m, derived from its schema position. *)
  let m = cfg.clients in
  let registers =
    List.mapi
      (fun idx key ->
        let mwmr_cfg =
          {
            (Registers.Mwmr.default_config ~m) with
            Registers.Mwmr.base_inst = cfg.base_inst + (idx * m * m);
            seq_bound = cfg.seq_bound;
          }
        in
        (key, Registers.Mwmr.process ~net ~cfg:mwmr_cfg ~id ~client_id))
      cfg.keys
  in
  { cfg; registers }

let register t key =
  match List.assoc_opt key t.registers with
  | Some r -> r
  | None -> raise Not_found

let set t ~key v = Registers.Mwmr.write (register t key) v

let get t ~key = Registers.Mwmr.read (register t key)

let keys t = t.cfg.keys

let snapshot t =
  List.map
    (fun key ->
      ( key,
        match get t ~key with
        | Some v -> v
        | None -> Registers.Value.bot ))
    t.cfg.keys
