bin/exp_e14.ml: Byzantine Common Harness List Oracles Registers Swsr_atomic Value
