test/test_metrics.ml: Alcotest Harness List Metrics Oracles Registers Sim Util
