lib/registers/swmr.ml: Array Seqnum Swsr_atomic
