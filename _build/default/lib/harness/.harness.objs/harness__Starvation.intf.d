lib/harness/starvation.mli: Registers
