(* Crash-recovery bursts with a stabilization-time oracle.

   A recovery run crashes a rotating subset of server slots in periodic
   bursts, each slot rejoining after a fixed down window over arbitrary
   state (a transient fault by construction), while a writer/reader pair
   keeps operating through the typed-outcome API.  The oracle measures,
   per burst, the virtual time from the recovery instant to the first
   read certified correct by the regularity checker on that segment. *)

type config = {
  n : int;
  f : int;
  bursts : int;
  crashed : int;
  down_for : int;
  first_at : int;
  gap : int;
  writes : int;
  reads : int;
  read_budget : int;
  gap_hi : int;
  retry : bool;
}

let default_config =
  {
    n = 9;
    f = 1;
    bursts = 3;
    crashed = 2;
    down_for = 120;
    first_at = 150;
    gap = 500;
    writes = 60;
    reads = 70;
    read_budget = 48;
    gap_hi = 10;
    retry = true;
  }

let burst_at cfg b = cfg.first_at + (b * cfg.gap)

let schedule cfg =
  List.concat
    (List.init cfg.bursts (fun b ->
         let at = burst_at cfg b in
         List.init cfg.crashed (fun j ->
             Schedule.Crash
               {
                 at;
                 server = ((b * cfg.crashed) + j) mod cfg.n;
                 down_for = Some cfg.down_for;
               })))
  |> Schedule.sort

type tally = { ok : int; degraded : int; timed_out : int }

let zero_tally = { ok = 0; degraded = 0; timed_out = 0 }

let tally_outcome t (o : _ Registers.Outcome.t) =
  match o with
  | Registers.Outcome.Ok _ -> { t with ok = t.ok + 1 }
  | Registers.Outcome.Degraded _ -> { t with degraded = t.degraded + 1 }
  | Registers.Outcome.Timed_out _ -> { t with timed_out = t.timed_out + 1 }

type burst_report = {
  burst : int;
  crash_at : int;
  recovery_at : int;
  stab_time : int option;
      (* vtime from recovery to the first certified-correct read in the
         burst's segment; [None] when none landed before the next burst *)
}

type report = {
  seed : int;
  config : config;
  bursts : burst_report list;
  write_ops : tally;
  read_ops : tally;
  duration : int;
  stuck : string list;
  converged : bool;
}

(* First read the regularity checker certifies in [lo, hi): invoked at or
   after the segment's stabilization cutoff, successful, and not among
   the checker's violations. *)
let stabilization h ~lo ~hi =
  let sub = Campaign.sub_history h ~lo ~hi in
  match Campaign.cutoff_from sub ~lo with
  | None -> None
  | Some cutoff ->
    let rep = Oracles.Regularity.check ~cutoff sub in
    let bad =
      List.map (fun (v : Oracles.Regularity.violation) -> v.read) rep.violations
    in
    Oracles.History.reads sub
    |> List.find_opt (fun (o : Oracles.History.op) ->
           o.ok
           && Sim.Vtime.to_int o.inv >= Sim.Vtime.to_int cutoff
           && not (List.mem o bad))
    |> Option.map (fun (o : Oracles.History.op) ->
           Sim.Vtime.to_int o.resp - lo)

let run ?on_scenario cfg ~seed =
  let params =
    Registers.Params.create_unchecked
      ?retry:
        (if cfg.retry then Some Registers.Params.default_retry else None)
      ~n:cfg.n ~f:cfg.f ~mode:Registers.Params.Async ()
  in
  let scn = Harness.Scenario.create ~seed ~params () in
  let events = schedule cfg in
  List.iter (Campaign.apply_event scn) events;
  Option.iter (fun f -> f scn) on_scenario;
  let net = scn.Harness.Scenario.net in
  let w = Registers.Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
  let r = Registers.Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
  Harness.Scenario.register_port scn (Registers.Swsr_regular.writer_port w);
  Harness.Scenario.register_port scn (Registers.Swsr_regular.reader_port r);
  let metrics = Harness.Scenario.metrics scn in
  let h = scn.Harness.Scenario.history in
  let write_ops = ref zero_tally and read_ops = ref zero_tally in
  let g = Harness.Workload.gap 0 cfg.gap_hi in
  let writer_job () =
    let rng = Harness.Scenario.split_rng scn in
    for k = 1 to cfg.writes do
      let v = Registers.Value.int k in
      let inv = Harness.Scenario.now scn in
      let o = Registers.Swsr_regular.write_o w v in
      let resp = Harness.Scenario.now scn in
      (* Even a degraded write reached a read quorum of servers, so the
         oracle must treat it as a write that may be read. *)
      Oracles.History.record h ~proc:"writer" ~kind:Oracles.History.Write ~inv
        ~resp v;
      write_ops := tally_outcome !write_ops o;
      Obs.Metrics.incr metrics ("recovery.write." ^ Registers.Outcome.kind o);
      if g.Harness.Workload.hi > 0 then
        Harness.Scenario.sleep scn
          (Sim.Rng.int_in rng g.Harness.Workload.lo g.Harness.Workload.hi)
    done
  in
  let reader_job () =
    let rng = Harness.Scenario.split_rng scn in
    for _ = 1 to cfg.reads do
      let inv = Harness.Scenario.now scn in
      let o =
        Registers.Swsr_regular.read_o ~max_iterations:cfg.read_budget r
      in
      let resp = Harness.Scenario.now scn in
      (match o with
      | Registers.Outcome.Ok v ->
        Oracles.History.record h ~proc:"reader" ~kind:Oracles.History.Read
          ~inv ~resp v
      | Registers.Outcome.Degraded _ | Registers.Outcome.Timed_out _ ->
        Oracles.History.record h ~proc:"reader" ~kind:Oracles.History.Read
          ~inv ~resp ~ok:false Registers.Value.bot);
      read_ops := tally_outcome !read_ops o;
      Obs.Metrics.incr metrics ("recovery.read." ^ Registers.Outcome.kind o);
      if g.Harness.Workload.hi > 0 then
        Harness.Scenario.sleep scn
          (Sim.Rng.int_in rng g.Harness.Workload.lo g.Harness.Workload.hi)
    done
  in
  let handles =
    [
      ("writer", Sim.Fiber.spawn ~name:"writer" writer_job);
      ("reader", Sim.Fiber.spawn ~name:"reader" reader_job);
    ]
  in
  Harness.Scenario.run scn;
  let stuck = Harness.Scenario.stuck_jobs handles in
  let bursts =
    List.init cfg.bursts (fun b ->
        let crash_at = burst_at cfg b in
        let recovery_at = crash_at + cfg.down_for in
        let hi =
          if b + 1 < cfg.bursts then burst_at cfg (b + 1) else max_int
        in
        let stab_time = stabilization h ~lo:recovery_at ~hi in
        Option.iter
          (fun s ->
            Obs.Metrics.observe_named metrics "recovery.stab_time"
              (float_of_int s))
          stab_time;
        { burst = b; crash_at; recovery_at; stab_time })
  in
  let converged =
    match List.rev bursts with
    | last :: _ -> last.stab_time <> None
    | [] -> false
  in
  {
    seed;
    config = cfg;
    bursts;
    write_ops = !write_ops;
    read_ops = !read_ops;
    duration = Sim.Vtime.to_int (Harness.Scenario.now scn);
    stuck;
    converged;
  }

(* ------------------------------------------------------------------ *)
(* Artifacts                                                          *)

let schema = "stabreg/recovery/v1"

let config_to_json c =
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int c.n);
      ("f", Obs.Json.Int c.f);
      ("bursts", Obs.Json.Int c.bursts);
      ("crashed", Obs.Json.Int c.crashed);
      ("down_for", Obs.Json.Int c.down_for);
      ("first_at", Obs.Json.Int c.first_at);
      ("gap", Obs.Json.Int c.gap);
      ("writes", Obs.Json.Int c.writes);
      ("reads", Obs.Json.Int c.reads);
      ("read_budget", Obs.Json.Int c.read_budget);
      ("gap_hi", Obs.Json.Int c.gap_hi);
      ("retry", Obs.Json.Bool c.retry);
    ]

let tally_to_json t =
  Obs.Json.Obj
    [
      ("ok", Obs.Json.Int t.ok);
      ("degraded", Obs.Json.Int t.degraded);
      ("timed_out", Obs.Json.Int t.timed_out);
    ]

let burst_to_json b =
  Obs.Json.Obj
    [
      ("burst", Obs.Json.Int b.burst);
      ("crash_at", Obs.Json.Int b.crash_at);
      ("recovery_at", Obs.Json.Int b.recovery_at);
      ( "stab_time",
        match b.stab_time with
        | Some s -> Obs.Json.Int s
        | None -> Obs.Json.Null );
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema);
      ("seed", Obs.Json.Int r.seed);
      ("config", config_to_json r.config);
      ("schedule", Schedule.to_json (schedule r.config));
      ("bursts", Obs.Json.List (List.map burst_to_json r.bursts));
      ("write_ops", tally_to_json r.write_ops);
      ("read_ops", tally_to_json r.read_ops);
      ("duration", Obs.Json.Int r.duration);
      ("stuck", Obs.Json.List (List.map (fun s -> Obs.Json.Str s) r.stuck));
      ("converged", Obs.Json.Bool r.converged);
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ctx key j =
  match Obs.Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let as_int ctx j =
  match Obs.Json.to_int_opt j with
  | Some i -> Ok i
  | None -> Error (ctx ^ ": expected an integer")

let int_field ctx key j =
  let* v = field ctx key j in
  as_int (ctx ^ "." ^ key) v

let bool_field ctx key j =
  let* v = field ctx key j in
  match v with
  | Obs.Json.Bool b -> Ok b
  | _ -> Error (ctx ^ "." ^ key ^ ": expected a boolean")

let config_of_json j =
  let ctx = "config" in
  let* n = int_field ctx "n" j in
  let* f = int_field ctx "f" j in
  let* bursts = int_field ctx "bursts" j in
  let* crashed = int_field ctx "crashed" j in
  let* down_for = int_field ctx "down_for" j in
  let* first_at = int_field ctx "first_at" j in
  let* gap = int_field ctx "gap" j in
  let* writes = int_field ctx "writes" j in
  let* reads = int_field ctx "reads" j in
  let* read_budget = int_field ctx "read_budget" j in
  let* gap_hi = int_field ctx "gap_hi" j in
  let* retry = bool_field ctx "retry" j in
  Ok
    {
      n;
      f;
      bursts;
      crashed;
      down_for;
      first_at;
      gap;
      writes;
      reads;
      read_budget;
      gap_hi;
      retry;
    }

let tally_of_json ctx j =
  let* ok = int_field ctx "ok" j in
  let* degraded = int_field ctx "degraded" j in
  let* timed_out = int_field ctx "timed_out" j in
  Ok { ok; degraded; timed_out }

let burst_of_json j =
  let ctx = "burst" in
  let* burst = int_field ctx "burst" j in
  let* crash_at = int_field ctx "crash_at" j in
  let* recovery_at = int_field ctx "recovery_at" j in
  let* stab_time =
    match Obs.Json.member "stab_time" j with
    | None | Some Obs.Json.Null -> Ok None
    | Some v ->
      let* s = as_int "burst.stab_time" v in
      Ok (Some s)
  in
  Ok { burst; crash_at; recovery_at; stab_time }

let list_field ctx key of_item j =
  let* v = field ctx key j in
  match Obs.Json.to_list_opt v with
  | None -> Error (ctx ^ "." ^ key ^ ": expected a list")
  | Some items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* x = of_item item in
        Ok (x :: acc))
      (Ok []) items
    |> Result.map List.rev

let of_json j =
  let ctx = "recovery" in
  let* s = field ctx "schema" j in
  let* s =
    match Obs.Json.to_string_opt s with
    | Some s -> Ok s
    | None -> Error "recovery.schema: expected a string"
  in
  if not (String.equal s schema) then
    Error (Printf.sprintf "unsupported recovery schema %S (want %S)" s schema)
  else
    let* seed = int_field ctx "seed" j in
    let* config = field ctx "config" j in
    let* config = config_of_json config in
    let* bursts = list_field ctx "bursts" burst_of_json j in
    let* write_ops = field ctx "write_ops" j in
    let* write_ops = tally_of_json (ctx ^ ".write_ops") write_ops in
    let* read_ops = field ctx "read_ops" j in
    let* read_ops = tally_of_json (ctx ^ ".read_ops") read_ops in
    let* duration = int_field ctx "duration" j in
    let* stuck =
      list_field ctx "stuck"
        (fun item ->
          match Obs.Json.to_string_opt item with
          | Some s -> Ok s
          | None -> Error "recovery.stuck: expected strings")
        j
    in
    let* converged = bool_field ctx "converged" j in
    Ok
      { seed; config; bursts; write_ops; read_ops; duration; stuck; converged }

let replay ?on_scenario r = run ?on_scenario r.config ~seed:r.seed

let matches a b =
  a.seed = b.seed && a.config = b.config && a.bursts = b.bursts
  && a.write_ops = b.write_ops && a.read_ops = b.read_ops
  && a.duration = b.duration && a.stuck = b.stuck
  && a.converged = b.converged

let pp_burst fmt b =
  match b.stab_time with
  | Some s ->
    Format.fprintf fmt "burst %d: crash @%d, recover @%d, stabilized +%d"
      b.burst b.crash_at b.recovery_at s
  | None ->
    Format.fprintf fmt
      "burst %d: crash @%d, recover @%d, no certified read before next burst"
      b.burst b.crash_at b.recovery_at
