type probe = {
  engine : Sim.Engine.t;
  proc : string;
  reg : string;
  op : Obs.Event.op_kind;
  hist : Obs.Metrics.histogram;
}

type span = { id : int; t0 : Sim.Vtime.t; ctx : Obs.Trace_ctx.span }

let probe ~engine ~proc ~reg op =
  {
    engine;
    proc;
    reg;
    op;
    hist =
      Obs.Metrics.histogram
        (Sim.Engine.metrics engine)
        (Printf.sprintf "op.%s.%s" reg (Obs.Event.op_name op));
  }

let start ?parent p =
  let hub = Sim.Engine.hub p.engine in
  let id = Obs.Hub.next_op_id hub in
  let t0 = Sim.Engine.now p.engine in
  let spans = Sim.Engine.spans p.engine in
  let ctx =
    match parent with
    | None -> Obs.Trace_ctx.root spans
    | Some parent -> Obs.Trace_ctx.child spans parent
  in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Op_invoke
         {
           time = Sim.Vtime.to_int t0;
           id;
           proc = p.proc;
           reg = p.reg;
           op = p.op;
           span = ctx;
         });
  { id; t0; ctx }

let ctx span = span.ctx

let finish ?(ok = true) p span =
  let now = Sim.Engine.now p.engine in
  Obs.Metrics.observe p.hist (float_of_int (Sim.Vtime.diff now span.t0));
  let hub = Sim.Engine.hub p.engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Op_return
         {
           time = Sim.Vtime.to_int now;
           id = span.id;
           proc = p.proc;
           reg = p.reg;
           op = p.op;
           ok;
           span = span.ctx;
         })
