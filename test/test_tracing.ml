(* Causal tracing and the flight recorder: span allocation and
   propagation, the stabreg/trace/v1 schema, causal-tree reconstruction
   for a read crossing a transient-corruption window, the Chrome
   trace_event export, the mc/chaos profile recorder — and the
   no-perturbation guarantees (tracing changes no outcome; same-seed
   traces are byte-identical). *)

open Util

(* --- span allocator -------------------------------------------------- *)

let test_span_allocator () =
  let t = Obs.Trace_ctx.create () in
  check_int "fresh allocator" 0 (Obs.Trace_ctx.allocated t);
  check_true "none is none" (Obs.Trace_ctx.is_none Obs.Trace_ctx.none);
  let r = Obs.Trace_ctx.root t in
  check_false "root is real" (Obs.Trace_ctx.is_none r);
  check_int "root trace = own id" r.Obs.Trace_ctx.id r.Obs.Trace_ctx.trace;
  check_int "root has no parent" 0 r.Obs.Trace_ctx.parent;
  let c = Obs.Trace_ctx.child t r in
  check_int "child inherits trace" r.Obs.Trace_ctx.trace
    c.Obs.Trace_ctx.trace;
  check_int "child links parent" r.Obs.Trace_ctx.id c.Obs.Trace_ctx.parent;
  check_true "ids increase" (c.Obs.Trace_ctx.id > r.Obs.Trace_ctx.id);
  (* A child of [none] degenerates to a fresh root: orphan replies still
     get their own tree instead of a dangling parent link. *)
  let orphan = Obs.Trace_ctx.child t Obs.Trace_ctx.none in
  check_int "orphan is a root" 0 orphan.Obs.Trace_ctx.parent;
  check_int "orphan starts its own trace" orphan.Obs.Trace_ctx.id
    orphan.Obs.Trace_ctx.trace;
  check_int "three spans allocated" 3 (Obs.Trace_ctx.allocated t)

let test_event_span_json () =
  let t = Obs.Trace_ctx.create () in
  let s = Obs.Trace_ctx.root t in
  let e =
    Obs.Event.Send
      {
        time = 5;
        src = Obs.Event.Client 1;
        dst = Obs.Event.Server 2;
        cls = Obs.Event.Write;
        bytes = 10;
        span = s;
      }
  in
  let j = Obs.Event.to_json e in
  let int_field k =
    match Obs.Json.member k j with
    | Some v -> Obs.Json.to_int_opt v
    | None -> None
  in
  check_true "trace field" (int_field "trace" = Some s.Obs.Trace_ctx.trace);
  check_true "span field" (int_field "span" = Some s.Obs.Trace_ctx.id);
  check_true "parent field" (int_field "parent" = Some 0);
  (* Span-less constructors report Trace_ctx.none. *)
  check_true "drop has no span"
    (Obs.Trace_ctx.is_none
       (Obs.Event.span (Obs.Event.Drop { time = 1; link = "l"; cls = None })))

(* --- an instrumented run crossing a corruption window ---------------- *)

let fault_at = 300

(* The trace subcommand's deployment, in miniature: a regular-register
   writer/reader pair, every server scrambled mid-workload, all events
   collected in memory. *)
let corrupted_run ?(seed = 3) ?(attach = true) () =
  let scn = async_scenario ~seed ~n:9 ~f:1 () in
  let recorded =
    if attach then begin
      let mem, recorded = Obs.Sink.memory () in
      Obs.Hub.attach (Harness.Scenario.hub scn) mem;
      recorded
    end
    else fun () -> []
  in
  let net = scn.Harness.Scenario.net in
  let w = Registers.Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
  let r = Registers.Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
  Harness.Scenario.register_port scn (Registers.Swsr_regular.writer_port w);
  Harness.Scenario.register_port scn (Registers.Swsr_regular.reader_port r);
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine
    ~at:(Sim.Vtime.of_int fault_at) ~prefix:"server.";
  let writer () =
    Harness.Workload.writer_job scn ~write:(Registers.Swsr_regular.write w)
      ~count:15 ~gap:(Harness.Workload.gap 5 25) ()
  in
  let reader () =
    Harness.Workload.reader_job scn
      ~read:(fun () -> Registers.Swsr_regular.read r)
      ~count:15 ~gap:(Harness.Workload.gap 5 25) ()
  in
  let hw = Sim.Fiber.spawn ~name:"writer" writer in
  let hr = Sim.Fiber.spawn ~name:"reader" reader in
  Harness.Scenario.run scn;
  List.iter
    (fun h ->
      match Sim.Fiber.status h with
      | Sim.Fiber.Done -> ()
      | Sim.Fiber.Running -> Alcotest.fail "workload fiber wedged"
      | Sim.Fiber.Failed e -> raise e)
    [ hw; hr ];
  (scn, recorded ())

(* The first read invoked inside/after the corruption window that also
   completed. *)
let post_fault_read events =
  List.find_map
    (function
      | Obs.Event.Op_invoke { time; id; op = `Read; span; _ }
        when time >= fault_at ->
        List.find_map
          (function
            | Obs.Event.Op_return { time = rt; id = rid; _ } when rid = id ->
              Some (time, rt, span)
            | _ -> None)
          events
      | _ -> None)
    events

let test_causal_tree_of_corrupted_read () =
  let _, events = corrupted_run () in
  check_true "fault fired"
    (List.exists
       (function Obs.Event.Fault_injected _ -> true | _ -> false)
       events);
  match post_fault_read events with
  | None -> Alcotest.fail "no completed post-corruption read"
  | Some (inv, ret, span) -> (
    match Obs.Tracefile.tree_for events ~trace:span.Obs.Trace_ctx.trace with
    | None -> Alcotest.fail "no causal tree for the read's trace"
    | Some t ->
      check_int "tree rooted at the op span" span.Obs.Trace_ctx.id
        t.Obs.Tracefile.span;
      check_true "op events on the root"
        (List.exists
           (function Obs.Event.Op_invoke _ -> true | _ -> false)
           t.Obs.Tracefile.events
        && List.exists
             (function Obs.Event.Op_return _ -> true | _ -> false)
             t.Obs.Tracefile.events);
      check_true "broadcast round child" (t.Obs.Tracefile.children <> []);
      let round = List.hd t.Obs.Tracefile.children in
      let sends =
        List.filter
          (function Obs.Event.Send _ -> true | _ -> false)
          round.Obs.Tracefile.events
      in
      check_int "READ broadcast to all nine servers" 9 (List.length sends);
      check_true "server phase transitions attributed"
        (List.exists
           (function
             | Obs.Event.Phase { phase; _ } -> phase = "handle.READ"
             | _ -> false)
           round.Obs.Tracefile.events);
      check_true "reply spans under the round"
        (round.Obs.Tracefile.children <> []);
      let lo, hi = Obs.Tracefile.span_interval t in
      check_true "interval covers the op" (lo <= inv && hi >= ret);
      let rows = Obs.Tracefile.breakdown t in
      check_true "breakdown: op row plus per-phase rows"
        (List.length rows >= 2))

let events_to_jsonl ~seed events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Obs.Json.to_string (Obs.Tracefile.header ~experiment:"TEST" ~seed));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Obs.Json.to_string (Obs.Event.to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let test_trace_file_validates () =
  let _, events = corrupted_run () in
  let contents = events_to_jsonl ~seed:3 events in
  (match Obs.Tracefile.validate contents with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace file invalid: %s" e);
  check_true "empty file rejected"
    (Result.is_error (Obs.Tracefile.validate ""));
  check_true "wrong header rejected"
    (Result.is_error (Obs.Tracefile.validate "{\"schema\":\"nope\"}\n"));
  let header =
    Obs.Json.to_string (Obs.Tracefile.header ~experiment:"T" ~seed:1)
  in
  (match Obs.Tracefile.validate (header ^ "\n{\"kind\":\"mystery\"}\n") with
  | Ok () -> Alcotest.fail "junk event accepted"
  | Error e ->
    check_true "error names line 2"
      (let rec contains i =
         i + 6 <= String.length e
         && (String.sub e i 6 = "line 2" || contains (i + 1))
       in
       contains 0))

let test_trace_byte_identical () =
  let _, a = corrupted_run ~seed:11 () in
  let _, b = corrupted_run ~seed:11 () in
  check_true "same-seed runs trace byte-identically"
    (String.equal (events_to_jsonl ~seed:11 a) (events_to_jsonl ~seed:11 b))

(* Tracing must be pure observation: history, results and even span
   allocation identical whether or not a sink is attached. *)
let test_tracing_changes_nothing () =
  let history scn =
    List.map
      (fun (o : Oracles.History.op) ->
        ( o.Oracles.History.proc,
          Sim.Vtime.to_int o.inv,
          Sim.Vtime.to_int o.resp,
          Registers.Value.to_string o.value ))
      (Oracles.History.ops scn.Harness.Scenario.history)
  in
  let scn_on, events = corrupted_run ~seed:5 ~attach:true () in
  let scn_off, no_events = corrupted_run ~seed:5 ~attach:false () in
  check_true "sink recorded" (events <> []);
  check_true "no sink, no events" (no_events = []);
  check_true "histories identical" (history scn_on = history scn_off);
  check_int "same virtual time"
    (Sim.Vtime.to_int (Harness.Scenario.now scn_off))
    (Sim.Vtime.to_int (Harness.Scenario.now scn_on));
  check_int "span allocation is observability-independent"
    (Obs.Trace_ctx.allocated
       (Sim.Engine.spans scn_off.Harness.Scenario.engine))
    (Obs.Trace_ctx.allocated
       (Sim.Engine.spans scn_on.Harness.Scenario.engine))

(* --- Chrome trace_event export --------------------------------------- *)

let test_chrome_export () =
  let _, events = corrupted_run () in
  let j = Obs.Chrome_trace.to_json events in
  (match Obs.Chrome_trace.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome export invalid: %s" e);
  let entries =
    match Obs.Json.member "traceEvents" j with
    | Some l -> Option.value ~default:[] (Obs.Json.to_list_opt l)
    | None -> []
  in
  let ph p e =
    match Obs.Json.member "ph" e with
    | Some s -> Obs.Json.to_string_opt s = Some p
    | None -> false
  in
  check_true "has slices" (List.exists (ph "X") entries);
  check_true "has thread metadata" (List.exists (ph "M") entries);
  check_true "fault becomes an instant"
    (List.exists
       (fun e ->
         ph "i" e
         &&
         match Obs.Json.member "cat" e with
         | Some s -> Obs.Json.to_string_opt s = Some "fault"
         | None -> false)
       entries);
  check_true "rejects a negative duration"
    (Result.is_error
       (Obs.Chrome_trace.validate
          (Obs.Json.Obj
             [
               ( "traceEvents",
                 Obs.Json.List
                   [
                     Obs.Json.Obj
                       [
                         ("name", Obs.Json.Str "bad");
                         ("cat", Obs.Json.Str "span");
                         ("ph", Obs.Json.Str "X");
                         ("ts", Obs.Json.Int 4);
                         ("dur", Obs.Json.Int (-1));
                         ("pid", Obs.Json.Int 1);
                         ("tid", Obs.Json.Int 0);
                       ];
                   ] );
             ])))

(* --- the flight recorder --------------------------------------------- *)

let test_profile_cadence () =
  let p = Obs.Profile.create ~every:10 ~kind:"mc" () in
  check_true "first tick is due" (Obs.Profile.due p ~tick:1);
  Obs.Profile.sample p ~tick:1 (fun () -> [ ("x", Obs.Json.Int 1) ]);
  check_int "recorded" 1 (Obs.Profile.samples p);
  check_false "within cadence" (Obs.Profile.due p ~tick:5);
  let evaluated = ref false in
  Obs.Profile.sample p ~tick:5 (fun () ->
      evaluated := true;
      []);
  check_false "thunk not evaluated when skipped" !evaluated;
  check_int "skipped" 1 (Obs.Profile.samples p);
  Obs.Profile.sample p ~tick:11 (fun () -> [ ("x", Obs.Json.Int 2) ]);
  check_int "cadence passed" 2 (Obs.Profile.samples p);
  Obs.Profile.sample ~force:true p ~tick:12 (fun () -> []);
  check_int "force overrides cadence" 3 (Obs.Profile.samples p);
  let b = Obs.Profile.branch p in
  check_int "branch starts empty" 0 (Obs.Profile.samples b);
  Obs.Profile.add_section p "domains" (Obs.Json.List []);
  let j = Obs.Profile.to_json p in
  (match Obs.Profile.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "profile invalid: %s" e);
  check_true "section serialized"
    (match Obs.Json.member "sections" j with
    | Some s -> Obs.Json.member "domains" s <> None
    | None -> false);
  check_true "zero cadence rejected"
    (try
       ignore (Obs.Profile.create ~every:0 ~kind:"mc" ());
       false
     with Invalid_argument _ -> true)

let tiny_cfg =
  {
    Mc.Config.family = Mc.Config.Regular;
    n = 3;
    f = 0;
    byz = [];
    writes = 1;
    reads = 1;
    read_budget = 2;
    menu = [];
    oracle = Mc.Config.Family_default;
  }

let stats_tuple (s : Mc.Checker.stats) =
  ( s.Mc.Checker.states,
    s.Mc.Checker.transitions,
    s.Mc.Checker.terminals,
    s.Mc.Checker.revisits,
    s.Mc.Checker.sleep_skips,
    s.Mc.Checker.sym_skips,
    s.Mc.Checker.fp_collisions,
    s.Mc.Checker.max_depth_seen )

let test_mc_recorder () =
  let plain = Mc.Checker.search tiny_cfg in
  let rec_ = Obs.Profile.create ~every:100 ~kind:"mc" () in
  let profiled = Mc.Checker.search ~recorder:rec_ tiny_cfg in
  check_true "recording perturbs nothing"
    (stats_tuple plain.Mc.Checker.stats
    = stats_tuple profiled.Mc.Checker.stats);
  check_true "verdicts agree"
    (Mc.Checker.verdict_equal plain.Mc.Checker.verdict
       profiled.Mc.Checker.verdict);
  check_true "samples recorded" (Obs.Profile.samples rec_ > 0);
  (match Obs.Profile.validate (Obs.Profile.to_json rec_) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mc profile invalid: %s" e);
  (* Every sample carries the full stat set. *)
  let last = List.hd (List.rev (Obs.Profile.sample_jsons rec_)) in
  List.iter
    (fun k ->
      check_true ("sample field " ^ k) (Obs.Json.member k last <> None))
    [
      "tick"; "elapsed_s"; "states"; "transitions"; "depth"; "visited";
      "revisits"; "sleep_skips"; "sym_skips"; "fp_collisions"; "replays";
    ]

let test_mc_recorder_domains () =
  let rec_ = Obs.Profile.create ~every:100 ~kind:"mc" () in
  let swarm =
    Mc.Checker.search_parallel ~recorder:rec_ ~domains:2 tiny_cfg
  in
  let plain = Mc.Checker.search tiny_cfg in
  check_true "swarm verdict matches sequential"
    (Mc.Checker.verdict_equal swarm.Mc.Checker.verdict
       plain.Mc.Checker.verdict);
  let j = Obs.Profile.to_json rec_ in
  (match Obs.Profile.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "swarm profile invalid: %s" e);
  match Obs.Json.member "sections" j with
  | None -> Alcotest.fail "no sections"
  | Some sections -> (
    match Obs.Json.member "domains" sections with
    | None -> Alcotest.fail "no domains section"
    | Some d ->
      let slices = Option.value ~default:[] (Obs.Json.to_list_opt d) in
      check_int "one summary per slice" 2 (List.length slices);
      List.iter
        (fun s ->
          List.iter
            (fun k ->
              check_true ("slice field " ^ k) (Obs.Json.member k s <> None))
            [ "slice"; "states"; "transitions"; "utilization"; "samples" ])
        slices)

let test_chaos_recorder () =
  let cfg = Chaos.Campaign.default_config ~family:Chaos.Campaign.Regular in
  let verdicts r =
    List.map
      (fun (t : Chaos.Campaign.trial) ->
        Chaos.Campaign.verdict_kind t.Chaos.Campaign.outcome.Chaos.Campaign.verdict)
      r.Chaos.Campaign.trials
  in
  let plain = Chaos.Campaign.run cfg ~seed:5 ~trials:3 in
  let rec_ = Obs.Profile.create ~every:1 ~kind:"chaos" () in
  let profiled = Chaos.Campaign.run ~recorder:rec_ cfg ~seed:5 ~trials:3 in
  check_true "recording perturbs no trial"
    (verdicts plain = verdicts profiled);
  check_int "one sample per trial" 3 (Obs.Profile.samples rec_);
  (match Obs.Profile.validate (Obs.Profile.to_json rec_) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chaos profile invalid: %s" e);
  (* Fanning out over domains must not change the sample timeline (modulo
     the injected clock, which defaults to a constant here). *)
  let rec2 = Obs.Profile.create ~every:1 ~kind:"chaos" () in
  let fanned =
    Chaos.Campaign.run ~recorder:rec2 ~domains:2 cfg ~seed:5 ~trials:3
  in
  check_true "domains change no outcome" (verdicts plain = verdicts fanned);
  check_true "sample timeline domain-independent"
    (Obs.Profile.sample_jsons rec_ = Obs.Profile.sample_jsons rec2)

let test_profile_write () =
  let p = Obs.Profile.create ~kind:"mc" () in
  Obs.Profile.sample p ~tick:1 (fun () -> [ ("states", Obs.Json.Int 1) ]);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "stabreg-profile-test"
  in
  let path = Obs.Profile.write ~dir ~name:"p1" p in
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Obs.Profile.validate (Obs.Json.parse_exn s) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "written profile invalid: %s" e

let tests =
  [
    case "span allocator: roots, children, orphans" test_span_allocator;
    case "event JSON carries span fields" test_event_span_json;
    case "causal tree of a post-corruption read"
      test_causal_tree_of_corrupted_read;
    case "trace file validates (and bad files don't)"
      test_trace_file_validates;
    case "same-seed traces are byte-identical" test_trace_byte_identical;
    case "tracing changes nothing" test_tracing_changes_nothing;
    case "chrome trace_event export" test_chrome_export;
    case "profile cadence and sections" test_profile_cadence;
    case "mc search flight recorder" test_mc_recorder;
    case "mc recorder across domains" test_mc_recorder_domains;
    case "chaos campaign flight recorder" test_chaos_recorder;
    case "profile write/reparse" test_profile_write;
  ]
