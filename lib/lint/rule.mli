(** Rule registry types.

    A rule is either an AST pass over one parsed implementation file or a
    tree-level pass over the full file list (used by the mli-coverage
    rule).  Rules declare which part of the tree they apply to via
    {!applies}; the driver consults it per file so fixture trees and the
    real repository are scoped the same way. *)

type scope =
  | Lib of string  (** a file under [lib/<name>/] *)
  | Bin  (** a file under [bin/] *)
  | Other

val classify : string -> scope
(** Classify a [/]-separated path relative to the scan root. *)

type ctx = {
  file : string;  (** display path of the file being checked *)
  scope : scope;
  add : Finding.t -> unit;
}

type kind =
  | Ast of (ctx -> Parsetree.structure -> unit)
      (** runs once per parsed [.ml] in scope *)
  | Tree of (root:string -> (string * scope) list -> Finding.t list)
      (** runs once per scan over every (display path, scope) pair;
          [root] is the filesystem directory the paths are relative to *)

type t = {
  id : string;  (** stable id, e.g. ["R1"] *)
  name : string;  (** kebab-case short name *)
  summary : string;  (** one-line description for the report catalog *)
  severity : Finding.severity;
  applies : scope -> bool;
  kind : kind;
}

val finding : ctx -> t -> loc:Location.t -> string -> unit
(** Record a finding for [t] at [loc] (start position). *)
