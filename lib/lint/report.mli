(** The versioned [stabreg/lint-report/v1] artifact and the committed
    baseline ([stabreg/lint-baseline/v1]).

    The report serializes a whole scan: the rule catalog, every
    unsuppressed finding (tagged with whether the committed baseline
    already carries it), and summary counters.  Rendering is canonical —
    findings sorted, no timestamps — so re-running the driver twice over
    the same tree produces byte-identical files.

    The baseline lists accepted findings by [(file, rule, line)].  CI
    fails only on findings outside the baseline, so the baseline can be
    burned down entry by entry without blocking unrelated work. *)

val schema_version : string

val baseline_schema_version : string

type entry = { file : string; rule : string; line : int }

type t = {
  paths : string list;  (** scanned subdirectories, e.g. [["lib"; "bin"]] *)
  files_scanned : int;
  suppressed : int;
  stale_baseline : int;
      (** baseline entries matching no current finding *)
  fresh : Finding.t list;  (** findings not covered by the baseline *)
  baselined : Finding.t list;
}

val make :
  paths:string list ->
  files_scanned:int ->
  suppressed:int ->
  baseline:entry list ->
  Finding.t list ->
  t
(** Partition a scan's findings against the baseline. *)

val to_json : t -> Obs.Json.t

val render : t -> string
(** Canonical pretty-printed JSON, trailing newline included. *)

val validate : Obs.Json.t -> (unit, string) result
(** Structural schema check of a lint report. *)

val baseline_of_findings : Finding.t list -> Obs.Json.t
(** Build a baseline artifact accepting exactly these findings (the
    finding message is carried as an informational [note]). *)

val render_baseline : Obs.Json.t -> string

val baseline_entries : Obs.Json.t -> (entry list, string) result
(** Parse and structurally validate a baseline artifact. *)

val validate_baseline : Obs.Json.t -> (unit, string) result

val validate_any : Obs.Json.t -> (unit, string) result
(** Dispatch on the [schema] member: accepts lint reports and lint
    baselines. *)
