(* A replicated configuration store on the MWMR atomic register.

     dune exec examples/config_store.exe

   Three operator consoles (multi-writer!) push configuration revisions to
   a store replicated over 9 servers; every console reads the same latest
   revision despite one Byzantine replica and a mid-run transient fault
   that corrupts every server.  This is the paper's headline use case:
   server-based storage that heals itself after the fault burst ends. *)

open Registers

let feed = [| "timeout=30"; "timeout=45"; "replicas=5"; "tls=on"; "tls=off" |]

let () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:7 ~params () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 5
    Byzantine.Behavior.equivocate;

  let m = 3 in
  let cfg = Mwmr.default_config ~m in
  let consoles =
    Array.init m (fun i ->
        Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:i
          ~client_id:(10 + i))
  in

  (* A transient fault at t=600 corrupts every server's state. *)
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int 600) ~prefix:"server.";

  let log fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "t=%-5d %s\n" (Sim.Vtime.to_int (Harness.Scenario.now scn)) s)
      fmt
  in
  Array.iteri
    (fun i console ->
      ignore
        (Sim.Fiber.spawn
           ~name:(Printf.sprintf "console%d" i)
           (fun () ->
             let rng = Harness.Scenario.split_rng scn in
             for round = 1 to 4 do
               (* Each console alternates: push a revision, then audit. *)
               let revision =
                 Printf.sprintf "%s #rev%d.%d"
                   feed.((i + round) mod Array.length feed)
                   i round
               in
               Mwmr.write console (Value.str revision);
               log "[console%d] pushed %S" i revision;
               Harness.Scenario.sleep scn (Sim.Rng.int_in rng 40 120);
               (match Mwmr.read console with
               | Some v -> log "[console%d] sees   %s" i (Value.to_string v)
               | None -> log "[console%d] read failed" i);
               Harness.Scenario.sleep scn (Sim.Rng.int_in rng 40 120)
             done)))
    consoles;
  Harness.Scenario.run scn;

  (* Post-run: all consoles agree on the final configuration. *)
  let finals = Array.make m None in
  Array.iteri
    (fun i console ->
      ignore
        (Sim.Fiber.spawn (fun () -> finals.(i) <- Mwmr.read console)))
    consoles;
  Harness.Scenario.run scn;
  print_endline "--- final audit ---";
  Array.iteri
    (fun i v ->
      Printf.printf "console%d final view: %s\n" i
        (match v with Some v -> Value.to_string v | None -> "-"))
    finals;
  let all_equal =
    Array.for_all
      (fun v ->
        match (v, finals.(0)) with
        | Some a, Some b -> Value.equal a b
        | _ -> false)
      finals
  in
  Printf.printf "all consoles agree: %b\n" all_equal
