open Util
open Chaos

(* --- strategies --- *)

let test_strategy_round_trip () =
  List.iter
    (fun s ->
      match Strategy.of_string (Strategy.to_string s) with
      | Ok s' ->
        check_true ("round-trip " ^ Strategy.to_string s) (Strategy.equal s s')
      | Error e -> Alcotest.fail e)
    [
      Strategy.Silent;
      Strategy.Garbage;
      Strategy.Equivocate;
      Strategy.Frozen;
      Strategy.Collude;
      Strategy.Flaky 0.3341;
      Strategy.Flaky (1.0 /. 3.0);
      Strategy.Flaky 0.0;
      Strategy.Flaky 1.0;
      Strategy.Delayed 40;
      Strategy.Delayed 0;
      Strategy.Crash 5;
      Strategy.Crash 0;
      Strategy.Crash_recover { down = 120; wipe = `Arbitrary };
      Strategy.Crash_recover { down = 0; wipe = `Reset };
      Strategy.Crash_recover { down = 1; wipe = `Keep };
    ];
  check_true "unknown name rejected"
    (Result.is_error (Strategy.of_string "nonsense"));
  check_true "bad probability rejected"
    (Result.is_error (Strategy.of_string "flaky:2.0"));
  check_true "bad wipe rejected"
    (Result.is_error (Strategy.of_string "crashrec:10:everything"));
  check_true "missing wipe rejected"
    (Result.is_error (Strategy.of_string "crashrec:10"))

(* Satellite: the %.17g float path and every other constructor, as a
   generated property rather than a hand-picked list. *)
let gen_strategy =
  QCheck.Gen.(
    let* tag = int_range 0 8 in
    match tag with
    | 0 -> return Strategy.Silent
    | 1 -> return Strategy.Garbage
    | 2 -> return Strategy.Equivocate
    | 3 -> return Strategy.Frozen
    | 4 -> return Strategy.Collude
    | 5 ->
      (* Edge probabilities included: 0 and 1 are legal and must
         round-trip through the %.17g printer exactly. *)
      let* p = oneof [ return 0.0; return 1.0; float_bound_inclusive 1.0 ] in
      return (Strategy.Flaky p)
    | 6 ->
      let* t = oneof [ return 0; int_range 0 10_000 ] in
      return (Strategy.Delayed t)
    | 7 ->
      let* k = oneof [ return 0; int_range 0 1_000 ] in
      return (Strategy.Crash k)
    | _ ->
      let* down = oneof [ return 0; int_range 0 10_000 ] in
      let* wipe = oneofl [ `Arbitrary; `Reset; `Keep ] in
      return (Strategy.Crash_recover { down; wipe }))

let prop_strategy_round_trip =
  QCheck.Test.make ~count:500
    ~name:"every strategy wire name round-trips exactly"
    (QCheck.make gen_strategy ~print:Strategy.to_string)
    (fun s ->
      match Strategy.of_string (Strategy.to_string s) with
      | Ok s' -> Strategy.equal s s'
      | Error e -> QCheck.Test.fail_report e)

(* --- schedules --- *)

let cfg = Campaign.default_config ~family:Campaign.Regular

let test_generate_deterministic () =
  let a = Campaign.generate cfg ~seed:99 in
  let b = Campaign.generate cfg ~seed:99 in
  check_true "same seed, same schedule" (Schedule.equal a b);
  let c = Campaign.generate cfg ~seed:100 in
  check_true "different seed, different schedule" (not (Schedule.equal a c));
  check_true "sorted by time"
    (List.for_all2
       (fun x y -> Schedule.time x <= Schedule.time y)
       a (List.tl a @ [ List.nth a (List.length a - 1) ]))

let test_schedule_json_round_trip () =
  let lossy_cfg = { cfg with Campaign.medium = Campaign.Lossy } in
  let sched = Campaign.generate lossy_cfg ~seed:4242 in
  check_true "windows generated under the lossy medium"
    (List.exists (function Schedule.Window _ -> true | _ -> false) sched);
  match Schedule.of_json (Schedule.to_json sched) with
  | Ok sched' ->
    check_true "schedule JSON round-trips exactly (floats included)"
      (Schedule.equal sched sched')
  | Error e -> Alcotest.fail e

let test_disturbance_points () =
  let sched =
    [
      Schedule.Inject { at = 100; prefix = "server." };
      Schedule.Window
        {
          at = 50;
          duration = 30;
          loss = 1.0;
          dup = 0.0;
          dir = Schedule.Both;
          server = None;
        };
      Schedule.Roam { at = 100; assign = [] };
    ]
  in
  check_true "window close included, duplicates merged"
    (Schedule.disturbance_points sched = [ 50; 80; 100 ])

let test_crash_events_round_trip () =
  let sched =
    Schedule.sort
      [
        Schedule.Crash { at = 40; server = 2; down_for = Some 120 };
        Schedule.Crash { at = 90; server = 0; down_for = None };
        Schedule.Inject { at = 10; prefix = "server." };
      ]
  in
  check_true "recovery instants are disturbance points"
    (Schedule.disturbance_points sched = [ 10; 40; 90; 160 ]);
  match Schedule.of_json (Schedule.to_json sched) with
  | Ok sched' ->
    check_true "crash events JSON round-trip" (Schedule.equal sched sched')
  | Error e -> Alcotest.fail e

(* --- crash-recovery bursts and the stabilization oracle --- *)

let test_recovery_run_and_artifact () =
  let cfg =
    {
      Recovery.default_config with
      Recovery.n = 6;
      bursts = 1;
      crashed = 1;
      down_for = 40;
      first_at = 60;
      gap = 400;
      writes = 20;
      reads = 24;
      gap_hi = 4;
    }
  in
  let r = Recovery.run cfg ~seed:21 in
  check_true "no stuck fibers" (r.Recovery.stuck = []);
  check_true "the burst stabilized" r.Recovery.converged;
  check_int "every write accounted for" cfg.Recovery.writes
    (r.Recovery.write_ops.Recovery.ok
    + r.Recovery.write_ops.Recovery.degraded
    + r.Recovery.write_ops.Recovery.timed_out);
  check_int "every read accounted for" cfg.Recovery.reads
    (r.Recovery.read_ops.Recovery.ok
    + r.Recovery.read_ops.Recovery.degraded
    + r.Recovery.read_ops.Recovery.timed_out);
  (match Recovery.of_json (Recovery.to_json r) with
  | Error e -> Alcotest.fail e
  | Ok r' -> check_true "report JSON round-trips" (Recovery.matches r r'));
  let replayed = Recovery.replay r in
  check_true "replay is bit-identical" (Recovery.matches r replayed)

(* --- trials --- *)

let test_run_trial_deterministic () =
  let sched = Campaign.generate cfg ~seed:7 in
  let a = Campaign.run_trial cfg ~seed:7 sched in
  let b = Campaign.run_trial cfg ~seed:7 sched in
  check_true "same verdict" (Campaign.same_verdict a.verdict b.verdict);
  check_int "same op count" a.Campaign.ops b.Campaign.ops;
  check_int "same duration" a.Campaign.duration b.Campaign.duration

let test_campaign_clean_under_bound () =
  (* Within t < n/8 every generated schedule must leave the register
     regular after each stabilizing write. *)
  let r = Campaign.run cfg ~seed:5 ~trials:3 in
  check_int "no violations under the bound" 0
    (List.length (Campaign.violations r));
  List.iter
    (fun (t : Campaign.trial) ->
      check_true "clean trials carry no repro" (t.repro = None))
    r.Campaign.trials

let test_campaign_atomic_lossy_clean () =
  let lossy_cfg =
    {
      (Campaign.default_config ~family:Campaign.Atomic) with
      Campaign.medium = Campaign.Lossy;
    }
  in
  let r = Campaign.run lossy_cfg ~seed:5 ~trials:2 in
  check_int "atomic over lossy links stays clean" 0
    (List.length (Campaign.violations r))

(* --- violations, shrinking, replay --- *)

let collude_cfg =
  {
    cfg with
    Campaign.initial =
      [
        (0, Strategy.Collude); (1, Strategy.Collude); (2, Strategy.Collude);
      ];
  }

let test_collusion_above_bound_violates_and_replays () =
  let r = Campaign.run collude_cfg ~seed:11 ~trials:1 in
  match Campaign.violations r with
  | [ t ] -> (
    check_true "regularity violated"
      (Campaign.verdict_kind t.outcome.Campaign.verdict = "regularity");
    match t.repro with
    | None -> Alcotest.fail "violating trial must carry a repro"
    | Some repro ->
      (* The violation lives in the config (initial colluders), so the
         minimal schedule is empty. *)
      check_int "shrunk to the empty schedule" 0
        (List.length repro.Campaign.schedule);
      (* The artifact round-trips through JSON and replays to the same
         verdict. *)
      let json =
        Obs.Json.parse_exn
          (Obs.Json.to_string (Campaign.repro_to_json repro))
      in
      (match Campaign.repro_of_json json with
      | Error e -> Alcotest.fail e
      | Ok repro' ->
        check_true "repro JSON round-trips"
          (Schedule.equal repro.Campaign.schedule repro'.Campaign.schedule
          && repro.Campaign.seed = repro'.Campaign.seed);
        let replayed = Campaign.replay repro' in
        check_true "replay reproduces the verdict"
          (Campaign.same_verdict replayed.Campaign.verdict
             repro.Campaign.verdict)))
  | other -> Alcotest.failf "expected 1 violation, got %d" (List.length other)

let test_shrink_keeps_the_essential_roam () =
  (* A hand-crafted schedule: noise injections around one mobile sweep
     that installs a colluding quorum (3 = 2t+1 at n=9) on the
     lowest-numbered slots — the reader's quorum scan walks slots in
     order, so only there are the colluders seen before the honest
     majority.  Shrinking must strip the noise but keep the roam, and
     keep all three colluders (dropping any one dissolves the quorum). *)
  let colluders =
    [
      (0, Strategy.Collude); (1, Strategy.Collude); (2, Strategy.Collude);
    ]
  in
  let sched =
    Schedule.sort
      [
        Schedule.Inject { at = 200; prefix = "server." };
        Schedule.Inject { at = 400; prefix = "client." };
        Schedule.Roam { at = 600; assign = colluders };
        Schedule.Inject { at = 800; prefix = "link." };
        Schedule.Inject { at = 1000; prefix = "server.2" };
      ]
  in
  let outcome = Campaign.run_trial cfg ~seed:31 sched in
  check_true "colluding roam violates regularity"
    (Campaign.verdict_kind outcome.Campaign.verdict = "regularity");
  let shrunk, runs =
    Campaign.shrink cfg ~seed:31 sched outcome.Campaign.verdict
  in
  check_true "shrinking re-executed the trial" (runs > 0);
  (match shrunk with
  | [ Schedule.Roam { assign; _ } ] ->
    check_int "all three colluders essential" 3 (List.length assign)
  | _ ->
    Alcotest.failf "expected exactly the roam to survive, got %d event(s)"
      (List.length shrunk));
  (* The minimal schedule still reproduces. *)
  let replayed = Campaign.run_trial cfg ~seed:31 shrunk in
  check_true "minimal schedule reproduces"
    (Campaign.same_verdict replayed.Campaign.verdict outcome.Campaign.verdict)

(* --- mobile adversary bookkeeping --- *)

let test_roam_bookkeeping () =
  let scn = async_scenario ~n:17 ~f:2 () in
  let adv = scn.Harness.Scenario.adversary in
  Byzantine.Adversary.roam adv
    [ (1, Byzantine.Behavior.silent); (4, Byzantine.Behavior.garbage) ];
  check_true "both compromised" (Byzantine.Adversary.byzantine_ids adv = [ 1; 4 ]);
  Byzantine.Adversary.roam adv [ (4, Byzantine.Behavior.silent); (6, Byzantine.Behavior.silent) ];
  check_true "set moved" (Byzantine.Adversary.byzantine_ids adv = [ 4; 6 ]);
  check_true "vacated slot correct again"
    (Registers.Net.is_correct scn.Harness.Scenario.net 1);
  Byzantine.Adversary.roam adv [];
  check_true "adversary retired" (Byzantine.Adversary.byzantine_ids adv = []);
  check_true "all correct"
    (List.for_all
       (Registers.Net.is_correct scn.Harness.Scenario.net)
       (List.init 17 Fun.id))

let tests =
  [
    case "strategy wire names round-trip" test_strategy_round_trip;
    qcheck prop_strategy_round_trip;
    case "generation is seed-deterministic" test_generate_deterministic;
    case "schedule JSON round-trips" test_schedule_json_round_trip;
    case "crash events round-trip" test_crash_events_round_trip;
    case "crash-recovery burst stabilizes and replays"
      test_recovery_run_and_artifact;
    case "disturbance points" test_disturbance_points;
    case "trials are seed-deterministic" test_run_trial_deterministic;
    case "campaign clean under the bound" test_campaign_clean_under_bound;
    case "atomic campaign over lossy links" test_campaign_atomic_lossy_clean;
    case "collusion above the bound: violate, shrink, replay"
      test_collusion_above_bound_violates_and_replays;
    case "shrinking keeps the essential roam" test_shrink_keeps_the_essential_roam;
    case "mobile roam bookkeeping" test_roam_bookkeeping;
  ]
