test/test_net.ml: Alcotest Array List Messages Net Params Printf Registers Server Sim Util Value
