(* Deterministic fan-out over OCaml 5 domains.

   The contract that matters here is not speed but *reproducibility*:
   callers (the MC swarm, chaos campaigns) must observe results that are
   bit-identical no matter how the runtime schedules domains.  So the
   layer is deliberately minimal: a fixed round-robin assignment of
   items to workers decided before any domain starts, results written
   to distinct slots of a preallocated array (plain writes to distinct
   indices from different domains are race-free, and [Domain.join]
   publishes them to the caller), and exceptions re-raised in item
   order.  There is no work stealing and no early cancellation — both
   would make the observable outcome depend on timing. *)

let available_domains () =
  max 1 (Domain.recommended_domain_count () - 1)

exception Worker_failure of int * exn

let map ~domains f items =
  if domains < 1 then
    invalid_arg "Parallel.Pool.map: domains must be >= 1";
  let items = Array.of_list items in
  let n = Array.length items in
  let k = min domains (max 1 n) in
  if k = 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let run_shard shard =
      let i = ref shard in
      while !i < n do
        (results.(!i) <-
          (match f items.(!i) with
          | v -> Some (Ok v)
          | exception e -> Some (Error e)));
        i := !i + k
      done
    in
    (* Workers take shards 1..k-1; the caller's own domain runs shard 0,
       so item 0 always executes on the calling domain (callers rely on
       this: chaos campaigns attach observability sinks to trial 0,
       which must not migrate to a worker domain). *)
    let workers = List.init (k - 1) (fun w -> Domain.spawn (fun () -> run_shard (w + 1))) in
    run_shard 0;
    List.iter Domain.join workers;
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some (Ok v) -> v
           | Some (Error e) -> raise (Worker_failure (i, e))
           | None -> assert false)
         results)
  end
