(* A deterministic cross-reader new/old inversion against the §5.1 SWMR
   composition.

   The writer updates the per-reader copies sequentially; a scripted
   schedule keeps the second copy's update in flight while reader 0
   already returned the new value from the first copy — reader 1, reading
   strictly later, still returns the old value.  This is legal for a
   regular register but violates SWMR atomicity: the §5.1 composition
   gives per-reader atomicity only, and the classical reader write-back
   (implemented in {!Registers.Swmr_wb}) is what removes the cross-reader
   inversion. *)

type outcome = {
  read_r0 : Registers.Value.t option;  (** earlier read, reader 0 *)
  read_r1 : Registers.Value.t option;  (** later read, reader 1 *)
  inversion : bool;  (** r0 saw value 2, r1 then saw value 1 *)
}

let scripted = Script.scripted

let far = Script.far

(* Link-creation order: writer port (9 + 9 links), then r0's, then r1's,
   then (write-back variant only) the exchange clients'. *)
let build_link_delay () =
  let call = ref 0 in
  fun _rng ->
    incr call;
    let c = !call in
    if c <= 9 then
      (* writer -> server: write#1 copy0 (WRITE + NEW_HELP), write#1 copy1
         (WRITE + NEW_HELP), write#2 copy0 (WRITE), write#2 copy1 (WRITE,
         held in flight). *)
      scripted [ 1; 1; 1; 1; 2; far ] 1
    else scripted [] 1

let run kind =
  let params = Registers.Params.create_exn ~n:9 ~f:1 ~mode:Registers.Params.Async () in
  let rng = Sim.Rng.create 1 in
  let engine = Sim.Engine.create ~rng () in
  let net =
    Registers.Net.create ~engine ~params ~link_delay:(build_link_delay ()) ()
  in
  let servers = Array.init 9 (fun id -> Registers.Server.create ~id) in
  Array.iter (Registers.Net.install_honest_server net) servers;
  let sleep d = Sim.Fiber.suspend (fun k -> Sim.Engine.schedule engine ~delay:d k) in
  let read_r0 = ref None and read_r1 = ref None in
  let v1 = Registers.Value.int 1 and v2 = Registers.Value.int 2 in
  (match kind with
  | `Paper ->
    let w = Registers.Swmr.writer ~net ~client_id:100 ~base_inst:0 ~readers:2 () in
    let r0 = Registers.Swmr.reader ~net ~client_id:200 ~base_inst:0 ~reader_index:0 () in
    let r1 = Registers.Swmr.reader ~net ~client_id:201 ~base_inst:0 ~reader_index:1 () in
    ignore
      (Sim.Fiber.spawn ~name:"writer" (fun () ->
           Registers.Swmr.write w v1;
           Registers.Swmr.write w v2));
    ignore
      (Sim.Fiber.spawn ~name:"readers" (fun () ->
           sleep 60;
           read_r0 := Registers.Swmr.read r0;
           read_r1 := Registers.Swmr.read r1))
  | `Write_back ->
    let w =
      Registers.Swmr_wb.writer ~net ~client_id:100 ~base_inst:0 ~readers:2 ()
    in
    let r0 =
      Registers.Swmr_wb.reader ~net ~client_id:200 ~base_inst:0
        ~reader_index:0 ()
    in
    let r1 =
      Registers.Swmr_wb.reader ~net ~client_id:201 ~base_inst:0
        ~reader_index:1 ()
    in
    ignore
      (Sim.Fiber.spawn ~name:"writer" (fun () ->
           Registers.Swmr_wb.write w v1;
           Registers.Swmr_wb.write w v2));
    ignore
      (Sim.Fiber.spawn ~name:"readers" (fun () ->
           sleep 60;
           read_r0 := Registers.Swmr_wb.read r0;
           read_r1 := Registers.Swmr_wb.read r1)));
  Sim.Engine.run ~until:(Sim.Vtime.of_int (far / 2)) engine;
  let inversion =
    match (!read_r0, !read_r1) with
    | Some a, Some b ->
      Registers.Value.equal a v2 && Registers.Value.equal b v1
    | _ -> false
  in
  { read_r0 = !read_r0; read_r1 = !read_r1; inversion }
