lib/registers/ss_transport.ml: Lazy Queue Sim
