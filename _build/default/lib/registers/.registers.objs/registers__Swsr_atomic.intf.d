lib/registers/swsr_atomic.mli: Net Seqnum Sim Value
