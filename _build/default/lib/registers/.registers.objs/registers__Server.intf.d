lib/registers/server.mli: Messages Sim
