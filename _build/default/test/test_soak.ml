(* Soak tests: long runs that catch state accumulation, counter drift and
   rare-interleaving bugs that short unit tests miss. *)

open Util
open Registers

let test_swsr_long_run_with_repeated_faults () =
  let scn = async_scenario ~seed:31 ~n:17 ~f:2 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 3
    Byzantine.Behavior.garbage;
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 9
    Byzantine.Behavior.equivocate;
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
  (* Server-state faults at three instants along the run. *)
  List.iter
    (fun at ->
      Sim.Fault.schedule scn.Harness.Scenario.fault
        ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int at)
        ~prefix:"server.")
    [ 5_000; 15_000; 25_000 ];
  let writes = 1500 and reads = 1200 in
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_atomic.write w)
            ~count:writes ~gap:(Harness.Workload.gap 0 20) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_atomic.read r)
            ~count:reads ~gap:(Harness.Workload.gap 0 25) () );
    ];
  let h = scn.Harness.Scenario.history in
  check_int "all writes done" writes (List.length (Oracles.History.writes h));
  check_int "all reads done" reads (Harness.Metrics.ok_reads h);
  (* After the last fault's first subsequent write, everything is atomic. *)
  let cutoff =
    Oracles.History.writes h
    |> List.filter (fun (o : Oracles.History.op) ->
           Sim.Vtime.to_int o.inv >= 25_000)
    |> function
    | o :: _ -> o.Oracles.History.resp
    | [] -> Alcotest.fail "no write after the last fault"
  in
  let report = Oracles.Atomicity.Sw.check ~cutoff h in
  if not (Oracles.Atomicity.Sw.is_clean report) then
    Alcotest.failf "%a" Oracles.Atomicity.Sw.pp report;
  (* No residue: the reader's mailbox must not have grown without bound. *)
  check_true "reader mailbox bounded"
    (Sim.Mailbox.length (Swsr_atomic.reader_port r).Net.mailbox < 64)

let test_wraparound_soak () =
  (* Thousands of writes through a 31-value counter: dozens of full wraps,
     reads stay exact throughout. *)
  let scn = async_scenario ~seed:32 () in
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 ~modulus:31 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 ~modulus:31 () in
  let bad = ref 0 in
  run_fibers scn
    [
      ( "wr",
        fun () ->
          for i = 1 to 2000 do
            Swsr_atomic.write w (int_value i);
            match Swsr_atomic.read r with
            | Some v when Value.equal v (int_value i) -> ()
            | Some _ | None -> incr bad
          done );
    ];
  check_int "every read exact through ~65 wraps" 0 !bad

let test_transport_soak_with_corruptions () =
  let rng = Sim.Rng.create 33 in
  let engine = Sim.Engine.create ~rng () in
  let received = ref 0 and last = ref 0 and reordered = ref 0 in
  let tr =
    Ss_transport.create ~engine ~rng:(Sim.Rng.split rng)
      ~delay:(Sim.Link.uniform (Sim.Rng.split rng) ~lo:1 ~hi:10)
      ~loss:0.3 ~dup:0.2 ~retrans:25 ~name:"soak"
      ~deliver:(fun m ->
        incr received;
        if m < !last then incr reordered;
        last := max !last m)
      ()
  in
  let corrupt_rng = Sim.Rng.create 99 in
  for batch = 0 to 4 do
    for i = 1 to 400 do
      Ss_transport.send tr ((batch * 400) + i)
    done;
    Sim.Engine.run engine;
    (* transient fault between batches *)
    if batch < 4 then Ss_transport.corrupt tr corrupt_rng
  done;
  Sim.Engine.run engine;
  (* Bounded anomalies per corruption; overwhelmingly exactly-once. *)
  check_true "nearly all delivered"
    (!received >= 2000 - (4 * 3) && !received <= 2000 + (4 * 3));
  check_true "bounded reordering" (!reordered <= 4 * 3)

let test_mwmr_soak () =
  let scn = async_scenario ~seed:34 () in
  let m = 4 in
  let cfg = Mwmr.default_config ~m in
  let procs =
    Array.init m (fun i ->
        Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:i
          ~client_id:(300 + i))
  in
  run_fibers scn
    (Array.to_list
       (Array.mapi
          (fun i p ->
            ( Printf.sprintf "p%d" i,
              fun () ->
                Harness.Workload.mwmr_job scn
                  ~proc:(Printf.sprintf "p%d" i)
                  ~process:p ~ops:60 ~write_ratio:0.4
                  ~gap:(Harness.Workload.gap 0 30) () ))
          procs));
  let report =
    Oracles.Atomicity.Mw.check ~tie:cfg.Mwmr.tie scn.Harness.Scenario.history
  in
  if not (Oracles.Atomicity.Mw.is_clean report) then
    Alcotest.failf "%a" Oracles.Atomicity.Mw.pp report;
  check_int "no epochs needed at the practical bound" 0
    (Array.fold_left (fun a p -> a + Mwmr.epochs_opened p) 0 procs)

let test_engine_volume () =
  (* Raw engine throughput sanity: a million events, timers nested. *)
  let engine = Sim.Engine.create ~rng:(Sim.Rng.create 35) () in
  let count = ref 0 in
  let rec tick n =
    if n > 0 then
      Sim.Engine.schedule engine ~delay:1 (fun () ->
          incr count;
          tick (n - 1))
  in
  for _ = 1 to 100 do
    tick 10_000
  done;
  Sim.Engine.run engine;
  check_int "all events fired" 1_000_000 !count

let tests =
  [
    case "SWSR long run, repeated faults" test_swsr_long_run_with_repeated_faults;
    case "2000 writes through a 31-modulus counter" test_wraparound_soak;
    case "transport soak with corruptions" test_transport_soak_with_corruptions;
    case "MWMR soak" test_mwmr_soak;
    case "engine: 1M events" test_engine_volume;
  ]
