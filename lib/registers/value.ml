type t = Bot | Int of int | Str of string | Stamped of stamped

and stamped = { data : t; epoch : Epoch.t; seq : int }

let rec equal v1 v2 =
  match (v1, v2) with
  | Bot, Bot -> true
  | Int a, Int b -> a = b
  | Str a, Str b -> String.equal a b
  | Stamped a, Stamped b ->
    a.seq = b.seq && Epoch.equal a.epoch b.epoch && equal a.data b.data
  | (Bot | Int _ | Str _ | Stamped _), _ -> false

(* Total structural order: Bot < Int < Str < Stamped, then componentwise.
   Typed all the way down — no polymorphic compare on protocol values. *)
let rec compare v1 v2 =
  match (v1, v2) with
  | Bot, Bot -> 0
  | Bot, _ -> -1
  | _, Bot -> 1
  | Int a, Int b -> Int.compare a b
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str a, Str b -> String.compare a b
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Stamped a, Stamped b -> (
    match compare a.data b.data with
    | 0 -> (
      match Epoch.compare_structural a.epoch b.epoch with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
    | c -> c)

let bot = Bot

let int i = Int i

let str s = Str s

let stamped ~data ~epoch ~seq = Stamped { data; epoch; seq }

let rec wire_bytes = function
  | Bot -> 1
  | Int _ -> 9
  | Str s -> 1 + String.length s
  | Stamped { data; _ } -> 1 + wire_bytes data + 16 + 8

let arbitrary rng =
  if Sim.Rng.bool rng then Int (Sim.Rng.int rng 1_000_000)
  else Str (Printf.sprintf "junk-%d" (Sim.Rng.int rng 1_000_000))

let rec pp ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Int i -> Format.fprintf ppf "%d" i
  | Str s -> Format.fprintf ppf "%S" s
  | Stamped { data; epoch; seq } ->
    Format.fprintf ppf "<%a @@ %a/%d>" pp data Epoch.pp epoch seq

let to_string v = Format.asprintf "%a" pp v
