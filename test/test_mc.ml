open Util

(* lib/mc: bounded model checker over the register protocols. *)

let tiny_cfg =
  {
    Mc.Config.family = Mc.Config.Regular;
    n = 3;
    f = 0;
    byz = [];
    writes = 1;
    reads = 1;
    read_budget = 2;
    menu = [];
    oracle = Mc.Config.Family_default;
  }

(* Declared fault bound t=1 but two silent Byzantine servers: the n-f ack
   quorum is unreachable, so every execution deadlocks the clients. *)
let overbound_cfg =
  {
    tiny_cfg with
    Mc.Config.n = 9;
    f = 1;
    byz = [ (0, Mc.Config.Silent); (1, Mc.Config.Silent) ];
    read_budget = 8;
  }

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_json path =
  match Obs.Json.parse (read_file path) with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: parse error: %s" path e

(* The committed example artifacts, copied into the build tree by the
   test stanza's deps. *)
let examples = "../examples/mc"

(* --- exhaustive verification of a tiny in-bound configuration ------- *)

let test_tiny_exhaustive_clean () =
  let o = Mc.Checker.search tiny_cfg in
  check_true "clean" (o.Mc.Checker.verdict = Mc.Checker.Clean);
  check_true "exhaustive (no budget hit)" o.Mc.Checker.exhaustive;
  check_true "explored something" (o.Mc.Checker.stats.Mc.Checker.states > 0)

(* Sleep sets + symmetry must not change the verdict, only the state
   count: re-search without any reduction and compare. *)
let test_reduction_soundness_cross_check () =
  let reduced = Mc.Checker.search ~reduction:Mc.Checker.Sleep_sets tiny_cfg in
  let full = Mc.Checker.search ~reduction:Mc.Checker.No_reduction tiny_cfg in
  check_true "both exhaustive"
    (reduced.Mc.Checker.exhaustive && full.Mc.Checker.exhaustive);
  check_true "same verdict"
    (Mc.Checker.same_verdict reduced.Mc.Checker.verdict
       full.Mc.Checker.verdict);
  (* No state-count inequality: sleep-set subsumption may re-expand a
     state the plain visited set would prune (different sleep sets), so
     only the verdicts are comparable. *)
  check_true "reduction skipped something"
    (reduced.Mc.Checker.stats.Mc.Checker.sleep_skips
     + reduced.Mc.Checker.stats.Mc.Checker.sym_skips
    > 0)

(* A shuffled exploration order covers the same reduced space: identical
   exhaustive verdict, and the same seed gives the same run twice. *)
let test_order_seed_deterministic () =
  let a = Mc.Checker.search ~seed:5 tiny_cfg in
  let b = Mc.Checker.search ~seed:5 tiny_cfg in
  check_true "seeded run is exhaustive" a.Mc.Checker.exhaustive;
  check_true "seeded verdict matches default order"
    (Mc.Checker.same_verdict a.Mc.Checker.verdict
       (Mc.Checker.search tiny_cfg).Mc.Checker.verdict);
  check_int "same seed, same exploration"
    a.Mc.Checker.stats.Mc.Checker.states
    b.Mc.Checker.stats.Mc.Checker.states

(* --- the negative run: violation found, shrunk, replayed ------------ *)

let test_overbound_stuck_found_and_replayable () =
  let r = Mc.Checker.check overbound_cfg in
  (match r.Mc.Checker.outcome.Mc.Checker.verdict with
  | Mc.Checker.Violation { kind = "stuck"; _ } -> ()
  | v -> Alcotest.failf "expected stuck, got %s" (Mc.Checker.verdict_kind v));
  match r.Mc.Checker.cex with
  | None -> Alcotest.fail "violation produced no counterexample"
  | Some cex -> (
    check_true "shrinker ran" (r.Mc.Checker.shrink_runs > 0);
    match Mc.Checker.replay cex with
    | Ok v ->
      check_true "replay reproduces the verdict"
        (Mc.Checker.verdict_equal v cex.Mc.Checker.verdict)
    | Error e -> Alcotest.failf "replay failed: %s" e)

(* The target filter skips violations of other kinds instead of stopping
   on them. *)
let test_target_filter_skips_other_kinds () =
  let budgets = { Mc.Checker.max_states = 2_000; max_depth = 10_000 } in
  let o = Mc.Checker.search ~budgets ~target:"inversion" overbound_cfg in
  check_true "stuck terminals do not end the hunt"
    (o.Mc.Checker.verdict = Mc.Checker.Clean);
  check_true "they are counted instead"
    (o.Mc.Checker.stats.Mc.Checker.off_target > 0)

(* --- cex artifacts: JSON round trip and the committed examples ------ *)

let test_cex_json_round_trip () =
  let r = Mc.Checker.check overbound_cfg in
  let cex =
    match r.Mc.Checker.cex with
    | Some c -> c
    | None -> Alcotest.fail "no counterexample"
  in
  match Mc.Checker.cex_of_json (Mc.Checker.cex_to_json cex) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok c ->
    check_true "trace survives"
      (List.for_all2 Mc.Sys.move_equal c.Mc.Checker.trace
         cex.Mc.Checker.trace);
    check_true "verdict survives"
      (Mc.Checker.verdict_equal c.Mc.Checker.verdict cex.Mc.Checker.verdict);
    check_true "digest survives"
      (String.equal c.Mc.Checker.digest cex.Mc.Checker.digest)

let replay_committed name () =
  let path = Filename.concat examples name in
  match Mc.Checker.cex_of_json (parse_json path) with
  | Error e -> Alcotest.failf "%s: %s" path e
  | Ok cex -> (
    match Mc.Checker.replay cex with
    | Ok v ->
      check_true "replay reproduces the recorded verdict bit-for-bit"
        (Mc.Checker.verdict_equal v cex.Mc.Checker.verdict)
    | Error e -> Alcotest.failf "%s: replay failed: %s" path e)

(* --- guided witness schedules --------------------------------------- *)

(* The committed witness drives the regular protocol (judged against the
   SW-atomicity oracle) into the paper's Fig. 1 new/old inversion: a
   second write lands on 3 of 6 servers, one read quorum sees all three
   fresh copies, the next read quorum sees only two. *)
let test_guided_witness_finds_inversion () =
  let path = Filename.concat examples "inversion-witness.json" in
  let cfg, schedule =
    match Mc.Checker.guide_of_json (parse_json path) with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" path e
  in
  let r = Mc.Checker.guided ~shrink_violations:false cfg schedule in
  match r.Mc.Checker.outcome.Mc.Checker.verdict with
  | Mc.Checker.Violation { kind = "inversion"; _ } -> ()
  | v ->
    Alcotest.failf "expected inversion, got %s" (Mc.Checker.verdict_kind v)

let tests =
  [
    case "tiny config verified exhaustively" test_tiny_exhaustive_clean;
    case "reduction soundness cross-check" test_reduction_soundness_cross_check;
    case "seeded order is sound and deterministic"
      test_order_seed_deterministic;
    case "over-bound config: stuck found, shrunk, replayed"
      test_overbound_stuck_found_and_replayable;
    case "target filter skips other kinds" test_target_filter_skips_other_kinds;
    case "cex JSON round trip" test_cex_json_round_trip;
    case "committed stuck artifact replays"
      (replay_committed "mc-regular-stuck.json");
    case "committed inversion artifact replays"
      (replay_committed "mc-regular-inversion.json");
    case "guided witness finds the inversion"
      test_guided_witness_finds_inversion;
  ]
