(* E10 — Mobile Byzantine faults (footnote 1): the compromised server moves
   between operations; the released machine resumes the honest automaton
   over arbitrary state.  The register re-establishes correctness after
   every move. *)

open Registers

let run_one ~seed ~moves =
  let params = Common.async_params ~n:9 ~f:1 in
  let scn = Common.scenario ~seed ~params () in
  let adv = scn.Harness.Scenario.adversary in
  Byzantine.Adversary.compromise adv 0 Byzantine.Behavior.garbage;
  let w, r = Common.atomic_pair scn in
  let correct = ref 0 and total = ref 0 in
  Common.run_jobs scn
    [
      ( "wr",
        fun () ->
          for i = 1 to moves do
            Swsr_atomic.write w (Value.int i);
            incr total;
            (match Swsr_atomic.read r with
            | Some v when Value.equal v (Value.int i) -> incr correct
            | Some _ | None -> ());
            Byzantine.Adversary.move adv ~from:((i - 1) mod 9) ~to_:(i mod 9)
              Byzantine.Behavior.garbage
          done );
    ];
  Common.observe_scn scn;
  (!correct, !total)

let run ~seed =
  Harness.Report.section "E10: mobile Byzantine faults (footnote 1)";
  let rows =
    List.map
      (fun moves ->
        let correct = ref 0 and total = ref 0 in
        let seeds = 5 in
        for s = 0 to seeds - 1 do
          let c, t = run_one ~seed:(seed + s) ~moves in
          correct := !correct + c;
          total := !total + t
        done;
        [ string_of_int moves; Harness.Report.pct !correct !total ])
      [ 9; 18; 36 ]
  in
  Harness.Report.table
    ~title:
      "fault moves to the next server after every write+read; released\n\
       servers resume over arbitrary state"
    ~header:[ "moves"; "reads returning the just-written value" ]
    rows;
  print_endline
    "  Shape: 100% — each write re-populates n-2t correct servers, so\n\
    \  mobility between operations never breaks the register."
