test/test_compositions.ml: Alcotest Array Byzantine Harness Kv List Mwmr Net Oracles Params Printf Registers Swmr Swmr_wb Swsr_atomic Util
