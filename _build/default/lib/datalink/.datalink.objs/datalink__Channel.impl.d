lib/datalink/channel.ml: List Sim
