(** Polymorphic binary min-heap, used as the simulator's event queue.

    The heap itself is {e not} stable: elements that compare equal pop in
    unspecified order.  Callers that need FIFO behaviour among equal keys
    must disambiguate inside [cmp] — {!Engine} does this by tagging every
    event with a monotonically increasing sequence number, which is what
    makes same-instant events fire in exact scheduling order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** A fresh empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val take : 'a t -> ('a -> bool) -> 'a option
(** [take t pred] removes and returns the first element (in unspecified
    internal order) satisfying [pred], or [None] if none does.  O(n) scan
    plus O(log n) repair; used by the model checker to fire a chosen event
    out of heap order. *)

val clear : 'a t -> unit

val iter_unordered : 'a t -> ('a -> unit) -> unit
(** Visit every element in unspecified order (inspection only). *)
