bin/exp_e9.ml: Common Harness List Mwmr Registers Swmr Swsr_atomic Swsr_regular Value
