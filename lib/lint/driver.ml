type file_result = { findings : Finding.t list; suppressed : int }

let parse_rule_id = "PARSE"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn ->
    let line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum in
    let msg =
      match exn with
      | Syntaxerr.Error _ -> "syntax error"
      | e -> Printexc.to_string e
    in
    Error (line, msg)

let lint_source ~rules ~scope ~file source =
  match parse_implementation ~file source with
  | Error (line, msg) ->
    {
      findings =
        [
          Finding.v ~file ~line:(max line 1) ~col:0 ~rule:parse_rule_id
            ~severity:Finding.Error
            (Printf.sprintf "file does not parse: %s" msg);
        ];
      suppressed = 0;
    }
  | Ok ast ->
    let acc = ref [] in
    let ctx = { Rule.file; scope; add = (fun f -> acc := f :: !acc) } in
    List.iter
      (fun (r : Rule.t) ->
        match r.kind with
        | Rule.Ast check when r.applies scope -> check ctx ast
        | Rule.Ast _ | Rule.Tree _ -> ())
      rules;
    let spans = Suppress.collect ~source ast in
    let findings, suppressed =
      Suppress.filter spans (List.sort_uniq Finding.compare !acc)
    in
    { findings; suppressed }

let lint_file ~rules ?scope ?display path =
  let display = Option.value display ~default:path in
  let scope =
    match scope with Some s -> s | None -> Rule.classify display
  in
  lint_source ~rules ~scope ~file:display (read_file path)

(* --- tree walk ------------------------------------------------------- *)

let skip_dir name =
  String.length name = 0
  || name.[0] = '.'
  || name.[0] = '_'
  || String.equal name "lint_fixtures"

let rec walk fs_dir rel acc =
  let entries = Sys.readdir fs_dir in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      let fs = Filename.concat fs_dir name in
      let rel = if String.equal rel "" then name else rel ^ "/" ^ name in
      if Sys.is_directory fs then
        if skip_dir name then acc else walk fs rel acc
      else if Filename.check_suffix name ".ml" then (rel, fs) :: acc
      else acc)
    acc entries

type scan_result = {
  files_scanned : int;
  findings : Finding.t list;
  suppressed : int;
}

let scan ?(rules = Rules.all) ~root ~paths () =
  let files =
    List.fold_left
      (fun acc p ->
        let fs = Filename.concat root p in
        if Sys.file_exists fs && Sys.is_directory fs then walk fs p acc
        else acc)
      [] paths
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let per_file =
    List.map
      (fun (rel, fs) ->
        let scope = Rule.classify rel in
        lint_file ~rules ~scope ~display:rel fs)
      files
  in
  let tree_findings =
    let classified = List.map (fun (rel, _) -> (rel, Rule.classify rel)) files in
    List.concat_map
      (fun (r : Rule.t) ->
        match r.kind with
        | Rule.Tree check -> check ~root classified
        | Rule.Ast _ -> [])
      rules
  in
  {
    files_scanned = List.length files;
    findings =
      List.sort Finding.compare
        (tree_findings
        @ List.concat_map (fun (r : file_result) -> r.findings) per_file);
    suppressed =
      List.fold_left
        (fun n (r : file_result) -> n + r.suppressed)
        0 per_file;
  }
