(** Protocol messages (Figs. 2, 3 and 5).

    A {!cell} is the [(wsn, value)] pair stored by servers; the regular
    register of Fig. 2 always uses [sn = 0], so cell equality degenerates to
    value equality there.  [helping = None] is the paper's [⊥].

    Envelopes add the communication-substrate fields: the register-instance
    id [inst] (the SWMR/MWMR compositions multiplex many register instances
    over the same servers, each with its own server variables — §5), and
    the data-link round tag [round] that matches acknowledgments to the
    broadcast they answer.  Per the remark in §3.1, the register algorithms
    themselves need no sequence numbers on messages: the round tag belongs
    to the ss-broadcast/data-link layer (it is the generalized alternating
    bit of footnote 3) and is corruptible by transient faults like any
    other link state. *)

type cell = { sn : Seqnum.t; v : Value.t }

val cell_equal : cell -> cell -> bool

val bot_cell : cell
(** [{sn = 0; v = Bot}] — the conventional content of an unwritten cell. *)

type help = cell option
(** [None] is the paper's [⊥]. *)

val help_equal : help -> help -> bool

type to_server =
  | Write of cell  (** WRITE(v) / WRITE(wsn, v) *)
  | New_help of cell  (** NEW_HELP_VAL(v) / NEW_HELP_VAL(wsn, v) *)
  | Read of bool  (** READ(new_read) *)

type to_client =
  | Ack_write of help  (** ACK_WRITE(helping_val) *)
  | Ack_read of cell * help  (** ACK_READ(last_val, helping_val) *)

type server_envelope = {
  round : int;
  client : int;
  inst : int;
  body : to_server;
  span : Obs.Trace_ctx.span;
}
(** [span] is pure observability metadata: the causal span of the
    broadcast round that carries this message.  It takes part in no
    protocol decision, is excluded from model-checker fingerprints, and
    does not count toward the wire-byte estimate. *)

type client_envelope = {
  round : int;
  server : int;
  body : to_client;
  span : Obs.Trace_ctx.span;
}

val class_of_to_server : to_server -> Obs.Event.msg_class

val class_of_to_client : to_client -> Obs.Event.msg_class

val server_envelope_bytes : server_envelope -> int
(** Serialized-size estimate (header fields at 4 bytes each, 1-byte
    constructor tags, {!Value.wire_bytes} payloads) for traffic
    accounting. *)

val client_envelope_bytes : client_envelope -> int

val pp_cell : Format.formatter -> cell -> unit

val pp_to_server : Format.formatter -> to_server -> unit

val pp_to_client : Format.formatter -> to_client -> unit

val arbitrary_cell : Sim.Rng.t -> cell
(** Random cell for fault injection (random small [sn], random value). *)
