(** System parameters and the paper's quorum thresholds.

    The asynchronous constructions (Figs. 2 and 3) require [n >= 8t + 1];
    the synchronous ones (Fig. 5 and the §4 remark) require [n >= 3t + 1].
    The reader/writer thresholds differ accordingly:

    {v
                          asynchronous (t < n/8)   synchronous (t < n/3)
    acks awaited                n - t              n  (or timeout)
    last_val / helping quorum   2t + 1             t + 1
    writer help-refresh check   4t + 1             t + 1
    v} *)

type mode =
  | Async
  | Sync of { max_delay : int; slack : int }
      (** [max_delay] is the known bound (in ticks) on message transfer
          delays of links touching correct processes; waits time out after
          a round trip plus [slack]. *)

type retry = {
  deadline : Sim.Vtime.span;
      (** per-attempt wait for acknowledgments, in ticks *)
  attempts : int;  (** max collection attempts per operation *)
  backoff : Sim.Vtime.span;  (** backoff before the second attempt *)
  backoff_factor : int;  (** multiplier per further attempt *)
  backoff_max : Sim.Vtime.span;  (** backoff ceiling *)
  jitter : Sim.Vtime.span;
      (** max extra ticks added to each backoff, drawn from a
          deterministic per-port stream seeded by [jitter_seed] *)
  jitter_seed : int;
}
(** Client-side robustness policy: bound every acknowledgment wait (even in
    the asynchronous model, where the paper's client blocks until [n - t]
    answers) and retry with deterministic exponential backoff.  Purely
    vtime-based — two runs with the same seed take identical schedules. *)

val default_retry : retry
(** [{deadline = 60; attempts = 4; backoff = 8; backoff_factor = 2;
    backoff_max = 64; jitter = 5; jitter_seed = 0x5eed}]. *)

val backoff_span : retry -> attempt:int -> Sim.Vtime.span
(** Backoff (without jitter) before retry number [attempt] (1-based):
    [backoff * backoff_factor^(attempt-1)] capped at [backoff_max]. *)

type t = private { n : int; f : int; mode : mode; retry : retry option }
(** [n] servers of which at most [f] are Byzantine (the paper's [t];
    renamed to avoid clashing with the conventional type name [t]).
    [retry = None] (the default) reproduces the paper's unbounded waits
    exactly. *)

val create : ?retry:retry -> n:int -> f:int -> mode:mode -> unit -> (t, string) result
(** Validates the resilience bound for the mode. *)

val create_exn : ?retry:retry -> n:int -> f:int -> mode:mode -> unit -> t

val create_unchecked : ?retry:retry -> n:int -> f:int -> mode:mode -> unit -> t
(** Skip the resilience validation — used by the tightness experiments that
    deliberately run the algorithms outside their assumptions. *)

val with_retry : t -> retry option -> t
(** Same deployment, different client robustness policy. *)

val retry : t -> retry option

val satisfies_bound : t -> bool
(** [n >= 8f+1] (async) resp. [n >= 3f+1] (sync). *)

val ack_wait : t -> int
(** How many acknowledgments a client waits for: [n - f] async, [n] sync
    (with timeout). *)

val read_quorum : t -> int
(** Matching-value threshold at the reader (lines 12/14): [2f+1] async,
    [f+1] sync. *)

val help_refresh_threshold : t -> int
(** Writer's line-03 threshold for skipping NEW_HELP_VAL: [4f+1] async,
    [f+1] sync. *)

val write_ok_threshold : t -> int
(** Fewest acknowledgments for a bounded-wait write to count as fully
    serviced rather than degraded: [n - f] async (the paper's quota), [f+1]
    sync (where waiting out the timeout with a correct quorum is the normal
    path). *)

val sync_timeout : t -> Sim.Vtime.span option
(** Round-trip timeout in sync mode; [None] in async mode. *)

val pp : Format.formatter -> t -> unit
