type config = {
  m : int;
  base_inst : int;
  modulus : int;
  seq_bound : int;
  tie : [ `Min_index | `Max_index ];
  view_budget : int;
}

let default_config ~m =
  {
    m;
    base_inst = 0;
    modulus = Seqnum.default_modulus;
    seq_bound = 1 lsl 61;
    tie = `Min_index;
    view_budget = 64;
  }

let epoch_k cfg = max cfg.m 2

type process = {
  id : int;
  net : Net.t;
  cfg : config;
  own : Swmr.writer;
  views : Swmr.reader array;
  wprobe : Instr.probe;
  rprobe : Instr.probe;
  mutable last_ts : (Epoch.t * int) option;
  mutable epochs_opened : int;
  mutable restamps_rev : (Value.t * Epoch.t * int) list;
}

let process ~net ~cfg ~id ~client_id =
  if id < 0 || id >= cfg.m then invalid_arg "Mwmr.process: id out of range";
  let proc = Printf.sprintf "c%d" client_id in
  let engine = Net.engine net in
  let own =
    Swmr.writer ~net ~client_id
      ~base_inst:(cfg.base_inst + (id * cfg.m))
      ~readers:cfg.m ~modulus:cfg.modulus ()
  in
  let views =
    Array.init cfg.m (fun j ->
        Swmr.reader ~net ~client_id
          ~base_inst:(cfg.base_inst + (j * cfg.m))
          ~reader_index:id ~modulus:cfg.modulus ())
  in
  {
    id;
    net;
    cfg;
    own;
    views;
    wprobe = Instr.probe ~engine ~proc ~reg:"mwmr" `Write;
    rprobe = Instr.probe ~engine ~proc ~reg:"mwmr" `Read;
    last_ts = None;
    epochs_opened = 0;
    restamps_rev = [];
  }

(* A value read back from an underlying SWMR register is expected to be a
   (data, epoch, seq) triple; anything else is debris from corruption or an
   unwritten register and is absorbed as a genesis-stamped triple. *)
let decode ~k v =
  match v with
  | Value.Stamped { data; epoch; seq } -> (data, epoch, seq)
  | Value.Bot | Value.Int _ | Value.Str _ -> (v, Epoch.genesis ~k, 0)

(* Lines 01 and 09: collect this process's view of REG[1..m].  A sub-read
   that exhausts the inquiry budget (possible only before the registers'
   writers have written post-fault) is absorbed as a genesis-stamped Bot
   triple; see the [view_budget] documentation.  Returns the views plus
   the worst sub-read outcome, so a view assembled while servers were
   unreachable is reported as degraded rather than silently partial. *)
let read_views_o ?parent ?max_iterations p =
  let k = epoch_k p.cfg in
  let budget =
    match max_iterations with Some b -> b | None -> p.cfg.view_budget
  in
  let worst = ref (Outcome.Ok ()) in
  let views =
    Array.map
      (fun r ->
        match Swmr.read_o ?parent ~max_iterations:budget r with
        | Outcome.Ok v -> decode ~k v
        | (Outcome.Degraded _ | Outcome.Timed_out _) as o ->
          worst := Outcome.worse !worst (Outcome.map (fun _ -> ()) o);
          (Value.bot, Epoch.genesis ~k, 0))
      p.views
  in
  (views, !worst)

(* Degraded views only surface in the typed outcome when a retry policy
   is installed: without one, absorption of failed sub-reads as genesis
   triples is the algorithm's normal (and only) path, and the legacy
   option API must keep returning the absorbed result. *)
let view_gate p o =
  match Params.retry (Net.params p.net) with
  | None -> Outcome.Ok ()
  | Some _ -> o

let view_epochs views =
  Array.to_list views |> List.map (fun (_, e, _) -> e)

(* Lines 02 / 10: no greatest epoch, or its sequence space is exhausted. *)
let must_open_epoch p views =
  match Epoch.max_epoch (view_epochs views) with
  | None -> true
  | Some me ->
    Array.exists
      (fun (_, e, s) -> Epoch.equal e me && s >= p.cfg.seq_bound)
      views

(* Lines 05-06 / 13-14: the indices holding the greatest epoch and the
   maximal sequence number among them. *)
let frontier views =
  match Epoch.max_epoch (view_epochs views) with
  | None -> None
  | Some me ->
    let holders =
      Array.to_list views
      |> List.mapi (fun j (v, e, s) -> (j, v, e, s))
      |> List.filter (fun (_, _, e, _) -> Epoch.equal e me)
    in
    let seq_max =
      List.fold_left (fun acc (_, _, _, s) -> max acc s) min_int holders
    in
    Some (me, seq_max, holders)

let write_o ?parent p v =
  let span = Instr.start ?parent p.wprobe in
  let ctx = Instr.ctx span in
  let views, view_health = read_views_o ~parent:ctx p in
  if must_open_epoch p views then begin
    let ne = Epoch.next_epoch ~k:(epoch_k p.cfg) (view_epochs views) in
    p.epochs_opened <- p.epochs_opened + 1;
    views.(p.id) <- (v, ne, 0) (* line 03 *)
  end;
  match frontier views with
  | None -> assert false (* next_epoch dominates every view epoch *)
  | Some (me, seq_max, _) ->
    let ts_seq = seq_max + 1 in
    p.last_ts <- Some (me, ts_seq);
    (* line 07 *)
    let wo =
      Swmr.write_o ~parent:ctx p.own
        (Value.stamped ~data:v ~epoch:me ~seq:ts_seq)
    in
    let outcome = Outcome.worse wo (view_gate p view_health) in
    Instr.finish ~ok:(Outcome.is_ok outcome) p.wprobe span;
    outcome

let write ?parent p v = ignore (write_o ?parent p v)

let pick_return p (_me, seq_max, holders) =
  let candidates = List.filter (fun (_, _, _, s) -> s = seq_max) holders in
  let chosen =
    match p.cfg.tie with
    | `Min_index -> List.nth_opt candidates 0 (* line 15: minimal index *)
    | `Max_index -> List.nth_opt (List.rev candidates) 0
  in
  match chosen with
  | Some (j, v, _, _) -> (j, v)
  | None -> (0, Value.bot) (* unreachable: holders is non-empty *)

let read_timestamped_o ?parent ?max_iterations p =
  let span = Instr.start ?parent p.rprobe in
  let ctx = Instr.ctx span in
  let views, view_health = read_views_o ~parent:ctx ?max_iterations p in
  if must_open_epoch p views then begin
    (* Line 11: restamp our own current value into a fresh epoch. *)
    let ne = Epoch.next_epoch ~k:(epoch_k p.cfg) (view_epochs views) in
    p.epochs_opened <- p.epochs_opened + 1;
    let own_v, _, _ = views.(p.id) in
    views.(p.id) <- (own_v, ne, 0);
    p.restamps_rev <- (own_v, ne, 0) :: p.restamps_rev;
    Swmr.write ~parent:ctx p.own (Value.stamped ~data:own_v ~epoch:ne ~seq:0)
  end;
  match frontier views with
  | None ->
    Instr.finish ~ok:false p.rprobe span;
    (match Outcome.reason (view_gate p view_health) with
    | Some re -> Outcome.Timed_out re
    | None -> Outcome.Timed_out Outcome.no_reason)
  | Some ((me, seq_max, _) as fr) ->
    let j, v = pick_return p fr in
    let outcome =
      Outcome.worse
        (Outcome.Ok (v, me, seq_max, j))
        (Outcome.map (fun () -> (v, me, seq_max, j)) (view_gate p view_health))
    in
    Instr.finish ~ok:(Outcome.is_ok outcome) p.rprobe span;
    outcome

let read_timestamped ?parent ?max_iterations p =
  Outcome.to_option (read_timestamped_o ?parent ?max_iterations p)

let read_o ?parent ?max_iterations p =
  Outcome.map (fun (v, _, _, _) -> v) (read_timestamped_o ?parent ?max_iterations p)

let read ?parent ?max_iterations p =
  Outcome.to_option (read_o ?parent ?max_iterations p)

let id p = p.id

let last_write_timestamp p = p.last_ts

let epochs_opened p = p.epochs_opened

let restamps p = List.rev p.restamps_rev

let own p = p.own

let views p = p.views

let take_restamps p =
  let log = List.rev p.restamps_rev in
  p.restamps_rev <- [];
  log
