lib/registers/quorum.mli: Messages
