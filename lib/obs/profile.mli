(** The search flight recorder: a [stabreg/mc-profile/v1] timeline of
    periodic engine snapshots (states/sec, frontier depth, pruning hits,
    per-domain utilization, ...).

    Sampling cadence is keyed on a deterministic progress counter (model
    checker states, chaos trials) — never on wall time — so which
    samples exist is byte-stable across runs.  Each sample does carry an
    [elapsed_s] wall-clock field for throughput computation, but the
    clock is {e injected}: library code defaults to a constant-zero
    clock, and only the drivers in [bin/] (outside the determinism lint
    scope) pass a real one.  Replay comparisons must therefore ignore
    [elapsed_s] — or simply run with the default clock. *)

type t

val schema_version : string

val create : ?every:int -> ?clock:(unit -> float) -> kind:string -> unit -> t
(** [every] (default 1000, in ticks of the progress counter) is the
    minimum tick distance between samples; [kind] tags the producing
    engine (["mc"], ["chaos"]).  Raises [Invalid_argument] when [every]
    is not positive. *)

val branch : t -> t
(** A fresh recorder with the same kind/cadence/clock and no samples —
    one per portfolio slice, since a recorder must not be shared across
    domains.  Merge the branches back with {!add_section}. *)

val due : t -> tick:int -> bool
(** Would a {!sample} at [tick] record? *)

val sample : ?force:bool -> t -> tick:int -> (unit -> (string * Json.t) list) -> unit
(** Record a snapshot if [tick] has advanced at least [every] ticks past
    the previous sample (the first call always records; [force] skips
    the cadence check, for a final snapshot at shutdown).  The field
    thunk is only evaluated when the sample records. *)

val add_section : t -> string -> Json.t -> unit
(** Attach a named top-level section (e.g. ["domains"]: per-slice
    summaries of a parallel search). *)

val samples : t -> int

val sample_jsons : t -> Json.t list
(** The recorded samples, oldest first (for merging slice recorders). *)

val to_json : t -> Json.t

val validate : Json.t -> (unit, string) result

val write : dir:string -> name:string -> t -> string
(** Write [<dir>/<name>.json] (pretty-printed), creating [dir] if
    needed; returns the path. *)
