open Util
open Registers

(* Resilience-bound tightness (Theorems 1 and 2).

   Liveness: a read round terminates by finding 2t+1 (async) / t+1 (sync)
   identical values among its acknowledgments.  Within the bounds, the
   quorum arithmetic makes some value always reach the threshold; below
   them, a Byzantine splitter plus a write in flight can starve read after
   read.  Safety: a coalition bigger than the assumed t can vouch a forged
   value past the threshold. *)

(* Random schedules essentially never starve reads even well below the
   bounds (the helping path is extremely robust) — a finding recorded in
   EXPERIMENTS.md.  The liveness probes therefore use the adversarially
   scripted schedules of {!Harness.Starvation}. *)

let test_random_schedules_do_not_starve () =
  (* Even at n = 6 (< 8t+1), 8 random seeds of continuous writes plus an
     equivocator never starve a read: the scripted adversary below is
     genuinely needed. *)
  let params = Params.create_unchecked ~n:6 ~f:1 ~mode:Params.Async () in
  let starved = ref 0 in
  for seed = 1 to 8 do
    let scn = Harness.Scenario.create ~seed ~params () in
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
      Byzantine.Behavior.equivocate;
    let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
    let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
    run_fibers scn
      [
        ( "writer",
          fun () ->
            for i = 1 to 120 do
              Swsr_regular.write w (int_value i)
            done );
        ( "reader",
          fun () ->
            for _ = 1 to 15 do
              match Swsr_regular.read ~max_iterations:4 r with
              | None -> incr starved
              | Some _ -> ()
            done );
      ]
  done;
  check_int "random schedules never starve" 0 !starved

let test_async_scripted_starvation_crossover () =
  (* Deterministic worst-case scheduling: full starvation exactly for
     n <= 6t, reads return otherwise. *)
  List.iter
    (fun (n, f) ->
      let o = Harness.Starvation.run ~n ~f () in
      let predicted = Harness.Starvation.predicted_starvation ~n ~f ~sync:false in
      check_bool
        (Printf.sprintf "n=%d t=%d matches prediction" n f)
        predicted o.Harness.Starvation.starved)
    [ (5, 1); (6, 1); (7, 1); (9, 1); (11, 2); (12, 2); (13, 2); (17, 2) ]

let test_async_at_bound_never_starves () =
  let o = Harness.Starvation.run ~n:9 ~f:1 () in
  check_false "n = 8t+1 returns" o.Harness.Starvation.starved;
  check_int "first round succeeds" 1 o.Harness.Starvation.rounds_used

let test_sync_scripted_retries_below_bound () =
  (* Synchronous model: below n = 3t+1 the scripted schedule forces the
     reader through failed rounds; at the bound every round succeeds —
     the t < n/3 bound is empirically tight against this adversary. *)
  let below = Harness.Starvation.run ~n:3 ~f:1 ~sync:true () in
  check_true "n = 3t: failed rounds" (below.Harness.Starvation.rounds_used > 1);
  let at = Harness.Starvation.run ~n:4 ~f:1 ~sync:true () in
  check_false "n = 3t+1: returns" at.Harness.Starvation.starved;
  check_int "n = 3t+1: one round" 1 at.Harness.Starvation.rounds_used;
  let below2 = Harness.Starvation.run ~n:6 ~f:2 ~sync:true () in
  check_true "n = 3t (t=2): failed rounds"
    (below2.Harness.Starvation.rounds_used > 1);
  let at2 = Harness.Starvation.run ~n:7 ~f:2 ~sync:true () in
  check_int "n = 3t+1 (t=2): one round" 1 at2.Harness.Starvation.rounds_used

(* Safety: how many colluders does it take to forge a read? *)
let forged_read ~colluders ~seed =
  let scn = async_scenario ~seed () in
  let forged = { Messages.sn = 77; v = Value.str "forged" } in
  for s = 0 to colluders - 1 do
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary s
      (Byzantine.Behavior.collude ~cell:forged)
  done;
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let saw_forged = ref false in
  run_fibers scn
    [
      ( "wr",
        fun () ->
          for i = 1 to 5 do
            Swsr_regular.write w (int_value i);
            match Swsr_regular.read ~max_iterations:8 r with
            | Some v when Value.equal v (Value.str "forged") ->
              saw_forged := true
            | Some _ | None -> ()
          done );
    ];
  !saw_forged

let test_safety_up_to_2t_colluders () =
  (* Even twice the assumed t colluders cannot reach the 2t+1 threshold. *)
  for seed = 1 to 5 do
    check_false "2t colluders cannot forge" (forged_read ~colluders:2 ~seed)
  done

let test_safety_breaks_at_quorum_colluders () =
  let any = ref false in
  for seed = 1 to 5 do
    if forged_read ~colluders:3 ~seed then any := true
  done;
  check_true "2t+1 colluders forge a read" !any

let tests =
  [
    case "random schedules do not starve" test_random_schedules_do_not_starve;
    case "async scripted starvation crossover" test_async_scripted_starvation_crossover;
    case "async at the bound" test_async_at_bound_never_starves;
    case "sync scripted retries below the bound" test_sync_scripted_retries_below_bound;
    case "safety holds vs 2t colluders" test_safety_up_to_2t_colluders;
    case "safety breaks at 2t+1 colluders" test_safety_breaks_at_quorum_colluders;
  ]
