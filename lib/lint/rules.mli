(** The stablint rule catalog.

    Five rules enforce the invariants the replay/model-checking layers
    assume (see EXPERIMENTS.md, "Static analysis"):

    - {b R1 no-nondeterminism}: no ambient randomness ([Random.int] and
      friends on the global state, [Random.State.make_self_init]), no
      wall-clock reads ([Unix.gettimeofday], [Unix.time], [Sys.time]),
      no order-sensitive [Hashtbl.iter], and no [Hashtbl.fold] whose
      result is not immediately sorted.  Scoped to the
      determinism-critical libraries ([sim], [mc], [chaos], [registers],
      [history], [obs]).  Seeded [Random.State] values are allowed: they
      are deterministic given the seed.
    - {b R2 no-polymorphic-compare}: no [Stdlib.compare] (or qualified
      polymorphic [=], [<>], [<], [>], [<=], [>=]), no bare [compare]
      passed as a comparator argument, and no [=]/[<>] applied to a
      syntactically structured operand (record, tuple, constructor
      application, list/array literal).  Scoped to protocol/oracle code
      ([registers], [history], [mc], [chaos]).
    - {b R3 no-wildcard-message-match}: no [_ ->] (or or-pattern
      containing [_]) in a [match]/[function] that elsewhere names a
      message/event constructor (a constructor qualified by a module
      path mentioning [Messages] or [Event]).  Adding a constructor must
      force every handler to take a position.
    - {b R4 no-partial-functions}: no [List.hd], [List.tl], [List.nth],
      [Option.get], explicit [Array.get] on a computed index, or bare
      [failwith] in protocol hot paths ([registers], [history], [mc],
      [chaos], [sim], [datalink]).  A partial call whose enclosing
      [match] carries an [exception] case is handled and not flagged.
    - {b R5 mli-coverage}: every [.ml] under [lib/] must have a sibling
      [.mli].

    Every rule is suppressible at the site with
    [[@lint.allow "R<n>"]] / [[@@lint.allow "R<n>"]] /
    [[@@@lint.allow "R<n>"]] or a [(* lint: allow R<n> *)] line pragma;
    see {!Suppress}. *)

val r1 : Rule.t

val r2 : Rule.t

val r3 : Rule.t

val r4 : Rule.t

val r5 : Rule.t

val all : Rule.t list
(** The registry, in id order. *)

val by_id : string -> Rule.t option
