bin/exp_e8.ml: Datalink Harness Int List Printf Sim
