(** The regular-register condition (§2.2), checked per read.

    After the cutoff (the experiment's stand-in for [tau_stab]), every read
    must return either the value of the last write that completed before
    the read started, or the value of a write concurrent with the read.
    Reads invoked before the cutoff are ignored (they are allowed to return
    arbitrary values); reads that ran out of budget count as liveness
    failures, reported separately. *)

type violation = {
  read : History.op;
  expected : Registers.Value.t list;  (** the admissible values *)
}

type report = {
  reads_checked : int;
  reads_skipped : int;  (** invoked before the cutoff *)
  liveness_failures : int;  (** reads that exhausted their budget *)
  violations : violation list;
}

val check :
  ?cutoff:Sim.Vtime.t -> ?initial_ok:bool -> History.t -> report
(** [check ~cutoff h] verifies every read of [h] invoked at or after
    [cutoff] (default: check all).  [initial_ok] (default [false]) admits
    any value for reads with no preceding or concurrent write at all —
    useful for histories that legitimately start unwritten. *)

val is_clean : report -> bool
(** No violations and no liveness failures among checked reads. *)

val pp : Format.formatter -> report -> unit
