(* E6 — Bounded epochs and sequence-space exhaustion in the MWMR register
   (Theorem 4, §5.2).

   Shrink the timestamp sequence bound so the epoch machinery actually
   fires.  Lemmas 16–18 promise atomicity from a point that follows a
   non-concurrent operation, i.e. once the epoch structure has settled;
   the experiment therefore measures both regimes: sequential operations
   (the paper's precondition holds between every two ops — the oracle must
   be perfectly clean even while epochs churn) and fully concurrent
   operations (epoch openings can race, producing transiently incomparable
   labels the oracle reports). *)

open Registers

let mk ~seed ~seq_bound =
  let m = 4 in
  let params = Common.async_params ~n:9 ~f:1 in
  let scn = Common.scenario ~seed ~params () in
  let cfg = { (Mwmr.default_config ~m) with seq_bound } in
  let procs =
    Array.init m (fun i ->
        Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:i
          ~client_id:(300 + i))
  in
  (scn, cfg, procs)

let tally report =
  List.partition
    (fun (v : Oracles.Atomicity.Mw.violation) ->
      v.kind = "incomparable-epochs")
    report.Oracles.Atomicity.Mw.violations
  |> fun (inc, other) -> (List.length inc, List.length other)

(* Sequential regime: one fiber performs every operation, round-robin over
   the processes. *)
let run_sequential ~seed ~seq_bound =
  let scn, cfg, procs = mk ~seed ~seq_bound in
  let m = Array.length procs in
  Common.run_jobs scn
    [
      ( "seq",
        fun () ->
          for k = 1 to 40 do
            let p = procs.(k mod m) in
            let pid = Mwmr.id p in
            if k mod 2 = 0 then begin
              let v = Harness.Workload.value_for ~writer:(100 + pid) k in
              let inv = Harness.Scenario.now scn in
              Mwmr.write p v;
              let resp = Harness.Scenario.now scn in
              match Mwmr.last_write_timestamp p with
              | Some (e, s) ->
                Oracles.History.record scn.Harness.Scenario.history
                  ~proc:(Printf.sprintf "p%d" pid)
                  ~kind:Oracles.History.Write ~inv ~resp ~ts:(e, s, pid) v
              | None -> ()
            end
            else begin
              let inv = Harness.Scenario.now scn in
              let result = Mwmr.read_timestamped p in
              let resp = Harness.Scenario.now scn in
              List.iter
                (fun (v, e, s) ->
                  Oracles.History.record scn.Harness.Scenario.history
                    ~proc:(Printf.sprintf "p%d" pid)
                    ~kind:Oracles.History.Write ~inv ~resp ~ts:(e, s, pid) v)
                (Mwmr.take_restamps p);
              match result with
              | Some (v, e, s, j) ->
                Oracles.History.record scn.Harness.Scenario.history
                  ~proc:(Printf.sprintf "p%d" pid)
                  ~kind:Oracles.History.Read ~inv ~resp ~ts:(e, s, j) v
              | None -> ()
            end
          done );
    ];
  let epochs = Array.fold_left (fun a p -> a + Mwmr.epochs_opened p) 0 procs in
  Common.observe_scn scn;
  let report =
    Oracles.Atomicity.Mw.check ~tie:cfg.Mwmr.tie scn.Harness.Scenario.history
  in
  (epochs, tally report)

(* Concurrent regime: one fiber per process. *)
let run_concurrent ~seed ~seq_bound =
  let scn, cfg, procs = mk ~seed ~seq_bound in
  Common.run_jobs scn
    (Array.to_list
       (Array.mapi
          (fun i p ->
            ( Printf.sprintf "p%d" i,
              fun () ->
                Harness.Workload.mwmr_job scn
                  ~proc:(Printf.sprintf "p%d" i)
                  ~process:p ~ops:10 ~write_ratio:0.5
                  ~gap:(Harness.Workload.gap 0 40) () ))
          procs));
  let epochs = Array.fold_left (fun a p -> a + Mwmr.epochs_opened p) 0 procs in
  let report =
    Oracles.Atomicity.Mw.check ~tie:cfg.Mwmr.tie scn.Harness.Scenario.history
  in
  (epochs, tally report)

let run ~seed =
  Harness.Report.section "E6: epoch machinery under sequence exhaustion (Thm 4)";
  let seeds = 4 in
  let block title runner =
    let rows =
      List.map
        (fun seq_bound ->
          let epochs = ref 0 and inc = ref 0 and other = ref 0 in
          for s = 0 to seeds - 1 do
            let e, (i, o) = runner ~seed:(seed + s) ~seq_bound in
            epochs := !epochs + e;
            inc := !inc + i;
            other := !other + o
          done;
          [
            (if seq_bound > 1 lsl 32 then "2^61" else string_of_int seq_bound);
            string_of_int !epochs;
            string_of_int !inc;
            string_of_int !other;
          ])
        [ 2; 4; 16; 1 lsl 61 ]
    in
    Harness.Report.table ~title
      ~header:
        [ "seq bound"; "epochs opened"; "incomparable pairs"; "other violations" ]
      rows
  in
  block "sequential operations (Lemma 16's precondition holds)" run_sequential;
  block "fully concurrent operations (4 writers racing)" run_concurrent;
  print_endline
    "  Shape: epoch wraps are atomicity-transparent while every pair of\n\
    \  live labels stays comparable (bounds >= 4 here; a fortiori the\n\
    \  paper's 2^64 within any system lifespan).  Exhausting the space\n\
    \  every couple of writes outruns label propagation — distant\n\
    \  generations become incomparable, and racing openings mint\n\
    \  incomparable labels directly.  That is exactly the regime the\n\
    \  'practically stabilizing' qualifier and Lemma 16's settled-epoch\n\
    \  precondition exclude: one epoch change per 2^64 writes."
