(** Directed {e unreliable} link: loss, duplication, reordering, and
    corruptible in-flight contents.

    This is the raw medium underneath the self-stabilizing transport
    ({!Registers.Ss_transport} in the registers library): everything
    {!Link} guarantees, dropped.  Each transmitted packet independently
    vanishes with probability [loss]; a delivered packet is re-delivered
    once more with probability [dup] (after a fresh delay); delays are
    sampled per packet with no FIFO correction, so reordering is the
    norm. *)

type 'm t

val create :
  engine:Engine.t ->
  rng:Rng.t ->
  delay:Link.sampler ->
  ?loss:float ->
  ?dup:float ->
  ?classify:('m -> Obs.Event.msg_class) ->
  name:string ->
  deliver:('m -> unit) ->
  unit ->
  'm t
(** [loss] and [dup] default to [0.0].  [classify], when given, labels
    the typed [Drop] events this link emits for lost packets (losses
    always bump the ["net.dropped"] counter). *)

val set_loss : 'm t -> float -> unit
(** Runtime chaos knob: retune the loss probability of a live link.
    Accepts the full [\[0,1\]] range — [1.0] is a directed partition that
    drops every subsequent non-injected packet until lowered again.  A
    change emits an [Obs.Event.Mark] (["link.<name>.loss:<old>-><new>"]) so
    chaos windows are visible in event traces.  Raises [Invalid_argument]
    outside [\[0,1\]]. *)

val set_dup : 'm t -> float -> unit
(** Runtime chaos knob for the duplication probability; same contract and
    mark as {!set_loss}. *)

val loss : 'm t -> float
(** Current loss probability. *)

val dup : 'm t -> float
(** Current duplication probability. *)

val send : 'm t -> 'm -> unit
(** Transmit one packet (counted in the trace counter ["net.pkts"] even
    when subsequently lost; deliveries bump ["net.msgs"]). *)

val inject : 'm t -> 'm -> unit
(** Transient-fault hook: place a spurious packet in flight (never lost,
    may still duplicate). *)

val corrupt_in_flight : 'm t -> ('m -> 'm option) -> unit
(** Transient-fault hook: rewrite or drop the packets in flight. *)

val in_flight : 'm t -> 'm list
