type t = { name : string; emit : Event.t -> unit; flush : unit -> unit }

let make ?(flush = fun () -> ()) ~name emit = { name; emit; flush }

let memory ?(name = "memory") () =
  let events_rev = ref [] in
  let sink = make ~name (fun e -> events_rev := e :: !events_rev) in
  (sink, fun () -> List.rev !events_rev)

let jsonl ?(name = "jsonl") ?flush writer =
  make ?flush ~name (fun e ->
      writer (Json.to_string (Event.to_json e));
      writer "\n")
