lib/harness/script.ml:
