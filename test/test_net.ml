open Util
open Registers

let setup ?(n = 9) ?(f = 1) ?(seed = 5) () =
  let rng = Sim.Rng.create seed in
  let engine = Sim.Engine.create ~rng:(Sim.Rng.split rng) () in
  let params = Params.create_exn ~n ~f ~mode:Params.Async () in
  let net =
    Net.create ~engine ~params ~link_delay:(fun rng ->
        Sim.Link.uniform rng ~lo:1 ~hi:10) ()
  in
  (engine, net)

let test_broadcast_reaches_all_servers () =
  let engine, net = setup () in
  let hits = Array.make 9 0 in
  Array.iteri
    (fun i (ep : Net.endpoint) ->
      ep.Net.on_deliver <- (fun _ -> hits.(i) <- hits.(i) + 1))
    (Net.endpoints net);
  let port = Net.add_client net ~id:0 in
  run_engine_fiber engine (fun () ->
      ignore (Net.ss_broadcast net port ~inst:0 (Messages.Read false)));
  Array.iteri (fun i h -> check_int (Printf.sprintf "server %d" i) 1 h) hits

let test_synchronized_delivery () =
  (* The broadcast must not return before n-2t correct servers delivered. *)
  let engine, net = setup () in
  let delivered = ref 0 in
  Array.iter
    (fun (ep : Net.endpoint) ->
      ep.Net.on_deliver <- (fun _ -> incr delivered))
    (Net.endpoints net);
  let port = Net.add_client net ~id:0 in
  let seen_at_return = ref (-1) in
  let _h =
    Sim.Fiber.spawn (fun () ->
        ignore (Net.ss_broadcast net port ~inst:0 (Messages.Read true));
        seen_at_return := !delivered)
  in
  Sim.Engine.run engine;
  check_true "at least n-2t deliveries before return" (!seen_at_return >= 7)

let test_round_increments () =
  let engine, net = setup () in
  let port = Net.add_client net ~id:0 in
  let r0 = port.Net.round in
  let _h =
    Sim.Fiber.spawn (fun () ->
        ignore (Net.ss_broadcast net port ~inst:0 (Messages.Read false));
        ignore (Net.ss_broadcast net port ~inst:0 (Messages.Read false)))
  in
  Sim.Engine.run engine;
  check_int "two rounds consumed" (r0 + 2) port.Net.round

let test_reply_routing () =
  let engine, net = setup () in
  let port = Net.add_client net ~id:4 in
  Net.reply net ~server:2 ~client:4 (Messages.Ack_write None) ~round:7;
  Sim.Engine.run engine;
  match Sim.Mailbox.drain port.Net.mailbox with
  | [ (env : Messages.client_envelope) ] ->
    check_int "server id" 2 env.server;
    check_int "round echoed" 7 env.round
  | other -> Alcotest.failf "expected one envelope, got %d" (List.length other)

let test_reply_to_unknown_client_dropped () =
  let engine, net = setup () in
  (* Must not raise. *)
  Net.reply net ~server:0 ~client:99 (Messages.Ack_write None) ~round:1;
  Sim.Engine.run engine

let test_add_client_idempotent () =
  let _, net = setup () in
  let p1 = Net.add_client net ~id:3 in
  let p2 = Net.add_client net ~id:3 in
  check_true "same port" (p1 == p2);
  check_int "one port" 1 (List.length (Net.client_ports net))

let test_honest_server_round_trip () =
  let engine, net = setup () in
  let srv = Server.create ~id:0 in
  Net.install_honest_server net srv;
  let port = Net.add_client net ~id:0 in
  let got = ref [] in
  let _h =
    Sim.Fiber.spawn (fun () ->
        ignore
          (Net.ss_broadcast net port ~inst:0
             (Messages.Write { sn = 1; v = Value.int 5 }));
        (* Only server 0 is honest here; expect exactly its ack. *)
        got := [ Sim.Mailbox.recv port.Net.mailbox ])
  in
  Sim.Engine.run engine;
  match !got with
  | [ (env : Messages.client_envelope) ] -> check_int "from server 0" 0 env.server
  | _ -> Alcotest.fail "no ack"

let test_correctness_ground_truth () =
  let _, net = setup () in
  check_true "all correct initially" (Net.is_correct net 3);
  Net.set_correct net (fun i -> i <> 3);
  check_false "3 byzantine" (Net.is_correct net 3);
  check_true "others fine" (Net.is_correct net 2)

let tests =
  [
    case "broadcast reaches all" test_broadcast_reaches_all_servers;
    case "synchronized delivery" test_synchronized_delivery;
    case "round increments" test_round_increments;
    case "reply routing" test_reply_routing;
    case "reply to unknown dropped" test_reply_to_unknown_client_dropped;
    case "add_client idempotent" test_add_client_idempotent;
    case "honest round trip" test_honest_server_round_trip;
    case "correctness ground truth" test_correctness_ground_truth;
  ]
