(* Smoke coverage for every experiment driver: each must run to completion
   (their assertions live in EXPERIMENTS.md's tables; here we only demand
   they keep running — regressions in the drivers are build/test failures,
   not discoveries at paper-rewrite time).  Output goes to the test log. *)

open Util

let drivers =
  [
    ("E1", Exp_drivers.Exp_e1.run);
    ("E2", Exp_drivers.Exp_e2.run);
    ("E3", Exp_drivers.Exp_e3.run);
    ("E4", Exp_drivers.Exp_e4.run);
    ("E5", Exp_drivers.Exp_e5.run);
    ("E6", Exp_drivers.Exp_e6.run);
    ("E7", Exp_drivers.Exp_e7.run);
    ("E8", Exp_drivers.Exp_e8.run);
    ("E9", Exp_drivers.Exp_e9.run);
    ("E10", Exp_drivers.Exp_e10.run);
    ("E11", Exp_drivers.Exp_e11.run);
    ("E12", Exp_drivers.Exp_e12.run);
    ("E13", Exp_drivers.Exp_e13.run);
    ("E14", Exp_drivers.Exp_e14.run);
  ]

let tests =
  List.map
    (fun (id, run) -> case (Printf.sprintf "%s runs" id) (fun () -> run ~seed:2))
    drivers
