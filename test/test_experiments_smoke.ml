(* Smoke coverage for every experiment driver: each must run to completion
   (their assertions live in EXPERIMENTS.md's tables; here we only demand
   they keep running — regressions in the drivers are build/test failures,
   not discoveries at paper-rewrite time) AND must produce a schema-valid
   machine-readable run report, the way `experiments.exe run --json` does.
   Output goes to the test log. *)

open Util

let drivers =
  [
    ("E1", Exp_drivers.Exp_e1.run);
    ("E2", Exp_drivers.Exp_e2.run);
    ("E3", Exp_drivers.Exp_e3.run);
    ("E4", Exp_drivers.Exp_e4.run);
    ("E5", Exp_drivers.Exp_e5.run);
    ("E6", Exp_drivers.Exp_e6.run);
    ("E7", Exp_drivers.Exp_e7.run);
    ("E8", Exp_drivers.Exp_e8.run);
    ("E9", Exp_drivers.Exp_e9.run);
    ("E10", Exp_drivers.Exp_e10.run);
    ("E11", Exp_drivers.Exp_e11.run);
    ("E12", Exp_drivers.Exp_e12.run);
    ("E13", Exp_drivers.Exp_e13.run);
    ("E14", Exp_drivers.Exp_e14.run);
  ]

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let smoke id run () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "stabreg-smoke"
  in
  Exp_drivers.Common.json_dir := Some dir;
  Fun.protect
    ~finally:(fun () -> Exp_drivers.Common.json_dir := None)
    (fun () ->
      Exp_drivers.Common.with_report ~exp:id ~seed:2 (fun () -> run ~seed:2));
  let path = Filename.concat dir (id ^ ".json") in
  if not (Sys.file_exists path) then
    Alcotest.failf "%s: no report written to %s" id path;
  let j =
    match Obs.Json.parse (read_file path) with
    | Ok j -> j
    | Error e -> Alcotest.failf "%s: report unparsable: %s" id e
  in
  Sys.remove path;
  (match Obs.Report.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: report invalid: %s" id e);
  (* Every driver must actually observe a deployment: params filled in and
     at least one counter or message class recorded. *)
  let member k = Obs.Json.member k j in
  (match member "params" with
  | Some p -> (
    match Obs.Json.member "n" p with
    | Some (Obs.Json.Int n) when n > 0 -> ()
    | _ -> Alcotest.failf "%s: params.n not observed" id)
  | None -> Alcotest.failf "%s: params missing" id);
  let nonempty_obj k =
    match member k with
    | Some (Obs.Json.Obj (_ :: _)) -> true
    | _ -> false
  in
  check_true
    (Printf.sprintf "%s has traffic or counters" id)
    (nonempty_obj "messages" || nonempty_obj "counters")

let tests =
  List.map (fun (id, run) -> case (Printf.sprintf "%s runs" id) (smoke id run)) drivers
