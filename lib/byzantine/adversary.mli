(** The adversary controller: which servers are Byzantine, with which
    strategy, and when that set moves.

    Deploying an adversary wires every server slot: honest slots run the
    {!Registers.Server} automaton, compromised slots run a
    {!Behavior.t}.  The controller keeps {!Registers.Net.set_correct}
    ground truth in sync so the ss-broadcast synchronized-delivery property
    is computed against the servers that are currently correct.

    Mobile Byzantine faults (footnote 1 of the paper): {!restore} hands a
    slot back to the honest automaton {e over arbitrary state} (the state
    is corrupted at the hand-back, since a recovering machine remembers
    nothing trustworthy), and {!compromise} may then strike elsewhere. *)

type t

val deploy :
  net:Registers.Net.t -> rng:Sim.Rng.t -> t
(** Create the [n] server automata and install them all honest. *)

val servers : t -> Registers.Server.t array
(** The honest automata (their state is what transient faults corrupt; a
    compromised slot's automaton is dormant until {!restore}). *)

val server : t -> int -> Registers.Server.t

val compromise : t -> int -> Behavior.t -> unit
(** Make slot [i] Byzantine with the given strategy. *)

val restore : t -> int -> unit
(** Mobile hand-back: slot [i] resumes the honest automaton over
    arbitrary (freshly corrupted) state. *)

val crash : t -> int -> unit
(** Crash-stop slot [i]: it drops every delivery and leaves the correct
    set (crash faults occupy fault slots like Byzantine ones).  A later
    {!recover} turns the episode into a crash-recovery fault. *)

val recover : ?wipe:Behavior.wipe -> ?rng:Sim.Rng.t -> t -> int -> unit
(** Bring slot [i] back as the honest automaton over state rewritten per
    [wipe] (default [`Arbitrary], drawn from [rng] when given so the
    rejoin state can be pinned by a fault plan rather than the adversary's
    stream). *)

val byzantine_ids : t -> int list
(** Currently compromised slots, ascending. *)

val compromise_first : t -> count:int -> (int -> Behavior.t) -> unit
(** Compromise slots [0 .. count-1] (strategy chosen per slot). *)

val move : t -> from:int -> to_:int -> Behavior.t -> unit
(** Mobile step: {!restore} [from], then {!compromise} [to_]. *)

val roam : t -> (int * Behavior.t) list -> unit
(** Mobile sweep: make [assignments] the {e entire} Byzantine set in one
    step — every currently compromised slot absent from the list is handed
    back to the honest automaton ({!restore}, i.e. {!Behavior.honest} over
    freshly corrupted state), then each listed slot is compromised with its
    strategy.  Keeping the list no longer than the model's [t] realizes the
    footnote-1 mobile adversary: up to [t] simultaneous compromises that
    relocate between quiescence points.  [roam t \[\]] retires the
    adversary entirely. *)
