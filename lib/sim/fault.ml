type target = { name : string; corrupt : Rng.t -> unit }

type process = {
  pname : string;
  crash : unit -> unit;
  recover : Rng.t -> unit;
}

type t = {
  mutable targets : target list; (* newest first *)
  mutable processes : process list; (* newest first *)
}

let create () = { targets = []; processes = [] }

let register t ~name corrupt = t.targets <- { name; corrupt } :: t.targets

let names t = List.rev_map (fun tg -> tg.name) t.targets

let register_process t ~name ~crash ~recover =
  t.processes <- { pname = name; crash; recover } :: t.processes

let process_names t = List.rev_map (fun p -> p.pname) t.processes

(* Matching respects dot-separated segment boundaries: "server.1" hits
   "server.1" and "server.1.cell" but never "server.10" — a bare prefix
   must cover whole segments, while a prefix ending in '.' (or the empty
   prefix) matches anything it is a string-prefix of. *)
let matches ~prefix name =
  let pl = String.length prefix and nl = String.length name in
  pl = 0
  || (nl >= pl
      && String.equal (String.sub name 0 pl) prefix
      && (nl = pl || prefix.[pl - 1] = '.' || name.[pl] = '.'))

let inject_matching t ~rng ~prefix =
  let hit = ref 0 in
  List.iter
    (fun tg ->
      if matches ~prefix tg.name then begin
        incr hit;
        tg.corrupt rng
      end)
    (List.rev t.targets);
  !hit

let inject_all t ~rng = inject_matching t ~rng ~prefix:""

let crash_matching t ~prefix =
  let hit = ref 0 in
  List.iter
    (fun p ->
      if matches ~prefix p.pname then begin
        incr hit;
        p.crash ()
      end)
    (List.rev t.processes);
  !hit

let recover_matching t ~rng ~prefix =
  let hit = ref 0 in
  List.iter
    (fun p ->
      if matches ~prefix p.pname then begin
        incr hit;
        p.recover rng
      end)
    (List.rev t.processes);
  !hit

let emit_process_event ~engine ~tag ~prefix ~hit =
  Trace.emit (Engine.trace engine) ~time:(Engine.now engine) ~tag:"fault"
    (Printf.sprintf "%s fault: hit %d process(es) (prefix %S)" tag hit prefix);
  Trace.add (Engine.trace engine) (Printf.sprintf "fault.%s" tag) hit;
  let hub = Engine.hub engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Fault_injected
         {
           time = Vtime.to_int (Engine.now engine);
           target =
             Printf.sprintf "%s:%s" tag (if prefix = "" then "*" else prefix);
           hits = hit;
         })

let schedule_crash t ~engine ~at ?down_for ~prefix () =
  Engine.schedule_at engine at (fun () ->
      let hit = crash_matching t ~prefix in
      emit_process_event ~engine ~tag:"crash" ~prefix ~hit);
  match down_for with
  | None -> () (* crash-stop: the process never rejoins *)
  | Some d ->
    (* Crash-recovery: split the recovery generator now so the wiped
       state drawn at rejoin time is a function of the schedule, not of
       whatever else the engine did in between. *)
    let rng = Rng.split (Engine.rng engine) in
    Engine.schedule_at engine (Vtime.add at d) (fun () ->
        let hit = recover_matching t ~rng ~prefix in
        emit_process_event ~engine ~tag:"recover" ~prefix ~hit)

let schedule t ~engine ~at ~prefix =
  let rng = Rng.split (Engine.rng engine) in
  Engine.schedule_at engine at (fun () ->
      let hit = inject_matching t ~rng ~prefix in
      Trace.emit (Engine.trace engine) ~time:(Engine.now engine)
        ~tag:"fault"
        (Printf.sprintf "transient fault: corrupted %d targets (prefix %S)" hit
           prefix);
      Trace.add (Engine.trace engine) "fault.injections" hit;
      let hub = Engine.hub engine in
      if Obs.Hub.active hub then
        Obs.Hub.emit hub
          (Obs.Event.Fault_injected
             {
               time = Vtime.to_int (Engine.now engine);
               target = (if prefix = "" then "*" else prefix);
               hits = hit;
             }))
