open Util
open Registers

let test_equal () =
  check_true "bot" (Value.equal Value.bot Value.bot);
  check_true "int" (Value.equal (Value.int 3) (Value.int 3));
  check_false "int neq" (Value.equal (Value.int 3) (Value.int 4));
  check_true "str" (Value.equal (Value.str "a") (Value.str "a"));
  check_false "cross kind" (Value.equal (Value.int 0) Value.bot)

let test_stamped_equal () =
  let e = Epoch.genesis ~k:2 in
  let v1 = Value.stamped ~data:(Value.int 1) ~epoch:e ~seq:5 in
  let v2 = Value.stamped ~data:(Value.int 1) ~epoch:e ~seq:5 in
  let v3 = Value.stamped ~data:(Value.int 1) ~epoch:e ~seq:6 in
  check_true "same triple" (Value.equal v1 v2);
  check_false "different seq" (Value.equal v1 v3)

let test_nested_stamped () =
  let e = Epoch.genesis ~k:2 in
  let inner = Value.stamped ~data:(Value.str "x") ~epoch:e ~seq:0 in
  let outer = Value.stamped ~data:inner ~epoch:e ~seq:1 in
  check_true "nested compares" (Value.equal outer outer)

let test_pp () =
  Alcotest.(check string) "int" "7" (Value.to_string (Value.int 7));
  Alcotest.(check string) "bot" "\xe2\x8a\xa5" (Value.to_string Value.bot);
  Alcotest.(check string) "str" "\"hi\"" (Value.to_string (Value.str "hi"))

let test_arbitrary_not_stamped () =
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 50 do
    match Value.arbitrary rng with
    | Value.Stamped _ -> Alcotest.fail "arbitrary produced Stamped"
    | Value.Bot | Value.Int _ | Value.Str _ -> ()
  done

let tests =
  [
    case "equal" test_equal;
    case "stamped equal" test_stamped_equal;
    case "nested stamped" test_nested_stamped;
    case "pretty printing" test_pp;
    case "arbitrary shape" test_arbitrary_not_stamped;
  ]
