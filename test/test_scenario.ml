open Util
open Registers

let test_deterministic_replay () =
  let run seed =
    let scn = async_scenario ~seed () in
    let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
    let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
    run_fibers scn
      [
        ( "wr",
          fun () ->
            for i = 1 to 10 do
              Swsr_regular.write w (int_value i);
              ignore (Swsr_regular.read r)
            done );
      ];
    ( Sim.Vtime.to_int (Harness.Scenario.now scn),
      Harness.Scenario.messages_sent scn,
      Harness.Scenario.broadcasts scn )
  in
  check_true "bit-identical replay" (run 5 = run 5);
  check_true "different seeds differ" (run 5 <> run 6)

let test_fault_targets_registered () =
  let scn = async_scenario ~n:9 () in
  let names = Sim.Fault.names scn.Harness.Scenario.fault in
  check_int "one target per server" 9
    (List.length
       (List.filter
          (fun n -> String.length n > 7 && String.sub n 0 7 = "server.")
          names))

let test_register_port_targets () =
  let scn = async_scenario () in
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:42 ~inst:0 () in
  Harness.Scenario.register_port scn (Swsr_atomic.writer_port w);
  Harness.Scenario.register_atomic_writer scn ~name:"w" w;
  let names = Sim.Fault.names scn.Harness.Scenario.fault in
  check_true "round target" (List.mem "client.42.round" names);
  check_true "link target" (List.mem "link.c42" names);
  check_true "wsn target" (List.mem "client.w.wsn" names)

let test_record_success_and_failure () =
  let scn = async_scenario () in
  let _ =
    Sim.Fiber.spawn (fun () ->
        ignore
          (Harness.Scenario.record scn ~proc:"p" ~kind:Oracles.History.Read
             (fun () -> Some (int_value 1)));
        ignore
          (Harness.Scenario.record scn ~proc:"p" ~kind:Oracles.History.Read
             (fun () -> None)))
  in
  Harness.Scenario.run scn;
  match Oracles.History.ops scn.Harness.Scenario.history with
  | [ ok_op; failed_op ] ->
    check_true "ok recorded" ok_op.Oracles.History.ok;
    check_false "failure recorded" failed_op.Oracles.History.ok
  | l -> Alcotest.failf "expected 2 ops, got %d" (List.length l)

let test_sleep_advances_time () =
  let scn = async_scenario () in
  let woke = ref (-1) in
  run_fiber scn "sleeper" (fun () ->
      Harness.Scenario.sleep scn 123;
      woke := Sim.Vtime.to_int (Harness.Scenario.now scn));
  check_int "slept" 123 !woke

let test_sync_delay_validation () =
  Alcotest.check_raises "delays beyond max_delay rejected"
    (Invalid_argument "Scenario.create: sync delays exceed the model's max_delay")
    (fun () ->
      let params =
        Params.create_exn ~n:4 ~f:1
          ~mode:(Params.Sync { max_delay = 5; slack = 1 }) ()
      in
      ignore (Harness.Scenario.create ~delay:(1, 50) ~params ()))

let test_message_accounting () =
  let scn = async_scenario () in
  let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  run_fiber scn "w" (fun () -> Swsr_regular.write w (int_value 1));
  (* WRITE to 9 servers + 9 acks + NEW_HELP_VAL to 9 servers. *)
  check_int "messages counted" 27 (Harness.Scenario.messages_sent scn);
  check_int "broadcasts counted" 2 (Harness.Scenario.broadcasts scn)

let test_watchdog_diagnoses_deadlock () =
  (* A job parked on a mailbox nobody feeds: the engine drains, and the
     watchdog must name the stuck fiber and what it blocks on instead of
     letting the harness report a silent success. *)
  let scn = async_scenario () in
  let mb = Sim.Mailbox.create () in
  let handles =
    [
      ("starved", Sim.Fiber.spawn ~name:"starved" (fun () ->
           ignore (Sim.Mailbox.recv mb)));
      ("fine", Sim.Fiber.spawn ~name:"fine" (fun () ->
           Harness.Scenario.sleep scn 5));
    ]
  in
  Harness.Scenario.run scn;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Harness.Scenario.stuck_jobs handles with
  | [ s ] ->
    check_true "names the job" (contains s "starved");
    check_true "names the block label" (contains s "Mailbox.recv")
  | other -> Alcotest.failf "expected 1 stuck job, got %d" (List.length other));
  (try
     Harness.Scenario.check_jobs handles;
     Alcotest.fail "check_jobs must raise Deadlock"
   with Harness.Scenario.Deadlock msg ->
     check_true "deadlock message lists the fiber" (contains msg "starved"));
  Sim.Mailbox.push mb ()

let tests =
  [
    case "deterministic replay" test_deterministic_replay;
    case "fault targets registered" test_fault_targets_registered;
    case "port targets registered" test_register_port_targets;
    case "record ok/failure" test_record_success_and_failure;
    case "sleep" test_sleep_advances_time;
    case "sync delay validation" test_sync_delay_validation;
    case "message accounting" test_message_accounting;
    case "watchdog diagnoses deadlock" test_watchdog_diagnoses_deadlock;
  ]
