type 'm entry = { id : int; mutable payload : 'm option }

type 'm t = {
  engine : Engine.t;
  rng : Rng.t;
  delay : Link.sampler;
  mutable loss : float;
  mutable dup : float;
  name : string;
  classify : ('m -> Obs.Event.msg_class) option;
  deliver : 'm -> unit;
  dropped : int ref;
  mutable next_id : int;
  mutable flight : 'm entry list;
}

let create ~engine ~rng ~delay ?(loss = 0.0) ?(dup = 0.0) ?classify ~name
    ~deliver () =
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Lossy_link.create: loss must be in [0,1)";
  if dup < 0.0 || dup >= 1.0 then
    invalid_arg "Lossy_link.create: dup must be in [0,1)";
  {
    engine;
    rng;
    delay;
    loss;
    dup;
    name;
    classify;
    deliver;
    dropped = Obs.Metrics.counter_ref (Engine.metrics engine) "net.dropped";
    next_id = 0;
    flight = [];
  }

let loss t = t.loss

let dup t = t.dup

(* Chaos windows retune a live link; the mark makes the window visible in
   event traces next to the drops it causes. *)
let mark_change t ~knob ~from ~to_ =
  let hub = Engine.hub t.engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Mark
         {
           time = Vtime.to_int (Engine.now t.engine);
           label = Printf.sprintf "link.%s.%s:%g->%g" t.name knob from to_;
         })

let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Lossy_link.set_loss: loss must be in [0,1]";
  if p <> t.loss then begin
    mark_change t ~knob:"loss" ~from:t.loss ~to_:p;
    t.loss <- p
  end

let set_dup t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Lossy_link.set_dup: dup must be in [0,1]";
  if p <> t.dup then begin
    mark_change t ~knob:"dup" ~from:t.dup ~to_:p;
    t.dup <- p
  end

let record_drop t payload =
  incr t.dropped;
  let hub = Engine.hub t.engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Drop
         {
           time = Vtime.to_int (Engine.now t.engine);
           link = t.name;
           cls = (match t.classify with Some f -> Some (f payload) | None -> None);
         })

let rec transmit ?(lossless = false) ?(can_dup = true) t payload =
  Trace.incr (Engine.trace t.engine) "net.pkts";
  if (not lossless) && Rng.float t.rng 1.0 < t.loss then record_drop t payload
  else begin
    let entry = { id = t.next_id; payload = Some payload } in
    t.next_id <- entry.id + 1;
    t.flight <- entry :: t.flight;
    Engine.schedule t.engine ~delay:(t.delay ()) (fun () ->
        t.flight <- List.filter (fun e -> e.id <> entry.id) t.flight;
        match entry.payload with
        | None -> ()
        | Some m ->
          Trace.incr (Engine.trace t.engine) "net.msgs";
          (* Duplication: the packet is delivered once more after another
             (lossless) transit.  A copy never re-duplicates: the medium
             has bounded capacity, so duplicate chains are bounded. *)
          if can_dup && Rng.float t.rng 1.0 < t.dup then
            transmit ~lossless:true ~can_dup:false t m;
          t.deliver m)
  end

let send t m = transmit t m

let inject t m = transmit ~lossless:true t m

let corrupt_in_flight t f =
  List.iter
    (fun e -> match e.payload with None -> () | Some m -> e.payload <- f m)
    t.flight

let in_flight t = List.filter_map (fun e -> e.payload) t.flight
