type t =
  | Silent
  | Garbage
  | Equivocate
  | Frozen
  | Collude
  | Flaky of float
  | Delayed of int
  | Crash of int
  | Crash_recover of { down : int; wipe : Byzantine.Behavior.wipe }

let wipe_to_string = function
  | `Arbitrary -> "arbitrary"
  | `Reset -> "reset"
  | `Keep -> "keep"

let wipe_of_string = function
  | "arbitrary" -> Ok `Arbitrary
  | "reset" -> Ok `Reset
  | "keep" -> Ok `Keep
  | s -> Error (Printf.sprintf "bad wipe kind %S" s)

(* The sequence number sits far outside anything the workloads write, so
   the forged cell can never alias an honest one.  Note that reaching the
   reader is about slot position, not the sequence number: the quorum scan
   walks acknowledgments in slot order, so colluders forge reads only from
   the lowest-numbered slots (scanned before the honest majority). *)
let forged_cell =
  { Registers.Messages.sn = 999_983; v = Registers.Value.str "chaos-forged" }

let default_pool =
  [| Silent; Garbage; Equivocate; Frozen; Flaky 0.5; Delayed 40; Crash 5 |]

let to_behavior adv ~slot = function
  | Silent -> Byzantine.Behavior.silent
  | Garbage -> Byzantine.Behavior.garbage
  | Equivocate -> Byzantine.Behavior.equivocate
  | Collude -> Byzantine.Behavior.collude ~cell:forged_cell
  | Frozen -> Byzantine.Behavior.frozen (Byzantine.Adversary.server adv slot)
  | Flaky p ->
    Byzantine.Behavior.flaky ~drop_probability:p
      (Byzantine.Adversary.server adv slot)
  | Delayed by ->
    Byzantine.Behavior.delayed ~by (Byzantine.Adversary.server adv slot)
  | Crash k ->
    Byzantine.Behavior.crash_after k (Byzantine.Adversary.server adv slot)
  | Crash_recover { down; wipe } ->
    Byzantine.Behavior.crash_recover ~down_for:down ~wipe
      (Byzantine.Adversary.server adv slot)

let to_string = function
  | Silent -> "silent"
  | Garbage -> "garbage"
  | Equivocate -> "equivocate"
  | Frozen -> "frozen"
  | Collude -> "collude"
  | Flaky p -> Printf.sprintf "flaky:%.17g" p
  | Delayed by -> Printf.sprintf "delayed:%d" by
  | Crash k -> Printf.sprintf "crash:%d" k
  | Crash_recover { down; wipe } ->
    Printf.sprintf "crashrec:%d:%s" down (wipe_to_string wipe)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let of_string s =
  let arg prefix =
    let pl = String.length prefix in
    if String.length s > pl && String.equal (String.sub s 0 pl) prefix then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  match s with
  | "silent" -> Ok Silent
  | "garbage" -> Ok Garbage
  | "equivocate" -> Ok Equivocate
  | "frozen" -> Ok Frozen
  | "collude" -> Ok Collude
  | _ -> (
    match arg "flaky:" with
    | Some p -> (
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Flaky p)
      | Some _ | None -> Error (Printf.sprintf "bad flaky probability %S" p))
    | None -> (
      match arg "delayed:" with
      | Some d -> (
        match int_of_string_opt d with
        | Some d when d >= 0 -> Ok (Delayed d)
        | Some _ | None -> Error (Printf.sprintf "bad delay %S" d))
      | None -> (
        match arg "crashrec:" with
        | Some body -> (
          match String.index_opt body ':' with
          | None -> Error (Printf.sprintf "bad crashrec spec %S" body)
          | Some i -> (
            let down = String.sub body 0 i in
            let wipe =
              String.sub body (i + 1) (String.length body - i - 1)
            in
            match int_of_string_opt down with
            | Some down when down >= 0 ->
              let* wipe = wipe_of_string wipe in
              Ok (Crash_recover { down; wipe })
            | Some _ | None ->
              Error (Printf.sprintf "bad crashrec down window %S" down)))
        | None -> (
          match arg "crash:" with
          | Some k -> (
            match int_of_string_opt k with
            | Some k when k >= 0 -> Ok (Crash k)
            | Some _ | None -> Error (Printf.sprintf "bad crash count %S" k))
          | None -> Error (Printf.sprintf "unknown strategy %S" s)))))

let equal a b =
  match (a, b) with
  | Flaky x, Flaky y -> Float.equal x y
  | a, b -> a = b

let pp fmt t = Format.pp_print_string fmt (to_string t)
