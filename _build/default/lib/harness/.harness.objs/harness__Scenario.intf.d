lib/harness/scenario.mli: Byzantine Oracles Registers Sim
