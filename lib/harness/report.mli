(** Plain-text table rendering for the experiment binaries. *)

val table :
  ?out:Format.formatter -> title:string -> header:string list ->
  string list list -> unit
(** Print an aligned table with a title line and a header row. *)

val kv : ?out:Format.formatter -> (string * string) list -> unit
(** Print aligned "key: value" lines. *)

val section : ?out:Format.formatter -> string -> unit
(** Print a section banner. *)

val f1 : float -> string
(** One-decimal float. *)

val pct : int -> int -> string
(** [pct num denom] as "x/y (z%)"; a zero denominator renders as
    "0/0 (—)" rather than a division artifact. *)

val json_kv : (string * string) list -> Obs.Json.t
(** String pairs as a JSON object, for the [extra] section of run
    reports. *)
