type event = { time : Vtime.t; seq : int; label : string; action : unit -> unit }

type ready_event = { r_time : Vtime.t; r_seq : int; r_label : string }

type t = {
  mutable clock : Vtime.t;
  mutable next_seq : int;
  queue : event Heap.t;
  rng : Rng.t;
  trace : Trace.t;
}

let compare_event a b =
  let c = Vtime.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?trace ~rng () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  { clock = Vtime.zero; next_seq = 0; queue = Heap.create ~cmp:compare_event; rng; trace }

let now t = t.clock

let rng t = t.rng

let trace t = t.trace

let metrics t = Trace.metrics t.trace

let hub t = Trace.hub t.trace

let spans t = Trace.spans t.trace

let schedule_at ?(label = "") t time action =
  let time = Vtime.max time t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; label; action }

let schedule ?label t ~delay action =
  schedule_at ?label t (Vtime.add t.clock (max delay 0)) action

(* The single place an event is consumed: run, step and fire all funnel
   through here, so they cannot disagree on clock handling. *)
let fire_event t ev =
  t.clock <- Vtime.max t.clock ev.time;
  ev.action ()

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    fire_event t ev;
    true

let run ?until ?(max_events = max_int) t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue && !fired < max_events do
    match Heap.pop t.queue with
    | None -> continue := false
    | Some ev ->
      let past_deadline =
        match until with Some u -> Vtime.( < ) u ev.time | None -> false
      in
      if past_deadline then begin
        (* Not consumed: push it back.  The heap orders by (time, seq)
           and the event keeps its original seq, so the order observed
           by a later run/step is exactly as if it had never moved. *)
        Heap.push t.queue ev;
        continue := false
      end
      else begin
        incr fired;
        fire_event t ev
      end
  done;
  match until with
  | Some u when Vtime.( < ) t.clock u && !fired < max_events -> t.clock <- u
  | _ -> ()

let ready t =
  let acc = ref [] in
  Heap.iter_unordered t.queue (fun ev ->
      acc := { r_time = ev.time; r_seq = ev.seq; r_label = ev.label } :: !acc);
  List.sort
    (fun a b ->
      let c = Vtime.compare a.r_time b.r_time in
      if c <> 0 then c else Int.compare a.r_seq b.r_seq)
    !acc

let fire t ~seq =
  match Heap.take t.queue (fun ev -> ev.seq = seq) with
  | None -> false
  | Some ev ->
    fire_event t ev;
    true

let advance_to t time = if Vtime.( < ) t.clock time then t.clock <- time

let pending t = Heap.length t.queue

let quiescent t = Heap.is_empty t.queue
