(** Operation spans: typed [Op_invoke]/[Op_return] event pairs plus a
    latency histogram per (register class, operation).

    A client resolves one {!probe} per operation kind at construction
    time — the histogram lookup happens once, so the per-operation cost
    is one id bump, two [Vtime] reads and a histogram observe (plus
    event emission when a sink is attached).  Composite registers (SWMR
    over SWSR, MWMR over SWMR, KV over MWMR) each carry their own probes
    under distinct [reg] labels, so a single top-level operation shows
    up once per layer it crosses. *)

type probe

type span

val probe :
  engine:Sim.Engine.t -> proc:string -> reg:string -> Obs.Event.op_kind -> probe
(** [reg] names the register class (["swsr_regular"], ["swsr_atomic"],
    ["swmr"], ["swmr_wb"], ["mwmr"], ["kv"]); [proc] the invoking
    process (e.g. ["c0"]).  The latency histogram is
    ["op.<reg>.<read|write>"]. *)

val start : ?parent:Obs.Trace_ctx.span -> probe -> span
(** Open an operation span.  Without [parent] the operation starts a
    fresh causal tree (the normal top-level case); composite registers
    pass the enclosing layer's context so one user-level operation stays
    a single tree across layers. *)

val ctx : span -> Obs.Trace_ctx.span
(** The causal context of an open operation; pass it to
    [Net.ss_broadcast ?span] so the round trips parent under it. *)

val finish : ?ok:bool -> probe -> span -> unit
(** [ok] defaults to [true]; pass [false] for operations that abort
    (e.g. an MWMR write losing its epoch race). *)
