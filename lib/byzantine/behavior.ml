open Registers

type ctx = { net : Net.t; server_id : int; rng : Sim.Rng.t }

type t = ctx -> Messages.server_envelope -> unit

let silent _ctx _env = ()

let reply ctx (env : Messages.server_envelope) body =
  (* Even a Byzantine answer is causally a response to the request it
     fakes an answer for: keep it in the operation's tree so traces show
     which adversarial replies a client consumed. *)
  Net.reply ~parent:env.span ctx.net ~server:ctx.server_id ~client:env.client
    body ~round:env.round

let honest srv ctx (env : Messages.server_envelope) =
  match Server.handle srv env with
  | None -> ()
  | Some body -> reply ctx env body

type wipe = [ `Arbitrary | `Reset | `Keep ]

let apply_wipe wipe srv rng =
  match wipe with
  | `Arbitrary -> Server.corrupt srv rng
  | `Reset -> Server.reset srv
  | `Keep -> ()

let crash_recover ~down_for ~wipe srv =
  (* The down window starts at the first delivery the crashed slot would
     have received (a behavior only observes deliveries); messages during
     the window are dropped.  The first delivery at or after the recovery
     instant finds the server back up over wiped state — recovery is a
     transient fault by construction. *)
  let recover_at = ref None in
  let up = ref false in
  fun ctx env ->
    if !up then honest srv ctx env
    else begin
      let now = Sim.Engine.now (Net.engine ctx.net) in
      let deadline =
        match !recover_at with
        | Some d -> d
        | None ->
          let d = Sim.Vtime.add now down_for in
          recover_at := Some d;
          d
      in
      if Sim.Vtime.to_int now >= Sim.Vtime.to_int deadline then begin
        apply_wipe wipe srv ctx.rng;
        up := true;
        honest srv ctx env
      end
    end

let crash_after k srv =
  let remaining = ref k in
  fun ctx env ->
    if !remaining > 0 then begin
      decr remaining;
      honest srv ctx env
    end

let random_help rng =
  if Sim.Rng.bool rng then None else Some (Messages.arbitrary_cell rng)

let garbage ctx env =
  let body =
    if Sim.Rng.bool ctx.rng then Messages.Ack_write (random_help ctx.rng)
    else
      Messages.Ack_read (Messages.arbitrary_cell ctx.rng, random_help ctx.rng)
  in
  reply ctx env body

let frozen srv ctx (env : Messages.server_envelope) =
  (* Answer from the automaton's captured state without ever updating it:
     acknowledge writes (so the writer is not slowed down) and reads, but
     ignore the payloads. *)
  let i = Server.instance srv env.inst in
  match env.body with
  | Messages.Write _ -> reply ctx env (Messages.Ack_write i.Server.helping)
  | Messages.New_help _ -> ()
  | Messages.Read _ ->
    reply ctx env (Messages.Ack_read (i.Server.last_val, i.Server.helping))

let equivocate ctx (env : Messages.server_envelope) =
  (* A well-formed answer whose value depends on who is asking and who is
     answering, so that several equivocators never accidentally agree. *)
  let skew =
    {
      Messages.sn = (env.client * 31) + ctx.server_id + 1;
      v = Value.int ((env.client * 1000) + ctx.server_id);
    }
  in
  let body =
    match env.body with
    | Messages.Write _ | Messages.New_help _ -> Messages.Ack_write (Some skew)
    | Messages.Read _ -> Messages.Ack_read (skew, Some skew)
  in
  reply ctx env body

let collude ~cell ctx (env : Messages.server_envelope) =
  let body =
    match env.body with
    | Messages.Write _ | Messages.New_help _ -> Messages.Ack_write (Some cell)
    | Messages.Read _ -> Messages.Ack_read (cell, Some cell)
  in
  reply ctx env body

let flaky ~drop_probability srv ctx env =
  if Sim.Rng.float ctx.rng 1.0 >= drop_probability then honest srv ctx env

let delayed ~by srv ctx env =
  Sim.Engine.schedule (Net.engine ctx.net) ~delay:by (fun () ->
      honest srv ctx env)
