(* E9 — Cost model: messages and ss-broadcasts per operation for each
   register class, as n grows.  The paper's constructions trade
   resilience for linear-in-n message complexity per operation; the
   SWMR/MWMR compositions multiply it by the number of copies. *)

open Registers

let measure ~seed ~n ~f which =
  let params = Common.async_params ~n ~f in
  let scn = Common.scenario ~seed ~params () in
  let ops = 20 in
  (match which with
  | `Swsr_regular ->
    let w, r = Common.regular_pair scn in
    Common.run_jobs scn
      [
        ( "wr",
          fun () ->
            for i = 1 to ops do
              Swsr_regular.write w (Value.int i);
              ignore (Swsr_regular.read r)
            done );
      ]
  | `Swsr_atomic ->
    let w, r = Common.atomic_pair scn in
    Common.run_jobs scn
      [
        ( "wr",
          fun () ->
            for i = 1 to ops do
              Swsr_atomic.write w (Value.int i);
              ignore (Swsr_atomic.read r)
            done );
      ]
  | `Swmr ->
    let w =
      Swmr.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~base_inst:0
        ~readers:3 ()
    in
    let r =
      Swmr.reader ~net:scn.Harness.Scenario.net ~client_id:200 ~base_inst:0
        ~reader_index:0 ()
    in
    Common.run_jobs scn
      [
        ( "wr",
          fun () ->
            for i = 1 to ops do
              Swmr.write w (Value.int i);
              ignore (Swmr.read r)
            done );
      ]
  | `Mwmr ->
    let cfg = Mwmr.default_config ~m:3 in
    let p0 = Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:0 ~client_id:300 in
    let p1 = Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:1 ~client_id:301 in
    Common.run_jobs scn
      [
        ( "wr",
          fun () ->
            for i = 1 to ops do
              Mwmr.write p0 (Value.int i);
              ignore (Mwmr.read p1)
            done );
      ]);
  Common.observe_scn scn;
  let total_ops = 2 * ops in
  ( float_of_int (Harness.Scenario.messages_sent scn) /. float_of_int total_ops,
    float_of_int (Harness.Scenario.broadcasts scn) /. float_of_int total_ops )

let run ~seed =
  Harness.Report.section "E9: message cost per operation";
  let classes =
    [
      ("SWSR regular (Fig 2)", `Swsr_regular);
      ("SWSR atomic (Fig 3)", `Swsr_atomic);
      ("SWMR (3 readers)", `Swmr);
      ("MWMR (m=3)", `Mwmr);
    ]
  in
  let rows =
    List.concat_map
      (fun (label, which) ->
        List.map
          (fun (n, f) ->
            let msgs, bcasts = measure ~seed ~n ~f which in
            [
              label;
              string_of_int n;
              Harness.Report.f1 msgs;
              Harness.Report.f1 bcasts;
            ])
          [ (9, 1); (17, 2); (25, 3) ])
      classes
  in
  Harness.Report.table ~title:"alternating write/read, 40 ops per cell"
    ~header:[ "register"; "n"; "messages/op"; "ss-broadcasts/op" ]
    rows;
  print_endline
    "  Shape: O(n) messages per SWSR operation; the SWMR writer multiplies\n\
    \  by its reader count, and each MWMR operation pays m swmr_reads plus\n\
    \  one swmr_write."
