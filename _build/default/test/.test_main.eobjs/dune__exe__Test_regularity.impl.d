test/test_regularity.ml: History List Oracles Registers Regularity Sim Util
