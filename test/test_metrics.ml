open Util
open Harness

let test_summary_basic () =
  let s = Metrics.summary [ 1.0; 2.0; 3.0; 4.0 ] in
  check_int "count" 4 s.Metrics.count;
  Alcotest.(check (float 0.001)) "mean" 2.5 s.Metrics.mean;
  Alcotest.(check (float 0.001)) "min" 1.0 s.Metrics.min;
  Alcotest.(check (float 0.001)) "p50" 2.0 s.Metrics.p50;
  Alcotest.(check (float 0.001)) "p99" 4.0 s.Metrics.p99;
  Alcotest.(check (float 0.001)) "max" 4.0 s.Metrics.max

let test_summary_singleton () =
  let s = Metrics.summary [ 7.0 ] in
  Alcotest.(check (float 0.001)) "all stats" 7.0 s.Metrics.p95

let test_summary_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.summary: empty sample")
    (fun () -> ignore (Metrics.summary []));
  check_true "opt none" (Metrics.summary_opt [] = None)

let test_percentiles_unordered_input () =
  let s = Metrics.summary [ 9.0; 1.0; 5.0; 3.0; 7.0 ] in
  Alcotest.(check (float 0.001)) "min" 1.0 s.Metrics.min;
  Alcotest.(check (float 0.001)) "median" 5.0 s.Metrics.p50;
  Alcotest.(check (float 0.001)) "p95 ~ max" 9.0 s.Metrics.p95;
  Alcotest.(check (float 0.001)) "p99 ~ max" 9.0 s.Metrics.p99

let test_summary_skewed () =
  (* A heavy tail: p50 stays low while p99 picks up the outlier. *)
  let xs = List.init 98 (fun _ -> 1.0) @ [ 1000.0; 1000.0 ] in
  let s = Metrics.summary xs in
  Alcotest.(check (float 0.001)) "p50 low" 1.0 s.Metrics.p50;
  Alcotest.(check (float 0.001)) "p99 tail" 1000.0 s.Metrics.p99;
  Alcotest.(check (float 0.001)) "min floor" 1.0 s.Metrics.min

let mk_history () =
  let h = Oracles.History.create () in
  let t = Sim.Vtime.of_int in
  Oracles.History.record h ~proc:"w" ~kind:Oracles.History.Write ~inv:(t 0)
    ~resp:(t 10) (int_value 1);
  Oracles.History.record h ~proc:"r" ~kind:Oracles.History.Read ~inv:(t 20)
    ~resp:(t 25) (int_value 1);
  Oracles.History.record h ~proc:"r" ~kind:Oracles.History.Read ~inv:(t 30)
    ~resp:(t 45) ~ok:false Registers.Value.bot;
  h

let test_latencies () =
  let h = mk_history () in
  check_true "write latency" (Metrics.latencies ~kind:Oracles.History.Write h = [ 10.0 ]);
  check_true "only ok reads" (Metrics.latencies ~kind:Oracles.History.Read h = [ 5.0 ])

let test_read_counts () =
  let h = mk_history () in
  check_int "ok reads" 1 (Metrics.ok_reads h);
  check_int "failed reads" 1 (Metrics.failed_reads h)

let test_stabilization_index () =
  let h = Oracles.History.create () in
  let t = Sim.Vtime.of_int in
  List.iteri
    (fun i v ->
      Oracles.History.record h ~proc:"r" ~kind:Oracles.History.Read
        ~inv:(t (i * 10))
        ~resp:(t ((i * 10) + 5))
        (int_value v))
    [ 99; 98; 1; 1; 1 ];
  let valid (o : Oracles.History.op) =
    Registers.Value.equal o.Oracles.History.value (int_value 1)
  in
  check_true "index of first clean suffix"
    (Metrics.stabilization_read_index ~valid h = Some 2)

let test_stabilization_none_cases () =
  let valid _ = true in
  check_true "empty history"
    (Metrics.stabilization_read_index ~valid (Oracles.History.create ()) = None);
  let h = Oracles.History.create () in
  Oracles.History.record h ~proc:"r" ~kind:Oracles.History.Read
    ~inv:Sim.Vtime.zero ~resp:Sim.Vtime.zero (int_value 1);
  check_true "all clean -> 0"
    (Metrics.stabilization_read_index ~valid h = Some 0);
  let invalid _ = false in
  check_true "never clean -> None"
    (Metrics.stabilization_read_index ~valid:invalid h = None)

let tests =
  [
    case "summary basic" test_summary_basic;
    case "summary singleton" test_summary_singleton;
    case "summary empty" test_summary_empty_rejected;
    case "percentiles" test_percentiles_unordered_input;
    case "summary skewed tail" test_summary_skewed;
    case "latencies" test_latencies;
    case "read counts" test_read_counts;
    case "stabilization index" test_stabilization_index;
    case "stabilization corner cases" test_stabilization_none_cases;
  ]
