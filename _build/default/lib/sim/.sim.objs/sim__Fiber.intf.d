lib/sim/fiber.mli:
