lib/harness/swmr_inversion.mli: Registers
