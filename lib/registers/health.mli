(** Per-server responsiveness tracking for one client port.

    Every deadline-bounded collection attempt reports, per server slot,
    whether an acknowledgment arrived before the deadline.  A slot that
    misses [threshold] consecutive attempts becomes a {e suspect}: retry
    attempts stop waiting for it (beyond the read quorum) and it is named
    in any {!Outcome.reason}.  A single answer clears the suspicion — this
    is a failure {e detector} in the eventual style: wrong suspicions are
    possible and harmless, they only shorten waits.  Purely deterministic:
    state is a function of the acknowledgment schedule. *)

type t

val create : ?threshold:int -> n:int -> unit -> t
(** [threshold] consecutive missed attempts before a slot is suspected
    (default 2). *)

val n : t -> int

val note : t -> server:int -> answered:bool -> unit
(** Record one attempt's evidence for a slot.  An answer resets the miss
    count; out-of-range slots are ignored. *)

val misses : t -> int -> int
(** Current consecutive-miss count of a slot. *)

val suspected : t -> int -> bool

val suspects : t -> int list
(** Suspected slots, ascending. *)

val responsive : t -> int
(** [n] minus the number of suspects. *)

val forget : t -> unit
(** Clear all evidence (e.g. after a transient fault wipes the client). *)
