open Util
open Oracles

let t i = Sim.Vtime.of_int i

let w h inv resp v =
  History.record h ~proc:"writer" ~kind:History.Write ~inv:(t inv)
    ~resp:(t resp) (int_value v)

let r h inv resp v =
  History.record h ~proc:"reader" ~kind:History.Read ~inv:(t inv)
    ~resp:(t resp) (int_value v)

let test_clean_history () =
  let h = History.create () in
  w h 0 10 1;
  r h 15 20 1;
  w h 25 35 2;
  r h 40 45 2;
  check_true "clean" (Atomicity.Sw.is_clean (Atomicity.Sw.check h))

let test_inversion_detected () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 100 2 (* long write, overlapping both reads *);
  r h 30 40 2 (* sees the new value *);
  r h 50 60 1 (* regresses: new/old inversion *);
  let report = Atomicity.Sw.check h in
  check_int "one inversion" 1 (List.length report.Atomicity.Sw.inversions);
  check_true "regularity alone is satisfied"
    (Regularity.is_clean report.Atomicity.Sw.regularity)

let test_concurrent_reads_may_differ () =
  (* Two overlapping reads may straddle a write without being inverted. *)
  let h = History.create () in
  w h 0 10 1;
  w h 20 100 2;
  r h 30 60 2;
  r h 40 70 1;
  (* The reads overlap each other: no real-time order, no inversion. *)
  check_true "no inversion between concurrent reads"
    ((Atomicity.Sw.check h).Atomicity.Sw.inversions = [])

let test_malformed_overlapping_writes () =
  let h = History.create () in
  w h 0 20 1;
  w h 10 30 2;
  let report = Atomicity.Sw.check h in
  check_true "flagged" (report.Atomicity.Sw.malformed <> [])

let test_malformed_duplicate_values () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 30 1;
  let report = Atomicity.Sw.check h in
  check_true "duplicate values flagged" (report.Atomicity.Sw.malformed <> [])

let test_cutoff_applies () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 100 2;
  r h 30 40 2;
  r h 50 60 1;
  let report = Atomicity.Sw.check ~cutoff:(t 45) h in
  check_true "pre-cutoff read excluded from inversion pairs"
    (report.Atomicity.Sw.inversions = [])

(* --- multi-writer checker --- *)

let genesis = Registers.Epoch.genesis ~k:3

let next = Registers.Epoch.next_epoch ~k:3 [ genesis ]

let mw h proc inv resp v ts =
  History.record h ~proc ~kind:History.Write ~inv:(t inv) ~resp:(t resp)
    ~ts (int_value v)

let mr h proc inv resp v ts =
  History.record h ~proc ~kind:History.Read ~inv:(t inv) ~resp:(t resp) ~ts
    (int_value v)

let test_mw_clean () =
  let h = History.create () in
  mw h "p0" 0 10 1 (genesis, 1, 0);
  mw h "p1" 20 30 2 (genesis, 2, 1);
  mr h "p2" 40 50 2 (genesis, 2, 1);
  check_true "clean"
    (Atomicity.Mw.is_clean (Atomicity.Mw.check ~tie:`Min_index h))

let test_mw_write_order_violation () =
  let h = History.create () in
  mw h "p0" 0 10 1 (genesis, 5, 0);
  mw h "p1" 20 30 2 (genesis, 2, 1) (* later write, smaller timestamp *);
  let report = Atomicity.Mw.check ~tie:`Min_index h in
  check_true "write-order violation"
    (List.exists
       (fun (v : Atomicity.Mw.violation) -> v.kind = "write-order")
       report.Atomicity.Mw.violations)

let test_mw_stale_read_violation () =
  let h = History.create () in
  mw h "p0" 0 10 1 (genesis, 1, 0);
  mw h "p1" 20 30 2 (genesis, 2, 1);
  mr h "p2" 40 50 1 (genesis, 1, 0) (* older than a completed write *);
  let report = Atomicity.Mw.check ~tie:`Min_index h in
  check_true "stale read flagged"
    (List.exists
       (fun (v : Atomicity.Mw.violation) -> v.kind = "stale-read")
       report.Atomicity.Mw.violations)

let test_mw_read_inversion () =
  let h = History.create () in
  mw h "p0" 0 100 1 (genesis, 1, 0);
  mw h "p1" 0 100 2 (genesis, 2, 1);
  mr h "p2" 10 20 2 (genesis, 2, 1);
  mr h "p3" 30 40 1 (genesis, 1, 0);
  let report = Atomicity.Mw.check ~tie:`Min_index h in
  check_true "read inversion flagged"
    (List.exists
       (fun (v : Atomicity.Mw.violation) -> v.kind = "read-inversion")
       report.Atomicity.Mw.violations)

let test_mw_epoch_order_respected () =
  let h = History.create () in
  mw h "p0" 0 10 1 (genesis, 99, 0);
  mw h "p1" 20 30 2 (next, 0, 1) (* newer epoch beats any seq *);
  mr h "p2" 40 50 2 (next, 0, 1);
  check_true "epoch dominates seq"
    (Atomicity.Mw.is_clean (Atomicity.Mw.check ~tie:`Min_index h))

let test_mw_incomparable_epochs_flagged () =
  let x = { Registers.Epoch.s = 1; a = [ 2; 7; 8 ] } in
  let y = { Registers.Epoch.s = 2; a = [ 1; 9; 10 ] } in
  let h = History.create () in
  mw h "p0" 0 10 1 (x, 1, 0);
  mw h "p1" 20 30 2 (y, 1, 1);
  let report = Atomicity.Mw.check ~tie:`Min_index h in
  check_true "incomparability reported"
    (List.exists
       (fun (v : Atomicity.Mw.violation) -> v.kind = "incomparable-epochs")
       report.Atomicity.Mw.violations)

let test_mw_tie_break_direction () =
  (* Same (epoch, seq) from p0 and p5; a later read of p0's value is an
     inversion under Max_index (p5's write is newer) but fine under
     Min_index (p0's is newer). *)
  let h = History.create () in
  mw h "p0" 0 100 1 (genesis, 1, 0);
  mw h "p5" 0 100 2 (genesis, 1, 5);
  mr h "r1" 10 20 2 (genesis, 1, 5);
  mr h "r2" 30 40 1 (genesis, 1, 0);
  let max_report = Atomicity.Mw.check ~tie:`Max_index h in
  check_true "inversion under Max_index"
    (not (Atomicity.Mw.is_clean max_report));
  (* Under Min_index the r1 -> r2 pair goes from (1,5) DOWN to (1,0)?  No:
     under Min_index, (1,0) is the NEWER stamp, so reading it second is
     monotone. *)
  let min_report = Atomicity.Mw.check ~tie:`Min_index h in
  check_true "monotone under Min_index"
    (not
       (List.exists
          (fun (v : Atomicity.Mw.violation) -> v.kind = "read-inversion")
          min_report.Atomicity.Mw.violations))

let tests =
  [
    case "clean history" test_clean_history;
    case "inversion detected" test_inversion_detected;
    case "concurrent reads may differ" test_concurrent_reads_may_differ;
    case "overlapping writes malformed" test_malformed_overlapping_writes;
    case "duplicate values malformed" test_malformed_duplicate_values;
    case "cutoff applies" test_cutoff_applies;
    case "mw clean" test_mw_clean;
    case "mw write-order violation" test_mw_write_order_violation;
    case "mw stale read" test_mw_stale_read_violation;
    case "mw read inversion" test_mw_read_inversion;
    case "mw epoch dominates seq" test_mw_epoch_order_respected;
    case "mw incomparable epochs" test_mw_incomparable_epochs_flagged;
    case "mw tie-break direction" test_mw_tie_break_direction;
  ]
