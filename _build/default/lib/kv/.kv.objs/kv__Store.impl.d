lib/kv/store.ml: List Registers String
