open Util
open Registers

let setup ?(seed = 7) ?(n = 9) ?(f = 1) ?modulus () =
  let scn = async_scenario ~seed ~n ~f () in
  let w =
    Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0
      ?modulus ()
  in
  let r =
    Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0
      ?modulus ()
  in
  (scn, w, r)

let concurrent_workload ?(writes = 30) ?(reads = 30) ?(gap_hi = 20) scn w r =
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_atomic.write w)
            ~count:writes ~gap:(Harness.Workload.gap 0 gap_hi) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_atomic.read r)
            ~count:reads ~gap:(Harness.Workload.gap 0 gap_hi) () );
    ]

let first_write_completion scn =
  match Oracles.History.writes scn.Harness.Scenario.history with
  | w :: _ -> w.Oracles.History.resp
  | [] -> Alcotest.fail "no writes recorded"

let check_atomic ?cutoff scn =
  let cutoff =
    match cutoff with Some c -> c | None -> first_write_completion scn
  in
  let report = Oracles.Atomicity.Sw.check ~cutoff scn.Harness.Scenario.history in
  if not (Oracles.Atomicity.Sw.is_clean report) then
    Alcotest.failf "%a" Oracles.Atomicity.Sw.pp report

let test_write_then_read () =
  let scn, w, r = setup () in
  let got = ref None in
  run_fiber scn "wr" (fun () ->
      Swsr_atomic.write w (int_value 42);
      got := Swsr_atomic.read r);
  Alcotest.(check (option value)) "read back" (Some (int_value 42)) !got;
  check_int "wsn advanced" 1 (Swsr_atomic.wsn w);
  check_int "pwsn tracked" 1 (Swsr_atomic.pwsn r)

let test_atomic_under_concurrency () =
  let scn, w, r = setup () in
  concurrent_workload scn w r;
  check_atomic scn

let test_atomic_across_seeds () =
  for seed = 1 to 25 do
    let scn, w, r = setup ~seed () in
    concurrent_workload ~writes:15 ~reads:15 ~gap_hi:8 scn w r;
    check_atomic scn
  done

let test_atomic_with_byzantine_mix () =
  let scn, w, r = setup ~n:17 ~f:2 ~seed:3 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 4
    Byzantine.Behavior.garbage;
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 11
    Byzantine.Behavior.equivocate;
  concurrent_workload scn w r;
  check_atomic scn

(* The headline Figure-1 comparison, on the deterministically constructed
   schedule: the regular register inverts, the atomic one does not. *)
let test_new_old_inversion_eliminated () =
  let regular = Harness.Fig1.run `Regular in
  check_true "write(1) really spans both reads"
    regular.Harness.Fig1.write1_pending_during_reads;
  Alcotest.(check (option value)) "regular read1 sees the new value"
    (Some (int_value 1)) regular.Harness.Fig1.read1;
  Alcotest.(check (option value)) "regular read2 regresses to the old value"
    (Some (int_value 0)) regular.Harness.Fig1.read2;
  check_true "regular register inverted" regular.Harness.Fig1.inversion;
  let atomic = Harness.Fig1.run `Atomic in
  check_true "same schedule, write pending"
    atomic.Harness.Fig1.write1_pending_during_reads;
  Alcotest.(check (option value)) "atomic read1" (Some (int_value 1))
    atomic.Harness.Fig1.read1;
  Alcotest.(check (option value)) "atomic read2 holds the line"
    (Some (int_value 1)) atomic.Harness.Fig1.read2;
  check_false "no inversion" atomic.Harness.Fig1.inversion

(* --- bounded sequence numbers / wrap-around (§4) --- *)

let test_wraparound_small_modulus () =
  let scn, w, r = setup ~modulus:11 () in
  (* Far more writes than the modulus: the counter wraps several times but
     reads interleave closely, so >_cd keeps them ordered. *)
  let got = ref [] in
  run_fibers scn
    [
      ( "wr",
        fun () ->
          for i = 1 to 50 do
            Swsr_atomic.write w (int_value i);
            got := Swsr_atomic.read r :: !got
          done );
    ];
  List.iteri
    (fun i v ->
      Alcotest.(check (option value))
        (Printf.sprintf "read %d" i)
        (Some (int_value (50 - i)))
        v)
    !got;
  check_true "counter stayed in range" (Swsr_atomic.wsn w < 11)

let test_reader_corruption_recovers () =
  (* Corrupt the reader's (pwsn, pv) after a write; with a small modulus,
     reads must become permanently correct within one full counter wrap of
     further writes. *)
  let scn, w, r = setup ~modulus:11 ~seed:21 () in
  let tail_reads = ref [] in
  run_fibers scn
    [
      ( "job",
        fun () ->
          Swsr_atomic.write w (int_value 1);
          Swsr_atomic.corrupt_reader r (Harness.Scenario.split_rng scn);
          for i = 2 to 14 do
            Swsr_atomic.write w (int_value i);
            let v = Swsr_atomic.read r in
            if i > 12 then tail_reads := (i, v) :: !tail_reads
          done );
    ];
  List.iter
    (fun (i, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "post-wrap read %d" i)
        (Some (int_value i))
        v)
    !tail_reads

let test_writer_corruption_recovers () =
  let scn, w, r = setup ~modulus:11 ~seed:22 () in
  let tail_reads = ref [] in
  run_fibers scn
    [
      ( "job",
        fun () ->
          for i = 1 to 5 do
            Swsr_atomic.write w (int_value i)
          done;
          Swsr_atomic.corrupt_writer w (Harness.Scenario.split_rng scn);
          for i = 6 to 20 do
            Swsr_atomic.write w (int_value i);
            let v = Swsr_atomic.read r in
            if i > 17 then tail_reads := (i, v) :: !tail_reads
          done );
    ];
  List.iter
    (fun (i, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "post-wrap read %d" i)
        (Some (int_value i))
        v)
    !tail_reads

let test_full_transient_fault_stabilizes () =
  (* Corrupt servers AND client persistent state AND link contents at
     t=300; with a small modulus the register is practically stabilizing:
     after at most one counter wrap of post-fault writes, reads are atomic. *)
  let scn, w, r = setup ~modulus:11 ~seed:23 () in
  Harness.Scenario.register_port scn (Swsr_atomic.writer_port w);
  Harness.Scenario.register_port scn (Swsr_atomic.reader_port r);
  Harness.Scenario.register_atomic_writer scn ~name:"w" w;
  Harness.Scenario.register_atomic_reader scn ~name:"r" r;
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int 300) ~prefix:"";
  concurrent_workload ~writes:60 ~reads:60 ~gap_hi:10 scn w r;
  (* Writes after the fault, in order; stabilization is guaranteed at most
     a full wrap (11 writes) past the fault. *)
  let post_fault_writes =
    Oracles.History.writes scn.Harness.Scenario.history
    |> List.filter (fun (o : Oracles.History.op) ->
           Sim.Vtime.to_int o.Oracles.History.inv >= 300)
  in
  check_true "enough post-fault writes" (List.length post_fault_writes > 14);
  let cutoff = (List.nth post_fault_writes 12).Oracles.History.resp in
  check_atomic ~cutoff scn

let test_inversion_preventions_counted () =
  let scn, w, r = setup ~seed:2 () in
  concurrent_workload ~writes:40 ~reads:40 ~gap_hi:3 scn w r;
  (* The counter is allowed to be zero, but must be consistent with the
     reader having done at least as many loop iterations as reads. *)
  check_true "iterations >= reads" (Swsr_atomic.reader_iterations r >= 40);
  check_true "preventions non-negative" (Swsr_atomic.inversion_preventions r >= 0)

let test_sanity_phase_repairs_worst_case_corruption () =
  (* The lines N2-N7 ablation (experiment E12): with the sanity phase a
     worst-case corrupted (pwsn, pv) is repaired immediately; without it
     the stale value sticks until the bounded counter wraps past it. *)
  let run ~sanity_check =
    let modulus = 101 in
    let scn = async_scenario ~seed:4 () in
    let net = scn.Harness.Scenario.net in
    let w = Swsr_atomic.writer ~net ~client_id:100 ~inst:0 ~modulus () in
    let r =
      Swsr_atomic.reader ~net ~client_id:101 ~inst:0 ~modulus ~sanity_check ()
    in
    let stale = ref 0 in
    run_fibers scn
      [
        ( "wr",
          fun () ->
            for i = 1 to 5 do
              Swsr_atomic.write w (int_value i)
            done;
            Swsr_atomic.corrupt_reader_to r ~pwsn:30 ~pv:(Value.str "stale");
            for i = 6 to 40 do
              Swsr_atomic.write w (int_value i);
              match Swsr_atomic.read r with
              | Some v when Value.equal v (int_value i) -> ()
              | Some _ | None -> incr stale
            done );
      ];
    !stale
  in
  check_int "sanity phase repairs instantly" 0 (run ~sanity_check:true);
  check_true "ablated reader sticks on the stale value until the wrap"
    (run ~sanity_check:false > 15)

let tests =
  [
    case "write then read" test_write_then_read;
    case "atomic under concurrency" test_atomic_under_concurrency;
    case "atomic across seeds" test_atomic_across_seeds;
    case "atomic with byzantine mix" test_atomic_with_byzantine_mix;
    case "new/old inversion eliminated (Fig 1)" test_new_old_inversion_eliminated;
    case "wrap-around, modulus 11" test_wraparound_small_modulus;
    case "reader corruption recovers" test_reader_corruption_recovers;
    case "writer corruption recovers" test_writer_corruption_recovers;
    case "full transient fault stabilizes (Thm 3)" test_full_transient_fault_stabilizes;
    case "prevention counter sane" test_inversion_preventions_counted;
    case "sanity phase vs worst-case corruption (E12)"
      test_sanity_phase_repairs_worst_case_corruption;
  ]
