bin/exp_e3.ml: Byzantine Common Harness List Printf Registers Swsr_regular Value
