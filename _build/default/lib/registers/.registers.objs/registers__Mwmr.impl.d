lib/registers/mwmr.ml: Array Epoch List Seqnum Swmr Value
