lib/registers/net.mli: Messages Params Server Sim
