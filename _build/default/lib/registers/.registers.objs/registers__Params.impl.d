lib/registers/params.ml: Format Printf
