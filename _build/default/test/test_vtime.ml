open Util

let test_origin () =
  check_int "zero is 0" 0 (Sim.Vtime.to_int Sim.Vtime.zero);
  check_int "of_int/to_int" 42 (Sim.Vtime.to_int (Sim.Vtime.of_int 42))

let test_negative_rejected () =
  Alcotest.check_raises "negative time"
    (Invalid_argument "Vtime.of_int: negative time") (fun () ->
      ignore (Sim.Vtime.of_int (-1)))

let test_arithmetic () =
  let t = Sim.Vtime.of_int 10 in
  check_int "add" 15 (Sim.Vtime.to_int (Sim.Vtime.add t 5));
  check_int "diff" 5 (Sim.Vtime.diff (Sim.Vtime.of_int 15) t);
  check_int "negative diff" (-5) (Sim.Vtime.diff t (Sim.Vtime.of_int 15))

let test_ordering () =
  let a = Sim.Vtime.of_int 3 and b = Sim.Vtime.of_int 7 in
  check_true "lt" Sim.Vtime.(a < b);
  check_false "not lt" Sim.Vtime.(b < a);
  check_true "le refl" Sim.Vtime.(a <= a);
  check_int "compare" (-1) (compare (Sim.Vtime.compare a b) 0);
  check_int "max" 7 (Sim.Vtime.to_int (Sim.Vtime.max a b))

let tests =
  [
    case "origin" test_origin;
    case "negative rejected" test_negative_rejected;
    case "arithmetic" test_arithmetic;
    case "ordering" test_ordering;
  ]
