open Effect
open Effect.Deep

type status = Running | Done | Failed of exn

type handle = { mutable status : status; name : string }

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = perform (Suspend register)

let spawn ?(name = "fiber") f =
  let h = { status = Running; name } in
  let handler =
    {
      retc = (fun () -> h.status <- Done);
      exnc =
        (fun e ->
          h.status <- Failed e;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun v -> continue k v))
          | _ -> None);
    }
  in
  match_with f () handler;
  h

let status h = h.status

let name h = h.name
