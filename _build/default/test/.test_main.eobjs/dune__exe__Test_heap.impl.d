test/test_heap.ml: Int List QCheck Sim Util
