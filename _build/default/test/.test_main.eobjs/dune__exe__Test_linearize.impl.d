test/test_linearize.ml: Alcotest Atomicity Harness History Linearize Oracles Printf Registers Sim Util
