(** Workload generators.

    Jobs are plain functions meant to be spawned as fibers; they drive a
    register's operations with configurable inter-operation gaps and record
    everything in the scenario history.  Written values are made pairwise
    distinct ({!value_for}) so the oracles can map reads back to writes. *)

type gap = { lo : int; hi : int }
(** Uniform inter-operation think time, in ticks. [{lo = 0; hi = 0}] is a
    back-to-back workload. *)

val gap : int -> int -> gap

val value_for : writer:int -> int -> Registers.Value.t
(** [value_for ~writer k] is a value unique across writers and operation
    indices (namespaced integers). *)

val writer_job :
  Scenario.t ->
  ?proc:string ->
  ?writer_id:int ->
  write:(Registers.Value.t -> unit) ->
  count:int ->
  gap:gap ->
  unit ->
  unit
(** Perform [count] writes of distinct values with sampled gaps. *)

val reader_job :
  Scenario.t ->
  ?proc:string ->
  read:(unit -> Registers.Value.t option) ->
  count:int ->
  gap:gap ->
  unit ->
  unit

val mwmr_job :
  Scenario.t ->
  proc:string ->
  process:Registers.Mwmr.process ->
  ops:int ->
  write_ratio:float ->
  gap:gap ->
  ?max_iterations:int ->
  unit ->
  unit
(** A process mixing mwmr reads and writes ([write_ratio] of the ops are
    writes), recording MWMR timestamps for the {!Oracles.Atomicity.Mw}
    checker. *)
