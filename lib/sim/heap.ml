type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

(* A removal shrinks [size] but leaves the old tail slot holding a live
   pointer the heap no longer owns, pinning that element for the GC until
   the slot happens to be overwritten.  The heap is polymorphic, so there
   is no dummy value to park there; instead duplicate a reference the
   heap legitimately holds anyway (the root), or drop the whole array
   once empty. *)
let release_tail_slot t =
  if t.size = 0 then t.data <- [||] else t.data.(t.size) <- t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let min = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    release_tail_slot t;
    Some min
  end

let take t pred =
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < t.size do
    if pred t.data.(!i) then found := !i;
    incr i
  done;
  if !found < 0 then None
  else begin
    let idx = !found in
    let x = t.data.(idx) in
    t.size <- t.size - 1;
    if idx < t.size then begin
      t.data.(idx) <- t.data.(t.size);
      (* The relocated element may violate the heap property in either
         direction relative to its new neighbourhood; restore both ways. *)
      sift_down t idx;
      sift_up t idx
    end;
    release_tail_slot t;
    Some x
  end

let clear t =
  t.size <- 0;
  t.data <- [||]

let iter_unordered t f =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done
