lib/registers/params.mli: Format Sim
