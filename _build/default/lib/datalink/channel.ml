type 'p t = {
  rng : Sim.Rng.t;
  cap : int;
  loss : float;
  dup : float;
  mutable transit : 'p list;
}

let create ~rng ~cap ?(loss = 0.1) ?(dup = 0.1) () =
  if cap <= 0 then invalid_arg "Channel.create: capacity must be positive";
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Channel.create: loss must be in [0,1)";
  if dup < 0.0 || dup >= 1.0 then
    invalid_arg "Channel.create: dup must be in [0,1)";
  { rng; cap; loss; dup; transit = [] }

let preload t packets =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | p :: rest -> p :: take (k - 1) rest
  in
  t.transit <- take t.cap packets

let send t p =
  if List.length t.transit < t.cap && Sim.Rng.float t.rng 1.0 >= t.loss then
    t.transit <- t.transit @ [ p ]

let deliver t =
  match t.transit with
  | [] -> None
  | transit ->
    let i = Sim.Rng.int t.rng (List.length transit) in
    let p = List.nth transit i in
    let keep_copy = Sim.Rng.float t.rng 1.0 < t.dup in
    if not keep_copy then
      t.transit <- List.filteri (fun j _ -> j <> i) transit;
    Some p

let size t = List.length t.transit

let capacity t = t.cap

let contents t = t.transit
