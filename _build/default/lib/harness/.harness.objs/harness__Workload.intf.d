lib/harness/workload.mli: Registers Scenario
