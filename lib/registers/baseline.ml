module Nonstab = struct
  type writer = {
    net : Net.t;
    port : Net.client_port;
    inst : int;
    mutable sn : int;
  }

  type reader = { net : Net.t; port : Net.client_port; inst : int }

  let install_servers ~net servers =
    Array.iter
      (fun srv ->
        let s = Server.id srv in
        (Net.endpoints net).(s).Net.on_deliver <-
          (fun (env : Messages.server_envelope) ->
            let i = Server.instance srv env.inst in
            match env.body with
            | Messages.Write c ->
              (* Classical monotone-timestamp update rule. *)
              if c.Messages.sn > i.Server.last_val.Messages.sn then
                i.Server.last_val <- c;
              Net.reply ~parent:env.span net ~server:s ~client:env.client
                (Messages.Ack_write None) ~round:env.round
            | Messages.New_help _ -> ()
            | Messages.Read _ ->
              Net.reply ~parent:env.span net ~server:s ~client:env.client
                (Messages.Ack_read (i.Server.last_val, None))
                ~round:env.round))
      servers

  let writer ~net ~client_id ~inst =
    { net; port = Net.add_client net ~id:client_id; inst; sn = 0 }

  let reader ~net ~client_id ~inst =
    { net; port = Net.add_client net ~id:client_id; inst }

  let write (w : writer) v =
    w.sn <- w.sn + 1;
    let round =
      Net.ss_broadcast w.net w.port ~inst:w.inst
        (Messages.Write { sn = w.sn; v })
    in
    ignore (Collect.ack_writes ~net:w.net ~port:w.port ~round)

  let read ?(max_iterations = 64) (r : reader) =
    let params = Net.params r.net in
    let witness = (params : Params.t).f + 1 in
    let rec loop budget =
      if budget <= 0 then None
      else begin
        let round =
          Net.ss_broadcast r.net r.port ~inst:r.inst (Messages.Read false)
        in
        let lasts =
          Collect.ack_reads ~net:r.net ~port:r.port ~round |> List.map fst
        in
        (* Candidates vouched for by at least t+1 servers; take the highest
           timestamp under the ordinary integer order: with unbounded
           counters and no transient faults this is the classical read, and
           with them it is exactly what goes wrong. *)
        let vouched =
          List.filter
            (fun c ->
              List.length (List.filter (Messages.cell_equal c) lasts)
              >= witness)
            lasts
        in
        match
          List.fold_left
            (fun acc (c : Messages.cell) ->
              match acc with
              | Some (best : Messages.cell) when best.sn >= c.sn -> acc
              | Some _ | None -> Some c)
            None vouched
        with
        | Some c -> Some c.Messages.v
        | None -> loop (budget - 1)
      end
    in
    loop max_iterations

  let timestamp w = w.sn

  let corrupt_writer w rng = w.sn <- Sim.Rng.int rng 8
end

module Quiescent = struct
  type writer = { net : Net.t; port : Net.client_port; inst : int }

  type reader = {
    net : Net.t;
    port : Net.client_port;
    inst : int;
    mutable iterations : int;
  }

  let writer ~net ~client_id ~inst =
    { net; port = Net.add_client net ~id:client_id; inst }

  let reader ~net ~client_id ~inst =
    { net; port = Net.add_client net ~id:client_id; inst; iterations = 0 }

  let write (w : writer) v =
    let round =
      Net.ss_broadcast w.net w.port ~inst:w.inst
        (Messages.Write { sn = Seqnum.zero; v })
    in
    ignore (Collect.ack_writes ~net:w.net ~port:w.port ~round)

  let read ?(max_iterations = 64) (r : reader) =
    let threshold = Params.read_quorum (Net.params r.net) in
    let rec loop budget =
      if budget <= 0 then None
      else begin
        r.iterations <- r.iterations + 1;
        let round =
          Net.ss_broadcast r.net r.port ~inst:r.inst (Messages.Read false)
        in
        let lasts =
          Collect.ack_reads ~net:r.net ~port:r.port ~round |> List.map fst
        in
        match Quorum.find_cell ~threshold lasts with
        | Some c -> Some c.Messages.v
        | None -> loop (budget - 1)
      end
    in
    loop max_iterations

  let reader_iterations r = r.iterations
end
