lib/history/regularity.ml: Format History List Registers Sim String
