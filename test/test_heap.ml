open Util

let mk () = Sim.Heap.create ~cmp:Int.compare

let test_empty () =
  let h = mk () in
  check_true "empty" (Sim.Heap.is_empty h);
  check_int "length 0" 0 (Sim.Heap.length h);
  check_true "peek none" (Sim.Heap.peek h = None);
  check_true "pop none" (Sim.Heap.pop h = None)

let test_ordering () =
  let h = mk () in
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check_true "sorted drain" (drain [] = [ 1; 1; 2; 3; 4; 5; 9 ])

let test_peek_does_not_remove () =
  let h = mk () in
  Sim.Heap.push h 2;
  Sim.Heap.push h 1;
  check_true "peek min" (Sim.Heap.peek h = Some 1);
  check_int "still 2 elements" 2 (Sim.Heap.length h)

let test_interleaved () =
  let h = mk () in
  Sim.Heap.push h 10;
  Sim.Heap.push h 5;
  check_true "pop 5" (Sim.Heap.pop h = Some 5);
  Sim.Heap.push h 1;
  Sim.Heap.push h 20;
  check_true "pop 1" (Sim.Heap.pop h = Some 1);
  check_true "pop 10" (Sim.Heap.pop h = Some 10);
  check_true "pop 20" (Sim.Heap.pop h = Some 20);
  check_true "empty again" (Sim.Heap.is_empty h)

let test_clear () =
  let h = mk () in
  List.iter (Sim.Heap.push h) [ 3; 1; 2 ];
  Sim.Heap.clear h;
  check_true "cleared" (Sim.Heap.is_empty h)

let test_iter_unordered () =
  let h = mk () in
  List.iter (Sim.Heap.push h) [ 3; 1; 2 ];
  let sum = ref 0 in
  Sim.Heap.iter_unordered h (fun x -> sum := !sum + x);
  check_int "visits all" 6 !sum

let prop_heap_sort =
  QCheck.Test.make ~name:"heap drain is sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = mk () in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* The engine's same-instant FIFO guarantee comes from tagging events
   with a sequence number inside the comparator — the heap itself is not
   stable.  Model exactly that contract: push (time, seq) pairs with seq
   assigned in push order, interleave pops, and require every pop to
   return the pending pair that is smallest in (time, seq).  Times are
   drawn from a tiny domain so same-instant collisions dominate. *)
let prop_same_instant_fifo =
  QCheck.Test.make ~name:"same-instant FIFO under interleaved pops"
    ~count:300
    QCheck.(list (option (int_bound 3)))
    (fun ops ->
      let cmp (t1, s1) (t2, s2) =
        match Int.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
      in
      let h = Sim.Heap.create ~cmp in
      let pending = ref [] in
      let seq = ref 0 in
      List.for_all
        (function
          | Some time ->
            let x = (time, !seq) in
            incr seq;
            Sim.Heap.push h x;
            pending := List.sort cmp (x :: !pending);
            true
          | None -> (
            match !pending with
            | [] -> Sim.Heap.pop h = None
            | x :: rest ->
              pending := rest;
              Sim.Heap.pop h = Some x))
        ops)

(* [take] removes an arbitrary (predicate-selected) element and patches
   the hole by relocating the tail slot, sifting both ways.  Model it
   against a multiset: interleave pushes with takes of random pivots and
   require (a) take returns a matching element iff one is pending,
   (b) the survivors drain in sorted order, (c) drained + removed is the
   original multiset — i.e. no element is lost or duplicated by the slot
   relocation / stale-tail release. *)
let prop_take_invariant =
  QCheck.Test.make ~name:"take preserves the heap invariant and multiset"
    ~count:300
    QCheck.(list (pair bool (int_bound 7)))
    (fun ops ->
      let h = mk () in
      let pushed = ref [] and removed = ref [] in
      List.iter
        (fun (is_take, x) ->
          if not is_take then begin
            Sim.Heap.push h x;
            pushed := x :: !pushed
          end
          else
            (* multiset of elements still in the heap *)
            let live =
              List.fold_left
                (fun acc y ->
                  let rec drop_one = function
                    | [] -> []
                    | z :: tl -> if z = y then tl else z :: drop_one tl
                  in
                  drop_one acc)
                !pushed !removed
            in
            match Sim.Heap.take h (fun y -> y >= x) with
            | Some y ->
              if y < x then failwith "take returned a non-matching element";
              removed := y :: !removed
            | None ->
              if List.exists (fun y -> y >= x) live then
                failwith "take missed a pending match")
        ops;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      let drained = drain [] in
      let sorted = List.sort Int.compare in
      drained = sorted drained
      && sorted (drained @ !removed) = sorted !pushed)

let tests =
  [
    case "empty heap" test_empty;
    case "ordering" test_ordering;
    case "peek non-destructive" test_peek_does_not_remove;
    case "interleaved" test_interleaved;
    case "clear" test_clear;
    case "iter_unordered" test_iter_unordered;
    qcheck prop_heap_sort;
    qcheck prop_same_instant_fifo;
    qcheck prop_take_invariant;
  ]
