test/test_datalink.ml: Alcotest Datalink List Sim Util
