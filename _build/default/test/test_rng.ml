open Util

let test_determinism () =
  let a = Sim.Rng.create 123 and b = Sim.Rng.create 123 in
  for _ = 1 to 100 do
    check_int "same stream" (Sim.Rng.int a 1_000_000) (Sim.Rng.int b 1_000_000)
  done

let test_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let da = List.init 16 (fun _ -> Sim.Rng.int a 1_000_000) in
  let db = List.init 16 (fun _ -> Sim.Rng.int b 1_000_000) in
  check_true "different seeds differ" (da <> db)

let test_split_independence () =
  let root = Sim.Rng.create 9 in
  let child = Sim.Rng.split root in
  let child_draws = List.init 8 (fun _ -> Sim.Rng.int child 1000) in
  (* Drawing more from the root must not disturb the child replay. *)
  let root2 = Sim.Rng.create 9 in
  let child2 = Sim.Rng.split root2 in
  ignore (Sim.Rng.int root2 1000);
  let child2_draws = List.init 8 (fun _ -> Sim.Rng.int child2 1000) in
  check_true "split streams replay" (child_draws = child2_draws)

let test_int_bounds () =
  let rng = Sim.Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Sim.Rng.int rng 7 in
    check_true "in [0,7)" (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int rng 0))

let test_int_in () =
  let rng = Sim.Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Sim.Rng.int_in rng 3 5 in
    check_true "in [3,5]" (x >= 3 && x <= 5)
  done;
  (* Degenerate single-point range. *)
  check_int "point range" 4 (Sim.Rng.int_in rng 4 4)

let test_float_bounds () =
  let rng = Sim.Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Sim.Rng.float rng 1.0 in
    check_true "in [0,1)" (x >= 0.0 && x < 1.0)
  done

let test_bool_mixes () =
  let rng = Sim.Rng.create 5 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Sim.Rng.bool rng then incr trues
  done;
  check_true "roughly balanced" (!trues > 400 && !trues < 600)

let test_pick () =
  let rng = Sim.Rng.create 5 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_true "picked element" (Array.mem (Sim.Rng.pick rng arr) arr)
  done

let test_shuffle_permutation () =
  let rng = Sim.Rng.create 5 in
  let arr = Array.init 20 (fun i -> i) in
  Sim.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check_true "is permutation" (sorted = Array.init 20 (fun i -> i));
  check_true "actually shuffled" (arr <> Array.init 20 (fun i -> i))

let tests =
  [
    case "determinism" test_determinism;
    case "seed sensitivity" test_seed_sensitivity;
    case "split independence" test_split_independence;
    case "int bounds" test_int_bounds;
    case "int_in bounds" test_int_in;
    case "float bounds" test_float_bounds;
    case "bool mixes" test_bool_mixes;
    case "pick membership" test_pick;
    case "shuffle permutation" test_shuffle_permutation;
  ]
