open Parsetree

type span = { rules : string list; start_line : int; end_line : int }

let attr_name = "lint.allow"

let split_ids s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun t -> not (String.equal t ""))

let rules_of_payload = function
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
    let rec strings e =
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> split_ids s
      | Pexp_tuple es -> List.concat_map strings es
      | _ -> []
    in
    strings e
  | _ -> []

let rules_of_attrs attrs =
  List.concat_map
    (fun a ->
      if String.equal a.attr_name.txt attr_name then
        rules_of_payload a.attr_payload
      else [])
    attrs

let span_of_loc rules (loc : Location.t) =
  {
    rules;
    start_line = loc.loc_start.pos_lnum;
    end_line = loc.loc_end.pos_lnum;
  }

let collect_attr_spans structure =
  let spans = ref [] in
  let note rules loc = if rules <> [] then spans := span_of_loc rules loc :: !spans in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
           | Pstr_attribute a ->
             (* floating [@@@lint.allow ...]: whole file *)
             let rules = rules_of_attrs [ a ] in
             if rules <> [] then
               spans := { rules; start_line = 1; end_line = max_int } :: !spans
           | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
      value_binding =
        (fun it vb ->
          note (rules_of_attrs vb.pvb_attributes) vb.pvb_loc;
          Ast_iterator.default_iterator.value_binding it vb);
      expr =
        (fun it e ->
          note (rules_of_attrs e.pexp_attributes) e.pexp_loc;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  !spans

(* --- line pragmas ---------------------------------------------------- *)

(* Find [lint: allow <ids>] inside a source line; ids stop at a "--"
   token, a comment-close token or end of line. *)
let pragma_rules line =
  let needle = "lint:" in
  let nlen = String.length needle in
  let len = String.length line in
  let rec find i =
    if i + nlen > len then None
    else if String.equal (String.sub line i nlen) needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start -> (
    let rest = String.sub line start (len - start) in
    let toks = String.split_on_char ' ' rest in
    let toks = List.filter (fun t -> not (String.equal t "")) toks in
    match toks with
    | "allow" :: ids ->
      let rec keep = function
        | [] -> []
        | t :: _ when String.equal t "--" || String.length t >= 2
                      && String.equal (String.sub t 0 2) "*)" ->
          []
        | t :: tl -> t :: keep tl
      in
      keep ids
    | _ -> [])

let collect_pragma_spans source =
  let lines = String.split_on_char '\n' source in
  List.mapi
    (fun i line ->
      match pragma_rules line with
      | [] -> None
      | rules -> Some { rules; start_line = i + 1; end_line = i + 1 })
    lines
  |> List.filter_map Fun.id

let collect ~source structure =
  collect_attr_spans structure @ collect_pragma_spans source

let covered spans (f : Finding.t) =
  List.exists
    (fun s ->
      List.mem f.Finding.rule s.rules
      && s.start_line <= f.Finding.line
      && f.Finding.line <= s.end_line)
    spans

let filter spans findings =
  let kept, dropped = List.partition (fun f -> not (covered spans f)) findings in
  (kept, List.length dropped)
