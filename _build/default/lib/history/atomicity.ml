type inversion = { earlier_read : History.op; later_read : History.op }

module Sw = struct
  type report = {
    regularity : Regularity.report;
    inversions : inversion list;
    malformed : string list;
  }

  let find_malformed writes =
    let rec overlapping = function
      | (w1 : History.op) :: ((w2 : History.op) :: _ as rest) ->
        (if History.overlap w1 w2 then
           [ Format.asprintf "overlapping writes: %a / %a" History.pp_op w1
               History.pp_op w2 ]
         else [])
        @ overlapping rest
      | [ _ ] | [] -> []
    in
    let dup_values =
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun (w : History.op) ->
          let key = Registers.Value.to_string w.value in
          if Hashtbl.mem seen key then
            Some (Printf.sprintf "duplicate written value %s" key)
          else begin
            Hashtbl.add seen key ();
            None
          end)
        writes
    in
    overlapping writes @ dup_values

  (* Index of the write whose value the read returned; None if the value
     was never written (a regularity violation, reported there). *)
  let write_index writes (r : History.op) =
    let rec scan i = function
      | [] -> None
      | (w : History.op) :: rest ->
        if Registers.Value.equal w.value r.value then Some i
        else scan (i + 1) rest
    in
    scan 0 writes

  let check ?cutoff h =
    let regularity = Regularity.check ?cutoff h in
    let writes = History.writes h in
    let malformed = find_malformed writes in
    let after_cutoff (o : History.op) =
      match cutoff with None -> true | Some c -> Sim.Vtime.( <= ) c o.inv
    in
    let reads =
      History.reads h
      |> List.filter (fun (r : History.op) -> r.ok && after_cutoff r)
      |> List.filter_map (fun r ->
             match write_index writes r with
             | Some i -> Some (r, i)
             | None -> None)
    in
    (* New/old inversion: a read that precedes another read in real time
       must not return a strictly newer write. *)
    let rec pairs = function
      | [] -> []
      | (r1, i1) :: rest ->
        List.filter_map
          (fun ((r2 : History.op), i2) ->
            if Sim.Vtime.( <= ) (r1 : History.op).resp r2.inv && i1 > i2 then
              Some { earlier_read = r1; later_read = r2 }
            else None)
          rest
        @ pairs rest
    in
    { regularity; inversions = pairs reads; malformed }

  let is_clean r =
    Regularity.is_clean r.regularity && r.inversions = [] && r.malformed = []

  let pp ppf r =
    Format.fprintf ppf "%a@.atomicity: %d inversions, %d malformed"
      Regularity.pp r.regularity
      (List.length r.inversions)
      (List.length r.malformed);
    List.iter
      (fun inv ->
        Format.fprintf ppf "@.  INVERSION %a then %a" History.pp_op
          inv.earlier_read History.pp_op inv.later_read)
      r.inversions;
    List.iter (fun m -> Format.fprintf ppf "@.  MALFORMED %s" m) r.malformed
end

module Mw = struct
  type violation = { kind : string; detail : string }

  type report = {
    writes_checked : int;
    reads_checked : int;
    violations : violation list;
  }

  exception Incomparable of Registers.Epoch.t * Registers.Epoch.t

  (* Total order on timestamps, raising on epoch incomparability (only
     pre-stabilization debris is incomparable). *)
  let compare_ts ~tie (e1, s1, p1) (e2, s2, p2) =
    let pid_cmp =
      match tie with
      | `Max_index -> Int.compare p1 p2 (* Definition 1: larger id later *)
      | `Min_index -> Int.compare p2 p1 (* line 15 literal: smaller id wins *)
    in
    if Registers.Epoch.equal e1 e2 then
      let c = Int.compare s1 s2 in
      if c <> 0 then c else pid_cmp
    else if Registers.Epoch.gt e1 e2 then 1
    else if Registers.Epoch.gt e2 e1 then -1
    else raise (Incomparable (e1, e2))

  let check ?cutoff ~tie h =
    let after_cutoff (o : History.op) =
      match cutoff with None -> true | Some c -> Sim.Vtime.( <= ) c o.inv
    in
    let violations = ref [] in
    let bad kind detail = violations := { kind; detail } :: !violations in
    let with_ts ops =
      List.filter_map
        (fun (o : History.op) ->
          match o.ts with
          | Some ts when o.ok && after_cutoff o -> Some (o, ts)
          | Some _ | None -> None)
        ops
    in
    let writes = with_ts (History.writes h) in
    let reads = with_ts (History.reads h) in
    let cmp a b =
      try Some (compare_ts ~tie a b)
      with Incomparable (e1, e2) ->
        bad "incomparable-epochs"
          (Format.asprintf "%a vs %a" Registers.Epoch.pp e1
             Registers.Epoch.pp e2);
        None
    in
    (* 1. Timestamps respect the real-time order of writes (Lemma 16). *)
    let rec write_pairs = function
      | [] -> []
      | w :: rest -> List.map (fun w' -> (w, w')) rest @ write_pairs rest
    in
    List.iter
      (fun (((w1 : History.op), ts1), ((w2 : History.op), ts2)) ->
        if Sim.Vtime.( <= ) w1.resp w2.inv then
          match cmp ts1 ts2 with
          | Some c when c >= 0 ->
            bad "write-order"
              (Format.asprintf "%a not before %a" History.pp_op w1
                 History.pp_op w2)
          | Some _ | None -> ())
      (write_pairs writes);
    (* 2. Each read is at least as new as every write completed before it,
       and not newer than every write invoked before it responded. *)
    List.iter
      (fun (((r : History.op), tsr) : History.op * _) ->
        List.iter
          (fun (((w : History.op), tsw) : History.op * _) ->
            if Sim.Vtime.( <= ) w.resp r.inv then
              match cmp tsr tsw with
              | Some c when c < 0 ->
                bad "stale-read"
                  (Format.asprintf "%a older than completed %a" History.pp_op
                     r History.pp_op w)
              | Some _ | None -> ())
          writes;
        (* The read's timestamp must belong to some write that had started
           (or be older than all of them: the initial value). *)
        let plausible =
          writes = []
          || List.exists
               (fun ((w : History.op), tsw) ->
                 Sim.Vtime.( < ) w.inv r.resp
                 && match cmp tsr tsw with Some 0 -> true | _ -> false)
               writes
          || List.for_all
               (fun ((w : History.op), tsw) ->
                 (not (Sim.Vtime.( <= ) w.resp r.inv))
                 && match cmp tsr tsw with Some c -> c < 0 | None -> true)
               writes
        in
        if not plausible then
          bad "future-or-phantom-read"
            (Format.asprintf "%a matches no plausible write" History.pp_op r))
      reads;
    (* 3. Reads are monotone along real time. *)
    let rec read_pairs = function
      | [] -> []
      | r :: rest -> List.map (fun r' -> (r, r')) rest @ read_pairs rest
    in
    List.iter
      (fun (((r1 : History.op), ts1), ((r2 : History.op), ts2)) ->
        if Sim.Vtime.( <= ) r1.resp r2.inv then
          match cmp ts1 ts2 with
          | Some c when c > 0 ->
            bad "read-inversion"
              (Format.asprintf "%a then %a" History.pp_op r1 History.pp_op r2)
          | Some _ | None -> ())
      (read_pairs reads);
    {
      writes_checked = List.length writes;
      reads_checked = List.length reads;
      violations = List.rev !violations;
    }

  let is_clean r = r.violations = []

  let pp ppf r =
    Format.fprintf ppf "mw-atomicity: %d writes, %d reads, %d violations"
      r.writes_checked r.reads_checked
      (List.length r.violations);
    List.iter
      (fun v -> Format.fprintf ppf "@.  %s: %s" v.kind v.detail)
      r.violations
end
