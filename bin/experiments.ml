(* Experiment driver: regenerates every table of EXPERIMENTS.md.

     dune exec bin/experiments.exe -- run all
     dune exec bin/experiments.exe -- run E1 E3 --seed 42
     dune exec bin/experiments.exe -- list
*)

let all : (string * string * (seed:int -> unit)) list =
  [
    ("E1", "Figure 1: new/old inversion, regular vs atomic", Exp_drivers.Exp_e1.run);
    ("E2", "stabilization after a full transient fault", Exp_drivers.Exp_e2.run);
    ("E3", "asynchronous resilience bound (t < n/8)", Exp_drivers.Exp_e3.run);
    ("E4", "synchronous resilience bound (t < n/3)", Exp_drivers.Exp_e4.run);
    ("E5", "reader cost vs write pressure (helping)", Exp_drivers.Exp_e5.run);
    ("E6", "bounded epochs under sequence exhaustion", Exp_drivers.Exp_e6.run);
    ("E7", "baselines: classical and quiescence-dependent", Exp_drivers.Exp_e7.run);
    ("E8", "alternating-bit data link (footnote 3)", Exp_drivers.Exp_e8.run);
    ("E9", "message cost per operation", Exp_drivers.Exp_e9.run);
    ("E10", "mobile Byzantine faults (footnote 1)", Exp_drivers.Exp_e10.run);
    ("E11", "registers over lossy links (ss-transport)", Exp_drivers.Exp_e11.run);
    ("E12", "ablation: the lines N2-N7 sanity phase", Exp_drivers.Exp_e12.run);
    ("E13", "SWMR composition vs reader write-back", Exp_drivers.Exp_e13.run);
    ("E14", "scalability with n", Exp_drivers.Exp_e14.run);
  ]

open Cmdliner

let ids_arg =
  let doc = "Experiment ids to run (E1..E14), or $(b,all)." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)

let seed_arg =
  let doc = "Root random seed; every table is deterministic given it." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let json_arg =
  let doc =
    "Write one machine-readable run report per experiment as \
     $(docv)/<exp>.json (schema stabreg/run-report/v1).  $(docv) defaults \
     to $(b,results) when the flag is given without a value."
  in
  Arg.(
    value
    & opt ~vopt:(Some "results") (some string) None
    & info [ "json" ] ~docv:"DIR" ~doc)

let trace_out_arg =
  let doc =
    "Append the typed event stream of every instrumented deployment to \
     $(docv) as JSON lines (one event per line)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run ids seed json trace =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let wanted =
      if List.exists (fun id -> String.lowercase_ascii id = "all") ids then
        List.map (fun (id, _, _) -> id) all
      else ids
    in
    let unknown =
      List.filter
        (fun id -> not (List.exists (fun (i, _, _) -> i = id) all))
        wanted
    in
    match unknown with
    | _ :: _ ->
      `Error
        (false, "unknown experiment(s): " ^ String.concat ", " unknown)
    | [] ->
      List.iter
        (fun id ->
          let _, _, f = List.find (fun (i, _, _) -> i = id) all in
          Exp_drivers.Common.with_report ~exp:id ~seed (fun () -> f ~seed))
        wanted;
      Exp_drivers.Common.close_trace ();
      `Ok ()
  in
  let doc = "Run experiments and print their tables." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(ret (const run $ ids_arg $ seed_arg $ json_arg $ trace_out_arg))

let validate_cmd =
  let read_file path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (* Dispatch on the artifact's own schema tag: whole-file JSON documents
     carry a "schema" (or "traceEvents") field, trace files are JSONL
     whose header line names stabreg/trace/v1. *)
  let validate_one path =
    let contents = read_file path in
    match Obs.Json.parse contents with
    | Error _ ->
      (* Not a single JSON document: try the JSONL trace schema. *)
      Result.map
        (fun () -> Obs.Tracefile.schema_version)
        (Obs.Tracefile.validate contents)
    | Ok j -> (
      match Obs.Json.member "schema" j with
      | Some s when Obs.Json.to_string_opt s = Some Obs.Report.schema_version
        ->
        Result.map (fun () -> Obs.Report.schema_version) (Obs.Report.validate j)
      | Some s
        when Obs.Json.to_string_opt s = Some Obs.Profile.schema_version ->
        Result.map
          (fun () -> Obs.Profile.schema_version)
          (Obs.Profile.validate j)
      | Some s
        when Obs.Json.to_string_opt s = Some Obs.Tracefile.schema_version ->
        (* A one-line trace (header only) parses as a single document. *)
        Result.map
          (fun () -> Obs.Tracefile.schema_version)
          (Obs.Tracefile.validate contents)
      | Some s when Obs.Json.to_string_opt s = Some Mc.Checker.cex_schema ->
        Result.map
          (fun (_ : Mc.Checker.cex) -> Mc.Checker.cex_schema)
          (Mc.Checker.cex_of_json j)
      | Some s
        when Obs.Json.to_string_opt s = Some Chaos.Campaign.repro_schema ->
        Result.map
          (fun (_ : Chaos.Campaign.repro) -> Chaos.Campaign.repro_schema)
          (Chaos.Campaign.repro_of_json j)
      | Some s when Obs.Json.to_string_opt s = Some Chaos.Recovery.schema ->
        Result.map
          (fun (_ : Chaos.Recovery.report) -> Chaos.Recovery.schema)
          (Chaos.Recovery.of_json j)
      | Some s ->
        Error
          (Printf.sprintf "unknown schema %s"
             (match Obs.Json.to_string_opt s with
             | Some str -> Printf.sprintf "%S" str
             | None -> "(not a string)"))
      | None -> (
        match Obs.Json.member "traceEvents" j with
        | Some _ ->
          Result.map (fun () -> "chrome-trace") (Obs.Chrome_trace.validate j)
        | None -> Error "no schema field and no traceEvents"))
  in
  let validate files =
    let problems =
      List.filter_map
        (fun path ->
          match validate_one path with
          | Ok schema ->
            Printf.printf "%s: valid (%s)\n" path schema;
            None
          | Error e -> Some (Printf.sprintf "%s: %s" path e))
        files
    in
    match problems with
    | [] ->
      Printf.printf "%d artifact(s) valid\n" (List.length files);
      `Ok ()
    | _ :: _ -> `Error (false, String.concat "\n" problems)
  in
  let files_arg =
    let doc =
      "Artifact files to check: run reports, JSONL traces, mc profiles, \
       Chrome-trace exports, mc counterexamples or chaos repros — the \
       schema is sniffed from the file itself."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Validate artifacts (run reports, traces, profiles, Chrome \
          exports, counterexamples, repros) against their versioned \
          schemas.")
    Term.(ret (const validate $ files_arg))

let trace_cmd =
  (* A regular-register workload crossed by a transient-corruption burst,
     with full causal tracing: pick one interesting read (the first one
     issued after the burst, falling back to the slowest), reconstruct its
     causal tree from the span graph, and print a per-phase latency
     breakdown.  Optional exports: the whole run as a stabreg/trace/v1
     JSONL file and/or a Perfetto-loadable Chrome trace_event JSON. *)
  let out_arg =
    let doc = "Write the run's full event stream to $(docv) as a \
               stabreg/trace/v1 JSONL file." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let chrome_arg =
    let doc =
      "Export the run as Chrome trace_event JSON to $(docv) (open in \
       Perfetto or chrome://tracing)."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let write_file path s =
    let parent = Filename.dirname path in
    if parent <> "" && parent <> "." then Obs.Report.mkdir_p parent;
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let trace seed out chrome =
    let fault_at = 300 in
    let params =
      Registers.Params.create_exn ~n:9 ~f:1 ~mode:Registers.Params.Async ()
    in
    let scn = Harness.Scenario.create ~seed ~params () in
    let mem, recorded = Obs.Sink.memory () in
    Obs.Hub.attach (Harness.Scenario.hub scn) mem;
    let net = scn.Harness.Scenario.net in
    let w = Registers.Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
    let r = Registers.Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
    Harness.Scenario.register_port scn
      (Registers.Swsr_regular.writer_port w);
    Harness.Scenario.register_port scn
      (Registers.Swsr_regular.reader_port r);
    (* The transient-corruption window: every registered server target
       (cells, helping state) is scrambled mid-workload. *)
    Sim.Fault.schedule scn.Harness.Scenario.fault
      ~engine:scn.Harness.Scenario.engine
      ~at:(Sim.Vtime.of_int fault_at) ~prefix:"server.";
    Exp_drivers.Common.run_jobs scn
      [
        ( "writer",
          fun () ->
            Harness.Workload.writer_job scn
              ~write:(Registers.Swsr_regular.write w)
              ~count:20 ~gap:(Harness.Workload.gap 5 25) () );
        ( "reader",
          fun () ->
            Harness.Workload.reader_job scn
              ~read:(fun () -> Registers.Swsr_regular.read r)
              ~count:20 ~gap:(Harness.Workload.gap 5 25) () );
      ];
    let events = recorded () in
    Printf.printf
      "swsr_regular workload, n=9 t=1, transient server corruption at \
       t=%d\n"
      fault_at;
    Harness.Report.kv
      [
        ( "virtual time",
          string_of_int (Sim.Vtime.to_int (Harness.Scenario.now scn)) );
        ("events", string_of_int (List.length events));
        ( "spans",
          string_of_int
            (Obs.Trace_ctx.allocated
               (Sim.Engine.spans scn.Harness.Scenario.engine)) );
        ( "messages delivered",
          string_of_int (Harness.Scenario.messages_sent scn) );
      ];
    print_newline ();
    (* One row per completed read: (invoke, return, span). *)
    let reads =
      List.filter_map
        (fun e ->
          match e with
          | Obs.Event.Op_invoke { time; id; op = `Read; span; _ } ->
            let ret =
              List.find_map
                (fun e' ->
                  match e' with
                  | Obs.Event.Op_return { time = rt; id = rid; _ }
                    when rid = id -> Some rt
                  | Obs.Event.Op_return _ | Obs.Event.Op_invoke _
                  | Obs.Event.Send _ | Obs.Event.Recv _ | Obs.Event.Drop _
                  | Obs.Event.Phase _ | Obs.Event.Fault_injected _
                  | Obs.Event.Stabilized _ | Obs.Event.Mark _ -> None)
                events
            in
            Option.map (fun rt -> (time, rt, span)) ret
          | Obs.Event.Op_invoke _ | Obs.Event.Op_return _ | Obs.Event.Send _
          | Obs.Event.Recv _ | Obs.Event.Drop _ | Obs.Event.Phase _
          | Obs.Event.Fault_injected _ | Obs.Event.Stabilized _
          | Obs.Event.Mark _ -> None)
        events
    in
    let target =
      match
        List.find_opt (fun (inv, _, _) -> inv >= fault_at) reads
      with
      | Some pick ->
        Printf.printf "picked: first read invoked after the corruption \
                       burst\n";
        Some pick
      | None ->
        (match
           List.fold_left
             (fun acc (inv, ret, span) ->
               match acc with
               | Some (i, r2, _) when r2 - i >= ret - inv -> acc
               | Some _ | None -> Some (inv, ret, span))
             None reads
         with
        | Some pick ->
          Printf.printf "picked: slowest read of the run\n";
          Some pick
        | None -> None)
    in
    (match target with
    | None -> Printf.printf "no completed read to trace\n"
    | Some (inv, ret, span) -> (
      Printf.printf "read invoked t=%d, returned t=%d (%d ticks)\n\n" inv
        ret (ret - inv);
      match
        Obs.Tracefile.tree_for events ~trace:span.Obs.Trace_ctx.trace
      with
      | None -> Printf.printf "span %d: no causal tree found\n" span.Obs.Trace_ctx.id
      | Some t ->
        Format.printf "causal tree:@.%a@." Obs.Tracefile.pp_tree t;
        Format.printf "latency breakdown:@.%a@." Obs.Tracefile.pp_breakdown
          (Obs.Tracefile.breakdown t)));
    (match out with
    | None -> ()
    | Some path ->
      let buf = Buffer.create 65536 in
      Buffer.add_string buf
        (Obs.Json.to_string
           (Obs.Tracefile.header ~experiment:"TRACE" ~seed));
      Buffer.add_char buf '\n';
      List.iter
        (fun e ->
          Buffer.add_string buf (Obs.Json.to_string (Obs.Event.to_json e));
          Buffer.add_char buf '\n')
        events;
      write_file path (Buffer.contents buf);
      Printf.printf "trace written to %s (%s)\n" path
        Obs.Tracefile.schema_version);
    match chrome with
    | None -> `Ok ()
    | Some path -> (
      let j = Obs.Chrome_trace.to_json events in
      match Obs.Chrome_trace.validate j with
      | Error e -> `Error (false, "chrome export failed validation: " ^ e)
      | Ok () ->
        write_file path (Obs.Json.to_string_pretty j ^ "\n");
        Printf.printf "chrome trace written to %s\n" path;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace one corrupted run causally: reconstruct and pretty-print \
          the span tree of an interesting read, with optional JSONL and \
          Chrome trace_event exports.")
    Term.(ret (const trace $ seed_arg $ out_arg $ chrome_arg))

let chaos_cmd =
  let family_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun e -> `Msg e)
            (Chaos.Campaign.family_of_string s)),
        fun fmt f ->
          Format.pp_print_string fmt (Chaos.Campaign.family_to_string f) )
  in
  let medium_conv =
    let parse = function
      | "fifo" -> Ok Chaos.Campaign.Fifo
      | "lossy" -> Ok Chaos.Campaign.Lossy
      | s -> Error (`Msg (Printf.sprintf "unknown medium %S" s))
    in
    Arg.conv
      ( parse,
        fun fmt m ->
          Format.pp_print_string fmt
            (match m with Chaos.Campaign.Fifo -> "fifo" | Lossy -> "lossy") )
  in
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error (fun e -> `Msg e) (Chaos.Strategy.of_string s)),
        fun fmt s -> Format.pp_print_string fmt (Chaos.Strategy.to_string s) )
  in
  let family_arg =
    let doc = "Register family to attack: $(b,regular), $(b,atomic) or \
               $(b,mwmr)." in
    Arg.(
      value
      & opt family_conv Chaos.Campaign.Regular
      & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let trials_arg =
    let doc = "Number of randomized trials in the campaign." in
    Arg.(value & opt int 5 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let byz_arg =
    let doc =
      "Compromise the first $(docv) server slots before the run starts \
       (beyond the schedule's own mobile roams).  More than t slots \
       deliberately exceeds the resilience bound."
    in
    Arg.(value & opt int 1 & info [ "byz" ] ~docv:"K" ~doc)
  in
  let strategy_arg =
    let doc =
      "Strategy of the $(b,--byz) slots: $(b,silent), $(b,garbage), \
       $(b,equivocate), $(b,frozen), $(b,collude), $(b,flaky:<p>), \
       $(b,delayed:<ticks>) or $(b,crash:<k>)."
    in
    Arg.(
      value
      & opt strategy_conv Chaos.Strategy.Garbage
      & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let medium_arg =
    let doc =
      "Communication medium: $(b,fifo) (reliable links) or $(b,lossy) \
       (self-stabilizing transports; enables link-chaos windows)."
    in
    Arg.(
      value
      & opt medium_conv Chaos.Campaign.Fifo
      & info [ "medium" ] ~docv:"MEDIUM" ~doc)
  in
  let out_arg =
    let doc = "Directory for shrunk counterexample artifacts." in
    Arg.(
      value & opt string "results/chaos" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-execute a repro artifact instead of running a campaign; fails \
       unless the replay reproduces the recorded verdict."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let expect_conv =
      let parse = function
        | "clean" -> Ok `Clean
        | "violation" -> Ok `Violation
        | s -> Error (`Msg (Printf.sprintf "unknown expectation %S" s))
      in
      Arg.conv
        ( parse,
          fun fmt e ->
            Format.pp_print_string fmt
              (match e with `Clean -> "clean" | `Violation -> "violation") )
    in
    let doc =
      "Fail (exit non-zero) unless the campaign ends as stated: $(b,clean) \
       (no trial violated) or $(b,violation) (at least one did).  Gives \
       CI a one-flag assertion for both sides of the resilience bound."
    in
    Arg.(
      value & opt (some expect_conv) None & info [ "expect" ] ~docv:"WHAT" ~doc)
  in
  let domains_arg =
    let doc =
      "Fan the campaign trials out over $(docv) OS-level domains.  Trials \
       are deterministic in their derived seeds, so the result is \
       identical for every value — only wall-clock changes."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let profile_arg =
    let doc =
      "Write a stabreg/mc-profile/v1 flight-recorder timeline of the \
       campaign (one sample per completed trial) to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)
  in
  let chaos family trials byz strategy medium out replay expect domains seed
      json trace profile =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let recorder =
      Option.map
        (fun _ ->
          Obs.Profile.create ~every:1 ~clock:Stdlib.Sys.time ~kind:"chaos" ())
        profile
    in
    let status = ref (`Ok ()) in
    let exp = "CHAOS-" ^ Chaos.Campaign.family_to_string family in
    (match replay with
    | Some path ->
      Exp_drivers.Common.with_report ~exp:"CHAOS-replay" ~seed (fun () ->
          match Exp_drivers.Exp_chaos.replay path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None ->
      Exp_drivers.Common.with_report ~exp ~seed (fun () ->
          let violations =
            Exp_drivers.Exp_chaos.run ~family ~medium ~byz ~strategy ~seed
              ~trials ~domains ~out ?recorder ()
          in
          match (expect, violations) with
          | Some `Clean, _ :: _ ->
            status :=
              `Error
                ( false,
                  Printf.sprintf "expected a clean campaign, got %d violation(s)"
                    (List.length violations) )
          | Some `Violation, [] ->
            status :=
              `Error (false, "expected a violation, campaign ran clean")
          | _ -> ()));
    (match (profile, recorder) with
    | Some path, Some r -> Exp_drivers.Common.write_profile path r
    | (Some _ | None), _ -> ());
    Exp_drivers.Common.close_trace ();
    !status
  in
  let doc =
    "Run a randomized chaos campaign (transient faults, mobile Byzantine \
     roams, link-chaos windows) against one register family, shrinking any \
     counterexample to a minimal replayable artifact."
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const chaos $ family_arg $ trials_arg $ byz_arg $ strategy_arg
       $ medium_arg $ out_arg $ replay_arg $ expect_arg $ domains_arg
       $ seed_arg $ json_arg $ trace_out_arg $ profile_arg))

let mc_cmd =
  let mc_family_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun e -> `Msg e) (Mc.Config.family_of_string s)),
        fun fmt f -> Format.pp_print_string fmt (Mc.Config.family_to_string f)
      )
  in
  let byz_kind_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "silent" ] -> Ok Mc.Config.Silent
      | [ "collude" ] -> Ok (Mc.Config.Collude { sn = 99; v = 999 })
      | [ "collude"; sn; v ] -> (
        match (int_of_string_opt sn, int_of_string_opt v) with
        | Some sn, Some v -> Ok (Mc.Config.Collude { sn; v })
        | _ -> Error (`Msg "collude:<sn>:<v> wants integers"))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown byzantine behavior %S (silent, collude, \
                 collude:<sn>:<v>)"
                s))
    in
    Arg.conv
      ( parse,
        fun fmt k ->
          Format.pp_print_string fmt
            (match k with
            | Mc.Config.Silent -> "silent"
            | Mc.Config.Collude { sn; v } ->
              Printf.sprintf "collude:%d:%d" sn v) )
  in
  let corrupt_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "server"; i; sn; v ] -> (
        match
          (int_of_string_opt i, int_of_string_opt sn, int_of_string_opt v)
        with
        | Some server, Some sn, Some v ->
          Ok (Mc.Config.Corrupt_server { server; sn; v })
        | _ -> Error (`Msg "server:<i>:<sn>:<v> wants integers"))
      | [ "reader"; pwsn; v ] -> (
        match (int_of_string_opt pwsn, int_of_string_opt v) with
        | Some pwsn, Some v -> Ok (Mc.Config.Corrupt_reader { pwsn; v })
        | _ -> Error (`Msg "reader:<pwsn>:<v> wants integers"))
      | [ "writer"; sn ] -> (
        match int_of_string_opt sn with
        | Some sn -> Ok (Mc.Config.Corrupt_writer_sn sn)
        | None -> Error (`Msg "writer:<sn> wants an integer"))
      | [ "round"; client; round ] -> (
        match (int_of_string_opt client, int_of_string_opt round) with
        | Some client, Some round ->
          Ok (Mc.Config.Corrupt_round { client; round })
        | _ -> Error (`Msg "round:<client>:<round> wants integers"))
      | [ "crashrec"; i ] -> (
        match int_of_string_opt i with
        | Some server -> Ok (Mc.Config.Crash_recover { server })
        | None -> Error (`Msg "crashrec:<i> wants an integer"))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown corruption %S (server:<i>:<sn>:<v>, \
                 reader:<pwsn>:<v>, writer:<sn>, round:<client>:<round>, \
                 crashrec:<i>)"
                s))
    in
    Arg.conv
      ( parse,
        fun fmt c ->
          Format.pp_print_string fmt
            (match c with
            | Mc.Config.Corrupt_server { server; sn; v } ->
              Printf.sprintf "server:%d:%d:%d" server sn v
            | Mc.Config.Corrupt_reader { pwsn; v } ->
              Printf.sprintf "reader:%d:%d" pwsn v
            | Mc.Config.Corrupt_writer_sn sn -> Printf.sprintf "writer:%d" sn
            | Mc.Config.Corrupt_round { client; round } ->
              Printf.sprintf "round:%d:%d" client round
            | Mc.Config.Crash_recover { server } ->
              Printf.sprintf "crashrec:%d" server) )
  in
  let family_arg =
    let doc =
      "Register family to check: $(b,regular), $(b,atomic) or $(b,mwmr)."
    in
    Arg.(
      value
      & opt mc_family_conv Mc.Config.Regular
      & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let servers_arg =
    let doc = "Number of servers n." in
    Arg.(value & opt int 9 & info [ "servers" ] ~docv:"N" ~doc)
  in
  let t_arg =
    let doc = "Declared fault bound t the protocol is parameterized with." in
    Arg.(value & opt int 1 & info [ "t"; "fault-bound" ] ~docv:"T" ~doc)
  in
  let byz_arg =
    let doc =
      "Make the first $(docv) server slots Byzantine.  More than t slots \
       deliberately exceeds the paper's t < n/8 resilience bound."
    in
    Arg.(value & opt int 0 & info [ "byz" ] ~docv:"K" ~doc)
  in
  let strategy_arg =
    let doc =
      "Deterministic behavior of the $(b,--byz) slots: $(b,silent), \
       $(b,collude) or $(b,collude:<sn>:<v>)."
    in
    Arg.(
      value
      & opt byz_kind_conv Mc.Config.Silent
      & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let writes_arg =
    let doc = "Writes per writer." in
    Arg.(value & opt int 1 & info [ "writes" ] ~docv:"K" ~doc)
  in
  let reads_arg =
    let doc = "Reads per reader." in
    Arg.(value & opt int 1 & info [ "reads" ] ~docv:"K" ~doc)
  in
  let read_budget_arg =
    let doc = "Maximum inquiry iterations per read." in
    Arg.(value & opt int 8 & info [ "read-budget" ] ~docv:"K" ~doc)
  in
  let corrupt_arg =
    let doc =
      "Add one transient-corruption choice to the menu (repeatable): \
       $(b,server:<i>:<sn>:<v>), $(b,reader:<pwsn>:<v>), $(b,writer:<sn>), \
       $(b,round:<client>:<round>) or $(b,crashrec:<i>) (crash-recovery: \
       the server rejoins with wiped state).  The explorer fires each menu \
       item at most once per execution, at every possible point."
    in
    Arg.(value & opt_all corrupt_conv [] & info [ "corrupt" ] ~docv:"SPEC" ~doc)
  in
  let oracle_arg =
    let doc =
      "Safety oracle: $(b,default) (per family) or $(b,atomic) (force the \
       SW-atomicity oracle — against the regular family this exhibits the \
       Fig. 1 new/old inversion)."
    in
    let oracle_conv =
      Arg.conv
        ( (fun s ->
            Result.map_error (fun e -> `Msg e) (Mc.Config.oracle_of_string s)),
          fun fmt o ->
            Format.pp_print_string fmt (Mc.Config.oracle_to_string o) )
    in
    Arg.(
      value
      & opt oracle_conv Mc.Config.Family_default
      & info [ "oracle" ] ~docv:"ORACLE" ~doc)
  in
  let depth_arg =
    let doc = "Depth budget (moves per execution)." in
    Arg.(
      value
      & opt int Mc.Checker.default_budgets.Mc.Checker.max_depth
      & info [ "depth" ] ~docv:"D" ~doc)
  in
  let max_states_arg =
    let doc = "State budget (nodes expanded before truncating)." in
    Arg.(
      value
      & opt int Mc.Checker.default_budgets.Mc.Checker.max_states
      & info [ "max-states" ] ~docv:"S" ~doc)
  in
  let no_reduction_arg =
    let doc =
      "Disable the sleep-set partial-order reduction and symmetric-move \
       pruning (state merging stays on)."
    in
    Arg.(value & flag & info [ "no-reduction" ] ~doc)
  in
  let no_visited_arg =
    let doc =
      "Disable state merging entirely (every interleaving explored \
       verbatim; only feasible on tiny configurations)."
    in
    Arg.(value & flag & info [ "no-visited" ] ~doc)
  in
  let cross_check_arg =
    let doc =
      "After the reduced search, re-search with $(b,--no-reduction) and \
       fail unless both agree on the verdict (soundness check for the \
       partial-order reduction)."
    in
    Arg.(value & flag & info [ "cross-check" ] ~doc)
  in
  let expect_arg =
    let expect_conv =
      let parse = function
        | "clean" -> Ok `Clean
        | "violation" -> Ok `Violation
        | s -> Error (`Msg (Printf.sprintf "unknown expectation %S" s))
      in
      Arg.conv
        ( parse,
          fun fmt e ->
            Format.pp_print_string fmt
              (match e with `Clean -> "clean" | `Violation -> "violation") )
    in
    let doc =
      "Fail (exit non-zero) unless the search ends as stated: $(b,clean) \
       (exhaustively verified, no violation) or $(b,violation) (a \
       counterexample was found, shrunk and replayed)."
    in
    Arg.(
      value & opt (some expect_conv) None & info [ "expect" ] ~docv:"WHAT" ~doc)
  in
  let order_seed_arg =
    let doc =
      "Shuffle the exploration order at every node, deterministically from \
       this seed (swarm-style hunting: the reduced state space and any \
       exhaustive verdict are unchanged, but a state budget reaches \
       different corners first)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "order-seed" ] ~docv:"SEED" ~doc)
  in
  let target_arg =
    let doc =
      "Hunt one violation kind (e.g. $(b,inversion), $(b,stuck), \
       $(b,liveness), $(b,regularity)): terminals violating some other \
       way are counted and skipped.  A clean verdict under a target only \
       certifies the absence of that kind."
    in
    Arg.(
      value & opt (some string) None & info [ "target" ] ~docv:"KIND" ~doc)
  in
  let domains_arg =
    let doc =
      "Run a portfolio of $(docv) searches in parallel over OS-level \
       domains: slice 0 is the plain sequential search, the others \
       explore under shuffled orders derived from $(b,--order-seed), and \
       the merge deterministically prefers the lowest slice index, so the \
       reported verdict and counterexample are independent of thread \
       scheduling."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let sequential_check_arg =
    let doc =
      "After the (parallel) search, re-search sequentially and fail \
       unless both report the same verdict and the same trace \
       (determinism check for the parallel portfolio)."
    in
    Arg.(value & flag & info [ "sequential-check" ] ~doc)
  in
  let out_arg =
    let doc = "Directory for counterexample artifacts." in
    Arg.(value & opt string "results/mc" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-execute a counterexample artifact instead of searching; fails \
       unless the replay reproduces the recorded verdict and terminal \
       state bit-for-bit."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let guide_arg =
    let doc =
      "Check a hand-written witness schedule instead of searching: force \
       the file's moves (config + trace, schema stabreg/mc-guide/v1; a \
       cex artifact works too), drain deterministically, judge the \
       terminal state, and shrink any violation into a replayable \
       artifact.  For interleavings a budgeted search cannot reach \
       unaided."
    in
    Arg.(value & opt (some file) None & info [ "guide" ] ~docv:"FILE" ~doc)
  in
  let profile_arg =
    let doc =
      "Write a stabreg/mc-profile/v1 flight-recorder timeline of the \
       search (periodic samples on the state counter: states, pruning \
       hits, visited-set occupancy, per-domain utilization) to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)
  in
  let profile_every_arg =
    let doc = "Minimum states between $(b,--profile-out) samples." in
    Arg.(value & opt int 1000 & info [ "profile-every" ] ~docv:"N" ~doc)
  in
  let mc family servers t byz strategy writes reads read_budget corrupt
      oracle depth max_states no_reduction no_visited order_seed target
      cross_check domains sequential_check expect out replay guide seed json
      trace profile profile_every =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let recorder =
      Option.map
        (fun _ ->
          Obs.Profile.create ~every:profile_every ~clock:Stdlib.Sys.time
            ~kind:"mc" ())
        profile
    in
    let status = ref (`Ok ()) in
    (match (replay, guide) with
    | Some _, Some _ ->
      status := `Error (true, "--replay and --guide are mutually exclusive")
    | Some path, None ->
      Exp_drivers.Common.with_report ~exp:"MC-replay" ~seed (fun () ->
          match Exp_drivers.Exp_mc.replay path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None, Some path ->
      Exp_drivers.Common.with_report ~exp:"MC-guide" ~seed (fun () ->
          match Exp_drivers.Exp_mc.guide ~expect ~out path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None, None ->
      let cfg =
        {
          Mc.Config.family;
          n = servers;
          f = t;
          byz = List.init byz (fun i -> (i, strategy));
          writes;
          reads;
          read_budget;
          menu = corrupt;
          oracle;
        }
      in
      let exp = "MC-" ^ Mc.Config.family_to_string family in
      (match Mc.Config.validate cfg with
      | Error e -> status := `Error (false, e)
      | Ok () ->
        Exp_drivers.Common.with_report ~exp ~seed (fun () ->
            let budgets = { Mc.Checker.max_states; max_depth = depth } in
            let reduction =
              if no_reduction then Mc.Checker.No_reduction
              else Mc.Checker.Sleep_sets
            in
            match
              Exp_drivers.Exp_mc.run ~cfg ~budgets ~reduction
                ~use_visited:(not no_visited) ~seed:order_seed ~target
                ~cross_check ~domains ~sequential_check ~expect ~out
                ?recorder ()
            with
            | Ok () -> ()
            | Error e -> status := `Error (false, e))));
    (match (profile, recorder) with
    | Some path, Some r -> Exp_drivers.Common.write_profile path r
    | (Some _ | None), _ -> ());
    Exp_drivers.Common.close_trace ();
    !status
  in
  let doc =
    "Exhaustively model-check one register family: enumerate every \
     interleaving of pending message deliveries and transient-corruption \
     choices (up to the budgets), check every terminal execution against \
     the family's safety and stabilization oracles, and shrink any \
     violation to a minimal replayable artifact."
  in
  Cmd.v
    (Cmd.info "mc" ~doc)
    Term.(
      ret
        (const mc $ family_arg $ servers_arg $ t_arg $ byz_arg $ strategy_arg
       $ writes_arg $ reads_arg $ read_budget_arg $ corrupt_arg $ oracle_arg
       $ depth_arg $ max_states_arg $ no_reduction_arg $ no_visited_arg
       $ order_seed_arg $ target_arg $ cross_check_arg $ domains_arg
       $ sequential_check_arg $ expect_arg $ out_arg $ replay_arg $ guide_arg
       $ seed_arg $ json_arg $ trace_out_arg $ profile_arg
       $ profile_every_arg))

let recovery_cmd =
  let n_arg =
    let doc =
      "Run a single system size instead of the default convergence sweep \
       over n = 6..9."
    in
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)
  in
  let bursts_arg =
    let doc = "Number of crash-recovery bursts." in
    Arg.(
      value
      & opt int Chaos.Recovery.default_config.Chaos.Recovery.bursts
      & info [ "bursts" ] ~docv:"K" ~doc)
  in
  let crashed_arg =
    let doc = "Server slots crashed per burst (rotating)." in
    Arg.(
      value
      & opt int Chaos.Recovery.default_config.Chaos.Recovery.crashed
      & info [ "crashed" ] ~docv:"K" ~doc)
  in
  let down_arg =
    let doc =
      "Down window per crashed slot, in ticks; the slot rejoins over \
       arbitrary volatile state."
    in
    Arg.(
      value
      & opt int Chaos.Recovery.default_config.Chaos.Recovery.down_for
      & info [ "down-for" ] ~docv:"TICKS" ~doc)
  in
  let no_retry_arg =
    let doc =
      "Disable the client deadline/retry layer (operations may report \
       $(b,degraded) much more often; reads still honor their iteration \
       budget)."
    in
    Arg.(value & flag & info [ "no-retry" ] ~doc)
  in
  let out_arg =
    let doc = "Directory for stabreg/recovery/v1 artifacts." in
    Arg.(
      value & opt string "results/recovery" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-execute a stabreg/recovery/v1 artifact instead of running a \
       sweep; fails unless the replay reproduces the recorded report \
       bit-for-bit."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let doc =
      "Fail (exit non-zero) unless every size in the sweep converged (its \
       last burst stabilized) with no stuck fibers."
    in
    Arg.(value & flag & info [ "expect-converged" ] ~doc)
  in
  let recovery n bursts crashed down_for no_retry out replay expect seed json
      trace =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let status = ref (`Ok ()) in
    (match replay with
    | Some path ->
      Exp_drivers.Common.with_report ~exp:"RECOVERY-replay" ~seed (fun () ->
          match Exp_drivers.Exp_recovery.replay path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None ->
      Exp_drivers.Common.with_report ~exp:"RECOVERY" ~seed (fun () ->
          let ns =
            match n with Some n -> [ n ] | None -> [ 6; 7; 8; 9 ]
          in
          let failed =
            Exp_drivers.Exp_recovery.run ~ns ~bursts ~crashed ~down_for
              ~retry:(not no_retry) ~seed ~out ()
          in
          if expect && failed <> [] then
            status :=
              `Error
                ( false,
                  Printf.sprintf
                    "expected convergence at every size, failed at n=[%s]"
                    (String.concat "; " (List.map string_of_int failed)) )));
    Exp_drivers.Common.close_trace ();
    !status
  in
  let doc =
    "Sweep crash-recovery bursts over system sizes n=6..9: rotating server \
     slots crash and rejoin over arbitrary state while a writer/reader \
     pair operates through the typed-outcome API, and the \
     stabilization-time oracle certifies per-burst convergence.  Writes a \
     replayable stabreg/recovery/v1 artifact per size."
  in
  Cmd.v
    (Cmd.info "recovery" ~doc)
    Term.(
      ret
        (const recovery $ n_arg $ bursts_arg $ crashed_arg $ down_arg
       $ no_retry_arg $ out_arg $ replay_arg $ expect_arg $ seed_arg
       $ json_arg $ trace_out_arg))

let list_cmd =
  let list () =
    List.iter (fun (id, doc, _) -> Printf.printf "%-4s %s\n" id doc) all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const list $ const ())

let main =
  let doc =
    "Reproduction experiments for 'Stabilizing Server-Based Storage in \
     Byzantine Asynchronous Message-Passing Systems' (PODC 2015)."
  in
  Cmd.group
    (Cmd.info "stabreg-experiments" ~version:"1.0.0" ~doc)
    [
      run_cmd; list_cmd; trace_cmd; validate_cmd; chaos_cmd; mc_cmd;
      recovery_cmd;
    ]

let () = exit (Cmd.eval main)
