lib/harness/fig1.mli: Registers
