(** Transient-fault injection.

    The paper's transient faults arbitrarily modify the local variables of
    any process (writer, reader, servers) and the state of the links; after
    an unknown time [tau_no_tr] they stop.  Components register their
    corruptible state here under hierarchical names
    (e.g. ["server.3.cell"], ["client.reader.pwsn"], ["link.s2->r"]); a
    fault plan then corrupts a chosen subset at chosen instants.

    Corruption functions receive a generator so that "arbitrary" values are
    drawn deterministically from the experiment seed. *)

type t

val create : unit -> t

val register : t -> name:string -> (Rng.t -> unit) -> unit
(** Expose one piece of mutable state to the injector. Multiple
    registrations may share a name. *)

val names : t -> string list
(** Registered target names, in registration order (duplicates kept). *)

val inject_matching : t -> rng:Rng.t -> prefix:string -> int
(** Corrupt every target [prefix] matches; returns how many targets were
    hit.  Matching respects dot-separated segment boundaries: a prefix must
    cover whole segments (["server.1"] hits ["server.1"] and
    ["server.1.cell"] but not ["server.10"]); a prefix ending in ['.'] — or
    the empty prefix — plain string-prefix-matches. *)

val inject_all : t -> rng:Rng.t -> int
(** Corrupt every registered target (a full "arbitrary configuration"). *)

val schedule : t -> engine:Engine.t -> at:Vtime.t -> prefix:string -> unit
(** Arrange for [inject_matching ~prefix] to run at instant [at], drawing
    from a generator split off the engine's.  Use prefix [""] for
    everything. *)
