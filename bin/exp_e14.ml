(* E14 — Scalability: operation latency and message cost as n grows with
   t = (n-1)/8 (the maximum the asynchronous bound admits).  Not a claim
   of the paper, but the curve a deployer asks for first: both costs are
   linear in n, and latency is delay-bound (two round trips per atomic
   write+read pair) rather than n-bound. *)

open Registers

let measure ~seed ~n =
  let f = (n - 1) / 8 in
  let params = Common.async_params ~n ~f in
  let scn = Common.scenario ~seed ~params () in
  (* a maximal adversary: f garbage servers *)
  for s = 0 to f - 1 do
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary s
      Byzantine.Behavior.garbage
  done;
  let w, r = Common.atomic_pair scn in
  let ops = 20 in
  Common.run_jobs scn
    [
      ( "wr",
        fun () ->
          for i = 1 to ops do
            ignore
              (Harness.Scenario.record scn ~proc:"writer"
                 ~kind:Oracles.History.Write (fun () ->
                   Swsr_atomic.write w (Value.int i);
                   Some (Value.int i)));
            ignore
              (Harness.Scenario.record scn ~proc:"reader"
                 ~kind:Oracles.History.Read (fun () -> Swsr_atomic.read r))
          done );
    ];
  Common.observe_scn scn;
  let rd =
    Harness.Metrics.summary
      (Harness.Metrics.latencies ~kind:Oracles.History.Read
         scn.Harness.Scenario.history)
  in
  let wr =
    Harness.Metrics.summary
      (Harness.Metrics.latencies ~kind:Oracles.History.Write
         scn.Harness.Scenario.history)
  in
  ( f,
    wr.Harness.Metrics.mean,
    rd.Harness.Metrics.mean,
    float_of_int (Harness.Scenario.messages_sent scn) /. float_of_int (2 * ops)
  )

let run ~seed =
  Harness.Report.section "E14: scalability with n (t = (n-1)/8, f garbage servers)";
  let rows =
    List.map
      (fun n ->
        let f, wr, rd, msgs = measure ~seed ~n in
        [
          string_of_int n;
          string_of_int f;
          Harness.Report.f1 wr;
          Harness.Report.f1 rd;
          Harness.Report.f1 msgs;
        ])
      [ 9; 17; 33; 65; 129 ]
  in
  Harness.Report.table
    ~title:"SWSR atomic register, alternating write/read, delays 1..10"
    ~header:
      [ "n"; "t"; "write latency"; "read latency"; "messages/op" ]
    rows;
  print_endline
    "  Shape: messages/op linear in n; latency flat (a fixed number of\n\
    \  round trips — the quorum waits grow in count, not in depth)."
