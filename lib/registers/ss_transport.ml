type 'm packet = { tag : int; body : 'm }

type 'm t = {
  engine : Sim.Engine.t;
  retrans : int;
  tag_space : int;
  data : 'm packet Sim.Lossy_link.t;
  mutable acks : int Sim.Lossy_link.t option; (* ack channel, built second *)
  (* sender state *)
  queue : ('m * (unit -> unit) option) Queue.t;
  mutable current : ('m * (unit -> unit) option) option;
  mutable tag : int;
  mutable timer_armed : bool;
  mutable sent : int;
  retrans_ctr : int ref;
  (* receiver state *)
  mutable last_tag : int;
  mutable stale_tag : int;
  mutable stale_streak : int;
  mutable stale_seen_at : Sim.Vtime.t;
}

let resync_threshold = 3

let rec arm_timer t =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    Sim.Engine.schedule t.engine ~delay:t.retrans (fun () ->
        t.timer_armed <- false;
        match t.current with
        | Some _ ->
          incr t.retrans_ctr;
          xmit t;
          arm_timer t
        | None -> ())
  end

and xmit t =
  match t.current with
  | None -> ()
  | Some (body, _) ->
    t.sent <- t.sent + 1;
    Sim.Lossy_link.send t.data { tag = t.tag; body }

let pump t =
  match t.current with
  | Some _ -> ()
  | None ->
    if not (Queue.is_empty t.queue) then begin
      t.current <- Some (Queue.pop t.queue);
      t.tag <- (t.tag + 1) mod t.tag_space;
      xmit t;
      arm_timer t
    end

let on_ack t tag =
  match t.current with
  | Some (_, callback) when tag = t.tag ->
    t.current <- None;
    (match callback with Some f -> f () | None -> ());
    pump t
  | Some _ | None -> () (* stale or spurious acknowledgment *)

(* Receiver: deliver on clockwise-newer tags; resync when the same rejected
   tag keeps arriving (only live retransmissions repeat persistently).
   Crucially, acknowledge ONLY tags that were delivered (now or earlier):
   acknowledging a rejected packet would let the sender advance past a
   message the receiver dropped, losing it for good. *)
let on_packet t ~deliver (pkt : 'm packet) =
  let ack () =
    match t.acks with
    | Some acks -> Sim.Lossy_link.send acks pkt.tag
    | None -> ()
  in
  let newer =
    (* Clockwise order with a window of half the tag space. *)
    pkt.tag <> t.last_tag
    && (pkt.tag - t.last_tag + t.tag_space) mod t.tag_space
       < t.tag_space / 2
  in
  if pkt.tag = t.last_tag then begin
    (* Duplicate of the delivered message: re-acknowledge (the previous
       acknowledgment may have been lost). *)
    t.stale_streak <- 0;
    ack ()
  end
  else if newer then begin
    t.last_tag <- pkt.tag;
    t.stale_streak <- 0;
    deliver pkt.body;
    ack ()
  end
  else if pkt.tag = t.stale_tag then begin
    (* Only a live sender repeats a tag at retransmission spacing; stale
       duplicates drain in bursts.  Count the streak only across spaced
       arrivals. *)
    let now = Sim.Engine.now t.engine in
    if Sim.Vtime.diff now t.stale_seen_at >= t.retrans / 2 then begin
      t.stale_streak <- t.stale_streak + 1;
      t.stale_seen_at <- now
    end;
    if t.stale_streak >= resync_threshold then begin
      (* A persistently repeated "old" tag is the live sender blocked
         behind our corrupted state: adopt it. *)
      t.last_tag <- pkt.tag;
      t.stale_streak <- 0;
      deliver pkt.body;
      ack ()
    end
  end
  else begin
    t.stale_tag <- pkt.tag;
    t.stale_streak <- 1;
    t.stale_seen_at <- Sim.Engine.now t.engine
  end

let create ~engine ~rng ~delay ?(loss = 0.0) ?(dup = 0.0) ?(retrans = 25)
    ?(tag_space = 1024) ?classify ~name ~deliver () =
  if retrans <= 0 then invalid_arg "Ss_transport.create: retrans must be positive";
  if tag_space < 8 then invalid_arg "Ss_transport.create: tag space too small";
  let classify_pkt =
    match classify with
    | Some f -> Some (fun pkt -> f pkt.body)
    | None -> None
  in
  let rec t =
    lazy
      {
        engine;
        retrans;
        tag_space;
        data =
          Sim.Lossy_link.create ~engine ~rng:(Sim.Rng.split rng)
            ~delay ~loss ~dup ?classify:classify_pkt ~name:(name ^ ".data")
            ~deliver:(fun pkt -> on_packet (Lazy.force t) ~deliver pkt)
            ();
        acks = None;
        queue = Queue.create ();
        current = None;
        tag = 0;
        timer_armed = false;
        sent = 0;
        retrans_ctr =
          Obs.Metrics.counter_ref (Sim.Engine.metrics engine)
            "transport.retrans";
        last_tag = 0;
        stale_tag = -1;
        stale_streak = 0;
        stale_seen_at = Sim.Vtime.zero;
      }
  in
  let t = Lazy.force t in
  t.acks <-
    Some
      (Sim.Lossy_link.create ~engine ~rng:(Sim.Rng.split rng) ~delay ~loss
         ~dup
         ~classify:(fun _ -> Obs.Event.Link_ack)
         ~name:(name ^ ".ack")
         ~deliver:(fun tag -> on_ack t tag)
         ());
  t

let set_loss t p =
  Sim.Lossy_link.set_loss t.data p;
  match t.acks with Some acks -> Sim.Lossy_link.set_loss acks p | None -> ()

let set_dup t p =
  Sim.Lossy_link.set_dup t.data p;
  match t.acks with Some acks -> Sim.Lossy_link.set_dup acks p | None -> ()

let send t ?on_delivered m =
  Queue.push (m, on_delivered) t.queue;
  pump t

let pending t =
  Queue.length t.queue + match t.current with Some _ -> 1 | None -> 0

let packets_sent t = t.sent

let corrupt t rng =
  t.tag <- Sim.Rng.int rng t.tag_space;
  t.last_tag <- Sim.Rng.int rng t.tag_space;
  t.stale_streak <- 0;
  t.stale_tag <- -1;
  Sim.Lossy_link.corrupt_in_flight t.data (fun pkt ->
      if Sim.Rng.bool rng then None
      else Some { pkt with tag = Sim.Rng.int rng t.tag_space });
  match t.acks with
  | Some acks ->
    Sim.Lossy_link.corrupt_in_flight acks (fun _ ->
        Some (Sim.Rng.int rng t.tag_space))
  | None -> ()
