let default_out = Format.std_formatter

let widths header rows =
  let cols = List.length header in
  let w = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < cols then w.(i) <- max w.(i) (String.length cell))
        row)
    (header :: rows);
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let print_row out w row =
  let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
  Format.fprintf out "  %s@." (String.concat "  " cells)

let table ?(out = default_out) ~title ~header rows =
  Format.fprintf out "@.%s@." title;
  let w = widths header rows in
  print_row out w header;
  print_row out w
    (List.mapi (fun i _ -> String.make w.(i) '-') header);
  List.iter (print_row out w) rows

let kv ?(out = default_out) pairs =
  let klen =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  List.iter
    (fun (k, v) -> Format.fprintf out "  %s: %s@." (pad klen k) v)
    pairs

let section ?(out = default_out) title =
  Format.fprintf out "@.=== %s ===@." title

let f1 x = Printf.sprintf "%.1f" x

let pct num denom =
  if denom = 0 then Printf.sprintf "%d/%d (—)" num denom
  else
    Printf.sprintf "%d/%d (%.0f%%)" num denom
      (100.0 *. float_of_int num /. float_of_int denom)

let json_kv pairs =
  Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Str v)) pairs)
