open Util

(* --- Parallel.Pool ---------------------------------------------------- *)

let test_map_order () =
  let xs = List.init 23 Fun.id in
  let squares = Parallel.Pool.map ~domains:4 (fun x -> x * x) xs in
  check_true "order and values preserved"
    (squares = List.map (fun x -> x * x) xs)

let test_map_single_domain () =
  let xs = [ 3; 1; 4; 1; 5 ] in
  check_true "domains=1 is plain map"
    (Parallel.Pool.map ~domains:1 string_of_int xs
    = List.map string_of_int xs)

let test_map_empty () =
  check_true "empty input" (Parallel.Pool.map ~domains:4 Fun.id [] = [])

let test_map_more_domains_than_items () =
  check_true "domains > items"
    (Parallel.Pool.map ~domains:8 succ [ 1; 2 ] = [ 2; 3 ])

let test_map_invalid_domains () =
  match Parallel.Pool.map ~domains:0 Fun.id [ 1 ] with
  | _ -> Alcotest.fail "domains=0 accepted"
  | exception Invalid_argument _ -> ()

let test_failure_lowest_index () =
  (* Items 3 and 7 both raise; the reported failure must be item 3 —
     the lowest index — regardless of which domain hit its error
     first. *)
  match
    Parallel.Pool.map ~domains:4
      (fun x -> if x = 3 || x = 7 then failwith "boom" else x)
      (List.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception Parallel.Pool.Worker_failure (i, Failure _) ->
    check_int "lowest failing index" 3 i
  | exception e -> raise e

let test_item_zero_on_caller_domain () =
  let self = Domain.self () in
  let homes =
    Parallel.Pool.map ~domains:4 (fun _ -> Domain.self ()) [ 0; 1; 2; 3 ]
  in
  check_true "item 0 runs on the calling domain"
    (match homes with d :: _ -> d = self | [] -> false)

(* --- search_parallel ≡ search ---------------------------------------- *)

let mc_cfg ?(n = 3) ?(f = 0) ?(byz = []) ?(writes = 1) ?(reads = 1)
    ?(read_budget = 2) () =
  {
    Mc.Config.family = Mc.Config.Regular;
    n;
    f;
    byz;
    writes;
    reads;
    read_budget;
    menu = [];
    oracle = Mc.Config.Family_default;
  }

let trace_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    List.length a = List.length b && List.for_all2 Mc.Sys.move_equal a b
  | _ -> false

(* The portfolio's slice 0 is the exact sequential search and the merge
   prefers the lowest slice index, so for every config — clean or
   violating — the parallel verdict, exhaustiveness and trace must be
   bit-identical to the sequential ones.  The grid covers a clean
   exhaustive config, a symmetric 2-server one, an atomic-oracle one,
   and a budget-truncated Byzantine config whose sequential search finds
   a violation. *)
let test_parallel_agrees_with_sequential () =
  let grid =
    [
      ("reg-n2", mc_cfg ~n:2 (), None);
      ("reg-n3", mc_cfg (), None);
      ( "atomic-n3",
        { (mc_cfg ()) with Mc.Config.family = Mc.Config.Atomic },
        None );
      ( "reg-n9-2silent",
        mc_cfg ~n:9 ~f:1
          ~byz:[ (0, Mc.Config.Silent); (1, Mc.Config.Silent) ]
          ~read_budget:8 (),
        Some { Mc.Checker.max_states = 20_000; max_depth = 10_000 } );
    ]
  in
  List.iter
    (fun (name, cfg, budgets) ->
      let s = Mc.Checker.search ?budgets cfg in
      let p = Mc.Checker.search_parallel ?budgets ~domains:4 cfg in
      check_true (name ^ ": verdicts equal")
        (Mc.Checker.verdict_equal s.Mc.Checker.verdict p.Mc.Checker.verdict);
      check_true (name ^ ": traces equal")
        (trace_equal s.Mc.Checker.trace p.Mc.Checker.trace);
      if s.Mc.Checker.exhaustive then
        check_true (name ^ ": exhaustive preserved") p.Mc.Checker.exhaustive;
      (* aggregate stats must account for every slice: at least the
         sequential slice's states, and every replay summed *)
      check_true (name ^ ": stats aggregated")
        (p.Mc.Checker.stats.Mc.Checker.states
         >= s.Mc.Checker.stats.Mc.Checker.states))
    grid

let test_parallel_reproducible () =
  let cfg = mc_cfg () in
  let p1 = Mc.Checker.search_parallel ~domains:4 cfg in
  let p2 = Mc.Checker.search_parallel ~domains:4 cfg in
  check_int "states reproducible" p1.Mc.Checker.stats.Mc.Checker.states
    p2.Mc.Checker.stats.Mc.Checker.states;
  check_true "verdict reproducible"
    (Mc.Checker.verdict_equal p1.Mc.Checker.verdict p2.Mc.Checker.verdict)

(* On a violating config, the counterexample the whole [check] pipeline
   ships (shrunk, digest-stamped) must not depend on the domain count:
   the committed examples/mc artifacts stay replayable under any
   --domains value. *)
let test_check_digest_independent_of_domains () =
  let cfg =
    mc_cfg ~n:9 ~f:1
      ~byz:[ (0, Mc.Config.Silent); (1, Mc.Config.Silent) ]
      ~read_budget:8 ()
  in
  let budgets = { Mc.Checker.max_states = 20_000; max_depth = 10_000 } in
  let r1 = Mc.Checker.check ~budgets cfg in
  let r2 = Mc.Checker.check ~budgets ~domains:2 cfg in
  match (r1.Mc.Checker.cex, r2.Mc.Checker.cex) with
  | Some a, Some b ->
    check_true "digests equal"
      (String.equal a.Mc.Checker.digest b.Mc.Checker.digest);
    check_true "traces equal"
      (List.length a.Mc.Checker.trace = List.length b.Mc.Checker.trace
      && List.for_all2 Mc.Sys.move_equal a.Mc.Checker.trace
           b.Mc.Checker.trace)
  | _ -> Alcotest.fail "expected a counterexample from both runs"

(* --- chaos campaign fan-out ------------------------------------------ *)

let test_campaign_domains_deterministic () =
  let cfg =
    {
      (Chaos.Campaign.default_config ~family:Chaos.Campaign.Regular) with
      Chaos.Campaign.writes = 10;
      reads = 8;
      initial = List.init 3 (fun i -> (i, Chaos.Strategy.Collude));
    }
  in
  let logs_seq = Buffer.create 128 and logs_par = Buffer.create 128 in
  let r1 =
    Chaos.Campaign.run
      ~log:(fun l -> Buffer.add_string logs_seq (l ^ "\n"))
      cfg ~seed:11 ~trials:3
  in
  let r2 =
    Chaos.Campaign.run
      ~log:(fun l -> Buffer.add_string logs_par (l ^ "\n"))
      ~domains:3 cfg ~seed:11 ~trials:3
  in
  let verdicts r =
    List.map
      (fun (t : Chaos.Campaign.trial) ->
        Chaos.Campaign.verdict_kind t.outcome.Chaos.Campaign.verdict)
      r.Chaos.Campaign.trials
  in
  check_true "verdicts identical" (verdicts r1 = verdicts r2);
  check_true "log stream identical"
    (String.equal (Buffer.contents logs_seq) (Buffer.contents logs_par));
  check_true "repro artifacts identical"
    (List.for_all2
       (fun (a : Chaos.Campaign.trial) (b : Chaos.Campaign.trial) ->
         match (a.repro, b.repro) with
         | None, None -> true
         | Some ra, Some rb ->
           String.equal
             (Obs.Json.to_string (Chaos.Campaign.repro_to_json ra))
             (Obs.Json.to_string (Chaos.Campaign.repro_to_json rb))
         | _ -> false)
       r1.Chaos.Campaign.trials r2.Chaos.Campaign.trials)

let tests =
  [
    case "pool: map preserves order" test_map_order;
    case "pool: domains=1 is plain map" test_map_single_domain;
    case "pool: empty input" test_map_empty;
    case "pool: more domains than items" test_map_more_domains_than_items;
    case "pool: domains=0 rejected" test_map_invalid_domains;
    case "pool: failure reports lowest index" test_failure_lowest_index;
    case "pool: item 0 on caller domain" test_item_zero_on_caller_domain;
    case "mc: parallel ≡ sequential on config grid"
      test_parallel_agrees_with_sequential;
    case "mc: parallel search reproducible" test_parallel_reproducible;
    case "mc: cex digest independent of domains"
      test_check_digest_independent_of_domains;
    case "chaos: campaign fan-out deterministic"
      test_campaign_domains_deterministic;
  ]
