open Util
open Registers

let m = 101 (* small odd modulus to exercise wrap-around *)

let test_modulus_validation () =
  Alcotest.check_raises "even rejected"
    (Invalid_argument "Seqnum: modulus must be odd and >= 3") (fun () ->
      Seqnum.validate_modulus 100);
  Alcotest.check_raises "tiny rejected"
    (Invalid_argument "Seqnum: modulus must be odd and >= 3") (fun () ->
      Seqnum.validate_modulus 1);
  Seqnum.validate_modulus 3;
  Seqnum.validate_modulus Seqnum.default_modulus

let test_succ_wraps () =
  check_int "succ" 1 (Seqnum.succ ~modulus:m 0);
  check_int "wrap" 0 (Seqnum.succ ~modulus:m (m - 1))

let test_norm () =
  check_int "in range" 5 (Seqnum.norm ~modulus:m 5);
  check_int "overflow" 4 (Seqnum.norm ~modulus:m (m + 4));
  check_int "negative" (m - 1) (Seqnum.norm ~modulus:m (-1))

let test_basic_order () =
  check_true "5 > 3" (Seqnum.gt_cd ~modulus:m 5 3);
  check_false "3 > 5" (Seqnum.gt_cd ~modulus:m 3 5);
  check_true "refl ge" (Seqnum.ge_cd ~modulus:m 7 7);
  check_false "irrefl gt" (Seqnum.gt_cd ~modulus:m 7 7)

let test_wraparound_order () =
  (* Just past the wrap point, small numbers are "newer" than large ones. *)
  check_true "0 newer than m-1" (Seqnum.gt_cd ~modulus:m 0 (m - 1));
  check_true "2 newer than m-3" (Seqnum.gt_cd ~modulus:m 2 (m - 3));
  check_false "m-1 newer than 0" (Seqnum.gt_cd ~modulus:m (m - 1) 0)

let test_antisymmetry_exhaustive () =
  (* With an odd modulus, exactly one of x >_cd y / y >_cd x holds for
     distinct x, y. *)
  for x = 0 to m - 1 do
    for y = 0 to m - 1 do
      if x <> y then
        check_true "strict total on pairs"
          (Seqnum.gt_cd ~modulus:m x y <> Seqnum.gt_cd ~modulus:m y x)
    done
  done

let test_write_order_window () =
  (* Along a run of fewer than m/2 consecutive writes the order matches
     write order, wherever the window sits. *)
  for start = 0 to m - 1 do
    let prev = ref start in
    for _ = 1 to (m / 2) - 1 do
      let next = Seqnum.succ ~modulus:m !prev in
      check_true "later write is cd-greater" (Seqnum.gt_cd ~modulus:m next !prev);
      prev := next
    done
  done

let prop_succ_gt =
  QCheck.Test.make ~name:"succ is >_cd within the window" ~count:500
    QCheck.(pair (int_bound (m - 1)) (int_bound ((m / 2) - 2)))
    (fun (x, steps) ->
      let rec advance v = function 0 -> v | k -> advance (Seqnum.succ ~modulus:m v) (k - 1) in
      let y = advance x (steps + 1) in
      Seqnum.gt_cd ~modulus:m y x)

let prop_transitive_in_window =
  QCheck.Test.make ~name:"order transitive within half-window" ~count:500
    QCheck.(triple (int_bound (m - 1)) (int_bound ((m / 4) - 1)) (int_bound ((m / 4) - 1)))
    (fun (x, a, b) ->
      let y = Seqnum.norm ~modulus:m (x + a + 1) in
      let z = Seqnum.norm ~modulus:m (x + a + b + 2) in
      Seqnum.gt_cd ~modulus:m z y
      && Seqnum.gt_cd ~modulus:m y x
      && Seqnum.gt_cd ~modulus:m z x)

let tests =
  [
    case "modulus validation" test_modulus_validation;
    case "succ wraps" test_succ_wraps;
    case "norm" test_norm;
    case "basic order" test_basic_order;
    case "wraparound order" test_wraparound_order;
    case "antisymmetry (exhaustive)" test_antisymmetry_exhaustive;
    case "write-order windows" test_write_order_window;
    qcheck prop_succ_gt;
    qcheck prop_transitive_in_window;
  ]
