lib/sim/lossy_link.ml: Engine Link List Rng Trace
