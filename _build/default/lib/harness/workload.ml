type gap = { lo : int; hi : int }

let gap lo hi =
  if lo < 0 || hi < lo then invalid_arg "Workload.gap: bad range";
  { lo; hi }

let value_for ~writer k = Registers.Value.int ((writer * 1_000_000) + k)

let pause scn rng g =
  if g.hi > 0 then Scenario.sleep scn (Sim.Rng.int_in rng g.lo g.hi)

let writer_job scn ?(proc = "writer") ?(writer_id = 0) ~write ~count ~gap ()
    =
  let rng = Scenario.split_rng scn in
  for k = 1 to count do
    let v = value_for ~writer:writer_id k in
    ignore
      (Scenario.record scn ~proc ~kind:Oracles.History.Write (fun () ->
           write v;
           Some v));
    pause scn rng gap
  done

let reader_job scn ?(proc = "reader") ~read ~count ~gap () =
  let rng = Scenario.split_rng scn in
  for _ = 1 to count do
    ignore (Scenario.record scn ~proc ~kind:Oracles.History.Read read);
    pause scn rng gap
  done

let mwmr_job scn ~proc ~process ~ops ~write_ratio ~gap ?max_iterations () =
  let rng = Scenario.split_rng scn in
  let pid = Registers.Mwmr.id process in
  let writer_id = 100 + pid in
  let k = ref 0 in
  for _ = 1 to ops do
    if Sim.Rng.float rng 1.0 < write_ratio then begin
      incr k;
      let v = value_for ~writer:writer_id !k in
      let inv = Scenario.now scn in
      Registers.Mwmr.write process v;
      let resp = Scenario.now scn in
      let ts =
        match Registers.Mwmr.last_write_timestamp process with
        | Some (e, s) -> Some (e, s, pid)
        | None -> None
      in
      Oracles.History.record scn.Scenario.history ~proc
        ~kind:Oracles.History.Write ~inv ~resp ?ts v
    end
    else begin
      let inv = Scenario.now scn in
      let result = Registers.Mwmr.read_timestamped ?max_iterations process in
      let resp = Scenario.now scn in
      (* A read that crossed an epoch boundary performed the line-11
         internal write; the checker must see it as a write. *)
      List.iter
        (fun (v, e, s) ->
          Oracles.History.record scn.Scenario.history ~proc
            ~kind:Oracles.History.Write ~inv ~resp ~ts:(e, s, pid) v)
        (Registers.Mwmr.take_restamps process);
      match result with
      | Some (v, e, s, j) ->
        Oracles.History.record scn.Scenario.history ~proc
          ~kind:Oracles.History.Read ~inv ~resp ~ts:(e, s, j) v
      | None ->
        Oracles.History.record scn.Scenario.history ~proc
          ~kind:Oracles.History.Read ~inv ~resp ~ok:false Registers.Value.bot
    end;
    pause scn rng gap
  done
