(* The headline self-stabilization story, end to end.

     dune exec examples/recovery_demo.exe

   A writer/reader pair over 9 servers.  At t=400 a transient fault
   corrupts EVERYTHING the model allows: every server's register copy and
   helping value, the clients' data-link round tags, the messages in
   flight, the writer's bounded sequence counter and the reader's
   (pwsn, pv) bookkeeping.  Watch the reads: arbitrary around the fault,
   correct again from the first post-fault write onward — Theorem 3 live. *)

open Registers

let () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:11 ~params () in
  let net = scn.Harness.Scenario.net in
  let w = Swsr_atomic.writer ~net ~client_id:1 ~inst:0 ~modulus:101 () in
  let r = Swsr_atomic.reader ~net ~client_id:2 ~inst:0 ~modulus:101 () in
  (* Register every corruptible piece of client state with the injector. *)
  Harness.Scenario.register_port scn (Swsr_atomic.writer_port w);
  Harness.Scenario.register_port scn (Swsr_atomic.reader_port r);
  Harness.Scenario.register_atomic_writer scn ~name:"writer" w;
  Harness.Scenario.register_atomic_reader scn ~name:"reader" r;
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int 400) ~prefix:"";

  let expected = ref Value.bot in
  ignore
    (Sim.Fiber.spawn ~name:"writer" (fun () ->
         for i = 1 to 30 do
           let v = Value.int (1000 + i) in
           Swsr_atomic.write w v;
           expected := v;
           Harness.Scenario.sleep scn 25
         done));
  ignore
    (Sim.Fiber.spawn ~name:"reader" (fun () ->
         for _ = 1 to 30 do
           let t = Sim.Vtime.to_int (Harness.Scenario.now scn) in
           (match Swsr_atomic.read r with
           | Some v ->
             let fresh = Value.equal v !expected in
             Printf.printf "t=%-5d read %-14s %s\n" t (Value.to_string v)
               (if fresh then "(current)"
                else if t > 380 && t < 480 then "<-- fault window"
                else "(admissible overlap)")
           | None -> assert false);
           Harness.Scenario.sleep scn 25
         done));
  Harness.Scenario.run scn;
  print_endline "\nThe register stabilized: corruption of every component";
  print_endline "survived exactly until the first post-fault write (Thm 3)."
