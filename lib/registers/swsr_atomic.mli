(** Practically stabilizing Byzantine-tolerant SWSR {e atomic} register —
    Figure 3 (asynchronous, [t < n/8]; the same code with synchronous
    parameters gives the [t < n/3] variant noted at the end of §4).

    Extends the regular register with a bounded write sequence number [wsn]
    compared under the clockwise order [>_cd] ({!Seqnum}), letting the
    reader suppress new/old inversions as long as fewer than
    [system-life-span] writes separate two reads.  The writer's [wsn] and
    the reader's [(pwsn, pv)] bookkeeping survive between operations and are
    exactly the process-local state transient faults may corrupt — register
    them with a {!Sim.Fault} plan via {!corrupt_writer} / {!corrupt_reader}. *)

type writer

type reader

val writer :
  net:Net.t -> client_id:int -> inst:int -> ?modulus:int -> unit -> writer
(** [modulus] bounds [wsn] (default {!Seqnum.default_modulus}; must be odd,
    tiny values are valid and exercise wrap-around). *)

val reader :
  net:Net.t ->
  client_id:int ->
  inst:int ->
  ?modulus:int ->
  ?sanity_check:bool ->
  unit ->
  reader
(** [sanity_check] (default [true]) enables the lines N2–N7 preliminary
    phase that validates the local [(pwsn, pv)] pair against a quorum of
    helping values before each read.  Disabling it is an ablation knob
    (experiment E12): without it, a reader whose bookkeeping was corrupted
    {e above} the writer's counter keeps returning its stale [pv] until the
    bounded counter wraps past the corruption. *)

val write : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit
(** prac_at_write(v): lines N1, 01M, 02–06. Must run inside a fiber. *)

val read :
  ?parent:Obs.Trace_ctx.span -> ?max_iterations:int -> reader -> Value.t option
(** prac_at_read(): lines N2–N7, 07–18 with the 13M/15M modifications.
    Must run inside a fiber.  [None] only under a finite [max_iterations]
    budget exhausted (see {!Swsr_regular.read}). *)

val write_o : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit Outcome.t
(** {!write} with a typed service-level outcome (see
    {!Swsr_regular.write_o}). *)

val read_o :
  ?parent:Obs.Trace_ctx.span ->
  ?max_iterations:int ->
  reader ->
  Value.t Outcome.t
(** {!read} with a typed service-level outcome (see
    {!Swsr_regular.read_o}); the sanity phase's collection attempt is also
    deadline-bounded (and skipped when it expires — it is advisory). *)

val wsn : writer -> Seqnum.t
(** Current write sequence number (inspection). *)

val set_wsn : writer -> Seqnum.t -> unit
(** Composition hook: force the counter (normalized into the modulus).
    Multi-copy compositions ({!Swmr_wb}) keep their copies' counters in
    lockstep through it so that sequence numbers are comparable across
    copies even after a transient fault desynchronizes them. *)

val pwsn : reader -> Seqnum.t

val pv : reader -> Value.t

val corrupt_writer : writer -> Sim.Rng.t -> unit
(** Transient fault on the writer's persistent state ([wsn]). *)

val corrupt_reader : reader -> Sim.Rng.t -> unit
(** Transient fault on the reader's persistent state ([pwsn], [pv]). *)

val corrupt_reader_to : reader -> pwsn:Seqnum.t -> pv:Value.t -> unit
(** Targeted transient fault: set the reader's bookkeeping to a chosen
    (worst-case) state — e.g. a [pwsn] clockwise-ahead of the writer's
    counter, the configuration the lines N2–N7 sanity phase repairs. *)

val reader_iterations : reader -> int

val help_returns : reader -> int

val writer_port : writer -> Net.client_port
(** The writer's communication port (fault-injection target). *)

val reader_port : reader -> Net.client_port

val inversion_preventions : reader -> int
(** How many reads returned the locally stored [pv] because the quorum's
    sequence number was not newer (line 13M3) — each is a suppressed
    would-be new/old inversion or a harmless re-read of the same value. *)
