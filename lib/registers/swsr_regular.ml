type writer = {
  net : Net.t;
  port : Net.client_port;
  inst : int;
  probe : Instr.probe;
}

type reader = {
  net : Net.t;
  port : Net.client_port;
  inst : int;
  probe : Instr.probe;
  mutable iterations : int;
  mutable help_returns : int;
}

let writer ~net ~client_id ~inst =
  {
    net;
    port = Net.add_client net ~id:client_id;
    inst;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swsr_regular" `Write;
  }

let reader ~net ~client_id ~inst =
  {
    net;
    port = Net.add_client net ~id:client_id;
    inst;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swsr_regular" `Read;
    iterations = 0;
    help_returns = 0;
  }

(* operation write(v): lines 01-06.  The regular register carries no
   sequence number, so cells use sn = 0 throughout. *)
let write_o ?parent (w : writer) v =
  let span = Instr.start ?parent w.probe in
  let ctx = Instr.ctx span in
  let params = Net.params w.net in
  let cell = { Messages.sn = Seqnum.zero; v } in
  let c =
    Collect.retrying ~span:ctx ~net:w.net ~port:w.port ~inst:w.inst
      ~body:(Messages.Write cell) ~filter:Collect.write_filter ()
  in
  let threshold = Params.help_refresh_threshold params in
  (match Quorum.find_help ~threshold c.Collect.payloads with
  | Some _ -> ()
  | None ->
    ignore
      (Net.ss_broadcast ~span:ctx w.net w.port ~inst:w.inst
         (Messages.New_help cell)));
  let outcome = Collect.judge ~net:w.net ~port:w.port c in
  Sim.Trace.incr (Sim.Engine.trace (Net.engine w.net)) "write.ops";
  (* Without a retry policy a completed (blocking / sync-timeout) wait is
     success by definition — the legacy trace semantics. *)
  Instr.finish
    ~ok:(Outcome.is_ok outcome || Params.retry params = None)
    w.probe span;
  outcome

let write ?parent (w : writer) v = ignore (write_o ?parent w v)

(* operation read(): lines 07-18, with each inquiry round bounded by the
   retry policy's per-attempt deadline (when one is installed). *)
let read_o ?parent ?(max_iterations = max_int) (r : reader) =
  let span = Instr.start ?parent r.probe in
  let ctx = Instr.ctx span in
  let params = Net.params r.net in
  let threshold = Params.read_quorum params in
  let timeout_budget =
    match Params.retry params with
    | None -> max_int
    | Some rc -> max 1 rc.Params.attempts
  in
  let new_read = ref true in
  let attempts = ref 0 in
  let timeouts = ref 0 in
  let best_acks = ref 0 in
  let rec loop budget =
    if budget <= 0 || !timeouts >= timeout_budget then None
    else begin
      r.iterations <- r.iterations + 1;
      incr attempts;
      let round =
        Net.ss_broadcast ~span:ctx r.net r.port ~inst:r.inst
          (Messages.Read !new_read)
      in
      new_read := false;
      let a =
        Collect.attempt_once ~net:r.net ~port:r.port ~round
          ~attempt:(!attempts - 1) ~filter:Collect.read_filter
      in
      if a.Collect.acks > !best_acks then best_acks := a.Collect.acks;
      let acks = a.Collect.payloads in
      let lasts = List.map fst acks in
      match Quorum.find_cell ~threshold lasts with
      | Some cell -> Some cell.Messages.v (* line 13: regular or atomic *)
      | None -> (
        let helps = List.map snd acks in
        match Quorum.find_help ~threshold helps with
        | Some cell ->
          r.help_returns <- r.help_returns + 1;
          Some cell.Messages.v (* line 15: atomic *)
        | None ->
          if a.Collect.expired then begin
            incr timeouts;
            if !timeouts < timeout_budget && budget > 1 then
              Collect.backoff_wait ~net:r.net ~port:r.port ~attempt:!timeouts
          end;
          loop (budget - 1))
    end
  in
  let result = loop max_iterations in
  let outcome =
    match result with
    | Some v -> Outcome.Ok v
    | None ->
      let reason =
        Collect.reason_of ~net:r.net ~port:r.port ~attempts:(max 1 !attempts)
          ~acks:!best_acks ~need:(Params.ack_wait params)
      in
      if !best_acks >= threshold then Outcome.Degraded reason
      else Outcome.Timed_out reason
  in
  Sim.Trace.incr (Sim.Engine.trace (Net.engine r.net)) "read.ops";
  Instr.finish ~ok:(Outcome.is_ok outcome) r.probe span;
  outcome

let read ?parent ?max_iterations (r : reader) =
  Outcome.to_option (read_o ?parent ?max_iterations r)

let reader_iterations r = r.iterations

let help_returns r = r.help_returns

let writer_port (w : writer) = w.port

let reader_port (r : reader) = r.port
