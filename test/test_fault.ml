open Util

let test_register_and_names () =
  let f = Sim.Fault.create () in
  Sim.Fault.register f ~name:"server.0" ignore;
  Sim.Fault.register f ~name:"server.1" ignore;
  Sim.Fault.register f ~name:"client.w" ignore;
  check_true "names in order"
    (Sim.Fault.names f = [ "server.0"; "server.1"; "client.w" ])

let test_inject_matching () =
  let f = Sim.Fault.create () in
  let hits = ref [] in
  List.iter
    (fun name -> Sim.Fault.register f ~name (fun _ -> hits := name :: !hits))
    [ "server.0"; "server.1"; "client.w" ];
  let rng = Sim.Rng.create 1 in
  let n = Sim.Fault.inject_matching f ~rng ~prefix:"server." in
  check_int "two hit" 2 n;
  check_true "right targets"
    (List.sort String.compare !hits = [ "server.0"; "server.1" ])

let test_inject_all () =
  let f = Sim.Fault.create () in
  let count = ref 0 in
  for i = 0 to 4 do
    Sim.Fault.register f
      ~name:(Printf.sprintf "t%d" i)
      (fun _ -> incr count)
  done;
  let rng = Sim.Rng.create 1 in
  check_int "all five" 5 (Sim.Fault.inject_all f ~rng);
  check_int "all ran" 5 !count

let test_rng_passed_through () =
  let f = Sim.Fault.create () in
  let seen = ref (-1) in
  Sim.Fault.register f ~name:"x" (fun rng -> seen := Sim.Rng.int rng 100);
  ignore (Sim.Fault.inject_all f ~rng:(Sim.Rng.create 5));
  check_true "corruption drew randomness" (!seen >= 0)

let test_segment_boundaries () =
  (* "server.1" must hit server.1 and its sub-state, never server.10. *)
  let f = Sim.Fault.create () in
  let hits = ref [] in
  List.iter
    (fun name -> Sim.Fault.register f ~name (fun _ -> hits := name :: !hits))
    [ "server.1"; "server.1.cell"; "server.10"; "server.10.cell" ];
  let rng = Sim.Rng.create 1 in
  let n = Sim.Fault.inject_matching f ~rng ~prefix:"server.1" in
  check_int "exact segment plus children" 2 n;
  check_true "server.10 untouched"
    (List.sort String.compare !hits = [ "server.1"; "server.1.cell" ]);
  (* A trailing dot descends: children only, not the bare name. *)
  hits := [];
  check_int "trailing dot hits the children" 1
    (Sim.Fault.inject_matching f ~rng ~prefix:"server.1.");
  check_true "only the sub-state" (!hits = [ "server.1.cell" ])

let test_segment_boundaries_dotted () =
  let f = Sim.Fault.create () in
  let count = ref 0 in
  List.iter
    (fun name -> Sim.Fault.register f ~name (fun _ -> incr count))
    [ "server.1"; "server.10"; "server.12.cell" ]
  ;
  let rng = Sim.Rng.create 2 in
  check_int "\"server.\" is a plain prefix" 3
    (Sim.Fault.inject_matching f ~rng ~prefix:"server.");
  check_int "\"server.1\" only the exact slot" 1
    (Sim.Fault.inject_matching f ~rng ~prefix:"server.1");
  check_int "\"server\" covers the whole segment" 3
    (Sim.Fault.inject_matching f ~rng ~prefix:"server");
  check_int "\"serv\" covers nothing (partial segment)" 0
    (Sim.Fault.inject_matching f ~rng ~prefix:"serv");
  check_int "empty prefix is inject-all" 3
    (Sim.Fault.inject_matching f ~rng ~prefix:"")

let test_scheduled_injection () =
  let rng = Sim.Rng.create 1 in
  let e = Sim.Engine.create ~rng () in
  let f = Sim.Fault.create () in
  let corrupted_at = ref (-1) in
  Sim.Fault.register f ~name:"cell" (fun _ ->
      corrupted_at := Sim.Vtime.to_int (Sim.Engine.now e));
  Sim.Fault.schedule f ~engine:e ~at:(Sim.Vtime.of_int 25) ~prefix:"";
  Sim.Engine.run e;
  check_int "fired at the right instant" 25 !corrupted_at;
  check_int "counter recorded" 1
    (Sim.Trace.counter (Sim.Engine.trace e) "fault.injections")

let tests =
  [
    case "register/names" test_register_and_names;
    case "inject matching" test_inject_matching;
    case "inject all" test_inject_all;
    case "rng passthrough" test_rng_passed_through;
    case "scheduled injection" test_scheduled_injection;
    case "prefixes respect segment boundaries" test_segment_boundaries;
    case "segment matching corner cases" test_segment_boundaries_dotted;
  ]
