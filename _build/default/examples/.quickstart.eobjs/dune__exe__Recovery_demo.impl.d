examples/recovery_demo.ml: Harness Params Printf Registers Sim Swsr_atomic Value
