(** Stateful bounded DFS over {!Sys} executions, with safety +
    stabilization oracles, sleep-set partial-order reduction, shrinking,
    and replayable counterexample artifacts.

    The explorer enumerates every interleaving of pending deliveries and
    corruption-menu strikes up to the configured budgets, re-executing
    prefixes from scratch where a snapshot would be needed (OCaml fibers
    cannot be cloned).  States are merged by {!Sys.fingerprint}, interned
    in the visited table under a 64-bit structural key with full-digest
    collision verification.  Each visited state keeps the residual sleep
    set — the enabled moves no visit has explored from it yet: a revisit
    re-explores exactly that residual minus its own sleep set and nothing
    else (Godefroid's sleep sets combined with state matching), which
    both keeps the sleep-set/visited-set combination sound and avoids
    re-expanding already-covered successors. *)

type verdict =
  | Clean
  | Violation of { kind : string; count : int; detail : string }
      (** [kind] is the oracle's issue class (e.g. ["new-old-inversion"],
          ["stuck"]); [detail] is the first offending witness. *)

val verdict_kind : verdict -> string

val same_verdict : verdict -> verdict -> bool
(** Same kind (used by the shrinker: any violation of the same class
    counts as a reproduction). *)

val verdict_equal : verdict -> verdict -> bool
(** Structural equality (used by strict artifact replay). *)

val pp_verdict : Format.formatter -> verdict -> unit

val terminal_verdict : Sys.t -> verdict
(** Judge a terminal (no enabled moves) execution: deadlocked fibers
    first, then the stabilization-segmented register condition — the
    history is cut at every corruption instant and each segment checked
    from its first completed write, so only quiescent suffixes after the
    last disturbance must be legal. *)

type reduction = No_reduction | Sleep_sets

val reduction_to_string : reduction -> string

type budgets = { max_states : int; max_depth : int }

val default_budgets : budgets
(** 2,000,000 states, depth 10,000. *)

type stats = {
  mutable states : int;  (** nodes expanded *)
  mutable transitions : int;
  mutable terminals : int;
  mutable revisits : int;
      (** arrivals at an already-visited state (pruned outright or
          partially re-expanded from the stored residual) *)
  mutable sleep_skips : int;  (** moves skipped by sleep sets *)
  mutable sym_skips : int;  (** moves skipped as symmetric to a sibling *)
  mutable replays : int;  (** prefix re-executions (no snapshots) *)
  mutable off_target : int;  (** violations ignored by a [target] filter *)
  mutable fp_collisions : int;
      (** distinct full digests interned under an already-occupied 8-byte
          visited-set key — how often the two-layer table actually needed
          its second layer *)
  mutable peak_visited : int;
  mutable max_depth_seen : int;
  mutable truncated : bool;  (** some budget cut the search *)
}

type outcome = {
  verdict : verdict;
  exhaustive : bool;
      (** [true] iff no state/depth budget truncated the search: a [Clean]
          exhaustive outcome is a proof over the bounded configuration *)
  stats : stats;
  trace : Sys.move list option;  (** violating trace, execution order *)
}

val search :
  ?budgets:budgets ->
  ?reduction:reduction ->
  ?use_visited:bool ->
  ?seed:int ->
  ?target:string ->
  ?recorder:Obs.Profile.t ->
  Config.t ->
  outcome
(** Explore until a violation, exhaustion, or a budget.  Raises
    [Invalid_argument] on an invalid config.  [use_visited:false]
    additionally disables state merging (for cross-checking the
    fingerprint on tiny configs).

    [seed] shuffles the sibling order at every node (deterministically
    from the seed).  Sleep sets, subsumption and symmetry pruning are
    order-agnostic, so the reduced state space — and hence any exhaustive
    verdict — is unchanged; only which corner a state budget reaches
    first differs.  Use different seeds to hunt bugs that hide from the
    default order (swarm-style).

    [target] restricts the hunt to one violation kind (e.g.
    ["inversion"]): terminals violating some other way are counted in
    [stats.off_target] and skipped.  An exhaustive [Clean] outcome under
    a target only certifies the absence of that kind.

    [recorder] is a flight recorder ({!Obs.Profile}) sampled on the
    deterministic state counter: each sample snapshots the live stats
    record plus the current frontier depth and visited-set occupancy,
    and a final forced sample closes the timeline.  Recording never
    perturbs the search (no verdict, trace or stat changes). *)

val search_parallel :
  ?budgets:budgets ->
  ?reduction:reduction ->
  ?use_visited:bool ->
  ?seed:int ->
  ?target:string ->
  ?recorder:Obs.Profile.t ->
  ?domains:int ->
  Config.t ->
  outcome
(** {!search} as a swarm of [domains] independent portfolio slices, one
    per domain.  Slice 0 is exactly the sequential {!search} (same
    [seed]); slices [1..K-1] shuffle their sibling order from derived
    seeds, reaching different corners of the same reduced space first.
    Determinism is absolute: every slice runs to completion (no
    early-stop broadcast) and the merge is a fold in slice order — the
    lowest-indexed violating slice supplies the reported verdict and
    trace, so when the sequential search finds a violation the swarm
    reports the bit-identical counterexample.  A merged [Clean] is
    [exhaustive] iff some slice covered the bounded space within its
    budgets.  [stats] are summed across slices ([max_depth_seen] is the
    max; [peak_visited] sums the per-slice tables, i.e. aggregate
    resident states).  With [domains:1] this is {!search} itself; with
    more, wall-clock throughput scales with the domain count while the
    result stays a pure function of the inputs.  Raises
    [Invalid_argument] if [domains < 1] or the config is invalid.

    With [recorder] and [domains > 1], every slice records into its own
    {!Obs.Profile.branch} (a recorder must not be shared across
    domains); after the join the caller's recorder gains a ["domains"]
    section of per-slice summaries (states, transitions, utilization =
    share of the aggregate states, and the slice's own samples) plus one
    forced aggregate sample. *)

val shrink :
  ?log:(string -> unit) ->
  Config.t ->
  Sys.move list ->
  verdict ->
  Sys.move list * verdict * int
(** [shrink cfg trace verdict] minimizes a violating trace: shortest
    forced prefix whose deterministic canonical completion still yields a
    violation of the same kind, then drops unneeded corruption moves.
    Returns the complete concrete (strict-replayable) move list of the
    minimized execution, its verdict, and the number of re-executions. *)

(** {2 Counterexample artifacts} *)

val cex_schema : string
(** ["stabreg/mc-cex/v1"] *)

type cex = {
  config : Config.t;
  trace : Sys.move list;  (** complete, strict-replayable *)
  verdict : verdict;
  states : int;  (** states expanded when the violation was found *)
  digest : string;  (** terminal-state fingerprint *)
}

val cex_to_json : cex -> Obs.Json.t

val cex_of_json : Obs.Json.t -> (cex, string) result

val replay : cex -> (verdict, string) result
(** Strict bit-for-bit replay: every recorded move must fire, the
    terminal verdict must be structurally equal to the recorded one, and
    the terminal fingerprint must match the recorded digest. *)

(** {2 Guided witness schedules} *)

val guide_schema : string
(** ["stabreg/mc-guide/v1"] *)

val guide_of_json : Obs.Json.t -> (Config.t * Sys.move list, string) result
(** Parse a guide file: a config plus a schedule of moves to force — a
    counterexample artifact without the outcome fields.  A full cex
    artifact is accepted too (its recorded outcome is ignored). *)

(** {2 One-call drivers} *)

type run = { outcome : outcome; cex : cex option; shrink_runs : int }

val check :
  ?budgets:budgets ->
  ?reduction:reduction ->
  ?use_visited:bool ->
  ?seed:int ->
  ?target:string ->
  ?recorder:Obs.Profile.t ->
  ?domains:int ->
  ?shrink_violations:bool ->
  ?log:(string -> unit) ->
  Config.t ->
  run
(** {!search_parallel} (sequential when [domains] is omitted or [1]); on
    a violation, {!shrink} it (unless disabled) and package the result as
    a replayable {!cex}.  The returned outcome's verdict is the (possibly
    shrunk) final verdict. *)

val guided :
  ?shrink_violations:bool ->
  ?log:(string -> unit) ->
  Config.t ->
  Sys.move list ->
  run
(** Guided witness checking (the moral equivalent of simulating a SPIN
    trail): execute the schedule as a forced prefix — moves that cannot
    fire are skipped — then drain deterministically to a terminal state
    and judge it.  A violation is shrunk and packaged exactly like
    {!check}'s.  Useful for interleavings a budgeted search cannot reach
    unaided: the author scripts only the critical deliveries.  Never
    claims exhaustiveness.  Raises [Invalid_argument] on an invalid
    config. *)
