lib/sim/link.ml: Engine List Rng Trace Vtime
