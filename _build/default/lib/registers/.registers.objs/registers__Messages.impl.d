lib/registers/messages.ml: Format Seqnum Sim Value
