(* Interface stub so the fixture tree only trips R5 where intended. *)
