open Util
open Registers

let plant_poison scn ~servers ~sn v =
  List.iter
    (fun s ->
      let srv = Byzantine.Adversary.server scn.Harness.Scenario.adversary s in
      let i = Server.instance srv 0 in
      i.Server.last_val <- { Messages.sn; v })
    servers

let test_nonstab_normal_operation () =
  let scn = async_scenario () in
  Baseline.Nonstab.install_servers ~net:scn.Harness.Scenario.net
    (Byzantine.Adversary.servers scn.Harness.Scenario.adversary);
  let w = Baseline.Nonstab.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Baseline.Nonstab.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let got = ref None in
  run_fiber scn "wr" (fun () ->
      Baseline.Nonstab.write w (int_value 1);
      Baseline.Nonstab.write w (int_value 2);
      got := Baseline.Nonstab.read r);
  Alcotest.(check (option value)) "classical read" (Some (int_value 2)) !got;
  check_int "timestamps grow" 2 (Baseline.Nonstab.timestamp w)

let test_nonstab_poisoned_timestamp_wedges () =
  (* The classic non-self-stabilizing failure: t+1 servers wake up with an
     agreed-upon huge timestamp.  Reads return the poison forever, no
     matter how much the writer writes. *)
  let scn = async_scenario ~seed:3 () in
  Baseline.Nonstab.install_servers ~net:scn.Harness.Scenario.net
    (Byzantine.Adversary.servers scn.Harness.Scenario.adversary);
  let w = Baseline.Nonstab.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Baseline.Nonstab.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let poison = Value.str "poison" in
  let observed = ref [] in
  run_fiber scn "wr" (fun () ->
      Baseline.Nonstab.write w (int_value 1);
      plant_poison scn ~servers:[ 4; 5; 6 ] ~sn:1_000_000 poison;
      for i = 2 to 8 do
        Baseline.Nonstab.write w (int_value i);
        observed := Baseline.Nonstab.read r :: !observed
      done);
  List.iter
    (fun v ->
      Alcotest.(check (option value)) "poison returned forever" (Some poison) v)
    !observed

let test_paper_register_shrugs_off_same_poison () =
  (* The identical poisoned configuration against the Fig. 3 register: the
     2t+1 quorum requirement makes the two poisoned servers irrelevant. *)
  let scn = async_scenario ~seed:3 () in
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
  let poison = Value.str "poison" in
  let observed = ref [] in
  run_fiber scn "wr" (fun () ->
      Swsr_atomic.write w (int_value 1);
      plant_poison scn ~servers:[ 4; 5; 6 ] ~sn:1_000_000 poison;
      for i = 2 to 8 do
        Swsr_atomic.write w (int_value i);
        observed := (i, Swsr_atomic.read r) :: !observed
      done);
  List.iter
    (fun (i, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "correct value %d" i)
        (Some (int_value i))
        v)
    !observed

let test_nonstab_writer_rollback_wedges () =
  (* Rolling the writer's volatile counter back has the same effect: new
     writes carry stale timestamps and lose to the old value. *)
  let scn = async_scenario ~seed:4 () in
  Baseline.Nonstab.install_servers ~net:scn.Harness.Scenario.net
    (Byzantine.Adversary.servers scn.Harness.Scenario.adversary);
  let w = Baseline.Nonstab.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Baseline.Nonstab.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let observed = ref [] in
  run_fiber scn "wr" (fun () ->
      for i = 1 to 20 do
        Baseline.Nonstab.write w (int_value i)
      done;
      Baseline.Nonstab.corrupt_writer w (Harness.Scenario.split_rng scn);
      check_true "rolled back" (Baseline.Nonstab.timestamp w < 20);
      Baseline.Nonstab.write w (int_value 100);
      observed := [ Baseline.Nonstab.read r ]);
  List.iter
    (fun v ->
      Alcotest.(check (option value))
        "stale value wins over the rolled-back write" (Some (int_value 20)) v)
    !observed

let test_quiescent_fine_when_quiescent () =
  let scn = async_scenario ~seed:5 () in
  let w = Baseline.Quiescent.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let r = Baseline.Quiescent.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let got = ref None in
  run_fiber scn "wr" (fun () ->
      Baseline.Quiescent.write w (int_value 6);
      got := Baseline.Quiescent.read r);
  Alcotest.(check (option value)) "quiescent read fine" (Some (int_value 6)) !got

let read_pressure_comparison seed =
  (* Continuous-writer pressure against both designs, each at its own
     paper's sizing: the quiescence-dependent register of [3] at
     n = 5t+1 + 1 = 6, the helping register at n = 8t+1 = 9.  At the [3]
     sizing a read round can find no 2t+1 agreement while a write is in
     flight, so without quiescence some reads starve — the phenomenon the
     helping mechanism removes.  Report (quiescent failures, quiescent
     iterations, helping failures, helping iterations). *)
  (* Quiescence-dependent register. *)
  let scn1 =
    Harness.Scenario.create ~seed
      ~params:(Params.create_unchecked ~n:6 ~f:1 ~mode:Params.Async ()) ()
  in
  Byzantine.Adversary.compromise scn1.Harness.Scenario.adversary 0
    Byzantine.Behavior.equivocate;
  let qw = Baseline.Quiescent.writer ~net:scn1.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let qr = Baseline.Quiescent.reader ~net:scn1.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let q_fail = ref 0 in
  run_fibers scn1
    [
      ( "writer",
        fun () ->
          for i = 1 to 80 do
            Baseline.Quiescent.write qw (int_value i)
          done );
      ( "reader",
        fun () ->
          for _ = 1 to 12 do
            match Baseline.Quiescent.read ~max_iterations:4 qr with
            | None -> incr q_fail
            | Some _ -> ()
          done );
    ];
  (* The paper's register with the helping mechanism. *)
  let scn2 = async_scenario ~seed ~n:9 ~f:1 () in
  Byzantine.Adversary.compromise scn2.Harness.Scenario.adversary 0
    Byzantine.Behavior.equivocate;
  let hw = Swsr_regular.writer ~net:scn2.Harness.Scenario.net ~client_id:100 ~inst:0 in
  let hr = Swsr_regular.reader ~net:scn2.Harness.Scenario.net ~client_id:101 ~inst:0 in
  let h_fail = ref 0 in
  run_fibers scn2
    [
      ( "writer",
        fun () ->
          for i = 1 to 80 do
            Swsr_regular.write hw (int_value i)
          done );
      ( "reader",
        fun () ->
          for _ = 1 to 12 do
            match Swsr_regular.read ~max_iterations:4 hr with
            | None -> incr h_fail
            | Some _ -> ()
          done );
    ];
  (!q_fail, Baseline.Quiescent.reader_iterations qr, !h_fail,
   Swsr_regular.reader_iterations hr)

let test_helping_beats_quiescence_under_pressure () =
  (* Aggregated over seeds: the helping register never fails, and spends
     no more iterations than the quiescence-dependent one. *)
  let q_fails = ref 0 and h_fails = ref 0 in
  let q_iters = ref 0 and h_iters = ref 0 in
  for seed = 1 to 10 do
    let qf, qi, hf, hi = read_pressure_comparison seed in
    q_fails := !q_fails + qf;
    h_fails := !h_fails + hf;
    q_iters := !q_iters + qi;
    h_iters := !h_iters + hi
  done;
  check_int "helping register never fails" 0 !h_fails;
  check_true "helping needs no more iterations" (!h_iters <= !q_iters);
  (* The phenomenon the paper's [3]-comparison predicts: without helping,
     continuous writes starve some reads. *)
  check_true "quiescent register worse on some schedule"
    (!q_fails > 0 || !q_iters > !h_iters)

let tests =
  [
    case "nonstab normal operation" test_nonstab_normal_operation;
    case "nonstab poisoned timestamp wedges" test_nonstab_poisoned_timestamp_wedges;
    case "paper register shrugs off poison" test_paper_register_shrugs_off_same_poison;
    case "nonstab writer rollback wedges" test_nonstab_writer_rollback_wedges;
    case "quiescent register, quiescent writer" test_quiescent_fine_when_quiescent;
    case "helping beats quiescence under pressure" test_helping_beats_quiescence_under_pressure;
  ]
