type family = Regular | Atomic | Mwmr

let family_to_string = function
  | Regular -> "regular"
  | Atomic -> "atomic"
  | Mwmr -> "mwmr"

let family_of_string = function
  | "regular" -> Ok Regular
  | "atomic" -> Ok Atomic
  | "mwmr" -> Ok Mwmr
  | s -> Error (Printf.sprintf "unknown register family %S" s)

type medium = Fifo | Lossy

let medium_to_string = function Fifo -> "fifo" | Lossy -> "lossy"

let medium_of_string = function
  | "fifo" -> Ok Fifo
  | "lossy" -> Ok Lossy
  | s -> Error (Printf.sprintf "unknown medium %S" s)

let lossy_base = (0.05, 0.02)

let lossy_retrans = 30

type config = {
  family : family;
  n : int;
  f : int;
  medium : medium;
  initial : (int * Strategy.t) list;
  writes : int;
  reads : int;
  read_budget : int;
  gap_hi : int;
  horizon : int;
  injections : int;
  roams : int;
  roam_max : int;
  windows : int;
  window_max : int;
  crashes : int;
  crash_down : int;
}

let default_config ~family =
  {
    family;
    n = 9;
    f = 1;
    medium = Fifo;
    initial = [ (0, Strategy.Garbage) ];
    writes = 60;
    reads = 45;
    read_budget = 64;
    gap_hi = 25;
    horizon = 3000;
    injections = 3;
    roams = 2;
    roam_max = 1;
    windows = 2;
    window_max = 400;
    crashes = 0;
    crash_down = 250;
  }

type verdict =
  | Clean
  | Violation of { kind : string; count : int; detail : string }

let verdict_kind = function
  | Clean -> "clean"
  | Violation { kind; _ } -> kind

let same_verdict a b = String.equal (verdict_kind a) (verdict_kind b)

let pp_verdict fmt = function
  | Clean -> Format.pp_print_string fmt "clean"
  | Violation { kind; count; detail } ->
    Format.fprintf fmt "%s x%d (%s)" kind count detail

type outcome = {
  verdict : verdict;
  ops : int;
  duration : int;
  stuck : string list;
}

(* ------------------------------------------------------------------ *)
(* Schedule generation                                                *)

(* Decorrelate the generation stream from the scenario's own generator
   (Scenario.create seeds splitmix from the same trial seed). *)
let gen_rng seed = Sim.Rng.create (seed + 0x5eed_0c4a)

let gen_prefix cfg rng =
  let roll = Sim.Rng.int rng 100 in
  if roll < 40 then "server."
  else if roll < 60 then Printf.sprintf "server.%d" (Sim.Rng.int rng cfg.n)
  else if roll < 75 then "client."
  else if roll < 90 then "link."
  else ""

let gen_roam cfg rng =
  let at = Sim.Rng.int_in rng 1 cfg.horizon in
  let budget = max 0 (min cfg.roam_max cfg.f) in
  let count = Sim.Rng.int_in rng 0 budget in
  let slots = Array.init cfg.n Fun.id in
  Sim.Rng.shuffle rng slots;
  let assign =
    List.init count (fun i ->
        (slots.(i), Sim.Rng.pick rng Strategy.default_pool))
  in
  (* Slots are distinct (drawn from a shuffle), so ordering by slot alone
     is already a total order on the assignment. *)
  let by_slot (a, _) (b, _) = Int.compare a b in
  Schedule.Roam { at; assign = List.sort by_slot assign }

let gen_window cfg rng =
  let at = Sim.Rng.int_in rng 1 cfg.horizon in
  let duration = Sim.Rng.int_in rng (min 50 cfg.window_max) cfg.window_max in
  let dir =
    Sim.Rng.pick rng
      [| Schedule.Both; Schedule.To_servers; Schedule.From_servers |]
  in
  if Sim.Rng.int rng 3 = 0 then
    (* directed partition: one server slot unreachable for the window *)
    Schedule.Window
      {
        at;
        duration;
        loss = 1.0;
        dup = 0.0;
        dir;
        server = Some (Sim.Rng.int rng cfg.n);
      }
  else
    let loss = 0.3 +. Sim.Rng.float rng 0.6 in
    let dup = Sim.Rng.float rng 0.5 in
    Schedule.Window { at; duration; loss; dup; dir; server = None }

let gen_crash cfg rng =
  let at = Sim.Rng.int_in rng 1 cfg.horizon in
  let server = Sim.Rng.int rng cfg.n in
  (* Mostly crash-recovery (the interesting transient-by-construction
     case); one in four is crash-stop. *)
  let down_for =
    if cfg.crash_down > 0 && Sim.Rng.int rng 4 > 0 then
      Some (Sim.Rng.int_in rng 1 cfg.crash_down)
    else None
  in
  Schedule.Crash { at; server; down_for }

let generate cfg ~seed =
  let rng = gen_rng seed in
  let injections =
    List.init cfg.injections (fun _ ->
        let at = Sim.Rng.int_in rng 1 cfg.horizon in
        Schedule.Inject { at; prefix = gen_prefix cfg rng })
  in
  let roams = List.init cfg.roams (fun _ -> gen_roam cfg rng) in
  let windows =
    match cfg.medium with
    | Fifo -> []
    | Lossy -> List.init cfg.windows (fun _ -> gen_window cfg rng)
  in
  (* Crashes are drawn last so configs without them ([crashes = 0], every
     pre-existing campaign) consume the generation stream exactly as
     before — committed seeds keep their schedules. *)
  let crashes = List.init cfg.crashes (fun _ -> gen_crash cfg rng) in
  Schedule.sort (injections @ roams @ windows @ crashes)

(* ------------------------------------------------------------------ *)
(* Trial execution                                                    *)

let apply_event scn = function
  | Schedule.Inject { at; prefix } ->
    Sim.Fault.schedule scn.Harness.Scenario.fault
      ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int at) ~prefix
  | Schedule.Roam { at; assign } ->
    Sim.Engine.schedule_at scn.Harness.Scenario.engine (Sim.Vtime.of_int at)
      (fun () ->
        let adv = scn.Harness.Scenario.adversary in
        Byzantine.Adversary.roam adv
          (List.map
             (fun (slot, s) -> (slot, Strategy.to_behavior adv ~slot s))
             assign))
  | Schedule.Window { at; duration; loss; dup; dir; server } ->
    let dir =
      match dir with
      | Schedule.To_servers -> `To_servers
      | Schedule.From_servers -> `From_servers
      | Schedule.Both -> `Both
    in
    let set ~loss ~dup =
      List.iter
        (fun (_, port) ->
          ignore
            (Registers.Net.set_port_chaos port ~dir ?server ~loss ~dup ()))
        (Registers.Net.client_ports scn.Harness.Scenario.net)
    in
    Sim.Engine.schedule_at scn.Harness.Scenario.engine (Sim.Vtime.of_int at)
      (fun () -> set ~loss ~dup);
    let base_loss, base_dup = lossy_base in
    Sim.Engine.schedule_at scn.Harness.Scenario.engine
      (Sim.Vtime.of_int (at + duration))
      (fun () -> set ~loss:base_loss ~dup:base_dup)
  | Schedule.Crash { at; server; down_for } ->
    Sim.Fault.schedule_crash scn.Harness.Scenario.fault
      ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int at) ?down_for
      ~prefix:(Printf.sprintf "server.%d" server)
      ()

(* Jobs for one trial: (fiber name, body) pairs. *)
let deploy_jobs cfg scn =
  let net = scn.Harness.Scenario.net in
  let g = Harness.Workload.gap 0 cfg.gap_hi in
  match cfg.family with
  | Regular ->
    let w = Registers.Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
    let r = Registers.Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
    Harness.Scenario.register_port scn (Registers.Swsr_regular.writer_port w);
    Harness.Scenario.register_port scn (Registers.Swsr_regular.reader_port r);
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn
            ~write:(Registers.Swsr_regular.write w)
            ~count:cfg.writes ~gap:g () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () ->
              Registers.Swsr_regular.read ~max_iterations:cfg.read_budget r)
            ~count:cfg.reads ~gap:g () );
    ]
  | Atomic ->
    let w = Registers.Swsr_atomic.writer ~net ~client_id:100 ~inst:0 () in
    let r = Registers.Swsr_atomic.reader ~net ~client_id:101 ~inst:0 () in
    Harness.Scenario.register_port scn (Registers.Swsr_atomic.writer_port w);
    Harness.Scenario.register_port scn (Registers.Swsr_atomic.reader_port r);
    Harness.Scenario.register_atomic_writer scn ~name:"writer" w;
    Harness.Scenario.register_atomic_reader scn ~name:"reader" r;
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn
            ~write:(Registers.Swsr_atomic.write w)
            ~count:cfg.writes ~gap:g () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () ->
              Registers.Swsr_atomic.read ~max_iterations:cfg.read_budget r)
            ~count:cfg.reads ~gap:g () );
    ]
  | Mwmr ->
    let m = 2 in
    let mcfg = Registers.Mwmr.default_config ~m in
    let total = cfg.writes + cfg.reads in
    let ratio = float_of_int cfg.writes /. float_of_int (max 1 total) in
    List.init m (fun i ->
        let p =
          Registers.Mwmr.process ~net ~cfg:mcfg ~id:i ~client_id:(300 + i)
        in
        let proc = Printf.sprintf "p%d" i in
        ( proc,
          fun () ->
            Harness.Workload.mwmr_job scn ~proc ~process:p ~ops:(total / m)
              ~write_ratio:ratio ~gap:g ~max_iterations:cfg.read_budget () ))

(* ------------------------------------------------------------------ *)
(* Segment checking                                                   *)

(* The oracle cannot expect anything across a disturbance: the register
   condition is only guaranteed from the first write completed after
   faults stop (eventual regularity).  So time is cut at every
   disturbance point, and each segment is checked independently with a
   cutoff at the first write invoked inside it.  Under the Lossy medium
   the transports themselves need a beat to re-stabilize after
   corruption, so segments start a grace period after the disturbance. *)

let grace = function Fifo -> 0 | Lossy -> 100

let sub_history h ~lo ~hi =
  let sub = Oracles.History.create () in
  List.iter
    (fun (o : Oracles.History.op) ->
      let keep =
        match o.kind with
        | Oracles.History.Write -> true
        | Oracles.History.Read ->
          Sim.Vtime.to_int o.inv >= lo && Sim.Vtime.to_int o.resp < hi
      in
      if keep then
        Oracles.History.record sub ~proc:o.proc ~kind:o.kind ~inv:o.inv
          ~resp:o.resp ?ts:o.ts ~ok:o.ok o.value)
    (Oracles.History.ops h);
  sub

(* First write invoked at or after [lo]: its response is the segment's
   stabilization cutoff.  [None] when no write lands in the segment —
   then nothing re-established the register and the segment is vacuous. *)
let cutoff_from h ~lo =
  Oracles.History.writes h
  |> List.find_opt (fun (o : Oracles.History.op) ->
         Sim.Vtime.to_int o.inv >= lo)
  |> Option.map (fun (o : Oracles.History.op) -> o.Oracles.History.resp)

let describe_read (o : Oracles.History.op) =
  Format.asprintf "%a" Oracles.History.pp_op o

let regularity_issues (r : Oracles.Regularity.report) =
  List.map
    (fun (v : Oracles.Regularity.violation) ->
      ("regularity", describe_read v.read))
    r.violations
  @
  if r.liveness_failures > 0 then
    [ ("liveness", Printf.sprintf "%d reads exhausted their budget"
                     r.liveness_failures) ]
  else []

let segment_issues cfg h schedule =
  let points =
    Schedule.disturbance_points schedule
    |> List.map (fun p -> p + grace cfg.medium)
  in
  let bounds = 0 :: points in
  let rec segments = function
    | [] -> []
    | [ lo ] -> [ (lo, max_int) ]
    | lo :: (hi :: _ as rest) -> (lo, hi) :: segments rest
  in
  segments bounds
  |> List.concat_map (fun (lo, hi) ->
         let sub = sub_history h ~lo ~hi in
         match cutoff_from sub ~lo with
         | None -> []
         | Some cutoff -> (
           match cfg.family with
           | Regular ->
             regularity_issues (Oracles.Regularity.check ~cutoff sub)
           | Atomic ->
             let r = Oracles.Atomicity.Sw.check ~cutoff sub in
             regularity_issues r.regularity
             @ List.map
                 (fun (i : Oracles.Atomicity.inversion) ->
                   ("inversion", describe_read i.later_read))
                 r.inversions
             @ List.map (fun m -> ("regularity", m)) r.malformed
           | Mwmr -> []))

(* MWMR timestamps are global (bounded epochs + sequence numbers), so a
   per-segment check would mis-flag legitimate cross-segment evolution;
   the checker instead runs once over the suffix after the last
   disturbance. *)
let mwmr_issues cfg h schedule =
  match cfg.family with
  | Regular | Atomic -> []
  | Mwmr ->
    let lo =
      match List.rev (Schedule.disturbance_points schedule) with
      | [] -> 0
      | p :: _ -> p + grace cfg.medium
    in
    (match cutoff_from h ~lo with
    | None -> []
    | Some cutoff ->
      let r =
        Oracles.Atomicity.Mw.check ~cutoff ~tie:`Min_index h
      in
      List.map
        (fun (v : Oracles.Atomicity.Mw.violation) ->
          ("mw", v.kind ^ ": " ^ v.detail))
        r.violations)

let verdict_of_issues issues =
  match issues with
  | [] -> Clean
  | _ ->
    let severity = function "liveness" -> 1 | _ -> 0 in
    let kind, detail =
      List.stable_sort
        (fun (a, _) (b, _) -> Int.compare (severity a) (severity b))
        issues
      |> List.hd (* lint: allow R4 -- issues is non-empty in this branch *)
    in
    let count =
      List.length (List.filter (fun (k, _) -> String.equal k kind) issues)
    in
    Violation { kind; count; detail }

let medium_of cfg =
  match cfg.medium with
  | Fifo -> Registers.Net.Reliable_fifo
  | Lossy ->
    let loss, dup = lossy_base in
    Registers.Net.Stabilizing { loss; dup; retrans = lossy_retrans }

let run_trial ?on_scenario cfg ~seed schedule =
  let params =
    Registers.Params.create_unchecked ~n:cfg.n ~f:cfg.f
      ~mode:Registers.Params.Async ()
  in
  let scn =
    Harness.Scenario.create ~seed ~medium:(medium_of cfg) ~params ()
  in
  let adv = scn.Harness.Scenario.adversary in
  List.iter
    (fun (slot, s) ->
      Byzantine.Adversary.compromise adv slot
        (Strategy.to_behavior adv ~slot s))
    cfg.initial;
  let jobs = deploy_jobs cfg scn in
  List.iter (apply_event scn) schedule;
  Option.iter (fun f -> f scn) on_scenario;
  let handles =
    List.map (fun (name, f) -> (name, Sim.Fiber.spawn ~name f)) jobs
  in
  Harness.Scenario.run scn;
  let stuck =
    List.filter_map
      (fun (name, h) ->
        match Sim.Fiber.status h with
        | Sim.Fiber.Done -> None
        | Sim.Fiber.Running -> Some name
        | Sim.Fiber.Failed e ->
          Some (name ^ " (raised: " ^ Printexc.to_string e ^ ")"))
      handles
  in
  let h = scn.Harness.Scenario.history in
  let verdict =
    if stuck <> [] then
      Violation
        {
          kind = "stuck";
          count = List.length stuck;
          detail =
            "fibers never finished: " ^ String.concat ", " stuck;
        }
    else
      verdict_of_issues (segment_issues cfg h schedule @ mwmr_issues cfg h schedule)
  in
  {
    verdict;
    ops = Oracles.History.length h;
    duration = Sim.Vtime.to_int (Harness.Scenario.now scn);
    stuck;
  }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)

let partition items n =
  let len = List.length items in
  let arr = Array.of_list items in
  List.init n (fun i ->
      let lo = i * len / n and hi = (i + 1) * len / n in
      Array.to_list (Array.sub arr lo (hi - lo)))
  |> List.filter (fun c -> c <> [])

let complement_of items chunk =
  (* chunks are contiguous slices, so physical-equality filtering works *)
  List.filter (fun e -> not (List.memq e chunk)) items

let shrink ?(log = ignore) cfg ~seed schedule verdict =
  let runs = ref 0 in
  let reproduces sched =
    incr runs;
    same_verdict (run_trial cfg ~seed sched).verdict verdict
  in
  (* Phase 1: ddmin over the event list. *)
  let rec ddmin items n =
    let len = List.length items in
    if len <= 1 then items
    else
      let chunks = partition items n in
      match List.find_opt reproduces chunks with
      | Some c ->
        log (Printf.sprintf "shrink: reduced to %d events" (List.length c));
        ddmin c 2
      | None -> (
        let complements =
          if n = 2 then [] (* complements of halves are the other halves *)
          else List.map (complement_of items) chunks
        in
        match List.find_opt reproduces complements with
        | Some c ->
          log
            (Printf.sprintf "shrink: reduced to %d events" (List.length c));
          ddmin c (max (n - 1) 2)
        | None -> if n < len then ddmin items (min (2 * n) len) else items)
  in
  let minimal =
    if reproduces [] then []
    else ddmin schedule (min 2 (max 1 (List.length schedule)))
  in
  (* Phase 2: halve window durations while the verdict survives. *)
  let rec halve_window sched i =
    match List.nth sched i with
    | Schedule.Window w when w.duration > 1 ->
      let candidate =
        List.mapi
          (fun j e ->
            if j = i then Schedule.Window { w with duration = w.duration / 2 }
            else e)
          sched
      in
      if reproduces candidate then halve_window candidate i else sched
    | _ -> sched
    | exception _ -> sched
  in
  let minimal =
    List.fold_left
      (fun sched i -> halve_window sched i)
      minimal
      (List.init (List.length minimal) Fun.id)
  in
  (* Phase 3: drop individual roam assignments. *)
  let drop_assign sched i =
    match List.nth sched i with
    | Schedule.Roam r when List.length r.assign > 1 ->
      let rec try_drop assign k =
        if k >= List.length assign then assign
        else
          let shorter = List.filteri (fun j _ -> j <> k) assign in
          let candidate =
            List.mapi
              (fun j e ->
                if j = i then Schedule.Roam { r with assign = shorter } else e)
              sched
          in
          if reproduces candidate then try_drop shorter k
          else try_drop assign (k + 1)
      in
      let assign = try_drop r.assign 0 in
      List.mapi
        (fun j e -> if j = i then Schedule.Roam { r with assign } else e)
        sched
    | _ -> sched
    | exception _ -> sched
  in
  let minimal =
    List.fold_left drop_assign minimal
      (List.init (List.length minimal) Fun.id)
  in
  log
    (Printf.sprintf "shrink: %d events -> %d events in %d runs"
       (List.length schedule) (List.length minimal) !runs);
  (minimal, !runs)

(* ------------------------------------------------------------------ *)
(* Repro artifacts                                                    *)

type repro = {
  seed : int;
  config : config;
  schedule : Schedule.t;
  verdict : verdict;
}

let repro_schema = "stabreg/chaos-repro/v1"

let initial_to_json initial =
  Obs.Json.List
    (List.map
       (fun (slot, s) ->
         Obs.Json.Obj
           [
             ("slot", Obs.Json.Int slot);
             ("strategy", Obs.Json.Str (Strategy.to_string s));
           ])
       initial)

let config_to_json c =
  Obs.Json.Obj
    [
      ("family", Obs.Json.Str (family_to_string c.family));
      ("n", Obs.Json.Int c.n);
      ("f", Obs.Json.Int c.f);
      ("medium", Obs.Json.Str (medium_to_string c.medium));
      ("initial", initial_to_json c.initial);
      ("writes", Obs.Json.Int c.writes);
      ("reads", Obs.Json.Int c.reads);
      ("read_budget", Obs.Json.Int c.read_budget);
      ("gap_hi", Obs.Json.Int c.gap_hi);
      ("horizon", Obs.Json.Int c.horizon);
      ("injections", Obs.Json.Int c.injections);
      ("roams", Obs.Json.Int c.roams);
      ("roam_max", Obs.Json.Int c.roam_max);
      ("windows", Obs.Json.Int c.windows);
      ("window_max", Obs.Json.Int c.window_max);
      ("crashes", Obs.Json.Int c.crashes);
      ("crash_down", Obs.Json.Int c.crash_down);
    ]

let verdict_to_json = function
  | Clean -> Obs.Json.Obj [ ("kind", Obs.Json.Str "clean") ]
  | Violation { kind; count; detail } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str kind);
        ("count", Obs.Json.Int count);
        ("detail", Obs.Json.Str detail);
      ]

let repro_to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str repro_schema);
      ("seed", Obs.Json.Int r.seed);
      ("config", config_to_json r.config);
      ("schedule", Schedule.to_json r.schedule);
      ("verdict", verdict_to_json r.verdict);
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ctx key j =
  match Obs.Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let as_int ctx j =
  match Obs.Json.to_int_opt j with
  | Some i -> Ok i
  | None -> Error (ctx ^ ": expected an integer")

let as_string ctx j =
  match Obs.Json.to_string_opt j with
  | Some s -> Ok s
  | None -> Error (ctx ^ ": expected a string")

let int_field ctx key j =
  let* v = field ctx key j in
  as_int (ctx ^ "." ^ key) v

let str_field ctx key j =
  let* v = field ctx key j in
  as_string (ctx ^ "." ^ key) v

let initial_of_json ctx j =
  match Obs.Json.to_list_opt j with
  | None -> Error (ctx ^ ": expected a list")
  | Some items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* slot = int_field ctx "slot" item in
        let* s = str_field ctx "strategy" item in
        let* s = Strategy.of_string s in
        Ok ((slot, s) :: acc))
      (Ok []) items
    |> Result.map List.rev

let config_of_json j =
  let ctx = "config" in
  let* family = str_field ctx "family" j in
  let* family = family_of_string family in
  let* n = int_field ctx "n" j in
  let* f = int_field ctx "f" j in
  let* medium = str_field ctx "medium" j in
  let* medium = medium_of_string medium in
  let* initial = field ctx "initial" j in
  let* initial = initial_of_json (ctx ^ ".initial") initial in
  let* writes = int_field ctx "writes" j in
  let* reads = int_field ctx "reads" j in
  let* read_budget = int_field ctx "read_budget" j in
  let* gap_hi = int_field ctx "gap_hi" j in
  let* horizon = int_field ctx "horizon" j in
  let* injections = int_field ctx "injections" j in
  let* roams = int_field ctx "roams" j in
  let* roam_max = int_field ctx "roam_max" j in
  let* windows = int_field ctx "windows" j in
  let* window_max = int_field ctx "window_max" j in
  (* Crash fields postdate the v1 schema; artifacts written before them
     parse with the (inert) defaults. *)
  let opt_int key default =
    match Obs.Json.member key j with
    | None | Some Obs.Json.Null -> Ok default
    | Some v -> as_int (ctx ^ "." ^ key) v
  in
  let* crashes = opt_int "crashes" 0 in
  let* crash_down = opt_int "crash_down" 250 in
  Ok
    {
      family;
      n;
      f;
      medium;
      initial;
      writes;
      reads;
      read_budget;
      gap_hi;
      horizon;
      injections;
      roams;
      roam_max;
      windows;
      window_max;
      crashes;
      crash_down;
    }

let verdict_of_json j =
  let* kind = str_field "verdict" "kind" j in
  if String.equal kind "clean" then Ok Clean
  else
    let* count = int_field "verdict" "count" j in
    let* detail = str_field "verdict" "detail" j in
    Ok (Violation { kind; count; detail })

let repro_of_json j =
  let* schema = str_field "repro" "schema" j in
  if not (String.equal schema repro_schema) then
    Error (Printf.sprintf "unsupported repro schema %S (want %S)" schema
             repro_schema)
  else
    let* seed = int_field "repro" "seed" j in
    let* config = field "repro" "config" j in
    let* config = config_of_json config in
    let* schedule = field "repro" "schedule" j in
    let* schedule = Schedule.of_json schedule in
    let* verdict = field "repro" "verdict" j in
    let* verdict = verdict_of_json verdict in
    Ok { seed; config; schedule; verdict }

let replay ?on_scenario r =
  run_trial ?on_scenario r.config ~seed:r.seed r.schedule

(* ------------------------------------------------------------------ *)
(* Campaigns                                                          *)

type trial = {
  index : int;
  trial_seed : int;
  events : int;
  outcome : outcome;
  repro : repro option;
  shrink_runs : int;
}

type result = { config : config; seed : int; trials : trial list }

let violations r =
  List.filter (fun t -> not (same_verdict t.outcome.verdict Clean)) r.trials

let trial_seed_for ~seed i = seed + (1_000_003 * i)

let run ?on_scenario ?(log = ignore) ?(shrink_violations = true) ?recorder
    ?(domains = 1) cfg ~seed ~trials =
  if domains < 1 then
    invalid_arg "Chaos.Campaign.run: domains must be at least 1";
  (* Flight-recorder accumulators, ticked on completed trials.  Trials
     are noted strictly in index order (the parallel path notes them in
     its post-join, order-preserving fold), so the sample timeline is
     byte-stable regardless of [domains]. *)
  let noted = ref 0
  and viol_count = ref 0
  and event_count = ref 0
  and shrink_count = ref 0
  and last_recorded = ref (-1) in
  let note t =
    incr noted;
    if not (same_verdict t.outcome.verdict Clean) then incr viol_count;
    event_count := !event_count + t.events;
    shrink_count := !shrink_count + t.shrink_runs;
    match recorder with
    | None -> ()
    | Some r ->
      if Obs.Profile.due r ~tick:!noted then begin
        last_recorded := !noted;
        Obs.Profile.sample r ~tick:!noted (fun () ->
            [
              ("trials", Obs.Json.Int !noted);
              ("violations", Obs.Json.Int !viol_count);
              ("events", Obs.Json.Int !event_count);
              ("shrink_runs", Obs.Json.Int !shrink_count);
            ])
      end
  in
  let one ~log i =
    let trial_seed = trial_seed_for ~seed i in
    let schedule = generate cfg ~seed:trial_seed in
    let on_scn = Option.map (fun f -> f ~trial:i) on_scenario in
    let outcome = run_trial ?on_scenario:on_scn cfg ~seed:trial_seed schedule in
    log
      (Format.asprintf "trial %d (seed %d): %d events -> %a" i trial_seed
         (List.length schedule) pp_verdict outcome.verdict);
    match outcome.verdict with
    | Clean ->
      {
        index = i;
        trial_seed;
        events = List.length schedule;
        outcome;
        repro = None;
        shrink_runs = 0;
      }
    | Violation _ ->
      let shrunk, shrink_runs =
        if shrink_violations then
          shrink ~log cfg ~seed:trial_seed schedule outcome.verdict
        else (schedule, 0)
      in
      (* re-execute the minimal schedule so the artifact records its own
         exact verdict, not the pre-shrink one *)
      let final = run_trial cfg ~seed:trial_seed shrunk in
      let repro =
        {
          seed = trial_seed;
          config = cfg;
          schedule = shrunk;
          verdict = final.verdict;
        }
      in
      {
        index = i;
        trial_seed;
        events = List.length schedule;
        outcome;
        repro = Some repro;
        shrink_runs = shrink_runs + 1;
      }
  in
  let trials_list =
    if domains = 1 then
      List.init trials (fun i ->
          let t = one ~log i in
          note t;
          t)
    else begin
      (* Each trial is already independent and deterministic in its own
         derived seed, so fanning trials across domains changes nothing
         about their outcomes — only wall-clock.  Trial state (scenario,
         engine, hub) is constructed inside the trial, so nothing is
         shared between domains except the config and the callbacks.
         [log] lines are buffered per trial and replayed in trial order
         after the join, so the observable stream is identical to the
         sequential one. *)
      let outcomes =
        Parallel.Pool.map ~domains
          (fun i ->
            let buf = Buffer.create 256 in
            let log line =
              Buffer.add_string buf line;
              Buffer.add_char buf '\n'
            in
            let t = one ~log i in
            (t, Buffer.contents buf))
          (List.init trials Fun.id)
      in
      List.map
        (fun (t, lines) ->
          String.split_on_char '\n' lines
          |> List.iter (fun l -> if l <> "" then log l);
          note t;
          t)
        outcomes
    end
  in
  (match recorder with
  | None -> ()
  | Some r ->
    if domains > 1 then begin
      (* Pool.map assigns items round-robin before any domain starts
         (item [i] runs on domain [i mod domains]), so the per-domain
         split is reconstructible after the join. *)
      let per_domain =
        List.init domains (fun d ->
            let mine =
              List.filter (fun t -> t.index mod domains = d) trials_list
            in
            let viols =
              List.length
                (List.filter
                   (fun t -> not (same_verdict t.outcome.verdict Clean))
                   mine)
            in
            Obs.Json.Obj
              [
                ("domain", Obs.Json.Int d);
                ("trials", Obs.Json.Int (List.length mine));
                ( "events",
                  Obs.Json.Int
                    (List.fold_left (fun a t -> a + t.events) 0 mine) );
                ("violations", Obs.Json.Int viols);
              ])
      in
      Obs.Profile.add_section r "domains" (Obs.Json.List per_domain)
    end;
    if !last_recorded <> !noted then
      Obs.Profile.sample ~force:true r ~tick:!noted (fun () ->
          [
            ("trials", Obs.Json.Int !noted);
            ("violations", Obs.Json.Int !viol_count);
            ("events", Obs.Json.Int !event_count);
            ("shrink_runs", Obs.Json.Int !shrink_count);
          ]));
  { config = cfg; seed; trials = trials_list }
