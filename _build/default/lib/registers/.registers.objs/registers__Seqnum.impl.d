lib/registers/seqnum.ml: Format
