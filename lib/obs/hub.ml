type t = {
  mutable sinks : Sink.t list;
  mutable active : bool;
  mutable next_op : int;
}

let create () = { sinks = []; active = false; next_op = 0 }

let active t = t.active

let attach t sink =
  t.sinks <- t.sinks @ [ sink ];
  t.active <- true

let detach t name =
  t.sinks <- List.filter (fun (s : Sink.t) -> not (String.equal s.name name)) t.sinks;
  t.active <- t.sinks <> []

let emit t event =
  if t.active then List.iter (fun (s : Sink.t) -> s.emit event) t.sinks

let emit_with t mk =
  if t.active then
    let event = mk () in
    List.iter (fun (s : Sink.t) -> s.emit event) t.sinks

let next_op_id t =
  let id = t.next_op in
  t.next_op <- id + 1;
  id

let flush t = List.iter (fun (s : Sink.t) -> s.flush ()) t.sinks
