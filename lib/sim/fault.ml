type target = { name : string; corrupt : Rng.t -> unit }

type t = { mutable targets : target list (* newest first *) }

let create () = { targets = [] }

let register t ~name corrupt = t.targets <- { name; corrupt } :: t.targets

let names t = List.rev_map (fun tg -> tg.name) t.targets

(* Matching respects dot-separated segment boundaries: "server.1" hits
   "server.1" and "server.1.cell" but never "server.10" — a bare prefix
   must cover whole segments, while a prefix ending in '.' (or the empty
   prefix) matches anything it is a string-prefix of. *)
let matches ~prefix name =
  let pl = String.length prefix and nl = String.length name in
  pl = 0
  || (nl >= pl
      && String.equal (String.sub name 0 pl) prefix
      && (nl = pl || prefix.[pl - 1] = '.' || name.[pl] = '.'))

let inject_matching t ~rng ~prefix =
  let hit = ref 0 in
  List.iter
    (fun tg ->
      if matches ~prefix tg.name then begin
        incr hit;
        tg.corrupt rng
      end)
    (List.rev t.targets);
  !hit

let inject_all t ~rng = inject_matching t ~rng ~prefix:""

let schedule t ~engine ~at ~prefix =
  let rng = Rng.split (Engine.rng engine) in
  Engine.schedule_at engine at (fun () ->
      let hit = inject_matching t ~rng ~prefix in
      Trace.emit (Engine.trace engine) ~time:(Engine.now engine)
        ~tag:"fault"
        (Printf.sprintf "transient fault: corrupted %d targets (prefix %S)" hit
           prefix);
      Trace.add (Engine.trace engine) "fault.injections" hit;
      let hub = Engine.hub engine in
      if Obs.Hub.active hub then
        Obs.Hub.emit hub
          (Obs.Event.Fault_injected
             {
               time = Vtime.to_int (Engine.now engine);
               target = (if prefix = "" then "*" else prefix);
               hits = hit;
             }))
