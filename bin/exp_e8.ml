(* E8 — Realizability of the ss-broadcast abstraction (footnote 3).

   The alternating-bit data link over a bounded-capacity, lossy,
   duplicating, reordering channel: delivery cost as a function of loss,
   and recovery from an arbitrary (scrambled) initial configuration. *)

let run_clean ~seed ~loss =
  let s =
    Datalink.Alt_bit.create ~rng:(Sim.Rng.create seed) ~cap:4 ~loss ~dup:0.1 ()
  in
  (* No engine here: the data link runs standalone, so the driver keeps
     its own registry with a packets-per-handshake histogram. *)
  let metrics = Obs.Metrics.create () in
  let sent = 20 in
  let ok = ref 0 in
  for i = 1 to sent do
    let before = Datalink.Alt_bit.packets_sent s in
    (match Datalink.Alt_bit.send s i with
    | Ok () -> incr ok
    | Error _ -> ());
    Obs.Metrics.observe_named metrics "op.altbit.send"
      (float_of_int (Datalink.Alt_bit.packets_sent s - before))
  done;
  Obs.Metrics.add metrics "altbit.handshakes" !ok;
  Obs.Metrics.add metrics "altbit.packets" (Datalink.Alt_bit.packets_sent s);
  if Common.first_observation () then begin
    (match Common.report () with
    | Some r -> Obs.Report.set_params r ~n:2 ~f:0 ~mode:"datalink"
    | None -> ());
    Common.observe_metrics metrics
  end;
  let delivered = Datalink.Alt_bit.delivered s in
  let distinct =
    List.sort_uniq Int.compare delivered |> List.length
  in
  ( !ok,
    distinct,
    float_of_int (Datalink.Alt_bit.packets_sent s) /. float_of_int sent )

let run_scrambled ~seed =
  let s =
    Datalink.Alt_bit.create ~rng:(Sim.Rng.create seed) ~cap:4 ~loss:0.2
      ~dup:0.1 ()
  in
  Datalink.Alt_bit.scramble s ~garbage:[ -1; -2; -3; -4 ];
  let sent = 10 in
  for i = 1 to sent do
    ignore (Datalink.Alt_bit.send s i)
  done;
  let delivered = Datalink.Alt_bit.delivered s in
  let junk = List.filter (fun m -> m < 0) delivered in
  let real = List.sort_uniq Int.compare (List.filter (fun m -> m > 0) delivered) in
  (List.length real, List.length junk)

let run ~seed =
  Harness.Report.section
    "E8: self-stabilizing data link (footnote 3) over a hostile channel";
  let rows =
    List.map
      (fun loss ->
        let ok = ref 0 and distinct = ref 0 and cost = ref 0.0 in
        let seeds = 5 in
        for s = 0 to seeds - 1 do
          let o, d, c = run_clean ~seed:(seed + s) ~loss in
          ok := !ok + o;
          distinct := !distinct + d;
          cost := !cost +. c
        done;
        [
          Printf.sprintf "%.0f%%" (loss *. 100.0);
          Harness.Report.pct !ok (seeds * 20);
          Harness.Report.pct !distinct (seeds * 20);
          Harness.Report.f1 (!cost /. float_of_int seeds);
        ])
      [ 0.0; 0.2; 0.4; 0.6 ]
  in
  Harness.Report.table ~title:"capacity 4, duplication 10%, 20 messages/run"
    ~header:
      [ "loss"; "handshakes done"; "messages delivered"; "packets/message" ]
    rows;
  let real = ref 0 and junk = ref 0 in
  let seeds = 5 in
  for s = 0 to seeds - 1 do
    let r, j = run_scrambled ~seed:(seed + s) in
    real := !real + r;
    junk := !junk + j
  done;
  Harness.Report.table
    ~title:"scrambled start: 4 garbage packets preloaded, both state bits corrupted"
    ~header:[ "sent messages delivered"; "garbage deliveries (bounded)" ]
    [ [ Harness.Report.pct !real (seeds * 10); string_of_int !junk ] ];
  print_endline
    "  Shape: every handshake completes and delivers; cost grows with\n\
    \  loss; after a scramble only boundedly many garbage payloads can\n\
    \  ever surface (at most the preloaded channel contents)."
