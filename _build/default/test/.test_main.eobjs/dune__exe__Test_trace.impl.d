test/test_trace.ml: List Sim Util
