test/test_workload.ml: Alcotest Harness Hashtbl List Oracles Registers Util
