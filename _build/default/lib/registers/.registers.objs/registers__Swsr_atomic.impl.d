lib/registers/swsr_atomic.ml: Collect List Messages Net Params Quorum Seqnum Sim Value
