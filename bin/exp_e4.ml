(* E4 — Tightness of the synchronous resilience requirement (Theorem 2).

   The scripted schedule of Harness.Starvation, in the synchronous model:
   below n = 3t+1 the reader burns extra rounds whenever a write's
   propagation window splits the correct servers; at the bound, every
   round succeeds — t < n/3 is empirically tight against this adversary. *)

let run ~seed:_ =
  Harness.Report.section "E4: synchronous liveness vs n (Thm 2, t < n/3)";
  let rows =
    List.map
      (fun (n, f) ->
        let o =
          Harness.Starvation.run ~n ~f ~sync:true ~budget:10
            ~instrument:(fun e -> Common.attach_trace_sink (Sim.Engine.hub e))
            ()
        in
        Common.observe_trace ~params:o.Harness.Starvation.params
          o.Harness.Starvation.trace;
        [
          string_of_int n;
          string_of_int f;
          (if n >= (3 * f) + 1 then "yes" else "no");
          Common.bool_str
            (Harness.Starvation.predicted_starvation ~n ~f ~sync:true);
          string_of_int o.Harness.Starvation.rounds_used;
          Common.value_str o.Harness.Starvation.returned;
        ])
      [ (3, 1); (4, 1); (5, 1); (6, 2); (7, 2); (8, 2); (9, 3); (10, 3) ]
  in
  Harness.Report.table ~title:"scripted splitter, synchronous thresholds"
    ~header:
      [ "n"; "t"; "n>=3t+1"; "split predicted"; "rounds used"; "returned" ]
    rows;
  print_endline
    "  Shape: one round suffices exactly from n = 3t+1 upward; below it the\n\
    \  reader retries through split rounds (and can starve under a\n\
    \  permanently active writer)."
