(* Fixture: partial-function patterns R4 must flag, and the handled
   shapes it must not. *)

let first l = List.hd l

let pick l i = List.nth l i

let force o = Option.get o

let at a i = Array.get a i

let at0 a = Array.get a 0

let sugar a i = a.(i)

let boom () = failwith "boom"

let safe l i =
  match List.nth l i with x -> Some x | exception _ -> None

let safe_fail x =
  match (if x then failwith "no" else x) with
  | y -> y
  | exception Failure _ -> false
