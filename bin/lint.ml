(* stablint driver.

     dune exec bin/lint.exe                        # scan lib/ and bin/
     dune exec bin/lint.exe -- --json lint-report.json
     dune exec bin/lint.exe -- --update-baseline
     dune exec bin/lint.exe -- validate lint-report.json

   Exit status 0 means no findings outside the committed baseline;
   1 means new findings (printed one per line); 2 means usage error. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let default_baseline_name = "lint-baseline.json"

(* --- run ------------------------------------------------------------- *)

let paths_arg =
  let doc = "Subdirectories of $(b,--root) to scan for .ml files." in
  Arg.(value & pos_all string [ "lib"; "bin" ] & info [] ~docv:"PATH" ~doc)

let root_arg =
  let doc = "Project root; findings are reported relative to it." in
  Arg.(value & opt dir "." & info [ "root" ] ~docv:"DIR" ~doc)

let json_arg =
  let doc =
    "Write the run as a $(b,stabreg/lint-report/v1) artifact to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let baseline_arg =
  let doc =
    "Baseline file (schema $(b,stabreg/lint-baseline/v1)); defaults to \
     $(b,lint-baseline.json) under $(b,--root) when that file exists."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let no_baseline_arg =
  let doc = "Ignore any baseline: report every finding as new." in
  Arg.(value & flag & info [ "no-baseline" ] ~doc)

let update_baseline_arg =
  let doc =
    "Rewrite the baseline to accept exactly the current findings, then \
     exit 0."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let load_baseline path =
  match Obs.Json.parse (read_file path) with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok j -> (
    match Lint.Report.baseline_entries j with
    | Ok entries -> Ok entries
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

let run root paths json baseline no_baseline update_baseline =
  let scan = Lint.Driver.scan ~root ~paths () in
  let baseline_path =
    match baseline with
    | Some p -> Some p
    | None ->
      let p = Filename.concat root default_baseline_name in
      if Sys.file_exists p then Some p else None
  in
  if update_baseline then begin
    let p =
      Option.value baseline_path
        ~default:(Filename.concat root default_baseline_name)
    in
    write_file p
      (Lint.Report.render_baseline
         (Lint.Report.baseline_of_findings scan.findings));
    Printf.printf "wrote %s (%d entr%s)\n" p
      (List.length scan.findings)
      (if List.length scan.findings = 1 then "y" else "ies");
    `Ok ()
  end
  else
    match
      match (no_baseline, baseline_path) with
      | true, _ | _, None -> Ok []
      | false, Some p -> load_baseline p
    with
    | Error e -> `Error (false, e)
    | Ok entries ->
      let report =
        Lint.Report.make ~paths ~files_scanned:scan.files_scanned
          ~suppressed:scan.suppressed ~baseline:entries scan.findings
      in
      Option.iter
        (fun file ->
          let rendered = Lint.Report.render report in
          (* self-check: never emit an artifact the validator rejects *)
          (match
             Result.bind
               (Obs.Json.parse rendered)
               Lint.Report.validate
           with
          | Ok () -> ()
          | Error e ->
            prerr_endline ("internal error: emitted report is invalid: " ^ e);
            exit 3);
          write_file file rendered)
        json;
      List.iter
        (fun f -> print_endline (Lint.Finding.to_string f))
        report.Lint.Report.fresh;
      if report.Lint.Report.stale_baseline > 0 then
        Printf.printf
          "note: %d stale baseline entr%s (fixed findings); run \
           --update-baseline to burn them down\n"
          report.Lint.Report.stale_baseline
          (if report.Lint.Report.stale_baseline = 1 then "y" else "ies");
      Printf.printf
        "%d file(s), %d new finding(s), %d baselined, %d suppressed\n"
        scan.files_scanned
        (List.length report.Lint.Report.fresh)
        (List.length report.Lint.Report.baselined)
        scan.suppressed;
      if report.Lint.Report.fresh = [] then `Ok () else exit 1

let run_cmd =
  let doc =
    "Parse every .ml under the given paths and run the stablint rules \
     (R1 no-nondeterminism, R2 no-polymorphic-compare, R3 \
     no-wildcard-message-match, R4 no-partial-functions, R5 \
     mli-coverage)."
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ root_arg $ paths_arg $ json_arg $ baseline_arg
       $ no_baseline_arg $ update_baseline_arg))

(* --- validate -------------------------------------------------------- *)

let validate_cmd =
  let validate files =
    let problems =
      List.filter_map
        (fun path ->
          match Obs.Json.parse (read_file path) with
          | Error e -> Some (Printf.sprintf "%s: parse error: %s" path e)
          | Ok j -> (
            match Lint.Report.validate_any j with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "%s: %s" path e)))
        files
    in
    match problems with
    | [] ->
      Printf.printf "%d artifact(s) valid (%s | %s)\n" (List.length files)
        Lint.Report.schema_version Lint.Report.baseline_schema_version;
      `Ok ()
    | _ :: _ -> `Error (false, String.concat "\n" problems)
  in
  let files_arg =
    let doc = "Lint report or baseline files to schema-check." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Validate lint-report/baseline files against their versioned \
          schemas.")
    Term.(ret (const validate $ files_arg))

let () =
  let doc = "stablint: determinism/totality static analysis for stabreg" in
  let default =
    Term.(
      ret
        (const run $ root_arg $ paths_arg $ json_arg $ baseline_arg
       $ no_baseline_arg $ update_baseline_arg))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "lint" ~doc ~version:"%%VERSION%%")
          [ run_cmd; validate_cmd ]))
