(** A live register deployment under model-checker control.

    One {!t} is one execution-in-progress of the configured system: the
    protocol automata run unchanged over {!Registers.Net}, but nothing
    fires by itself — the explorer repeatedly asks for the {!enabled}
    moves and {!apply}s its choice.  All residual nondeterminism is pinned
    (fixed unit link delays, deterministic Byzantine behaviors, concrete
    corruption payloads), so an execution is exactly its move sequence:
    replaying the same moves from a fresh {!create} reproduces the same
    global state bit for bit.  That replay-from-choices property is what
    the DFS uses instead of snapshotting (OCaml fibers cannot be cloned).

    Soundness of the move menu w.r.t. the paper's model:
    - per-link FIFO: a [Deliver] always fires the oldest pending event of
      its link, never an overtaking one;
    - synchronized ss-broadcast delivery: {!Registers.Net.ss_broadcast}
      counts actual delivery callbacks, so the (n-2t)-th-correct-delivery
      resume point is respected under any interleaving the explorer picks;
    - transient corruption: a [Corrupt] move applies one menu item
      (at most once per execution), modelling a transient fault striking
      between any two events. *)

type move =
  | Deliver of string
      (** fire the FIFO-head pending delivery of the named link *)
  | Tick of int
      (** fire the [i]-th pending unlabeled engine event (rare: only
          degenerate configurations schedule unlabeled events) *)
  | Corrupt of int  (** fire menu item [i] *)

val move_to_string : move -> string

val move_equal : move -> move -> bool

val compare_move : move -> move -> int

val independent : move -> move -> bool
(** Conservative commutation relation for the sleep-set reduction: [true]
    only for two deliveries on links with disjoint {src, dst} endpoint
    sets.  Corruptions and unlabeled events are dependent with
    everything. *)

type t

val create : Config.t -> t
(** Build the deployment and start the client fibers (they run to their
    first suspension, scheduling the first broadcasts).  Deterministic:
    two [create]s of the same config are indistinguishable. *)

val config : t -> Config.t

val engine : t -> Sim.Engine.t

val history : t -> Oracles.History.t

val corrupt_times : t -> int list
(** Instants at which corruption moves fired so far, ascending. *)

val enabled : t -> move list
(** The current choice menu, deterministically ordered: one [Deliver] per
    link with pending traffic (label order), then [Tick]s, then the unused
    [Corrupt] items (only while some client fiber is still running).
    Empty iff the execution is terminal. *)

val apply : ?strict:bool -> t -> move -> bool
(** Fire one move: advance the clock one tick, then execute it (and
    whatever protocol code it resumes, synchronously to the next
    suspension).  Returns [true] on success.  An inapplicable move raises
    [Invalid_argument] under [strict] (the default, for artifact replay)
    and returns [false] otherwise (for shrink candidates, where a dropped
    prefix may invalidate later moves). *)

val client_active : t -> bool
(** Some client fiber is still running. *)

val stuck : t -> string list
(** Names of fibers that are not [Done] — non-empty at a terminal state
    means the execution deadlocked (or crashed). *)

val fingerprint : t -> string
(** Canonical digest of the global state: server instances, Byzantine
    assignment, per-link in-flight payloads, mailbox contents, port round
    tags, client persistent bookkeeping, remaining corruption menu, fiber
    statuses, and the recorded history with instants canonicalized to
    their rank (order type) so order-isomorphic pasts merge.  Server
    slots not named by any corruption-menu item are additionally
    canonicalized up to permutation (symmetry reduction): the protocols
    never branch on a server's identity, so permuted states have
    isomorphic futures and identical verdicts.  Two states with equal
    fingerprints have indistinguishable futures and verdicts. *)

val fingerprint_raw_ex : t -> string * (int -> int) * (int -> int)
(** {!fingerprint_ex} with the digest kept in its raw 16-byte form (no
    hex rendering).  This is the hot-path variant: the checker's visited
    table interns raw digests under a folded 64-bit key, and hex only
    ever appears in artifacts via {!fingerprint}. *)

val fingerprint_ex : t -> string * (int -> int) * (int -> int)
(** [(digest, ren, rep)]: {!fingerprint} plus the canonical server
    renaming it chose ([ren]: original slot -> canonical slot) and the
    automorphism-class representative map ([rep]: original slot -> least
    interchangeable slot).  The checker must pass sleep sets through
    {!canonical_move}[ ren] before comparing them across states merged by
    the symmetry reduction, and may restrict branching to moves fixed by
    {!canonical_move}[ rep] (successors of class members are
    isomorphic). *)

val canonical_move : (int -> int) -> move -> move
(** Rewrite the server ids inside a [Deliver] label through a canonical
    renaming; [Tick] and [Corrupt] are unchanged. *)
