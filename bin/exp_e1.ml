(* E1 — Figure 1: the new/old inversion of the regular register, and its
   elimination by the practically atomic register, on the deterministic
   schedule of Harness.Fig1. *)

let run ~seed:_ =
  Harness.Report.section "E1: Figure 1 — new/old inversion (regular vs atomic)";
  let row kind label =
    let o =
      Harness.Fig1.run
        ~instrument:(fun e -> Common.attach_trace_sink (Sim.Engine.hub e))
        kind
    in
    Common.observe_trace
      ~params:
        (Registers.Params.create_exn ~n:9 ~f:1 ~mode:Registers.Params.Async ())
      o.Harness.Fig1.trace;
    [
      label;
      Common.value_str o.Harness.Fig1.read1;
      Common.value_str o.Harness.Fig1.read2;
      Common.bool_str o.Harness.Fig1.write1_pending_during_reads;
      Common.bool_str o.Harness.Fig1.inversion;
    ]
  in
  Harness.Report.table ~title:"write(0) complete; write(1) pending across both reads"
    ~header:[ "register"; "read1"; "read2"; "write(1) concurrent"; "inversion" ]
    [ row `Regular "regular (Fig 2)"; row `Atomic "atomic (Fig 3)" ];
  print_endline
    "  Paper claim: the regular register admits the read1=1, read2=0\n\
    \  inversion; the Fig. 3 sequence numbers eliminate it (line 13M3)."
