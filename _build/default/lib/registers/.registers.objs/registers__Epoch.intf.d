lib/registers/epoch.mli: Format Sim
