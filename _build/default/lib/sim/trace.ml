type event = { time : Vtime.t; tag : string; detail : string }

type t = {
  record_events : bool;
  mutable events_rev : event list;
  counters : (string, int ref) Hashtbl.t;
}

let create ?(record_events = true) () =
  { record_events; events_rev = []; counters = Hashtbl.create 32 }

let emit t ~time ~tag detail =
  if t.record_events then t.events_rev <- { time; tag; detail } :: t.events_rev

let emit_lazy t ~time ~tag detail =
  if t.record_events then
    t.events_rev <- { time; tag; detail = detail () } :: t.events_rev

let recording t = t.record_events

let events t = List.rev t.events_rev

let events_tagged t tag =
  List.filter (fun e -> String.equal e.tag tag) (events t)

let add t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_counters t = Hashtbl.reset t.counters

let pp_event ppf e =
  Format.fprintf ppf "[%a] %s: %s" Vtime.pp e.time e.tag e.detail
