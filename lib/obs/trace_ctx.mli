(** Causal span identifiers.

    A {!span} names one node in the causal tree of a client operation:
    the operation itself is a root span, every ss-broadcast round and
    every reply message gets a child span, and parent links tie them
    back together.  Ids are allocated from a deterministic per-run
    counter (owned by [Sim.Trace]), so two runs with the same seed
    assign byte-identical ids — and allocation happens whether or not
    any sink is attached, so enabling tracing cannot perturb a run.

    The zero span {!none} marks unattributed events (e.g. adversary
    noise injected outside any client operation); it is never allocated
    and exporters render it as the absence of causal context. *)

type span = private { trace : int; id : int; parent : int }
(** [trace] is the id of the root span of the tree this span belongs
    to; [id] is unique per run (1-based); [parent] is the id of the
    parent span, 0 for roots. *)

type t
(** A span allocator: a deterministic counter. *)

val none : span
(** The zero span: no causal context.  [none.id = 0]. *)

val is_none : span -> bool

val create : unit -> t
(** Fresh allocator; the first allocated id is 1. *)

val root : t -> span
(** Allocate a root span (its own trace id, parent 0). *)

val child : t -> span -> span
(** Allocate a child of the given span, inheriting its trace id.
    [child t none] degenerates to [root t] so that unattributed
    contexts still produce well-formed trees. *)

val allocated : t -> int
(** Number of spans allocated so far. *)

val pp : Format.formatter -> span -> unit

val fields : span -> (string * Json.t) list
(** JSON fields [trace]/[span]/[parent] for event envelopes. *)
