type t = {
  seed : int;
  engine : Sim.Engine.t;
  net : Registers.Net.t;
  fault : Sim.Fault.t;
  adversary : Byzantine.Adversary.t;
  history : Oracles.History.t;
}

let create ?(seed = 1) ?(record_events = false) ?delay ?medium ~params () =
  let rng = Sim.Rng.create seed in
  let trace = Sim.Trace.create ~record_events () in
  let engine = Sim.Engine.create ~trace ~rng:(Sim.Rng.split rng) () in
  let lo, hi =
    match delay with
    | Some (lo, hi) -> (lo, hi)
    | None -> (
      match (params : Registers.Params.t).mode with
      | Registers.Params.Async -> (1, 10)
      | Registers.Params.Sync { max_delay; _ } -> (1, max_delay))
  in
  (match (params : Registers.Params.t).mode with
  | Registers.Params.Sync { max_delay; _ } when hi > max_delay ->
    invalid_arg "Scenario.create: sync delays exceed the model's max_delay"
  | Registers.Params.Sync _ | Registers.Params.Async -> ());
  let net =
    Registers.Net.create ~engine ~params ?medium
      ~link_delay:(fun rng -> Sim.Link.uniform rng ~lo ~hi)
      ()
  in
  let adversary = Byzantine.Adversary.deploy ~net ~rng:(Sim.Rng.split rng) in
  let fault = Sim.Fault.create () in
  Array.iter
    (fun srv ->
      let name = Printf.sprintf "server.%d" (Registers.Server.id srv) in
      Sim.Fault.register fault ~name (fun rng ->
          Registers.Server.corrupt srv rng);
      Sim.Fault.register_process fault ~name
        ~crash:(fun () ->
          Byzantine.Adversary.crash adversary (Registers.Server.id srv))
        ~recover:(fun rng ->
          Byzantine.Adversary.recover ~wipe:`Arbitrary ~rng adversary
            (Registers.Server.id srv)))
    (Byzantine.Adversary.servers adversary);
  { seed; engine; net; fault; adversary; history = Oracles.History.create () }

let run ?until t = Sim.Engine.run ?until t.engine

exception Deadlock of string

let stuck_jobs handles =
  List.filter_map
    (fun (name, h) ->
      match Sim.Fiber.status h with
      | Sim.Fiber.Running ->
        Some
          (Printf.sprintf "%s (blocked on %s)" name
             (Option.value ~default:"unknown" (Sim.Fiber.blocked_on h)))
      | Sim.Fiber.Done | Sim.Fiber.Failed _ -> None)
    handles

let check_jobs handles =
  List.iter
    (fun (_, h) ->
      match Sim.Fiber.status h with
      | Sim.Fiber.Failed e -> raise e
      | Sim.Fiber.Done | Sim.Fiber.Running -> ())
    handles;
  match stuck_jobs handles with
  | [] -> ()
  | stuck ->
    raise
      (Deadlock
         (Printf.sprintf "engine quiesced with %d wedged fiber(s): %s"
            (List.length stuck)
            (String.concat "; " stuck)))

let now t = Sim.Engine.now t.engine

let rng t = Sim.Engine.rng t.engine

let split_rng t = Sim.Rng.split (rng t)

let sleep t span =
  Sim.Fiber.suspend (fun resume ->
      Sim.Engine.schedule t.engine ~delay:span resume)

let register_port t (port : Registers.Net.client_port) =
  let id = port.Registers.Net.client_id in
  Sim.Fault.register t.fault
    ~name:(Printf.sprintf "client.%d.round" id)
    (fun rng -> port.Registers.Net.round <- Sim.Rng.int rng 1024);
  Sim.Fault.register t.fault
    ~name:(Printf.sprintf "link.c%d" id)
    (fun rng ->
      (* Garble what is in transit towards the servers.  Deliveries and
         their round tags survive — the self-stabilizing data link's
         retransmission completes every in-flight handshake — but the
         protocol contents are arbitrary. *)
      Array.iter
        (fun link ->
          Sim.Link.corrupt_in_flight link
            (fun (env : Registers.Messages.server_envelope) ->
              let body =
                match env.body with
                | Registers.Messages.Write _ ->
                  Registers.Messages.Write (Registers.Messages.arbitrary_cell rng)
                | Registers.Messages.New_help _ ->
                  Registers.Messages.New_help
                    (Registers.Messages.arbitrary_cell rng)
                | Registers.Messages.Read _ ->
                  Registers.Messages.Read (Sim.Rng.bool rng)
              in
              Some { env with body }))
        port.Registers.Net.to_servers;
      (* Under the Stabilizing medium: scramble the transports' tag state
         and packets instead. *)
      Registers.Net.corrupt_transport port rng;
      (* And plant spurious acknowledgments on the return links: the
         arbitrary initial link state of the model. *)
      Array.iteri
        (fun server link ->
          if Sim.Rng.bool rng then
            Sim.Link.inject link
              {
                Registers.Messages.round = Sim.Rng.int rng 1024;
                server;
                body =
                  Registers.Messages.Ack_read
                    ( Registers.Messages.arbitrary_cell rng,
                      Some (Registers.Messages.arbitrary_cell rng) );
                (* Debris from the arbitrary initial state has no causal
                   ancestry. *)
                span = Obs.Trace_ctx.none;
              })
        port.Registers.Net.from_servers)

let register_atomic_writer t ~name w =
  Sim.Fault.register t.fault
    ~name:(Printf.sprintf "client.%s.wsn" name)
    (fun rng -> Registers.Swsr_atomic.corrupt_writer w rng)

let register_atomic_reader t ~name r =
  Sim.Fault.register t.fault
    ~name:(Printf.sprintf "client.%s.p" name)
    (fun rng -> Registers.Swsr_atomic.corrupt_reader r rng)

let record t ~proc ~kind ?ts f =
  let inv = now t in
  let result = f () in
  let resp = now t in
  (match result with
  | Some v -> Oracles.History.record t.history ~proc ~kind ~inv ~resp ?ts v
  | None ->
    Oracles.History.record t.history ~proc ~kind ~inv ~resp ?ts ~ok:false
      Registers.Value.bot);
  result

let metrics t = Sim.Engine.metrics t.engine

let hub t = Sim.Engine.hub t.engine

let messages_sent t = Sim.Trace.counter (Sim.Engine.trace t.engine) "net.msgs"

let broadcasts t =
  Sim.Trace.counter (Sim.Engine.trace t.engine) "ss.broadcasts"
