lib/datalink/alt_bit.ml: Channel List Sim
