open Util

let mk_channel ?(cap = 5) ?(loss = 0.0) ?(dup = 0.0) ?(seed = 3) () =
  Datalink.Channel.create ~rng:(Sim.Rng.create seed) ~cap ~loss ~dup ()

let test_channel_reliable_mode () =
  let ch = mk_channel () in
  Datalink.Channel.send ch "a";
  Datalink.Channel.send ch "b";
  check_int "two in transit" 2 (Datalink.Channel.size ch);
  let d1 = Datalink.Channel.deliver ch in
  let d2 = Datalink.Channel.deliver ch in
  check_true "both delivered"
    (List.sort compare [ d1; d2 ] = [ Some "a"; Some "b" ]);
  check_true "then empty" (Datalink.Channel.deliver ch = None)

let test_channel_capacity_bound () =
  let ch = mk_channel ~cap:3 () in
  for i = 1 to 10 do
    Datalink.Channel.send ch i
  done;
  check_int "bounded by capacity" 3 (Datalink.Channel.size ch)

let test_channel_preload_truncates () =
  let ch = mk_channel ~cap:2 () in
  Datalink.Channel.preload ch [ 1; 2; 3; 4 ];
  check_int "truncated" 2 (Datalink.Channel.size ch);
  check_true "kept prefix" (Datalink.Channel.contents ch = [ 1; 2 ])

let test_channel_loss () =
  let ch = mk_channel ~cap:1000 ~loss:0.5 ~seed:5 () in
  for i = 1 to 200 do
    Datalink.Channel.send ch i
  done;
  let survived = Datalink.Channel.size ch in
  check_true "roughly half lost" (survived > 60 && survived < 140)

let test_channel_duplication () =
  let ch = mk_channel ~cap:10 ~dup:0.99 ~seed:5 () in
  Datalink.Channel.send ch "x";
  (* With dup ~ 1, delivering leaves the packet behind. *)
  check_true "delivered" (Datalink.Channel.deliver ch = Some "x");
  check_int "copy remains" 1 (Datalink.Channel.size ch)

let test_channel_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Channel.create: capacity must be positive") (fun () ->
      ignore (mk_channel ~cap:0 ()))

(* --- the alternating-bit data link (footnote 3) --- *)

let test_altbit_clean_delivery () =
  let s = Datalink.Alt_bit.create ~rng:(Sim.Rng.create 7) ~cap:4 ~loss:0.1 ~dup:0.1 () in
  List.iter
    (fun m ->
      match Datalink.Alt_bit.send s m with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ "alpha"; "beta"; "gamma" ];
  let delivered = Datalink.Alt_bit.delivered s in
  (* Each message delivered at least once, in order of first delivery. *)
  let firsts =
    List.fold_left
      (fun acc m -> if List.mem m acc then acc else acc @ [ m ])
      [] delivered
  in
  check_true "all delivered in order" (firsts = [ "alpha"; "beta"; "gamma" ])

let test_altbit_delivery_under_heavy_loss () =
  let s = Datalink.Alt_bit.create ~rng:(Sim.Rng.create 8) ~cap:3 ~loss:0.6 ~dup:0.2 () in
  (match Datalink.Alt_bit.send s 42 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_true "message got through" (List.mem 42 (Datalink.Alt_bit.delivered s));
  check_true "cost was counted" (Datalink.Alt_bit.packets_sent s > 0)

let test_altbit_stabilizes_after_scramble () =
  (* Arbitrary initial channel contents and receiver state: after the
     scramble, sent messages still get through, in order, and the garbage
     the adversary planted can surface at most a bounded number of times. *)
  let s = Datalink.Alt_bit.create ~rng:(Sim.Rng.create 9) ~cap:4 ~loss:0.1 ~dup:0.1 () in
  Datalink.Alt_bit.scramble s ~garbage:[ "junk1"; "junk2"; "junk3" ];
  let sent = [ "one"; "two"; "three"; "four" ] in
  List.iter
    (fun m ->
      match Datalink.Alt_bit.send s m with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    sent;
  let delivered = Datalink.Alt_bit.delivered s in
  let real = List.filter (fun m -> List.mem m sent) delivered in
  let junk = List.filter (fun m -> not (List.mem m sent)) delivered in
  let firsts =
    List.fold_left
      (fun acc m -> if List.mem m acc then acc else acc @ [ m ])
      [] real
  in
  check_true "sent messages delivered in order" (firsts = sent);
  check_true "garbage bounded by initial channel contents"
    (List.length junk <= 4)

let test_altbit_take_delivered_clears () =
  let s = Datalink.Alt_bit.create ~rng:(Sim.Rng.create 10) ~cap:3 ~loss:0.0 ~dup:0.0 () in
  (match Datalink.Alt_bit.send s "m" with Ok () -> () | Error e -> Alcotest.fail e);
  let first = Datalink.Alt_bit.take_delivered s in
  check_true "delivered once" (List.mem "m" first);
  check_true "cleared" (Datalink.Alt_bit.take_delivered s = [])

let test_altbit_deterministic () =
  let run seed =
    let s = Datalink.Alt_bit.create ~rng:(Sim.Rng.create seed) ~cap:4 ~loss:0.3 ~dup:0.2 () in
    ignore (Datalink.Alt_bit.send s "x");
    (Datalink.Alt_bit.steps s, Datalink.Alt_bit.packets_sent s)
  in
  check_true "same seed, same run" (run 11 = run 11);
  ignore (run 12)

let tests =
  [
    case "channel reliable mode" test_channel_reliable_mode;
    case "channel capacity bound" test_channel_capacity_bound;
    case "channel preload truncates" test_channel_preload_truncates;
    case "channel loss" test_channel_loss;
    case "channel duplication" test_channel_duplication;
    case "channel validation" test_channel_validation;
    case "alt-bit clean delivery" test_altbit_clean_delivery;
    case "alt-bit heavy loss" test_altbit_delivery_under_heavy_loss;
    case "alt-bit stabilizes after scramble" test_altbit_stabilizes_after_scramble;
    case "alt-bit take_delivered" test_altbit_take_delivered_clears;
    case "alt-bit deterministic" test_altbit_deterministic;
  ]
