let scripted script default =
  let remaining = ref script in
  fun () ->
    match !remaining with
    | d :: rest ->
      remaining := rest;
      d
    | [] -> default

let far = 100_000
