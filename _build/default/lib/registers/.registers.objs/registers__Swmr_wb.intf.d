lib/registers/swmr_wb.mli: Net Value
