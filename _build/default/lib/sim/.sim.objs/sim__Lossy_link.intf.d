lib/sim/lossy_link.mli: Engine Link Rng
