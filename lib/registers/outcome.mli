(** Typed result of a bounded-wait register operation.

    The paper's clients block until their acknowledgment quota arrives;
    under a crash burst past the fault bound that is a silent hang.  With a
    {!Params.retry} policy installed, operations instead return within a
    bounded number of deadline-limited attempts and report {e how} they
    finished: fully serviced ([Ok]), answered by enough servers to be
    meaningful but below the paper's quota ([Degraded]), or starved even of
    a read quorum ([Timed_out]).  Degradation is diagnosed, never silent:
    the [reason] carries the retry effort, the best acknowledgment count
    seen, the quota it was measured against, and the health module's
    current suspects. *)

type reason = {
  attempts : int;  (** collection attempts spent (1 = no retry needed) *)
  acks : int;  (** most distinct servers that answered in any attempt *)
  need : int;  (** the quota a fully-serviced operation required *)
  suspects : int list;  (** slots the port's {!Health} tracker suspects *)
}

type 'a t =
  | Ok of 'a
  | Degraded of reason
      (** at least a read quorum answered, but fewer than the full quota *)
  | Timed_out of reason
      (** not even a read quorum answered within the retry budget *)

val no_reason : reason

val is_ok : 'a t -> bool

val to_option : 'a t -> 'a option
(** Forgetful view: [Ok v] is [Some v]; this is what the legacy (option)
    register APIs return. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val reason : 'a t -> reason option

val rank : 'a t -> int
(** [Ok] < [Degraded] < [Timed_out] (0, 1, 2). *)

val kind : 'a t -> string
(** ["ok"] / ["degraded"] / ["timeout"] — stable labels for artifacts. *)

val worse : 'a t -> 'a t -> 'a t
(** Worst of two outcomes, merging failure reasons — for composite
    operations built from several sub-operations. *)

val merge_reason : reason -> reason -> reason

val pp_reason : Format.formatter -> reason -> unit

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

val reason_to_json : reason -> Obs.Json.t
