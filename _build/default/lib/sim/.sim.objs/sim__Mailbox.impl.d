lib/sim/mailbox.ml: Engine Fiber List Queue
