(** Bounded-capacity unreliable channel — the raw medium underneath the
    self-stabilizing data link of footnote 3 (Dolev, "Self-Stabilization",
    §4.2).

    At most [cap] packets are in transit at once.  Sends may be lost,
    deliveries are in arbitrary order (the receiver picks a random
    in-transit packet), a delivered packet may leave a duplicate behind,
    and the initial content is arbitrary.  This is deliberately a much
    weaker medium than the {!Sim.Link} FIFO links: the point of the
    alternating-bit construction is to build the reliable ss-broadcast
    abstraction on top of exactly this. *)

type 'p t

val create :
  rng:Sim.Rng.t ->
  cap:int ->
  ?loss:float ->
  ?dup:float ->
  unit ->
  'p t
(** [loss] (default 0.1) is the probability a send vanishes; [dup]
    (default 0.1) the probability a delivered packet leaves a copy in
    transit. *)

val preload : 'p t -> 'p list -> unit
(** Set the in-transit content (truncated to capacity): the arbitrary
    initial configuration of a transient-fault-prone link. *)

val send : 'p t -> 'p -> unit
(** Transmit: silently lost with probability [loss], or if the channel is
    full (the bounded-capacity overflow rule). *)

val deliver : 'p t -> 'p option
(** Remove and return a uniformly chosen in-transit packet; [None] when
    empty.  With probability [dup] the packet also stays in transit. *)

val size : 'p t -> int

val capacity : 'p t -> int

val contents : 'p t -> 'p list
