(* A replicated key/value store that shrugs off a Byzantine replica and a
   transient fault.

     dune exec examples/kv_demo.exe

   Two application nodes share a fixed-schema KV store backed by one MWMR
   register per key over 9 servers.  Node B goes through a full
   server-state corruption mid-run; the first writes afterwards stabilize
   each key. *)

open Registers

let () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:21 ~params () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 7
    Byzantine.Behavior.equivocate;
  let cfg =
    Kv.Store.config ~keys:[ "leader"; "term"; "checkpoint" ] ~clients:2
  in
  let node_a = Kv.Store.client ~net:scn.Harness.Scenario.net ~cfg ~id:0 ~client_id:1 in
  let node_b = Kv.Store.client ~net:scn.Harness.Scenario.net ~cfg ~id:1 ~client_id:2 in
  let show name store =
    let snap = Kv.Store.snapshot store in
    Printf.printf "t=%-5d [%s] %s\n"
      (Sim.Vtime.to_int (Harness.Scenario.now scn))
      name
      (String.concat "  "
         (List.map (fun (k, v) -> k ^ "=" ^ Value.to_string v) snap))
  in
  ignore
    (Sim.Fiber.spawn ~name:"demo" (fun () ->
         Kv.Store.set node_a ~key:"leader" (Value.str "node-a");
         Kv.Store.set node_a ~key:"term" (Value.int 1);
         show "node-b" node_b;
         Kv.Store.set node_b ~key:"checkpoint" (Value.int 100);
         Kv.Store.set node_b ~key:"term" (Value.int 2);
         show "node-a" node_a;
         (* transient fault: every server's state scrambled *)
         ignore
           (Sim.Fault.inject_matching scn.Harness.Scenario.fault
              ~rng:(Harness.Scenario.split_rng scn) ~prefix:"server.");
         print_endline "--- transient fault: all 9 servers corrupted ---";
         (* writes stabilize each key again *)
         Kv.Store.set node_a ~key:"leader" (Value.str "node-b");
         Kv.Store.set node_a ~key:"term" (Value.int 3);
         Kv.Store.set node_b ~key:"checkpoint" (Value.int 250);
         show "node-a" node_a;
         show "node-b" node_b));
  Harness.Scenario.run scn;
  print_endline
    "\nEach key is one MWMR atomic register (Fig. 4): Byzantine replies\n\
     are outvoted, and the post-fault writes re-established every key."
