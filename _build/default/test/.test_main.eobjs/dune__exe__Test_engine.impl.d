test/test_engine.ml: List Sim Util
