examples/config_store.mli:
