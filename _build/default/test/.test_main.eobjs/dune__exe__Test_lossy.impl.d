test/test_lossy.ml: Alcotest Byzantine Harness Int List Net Oracles Params Printf Registers Sim Ss_transport Swsr_atomic Util
