lib/datalink/channel.mli: Sim
