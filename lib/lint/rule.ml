type scope = Lib of string | Bin | Other

let classify path =
  match String.split_on_char '/' path with
  | "lib" :: l :: _ :: _ -> Lib l
  | "bin" :: _ :: _ -> Bin
  | _ -> Other

type ctx = { file : string; scope : scope; add : Finding.t -> unit }

type kind =
  | Ast of (ctx -> Parsetree.structure -> unit)
  | Tree of (root:string -> (string * scope) list -> Finding.t list)

type t = {
  id : string;
  name : string;
  summary : string;
  severity : Finding.severity;
  applies : scope -> bool;
  kind : kind;
}

let finding ctx t ~loc message =
  let pos = loc.Location.loc_start in
  ctx.add
    (Finding.v ~file:ctx.file ~line:pos.Lexing.pos_lnum
       ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
       ~rule:t.id ~severity:t.severity message)
