let acks ~net ~port ~round ~filter =
  let params = Net.params net in
  let n = (params : Params.t).n in
  let slots : 'a option array = Array.make n None in
  let filled = ref 0 in
  (* The round tag was captured at broadcast time: the wait matches the
     broadcast that was just issued even if a transient fault corrupts the
     port's tag while the round trip is in flight. *)
  let expected_round = round in
  let consider (env : Messages.client_envelope) =
    let slot_free =
      env.server >= 0 && env.server < n
      && match slots.(env.server) with None -> true | Some _ -> false
    in
    if env.round = expected_round && slot_free then
      match filter env.body with
      | None -> ()
      | Some payload ->
        slots.(env.server) <- Some payload;
        incr filled
  in
  (match Params.sync_timeout params with
  | None ->
    (* Asynchronous model: block until (n - t) distinct servers answered. *)
    let target = Params.ack_wait params in
    while !filled < target do
      consider (Sim.Mailbox.recv port.Net.mailbox)
    done
  | Some timeout ->
    (* Synchronous model: wait for all n servers or the round-trip bound. *)
    let engine = Net.engine net in
    let deadline = Sim.Vtime.add (Sim.Engine.now engine) timeout in
    let continue = ref true in
    while !continue && !filled < n do
      match Sim.Mailbox.recv_until ~engine ~deadline port.Net.mailbox with
      | None -> continue := false
      | Some env -> consider env
    done);
  Array.to_list slots |> List.filter_map (fun s -> s)

let ack_writes ~net ~port ~round =
  acks ~net ~port ~round ~filter:(function
    | Messages.Ack_write h -> Some h
    | Messages.Ack_read _ -> None)

let ack_reads ~net ~port ~round =
  acks ~net ~port ~round ~filter:(function
    | Messages.Ack_read (c, h) -> Some (c, h)
    | Messages.Ack_write _ -> None)
