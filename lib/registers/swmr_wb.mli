(** SWMR atomic register with reader write-back — the classical
    strengthening ([13, 15]) of the §5.1 composition, going beyond the
    paper.

    The §5.1 composition (module {!Swmr}) is atomic {e per reader} but,
    because the writer updates the per-reader copies sequentially, two
    {e different} readers can exhibit a cross-reader new/old inversion
    (constructed deterministically in [Harness.Swmr_inversion];
    experiment E13).  The classical fix makes readers inform each other:
    an exchange register EX[i][j] per ordered reader pair, written by
    reader [i] and read by reader [j].  A read returns the
    [>_cd]-maximal (wsn, value) pair among its own copy and its incoming
    exchange registers, and writes that pair back to all its outgoing
    ones — once a reader returns a value, no later read at any reader
    returns an older one.

    Costs: per swmr_read, [1 + (m-1)] SWSR reads and [(m-1)] SWSR writes;
    instance space [m + m*m] per register.  The writer keeps all copies'
    sequence counters in lockstep (a shared counter re-imposed on every
    copy before each write) so pairs stay comparable across copies even
    after a transient fault desynchronizes them. *)

type writer

type reader

val writer :
  net:Net.t ->
  client_id:int ->
  base_inst:int ->
  readers:int ->
  ?modulus:int ->
  unit ->
  writer

val reader :
  net:Net.t ->
  client_id:int ->
  base_inst:int ->
  reader_index:int ->
  ?readers:int ->
  ?modulus:int ->
  unit ->
  reader
(** [readers] (default 2) must match the writer's. *)

val write : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit
(** Write the value to every reader's copy, all under one shared sequence
    number.  Must run inside a fiber. *)

val read :
  ?parent:Obs.Trace_ctx.span -> ?max_iterations:int -> reader -> Value.t option
(** Read with write-back.  Must run inside a fiber. *)

val write_o : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit Outcome.t
(** {!write} with a typed outcome: worst over the per-reader copies. *)

val read_o :
  ?parent:Obs.Trace_ctx.span ->
  ?max_iterations:int ->
  reader ->
  Value.t Outcome.t
(** {!read} with a typed outcome.  The own-copy read's failure propagates;
    incoming exchange reads stay best-effort (absorbed); a degraded
    write-back degrades the read (other readers may miss the freshness it
    relied on). *)

val exchange_writes : reader -> int
(** Total write-back (exchange-register) writes performed by this reader
    (cost accounting for E13). *)
