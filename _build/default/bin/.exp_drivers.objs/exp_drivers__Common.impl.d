bin/common.ml: Harness List Oracles Params Printf Registers Sim Swsr_atomic Swsr_regular Value
