open Util
open Registers

let k = 4

let test_capacity () = check_int "K = k^2+1" 17 (Epoch.capacity ~k)

let test_genesis_wellformed () =
  check_true "genesis ok" (Epoch.is_wellformed ~k (Epoch.genesis ~k))

let test_wellformed_rejects () =
  let cap = Epoch.capacity ~k in
  check_false "s out of range"
    (Epoch.is_wellformed ~k { Epoch.s = cap + 1; a = [ 1; 2; 3; 4 ] });
  check_false "wrong size" (Epoch.is_wellformed ~k { Epoch.s = 1; a = [ 2; 3 ] });
  check_false "duplicates"
    (Epoch.is_wellformed ~k { Epoch.s = 1; a = [ 2; 2; 3; 4 ] });
  check_false "unsorted"
    (Epoch.is_wellformed ~k { Epoch.s = 1; a = [ 4; 3; 2; 5 ] })

let test_gt_definition () =
  let e1 = { Epoch.s = 1; a = [ 2; 3; 4; 5 ] } in
  let e2 = { Epoch.s = 2; a = [ 6; 7; 8; 9 ] } in
  (* e2 > e1: 1 ∈ {6..9}? no... construct per definition. *)
  let hi = { Epoch.s = 6; a = [ 1; 2; 3; 4 ] } in
  check_true "hi > e1" (Epoch.gt hi e1);
  check_false "e1 > hi" (Epoch.gt e1 hi);
  (* Incomparable pair: each contains the other's s. *)
  let x = { Epoch.s = 1; a = [ 2; 10; 11; 12 ] } in
  let y = { Epoch.s = 2; a = [ 1; 13; 14; 15 ] } in
  check_false "x > y" (Epoch.gt x y);
  check_false "y > x" (Epoch.gt y x);
  ignore e2

let test_ge_is_gt_or_equal () =
  let e = Epoch.genesis ~k in
  check_true "ge refl" (Epoch.ge e e);
  check_false "gt irrefl" (Epoch.gt e e)

let test_next_epoch_dominates () =
  let e1 = Epoch.genesis ~k in
  let e2 = { Epoch.s = 9; a = [ 1; 2; 3; 4 ] } in
  let e3 = { Epoch.s = 10; a = [ 5; 6; 7; 9 ] } in
  let ne = Epoch.next_epoch ~k [ e1; e2; e3 ] in
  check_true "wellformed" (Epoch.is_wellformed ~k ne);
  List.iter
    (fun e -> check_true "next > each" (Epoch.gt ne e))
    [ e1; e2; e3 ]

let test_next_epoch_too_many () =
  let es = List.init (k + 1) (fun _ -> Epoch.genesis ~k) in
  Alcotest.check_raises "over k rejected"
    (Invalid_argument "Epoch.next_epoch: more than k epochs") (fun () ->
      ignore (Epoch.next_epoch ~k es))

let test_next_epoch_tolerates_garbage () =
  (* Corrupted epochs with out-of-range members must not break dominance
     over the well-formed ones. *)
  let good = Epoch.genesis ~k in
  let junk = { Epoch.s = -5; a = [ 999; -1; 3; 7 ] } in
  let ne = Epoch.next_epoch ~k [ good; junk ] in
  check_true "wellformed result" (Epoch.is_wellformed ~k ne);
  check_true "dominates good" (Epoch.gt ne good)

let test_max_epoch () =
  let e1 = Epoch.genesis ~k in
  let ne = Epoch.next_epoch ~k [ e1 ] in
  check_true "max of chain" (Epoch.max_epoch [ e1; ne ] = Some ne);
  check_true "max singleton" (Epoch.max_epoch [ e1 ] = Some e1);
  check_true "max empty" (Epoch.max_epoch [] = None);
  (* No maximum among incomparable epochs. *)
  let x = { Epoch.s = 1; a = [ 2; 10; 11; 12 ] } in
  let y = { Epoch.s = 2; a = [ 1; 13; 14; 15 ] } in
  check_true "incomparable set has no max" (Epoch.max_epoch [ x; y ] = None)

let test_arbitrary_wellformed () =
  let rng = Sim.Rng.create 11 in
  for _ = 1 to 100 do
    check_true "arbitrary wellformed"
      (Epoch.is_wellformed ~k (Epoch.arbitrary rng ~k))
  done

let test_epoch_chain_grows () =
  (* Repeatedly taking next_epoch over a sliding window of recent epochs
     always yields something greater than the window: the liveness [1]
     proves. *)
  let rec go window steps =
    if steps > 0 then begin
      let ne = Epoch.next_epoch ~k window in
      List.iter (fun e -> check_true "dominates window" (Epoch.gt ne e)) window;
      let window' =
        match window with
        | _ :: rest when List.length window >= k -> rest @ [ ne ]
        | w -> w @ [ ne ]
      in
      go window' (steps - 1)
    end
  in
  go [ Epoch.genesis ~k ] 200

let gen_epoch =
  QCheck.Gen.(
    let cap = Epoch.capacity ~k in
    let* s = int_range 1 cap in
    let rec draw acc =
      if List.length acc >= k then return (List.sort_uniq Int.compare acc)
      else
        let* x = int_range 1 cap in
        if List.mem x acc then draw acc else draw (x :: acc)
    in
    let* a = draw [] in
    return { Epoch.s; a })

let prop_gt_antisymmetric =
  QCheck.Test.make ~name:"gt antisymmetric" ~count:500
    (QCheck.make gen_epoch ~print:(Format.asprintf "%a" Epoch.pp))
    (fun e ->
      let rng = Sim.Rng.create (Hashtbl.hash e) in
      let e' = Epoch.arbitrary rng ~k in
      not (Epoch.gt e e' && Epoch.gt e' e))

let prop_next_dominates =
  QCheck.Test.make ~name:"next_epoch dominates arbitrary sets" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Sim.Rng.create seed in
      let count = 1 + Sim.Rng.int rng k in
      let es = List.init count (fun _ -> Epoch.arbitrary rng ~k) in
      let ne = Epoch.next_epoch ~k es in
      Epoch.is_wellformed ~k ne && List.for_all (fun e -> Epoch.gt ne e) es)

let tests =
  [
    case "capacity" test_capacity;
    case "genesis wellformed" test_genesis_wellformed;
    case "wellformed rejects" test_wellformed_rejects;
    case "gt definition" test_gt_definition;
    case "ge" test_ge_is_gt_or_equal;
    case "next_epoch dominates" test_next_epoch_dominates;
    case "next_epoch arity" test_next_epoch_too_many;
    case "next_epoch garbage-tolerant" test_next_epoch_tolerates_garbage;
    case "max_epoch" test_max_epoch;
    case "arbitrary wellformed" test_arbitrary_wellformed;
    case "epoch chain grows" test_epoch_chain_grows;
    qcheck prop_gt_antisymmetric;
    qcheck prop_next_dominates;
  ]
