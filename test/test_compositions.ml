(* Cross-cutting composition coverage: the SWMR/MWMR/KV layers over the
   synchronous model (§3.3 / end of §4: every construction carries over
   with the t < n/3 thresholds), and many register instances multiplexed
   over the same servers. *)

open Util
open Registers

(* --- compositions over the synchronous model, n = 3t+1 --- *)

let test_swmr_sync () =
  let scn = sync_scenario ~seed:5 ~n:4 ~f:1 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 1
    Byzantine.Behavior.silent;
  let net = scn.Harness.Scenario.net in
  let w = Swmr.writer ~net ~client_id:100 ~base_inst:0 ~readers:2 () in
  let r0 = Swmr.reader ~net ~client_id:200 ~base_inst:0 ~reader_index:0 () in
  let r1 = Swmr.reader ~net ~client_id:201 ~base_inst:0 ~reader_index:1 () in
  let a = ref None and b = ref None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          Swmr.write w (int_value 11);
          a := Swmr.read r0;
          b := Swmr.read r1 );
    ];
  Alcotest.(check (option value)) "r0" (Some (int_value 11)) !a;
  Alcotest.(check (option value)) "r1" (Some (int_value 11)) !b

let test_mwmr_sync () =
  let scn = sync_scenario ~seed:6 ~n:4 ~f:1 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    Byzantine.Behavior.garbage;
  let cfg = Mwmr.default_config ~m:2 in
  let p0 = Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:0 ~client_id:300 in
  let p1 = Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:1 ~client_id:301 in
  let got = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          Mwmr.write p0 (int_value 1);
          Mwmr.write p1 (int_value 2);
          got := Mwmr.read p0 );
    ];
  Alcotest.(check (option value)) "latest over sync links" (Some (int_value 2))
    !got

let test_kv_sync () =
  let scn = sync_scenario ~seed:7 ~n:7 ~f:2 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 2
    Byzantine.Behavior.equivocate;
  let cfg = Kv.Store.config ~keys:[ "x"; "y" ] ~clients:2 in
  let s0 = Kv.Store.client ~net:scn.Harness.Scenario.net ~cfg ~id:0 ~client_id:400 in
  let s1 = Kv.Store.client ~net:scn.Harness.Scenario.net ~cfg ~id:1 ~client_id:401 in
  let got = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          Kv.Store.set s0 ~key:"x" (int_value 5);
          got := Kv.Store.get s1 ~key:"x" );
    ];
  Alcotest.(check (option value)) "kv over sync links" (Some (int_value 5)) !got

let test_swmr_wb_sync_inversion_free () =
  let scn = sync_scenario ~seed:8 ~n:4 ~f:1 () in
  let net = scn.Harness.Scenario.net in
  let w = Swmr_wb.writer ~net ~client_id:100 ~base_inst:0 ~readers:2 () in
  let r0 = Swmr_wb.reader ~net ~client_id:200 ~base_inst:0 ~reader_index:0 () in
  let r1 = Swmr_wb.reader ~net ~client_id:201 ~base_inst:0 ~reader_index:1 () in
  let a = ref None and b = ref None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          Swmr_wb.write w (int_value 3);
          a := Swmr_wb.read r0;
          b := Swmr_wb.read r1 );
    ];
  Alcotest.(check (option value)) "r0" (Some (int_value 3)) !a;
  Alcotest.(check (option value)) "r1" (Some (int_value 3)) !b

(* --- many instances multiplexed over the same servers --- *)

let test_many_instances_isolated () =
  let scn = async_scenario ~seed:9 () in
  let net = scn.Harness.Scenario.net in
  let instances = 40 in
  let pairs =
    Array.init instances (fun i ->
        ( Swsr_atomic.writer ~net ~client_id:100 ~inst:i (),
          Swsr_atomic.reader ~net ~client_id:101 ~inst:i () ))
  in
  let results = Array.make instances None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          (* Interleave writes across all instances, then read each. *)
          Array.iteri
            (fun i (w, _) -> Swsr_atomic.write w (int_value (1000 + i)))
            pairs;
          Array.iteri
            (fun i (_, r) -> results.(i) <- Swsr_atomic.read r)
            pairs );
    ];
  Array.iteri
    (fun i v ->
      Alcotest.(check (option value))
        (Printf.sprintf "instance %d isolated" i)
        (Some (int_value (1000 + i)))
        v)
    results

let test_concurrent_instances_under_byzantine () =
  let scn = async_scenario ~seed:10 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 8
    Byzantine.Behavior.garbage;
  let net = scn.Harness.Scenario.net in
  let mk i =
    ( i,
      Swsr_atomic.writer ~net ~client_id:(100 + (2 * i)) ~inst:i (),
      Swsr_atomic.reader ~net ~client_id:(101 + (2 * i)) ~inst:i () )
  in
  let regs = List.init 6 mk in
  let jobs =
    List.concat_map
      (fun (i, w, r) ->
        [
          ( Printf.sprintf "w%d" i,
            fun () ->
              Harness.Workload.writer_job scn
                ~proc:(Printf.sprintf "w%d" i)
                ~writer_id:i ~write:(Swsr_atomic.write w) ~count:8
                ~gap:(Harness.Workload.gap 0 15) () );
          ( Printf.sprintf "r%d" i,
            fun () ->
              for _ = 1 to 8 do
                (match Swsr_atomic.read r with
                | Some _ -> ()
                | None -> Alcotest.fail "read failed");
                Harness.Scenario.sleep scn 10
              done );
        ])
      regs
  in
  run_fibers scn jobs;
  (* 6 independent writers * 8 writes, all recorded in one shared history
     through writer_job; values are namespaced per writer, so regularity
     cannot be checked on the merged stream — liveness was the point. *)
  check_int "all writes completed" 48
    (List.length (Oracles.History.writes scn.Harness.Scenario.history))

(* --- compositions over the Stabilizing (lossy) medium --- *)

let lossy = Net.Stabilizing { loss = 0.2; dup = 0.1; retrans = 30 }

let test_mwmr_over_lossy () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:41 ~medium:lossy ~params () in
  let cfg = Mwmr.default_config ~m:2 in
  let p0 = Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:0 ~client_id:300 in
  let p1 = Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:1 ~client_id:301 in
  let got = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          Mwmr.write p0 (int_value 1);
          Mwmr.write p1 (int_value 2);
          got := Mwmr.read p0 );
    ];
  Alcotest.(check (option value)) "mwmr over lossy links" (Some (int_value 2))
    !got

let test_kv_over_lossy () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:42 ~medium:lossy ~params () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
    Byzantine.Behavior.garbage;
  let cfg = Kv.Store.config ~keys:[ "k" ] ~clients:2 in
  let s0 = Kv.Store.client ~net:scn.Harness.Scenario.net ~cfg ~id:0 ~client_id:400 in
  let s1 = Kv.Store.client ~net:scn.Harness.Scenario.net ~cfg ~id:1 ~client_id:401 in
  let got = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          Kv.Store.set s0 ~key:"k" (int_value 7);
          got := Kv.Store.get s1 ~key:"k" );
    ];
  Alcotest.(check (option value)) "kv over lossy links" (Some (int_value 7))
    !got

let tests =
  [
    case "SWMR over sync links" test_swmr_sync;
    case "MWMR over sync links" test_mwmr_sync;
    case "KV over sync links" test_kv_sync;
    case "SWMR write-back over sync links" test_swmr_wb_sync_inversion_free;
    case "40 instances isolated" test_many_instances_isolated;
    case "6 concurrent registers + byzantine" test_concurrent_instances_under_byzantine;
    case "MWMR over lossy links" test_mwmr_over_lossy;
    case "KV over lossy links" test_kv_over_lossy;
  ]
