(** A replicated, self-stabilizing, Byzantine-tolerant key/value store —
    the downstream-facing layer over the paper's MWMR registers.

    Each key of a {e fixed schema} is backed by one MWMR atomic register
    (so each key costs [m * m] register instances at the servers, where
    [m] is the number of store clients).  All clients may read and write
    every key; per-key operations are atomic, tolerate up to [t] Byzantine
    servers, and self-stabilize after transient faults once the key is
    written again.

    The schema (the ordered key list) is configuration, agreed out of
    band, exactly like the register-instance numbering itself: two clients
    with different schemas would talk past each other, which is a
    deployment error, not a fault the paper's model covers. *)

type config = {
  keys : string list;  (** the fixed schema, in canonical order *)
  clients : int;  (** number of store clients ([m] writers/readers) *)
  base_inst : int;  (** first register instance to use (default 0) *)
  seq_bound : int;  (** MWMR timestamp bound (default 2^61) *)
}

val config : keys:string list -> clients:int -> config
(** Standard configuration; raises [Invalid_argument] on an empty or
    duplicated key list. *)

type t
(** One client's handle onto the store. *)

val client : net:Registers.Net.t -> cfg:config -> id:int -> client_id:int -> t
(** The handle for store client [id] (0-based, [< cfg.clients]),
    communicating as network client [client_id]. *)

val set : t -> key:string -> Registers.Value.t -> unit
(** Atomically write one key.  Must run inside a fiber.
    Raises [Not_found] if [key] is not in the schema. *)

val get : t -> key:string -> Registers.Value.t option
(** Atomically read one key ([Some Bot] if never written).  Must run
    inside a fiber.  Raises [Not_found] if [key] is not in the schema. *)

val keys : t -> string list

val snapshot : t -> (string * Registers.Value.t) list
(** Read every key in schema order (not an atomic multi-key snapshot:
    each key is read atomically, one after the other). *)
