lib/registers/epoch.ml: Format Int List Sim String
