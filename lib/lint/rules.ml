open Parsetree

(* --- shared helpers ------------------------------------------------- *)

let flatten lid = try Longident.flatten lid with _ -> []

(* Strip a leading [Stdlib.] so [Stdlib.Hashtbl.fold] and [Hashtbl.fold]
   look the same. *)
let norm = function "Stdlib" :: rest -> rest | p -> p

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (norm (flatten txt))
  | _ -> None

let take n l =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n l

let loc_inside ~(outer : Location.t) (inner : Location.t) =
  outer.loc_start.pos_cnum <= inner.loc_start.pos_cnum
  && inner.loc_end.pos_cnum <= outer.loc_end.pos_cnum

(* An iterator over expressions that also hands each visit the stack of
   enclosing expressions (nearest first).  Rules use the ancestry to
   sanction patterns like "fold, then immediately sort". *)
let iter_with_ancestors structure visit =
  let stack = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          visit ~ancestors:!stack e;
          stack := e :: !stack;
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
    }
  in
  it.structure it structure

let det_libs = [ "sim"; "mc"; "chaos"; "registers"; "history"; "obs" ]

let protocol_libs = [ "registers"; "history"; "mc"; "chaos" ]

let hot_path_libs = [ "registers"; "history"; "mc"; "chaos"; "sim"; "datalink" ]

let in_libs libs = function Rule.Lib l -> List.mem l libs | _ -> false

(* --- R1: no-nondeterminism ------------------------------------------ *)

let sort_fns = [ "sort"; "stable_sort"; "fast_sort"; "sort_uniq" ]

let rec apply_head e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> apply_head f
  | _ -> e

let is_sort_expr e =
  match ident_path (apply_head e) with
  | Some [ "List"; f ] | Some [ "Array"; f ] -> List.mem f sort_fns
  | _ -> false

(* Is some enclosing expression (within a few levels) a sort application,
   either direct ([List.sort cmp (Hashtbl.fold ...)]) or through a pipe
   ([Hashtbl.fold ... |> List.sort cmp])? *)
let sorted_immediately ancestors =
  List.exists
    (fun a ->
      match a.pexp_desc with
      | Pexp_apply (f, args) -> (
        is_sort_expr f
        ||
        match ident_path f with
        | Some [ ("|>" | "@@") ] ->
          List.exists (fun (_, arg) -> is_sort_expr arg) args
        | _ -> false)
      | _ -> false)
    (take 4 ancestors)

let r1 =
  let meta_summary =
    "no ambient randomness, wall-clock reads, or unsorted Hashtbl \
     iteration in determinism-critical libraries"
  in
  let rec rule =
    {
      Rule.id = "R1";
      name = "no-nondeterminism";
      summary = meta_summary;
      severity = Finding.Error;
      applies = in_libs det_libs;
      kind = Rule.Ast (fun ctx str -> check ctx str);
    }
  and check ctx str =
    iter_with_ancestors str (fun ~ancestors e ->
        match ident_path e with
        | Some [ "Random"; "State"; "make_self_init" ] ->
          Rule.finding ctx rule ~loc:e.pexp_loc
            "Random.State.make_self_init seeds from the environment; seed \
             explicitly (Random.State.make) or use Sim.Rng"
        | Some [ "Random"; "State"; _ ] -> ()
        | Some [ "Random"; fn ] ->
          Rule.finding ctx rule ~loc:e.pexp_loc
            (Printf.sprintf
               "ambient Random.%s reads the global RNG; thread a seeded \
                Sim.Rng / Random.State instead"
               fn)
        | Some
            [
              "Unix";
              ("gettimeofday" | "time" | "localtime" | "gmtime" | "times");
            ] ->
          Rule.finding ctx rule ~loc:e.pexp_loc
            "wall-clock read; derive time from the simulation's virtual \
             clock (drivers in bin/ may inject a real clock, e.g. \
             Obs.Profile's ?clock)"
        | Some [ "Unix"; ("sleep" | "sleepf" | "select") ] ->
          Rule.finding ctx rule ~loc:e.pexp_loc
            "real-time waiting makes behavior depend on the host \
             scheduler; advance the simulation's virtual clock instead"
        | Some [ "Sys"; "time" ] ->
          Rule.finding ctx rule ~loc:e.pexp_loc
            "Sys.time reads process CPU time; derive time from the \
             simulation's virtual clock (drivers in bin/ may inject a \
             real clock, e.g. Obs.Profile's ?clock)"
        | Some [ "Domain"; ("spawn" | "join") ] ->
          Rule.finding ctx rule ~loc:e.pexp_loc
            "Domain.spawn introduces OS-level scheduling into a \
             determinism-critical library; multicore is sanctioned only \
             inside lib/parallel (fan out via Parallel.Pool.map)"
        | Some [ "Hashtbl"; "iter" ] ->
          Rule.finding ctx rule ~loc:e.pexp_loc
            "Hashtbl.iter visits bindings in table order, which is not \
             stable; iterate a key-sorted snapshot instead"
        | Some [ "Hashtbl"; "fold" ] ->
          if not (sorted_immediately ancestors) then
            Rule.finding ctx rule ~loc:e.pexp_loc
              "Hashtbl.fold result depends on table order; sort the \
               snapshot immediately (|> List.sort ...)"
        | _ -> ())
  in
  rule

(* --- R2: no-polymorphic-compare ------------------------------------- *)

let poly_ops = [ "compare"; "="; "<>"; "<"; ">"; "<="; ">=" ]

let is_structured e =
  match e.pexp_desc with
  | Pexp_record _ | Pexp_tuple _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

let r2 =
  let rec rule =
    {
      Rule.id = "R2";
      name = "no-polymorphic-compare";
      summary =
        "no Stdlib.compare / bare compare comparators / polymorphic =,<> \
         on structured values in protocol and oracle code";
      severity = Finding.Error;
      applies = in_libs protocol_libs;
      kind = Rule.Ast (fun ctx str -> check ctx str);
    }
  and check ctx str =
    iter_with_ancestors str (fun ~ancestors:_ e ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          match flatten txt with
          | [ ("Stdlib" | "Pervasives"); op ] when List.mem op poly_ops ->
            Rule.finding ctx rule ~loc:e.pexp_loc
              (Printf.sprintf
                 "polymorphic %s compares arbitrary representations; use a \
                  typed comparator (Int.compare, String.compare, \
                  Value.compare, ...)"
                 (if String.equal op "compare" then "Stdlib.compare"
                  else Printf.sprintf "Stdlib.(%s)" op))
          | _ -> ())
        | Pexp_apply (f, args) -> (
          (* bare [compare] passed as a comparator argument *)
          List.iter
            (fun (_, arg) ->
              match arg.pexp_desc with
              | Pexp_ident { txt = Longident.Lident "compare"; _ } ->
                Rule.finding ctx rule ~loc:arg.pexp_loc
                  "bare polymorphic compare used as a comparator; pass a \
                   typed compare function"
              | _ -> ())
            args;
          (* [=] / [<>] on a syntactically structured operand *)
          match (ident_path f, args) with
          | Some [ (("=" | "<>") as op) ], [ (_, a); (_, b) ]
            when is_structured a || is_structured b ->
            Rule.finding ctx rule ~loc:(apply_head f).pexp_loc
              (Printf.sprintf
                 "polymorphic (%s) on a structured value; use a typed \
                  equal"
                 op)
          | _ -> ())
        | _ -> ())
  in
  rule

(* --- R3: no-wildcard-message-match ---------------------------------- *)

let msg_modules = [ "Messages"; "Event" ]

let pattern_msg_module p =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it pp ->
          (match pp.ppat_desc with
           | Ppat_construct ({ txt; _ }, _) -> (
             match List.rev (flatten txt) with
             | _ctor :: modpath when !found = None -> (
               match
                 List.find_opt (fun m -> List.mem m msg_modules) modpath
               with
               | Some m -> found := Some m
               | None -> ())
             | _ -> ())
           | _ -> ());
          Ast_iterator.default_iterator.pat it pp);
    }
  in
  it.pat it p;
  !found

let rec catch_all_sub p =
  match p.ppat_desc with
  | Ppat_any -> Some p
  | Ppat_or (a, b) -> (
    match catch_all_sub a with Some w -> Some w | None -> catch_all_sub b)
  | Ppat_alias (q, _) | Ppat_constraint (q, _) -> catch_all_sub q
  | _ -> None

let r3 =
  let rec rule =
    {
      Rule.id = "R3";
      name = "no-wildcard-message-match";
      summary =
        "no `_ ->` catch-alls in matches over message/event constructors; \
         every constructor must be handled explicitly";
      severity = Finding.Error;
      applies = (function Rule.Lib _ | Rule.Bin -> true | _ -> false);
      kind = Rule.Ast (fun ctx str -> check ctx str);
    }
  and check_cases ctx cases =
    let proper_cases =
      List.filter
        (fun c ->
          match c.pc_lhs.ppat_desc with Ppat_exception _ -> false | _ -> true)
        cases
    in
    match
      List.find_map (fun c -> pattern_msg_module c.pc_lhs) proper_cases
    with
    | None -> ()
    | Some m ->
      List.iter
        (fun c ->
          match catch_all_sub c.pc_lhs with
          | Some w ->
            Rule.finding ctx rule ~loc:w.ppat_loc
              (Printf.sprintf
                 "wildcard catch-all in a match over %s constructors; a \
                  new constructor would be dropped silently — handle every \
                  constructor explicitly"
                 m)
          | None -> ())
        proper_cases
  and check ctx str =
    iter_with_ancestors str (fun ~ancestors:_ e ->
        match e.pexp_desc with
        | Pexp_match (_, cases) | Pexp_function cases ->
          check_cases ctx cases
        | _ -> ())
  in
  rule

(* --- R4: no-partial-functions --------------------------------------- *)

let r4 =
  let rec rule =
    {
      Rule.id = "R4";
      name = "no-partial-functions";
      summary =
        "no List.hd/tl/nth, Option.get, computed Array.get or bare \
         failwith in protocol hot paths";
      severity = Finding.Warning;
      applies = in_libs hot_path_libs;
      kind = Rule.Ast (fun ctx str -> check ctx str);
    }
  and check ctx str =
    (* A partial call inside the scrutinee of a [match ... with exception]
       is handled; collect those scrutinee spans as we descend (the match
       node is visited before anything inside it). *)
    let handled_spans = ref [] in
    let handled loc =
      List.exists (fun outer -> loc_inside ~outer loc) !handled_spans
    in
    let flag loc msg = Rule.finding ctx rule ~loc msg in
    iter_with_ancestors str (fun ~ancestors:_ e ->
        (match e.pexp_desc with
         | Pexp_match (scrut, cases)
           when List.exists
                  (fun c ->
                    match c.pc_lhs.ppat_desc with
                    | Ppat_exception _ -> true
                    | _ -> false)
                  cases ->
           handled_spans := scrut.pexp_loc :: !handled_spans
         | _ -> ());
        match ident_path e with
        | Some [ "List"; (("hd" | "tl" | "nth") as fn) ]
          when not (handled e.pexp_loc) ->
          flag e.pexp_loc
            (Printf.sprintf
               "List.%s raises on %s; use a total alternative \
                (pattern-match, List.nth_opt, ...)"
               fn
               (if String.equal fn "nth" then "out-of-range indices"
                else "the empty list"))
        | Some [ "Option"; "get" ] when not (handled e.pexp_loc) ->
          flag e.pexp_loc
            "Option.get raises on None; pattern-match or use \
             Option.value ~default"
        | Some [ "failwith" ] when not (handled e.pexp_loc) ->
          flag e.pexp_loc
            "bare failwith in a protocol hot path; return a result or \
             handle the case totally"
        | _ -> (
          match e.pexp_desc with
          | Pexp_apply (f, (_ :: (_, idx) :: _ as _args)) -> (
            match (ident_path f, (apply_head f).pexp_loc.loc_ghost) with
            | Some [ "Array"; "get" ], false -> (
              match idx.pexp_desc with
              | Pexp_constant (Pconst_integer _) -> ()
              | _ ->
                if not (handled (apply_head f).pexp_loc) then
                  flag (apply_head f).pexp_loc
                    "Array.get on a computed index can raise; bound-check \
                     or restructure")
            | _ -> ())
          | _ -> ()))
  in
  rule

(* --- R5: mli-coverage ------------------------------------------------ *)

let r5 =
  let rule_applies = function Rule.Lib _ -> true | _ -> false in
  let rec rule =
    {
      Rule.id = "R5";
      name = "mli-coverage";
      summary = "every module under lib/ must have an .mli interface";
      severity = Finding.Warning;
      applies = rule_applies;
      kind = Rule.Tree (fun ~root files -> check ~root files);
    }
  and check ~root files =
    List.filter_map
      (fun (path, scope) ->
        if rule_applies scope && Filename.check_suffix path ".ml" then begin
          let mli = Filename.chop_suffix path ".ml" ^ ".mli" in
          if Sys.file_exists (Filename.concat root mli) then None
          else
            Some
              (Finding.v ~file:path ~line:1 ~col:0 ~rule:rule.Rule.id
                 ~severity:rule.Rule.severity
                 (Printf.sprintf
                    "module %s has no interface; add %s"
                    (String.capitalize_ascii
                       (Filename.chop_suffix (Filename.basename path) ".ml"))
                    mli))
        end
        else None)
      files
  in
  rule

let all = [ r1; r2; r3; r4; r5 ]

let by_id id = List.find_opt (fun r -> String.equal r.Rule.id id) all
