open Util

let mk ?(lo = 1) ?(hi = 10) () =
  let rng = Sim.Rng.create 3 in
  let e = Sim.Engine.create ~rng () in
  let received = ref [] in
  let link =
    Sim.Link.create ~engine:e
      ~delay:(Sim.Link.uniform (Sim.Rng.split rng) ~lo ~hi)
      ~name:"test" ~deliver:(fun m -> received := m :: !received)
  in
  (e, link, received)

let test_delivery () =
  let e, link, received = mk () in
  Sim.Link.send link "hello";
  Sim.Engine.run e;
  check_true "delivered" (!received = [ "hello" ]);
  let t = Sim.Vtime.to_int (Sim.Engine.now e) in
  check_true "delay in range" (t >= 1 && t <= 10)

let test_fifo_order () =
  let e, link, received = mk () in
  for i = 1 to 50 do
    Sim.Link.send link (string_of_int i)
  done;
  Sim.Engine.run e;
  check_true "FIFO preserved despite random delays"
    (List.rev !received = List.init 50 (fun i -> string_of_int (i + 1)))

let test_fifo_across_time () =
  let e, link, received = mk ~lo:1 ~hi:20 () in
  Sim.Link.send link "a";
  Sim.Engine.schedule e ~delay:2 (fun () -> Sim.Link.send link "b");
  Sim.Engine.schedule e ~delay:4 (fun () -> Sim.Link.send link "c");
  Sim.Engine.run e;
  check_true "order kept" (List.rev !received = [ "a"; "b"; "c" ])

let test_send_timed_reports_arrival () =
  let e, link, received = mk () in
  let at = Sim.Link.send_timed link "x" in
  Sim.Engine.run e;
  ignore !received;
  check_int "engine stops at arrival" (Sim.Vtime.to_int at)
    (Sim.Vtime.to_int (Sim.Engine.now e))

let test_in_flight_and_corruption () =
  let e, link, received = mk () in
  Sim.Link.send link "keep";
  Sim.Link.send link "rewrite";
  Sim.Link.send link "drop";
  check_int "three in flight" 3 (List.length (Sim.Link.in_flight link));
  Sim.Link.corrupt_in_flight link (function
    | "rewrite" -> Some "rewritten"
    | "drop" -> None
    | m -> Some m);
  Sim.Engine.run e;
  check_true "corruption applied"
    (List.rev !received = [ "keep"; "rewritten" ])

let test_inject () =
  let e, link, received = mk () in
  Sim.Link.inject link "spurious";
  Sim.Engine.run e;
  check_true "injected message arrives" (!received = [ "spurious" ])

let test_message_counter () =
  let e, link, _received = mk () in
  for _ = 1 to 5 do
    Sim.Link.send link "m"
  done;
  Sim.Engine.run e;
  check_int "net.msgs counts deliveries" 5
    (Sim.Trace.counter (Sim.Engine.trace e) "net.msgs")

let test_fixed_delay () =
  let rng = Sim.Rng.create 3 in
  let e = Sim.Engine.create ~rng () in
  let link =
    Sim.Link.create ~engine:e ~delay:(Sim.Link.fixed 7) ~name:"fixed"
      ~deliver:ignore
  in
  Sim.Link.send link ();
  Sim.Engine.run e;
  check_int "fixed delay" 7 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_bad_samplers_rejected () =
  let rng = Sim.Rng.create 3 in
  Alcotest.check_raises "negative fixed"
    (Invalid_argument "Link.fixed: negative delay") (fun () ->
      ignore (Sim.Link.fixed (-1) : Sim.Link.sampler));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Link.uniform: bad delay range") (fun () ->
      ignore (Sim.Link.uniform rng ~lo:5 ~hi:2 : Sim.Link.sampler))

let tests =
  [
    case "delivery" test_delivery;
    case "FIFO order" test_fifo_order;
    case "FIFO across time" test_fifo_across_time;
    case "send_timed arrival" test_send_timed_reports_arrival;
    case "in-flight corruption" test_in_flight_and_corruption;
    case "inject" test_inject;
    case "message counter" test_message_counter;
    case "fixed delay" test_fixed_delay;
    case "bad samplers rejected" test_bad_samplers_rejected;
  ]
