test/test_soak.ml: Alcotest Array Byzantine Harness List Mwmr Net Oracles Printf Registers Sim Ss_transport Swsr_atomic Util Value
