bin/exp_e7.ml: Baseline Byzantine Common Harness List Messages Registers Server Swsr_atomic Swsr_regular Value
