test/test_vtime.ml: Alcotest Sim Util
