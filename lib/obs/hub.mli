(** Event dispatch.

    One hub lives next to each engine; instrumented code emits typed
    events into it.  With no sinks attached the hub is inert: {!active}
    is false and hot paths are expected to guard event construction on
    it, so the only cost of the instrumentation is one boolean load. *)

type t

val create : unit -> t

val active : t -> bool
(** True iff at least one sink is attached.  Hot paths should check this
    before allocating an event. *)

val attach : t -> Sink.t -> unit

val detach : t -> string -> unit
(** Remove every sink with the given name. *)

val emit : t -> Event.t -> unit
(** Deliver to every sink; no-op when inactive. *)

val emit_with : t -> (unit -> Event.t) -> unit
(** Like {!emit} but the event is only constructed when a sink is
    attached. *)

val next_op_id : t -> int
(** Allocate a fresh operation id (monotonic per hub, independent of
    whether sinks are attached — op ids are stable across
    instrumentation settings). *)

val flush : t -> unit
