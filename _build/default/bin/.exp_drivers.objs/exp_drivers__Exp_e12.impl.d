bin/exp_e12.ml: Common Harness List Registers Sim Swsr_atomic Value
