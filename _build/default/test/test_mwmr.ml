open Util
open Registers

let setup ?(seed = 7) ?(m = 3) ?(seq_bound = 1 lsl 61) ?(tie = `Min_index) ()
    =
  let scn = async_scenario ~seed () in
  let cfg = { (Mwmr.default_config ~m) with seq_bound; tie } in
  let procs =
    Array.init m (fun i ->
        Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:i
          ~client_id:(300 + i))
  in
  (scn, cfg, procs)

let test_write_then_read_same_process () =
  let scn, _, procs = setup () in
  let got = ref None in
  run_fiber scn "p0" (fun () ->
      Mwmr.write procs.(0) (int_value 9);
      got := Mwmr.read procs.(0));
  Alcotest.(check (option value)) "own write visible" (Some (int_value 9)) !got

let test_cross_process_visibility () =
  let scn, _, procs = setup () in
  let got = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          Mwmr.write procs.(0) (int_value 4);
          got := Mwmr.read procs.(2) );
    ];
  Alcotest.(check (option value)) "p2 sees p0's write" (Some (int_value 4)) !got

let test_last_writer_wins () =
  let scn, _, procs = setup () in
  let got = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          Mwmr.write procs.(0) (int_value 1);
          Mwmr.write procs.(1) (int_value 2);
          Mwmr.write procs.(2) (int_value 3);
          got := Mwmr.read procs.(0) );
    ];
  Alcotest.(check (option value)) "latest value" (Some (int_value 3)) !got

let run_mixed ?(ops = 12) ?(write_ratio = 0.5) ?(gap = Harness.Workload.gap 0 30)
    scn procs =
  run_fibers scn
    (Array.to_list
       (Array.mapi
          (fun i p ->
            ( Printf.sprintf "p%d" i,
              fun () ->
                Harness.Workload.mwmr_job scn
                  ~proc:(Printf.sprintf "p%d" i)
                  ~process:p ~ops ~write_ratio ~gap () ))
          procs))

let check_mw ~tie ?cutoff scn =
  let report =
    Oracles.Atomicity.Mw.check ?cutoff ~tie scn.Harness.Scenario.history
  in
  if not (Oracles.Atomicity.Mw.is_clean report) then
    Alcotest.failf "%a" Oracles.Atomicity.Mw.pp report

let test_concurrent_mixed_atomic () =
  let scn, cfg, procs = setup ~seed:5 () in
  run_mixed scn procs;
  check_mw ~tie:cfg.Mwmr.tie scn

let test_across_seeds () =
  for seed = 1 to 10 do
    let scn, cfg, procs = setup ~seed () in
    run_mixed ~ops:8 scn procs;
    check_mw ~tie:cfg.Mwmr.tie scn
  done

let test_max_index_tie_break () =
  for seed = 1 to 5 do
    let scn, cfg, procs = setup ~seed ~tie:`Max_index () in
    run_mixed ~ops:8 scn procs;
    check_mw ~tie:cfg.Mwmr.tie scn
  done

let test_with_byzantine () =
  let scn, cfg, procs = setup ~seed:9 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 6
    Byzantine.Behavior.garbage;
  run_mixed ~ops:8 scn procs;
  check_mw ~tie:cfg.Mwmr.tie scn

let test_epoch_wraparound_sequential () =
  (* Tiny seq bound: the active writer exhausts the sequence space and
     must open fresh epochs.  Reads by the writing process itself stay
     correct across every wrap (its own register always holds its last
     value, so the line-11 restamp is harmless for it). *)
  let scn, _, procs = setup ~seq_bound:3 () in
  let reads = ref [] in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          for k = 1 to 12 do
            Mwmr.write procs.(0) (int_value k);
            reads := (k, Mwmr.read procs.(0)) :: !reads
          done );
    ];
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "after write %d" k)
        (Some (int_value k))
        v)
    !reads;
  check_true "epochs were opened" (Mwmr.epochs_opened procs.(0) > 0)

let test_foreign_reader_at_exhaustion_restamps_own () =
  (* Paper-literal quirk of Fig. 4 line 11: a reader that finds the epoch
     exhausted restamps ITS OWN register's value into the fresh epoch and
     returns it — here Bot, since p1 never wrote.  The next write heals
     the register. *)
  let scn, _, procs = setup ~seq_bound:3 () in
  let at_boundary = ref None and healed = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          for k = 1 to 3 do
            Mwmr.write procs.(0) (int_value k)
          done;
          (* seq now equals the bound: p1's read crosses the boundary. *)
          at_boundary := Mwmr.read procs.(1);
          Mwmr.write procs.(0) (int_value 4);
          healed := Mwmr.read procs.(1) );
    ];
  Alcotest.(check (option value)) "boundary read restamps p1's own value"
    (Some Registers.Value.bot) !at_boundary;
  check_true "p1 opened the epoch" (Mwmr.epochs_opened procs.(1) >= 1);
  Alcotest.(check (option value)) "healed by the next write"
    (Some (int_value 4)) !healed

let test_epoch_count_matches_bound () =
  let scn, _, procs = setup ~seq_bound:2 () in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          for k = 1 to 10 do
            Mwmr.write procs.(0) (int_value k)
          done );
    ];
  (* Sequence numbers 1..2 per epoch: roughly one epoch per two writes. *)
  check_true "several epochs"
    (Mwmr.epochs_opened procs.(0) >= 3 && Mwmr.epochs_opened procs.(0) <= 10)

let test_read_restamps_on_exhaustion () =
  (* Line 11 from the writing process's own perspective: its restamp
     carries its own (fresh) value, so the value survives. *)
  let scn, _, procs = setup ~seq_bound:1 () in
  let got = ref None in
  run_fibers scn
    [
      ( "seq",
        fun () ->
          Mwmr.write procs.(0) (int_value 5);
          (* seq bound 1: the next operation sees seq >= bound. *)
          got := Mwmr.read procs.(0) );
    ];
  Alcotest.(check (option value)) "value survives restamping"
    (Some (int_value 5)) !got;
  check_true "reader opened an epoch" (Mwmr.epochs_opened procs.(0) >= 1)

let test_recovers_from_server_corruption () =
  let scn, cfg, procs = setup ~seed:14 () in
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int 800)
    ~prefix:"server.";
  run_mixed ~ops:16 ~gap:(Harness.Workload.gap 0 40) scn procs;
  (* After the fault, find a quiescent point: the first operation invoked
     after every pre-fault-started operation responded. *)
  let ops = Oracles.History.ops scn.Harness.Scenario.history in
  let post = List.filter (fun (o : Oracles.History.op) -> Sim.Vtime.to_int o.inv >= 800) ops in
  (* Skip the first few post-fault ops (they absorb the debris), then
     demand atomicity.  Lemma 16's clock starts at the first non-concurrent
     operation; skipping a prefix approximates it conservatively. *)
  (match List.nth_opt post (List.length post / 2) with
  | Some o -> check_mw ~tie:cfg.Mwmr.tie ~cutoff:o.Oracles.History.inv scn
  | None -> Alcotest.fail "no post-fault operations")

let tests =
  [
    case "write/read same process" test_write_then_read_same_process;
    case "cross-process visibility" test_cross_process_visibility;
    case "last writer wins" test_last_writer_wins;
    case "concurrent mixed atomic" test_concurrent_mixed_atomic;
    case "across seeds" test_across_seeds;
    case "Max_index tie-break" test_max_index_tie_break;
    case "byzantine server" test_with_byzantine;
    case "epoch wrap (sequential)" test_epoch_wraparound_sequential;
    case "foreign reader at exhaustion (line 11)" test_foreign_reader_at_exhaustion_restamps_own;
    case "epoch count vs bound" test_epoch_count_matches_bound;
    case "read restamps on exhaustion" test_read_restamps_on_exhaustion;
    case "recovers from corruption (Thm 4)" test_recovers_from_server_corruption;
  ]
