let mode_string (params : Registers.Params.t) =
  match params.mode with
  | Registers.Params.Async -> "async"
  | Registers.Params.Sync _ -> "sync"

let observe_params report (params : Registers.Params.t) =
  if not (Obs.Report.has_params report) then
    Obs.Report.set_params report ~n:params.n ~f:params.f
      ~mode:(mode_string params)

let op_prefix = "op."

let observe_metrics report metrics =
  List.iter
    (fun cls ->
      let name = Obs.Event.class_name cls in
      let sent =
        Obs.Metrics.counter metrics (Printf.sprintf "msg.sent.%s.count" name)
      in
      let recv =
        Obs.Metrics.counter metrics (Printf.sprintf "msg.recv.%s.count" name)
      in
      let bytes =
        Obs.Metrics.counter metrics (Printf.sprintf "msg.sent.%s.bytes" name)
      in
      if sent > 0 || recv > 0 then
        Obs.Report.add_message_class report ~name ~sent ~recv ~bytes)
    Obs.Event.all_classes;
  List.iter
    (fun (name, h) ->
      let plen = String.length op_prefix in
      if
        String.length name > plen
        && String.equal (String.sub name 0 plen) op_prefix
        && Obs.Metrics.hist_count h > 0
      then
        Obs.Report.add_op_summary report
          ~name:(String.sub name plen (String.length name - plen))
          (Obs.Report.op_summary_of_histogram h))
    (Obs.Metrics.histograms metrics);
  (* The per-class message counters are already structured above; keep the
     counters section to the scalar diagnostics. *)
  Obs.Report.set_counters report
    (List.filter
       (fun (name, _) ->
         not
           (String.length name >= 4 && String.equal (String.sub name 0 4) "msg."))
       (Obs.Metrics.counters metrics))

let observe report (scn : Scenario.t) =
  observe_params report (Registers.Net.params scn.net);
  observe_metrics report (Scenario.metrics scn)

let observe_trace report (trace : Sim.Trace.t) =
  observe_metrics report (Sim.Trace.metrics trace)
