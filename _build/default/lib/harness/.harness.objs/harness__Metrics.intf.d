lib/harness/metrics.mli: Format Oracles
