open Util

let test_counters () =
  let tr = Sim.Trace.create () in
  check_int "fresh counter" 0 (Sim.Trace.counter tr "x");
  Sim.Trace.incr tr "x";
  Sim.Trace.incr tr "x";
  Sim.Trace.add tr "y" 5;
  check_int "x" 2 (Sim.Trace.counter tr "x");
  check_int "y" 5 (Sim.Trace.counter tr "y");
  check_true "sorted listing"
    (Sim.Trace.counters tr = [ ("x", 2); ("y", 5) ]);
  Sim.Trace.reset_counters tr;
  check_int "reset" 0 (Sim.Trace.counter tr "x")

let test_events () =
  let tr = Sim.Trace.create () in
  Sim.Trace.emit tr ~time:(Sim.Vtime.of_int 1) ~tag:"a" "first";
  Sim.Trace.emit tr ~time:(Sim.Vtime.of_int 2) ~tag:"b" "second";
  Sim.Trace.emit tr ~time:(Sim.Vtime.of_int 3) ~tag:"a" "third";
  check_int "all events" 3 (List.length (Sim.Trace.events tr));
  let tagged = Sim.Trace.events_tagged tr "a" in
  check_int "tagged" 2 (List.length tagged);
  check_true "oldest first"
    (List.map (fun (e : Sim.Trace.event) -> e.detail) tagged
    = [ "first"; "third" ])

let test_recording_disabled () =
  let tr = Sim.Trace.create ~record_events:false () in
  Sim.Trace.emit tr ~time:Sim.Vtime.zero ~tag:"a" "dropped";
  check_int "no events" 0 (List.length (Sim.Trace.events tr));
  Sim.Trace.incr tr "still-counting";
  check_int "counters alive" 1 (Sim.Trace.counter tr "still-counting")

let tests =
  [
    case "counters" test_counters;
    case "events" test_events;
    case "recording disabled" test_recording_disabled;
  ]
