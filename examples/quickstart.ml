(* Quickstart: a practically stabilizing Byzantine-tolerant SWSR atomic
   register in ~40 lines.

     dune exec examples/quickstart.exe

   One writer and one reader share a register replicated over n = 9
   simulated servers, one of which answers with garbage; the reader still
   always sees fresh values. *)

open Registers

let () =
  (* A deployment: 9 servers, at most 1 Byzantine, asynchronous links. *)
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:42 ~params () in

  (* Make server 3 Byzantine: it answers every request with random junk. *)
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 3
    Byzantine.Behavior.garbage;

  (* Client endpoints for register instance 0. *)
  let net = scn.Harness.Scenario.net in
  let writer = Swsr_atomic.writer ~net ~client_id:1 ~inst:0 () in
  let reader = Swsr_atomic.reader ~net ~client_id:2 ~inst:0 () in

  (* Clients are fibers: sequential code over the simulated network. *)
  let _w =
    Sim.Fiber.spawn ~name:"writer" (fun () ->
        List.iter
          (fun word ->
            Swsr_atomic.write writer (Value.str word);
            Printf.printf "[writer] wrote %S\n" word;
            Harness.Scenario.sleep scn 20)
          [ "tyranny"; "is"; "a"; "habit" ])
  in
  let _r =
    Sim.Fiber.spawn ~name:"reader" (fun () ->
        for _ = 1 to 6 do
          (match Swsr_atomic.read reader with
          | Some v ->
            Printf.printf "[reader] t=%-4d read %s\n"
              (Sim.Vtime.to_int (Harness.Scenario.now scn))
              (Value.to_string v)
          | None -> assert false);
          Harness.Scenario.sleep scn 15
        done)
  in
  Harness.Scenario.run scn;
  Printf.printf "done at t=%d, %d messages exchanged\n"
    (Sim.Vtime.to_int (Harness.Scenario.now scn))
    (Harness.Scenario.messages_sent scn)
