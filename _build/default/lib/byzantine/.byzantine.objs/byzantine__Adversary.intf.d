lib/byzantine/adversary.mli: Behavior Registers Sim
