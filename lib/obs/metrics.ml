(* --- log-bucketed histograms --- *)

(* Bucket 0 holds [0, 1); bucket i >= 1 holds [2^((i-1)/4), 2^(i/4)) —
   four buckets per doubling, so a quantile estimate is within ~19% of
   the true value.  min/max/sum are tracked exactly. *)

let num_buckets = 256

let buckets_per_doubling = 4

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

let histogram_create () =
  {
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    buckets = Array.make num_buckets 0;
  }

let pow_quarter j =
  Float.pow 2.0 (float_of_int j /. float_of_int buckets_per_doubling)

let bucket_index v =
  if not (Float.is_finite v) || v < 1.0 then 0
  else
    let i =
      1
      + int_of_float
          (Float.floor (Float.log2 v *. float_of_int buckets_per_doubling))
    in
    let i = Stdlib.min i (num_buckets - 1) in
    (* log2 rounding can misplace an exact bucket bound by one; settle
       against the same powers bucket_bounds reports. *)
    if i < num_buckets - 1 && v >= pow_quarter i then i + 1
    else if v < pow_quarter (i - 1) then i - 1
    else i

let bucket_bounds i =
  if i <= 0 then (0.0, 1.0)
  else
    let hi = if i >= num_buckets - 1 then infinity else pow_quarter i in
    (pow_quarter (i - 1), hi)

let observe h v =
  let v = Stdlib.max v 0.0 in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let hist_count h = h.count

let hist_sum h = h.sum

let hist_min h = if h.count = 0 then 0.0 else h.min_v

let hist_max h = if h.count = 0 then 0.0 else h.max_v

let hist_mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let quantile h q =
  if h.count = 0 then 0.0
  else if q <= 0.0 then h.min_v
  else if q >= 1.0 then h.max_v
  else begin
    (* 1-based rank, same convention as Harness.Metrics.percentile. *)
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let result = ref h.max_v in
    let cum = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         let n = h.buckets.(i) in
         if n > 0 then begin
           cum := !cum + n;
           if !cum >= rank then begin
             let lo, hi = bucket_bounds i in
             let hi = if Float.is_finite hi then hi else h.max_v in
             let frac =
               float_of_int (rank - (!cum - n)) /. float_of_int n
             in
             result := lo +. (frac *. (hi -. lo));
             raise Exit
           end
         end
       done
     with Exit -> ());
    Stdlib.min (Stdlib.max !result h.min_v) h.max_v
  end

(* --- registry --- *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_counters t = Hashtbl.reset t.counters

let set_gauge t name v = Hashtbl.replace t.gauges name v

let gauge t name = Hashtbl.find_opt t.gauges name

let gauges t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = histogram_create () in
    Hashtbl.add t.hists name h;
    h

let observe_named t name v = observe (histogram t name) v

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_to_json h =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("mean", Json.Float (hist_mean h));
      ("min", Json.Float (hist_min h));
      ("p50", Json.Float (quantile h 0.5));
      ("p90", Json.Float (quantile h 0.9));
      ("p95", Json.Float (quantile h 0.95));
      ("p99", Json.Float (quantile h 0.99));
      ("p999", Json.Float (quantile h 0.999));
      ("max", Json.Float (hist_max h));
    ]

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)) );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) (histograms t))
      );
    ]
