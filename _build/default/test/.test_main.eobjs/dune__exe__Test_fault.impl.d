test/test_fault.ml: List Printf Sim String Util
