(* Experiment driver: regenerates every table of EXPERIMENTS.md.

     dune exec bin/experiments.exe -- run all
     dune exec bin/experiments.exe -- run E1 E3 --seed 42
     dune exec bin/experiments.exe -- list
*)

let all : (string * string * (seed:int -> unit)) list =
  [
    ("E1", "Figure 1: new/old inversion, regular vs atomic", Exp_drivers.Exp_e1.run);
    ("E2", "stabilization after a full transient fault", Exp_drivers.Exp_e2.run);
    ("E3", "asynchronous resilience bound (t < n/8)", Exp_drivers.Exp_e3.run);
    ("E4", "synchronous resilience bound (t < n/3)", Exp_drivers.Exp_e4.run);
    ("E5", "reader cost vs write pressure (helping)", Exp_drivers.Exp_e5.run);
    ("E6", "bounded epochs under sequence exhaustion", Exp_drivers.Exp_e6.run);
    ("E7", "baselines: classical and quiescence-dependent", Exp_drivers.Exp_e7.run);
    ("E8", "alternating-bit data link (footnote 3)", Exp_drivers.Exp_e8.run);
    ("E9", "message cost per operation", Exp_drivers.Exp_e9.run);
    ("E10", "mobile Byzantine faults (footnote 1)", Exp_drivers.Exp_e10.run);
    ("E11", "registers over lossy links (ss-transport)", Exp_drivers.Exp_e11.run);
    ("E12", "ablation: the lines N2-N7 sanity phase", Exp_drivers.Exp_e12.run);
    ("E13", "SWMR composition vs reader write-back", Exp_drivers.Exp_e13.run);
    ("E14", "scalability with n", Exp_drivers.Exp_e14.run);
  ]

open Cmdliner

let ids_arg =
  let doc = "Experiment ids to run (E1..E14), or $(b,all)." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)

let seed_arg =
  let doc = "Root random seed; every table is deterministic given it." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let json_arg =
  let doc =
    "Write one machine-readable run report per experiment as \
     $(docv)/<exp>.json (schema stabreg/run-report/v1).  $(docv) defaults \
     to $(b,results) when the flag is given without a value."
  in
  Arg.(
    value
    & opt ~vopt:(Some "results") (some string) None
    & info [ "json" ] ~docv:"DIR" ~doc)

let trace_out_arg =
  let doc =
    "Append the typed event stream of every instrumented deployment to \
     $(docv) as JSON lines (one event per line)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run ids seed json trace =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let wanted =
      if List.exists (fun id -> String.lowercase_ascii id = "all") ids then
        List.map (fun (id, _, _) -> id) all
      else ids
    in
    let unknown =
      List.filter
        (fun id -> not (List.exists (fun (i, _, _) -> i = id) all))
        wanted
    in
    match unknown with
    | _ :: _ ->
      `Error
        (false, "unknown experiment(s): " ^ String.concat ", " unknown)
    | [] ->
      List.iter
        (fun id ->
          let _, _, f = List.find (fun (i, _, _) -> i = id) all in
          Exp_drivers.Common.with_report ~exp:id ~seed (fun () -> f ~seed))
        wanted;
      Exp_drivers.Common.close_trace ();
      `Ok ()
  in
  let doc = "Run experiments and print their tables." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(ret (const run $ ids_arg $ seed_arg $ json_arg $ trace_out_arg))

let validate_cmd =
  let read_file path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let validate files =
    let problems =
      List.filter_map
        (fun path ->
          match Obs.Json.parse (read_file path) with
          | Error e -> Some (Printf.sprintf "%s: parse error: %s" path e)
          | Ok j -> (
            match Obs.Report.validate j with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "%s: %s" path e)))
        files
    in
    match problems with
    | [] ->
      Printf.printf "%d report(s) valid (%s)\n" (List.length files)
        Obs.Report.schema_version;
      `Ok ()
    | _ :: _ -> `Error (false, String.concat "\n" problems)
  in
  let files_arg =
    let doc = "Run-report JSON files to check against the schema." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate run-report files against the versioned schema.")
    Term.(ret (const validate $ files_arg))

let trace_cmd =
  (* A small annotated run with full event recording: lets adopters see
     the message flow of one write+read. *)
  let trace seed =
    let params =
      Registers.Params.create_exn ~n:9 ~f:1 ~mode:Registers.Params.Async
    in
    let scn = Harness.Scenario.create ~seed ~record_events:true ~params () in
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 3
      Byzantine.Behavior.garbage;
    let w =
      Registers.Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:1
        ~inst:0 ()
    in
    let r =
      Registers.Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:2
        ~inst:0 ()
    in
    let got = ref None in
    Exp_drivers.Common.run_jobs scn
      [
        ( "wr",
          fun () ->
            Registers.Swsr_atomic.write w (Registers.Value.str "traced");
            got := Registers.Swsr_atomic.read r );
      ];
    Printf.printf
      "one prac_at_write + one prac_at_read, n=9, t=1, server 3 Byzantine\n";
    Printf.printf "read returned: %s\n\n" (Exp_drivers.Common.value_str !got);
    Harness.Report.kv
      [
        ("virtual time", string_of_int (Sim.Vtime.to_int (Harness.Scenario.now scn)));
        ("messages delivered", string_of_int (Harness.Scenario.messages_sent scn));
        ("ss-broadcasts", string_of_int (Harness.Scenario.broadcasts scn));
      ];
    print_newline ();
    List.iter
      (fun e -> Format.printf "%a@." Sim.Trace.pp_event e)
      (Sim.Trace.events (Sim.Engine.trace scn.Harness.Scenario.engine))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump counters and events of one annotated run.")
    Term.(const trace $ seed_arg)

let chaos_cmd =
  let family_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun e -> `Msg e)
            (Chaos.Campaign.family_of_string s)),
        fun fmt f ->
          Format.pp_print_string fmt (Chaos.Campaign.family_to_string f) )
  in
  let medium_conv =
    let parse = function
      | "fifo" -> Ok Chaos.Campaign.Fifo
      | "lossy" -> Ok Chaos.Campaign.Lossy
      | s -> Error (`Msg (Printf.sprintf "unknown medium %S" s))
    in
    Arg.conv
      ( parse,
        fun fmt m ->
          Format.pp_print_string fmt
            (match m with Chaos.Campaign.Fifo -> "fifo" | Lossy -> "lossy") )
  in
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error (fun e -> `Msg e) (Chaos.Strategy.of_string s)),
        fun fmt s -> Format.pp_print_string fmt (Chaos.Strategy.to_string s) )
  in
  let family_arg =
    let doc = "Register family to attack: $(b,regular), $(b,atomic) or \
               $(b,mwmr)." in
    Arg.(
      value
      & opt family_conv Chaos.Campaign.Regular
      & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let trials_arg =
    let doc = "Number of randomized trials in the campaign." in
    Arg.(value & opt int 5 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let byz_arg =
    let doc =
      "Compromise the first $(docv) server slots before the run starts \
       (beyond the schedule's own mobile roams).  More than t slots \
       deliberately exceeds the resilience bound."
    in
    Arg.(value & opt int 1 & info [ "byz" ] ~docv:"K" ~doc)
  in
  let strategy_arg =
    let doc =
      "Strategy of the $(b,--byz) slots: $(b,silent), $(b,garbage), \
       $(b,equivocate), $(b,frozen), $(b,collude), $(b,flaky:<p>), \
       $(b,delayed:<ticks>) or $(b,crash:<k>)."
    in
    Arg.(
      value
      & opt strategy_conv Chaos.Strategy.Garbage
      & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let medium_arg =
    let doc =
      "Communication medium: $(b,fifo) (reliable links) or $(b,lossy) \
       (self-stabilizing transports; enables link-chaos windows)."
    in
    Arg.(
      value
      & opt medium_conv Chaos.Campaign.Fifo
      & info [ "medium" ] ~docv:"MEDIUM" ~doc)
  in
  let out_arg =
    let doc = "Directory for shrunk counterexample artifacts." in
    Arg.(
      value & opt string "results/chaos" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-execute a repro artifact instead of running a campaign; fails \
       unless the replay reproduces the recorded verdict."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let expect_conv =
      let parse = function
        | "clean" -> Ok `Clean
        | "violation" -> Ok `Violation
        | s -> Error (`Msg (Printf.sprintf "unknown expectation %S" s))
      in
      Arg.conv
        ( parse,
          fun fmt e ->
            Format.pp_print_string fmt
              (match e with `Clean -> "clean" | `Violation -> "violation") )
    in
    let doc =
      "Fail (exit non-zero) unless the campaign ends as stated: $(b,clean) \
       (no trial violated) or $(b,violation) (at least one did).  Gives \
       CI a one-flag assertion for both sides of the resilience bound."
    in
    Arg.(
      value & opt (some expect_conv) None & info [ "expect" ] ~docv:"WHAT" ~doc)
  in
  let chaos family trials byz strategy medium out replay expect seed json
      trace =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let status = ref (`Ok ()) in
    let exp = "CHAOS-" ^ Chaos.Campaign.family_to_string family in
    (match replay with
    | Some path ->
      Exp_drivers.Common.with_report ~exp:"CHAOS-replay" ~seed (fun () ->
          match Exp_drivers.Exp_chaos.replay path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None ->
      Exp_drivers.Common.with_report ~exp ~seed (fun () ->
          let violations =
            Exp_drivers.Exp_chaos.run ~family ~medium ~byz ~strategy ~seed
              ~trials ~out
          in
          match (expect, violations) with
          | Some `Clean, _ :: _ ->
            status :=
              `Error
                ( false,
                  Printf.sprintf "expected a clean campaign, got %d violation(s)"
                    (List.length violations) )
          | Some `Violation, [] ->
            status :=
              `Error (false, "expected a violation, campaign ran clean")
          | _ -> ()));
    Exp_drivers.Common.close_trace ();
    !status
  in
  let doc =
    "Run a randomized chaos campaign (transient faults, mobile Byzantine \
     roams, link-chaos windows) against one register family, shrinking any \
     counterexample to a minimal replayable artifact."
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const chaos $ family_arg $ trials_arg $ byz_arg $ strategy_arg
       $ medium_arg $ out_arg $ replay_arg $ expect_arg $ seed_arg $ json_arg
       $ trace_out_arg))

let list_cmd =
  let list () =
    List.iter (fun (id, doc, _) -> Printf.printf "%-4s %s\n" id doc) all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const list $ const ())

let main =
  let doc =
    "Reproduction experiments for 'Stabilizing Server-Based Storage in \
     Byzantine Asynchronous Message-Passing Systems' (PODC 2015)."
  in
  Cmd.group
    (Cmd.info "stabreg-experiments" ~version:"1.0.0" ~doc)
    [ run_cmd; list_cmd; trace_cmd; validate_cmd; chaos_cmd ]

let () = exit (Cmd.eval main)
