(* stablint: every rule fires at the expected places on known-bad
   fixtures, suppressions are honored, the repo's own lint run is clean
   against the committed baseline, and the report artifact is
   deterministic and schema-valid. *)

open Util

let finding_list = Alcotest.(check (list (pair string int)))

let rule_lines (r : Lint.Driver.file_result) =
  List.map
    (fun (f : Lint.Finding.t) -> (f.Lint.Finding.rule, f.Lint.Finding.line))
    r.Lint.Driver.findings

let fixture ?(rules = Lint.Rules.all) ~display path =
  Lint.Driver.lint_file ~rules ~display ("lint_fixtures/" ^ path)

(* --- per-rule fixtures ----------------------------------------------- *)

let test_r1_fixture () =
  let r = fixture ~rules:[ Lint.Rules.r1 ] ~display:"lib/sim/r1_bad.ml"
      "tree/lib/sim/r1_bad.ml"
  in
  finding_list "R1 sites"
    [
      ("R1", 4); ("R1", 6); ("R1", 8); ("R1", 10); ("R1", 16); ("R1", 20);
      ("R1", 22); ("R1", 22);
    ]
    (rule_lines r);
  check_int "nothing suppressed" 0 r.Lint.Driver.suppressed

(* Wall-clock and real-time-wait identifiers, pinned line by line: a
   trace/profile module under lib/obs must not smuggle in real time.
   The injected-clock shape on the last line is the sanctioned escape
   hatch and must stay silent. *)
let test_r1_wallclock_fixture () =
  let r =
    fixture ~rules:[ Lint.Rules.r1 ] ~display:"lib/obs/profile_bad.ml"
      "r1_wallclock.ml"
  in
  finding_list "R1 wall-clock sites"
    [ ("R1", 4); ("R1", 6); ("R1", 8); ("R1", 10); ("R1", 12) ]
    (rule_lines r);
  check_int "nothing suppressed" 0 r.Lint.Driver.suppressed

let test_r2_fixture () =
  let r = fixture ~rules:[ Lint.Rules.r2 ]
      ~display:"lib/registers/r2_bad.ml" "tree/lib/registers/r2_bad.ml"
  in
  finding_list "R2 sites"
    [ ("R2", 5); ("R2", 7); ("R2", 9); ("R2", 11); ("R2", 13) ]
    (rule_lines r)

let test_r3_fixture () =
  let r = fixture ~rules:[ Lint.Rules.r3 ]
      ~display:"lib/registers/r3_bad.ml" "tree/lib/registers/r3_bad.ml"
  in
  finding_list "R3 sites" [ ("R3", 7); ("R3", 11) ] (rule_lines r)

let test_r4_fixture () =
  let r = fixture ~rules:[ Lint.Rules.r4 ]
      ~display:"lib/registers/r4_bad.ml" "tree/lib/registers/r4_bad.ml"
  in
  finding_list "R4 sites"
    [ ("R4", 4); ("R4", 6); ("R4", 8); ("R4", 10); ("R4", 16) ]
    (rule_lines r)

let test_scoping () =
  (* The same bad code outside a scoped library yields nothing. *)
  let r = fixture ~display:"bin/r1_bad.ml" "tree/lib/sim/r1_bad.ml" in
  finding_list "bin is out of R1 scope" [] (rule_lines r);
  let r = fixture ~display:"lib/kv/r2_bad.ml" "tree/lib/registers/r2_bad.ml" in
  finding_list "kv is out of R2 scope" [] (rule_lines r)

(* --- suppression ------------------------------------------------------ *)

let test_allow_attribute () =
  let r = fixture ~display:"lib/sim/allow_attr.ml" "allow_attr.ml" in
  finding_list "only the unsuppressed site" [ ("R1", 7) ] (rule_lines r);
  check_int "suppressed count" 3 r.Lint.Driver.suppressed

let test_allow_pragma () =
  let r = fixture ~display:"lib/sim/allow_pragma.ml" "allow_pragma.ml" in
  finding_list "pragma covers its line only" [ ("R1", 5) ] (rule_lines r);
  check_int "suppressed count" 1 r.Lint.Driver.suppressed

let test_file_allow () =
  let r = fixture ~display:"lib/sim/file_allow.ml" "file_allow.ml" in
  finding_list "other rules still fire" [ ("R4", 9) ] (rule_lines r);
  check_int "suppressed count" 2 r.Lint.Driver.suppressed

(* --- tree scan (R5 + aggregation) ------------------------------------ *)

let tree_scan () =
  Lint.Driver.scan ~root:"lint_fixtures/tree" ~paths:[ "lib" ] ()

let test_tree_scan () =
  let s = tree_scan () in
  check_int "files" 5 s.Lint.Driver.files_scanned;
  let by_rule id =
    List.length
      (List.filter
         (fun (f : Lint.Finding.t) -> String.equal f.Lint.Finding.rule id)
         s.Lint.Driver.findings)
  in
  check_int "R1" 8 (by_rule "R1");
  check_int "R2" 5 (by_rule "R2");
  check_int "R3" 2 (by_rule "R3");
  check_int "R4" 5 (by_rule "R4");
  check_int "R5" 1 (by_rule "R5");
  let r5 =
    List.find
      (fun (f : Lint.Finding.t) -> String.equal f.Lint.Finding.rule "R5")
      s.Lint.Driver.findings
  in
  Alcotest.(check string)
    "R5 points at the orphan" "lib/history/orphan.ml" r5.Lint.Finding.file

let test_parse_failure_is_a_finding () =
  let r =
    Lint.Driver.lint_source ~rules:Lint.Rules.all ~scope:(Lint.Rule.Lib "sim")
      ~file:"lib/sim/broken.ml" "let = ;;"
  in
  match r.Lint.Driver.findings with
  | [ f ] ->
    Alcotest.(check string) "rule" Lint.Driver.parse_rule_id f.Lint.Finding.rule
  | fs -> Alcotest.failf "expected one PARSE finding, got %d" (List.length fs)

(* --- report artifact -------------------------------------------------- *)

let report_of_scan s =
  Lint.Report.make ~paths:[ "lib" ]
    ~files_scanned:s.Lint.Driver.files_scanned
    ~suppressed:s.Lint.Driver.suppressed ~baseline:[] s.Lint.Driver.findings

let test_report_roundtrip_and_schema () =
  let rendered = Lint.Report.render (report_of_scan (tree_scan ())) in
  match Obs.Json.parse rendered with
  | Error e -> Alcotest.failf "report does not reparse: %s" e
  | Ok j -> (
    (match Lint.Report.validate j with
     | Ok () -> ()
     | Error e -> Alcotest.failf "report does not validate: %s" e);
    match Lint.Report.validate_any j with
    | Ok () -> ()
    | Error e -> Alcotest.failf "validate_any rejects a report: %s" e)

let test_report_deterministic () =
  let a = Lint.Report.render (report_of_scan (tree_scan ())) in
  let b = Lint.Report.render (report_of_scan (tree_scan ())) in
  Alcotest.(check string) "byte-identical across runs" a b

let test_validate_rejects_junk () =
  let bad = Obs.Json.Obj [ ("schema", Obs.Json.Str "stabreg/other/v1") ] in
  check_true "wrong schema rejected"
    (Result.is_error (Lint.Report.validate_any bad));
  check_true "missing fields rejected"
    (Result.is_error
       (Lint.Report.validate
          (Obs.Json.Obj
             [ ("schema", Obs.Json.Str Lint.Report.schema_version) ])))

let test_baseline_partition () =
  let s = tree_scan () in
  let baseline_json = Lint.Report.baseline_of_findings s.Lint.Driver.findings in
  (match Lint.Report.validate_baseline baseline_json with
   | Ok () -> ()
   | Error e -> Alcotest.failf "baseline does not validate: %s" e);
  let entries =
    match Lint.Report.baseline_entries baseline_json with
    | Ok e -> e
    | Error e -> Alcotest.failf "baseline reparse: %s" e
  in
  let report =
    Lint.Report.make ~paths:[ "lib" ]
      ~files_scanned:s.Lint.Driver.files_scanned
      ~suppressed:s.Lint.Driver.suppressed ~baseline:entries
      s.Lint.Driver.findings
  in
  check_int "everything baselined -> no new findings" 0
    (List.length report.Lint.Report.fresh);
  check_int "all findings accounted for"
    (List.length s.Lint.Driver.findings)
    (List.length report.Lint.Report.baselined);
  check_int "no stale entries" 0 report.Lint.Report.stale_baseline

(* --- the repo's own lint run ------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_self_lint_matches_baseline () =
  let s = Lint.Driver.scan ~root:".." ~paths:[ "lib"; "bin" ] () in
  check_true "scanned the real tree" (s.Lint.Driver.files_scanned > 60);
  let entries =
    match
      Result.bind
        (Obs.Json.parse (read_file "../lint-baseline.json"))
        Lint.Report.baseline_entries
    with
    | Ok e -> e
    | Error e -> Alcotest.failf "committed baseline unreadable: %s" e
  in
  let report =
    Lint.Report.make ~paths:[ "lib"; "bin" ]
      ~files_scanned:s.Lint.Driver.files_scanned
      ~suppressed:s.Lint.Driver.suppressed ~baseline:entries
      s.Lint.Driver.findings
  in
  (match report.Lint.Report.fresh with
   | [] -> ()
   | fs ->
     Alcotest.failf "lint findings outside the committed baseline:\n%s"
       (String.concat "\n" (List.map Lint.Finding.to_string fs)));
  check_int "no stale baseline entries" 0 report.Lint.Report.stale_baseline

let tests =
  [
    case "R1 no-nondeterminism fixture" test_r1_fixture;
    case "R1 wall-clock fixture (trace modules)" test_r1_wallclock_fixture;
    case "R2 no-polymorphic-compare fixture" test_r2_fixture;
    case "R3 no-wildcard-message-match fixture" test_r3_fixture;
    case "R4 no-partial-functions fixture" test_r4_fixture;
    case "rules are library-scoped" test_scoping;
    case "[@@lint.allow] suppresses" test_allow_attribute;
    case "line pragma suppresses" test_allow_pragma;
    case "[@@@lint.allow] covers the file" test_file_allow;
    case "tree scan incl. mli coverage" test_tree_scan;
    case "parse failure is a finding" test_parse_failure_is_a_finding;
    case "report reparses and validates" test_report_roundtrip_and_schema;
    case "report is deterministic" test_report_deterministic;
    case "validator rejects junk" test_validate_rejects_junk;
    case "baseline accepts and partitions" test_baseline_partition;
    case "self-lint matches committed baseline" test_self_lint_matches_baseline;
  ]
