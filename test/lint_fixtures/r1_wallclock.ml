(* Fixture: wall-clock reads and real-time waits R1 must flag in
   trace/profile modules, plus the sanctioned injected-clock shape it
   must not.  Never compiled — only parsed. *)
let cpu_split () = Unix.times ()

let nap () = Unix.sleep 1

let napf () = Unix.sleepf 0.5

let wait fd = Unix.select [ fd ] [] [] 0.25

let stamp () = Unix.gettimeofday ()

let injected ?(clock = fun () -> 0.) () = clock ()
