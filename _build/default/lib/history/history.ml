type kind = Write | Read

type op = {
  proc : string;
  kind : kind;
  inv : Sim.Vtime.t;
  resp : Sim.Vtime.t;
  value : Registers.Value.t;
  ok : bool;
  ts : (Registers.Epoch.t * int * int) option;
}

type t = { mutable ops_rev : op list; mutable count : int }

let create () = { ops_rev = []; count = 0 }

let record t ~proc ~kind ~inv ~resp ?ts ?(ok = true) value =
  t.ops_rev <- { proc; kind; inv; resp; value; ok; ts } :: t.ops_rev;
  t.count <- t.count + 1

let ops t =
  (* rev gives recording order; stable sort keeps it for equal times. *)
  List.stable_sort
    (fun a b -> Sim.Vtime.compare a.inv b.inv)
    (List.rev t.ops_rev)

let writes t = List.filter (fun o -> o.kind = Write) (ops t)

let reads t = List.filter (fun o -> o.kind = Read) (ops t)

let length t = t.count

(* In the discrete-time recorder, an operation responding at the same
   instant another is invoked precedes it (the response event fired first),
   so touching endpoints are sequential, not concurrent. *)
let overlap a b =
  not (Sim.Vtime.( <= ) a.resp b.inv || Sim.Vtime.( <= ) b.resp a.inv)

let pp_op ppf o =
  Format.fprintf ppf "%s %s[%d,%d] %a%s" o.proc
    (match o.kind with Write -> "W" | Read -> "R")
    (Sim.Vtime.to_int o.inv) (Sim.Vtime.to_int o.resp) Registers.Value.pp
    o.value
    (if o.ok then "" else " (budget-exhausted)")
