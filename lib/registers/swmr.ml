type writer = { copies : Swsr_atomic.writer array; probe : Instr.probe }

type reader = { sr : Swsr_atomic.reader; probe : Instr.probe }

let writer ~net ~client_id ~base_inst ~readers ?(modulus = Seqnum.default_modulus)
    () =
  if readers <= 0 then invalid_arg "Swmr.writer: need at least one reader";
  {
    copies =
      Array.init readers (fun j ->
          Swsr_atomic.writer ~net ~client_id ~inst:(base_inst + j) ~modulus ());
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swmr" `Write;
  }

let reader ~net ~client_id ~base_inst ~reader_index
    ?(modulus = Seqnum.default_modulus) () =
  {
    sr =
      Swsr_atomic.reader ~net ~client_id ~inst:(base_inst + reader_index)
        ~modulus ();
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swmr" `Read;
  }

let write_o ?parent (w : writer) v =
  let span = Instr.start ?parent w.probe in
  let ctx = Instr.ctx span in
  (* The composite write is as healthy as its least healthy copy. *)
  let outcome =
    Array.fold_left
      (fun acc c -> Outcome.worse acc (Swsr_atomic.write_o ~parent:ctx c v))
      (Outcome.Ok ()) w.copies
  in
  Instr.finish ~ok:(Outcome.is_ok outcome) w.probe span;
  outcome

let write ?parent (w : writer) v = ignore (write_o ?parent w v)

let read_o ?parent ?max_iterations (r : reader) =
  let span = Instr.start ?parent r.probe in
  let result =
    Swsr_atomic.read_o ~parent:(Instr.ctx span) ?max_iterations r.sr
  in
  Instr.finish ~ok:(Outcome.is_ok result) r.probe span;
  result

let read ?parent ?max_iterations (r : reader) =
  Outcome.to_option (read_o ?parent ?max_iterations r)

let copies w = w.copies

let sr_reader r = r.sr
