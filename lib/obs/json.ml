type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    let s = Printf.sprintf "%.17g" x in
    (* A bare integral rendering would round-trip as Int; force a float
       marker so the tree survives print/parse unchanged. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* Indented rendering, for files meant to be read and diffed by humans. *)
let to_string_pretty j =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as atom -> write buf atom
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf ": ";
          go (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* Only the Latin-1 range is produced by our own writer. *)
               if code < 0x100 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_char buf '?';
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape %C" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let to_obj_opt = function Obj fields -> Some fields | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _ | Obj _), _ -> false

let pp ppf j = Format.pp_print_string ppf (to_string j)
