type endpoint = { mutable on_deliver : Messages.server_envelope -> unit }

type medium =
  | Reliable_fifo
  | Stabilizing of { loss : float; dup : float; retrans : int }

type port_transport =
  | Direct
  | Lossy of {
      to_servers : Messages.server_envelope Ss_transport.t array;
      reply_senders : Messages.client_envelope Ss_transport.t array;
    }

type client_port = {
  client_id : int;
  mailbox : Messages.client_envelope Sim.Mailbox.t;
  to_servers : Messages.server_envelope Sim.Link.t array;
  from_servers : Messages.client_envelope Sim.Link.t array;
  mutable round : int;
  transport : port_transport;
  health : Health.t;
  retry_rng : Sim.Rng.t;
}

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  medium : medium;
  endpoints : endpoint array;
  mutable correct : int -> bool;
  mutable ports : (int * client_port) list;
  link_delay : Sim.Rng.t -> Sim.Link.sampler;
  (* Per-message-class traffic accounting, indexed by
     [Obs.Event.class_index]; the refs are resolved once here so the send
     path never hashes a counter name. *)
  sent_count : int ref array;
  sent_bytes : int ref array;
  recv_count : int ref array;
}

let per_class_counters metrics ~dir ~suffix =
  Obs.Event.all_classes
  |> List.map (fun c ->
         Obs.Metrics.counter_ref metrics
           (Printf.sprintf "msg.%s.%s.%s" dir (Obs.Event.class_name c) suffix))
  |> Array.of_list

let create ~engine ~params ?(medium = Reliable_fifo) ~link_delay () =
  let n = (params : Params.t).n in
  let metrics = Sim.Engine.metrics engine in
  {
    engine;
    params;
    medium;
    endpoints = Array.init n (fun _ -> { on_deliver = (fun _ -> ()) });
    correct = (fun _ -> true);
    ports = [];
    link_delay;
    sent_count = per_class_counters metrics ~dir:"sent" ~suffix:"count";
    sent_bytes = per_class_counters metrics ~dir:"sent" ~suffix:"bytes";
    recv_count = per_class_counters metrics ~dir:"recv" ~suffix:"count";
  }

let record_send t ~src ~dst ~span cls bytes =
  let i = Obs.Event.class_index cls in
  incr t.sent_count.(i);
  (t.sent_bytes.(i) := !(t.sent_bytes.(i)) + bytes);
  let hub = Sim.Engine.hub t.engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Send
         {
           time = Sim.Vtime.to_int (Sim.Engine.now t.engine);
           src;
           dst;
           cls;
           bytes;
           span;
         })

let record_recv t ~src ~dst ~span cls bytes =
  incr t.recv_count.(Obs.Event.class_index cls);
  let hub = Sim.Engine.hub t.engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Recv
         {
           time = Sim.Vtime.to_int (Sim.Engine.now t.engine);
           src;
           dst;
           cls;
           bytes;
           span;
         })

let engine t = t.engine

let params t = t.params

let endpoints t = t.endpoints

let set_correct t f = t.correct <- f

let is_correct t i = t.correct i

let round_modulus = 1 lsl 30

let add_client t ~id =
  match List.assoc_opt id t.ports with
  | Some port -> port
  | None ->
    let n = t.params.Params.n in
    let mailbox = Sim.Mailbox.create () in
    let health = Health.create ~n () in
    (* The backoff-jitter stream is seeded from the retry policy and the
       client id, NOT split off the engine's generator: splitting here
       would shift every later split (link samplers, fault draws) and
       silently invalidate all committed seeded artifacts. *)
    let retry_rng =
      let seed =
        match t.params.Params.retry with
        | Some r -> r.Params.jitter_seed
        | None -> 0
      in
      Sim.Rng.create (seed + (1_000_003 * id))
    in
    let mk_sampler () = t.link_delay (Sim.Rng.split (Sim.Engine.rng t.engine)) in
    let port =
      match t.medium with
      | Reliable_fifo ->
        let to_servers =
          Array.init n (fun s ->
              Sim.Link.create ~engine:t.engine ~delay:(mk_sampler ())
                ~name:(Printf.sprintf "c%d->s%d" id s)
                ~deliver:(fun env -> t.endpoints.(s).on_deliver env))
        in
        let from_servers =
          Array.init n (fun s ->
              Sim.Link.create ~engine:t.engine ~delay:(mk_sampler ())
                ~name:(Printf.sprintf "s%d->c%d" s id)
                ~deliver:(fun env ->
                  record_recv t
                    ~src:(Obs.Event.Server env.Messages.server)
                    ~dst:(Obs.Event.Client id)
                    ~span:env.Messages.span
                    (Messages.class_of_to_client env.Messages.body)
                    (Messages.client_envelope_bytes env);
                  Sim.Mailbox.push mailbox env))
        in
        {
          client_id = id;
          mailbox;
          to_servers;
          from_servers;
          round = 0;
          transport = Direct;
          health;
          retry_rng;
        }
      | Stabilizing { loss; dup; retrans } ->
        let rng () = Sim.Rng.split (Sim.Engine.rng t.engine) in
        let to_servers =
          Array.init n (fun s ->
              Ss_transport.create ~engine:t.engine ~rng:(rng ())
                ~delay:(mk_sampler ()) ~loss ~dup ~retrans
                ~classify:(fun (env : Messages.server_envelope) ->
                  Messages.class_of_to_server env.body)
                ~name:(Printf.sprintf "c%d=>s%d" id s)
                ~deliver:(fun env -> t.endpoints.(s).on_deliver env)
                ())
        in
        let reply_senders =
          Array.init n (fun s ->
              Ss_transport.create ~engine:t.engine ~rng:(rng ())
                ~delay:(mk_sampler ()) ~loss ~dup ~retrans
                ~classify:(fun (env : Messages.client_envelope) ->
                  Messages.class_of_to_client env.body)
                ~name:(Printf.sprintf "s%d=>c%d" s id)
                ~deliver:(fun env ->
                  record_recv t
                    ~src:(Obs.Event.Server env.Messages.server)
                    ~dst:(Obs.Event.Client id)
                    ~span:env.Messages.span
                    (Messages.class_of_to_client env.Messages.body)
                    (Messages.client_envelope_bytes env);
                  Sim.Mailbox.push mailbox env)
                ())
        in
        {
          client_id = id;
          mailbox;
          to_servers = [||];
          from_servers = [||];
          round = 0;
          transport = Lossy { to_servers; reply_senders };
          health;
          retry_rng;
        }
    in
    t.ports <- (id, port) :: t.ports;
    port

let client_ports t =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) t.ports

let reply ?(parent = Obs.Trace_ctx.none) t ~server ~client body ~round =
  match List.assoc_opt client t.ports with
  | None -> ()
  | Some port -> (
    (* The acknowledgment is a new causal node under the broadcast round
       it answers (or a fresh root for unsolicited Byzantine chatter). *)
    let span = Obs.Trace_ctx.child (Sim.Engine.spans t.engine) parent in
    let env = { Messages.round; server; body; span } in
    record_send t
      ~src:(Obs.Event.Server server)
      ~dst:(Obs.Event.Client client)
      ~span
      (Messages.class_of_to_client body)
      (Messages.client_envelope_bytes env);
    match port.transport with
    | Direct -> Sim.Link.send port.from_servers.(server) env
    | Lossy { reply_senders; _ } ->
      Ss_transport.send reply_senders.(server) env)

let install_honest_server t srv =
  let s = Server.id srv in
  t.endpoints.(s).on_deliver <-
    (fun env ->
      record_recv t
        ~src:(Obs.Event.Client env.Messages.client)
        ~dst:(Obs.Event.Server s)
        ~span:env.Messages.span
        (Messages.class_of_to_server env.Messages.body)
        (Messages.server_envelope_bytes env);
      Sim.Trace.emit_lazy
        (Sim.Engine.trace t.engine)
        ~time:(Sim.Engine.now t.engine) ~tag:"ss-deliver" (fun () ->
          Format.asprintf "s%d <- c%d (round %d, inst %d): %a" s
            env.Messages.client env.Messages.round env.Messages.inst
            Messages.pp_to_server env.Messages.body);
      let hub = Sim.Engine.hub t.engine in
      if Obs.Hub.active hub then
        Obs.Hub.emit hub
          (Obs.Event.Phase
             {
               time = Sim.Vtime.to_int (Sim.Engine.now t.engine);
               server = s;
               phase =
                 "handle."
                 ^ Obs.Event.class_name
                     (Messages.class_of_to_server env.Messages.body);
               span = env.Messages.span;
             });
      match Server.handle srv env with
      | None -> ()
      | Some body ->
        Sim.Trace.emit_lazy
          (Sim.Engine.trace t.engine)
          ~time:(Sim.Engine.now t.engine) ~tag:"ack" (fun () ->
            Format.asprintf "s%d -> c%d: %a" s env.Messages.client
              Messages.pp_to_client body);
        reply ~parent:env.Messages.span t ~server:s ~client:env.Messages.client
          body ~round:env.Messages.round)

let ss_broadcast ?(span = Obs.Trace_ctx.none) t port ~inst body =
  Sim.Trace.incr (Sim.Engine.trace t.engine) "ss.broadcasts";
  port.round <- (port.round + 1) mod round_modulus;
  Sim.Trace.emit_lazy
    (Sim.Engine.trace t.engine)
    ~time:(Sim.Engine.now t.engine) ~tag:"ss-broadcast" (fun () ->
      Format.asprintf "c%d (round %d, inst %d): %a" port.client_id port.round
        inst Messages.pp_to_server body);
  (* One child span per broadcast round: every copy of the message, each
     server's handling of it and each acknowledgment hang off it. *)
  let bspan = Obs.Trace_ctx.child (Sim.Engine.spans t.engine) span in
  let env =
    {
      Messages.round = port.round;
      client = port.client_id;
      inst;
      body;
      span = bspan;
    }
  in
  let cls = Messages.class_of_to_server body in
  let env_bytes = Messages.server_envelope_bytes env in
  for s = 0 to t.params.Params.n - 1 do
    record_send t
      ~src:(Obs.Event.Client port.client_id)
      ~dst:(Obs.Event.Server s) ~span:bspan cls env_bytes
  done;
  (* Synchronized delivery: the invocation spans the first (n - 2t) correct
     deliveries.  If the adversary corrupts more than t servers (tightness
     experiments), fall back to the last correct delivery so the broadcast
     still terminates. *)
  let quorum = t.params.Params.n - (2 * t.params.Params.f) in
  let correct_total =
    let c = ref 0 in
    for s = 0 to t.params.Params.n - 1 do
      if t.correct s then incr c
    done;
    !c
  in
  let target = min quorum correct_total in
  (* Both transports count actual delivery callbacks rather than
     precomputing arrival instants: the synchronized-delivery property must
     hold under *any* admissible firing order (the model checker reorders
     deliveries across links), not just the heap order of a fresh run. *)
  (match port.transport with
  | Direct ->
    Sim.Fiber.suspend ~label:"Net.ss_broadcast" (fun resume ->
        let confirmed = ref 0 in
        let resumed = ref false in
        let maybe_resume () =
          if (not !resumed) && !confirmed >= target then begin
            resumed := true;
            resume ()
          end
        in
        Array.iteri
          (fun s link ->
            let was_correct = t.correct s in
            ignore
              (Sim.Link.send_timed link
                 ~on_delivered:(fun () ->
                   if was_correct then begin
                     incr confirmed;
                     maybe_resume ()
                   end)
                 env))
          port.to_servers;
        if target = 0 then
          Sim.Engine.schedule t.engine ~delay:0 (fun () ->
              if not !resumed then begin
                resumed := true;
                resume ()
              end))
  | Lossy { to_servers; _ } ->
    Sim.Fiber.suspend ~label:"Net.ss_broadcast" (fun resume ->
        let confirmed = ref 0 in
        let resumed = ref false in
        let maybe_resume () =
          if (not !resumed) && !confirmed >= target then begin
            resumed := true;
            resume ()
          end
        in
        Array.iteri
          (fun s sender ->
            let was_correct = t.correct s in
            Ss_transport.send sender
              ~on_delivered:(fun () ->
                if was_correct then begin
                  incr confirmed;
                  maybe_resume ()
                end)
              env)
          to_servers;
        if target = 0 then
          Sim.Engine.schedule t.engine ~delay:0 (fun () ->
              if not !resumed then begin
                resumed := true;
                resume ()
              end)));
  env.Messages.round

type chaos_dir = [ `To_servers | `From_servers | `Both ]

let set_port_chaos port ?(dir = `Both) ?server ~loss ~dup () =
  match port.transport with
  | Direct -> 0
  | Lossy { to_servers; reply_senders } ->
    let touched = ref 0 in
    let apply arr =
      Array.iteri
        (fun s tr ->
          match server with
          | Some k when k <> s -> ()
          | Some _ | None ->
            Ss_transport.set_loss tr loss;
            Ss_transport.set_dup tr dup;
            incr touched)
        arr
    in
    (match dir with
    | `To_servers -> apply to_servers
    | `From_servers -> apply reply_senders
    | `Both ->
      apply to_servers;
      apply reply_senders);
    !touched

let corrupt_transport port rng =
  match port.transport with
  | Direct -> ()
  | Lossy { to_servers; reply_senders } ->
    Array.iter (fun s -> Ss_transport.corrupt s rng) to_servers;
    Array.iter (fun s -> Ss_transport.corrupt s rng) reply_senders
