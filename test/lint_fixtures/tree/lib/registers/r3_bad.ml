(* Fixture: wildcard catch-alls in matches over message constructors. *)

let handle m =
  match m with
  | Messages.Write _ -> 1
  | Messages.New_help _ -> 2
  | _ -> 0

let classify = function
  | Obs.Event.Drop -> 0
  | Obs.Event.Send _ | _ -> 1

let total m =
  match m with
  | Messages.Write _ -> `W
  | Messages.New_help _ -> `H
  | Messages.Read _ -> `R

let not_messages s = match s with "liveness" -> 1 | _ -> 0

let exn_ok m =
  match Messages.parse m with
  | Messages.Write _ -> 1
  | Messages.New_help _ -> 2
  | Messages.Read _ -> 3
  | exception _ -> 0
