(* E2 — Stabilization after a full transient fault (Theorems 1 and 3).

   Corrupt every registered target (server cells, helping values, client
   round tags, in-flight link contents, the writer's wsn, the reader's
   (pwsn, pv)) mid-workload; measure how many reads return arbitrary values
   before the register stabilizes, and the stabilization delay in virtual
   time, as functions of n. *)

open Registers

let run_one ~seed ~n ~f =
  let params = Common.async_params ~n ~f in
  let scn = Common.scenario ~seed ~params () in
  let w, r = Common.atomic_pair scn in
  Harness.Scenario.register_port scn (Swsr_atomic.writer_port w);
  Harness.Scenario.register_port scn (Swsr_atomic.reader_port r);
  Harness.Scenario.register_atomic_writer scn ~name:"w" w;
  Harness.Scenario.register_atomic_reader scn ~name:"r" r;
  let fault_at = 500 in
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine
    ~at:(Sim.Vtime.of_int fault_at) ~prefix:"";
  Common.run_jobs scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_atomic.write w)
            ~count:80 ~gap:(Harness.Workload.gap 0 10) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_atomic.read r)
            ~count:80 ~gap:(Harness.Workload.gap 0 10) () );
    ];
  let h = scn.Harness.Scenario.history in
  let writes = Oracles.History.writes h in
  let post_fault_reads =
    Oracles.History.reads h
    |> List.filter (fun (o : Oracles.History.op) ->
           Sim.Vtime.to_int o.inv >= fault_at)
  in
  (* A read is valid if it satisfies the regular condition. *)
  let valid (o : Oracles.History.op) =
    let tmp = Oracles.History.create () in
    List.iter
      (fun (wr : Oracles.History.op) ->
        Oracles.History.record tmp ~proc:wr.proc ~kind:wr.kind ~inv:wr.inv
          ~resp:wr.resp wr.value)
      writes;
    Oracles.History.record tmp ~proc:o.proc ~kind:o.kind ~inv:o.inv
      ~resp:o.resp ~ok:o.ok o.value;
    Oracles.Regularity.is_clean (Oracles.Regularity.check ~cutoff:o.inv tmp)
  in
  let arbitrary = List.filter (fun o -> not (valid o)) post_fault_reads in
  let stab_time =
    match List.rev arbitrary with
    | last_bad :: _ ->
      Sim.Vtime.to_int last_bad.Oracles.History.resp - fault_at
    | [] -> 0
  in
  if Common.first_observation () then begin
    Common.observe_scn scn;
    Common.set_stabilization stab_time
  end;
  (List.length arbitrary, List.length post_fault_reads, stab_time)

(* A deterministic exhibition of the pre-stabilization window: all servers
   rebooted into the SAME corrupt state (so the junk actually has a
   quorum), reader bookkeeping corrupted too.  The first read returns the
   junk — the arbitrary value the definition of eventual regularity
   permits — and the first write flips the system back. *)
let consistent_corruption_timeline ~seed =
  let params = Common.async_params ~n:9 ~f:1 in
  let scn = Common.scenario ~seed ~params () in
  let w, r = Common.atomic_pair scn in
  let junk = Value.str "corrupt-state" in
  let before = ref None and after = ref None and later = ref None in
  Common.run_jobs scn
    [
      ( "timeline",
        fun () ->
          Swsr_atomic.write w (Value.int 1);
          (* transient fault: every server agrees on junk; reader state
             scrambled *)
          Array.iter
            (fun srv ->
              let i = Registers.Server.instance srv 0 in
              i.Registers.Server.last_val <- { Messages.sn = 12345; v = junk };
              i.Registers.Server.helping <- None)
            (Byzantine.Adversary.servers scn.Harness.Scenario.adversary);
          Swsr_atomic.corrupt_reader r (Harness.Scenario.split_rng scn);
          before := Swsr_atomic.read r;
          Swsr_atomic.write w (Value.int 2);
          after := Swsr_atomic.read r;
          Swsr_atomic.write w (Value.int 3);
          later := Swsr_atomic.read r );
    ];
  (!before, !after, !later, junk)

let run ~seed =
  Harness.Report.section
    "E2: stabilization after a full transient fault (Thm 1/3)";
  let before, after, later, _junk = consistent_corruption_timeline ~seed in
  Harness.Report.table
    ~title:"deterministic timeline: servers rebooted into an agreed junk state"
    ~header:[ "event"; "read returns"; "comment" ]
    [
      [ "after fault, before any write"; Common.value_str before;
        (let legit = List.map Value.int [ 1; 2; 3 ] in
         match before with
         | Some v when not (List.exists (Value.equal v) legit) ->
           "an arbitrary value (allowed pre-stabilization)"
         | Some _ -> "happened to be a written value"
         | None -> "did not return");
      ];
      [ "after first post-fault write"; Common.value_str after;
        "stabilized (Thm 1/3)" ];
      [ "after second write"; Common.value_str later; "stays correct" ];
    ];
  let rows =
    List.map
      (fun (n, f) ->
        let arb = ref 0 and tot = ref 0 and delay_max = ref 0 in
        let seeds = 5 in
        for s = 0 to seeds - 1 do
          let a, t, d = run_one ~seed:(seed + s) ~n ~f in
          arb := !arb + a;
          tot := !tot + t;
          delay_max := max !delay_max d
        done;
        [
          string_of_int n;
          string_of_int f;
          Harness.Report.pct !arb !tot;
          string_of_int !delay_max;
        ])
      [ (9, 1); (17, 2); (25, 3) ]
  in
  Harness.Report.table
    ~title:
      "full corruption at t=500; post-fault reads returning arbitrary values"
    ~header:[ "n"; "t"; "arbitrary post-fault reads"; "max stab delay (ticks)" ]
    rows;
  print_endline
    "  Paper claim: finitely many arbitrary reads, then eventual\n\
    \  regularity/atomicity once the first post-fault write lands."
