lib/registers/value.mli: Epoch Format Sim
