(** The [stabreg/trace/v1] artifact: schema, validation and causal-tree
    reconstruction.

    A trace file is JSONL: a header line
    [{"schema":"stabreg/trace/v1","experiment":...,"seed":...}] followed
    by one {!Event.to_json} object per line.  All timestamps are virtual
    clock ticks and all span ids come from the run's deterministic
    allocator, so two runs with the same seed produce byte-identical
    files. *)

val schema_version : string

val header : experiment:string -> seed:int -> Json.t
(** The header object for the first line of a trace file. *)

val validate_header : Json.t -> (unit, string) result

val validate_event : Json.t -> (unit, string) result
(** Check one event object against the per-kind field schema. *)

val validate : string -> (unit, string) result
(** Validate a whole trace file's contents (header line + every event
    line); errors carry 1-based line numbers. *)

(** {2 Causal trees}

    Reconstruction works on typed events (from a memory sink or a parsed
    file).  A {!tree} node is one span; its [events] are the events
    stamped with that span in emission order, its [children] the spans
    allocated under it, in allocation order. *)

type tree = {
  span : int;
  parent : int;
  trace : int;
  events : Event.t list;
  children : tree list;
}

val trees : Event.t list -> tree list
(** All causal trees in a run, ordered by root span id.  Events with no
    span ({!Trace_ctx.none}) are dropped; spans whose parent was never
    observed become roots themselves. *)

val tree_for : Event.t list -> trace:int -> tree option

val span_interval : tree -> int * int
(** [(first, last)] event time over the node and all descendants. *)

val span_label : tree -> string
(** Short human-readable label derived from the node's first event
    (["op swsr_regular.read by c101"], ["round READ"], ...). *)

val describe_event : Event.t -> string

val pp_tree : Format.formatter -> tree -> unit
(** Indented rendering of the whole causal tree, one line per event. *)

val breakdown : tree -> (string * int * int) list
(** Per-phase latency rows [(label, start, finish)]: the whole operation
    first, then one row per direct child span (broadcast rounds,
    replies). *)

val pp_breakdown : Format.formatter -> (string * int * int) list -> unit
