(** System parameters and the paper's quorum thresholds.

    The asynchronous constructions (Figs. 2 and 3) require [n >= 8t + 1];
    the synchronous ones (Fig. 5 and the §4 remark) require [n >= 3t + 1].
    The reader/writer thresholds differ accordingly:

    {v
                          asynchronous (t < n/8)   synchronous (t < n/3)
    acks awaited                n - t              n  (or timeout)
    last_val / helping quorum   2t + 1             t + 1
    writer help-refresh check   4t + 1             t + 1
    v} *)

type mode =
  | Async
  | Sync of { max_delay : int; slack : int }
      (** [max_delay] is the known bound (in ticks) on message transfer
          delays of links touching correct processes; waits time out after
          a round trip plus [slack]. *)

type t = private { n : int; f : int; mode : mode }
(** [n] servers of which at most [f] are Byzantine (the paper's [t];
    renamed to avoid clashing with the conventional type name [t]). *)

val create : n:int -> f:int -> mode:mode -> (t, string) result
(** Validates the resilience bound for the mode. *)

val create_exn : n:int -> f:int -> mode:mode -> t

val create_unchecked : n:int -> f:int -> mode:mode -> t
(** Skip the resilience validation — used by the tightness experiments that
    deliberately run the algorithms outside their assumptions. *)

val satisfies_bound : t -> bool
(** [n >= 8f+1] (async) resp. [n >= 3f+1] (sync). *)

val ack_wait : t -> int
(** How many acknowledgments a client waits for: [n - f] async, [n] sync
    (with timeout). *)

val read_quorum : t -> int
(** Matching-value threshold at the reader (lines 12/14): [2f+1] async,
    [f+1] sync. *)

val help_refresh_threshold : t -> int
(** Writer's line-03 threshold for skipping NEW_HELP_VAL: [4f+1] async,
    [f+1] sync. *)

val sync_timeout : t -> Sim.Vtime.span option
(** Round-trip timeout in sync mode; [None] in async mode. *)

val pp : Format.formatter -> t -> unit
