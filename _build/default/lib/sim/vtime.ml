type t = int

type span = int

let zero = 0

let of_int ticks =
  if ticks < 0 then invalid_arg "Vtime.of_int: negative time";
  ticks

let to_int t = t

let add t d = t + d

let diff later earlier = later - earlier

let compare = Int.compare

let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b

let ( < ) (a : t) (b : t) = Stdlib.( < ) a b

let max (a : t) (b : t) = Stdlib.max a b

let pp ppf t = Format.fprintf ppf "t=%d" t
