test/test_epoch.ml: Alcotest Epoch Format Hashtbl Int List QCheck Registers Sim Util
