bin/exp_e10.ml: Byzantine Common Harness List Registers Swsr_atomic Value
