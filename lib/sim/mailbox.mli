(** Single-consumer message queue connecting the network to a client fiber.

    Deliveries {!push} messages; the owning fiber blocks on {!recv} (pure
    asynchrony) or {!recv_until} (the synchronous-links model of Section 3.3
    of the paper, where the client waits for a round trip or a timeout).
    At most one fiber may wait on a mailbox at a time. *)

type 'm t

val create : unit -> 'm t

val push : 'm t -> 'm -> unit
(** Enqueue a message, waking the waiting fiber if there is one. *)

val recv : 'm t -> 'm
(** Block the calling fiber until a message is available, then dequeue it. *)

val recv_until : engine:Engine.t -> deadline:Vtime.t -> 'm t -> 'm option
(** Like {!recv} but gives up at [deadline], returning [None].  A message
    arriving strictly after the deadline event fires is left queued. *)

val drain : 'm t -> 'm list
(** Dequeue everything currently queued, without blocking. *)

val to_list : 'm t -> 'm list
(** Everything currently queued, oldest first, without dequeuing — for
    state fingerprinting by the model checker. *)

val length : 'm t -> int
