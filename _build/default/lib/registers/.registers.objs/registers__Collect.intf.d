lib/registers/collect.mli: Messages Net
