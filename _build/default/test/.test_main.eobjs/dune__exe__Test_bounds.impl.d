test/test_bounds.ml: Byzantine Harness List Messages Params Printf Registers Swsr_regular Util Value
