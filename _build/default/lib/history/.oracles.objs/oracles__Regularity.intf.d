lib/history/regularity.mli: Format History Registers Sim
