type event = { time : Vtime.t; tag : string; detail : string }

type t = {
  record_events : bool;
  mutable events_rev : event list;
  metrics : Obs.Metrics.t;
  hub : Obs.Hub.t;
  spans : Obs.Trace_ctx.t;
}

let create ?(record_events = true) ?metrics ?hub () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let hub = match hub with Some h -> h | None -> Obs.Hub.create () in
  { record_events; events_rev = []; metrics; hub; spans = Obs.Trace_ctx.create () }

let metrics t = t.metrics

let hub t = t.hub

let spans t = t.spans

let emit t ~time ~tag detail =
  if t.record_events then t.events_rev <- { time; tag; detail } :: t.events_rev

let emit_lazy t ~time ~tag detail =
  if t.record_events then
    t.events_rev <- { time; tag; detail = detail () } :: t.events_rev

let recording t = t.record_events

let events t = List.rev t.events_rev

let events_tagged t tag =
  List.filter (fun e -> String.equal e.tag tag) (events t)

let add t name n = Obs.Metrics.add t.metrics name n

let incr t name = Obs.Metrics.incr t.metrics name

let counter t name = Obs.Metrics.counter t.metrics name

let counters t = Obs.Metrics.counters t.metrics

let reset_counters t = Obs.Metrics.reset_counters t.metrics

let pp_event ppf e =
  Format.fprintf ppf "[%a] %s: %s" Vtime.pp e.time e.tag e.detail
