examples/scoreboard.mli:
