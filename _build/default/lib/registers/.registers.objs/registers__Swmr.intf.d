lib/registers/swmr.mli: Net Swsr_atomic Value
