(* Shared wiring for the experiment drivers. *)

open Registers

let async_params ~n ~f = Params.create_unchecked ~n ~f ~mode:Params.Async ()

(* --- run reports and trace sinks (--json / --trace-out) --- *)

let json_dir : string option ref = ref None

let trace_out : string option ref = ref None

let current_report : Obs.Report.t option ref = ref None

(* Drivers sweep many configurations; the report captures the first one
   observed (the headline deployment), so repeated observe calls within
   one driver are no-ops. *)
let observed = ref false

let trace_channel : out_channel option ref = ref None

(* Header metadata for the stabreg/trace/v1 artifact; set by [with_report]
   before any sink opens the file. *)
let trace_meta : (string * int) ref = ref ("unknown", 0)

let attach_trace_sink hub =
  match !trace_out with
  | None -> ()
  | Some path ->
    let oc =
      match !trace_channel with
      | Some oc -> oc
      | None ->
        let parent = Filename.dirname path in
        if parent <> "" && parent <> "." then Obs.Report.mkdir_p parent;
        let oc = open_out path in
        let experiment, seed = !trace_meta in
        output_string oc
          (Obs.Json.to_string (Obs.Tracefile.header ~experiment ~seed));
        output_char oc '\n';
        trace_channel := Some oc;
        oc
    in
    Obs.Hub.attach hub
      (Obs.Sink.jsonl
         ~flush:(fun () -> flush oc)
         (fun line -> output_string oc line))

let close_trace () =
  match !trace_channel with
  | Some oc ->
    close_out oc;
    trace_channel := None
  | None -> ()

let report () = !current_report

let first_observation () = !current_report <> None && not !observed

let observe_scn scn =
  match !current_report with
  | Some r when not !observed ->
    observed := true;
    Harness.Run_report.observe r scn
  | Some _ | None -> ()

let observe_trace ?params trace =
  match !current_report with
  | Some r when not !observed ->
    observed := true;
    (match params with
    | Some p -> Harness.Run_report.observe_params r p
    | None -> ());
    Harness.Run_report.observe_trace r trace
  | Some _ | None -> ()

let observe_metrics ?params metrics =
  match !current_report with
  | Some r when not !observed ->
    observed := true;
    (match params with
    | Some p -> Harness.Run_report.observe_params r p
    | None -> ());
    Harness.Run_report.observe_metrics r metrics
  | Some _ | None -> ()

let set_stabilization ticks =
  match !current_report with
  | Some r -> Obs.Report.set_stabilization r ticks
  | None -> ()

let add_extra key v =
  match !current_report with
  | Some r -> Obs.Report.add_extra r key v
  | None -> ()

let with_report ~exp ~seed f =
  let r = Obs.Report.create ~experiment:exp ~seed in
  current_report := Some r;
  observed := false;
  if !trace_channel = None then trace_meta := (exp, seed);
  Fun.protect
    ~finally:(fun () -> current_report := None)
    (fun () ->
      f ();
      match !json_dir with
      | Some dir ->
        let path = Obs.Report.write ~dir r in
        Printf.printf "\n[%s] report written to %s\n" exp path
      | None -> ())

(* Write a flight-recorder profile to an explicit file path (unlike
   [Obs.Profile.write], which derives the name). *)
let write_profile path r =
  let parent = Filename.dirname path in
  if parent <> "" && parent <> "." then Obs.Report.mkdir_p parent;
  let oc = open_out path in
  output_string oc (Obs.Json.to_string_pretty (Obs.Profile.to_json r));
  output_char oc '\n';
  close_out oc;
  Printf.printf "profile written to %s (%s)\n" path Obs.Profile.schema_version

let scenario ?(seed = 1) ?delay ?medium ~params () =
  let scn = Harness.Scenario.create ~seed ?delay ?medium ~params () in
  attach_trace_sink (Harness.Scenario.hub scn);
  scn

(* Spawn jobs, run the engine, and let the watchdog turn any silent hang
   into a diagnosed deadlock listing each wedged fiber's suspension
   point. *)
let run_jobs scn jobs =
  let handles =
    List.map (fun (name, f) -> (name, Sim.Fiber.spawn ~name f)) jobs
  in
  Harness.Scenario.run scn;
  Harness.Scenario.check_jobs handles

let value_str = function
  | Some v -> Value.to_string v
  | None -> "-"

let first_write_resp scn =
  match Oracles.History.writes scn.Harness.Scenario.history with
  | w :: _ -> Some w.Oracles.History.resp
  | [] -> None

let bool_str b = if b then "yes" else "no"

(* A standard concurrent writer/reader pair over a SWSR atomic register. *)
let atomic_pair scn =
  let net = scn.Harness.Scenario.net in
  let w = Swsr_atomic.writer ~net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net ~client_id:101 ~inst:0 () in
  (w, r)

let regular_pair scn =
  let net = scn.Harness.Scenario.net in
  let w = Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
  (w, r)
