type violation = { read : History.op; expected : Registers.Value.t list }

type report = {
  reads_checked : int;
  reads_skipped : int;
  liveness_failures : int;
  violations : violation list;
}

(* Admissible values for a read: value of the last write completed before
   the read's invocation, plus values of all writes concurrent with it. *)
let admissible writes (read : History.op) =
  let completed_before =
    List.filter (fun (w : History.op) -> Sim.Vtime.( <= ) w.resp read.inv) writes
  in
  let last_completed =
    List.fold_left
      (fun acc (w : History.op) ->
        match acc with
        | Some (best : History.op) when Sim.Vtime.( <= ) w.resp best.resp ->
          acc
        | Some _ | None -> Some w)
      None completed_before
  in
  let concurrent = List.filter (fun w -> History.overlap w read) writes in
  let vs =
    (match last_completed with Some w -> [ w.value ] | None -> [])
    @ List.map (fun (w : History.op) -> w.value) concurrent
  in
  vs

let check ?cutoff ?(initial_ok = false) h =
  let writes = History.writes h in
  let reads = History.reads h in
  let after_cutoff (o : History.op) =
    match cutoff with None -> true | Some c -> Sim.Vtime.( <= ) c o.inv
  in
  let checked, skipped = List.partition after_cutoff reads in
  let liveness = List.filter (fun (r : History.op) -> not r.ok) checked in
  let violations =
    List.filter_map
      (fun (r : History.op) ->
        if not r.ok then None
        else
          let expected = admissible writes r in
          if expected = [] && initial_ok then None
          else if
            List.exists (fun v -> Registers.Value.equal v r.value) expected
          then None
          else Some { read = r; expected })
      checked
  in
  {
    reads_checked = List.length checked;
    reads_skipped = List.length skipped;
    liveness_failures = List.length liveness;
    violations;
  }

let is_clean r = r.violations = [] && r.liveness_failures = 0

let pp ppf r =
  Format.fprintf ppf
    "regularity: %d checked, %d skipped, %d liveness failures, %d violations"
    r.reads_checked r.reads_skipped r.liveness_failures
    (List.length r.violations);
  List.iter
    (fun v ->
      Format.fprintf ppf "@.  VIOLATION %a returned %a, admissible: %s"
        History.pp_op v.read Registers.Value.pp v.read.History.value
        (String.concat ", "
           (List.map Registers.Value.to_string v.expected)))
    r.violations
