(** Register value domain.

    The registers store opaque values compared structurally.  [Stamped]
    packs the [(value, epoch, seq)] triples exchanged between the MWMR
    construction and its underlying SWMR registers (§5.2); [Bot] is the
    default-initialized content standing for the arbitrary initial value of
    an unwritten (or corrupted) register. *)

type t =
  | Bot  (** unwritten / unknown *)
  | Int of int
  | Str of string
  | Stamped of stamped
      (** an MWMR triple travelling through an underlying SWMR register *)

and stamped = { data : t; epoch : Epoch.t; seq : int }

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total structural order ([Bot < Int < Str < Stamped], then
    componentwise, epochs by {!Epoch.compare_structural}), consistent
    with {!equal}.  Typed all the way down: safe on any reachable —
    including corrupted — value, with no polymorphic-compare fallback. *)

val bot : t

val int : int -> t

val str : string -> t

val stamped : data:t -> epoch:Epoch.t -> seq:int -> t

val wire_bytes : t -> int
(** Serialized-size estimate (1-byte tag + payload; epochs count 16 bytes,
    ints 8), for per-message-class traffic accounting. *)

val arbitrary : Sim.Rng.t -> t
(** A random non-[Stamped] value, for transient-fault injection. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
