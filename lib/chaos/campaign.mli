(** The chaos campaign engine.

    A campaign hammers one register construction with machine-generated
    adversity: from a single seed it derives per-trial fault schedules
    ({!generate}) mixing transient {!Sim.Fault} injections over weighted
    target prefixes, mobile Byzantine roams ({!Byzantine.Adversary.roam}),
    and link-chaos windows; runs each schedule against a live deployment
    ({!run_trial}); checks the register condition segment by segment
    between quiescence points; and on violation delta-debugs the schedule
    down to a minimal counterexample ({!shrink}) packaged as a
    self-contained, replayable JSON artifact ({!repro}).

    Everything is deterministic in the seed: the same campaign seed yields
    identical schedules, histories and verdicts, and a repro artifact
    re-executes to the verdict it records. *)

type family = Regular | Atomic | Mwmr

val family_to_string : family -> string

val family_of_string : string -> (family, string) result

type medium = Fifo | Lossy
(** [Fifo] is {!Registers.Net.Reliable_fifo}; [Lossy] is the
    [Stabilizing] medium at {!lossy_base} rates — link windows only exist
    there (under [Fifo] links are reliable by assumption). *)

val lossy_base : float * float
(** Base (loss, dup) of the [Lossy] medium, restored when windows close. *)

type config = {
  family : family;
  n : int;
  f : int;  (** the declared resilience parameter [t] *)
  medium : medium;
  initial : (int * Strategy.t) list;
      (** slots compromised before the run starts; exceeding [f] (e.g.
          [2f+1] colluders) deliberately breaks the resilience assumption *)
  writes : int;
  reads : int;  (** per-process op counts for the workload jobs *)
  read_budget : int;  (** inquiry-iteration budget per read *)
  gap_hi : int;  (** inter-operation think time is uniform in [0, gap_hi] *)
  horizon : int;  (** schedule events land in [1, horizon] *)
  injections : int;  (** transient-fault injections per schedule *)
  roams : int;  (** mobile-adversary sweeps per schedule *)
  roam_max : int;  (** slots per roam (clamped to [f] at generation) *)
  windows : int;  (** link-chaos windows per schedule (Lossy only) *)
  window_max : int;  (** maximum window duration, in ticks *)
  crashes : int;  (** crash events per schedule *)
  crash_down : int;
      (** maximum crash-recovery down window; most generated crashes
          recover within it, the rest are crash-stop *)
}

val default_config : family:family -> config
(** [n = 9], [f = 1], [Fifo], one initial garbage compromise, 60 writes /
    45 reads with budget 64, horizon 3000, 3 injections, 2 roams of 1
    slot, 2 windows of up to 400 ticks (inert under [Fifo]), no crashes
    ([crashes = 0], [crash_down = 250]). *)

type verdict =
  | Clean
  | Violation of { kind : string; count : int; detail : string }
      (** [kind] is one of ["regularity"], ["inversion"], ["mw"],
          ["liveness"], ["stuck"]. *)

val verdict_kind : verdict -> string
(** ["clean"] or the violation kind — the identity shrinking preserves. *)

val same_verdict : verdict -> verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit

type outcome = {
  verdict : verdict;
  ops : int;  (** history length *)
  duration : int;  (** final virtual time of the trial *)
  stuck : string list;  (** workload fibers that never finished *)
}

val generate : config -> seed:int -> Schedule.t
(** Derive the trial's randomized schedule.  Injection prefixes are drawn
    from a weighted distribution (all servers, one server, client state,
    link state, everything); roams assign up to [min roam_max f] slots
    with strategies from {!Strategy.default_pool}; windows get random
    placement, duration, spike rates, direction and optional target
    server. *)

val apply_event : Harness.Scenario.t -> Schedule.event -> unit
(** Arm one schedule event on a deployed scenario (before the engine
    runs): injections and crashes through the scenario's fault plan, roams
    and windows through engine-scheduled callbacks. *)

val sub_history : Oracles.History.t -> lo:int -> hi:int -> Oracles.History.t
(** Segment slice for the oracles: reads invoked in [\[lo, hi)], all
    writes kept (a write before the segment still determines what reads
    inside it may return). *)

val cutoff_from : Oracles.History.t -> lo:int -> Sim.Vtime.t option
(** Response instant of the first write invoked at or after [lo] — the
    segment's stabilization cutoff; [None] when no write lands there. *)

val run_trial :
  ?on_scenario:(Harness.Scenario.t -> unit) ->
  config ->
  seed:int ->
  Schedule.t ->
  outcome
(** Deploy, apply the schedule, run the workload to quiescence, and check
    the family's register condition over every inter-disturbance segment
    (cutoff at the first write completing after each disturbance, plus a
    link-stabilization grace under [Lossy]).  [on_scenario] runs right
    after deployment, before the engine starts — attach sinks there. *)

val shrink :
  ?log:(string -> unit) ->
  config ->
  seed:int ->
  Schedule.t ->
  verdict ->
  Schedule.t * int
(** Minimize a violating schedule while {!same_verdict} holds: ddmin
    (delta debugging) over the event list, then a halving pass over
    window durations, then dropping individual roam assignments.  Returns
    the minimal schedule and how many re-executions it took. *)

type repro = {
  seed : int;
  config : config;
  schedule : Schedule.t;
  verdict : verdict;
}
(** A self-contained counterexample: replaying [schedule] at [seed] under
    [config] re-triggers [verdict]. *)

val repro_schema : string
(** ["stabreg/chaos-repro/v1"]. *)

val repro_to_json : repro -> Obs.Json.t

val repro_of_json : Obs.Json.t -> (repro, string) result

val replay : ?on_scenario:(Harness.Scenario.t -> unit) -> repro -> outcome
(** Re-execute a repro artifact deterministically. *)

type trial = {
  index : int;
  trial_seed : int;
  events : int;  (** generated schedule size *)
  outcome : outcome;
  repro : repro option;  (** shrunk counterexample, on violation *)
  shrink_runs : int;
}

type result = { config : config; seed : int; trials : trial list }

val violations : result -> trial list

val run :
  ?on_scenario:(trial:int -> Harness.Scenario.t -> unit) ->
  ?log:(string -> unit) ->
  ?shrink_violations:bool ->
  ?recorder:Obs.Profile.t ->
  ?domains:int ->
  config ->
  seed:int ->
  trials:int ->
  result
(** Run a whole campaign: per trial, derive a seed and schedule, execute,
    and shrink any violation into a repro ([shrink_violations] defaults to
    [true]).  [on_scenario] fires for the campaign trials (not for shrink
    re-executions).  [log] receives one progress line per trial and per
    shrink pass.

    [domains] (default 1) fans the trials out over that many domains via
    {!Parallel.Pool}.  Trials are independent and each is deterministic
    in its own derived seed, so the result — trial order, outcomes,
    repros — is identical for every [domains] value; only wall-clock
    changes.  With [domains > 1], [log] lines are buffered per trial and
    replayed in trial order after all trials complete, and [on_scenario]
    runs on whichever domain executes the trial — trial 0 always runs on
    the calling domain (where drivers attach their sinks).

    [recorder] is a flight recorder ({!Obs.Profile}) ticked on completed
    trials: each sample snapshots cumulative trials, violations, injected
    events and shrink re-executions, closed by a final forced sample.
    Trials are noted strictly in index order on the calling domain (the
    parallel path notes them in its post-join fold), so the sample
    timeline is byte-stable regardless of [domains]; with [domains > 1]
    the recorder also gains a ["domains"] section reconstructing the
    round-robin per-domain split (trials, events, violations).
    Recording never perturbs outcomes or repros. *)
