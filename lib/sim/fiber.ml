open Effect
open Effect.Deep

type status = Running | Done | Failed of exn

type handle = {
  mutable status : status;
  name : string;
  mutable blocked : string option;
}

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

(* The fiber currently executing, if any.  Maintained across both the
   initial run (spawn) and every resumption (the [register] callback wraps
   [continue]), so [suspend ~label] can stamp the right handle and the
   watchdog can read the stamps of wedged fibers afterwards. *)
let current : handle option ref = ref None

let suspend ?label register =
  (match (!current, label) with
  | Some h, Some l -> h.blocked <- Some l
  | Some _, None | None, _ -> ());
  let v = perform (Suspend register) in
  (match !current with Some h -> h.blocked <- None | None -> ());
  v

let spawn ?(name = "fiber") f =
  let h = { status = Running; name; blocked = None } in
  let handler =
    {
      retc =
        (fun () ->
          h.blocked <- None;
          h.status <- Done);
      exnc =
        (fun e ->
          h.blocked <- None;
          h.status <- Failed e;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun v ->
                    let prev = !current in
                    current := Some h;
                    Fun.protect
                      ~finally:(fun () -> current := prev)
                      (fun () -> continue k v)))
          | _ -> None);
    }
  in
  let prev = !current in
  current := Some h;
  Fun.protect
    ~finally:(fun () -> current := prev)
    (fun () -> match_with f () handler);
  h

let status h = h.status

let name h = h.name

let blocked_on h = match h.status with Running -> h.blocked | _ -> None
