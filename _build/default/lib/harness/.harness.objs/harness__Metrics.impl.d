lib/harness/metrics.ml: Array Float Format List Oracles Sim Stdlib
