(** Chrome [trace_event]-format export (Perfetto / chrome://tracing).

    {!to_json} renders a run's typed events as the JSON Object Format:
    thread-name metadata, one complete ("X") slice per causal span on
    the owning peer's thread, and instant ("i") events for faults,
    marks and stabilization.  Virtual-clock ticks map 1:1 to the
    format's microsecond timestamps, so slice durations read as ticks.
    Output is deterministic: slices in span-allocation (tree walk)
    order, threads sorted by id. *)

val to_json : Event.t list -> Json.t

val validate : Json.t -> (unit, string) result
(** Structural check of an exported document: [traceEvents] is a list
    whose entries carry the fields their [ph] requires, with
    non-negative [ts]/[dur]. *)
