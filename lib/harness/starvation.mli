(** Adversarially scheduled read starvation — the liveness side of the
    resilience bounds (Theorems 1 and 2), constructed rather than hoped
    for.

    Under random schedules the Fig. 2 register essentially never starves
    even well below [n >= 8t+1] (the helping path is extremely robust);
    the interesting question is what a worst-case scheduler plus [t]
    Byzantine splitters can do.  This module scripts that worst case: a
    write kept in flight splits the sampled correct servers' [last_val]
    between old and new value as evenly as possible, [t] Byzantine servers
    inject pairwise-distinct junk, and (asynchronous case) the remaining
    [t] correct servers' acknowledgments are delayed out of the reader's
    [(n-t)]-acknowledgment sample.

    The reader's per-round quorum then fails exactly when
    [ceil((n-2t)/2) < 2t+1] — i.e. [n <= 6t] — in the asynchronous model,
    and when [ceil((n-t)/2) < t+1] — i.e. [n <= 3t] — in the synchronous
    model, which makes the paper's synchronous bound [t < n/3] empirically
    tight while its asynchronous bound [t < n/8] has slack against this
    particular adversary (the 8t+1 arithmetic also covers the
    helping-refresh interplay the proof of Lemma 2 needs). *)

type outcome = {
  starved : bool;  (** every read round in the budget failed *)
  rounds_used : int;
  returned : Registers.Value.t option;  (** the value, when not starved *)
  params : Registers.Params.t;
  trace : Sim.Trace.t;  (** the run's trace/metrics, for run reports *)
}

val run :
  n:int ->
  f:int ->
  ?sync:bool ->
  ?budget:int ->
  ?instrument:(Sim.Engine.t -> unit) ->
  unit ->
  outcome
(** Run the scripted schedule on a fresh deployment ([budget] read rounds,
    default 6).  [sync] (default false) uses the Fig. 5 thresholds with
    timeout-based waits.  [instrument] is called on the freshly built
    engine before the schedule runs — the hook for attaching event
    sinks.  Requires [n > 2f >= 2]. *)

val predicted_starvation : n:int -> f:int -> sync:bool -> bool
(** The closed-form prediction above, for cross-checking experiment
    tables. *)
