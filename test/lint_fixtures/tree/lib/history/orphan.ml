(* Fixture: a lib module with no .mli — R5 must flag this file. *)

let x = 1
