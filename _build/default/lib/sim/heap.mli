(** Polymorphic binary min-heap, used as the simulator's event queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** A fresh empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val clear : 'a t -> unit

val iter_unordered : 'a t -> ('a -> unit) -> unit
(** Visit every element in unspecified order (inspection only). *)
