(** Brute-force linearizability for small register histories.

    Searches for a total order of the operations that (a) respects real
    time (an operation that responded before another was invoked comes
    first) and (b) makes every read return the value of the latest
    preceding write (or [initial] if none precedes it).

    Exponential in the worst case — intended for cross-validating the
    polynomial oracles ({!Atomicity.Sw}, {!Atomicity.Mw}) on histories of
    up to a few dozen operations, not for production checking.  The DFS
    extends the order only with currently-minimal operations (no pending
    op that real-time-precedes them), which prunes aggressively on the
    mostly-sequential histories the simulator produces. *)

val check :
  ?initial:Registers.Value.t -> ?max_steps:int -> History.t -> bool option
(** [check h] is [Some true] if a linearization exists, [Some false] if
    provably none does, or [None] if the search exceeded [max_steps]
    (default 2_000_000) DFS steps. [initial] (default [Bot]) is the value
    reads may return before any write is linearized. *)
