(* Fixture: every nondeterminism pattern R1 must flag, plus the
   sanctioned shapes it must not.  Never compiled — only parsed. *)

let roll () = Random.int 6

let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()

let snapshot t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []

let sorted_snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let visit t f = Hashtbl.iter f t

let seeded = Random.State.make [| 7 |]

let reseeded () = Random.State.make_self_init ()

let fan_out f xs = List.map Domain.join (List.map (fun x -> Domain.spawn (fun () -> f x)) xs)
