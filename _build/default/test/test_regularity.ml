open Util
open Oracles

let t i = Sim.Vtime.of_int i

let w h inv resp v =
  History.record h ~proc:"writer" ~kind:History.Write ~inv:(t inv)
    ~resp:(t resp) (int_value v)

let r h inv resp v =
  History.record h ~proc:"reader" ~kind:History.Read ~inv:(t inv)
    ~resp:(t resp) (int_value v)

let test_last_completed_write_ok () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 30 2;
  r h 40 50 2;
  let report = Regularity.check h in
  check_true "clean" (Regularity.is_clean report);
  check_int "checked" 1 report.Regularity.reads_checked

let test_stale_value_flagged () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 30 2;
  r h 40 50 1;
  let report = Regularity.check h in
  check_int "one violation" 1 (List.length report.Regularity.violations);
  check_false "not clean" (Regularity.is_clean report)

let test_concurrent_write_value_ok () =
  let h = History.create () in
  w h 0 10 1;
  w h 20 60 2;
  (* read overlaps the second write: either value is admissible *)
  r h 30 40 2;
  r h 45 55 1;
  check_true "both admissible" (Regularity.is_clean (Regularity.check h))

let test_never_written_value_flagged () =
  let h = History.create () in
  w h 0 10 1;
  r h 20 30 99;
  let report = Regularity.check h in
  check_int "phantom flagged" 1 (List.length report.Regularity.violations)

let test_cutoff_skips_early_reads () =
  let h = History.create () in
  w h 0 10 1;
  r h 11 12 42 (* arbitrary pre-stabilization value *);
  r h 100 110 1;
  let report = Regularity.check ~cutoff:(t 50) h in
  check_true "clean after cutoff" (Regularity.is_clean report);
  check_int "skipped one" 1 report.Regularity.reads_skipped;
  let strict = Regularity.check h in
  check_int "without cutoff it is flagged" 1
    (List.length strict.Regularity.violations)

let test_liveness_failures_counted () =
  let h = History.create () in
  w h 0 10 1;
  History.record h ~proc:"reader" ~kind:History.Read ~inv:(t 20) ~resp:(t 30)
    ~ok:false Registers.Value.bot;
  let report = Regularity.check h in
  check_int "liveness failure" 1 report.Regularity.liveness_failures;
  check_false "not clean" (Regularity.is_clean report)

let test_initial_ok () =
  let h = History.create () in
  r h 0 5 7;
  check_false "unwritten read flagged by default"
    (Regularity.is_clean (Regularity.check h));
  check_true "tolerated with initial_ok"
    (Regularity.is_clean (Regularity.check ~initial_ok:true h))

let test_touching_endpoint_precedence () =
  (* A write responding exactly when the read starts counts as completed. *)
  let h = History.create () in
  w h 0 10 1;
  w h 10 20 2;
  r h 20 30 2;
  check_true "boundary write counted" (Regularity.is_clean (Regularity.check h));
  let h2 = History.create () in
  w h2 0 10 1;
  w h2 10 20 2;
  r h2 20 30 1;
  check_false "older value no longer admissible"
    (Regularity.is_clean (Regularity.check h2))

let tests =
  [
    case "last completed write ok" test_last_completed_write_ok;
    case "stale value flagged" test_stale_value_flagged;
    case "concurrent write ok" test_concurrent_write_value_ok;
    case "phantom value flagged" test_never_written_value_flagged;
    case "cutoff skips early reads" test_cutoff_skips_early_reads;
    case "liveness failures counted" test_liveness_failures_counted;
    case "initial_ok" test_initial_ok;
    case "touching endpoints" test_touching_endpoint_precedence;
  ]
