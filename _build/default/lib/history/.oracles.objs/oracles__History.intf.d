lib/history/history.mli: Format Registers Sim
