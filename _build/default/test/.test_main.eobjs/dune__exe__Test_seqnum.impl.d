test/test_seqnum.ml: Alcotest QCheck Registers Seqnum Util
