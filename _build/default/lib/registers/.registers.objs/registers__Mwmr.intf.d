lib/registers/mwmr.mli: Epoch Net Value
