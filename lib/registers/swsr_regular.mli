(** Stabilizing Byzantine-tolerant SWSR {e regular} register — Figure 2
    (asynchronous, [t < n/8]) and Figure 5 (synchronous, [t < n/3]).

    The two algorithms differ only in their wait statements and thresholds,
    which {!Params} captures; the client code below is written once against
    those thresholds, exactly as the paper presents Fig. 5 as "a simple
    adaptation" of Fig. 2.

    The register stabilizes after the first write invoked after transient
    faults stop: reads issued before that may return arbitrary values
    (eventual regularity). *)

type writer

type reader

val writer : net:Net.t -> client_id:int -> inst:int -> writer
(** The (unique) writer endpoint for register instance [inst]. *)

val reader : net:Net.t -> client_id:int -> inst:int -> reader
(** The (unique) reader endpoint for register instance [inst]. *)

val write : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit
(** REG.write(v), lines 01–06.  Must run inside a fiber. *)

val read :
  ?parent:Obs.Trace_ctx.span -> ?max_iterations:int -> reader -> Value.t option
(** REG.read(), lines 07–18.  Must run inside a fiber.  Returns [None] only
    if [max_iterations] (default unlimited) inquiry rounds all failed —
    the paper's loop is unbounded and provably terminates under the model
    assumptions; the bound exists so experiments can run the algorithm
    outside those assumptions without hanging. *)

val write_o : ?parent:Obs.Trace_ctx.span -> writer -> Value.t -> unit Outcome.t
(** Like {!write} but reporting the service level.  With a {!Params.retry}
    policy installed the wait is deadline-bounded with retry/backoff and
    never hangs; without one this is exactly {!write} (always [Ok] in the
    asynchronous model). *)

val read_o :
  ?parent:Obs.Trace_ctx.span ->
  ?max_iterations:int ->
  reader ->
  Value.t Outcome.t
(** Like {!read} but reporting the service level; under a retry policy each
    inquiry round is deadline-bounded and the total number of expired
    rounds is capped by the policy's attempt budget. *)

val reader_iterations : reader -> int
(** Total inquiry-loop iterations executed by this reader so far (cost
    metric for experiment E5). *)

val help_returns : reader -> int
(** How many reads returned through the helping path (lines 14–15). *)

val writer_port : writer -> Net.client_port
(** The writer's communication port (fault-injection target). *)

val reader_port : reader -> Net.client_port
