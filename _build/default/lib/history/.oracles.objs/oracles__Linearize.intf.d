lib/history/linearize.mli: History Registers
