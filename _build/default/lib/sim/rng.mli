(** Deterministic splittable pseudo-random numbers (splitmix64).

    Every source of randomness in the simulator flows from a single seeded
    generator, split per component, so that a whole experiment is replayed
    bit-identically from its seed.  Splitting (rather than sharing) keeps
    component behaviour independent of the interleaving of draws. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split rng] derives an independent generator and advances [rng]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
