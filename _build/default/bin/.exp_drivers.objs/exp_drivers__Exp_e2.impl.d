bin/exp_e2.ml: Array Byzantine Common Harness List Messages Oracles Registers Sim Swsr_atomic Value
