(** Explicit, carried-in-source finding suppression.

    Two forms, both naming the rule id so a suppression is always a
    visible, reviewable decision:

    - attributes: [[@lint.allow "R1"]] on an expression,
      [[@@lint.allow "R1 R4"]] on a binding, or a floating
      [[@@@lint.allow "R2"]] covering the whole file.  The payload is one
      string of space/comma-separated rule ids.
    - line pragmas: a comment containing [lint: allow R1 R4] suppresses
      the named rules on that source line.  Anything after [--] in the
      pragma is free-text rationale.

    A suppression span covers the source lines of the node (or line) it
    is attached to; findings inside a span for a named rule are dropped
    and counted. *)

type span = { rules : string list; start_line : int; end_line : int }

val collect : source:string -> Parsetree.structure -> span list
(** All suppression spans of one file: attribute spans from the AST plus
    pragma spans from the raw source. *)

val filter : span list -> Finding.t list -> Finding.t list * int
(** Keep findings not covered by any span; also return the number
    suppressed. *)
