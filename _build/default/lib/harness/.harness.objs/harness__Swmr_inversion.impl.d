lib/harness/swmr_inversion.ml: Array Registers Script Sim
