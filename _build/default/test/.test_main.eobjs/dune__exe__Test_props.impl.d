test/test_props.ml: Array Byzantine Datalink Harness List Mwmr Net Oracles Params Printf QCheck Registers Sim Ss_transport String Swsr_atomic Swsr_regular Util Value
