open Util
open Registers

(* --- the raw unreliable medium --- *)

let mk_lossy ?(loss = 0.0) ?(dup = 0.0) ?(seed = 3) () =
  let rng = Sim.Rng.create seed in
  let engine = Sim.Engine.create ~rng () in
  let received = ref [] in
  let link =
    Sim.Lossy_link.create ~engine ~rng:(Sim.Rng.split rng)
      ~delay:(Sim.Link.uniform (Sim.Rng.split rng) ~lo:1 ~hi:10)
      ~loss ~dup ~name:"test"
      ~deliver:(fun m -> received := m :: !received)
      ()
  in
  (engine, link, received)

let test_lossy_reliable_mode () =
  let engine, link, received = mk_lossy () in
  for i = 1 to 20 do
    Sim.Lossy_link.send link i
  done;
  Sim.Engine.run engine;
  check_int "all delivered with loss 0" 20 (List.length !received)

let test_lossy_reorders () =
  let engine, link, received = mk_lossy ~seed:5 () in
  for i = 1 to 50 do
    Sim.Lossy_link.send link i
  done;
  Sim.Engine.run engine;
  check_true "not FIFO" (List.rev !received <> List.init 50 (fun i -> i + 1));
  check_true "same multiset"
    (List.sort Int.compare !received = List.init 50 (fun i -> i + 1))

let test_lossy_loses () =
  let engine, link, received = mk_lossy ~loss:0.5 ~seed:5 () in
  for i = 1 to 200 do
    Sim.Lossy_link.send link i
  done;
  Sim.Engine.run engine;
  let got = List.length !received in
  check_true "roughly half lost" (got > 60 && got < 140)

let test_lossy_duplicates () =
  let engine, link, received = mk_lossy ~dup:0.5 ~seed:5 () in
  for i = 1 to 100 do
    Sim.Lossy_link.send link i
  done;
  Sim.Engine.run engine;
  check_true "more deliveries than sends" (List.length !received > 110)

let test_lossy_inject_never_lost () =
  let engine, link, received = mk_lossy ~loss:0.9 ~seed:5 () in
  for _ = 1 to 20 do
    Sim.Lossy_link.inject link 7
  done;
  Sim.Engine.run engine;
  check_true "injected packets always arrive" (List.length !received >= 20)

let test_lossy_corrupt_in_flight () =
  let engine, link, received = mk_lossy () in
  Sim.Lossy_link.send link 1;
  Sim.Lossy_link.send link 2;
  Sim.Lossy_link.corrupt_in_flight link (function
    | 1 -> Some 99
    | _ -> None);
  Sim.Engine.run engine;
  check_true "rewritten and dropped" (!received = [ 99 ])

let test_lossy_set_loss_window () =
  (* A loss:1.0 window drops everything; closing it restores delivery. *)
  let engine, link, received = mk_lossy ~seed:6 () in
  let sink, events = Obs.Sink.memory () in
  Obs.Hub.attach (Sim.Engine.hub engine) sink;
  Sim.Lossy_link.set_loss link 1.0;
  check_true "knob readable" (Sim.Lossy_link.loss link = 1.0);
  for i = 1 to 20 do
    Sim.Lossy_link.send link i
  done;
  Sim.Engine.run engine;
  check_int "window drops everything" 0 (List.length !received);
  Sim.Lossy_link.set_loss link 0.0;
  for i = 21 to 40 do
    Sim.Lossy_link.send link i
  done;
  Sim.Engine.run engine;
  check_int "delivery restored after the window" 20 (List.length !received);
  let marks =
    List.filter
      (function
        | Obs.Event.Mark { label; _ } ->
          String.length label >= 5 && String.sub label 0 5 = "link."
        | _ -> false)
      (events ())
  in
  check_int "one mark per knob change" 2 (List.length marks)

let test_lossy_set_knobs_validate () =
  let engine, link, _ = mk_lossy () in
  Alcotest.check_raises "loss out of range"
    (Invalid_argument "Lossy_link.set_loss: loss must be in [0,1]") (fun () ->
      Sim.Lossy_link.set_loss link 1.5);
  Alcotest.check_raises "dup out of range"
    (Invalid_argument "Lossy_link.set_dup: dup must be in [0,1]") (fun () ->
      Sim.Lossy_link.set_dup link (-0.1));
  Sim.Lossy_link.set_dup link 0.25;
  check_true "dup knob readable" (Sim.Lossy_link.dup link = 0.25);
  ignore engine

(* --- the self-stabilizing transport --- *)

let mk_transport ?(loss = 0.3) ?(dup = 0.2) ?(seed = 7) () =
  let rng = Sim.Rng.create seed in
  let engine = Sim.Engine.create ~rng () in
  let received = ref [] in
  let tr =
    Ss_transport.create ~engine ~rng:(Sim.Rng.split rng)
      ~delay:(Sim.Link.uniform (Sim.Rng.split rng) ~lo:1 ~hi:10)
      ~loss ~dup ~retrans:25 ~name:"t"
      ~deliver:(fun m -> received := m :: !received)
      ()
  in
  (engine, tr, received)

let test_transport_exactly_once_in_order () =
  let engine, tr, received = mk_transport () in
  for i = 1 to 50 do
    Ss_transport.send tr i
  done;
  Sim.Engine.run engine;
  check_true "exactly once, in order, despite 30% loss + 20% dup"
    (List.rev !received = List.init 50 (fun i -> i + 1));
  check_int "nothing pending" 0 (Ss_transport.pending tr)

let test_transport_on_delivered_fires_after_delivery () =
  let engine, tr, received = mk_transport () in
  let confirmed = ref false in
  let delivered_when_confirmed = ref (-1) in
  Ss_transport.send tr
    ~on_delivered:(fun () ->
      confirmed := true;
      delivered_when_confirmed := List.length !received)
    42;
  Sim.Engine.run engine;
  check_true "confirmed" !confirmed;
  check_true "confirmation after the delivery" (!delivered_when_confirmed >= 1)

let test_transport_cost_grows_with_loss () =
  let cost loss =
    let engine, tr, _ = mk_transport ~loss ~dup:0.0 () in
    for i = 1 to 30 do
      Ss_transport.send tr i
    done;
    Sim.Engine.run engine;
    Ss_transport.packets_sent tr
  in
  check_true "retransmissions kick in" (cost 0.5 > cost 0.0)

let test_transport_recovers_from_corruption () =
  let engine, tr, received = mk_transport ~seed:11 () in
  for i = 1 to 10 do
    Ss_transport.send tr i
  done;
  Sim.Engine.run engine;
  (* Transient fault on both endpoints and the wire. *)
  Ss_transport.corrupt tr (Sim.Rng.create 99);
  let before = List.length !received in
  for i = 11 to 30 do
    Ss_transport.send tr i
  done;
  Sim.Engine.run engine;
  let after = List.filter (fun m -> m > 10) !received in
  (* Self-stabilization contract: bounded anomalies, then exactly-once in
     order.  All post-corruption messages must eventually arrive... *)
  check_true "all post-fault messages delivered"
    (List.for_all (fun i -> List.mem i after) (List.init 20 (fun i -> i + 11)));
  (* ...and the in-order suffix must dominate: drop leading debris and the
     rest is the exact sequence. *)
  let rec strip = function
    | x :: rest when x <> 11 -> strip rest
    | l -> l
  in
  let tail = strip (List.rev !received) in
  let deduped = List.sort_uniq Int.compare tail in
  check_true "post-fault stream re-synchronized"
    (deduped = List.init 20 (fun i -> i + 11));
  ignore before

let test_transport_survives_total_loss_window () =
  (* A loss:1.0 window on the transport: retransmissions are futile while
     it lasts, but once the window closes the stop-and-wait protocol
     drains everything exactly-once in order. *)
  let engine, tr, received = mk_transport ~loss:0.0 ~dup:0.0 ~seed:21 () in
  for i = 1 to 5 do
    Ss_transport.send tr i
  done;
  Sim.Engine.run engine;
  check_int "pre-window messages through" 5 (List.length !received);
  Ss_transport.set_loss tr 1.0;
  for i = 6 to 15 do
    Ss_transport.send tr i
  done;
  (* Bound the run: with total loss the retransmission timer ticks
     forever, so quiescence never comes while the window is open. *)
  Sim.Engine.run ~until:(Sim.Vtime.of_int 2_000) engine;
  check_int "window blocks everything" 5 (List.length !received);
  check_true "sends still pending" (Ss_transport.pending tr > 0);
  Ss_transport.set_loss tr 0.0;
  Sim.Engine.run engine;
  check_true "transport recovered after the window"
    (List.rev !received = List.init 15 (fun i -> i + 1));
  check_int "nothing pending" 0 (Ss_transport.pending tr)

let test_transport_tag_wrap () =
  (* A tiny tag space: the wrapping tag stays exactly-once FIFO through
     many wraps. *)
  let rng = Sim.Rng.create 14 in
  let engine = Sim.Engine.create ~rng () in
  let received = ref [] in
  let tr =
    Ss_transport.create ~engine ~rng:(Sim.Rng.split rng)
      ~delay:(Sim.Link.uniform (Sim.Rng.split rng) ~lo:1 ~hi:5)
      ~loss:0.2 ~dup:0.1 ~retrans:15 ~tag_space:8 ~name:"wrap"
      ~deliver:(fun m -> received := m :: !received)
      ()
  in
  for i = 1 to 100 do
    Ss_transport.send tr i
  done;
  Sim.Engine.run engine;
  check_true "100 messages through an 8-tag space"
    (List.rev !received = List.init 100 (fun i -> i + 1))

let test_transport_validation () =
  let rng = Sim.Rng.create 1 in
  let engine = Sim.Engine.create ~rng () in
  Alcotest.check_raises "retrans must be positive"
    (Invalid_argument "Ss_transport.create: retrans must be positive")
    (fun () ->
      ignore
        (Ss_transport.create ~engine ~rng ~delay:(Sim.Link.fixed 1) ~retrans:0
           ~name:"x" ~deliver:ignore ()
          : int Ss_transport.t));
  Alcotest.check_raises "tag space too small"
    (Invalid_argument "Ss_transport.create: tag space too small")
    (fun () ->
      ignore
        (Ss_transport.create ~engine ~rng ~delay:(Sim.Link.fixed 1)
           ~tag_space:4 ~name:"x" ~deliver:ignore ()
          : int Ss_transport.t))

let test_corrupt_transport_noop_on_direct () =
  let scn = async_scenario () in
  let port = Net.add_client scn.Harness.Scenario.net ~id:77 in
  (* Must be a silent no-op for Reliable_fifo ports. *)
  Net.corrupt_transport port (Sim.Rng.create 1)

(* --- registers end-to-end over the Stabilizing medium --- *)

let lossy_medium =
  Registers.Net.Stabilizing { loss = 0.2; dup = 0.1; retrans = 30 }

let test_register_over_lossy_medium () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:5 ~medium:lossy_medium ~params () in
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
  let got = ref [] in
  run_fibers scn
    [
      ( "wr",
        fun () ->
          for i = 1 to 10 do
            Swsr_atomic.write w (int_value i);
            got := Swsr_atomic.read r :: !got
          done );
    ];
  List.iteri
    (fun idx v ->
      Alcotest.(check (option value))
        (Printf.sprintf "read %d over lossy links" idx)
        (Some (int_value (10 - idx)))
        v)
    !got

let test_register_over_lossy_medium_concurrent () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:8 ~medium:lossy_medium ~params () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 4
    Byzantine.Behavior.garbage;
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_atomic.write w)
            ~count:15 ~gap:(Harness.Workload.gap 0 30) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_atomic.read r)
            ~count:15 ~gap:(Harness.Workload.gap 0 30) () );
    ];
  let cutoff =
    match Oracles.History.writes scn.Harness.Scenario.history with
    | w :: _ -> w.Oracles.History.resp
    | [] -> Alcotest.fail "no writes"
  in
  let report = Oracles.Atomicity.Sw.check ~cutoff scn.Harness.Scenario.history in
  if not (Oracles.Atomicity.Sw.is_clean report) then
    Alcotest.failf "%a" Oracles.Atomicity.Sw.pp report

let test_register_over_lossy_medium_with_transport_fault () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:9 ~medium:lossy_medium ~params () in
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
  Harness.Scenario.register_port scn (Swsr_atomic.writer_port w);
  Harness.Scenario.register_port scn (Swsr_atomic.reader_port r);
  Sim.Fault.schedule scn.Harness.Scenario.fault
    ~engine:scn.Harness.Scenario.engine ~at:(Sim.Vtime.of_int 800) ~prefix:"";
  let tail = ref [] in
  run_fibers scn
    [
      ( "wr",
        fun () ->
          for i = 1 to 25 do
            Swsr_atomic.write w (int_value i);
            let v = Swsr_atomic.read r in
            if i > 20 then tail := (i, v) :: !tail;
            Harness.Scenario.sleep scn 40
          done );
    ];
  (* The fault lands mid-run (t=800 against ~40 ticks per round); the last
     reads must be correct again. *)
  List.iter
    (fun (i, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "post-fault read %d" i)
        (Some (int_value i))
        v)
    !tail

let tests =
  [
    case "lossy: reliable mode" test_lossy_reliable_mode;
    case "lossy: reorders" test_lossy_reorders;
    case "lossy: loses" test_lossy_loses;
    case "lossy: duplicates" test_lossy_duplicates;
    case "lossy: inject lossless" test_lossy_inject_never_lost;
    case "lossy: corrupt in flight" test_lossy_corrupt_in_flight;
    case "lossy: runtime loss window" test_lossy_set_loss_window;
    case "lossy: knob validation" test_lossy_set_knobs_validate;
    case "transport: total-loss window then recovery"
      test_transport_survives_total_loss_window;
    case "transport: exactly-once in order" test_transport_exactly_once_in_order;
    case "transport: on_delivered ordering" test_transport_on_delivered_fires_after_delivery;
    case "transport: retransmission cost" test_transport_cost_grows_with_loss;
    case "transport: recovers from corruption" test_transport_recovers_from_corruption;
    case "transport: tag wrap" test_transport_tag_wrap;
    case "transport: validation" test_transport_validation;
    case "corrupt_transport no-op on direct" test_corrupt_transport_noop_on_direct;
    case "register over lossy links" test_register_over_lossy_medium;
    case "register over lossy links, concurrent" test_register_over_lossy_medium_concurrent;
    case "register over lossy links, transport fault" test_register_over_lossy_medium_with_transport_fault;
  ]
