(* Randomized end-to-end properties: lightweight model checking.  Each
   case builds a whole deployment from generated parameters (system size,
   Byzantine strategy assignment, workload shape, fault schedule), runs it,
   and feeds the history to the oracles. *)

open Util
open Registers

(* Pick a Byzantine strategy by index (the generator draws small ints). *)
let strategy scn idx server =
  let srv = Byzantine.Adversary.server scn.Harness.Scenario.adversary server in
  match idx mod 5 with
  | 0 -> Byzantine.Behavior.silent
  | 1 -> Byzantine.Behavior.garbage
  | 2 -> Byzantine.Behavior.equivocate
  | 3 -> Byzantine.Behavior.frozen srv
  | _ -> Byzantine.Behavior.flaky ~drop_probability:0.4 srv

let gen_config =
  QCheck.Gen.(
    let* seed = int_range 1 100_000 in
    let* size = int_range 0 1 in
    let n, f = if size = 0 then (9, 1) else (17, 2) in
    let* strategies = list_size (int_range 0 f) (int_range 0 4) in
    let* gap_hi = int_range 0 25 in
    let* writes = int_range 3 15 in
    let* reads = int_range 3 15 in
    return (seed, n, f, strategies, gap_hi, writes, reads))

let print_config (seed, n, f, strategies, gap_hi, writes, reads) =
  Printf.sprintf "seed=%d n=%d f=%d byz=%s gap=%d w=%d r=%d" seed n f
    (String.concat "," (List.map string_of_int strategies))
    gap_hi writes reads

let arb_config = QCheck.make gen_config ~print:print_config

let run_swsr_atomic (seed, n, f, strategies, gap_hi, writes, reads) =
  let params = Params.create_exn ~n ~f ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed ~params () in
  List.iteri
    (fun i idx ->
      Byzantine.Adversary.compromise scn.Harness.Scenario.adversary i
        (strategy scn idx i))
    strategies;
  let w = Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 () in
  run_fibers scn
    [
      ( "writer",
        fun () ->
          Harness.Workload.writer_job scn ~write:(Swsr_atomic.write w)
            ~count:writes ~gap:(Harness.Workload.gap 0 gap_hi) () );
      ( "reader",
        fun () ->
          Harness.Workload.reader_job scn
            ~read:(fun () -> Swsr_atomic.read r)
            ~count:reads ~gap:(Harness.Workload.gap 0 gap_hi) () );
    ];
  scn

let run_swsr_atomic_heavy_tail (seed, n, f, strategies, gap_hi, writes, reads) =
  let params = Params.create_exn ~n ~f ~mode:Params.Async () in
  let rng = Sim.Rng.create seed in
  let engine = Sim.Engine.create ~rng:(Sim.Rng.split rng) () in
  let net =
    Net.create ~engine ~params
      ~link_delay:(fun rng ->
        Sim.Link.bimodal rng ~fast:(1, 5) ~slow:(40, 90) ~slow_probability:0.15)
      ()
  in
  let adversary = Byzantine.Adversary.deploy ~net ~rng:(Sim.Rng.split rng) in
  List.iteri
    (fun i idx ->
      let srv = Byzantine.Adversary.server adversary i in
      let b =
        match idx mod 5 with
        | 0 -> Byzantine.Behavior.silent
        | 1 -> Byzantine.Behavior.garbage
        | 2 -> Byzantine.Behavior.equivocate
        | 3 -> Byzantine.Behavior.frozen srv
        | _ -> Byzantine.Behavior.flaky ~drop_probability:0.4 srv
      in
      Byzantine.Adversary.compromise adversary i b)
    strategies;
  let w = Swsr_atomic.writer ~net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net ~client_id:101 ~inst:0 () in
  let h = Oracles.History.create () in
  let job_rng = Sim.Rng.split rng in
  let sleep d = Sim.Fiber.suspend (fun k -> Sim.Engine.schedule engine ~delay:d k) in
  let wh =
    Sim.Fiber.spawn (fun () ->
        for i = 1 to writes do
          let inv = Sim.Engine.now engine in
          Swsr_atomic.write w (Value.int i);
          Oracles.History.record h ~proc:"w" ~kind:Oracles.History.Write ~inv
            ~resp:(Sim.Engine.now engine) (Value.int i);
          sleep (Sim.Rng.int_in job_rng 0 gap_hi)
        done)
  in
  let rh =
    Sim.Fiber.spawn (fun () ->
        for _ = 1 to reads do
          let inv = Sim.Engine.now engine in
          (match Swsr_atomic.read r with
          | Some v ->
            Oracles.History.record h ~proc:"r" ~kind:Oracles.History.Read ~inv
              ~resp:(Sim.Engine.now engine) v
          | None -> ());
          sleep (Sim.Rng.int_in job_rng 0 gap_hi)
        done)
  in
  Sim.Engine.run engine;
  (match (Sim.Fiber.status wh, Sim.Fiber.status rh) with
  | Sim.Fiber.Done, Sim.Fiber.Done -> ()
  | _ -> failwith "fiber wedged under heavy-tailed delays");
  h

let prop_swsr_atomic_heavy_tail =
  QCheck.Test.make
    ~name:"SWSR atomic register is atomic under heavy-tailed delays"
    ~count:60 arb_config (fun cfg ->
      let gap_hi = max 1 (let _, _, _, _, g, _, _ = cfg in g) in
      let seed, n, f, strategies, _, writes, reads = cfg in
      let h =
        run_swsr_atomic_heavy_tail (seed, n, f, strategies, gap_hi, writes, reads)
      in
      match Oracles.History.writes h with
      | [] -> true
      | w :: _ ->
        Oracles.Atomicity.Sw.is_clean
          (Oracles.Atomicity.Sw.check ~cutoff:w.Oracles.History.resp h))

let prop_swsr_atomic_always_atomic =
  QCheck.Test.make ~name:"SWSR atomic register is atomic for any adversary mix"
    ~count:120 arb_config (fun cfg ->
      let scn = run_swsr_atomic cfg in
      match Oracles.History.writes scn.Harness.Scenario.history with
      | [] -> true
      | w :: _ ->
        Oracles.Atomicity.Sw.is_clean
          (Oracles.Atomicity.Sw.check ~cutoff:w.Oracles.History.resp
             scn.Harness.Scenario.history))

let prop_swsr_stabilizes_after_random_fault =
  QCheck.Test.make
    ~name:"SWSR regular register stabilizes after a random-time fault"
    ~count:80
    QCheck.(pair arb_config (QCheck.make QCheck.Gen.(int_range 100 900)))
    (fun ((seed, n, f, strategies, gap_hi, writes, reads), fault_at) ->
      let params = Params.create_exn ~n ~f ~mode:Params.Async () in
      let scn = Harness.Scenario.create ~seed ~params () in
      List.iteri
        (fun i idx ->
          Byzantine.Adversary.compromise scn.Harness.Scenario.adversary i
            (strategy scn idx i))
        strategies;
      Sim.Fault.schedule scn.Harness.Scenario.fault
        ~engine:scn.Harness.Scenario.engine
        ~at:(Sim.Vtime.of_int fault_at) ~prefix:"server.";
      let w = Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
      let r = Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
      run_fibers scn
        [
          ( "writer",
            fun () ->
              Harness.Workload.writer_job scn ~write:(Swsr_regular.write w)
                ~count:(writes + 20)
                ~gap:(Harness.Workload.gap 0 gap_hi)
                () );
          ( "reader",
            fun () ->
              (* A bounded inquiry budget: if the fault lands after the
                 writer's last write, the paper's assumption (b) (a write
                 after tau_no_tr) is unmet and unbounded reads could
                 legitimately retry forever. *)
              Harness.Workload.reader_job scn
                ~read:(fun () -> Swsr_regular.read ~max_iterations:80 r)
                ~count:(reads + 20)
                ~gap:(Harness.Workload.gap 0 gap_hi)
                () );
        ];
      (* Reads invoked after the first write completed after the fault
         must be regular.  Reads that exhausted their budget with no
         post-fault write pending are not liveness failures of the
         algorithm, so only the regular-condition violations count when
         budget exhaustion happened before that write. *)
      let post =
        Oracles.History.writes scn.Harness.Scenario.history
        |> List.filter (fun (o : Oracles.History.op) ->
               Sim.Vtime.to_int o.inv >= fault_at)
      in
      match post with
      | [] -> true (* workload ended before the fault: nothing to check *)
      | w :: _ ->
        Oracles.Regularity.is_clean
          (Oracles.Regularity.check ~cutoff:w.Oracles.History.resp
             scn.Harness.Scenario.history))

let prop_mwmr_atomic =
  QCheck.Test.make ~name:"MWMR register is atomic for any adversary mix"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 1 100_000 in
         let* byz = int_range 0 4 in
         let* gap_hi = int_range 10 50 in
         return (seed, byz, gap_hi))
       ~print:(fun (s, b, g) -> Printf.sprintf "seed=%d byz=%d gap=%d" s b g))
    (fun (seed, byz, gap_hi) ->
      let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
      let scn = Harness.Scenario.create ~seed ~params () in
      Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 0
        (strategy scn byz 0);
      let cfg = Mwmr.default_config ~m:3 in
      let procs =
        Array.init 3 (fun i ->
            Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:i
              ~client_id:(300 + i))
      in
      run_fibers scn
        (Array.to_list
           (Array.mapi
              (fun i p ->
                ( Printf.sprintf "p%d" i,
                  fun () ->
                    Harness.Workload.mwmr_job scn
                      ~proc:(Printf.sprintf "p%d" i)
                      ~process:p ~ops:6 ~write_ratio:0.5
                      ~gap:(Harness.Workload.gap 0 gap_hi) () ))
              procs));
      Oracles.Atomicity.Mw.is_clean
        (Oracles.Atomicity.Mw.check ~tie:cfg.Mwmr.tie
           scn.Harness.Scenario.history))

let prop_transport_exactly_once =
  QCheck.Test.make
    ~name:"ss-transport delivers exactly once, in order, for any loss/dup"
    ~count:120
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 1 100_000 in
         let* loss10 = int_range 0 6 in
         let* dup10 = int_range 0 4 in
         let* count = int_range 1 40 in
         return (seed, float_of_int loss10 /. 10., float_of_int dup10 /. 10., count))
       ~print:(fun (s, l, d, c) ->
         Printf.sprintf "seed=%d loss=%.1f dup=%.1f count=%d" s l d c))
    (fun (seed, loss, dup, count) ->
      let rng = Sim.Rng.create seed in
      let engine = Sim.Engine.create ~rng () in
      let received = ref [] in
      let tr =
        Ss_transport.create ~engine ~rng:(Sim.Rng.split rng)
          ~delay:(Sim.Link.uniform (Sim.Rng.split rng) ~lo:1 ~hi:10)
          ~loss ~dup ~retrans:25 ~name:"p"
          ~deliver:(fun m -> received := m :: !received)
          ()
      in
      for i = 1 to count do
        Ss_transport.send tr i
      done;
      Sim.Engine.run engine;
      List.rev !received = List.init count (fun i -> i + 1))

let prop_altbit_in_order =
  (* Self-stabilization contract, not perfection: the footnote-3 handshake
     counts returning packets, so stale acknowledgments planted by the
     scramble (or spawned by duplication) can complete a bounded number of
     early handshakes without a delivery.  The delivered sent-messages must
     be an in-order subsequence, losses bounded by the garbage planted plus
     a small constant, and once stabilized (the last few messages) nothing
     may be lost. *)
  QCheck.Test.make
    ~name:"alt-bit: in-order subsequence, bounded loss after scramble"
    ~count:120
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 1 100_000 in
         let* garbage = int_range 0 4 in
         let* count = int_range 4 12 in
         return (seed, garbage, count))
       ~print:(fun (s, g, c) -> Printf.sprintf "seed=%d garbage=%d count=%d" s g c))
    (fun (seed, garbage, count) ->
      let s =
        Datalink.Alt_bit.create ~rng:(Sim.Rng.create seed) ~cap:4 ~loss:0.2
          ~dup:0.1 ()
      in
      Datalink.Alt_bit.scramble s
        ~garbage:(List.init garbage (fun i -> -(i + 1)));
      let sent = List.init count (fun i -> i + 1) in
      List.for_all
        (fun m ->
          match Datalink.Alt_bit.send s m with Ok () -> true | Error _ -> false)
        sent
      &&
      let delivered =
        List.filter (fun m -> m > 0) (Datalink.Alt_bit.delivered s)
      in
      let firsts =
        List.fold_left
          (fun acc m -> if List.mem m acc then acc else acc @ [ m ])
          [] delivered
      in
      let is_subsequence sub full =
        let rec scan sub full =
          match (sub, full) with
          | [], _ -> true
          | _, [] -> false
          | x :: sub', y :: full' ->
            if x = y then scan sub' full' else scan sub full'
        in
        scan sub full
      in
      is_subsequence firsts sent
      && count - List.length firsts <= garbage + 2
      && (* stabilized suffix: the last two messages always arrive *)
      List.mem count firsts
      && List.mem (count - 1) firsts)

let prop_starvation_matches_closed_form =
  QCheck.Test.make
    ~name:"scripted starvation matches its closed-form prediction" ~count:40
    (QCheck.make
       QCheck.Gen.(
         let* f = int_range 1 2 in
         let* n = int_range ((2 * f) + 1) (9 * f) in
         return (n, f))
       ~print:(fun (n, f) -> Printf.sprintf "n=%d f=%d" n f))
    (fun (n, f) ->
      let o = Harness.Starvation.run ~n ~f () in
      o.Harness.Starvation.starved
      = Harness.Starvation.predicted_starvation ~n ~f ~sync:false)

let tests =
  [
    qcheck prop_swsr_atomic_always_atomic;
    qcheck prop_swsr_atomic_heavy_tail;
    qcheck prop_swsr_stabilizes_after_random_fault;
    qcheck prop_mwmr_atomic;
    qcheck prop_transport_exactly_once;
    qcheck prop_altbit_in_order;
    qcheck prop_starvation_matches_closed_form;
  ]
