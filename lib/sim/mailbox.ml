type 'm t = {
  queue : 'm Queue.t;
  mutable waiter : (int * ('m -> unit)) option;
  mutable next_token : int;
}

let create () = { queue = Queue.create (); waiter = None; next_token = 0 }

let push t m =
  match t.waiter with
  | Some (_, resume) ->
    t.waiter <- None;
    resume m
  | None -> Queue.push m t.queue

let install_waiter t resume =
  (match t.waiter with
  | Some _ -> invalid_arg "Mailbox: a fiber is already waiting"
  | None -> ());
  let token = t.next_token in
  t.next_token <- token + 1;
  t.waiter <- Some (token, resume);
  token

let recv t =
  if not (Queue.is_empty t.queue) then Queue.pop t.queue
  else
    Fiber.suspend ~label:"Mailbox.recv" (fun resume ->
        ignore (install_waiter t resume))

let recv_until ~engine ~deadline t =
  if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
  else
    Fiber.suspend ~label:"Mailbox.recv_until" (fun resume ->
        let settled = ref false in
        let token =
          install_waiter t (fun m ->
              settled := true;
              resume (Some m))
        in
        Engine.schedule_at engine deadline (fun () ->
            if not !settled then begin
              settled := true;
              (* Uninstall only our own waiter: the fiber may have moved on
                 to a later recv with a fresh waiter by the time this
                 (stale) timer fires. *)
              (match t.waiter with
              | Some (tok, _) when tok = token -> t.waiter <- None
              | Some _ | None -> ());
              resume None
            end))

let drain t =
  let rec loop acc =
    if Queue.is_empty t.queue then List.rev acc
    else loop (Queue.pop t.queue :: acc)
  in
  loop []

let to_list t = List.of_seq (Queue.to_seq t.queue)

let length t = Queue.length t.queue
