lib/registers/swsr_regular.ml: Collect List Messages Net Params Quorum Seqnum Sim
