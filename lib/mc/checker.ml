type verdict =
  | Clean
  | Violation of { kind : string; count : int; detail : string }

let verdict_kind = function
  | Clean -> "clean"
  | Violation { kind; _ } -> kind

let same_verdict a b = String.equal (verdict_kind a) (verdict_kind b)

let verdict_equal a b =
  match (a, b) with
  | Clean, Clean -> true
  | Violation a, Violation b ->
    String.equal a.kind b.kind && a.count = b.count
    && String.equal a.detail b.detail
  | _ -> false

let pp_verdict fmt = function
  | Clean -> Format.pp_print_string fmt "clean"
  | Violation { kind; count; detail } ->
    Format.fprintf fmt "%s x%d (%s)" kind count detail

(* ------------------------------------------------------------------ *)
(* Terminal-state oracle                                              *)

(* Mirrors the chaos campaign's stabilization semantics: the register
   condition is only guaranteed from the first write completed after a
   disturbance, so the history is cut at every corruption instant and each
   segment checked independently with a cutoff at its first write's
   response ("every quiescent suffix after the last corruption is
   legal").  A segment without a write is vacuous — nothing
   re-established the register. *)

let sub_history h ~lo ~hi =
  let sub = Oracles.History.create () in
  List.iter
    (fun (o : Oracles.History.op) ->
      let keep =
        match o.kind with
        | Oracles.History.Write -> true
        | Oracles.History.Read ->
          Sim.Vtime.to_int o.inv >= lo && Sim.Vtime.to_int o.resp < hi
      in
      if keep then
        Oracles.History.record sub ~proc:o.proc ~kind:o.kind ~inv:o.inv
          ~resp:o.resp ?ts:o.ts ~ok:o.ok o.value)
    (Oracles.History.ops h);
  sub

let cutoff_from h ~lo =
  Oracles.History.writes h
  |> List.find_opt (fun (o : Oracles.History.op) ->
         Sim.Vtime.to_int o.inv >= lo)
  |> Option.map (fun (o : Oracles.History.op) -> o.Oracles.History.resp)

let describe_read (o : Oracles.History.op) =
  Format.asprintf "%a" Oracles.History.pp_op o

let regularity_issues (r : Oracles.Regularity.report) =
  List.map
    (fun (v : Oracles.Regularity.violation) ->
      ("regularity", describe_read v.read))
    r.violations
  @
  if r.liveness_failures > 0 then
    [
      ( "liveness",
        Printf.sprintf "%d reads exhausted their budget" r.liveness_failures
      );
    ]
  else []

let sw_issues (r : Oracles.Atomicity.Sw.report) =
  regularity_issues r.regularity
  @ List.map
      (fun (i : Oracles.Atomicity.inversion) ->
        ("inversion", describe_read i.later_read))
      r.inversions
  @ List.map (fun m -> ("regularity", m)) r.malformed

let segments points =
  let bounds = 0 :: points in
  let rec go = function
    | [] -> []
    | [ lo ] -> [ (lo, max_int) ]
    | lo :: (hi :: _ as rest) -> (lo, hi) :: go rest
  in
  go bounds

let segment_issues (cfg : Config.t) h points =
  segments points
  |> List.concat_map (fun (lo, hi) ->
         let sub = sub_history h ~lo ~hi in
         match cutoff_from sub ~lo with
         | None -> []
         | Some cutoff -> (
           let atomic_check () =
             sw_issues (Oracles.Atomicity.Sw.check ~cutoff sub)
           in
           match (cfg.family, cfg.oracle) with
           | Config.Regular, Config.Family_default ->
             regularity_issues (Oracles.Regularity.check ~cutoff sub)
           | Config.Regular, Config.Atomic_oracle -> atomic_check ()
           | Config.Atomic, _ -> atomic_check ()
           | Config.Mwmr, _ -> []))

(* MWMR timestamps are global, so only the suffix after the last
   disturbance is checked (see the chaos campaign for the rationale). *)
let mwmr_issues (cfg : Config.t) h points =
  match cfg.family with
  | Config.Regular | Config.Atomic -> []
  | Config.Mwmr -> (
    let lo = match List.rev points with [] -> 0 | p :: _ -> p in
    match cutoff_from h ~lo with
    | None -> []
    | Some cutoff ->
      Oracles.Atomicity.Mw.check ~cutoff ~tie:`Min_index h
      |> fun (r : Oracles.Atomicity.Mw.report) ->
      List.map
        (fun (v : Oracles.Atomicity.Mw.violation) ->
          ("mw", v.kind ^ ": " ^ v.detail))
        r.violations)

let verdict_of_issues issues =
  match issues with
  | [] -> Clean
  | _ ->
    let severity = function "liveness" -> 1 | _ -> 0 in
    let kind, detail =
      List.stable_sort
        (fun (a, _) (b, _) -> Int.compare (severity a) (severity b))
        issues
      |> List.hd (* lint: allow R4 -- issues is non-empty in this branch *)
    in
    let count =
      List.length (List.filter (fun (k, _) -> String.equal k kind) issues)
    in
    Violation { kind; count; detail }

let terminal_verdict sys =
  let stuck = Sys.stuck sys in
  if stuck <> [] then
    Violation
      {
        kind = "stuck";
        count = List.length stuck;
        detail = "fibers never finished: " ^ String.concat ", " stuck;
      }
  else
    let cfg = Sys.config sys in
    let h = Sys.history sys in
    let points = Sys.corrupt_times sys in
    verdict_of_issues (segment_issues cfg h points @ mwmr_issues cfg h points)

(* ------------------------------------------------------------------ *)
(* Search                                                             *)

type reduction = No_reduction | Sleep_sets

let reduction_to_string = function
  | No_reduction -> "none"
  | Sleep_sets -> "sleep-sets"

type budgets = { max_states : int; max_depth : int }

let default_budgets = { max_states = 2_000_000; max_depth = 10_000 }

type stats = {
  mutable states : int;  (** nodes expanded *)
  mutable transitions : int;
  mutable terminals : int;
  mutable revisits : int;  (** pruned by the visited set *)
  mutable sleep_skips : int;  (** moves skipped by sleep sets *)
  mutable sym_skips : int;  (** moves skipped as symmetric to a sibling *)
  mutable replays : int;  (** prefix re-executions (no snapshots) *)
  mutable off_target : int;  (** violations ignored by a [target] filter *)
  mutable fp_collisions : int;
      (** distinct digests interned under an already-occupied 8-byte key *)
  mutable peak_visited : int;
  mutable max_depth_seen : int;
  mutable truncated : bool;  (** some budget cut the search *)
}

let fresh_stats () =
  {
    states = 0;
    transitions = 0;
    terminals = 0;
    revisits = 0;
    sleep_skips = 0;
    sym_skips = 0;
    replays = 0;
    off_target = 0;
    fp_collisions = 0;
    peak_visited = 0;
    max_depth_seen = 0;
    truncated = false;
  }

type outcome = {
  verdict : verdict;
  exhaustive : bool;
      (** [true] iff no state/depth budget truncated the search: a [Clean]
          exhaustive outcome is a proof over the bounded configuration *)
  stats : stats;
  trace : Sys.move list option;  (** violating trace, execution order *)
}

exception Found of Sys.move list * verdict

exception Out_of_states

type ctx = {
  cfg : Config.t;
  budgets : budgets;
  reduction : reduction;
  use_visited : bool;
  (* [Some rng]: shuffle sibling order at every node (deterministically,
     from the seed).  Sleep sets, subsumption and symmetry pruning are all
     order-agnostic, so any order explores the same reduced state space —
     but a different order reaches different corners of it first, which is
     what a bug hunt under a state budget needs. *)
  rng : Random.State.t option;
  (* Violations whose kind the caller is not hunting are recorded in the
     stats but do not stop the search. *)
  keep : verdict -> bool;
  (* The visited table, two layers deep.

     Keying: states are interned under a 64-bit structural key folded
     from the first 8 bytes of the raw 16-byte canonical digest.  Int
     keys hash in constant time (no walk over a 32-char hex string) and
     halve the per-entry key memory; each bucket keeps the full raw
     digests so a key collision is verified against the whole digest
     before two states are ever merged.

     Value: the residual sleep set (sorted, canonical coordinates) — the
     enabled moves no visit has explored from this state yet.  The first
     visit stores its arrival sleep (it explores everything else); a
     revisit with sleep [s] only needs the residual minus [s] — every
     other move was either explored by an earlier visit or is covered by
     a sibling of the current path — and afterwards the residual shrinks
     to its intersection with [s] (Godefroid's sleep sets combined with
     state matching).  A revisit with an empty difference is pruned
     outright, which subsumes the classic "some stored sleep is a subset
     of ours" condition. *)
  visited : (int, (string * Sys.move list) list) Hashtbl.t;
  mutable visited_entries : int;
  stats : stats;
  (* Flight recorder, sampled on the deterministic state counter. *)
  recorder : Obs.Profile.t option;
  mutable sys : Sys.t;
}

let sorted_moves l = List.sort_uniq Sys.compare_move l

let shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let fp_key raw = Int64.to_int (String.get_int64_le raw 0)

let fp_find ctx raw =
  match Hashtbl.find_opt ctx.visited (fp_key raw) with
  | None -> None
  | Some bucket ->
    List.find_map
      (fun (r, residual) ->
        if String.equal r raw then Some residual else None)
      bucket

let fp_store ctx raw residual =
  let key = fp_key raw in
  let bucket =
    match Hashtbl.find_opt ctx.visited key with None -> [] | Some b -> b
  in
  let fresh = not (List.exists (fun (r, _) -> String.equal r raw) bucket) in
  let bucket =
    if fresh then (raw, residual) :: bucket
    else
      List.map
        (fun (r, v) -> if String.equal r raw then (r, residual) else (r, v))
        bucket
  in
  Hashtbl.replace ctx.visited key bucket;
  if fresh then begin
    if List.length bucket > 1 then
      ctx.stats.fp_collisions <- ctx.stats.fp_collisions + 1;
    ctx.visited_entries <- ctx.visited_entries + 1;
    if ctx.visited_entries > ctx.stats.peak_visited then
      ctx.stats.peak_visited <- ctx.visited_entries
  end

(* The expansion plan for a state arrival: explore every non-slept move
   (first visit), only the canonical moves listed (revisit with a
   non-empty residual), or nothing (revisit already covered). *)
type expansion = Expand_all | Expand_only of Sys.move list | Covered

let plan_expansion ctx fp sleep_canon =
  if not ctx.use_visited then Expand_all
  else
    match fp_find ctx fp with
    | None ->
      fp_store ctx fp sleep_canon;
      Expand_all
    | Some residual ->
      ctx.stats.revisits <- ctx.stats.revisits + 1;
      let need =
        List.filter
          (fun m -> not (List.exists (Sys.move_equal m) sleep_canon))
          residual
      in
      if need = [] then Covered
      else begin
        fp_store ctx fp
          (List.filter
             (fun m -> List.exists (Sys.move_equal m) sleep_canon)
             residual);
        Expand_only need
      end

let replay_prefix ctx prefix_rev =
  ctx.stats.replays <- ctx.stats.replays + 1;
  let sys = Sys.create ctx.cfg in
  List.iter (fun mv -> ignore (Sys.apply sys mv)) (List.rev prefix_rev);
  ctx.sys <- sys

(* One flight-recorder snapshot: the full stats record plus the live
   frontier depth and visited-set occupancy at the sampled state. *)
let profile_fields ctx ~depth =
  let s = ctx.stats in
  [
    ("states", Obs.Json.Int s.states);
    ("transitions", Obs.Json.Int s.transitions);
    ("depth", Obs.Json.Int depth);
    ("max_depth", Obs.Json.Int s.max_depth_seen);
    ("visited", Obs.Json.Int ctx.visited_entries);
    ("revisits", Obs.Json.Int s.revisits);
    ("sleep_skips", Obs.Json.Int s.sleep_skips);
    ("sym_skips", Obs.Json.Int s.sym_skips);
    ("fp_collisions", Obs.Json.Int s.fp_collisions);
    ("replays", Obs.Json.Int s.replays);
    ("terminals", Obs.Json.Int s.terminals);
  ]

let rec explore ctx ~prefix_rev ~depth ~sleep =
  if ctx.stats.states >= ctx.budgets.max_states then begin
    ctx.stats.truncated <- true;
    raise Out_of_states
  end;
  ctx.stats.states <- ctx.stats.states + 1;
  if depth > ctx.stats.max_depth_seen then ctx.stats.max_depth_seen <- depth;
  (match ctx.recorder with
  | None -> ()
  | Some r ->
    Obs.Profile.sample r ~tick:ctx.stats.states (fun () ->
        profile_fields ctx ~depth));
  let moves = Sys.enabled ctx.sys in
  if moves = [] then begin
    ctx.stats.terminals <- ctx.stats.terminals + 1;
    match terminal_verdict ctx.sys with
    | Clean -> ()
    | Violation _ as v ->
      if ctx.keep v then raise (Found (List.rev prefix_rev, v))
      else ctx.stats.off_target <- ctx.stats.off_target + 1
  end
  else if depth >= ctx.budgets.max_depth then ctx.stats.truncated <- true
  else begin
    (* Sleep sets are compared across states the fingerprint merged, and
       the fingerprint canonicalizes server identities (symmetry
       reduction) — so the comparison must happen in the same canonical
       coordinates, via the renaming the fingerprint chose. *)
    let need_rep = ctx.reduction = Sleep_sets in
    let fp, ren, rep =
      if ctx.use_visited || need_rep then Sys.fingerprint_raw_ex ctx.sys
      else ("", Fun.id, Fun.id)
    in
    let sleep_canon =
      sorted_moves (List.map (Sys.canonical_move ren) sleep)
    in
    match plan_expansion ctx fp sleep_canon with
    | Covered -> ()
    | (Expand_all | Expand_only _) as plan ->
      (* Symmetric-move pruning: deliveries aimed at servers of the same
         automorphism class have isomorphic successors; keep one per
         class. *)
      let moves =
        if not need_rep then moves
        else begin
          let seen = ref [] in
          List.filter
            (fun mv ->
              let r = Sys.canonical_move rep mv in
              if List.exists (Sys.move_equal r) !seen then begin
                ctx.stats.sym_skips <- ctx.stats.sym_skips + 1;
                false
              end
              else begin
                seen := r :: !seen;
                true
              end)
            moves
        end
      in
      (* On a partial re-expansion, moves outside the residual were
         explored from this state by an earlier visit; they are exactly
         as covered as a slept move, and they must sleep (not vanish) so
         the children explored now inherit them through the independence
         filter. *)
      let moves, covered =
        match plan with
        | Expand_all | Covered -> (moves, [])
        | Expand_only need ->
          List.partition
            (fun mv ->
              List.exists
                (Sys.move_equal (Sys.canonical_move ren mv))
                need)
            moves
      in
      ctx.stats.sleep_skips <- ctx.stats.sleep_skips + List.length covered;
      let moves =
        match ctx.rng with None -> moves | Some st -> shuffle st moves
      in
      let sleep = ref (covered @ sleep) in
      (* The children to explore are known up front: enabled moves are
         distinct, so sibling exploration can never put a later
         *candidate* to sleep (only child sleeps grow as siblings are
         explored).  Knowing the list lets the node keep its own live
         state for the LAST child instead of donating it to the first:
         earlier children run on replicas rebuilt by replay while the
         entry state waits untouched, and the final child consumes it
         with no replay at all.  Each node still pays exactly
         [children - 1] replays — what changes is that no replay is ever
         issued against a state the node still needs, which is what lets
         the replica for child [i] be built *before* child [i-1]'s
         subtree has been torn through the live state. *)
      let to_explore =
        List.filter
          (fun mv -> not (List.exists (Sys.move_equal mv) !sleep))
          moves
      in
      ctx.stats.sleep_skips <-
        ctx.stats.sleep_skips
        + (List.length moves - List.length to_explore);
      let last = List.length to_explore - 1 in
      let entry = ctx.sys in
      List.iteri
        (fun i mv ->
          if i < last then replay_prefix ctx prefix_rev
          else ctx.sys <- entry;
          ignore (Sys.apply ctx.sys mv);
          ctx.stats.transitions <- ctx.stats.transitions + 1;
          let child_sleep =
            match ctx.reduction with
            | Sleep_sets -> List.filter (Sys.independent mv) !sleep
            | No_reduction -> []
          in
          explore ctx
            ~prefix_rev:(mv :: prefix_rev)
            ~depth:(depth + 1) ~sleep:child_sleep;
          match ctx.reduction with
          | Sleep_sets -> sleep := mv :: !sleep
          | No_reduction -> ())
        to_explore
  end

let search ?(budgets = default_budgets) ?(reduction = Sleep_sets)
    ?(use_visited = true) ?seed ?target ?recorder (cfg : Config.t) =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mc.Checker.search: " ^ e));
  let ctx =
    {
      cfg;
      budgets;
      reduction;
      use_visited;
      rng = Option.map (fun s -> Random.State.make [| s |]) seed;
      keep =
        (match target with
        | None -> fun _ -> true
        | Some kind -> fun v -> String.equal (verdict_kind v) kind);
      visited = Hashtbl.create 4096;
      visited_entries = 0;
      stats = fresh_stats ();
      recorder;
      sys = Sys.create cfg;
    }
  in
  let finish outcome =
    (match ctx.recorder with
    | None -> ()
    | Some r ->
      Obs.Profile.sample ~force:true r ~tick:ctx.stats.states (fun () ->
          profile_fields ctx ~depth:ctx.stats.max_depth_seen));
    outcome
  in
  match explore ctx ~prefix_rev:[] ~depth:0 ~sleep:[] with
  | () ->
    finish
      {
        verdict = Clean;
        exhaustive = not ctx.stats.truncated;
        stats = ctx.stats;
        trace = None;
      }
  | exception Found (trace, v) ->
    finish
      {
        verdict = v;
        exhaustive = false;
        stats = ctx.stats;
        trace = Some trace;
      }
  | exception Out_of_states ->
    finish
      {
        verdict = Clean;
        exhaustive = false;
        stats = ctx.stats;
        trace = None;
      }

(* ------------------------------------------------------------------ *)
(* Parallel swarm                                                     *)

(* Seed offset between portfolio slices; a large prime so slices drawn
   from nearby user seeds never collide. *)
let portfolio_stride = 1_000_003

let merge_stats outcomes =
  let agg = fresh_stats () in
  List.iter
    (fun (o : outcome) ->
      let s = o.stats in
      agg.states <- agg.states + s.states;
      agg.transitions <- agg.transitions + s.transitions;
      agg.terminals <- agg.terminals + s.terminals;
      agg.revisits <- agg.revisits + s.revisits;
      agg.sleep_skips <- agg.sleep_skips + s.sleep_skips;
      agg.sym_skips <- agg.sym_skips + s.sym_skips;
      agg.replays <- agg.replays + s.replays;
      agg.off_target <- agg.off_target + s.off_target;
      agg.fp_collisions <- agg.fp_collisions + s.fp_collisions;
      agg.peak_visited <- agg.peak_visited + s.peak_visited;
      if s.max_depth_seen > agg.max_depth_seen then
        agg.max_depth_seen <- s.max_depth_seen)
    outcomes;
  agg.truncated <-
    List.for_all (fun (o : outcome) -> o.stats.truncated) outcomes;
  agg

let search_parallel ?budgets ?reduction ?use_visited ?seed ?target ?recorder
    ?(domains = 1) cfg =
  if domains < 1 then
    invalid_arg "Mc.Checker.search_parallel: domains must be >= 1";
  if domains = 1 then
    search ?budgets ?reduction ?use_visited ?seed ?target ?recorder cfg
  else begin
    (match Config.validate cfg with
    | Ok () -> ()
    | Error e -> invalid_arg ("Mc.Checker.search_parallel: " ^ e));
    (* Slice 0 is the caller's exact sequential search (same seed, or
       unseeded deterministic order); slices 1..K-1 are order-seed
       portfolio members.  Every slice runs to completion — an early-stop
       broadcast would make the merged result depend on which domain
       happened to finish first — and the merge is a pure fold in slice
       order, so the reported verdict, counterexample and aggregate stats
       are a function of the inputs alone. *)
    let slice_seed i =
      if i = 0 then seed
      else
        Some
          (match seed with
          | None -> portfolio_stride * i
          | Some s -> s + (portfolio_stride * i))
    in
    (* A recorder is single-domain mutable state: give every slice its
       own branch and fold the branches back into the caller's recorder
       after the join (Domain.join orders the slice writes before the
       merge). *)
    let branches =
      match recorder with
      | None -> [||]
      | Some r -> Array.init domains (fun _ -> Obs.Profile.branch r)
    in
    let outcomes =
      Parallel.Pool.map ~domains
        (fun i ->
          let recorder =
            if Array.length branches = 0 then None else Some branches.(i)
          in
          search ?budgets ?reduction ?use_visited ?seed:(slice_seed i)
            ?target ?recorder cfg)
        (List.init domains Fun.id)
    in
    let agg = merge_stats outcomes in
    (match recorder with
    | None -> ()
    | Some r ->
      let per_slice =
        List.mapi
          (fun i (o : outcome) ->
            let share =
              if agg.states = 0 then 0.
              else float_of_int o.stats.states /. float_of_int agg.states
            in
            Obs.Json.Obj
              [
                ("slice", Obs.Json.Int i);
                ("states", Obs.Json.Int o.stats.states);
                ("transitions", Obs.Json.Int o.stats.transitions);
                ("utilization", Obs.Json.Float share);
                ( "samples",
                  Obs.Json.List (Obs.Profile.sample_jsons branches.(i)) );
              ])
          outcomes
      in
      Obs.Profile.add_section r "domains" (Obs.Json.List per_slice);
      Obs.Profile.sample ~force:true r ~tick:agg.states (fun () ->
          [
            ("states", Obs.Json.Int agg.states);
            ("transitions", Obs.Json.Int agg.transitions);
            ("depth", Obs.Json.Int agg.max_depth_seen);
            ("max_depth", Obs.Json.Int agg.max_depth_seen);
            ("visited", Obs.Json.Int agg.peak_visited);
            ("revisits", Obs.Json.Int agg.revisits);
            ("sleep_skips", Obs.Json.Int agg.sleep_skips);
            ("sym_skips", Obs.Json.Int agg.sym_skips);
            ("fp_collisions", Obs.Json.Int agg.fp_collisions);
            ("replays", Obs.Json.Int agg.replays);
            ("terminals", Obs.Json.Int agg.terminals);
          ]));
    match
      List.find_opt
        (fun (o : outcome) ->
          match o.verdict with Violation _ -> true | Clean -> false)
        outcomes
    with
    | Some winner ->
      (* Lowest slice index wins: if the sequential search (slice 0)
         finds a violation, the swarm reports that identical trace. *)
      { verdict = winner.verdict; exhaustive = false; stats = agg;
        trace = winner.trace }
    | None ->
      {
        verdict = Clean;
        (* One slice covering the whole bounded space within budget is a
           proof, regardless of what the others managed. *)
        exhaustive = List.exists (fun (o : outcome) -> o.exhaustive) outcomes;
        stats = agg;
        trace = None;
      }
  end

(* ------------------------------------------------------------------ *)
(* Deterministic completion, shrinking                                *)

let completion_fuel = 200_000

(* Run the system to a terminal state by always firing the first enabled
   non-corruption move.  Deterministic; terminates because the workload is
   bounded and corruption moves (which could re-disturb forever) are never
   chosen. *)
let canonical_completion sys =
  let rec loop acc fuel =
    if fuel = 0 then List.rev acc
    else
      match
        List.find_opt
          (function Sys.Corrupt _ -> false | _ -> true)
          (Sys.enabled sys)
      with
      | None -> List.rev acc
      | Some mv ->
        ignore (Sys.apply sys mv);
        loop (mv :: acc) (fuel - 1)
  in
  loop [] completion_fuel

(* Execute a forced move prefix (leniently: moves invalidated by earlier
   edits are skipped) and then complete canonically.  Returns the system,
   the moves that actually fired, and the terminal verdict. *)
let run_forced cfg prefix =
  let sys = Sys.create cfg in
  let fired =
    List.filter (fun mv -> Sys.apply ~strict:false sys mv) prefix
  in
  let tail = canonical_completion sys in
  (sys, fired @ tail, terminal_verdict sys)

let take k l = List.filteri (fun i _ -> i < k) l

let shrink ?(log = ignore) cfg trace verdict =
  let runs = ref 0 in
  let try_prefix prefix =
    incr runs;
    let _, fired, v = run_forced cfg prefix in
    if same_verdict v verdict then Some (fired, v) else None
  in
  (* Phase 1: shortest forced prefix whose canonical completion still
     violates.  Linear scan from the empty prefix: each candidate run is a
     single bounded execution, so this is cheap even for long traces. *)
  let len = List.length trace in
  let rec first_k k =
    if k > len then None
    else
      match try_prefix (take k trace) with
      | Some _ -> Some k
      | None -> first_k (k + 1)
  in
  let kept =
    match first_k 0 with
    | Some k ->
      log (Printf.sprintf "shrink: forced prefix %d -> %d moves" len k);
      take k trace
    | None ->
      (* The canonical completion of the full trace may diverge from the
         original verdict (the violation lived in the exact suffix);
         fall back to the unshrunk trace. *)
      log "shrink: no forced prefix reproduces; keeping full trace";
      trace
  in
  (* Phase 2: drop corruption moves that are not needed. *)
  let drop_one kept i =
    match List.nth kept i with
    | Sys.Corrupt _ -> (
      let candidate = List.filteri (fun j _ -> j <> i) kept in
      match try_prefix candidate with
      | Some _ ->
        log "shrink: dropped a corruption move";
        candidate
      | None -> kept)
    | _ -> kept
    | exception _ -> kept
  in
  let kept =
    List.fold_left drop_one kept
      (List.rev (List.init (List.length kept) Fun.id))
  in
  (* Re-execute and record the complete concrete move list: the artifact
     must replay strictly, move for move. *)
  let _, fired, v = run_forced cfg kept in
  (fired, v, !runs + 1)

(* ------------------------------------------------------------------ *)
(* Counterexample artifacts                                           *)

let cex_schema = "stabreg/mc-cex/v1"

type cex = {
  config : Config.t;
  trace : Sys.move list;  (** complete, strict-replayable *)
  verdict : verdict;
  states : int;  (** states expanded when the violation was found *)
  digest : string;  (** terminal-state fingerprint *)
}

let move_to_json = function
  | Sys.Deliver label ->
    Obs.Json.Obj
      [ ("move", Obs.Json.Str "deliver"); ("label", Obs.Json.Str label) ]
  | Sys.Tick i ->
    Obs.Json.Obj [ ("move", Obs.Json.Str "tick"); ("index", Obs.Json.Int i) ]
  | Sys.Corrupt i ->
    Obs.Json.Obj [ ("move", Obs.Json.Str "corrupt"); ("item", Obs.Json.Int i) ]

let verdict_to_json = function
  | Clean -> Obs.Json.Obj [ ("kind", Obs.Json.Str "clean") ]
  | Violation { kind; count; detail } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str kind);
        ("count", Obs.Json.Int count);
        ("detail", Obs.Json.Str detail);
      ]

let cex_to_json c =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str cex_schema);
      ("config", Config.to_json c.config);
      ("trace", Obs.Json.List (List.map move_to_json c.trace));
      ("verdict", verdict_to_json c.verdict);
      ("states", Obs.Json.Int c.states);
      ("digest", Obs.Json.Str c.digest);
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_field ctx key j =
  match Obs.Json.member key j with
  | Some v -> (
    match Obs.Json.to_string_opt v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "%s.%s: expected a string" ctx key))
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let int_field ctx key j =
  match Obs.Json.member key j with
  | Some v -> (
    match Obs.Json.to_int_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s.%s: expected an integer" ctx key))
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx key)

let move_of_json j =
  let* kind = str_field "move" "move" j in
  match kind with
  | "deliver" ->
    let* label = str_field "move" "label" j in
    Ok (Sys.Deliver label)
  | "tick" ->
    let* i = int_field "move" "index" j in
    Ok (Sys.Tick i)
  | "corrupt" ->
    let* i = int_field "move" "item" j in
    Ok (Sys.Corrupt i)
  | s -> Error (Printf.sprintf "move: unknown kind %S" s)

let verdict_of_json j =
  let* kind = str_field "verdict" "kind" j in
  if String.equal kind "clean" then Ok Clean
  else
    let* count = int_field "verdict" "count" j in
    let* detail = str_field "verdict" "detail" j in
    Ok (Violation { kind; count; detail })

let trace_of_json ctx j =
  match Obs.Json.member "trace" j with
  | Some t -> (
    match Obs.Json.to_list_opt t with
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* mv = move_of_json item in
          Ok (mv :: acc))
        (Ok []) items
      |> Result.map List.rev
    | None -> Error (ctx ^ ".trace: expected a list"))
  | None -> Error (ctx ^ ": missing field \"trace\"")

let cex_of_json j =
  let* schema = str_field "cex" "schema" j in
  if not (String.equal schema cex_schema) then
    Error
      (Printf.sprintf "unsupported cex schema %S (want %S)" schema cex_schema)
  else
    let* config =
      match Obs.Json.member "config" j with
      | Some c -> Config.of_json c
      | None -> Error "cex: missing field \"config\""
    in
    let* trace = trace_of_json "cex" j in
    let* verdict =
      match Obs.Json.member "verdict" j with
      | Some v -> verdict_of_json v
      | None -> Error "cex: missing field \"verdict\""
    in
    let* states = int_field "cex" "states" j in
    let* digest = str_field "cex" "digest" j in
    Ok { config; trace; verdict; states; digest }

let guide_schema = "stabreg/mc-guide/v1"

(* A guide file is a cex without the outcome fields: just a config and a
   schedule of moves to force.  A full cex artifact is accepted too (its
   recorded outcome is ignored — the schedule is re-judged from scratch). *)
let guide_of_json j =
  let* schema = str_field "guide" "schema" j in
  if
    not
      (String.equal schema guide_schema || String.equal schema cex_schema)
  then
    Error
      (Printf.sprintf "unsupported guide schema %S (want %S or %S)" schema
         guide_schema cex_schema)
  else
    let* config =
      match Obs.Json.member "config" j with
      | Some c -> Config.of_json c
      | None -> Error "guide: missing field \"config\""
    in
    let* trace = trace_of_json "guide" j in
    Ok (config, trace)

(* Strict bit-for-bit replay: every recorded move must fire, the terminal
   verdict must be structurally equal, and the terminal fingerprint must
   match the recorded digest. *)
let replay (c : cex) =
  let sys = Sys.create c.config in
  match
    List.iteri
      (fun i mv ->
        if not (Sys.apply ~strict:false sys mv) then
          failwith
            (Printf.sprintf "move %d (%s) did not apply" i
               (Sys.move_to_string mv)))
      c.trace
  with
  | exception Failure msg -> Error msg
  | () ->
    let v = terminal_verdict sys in
    let digest = Sys.fingerprint sys in
    if not (verdict_equal v c.verdict) then
      Error
        (Format.asprintf "replay verdict %a differs from recorded %a"
           pp_verdict v pp_verdict c.verdict)
    else if not (String.equal digest c.digest) then
      Error
        (Printf.sprintf "replay digest %s differs from recorded %s" digest
           c.digest)
    else Ok v

(* ------------------------------------------------------------------ *)
(* One-call drivers: search (or run a guided schedule), then shrink the
   violation into a cex *)

type run = { outcome : outcome; cex : cex option; shrink_runs : int }

let package ~shrink_violations ~log cfg (outcome : outcome) =
  match (outcome.verdict, outcome.trace) with
  | Clean, _ | _, None -> { outcome; cex = None; shrink_runs = 0 }
  | (Violation _ as v), Some trace ->
    let trace, verdict, shrink_runs =
      if shrink_violations then shrink ~log cfg trace v
      else
        (* still normalize through a strict re-execution so the artifact
           records its own digest *)
        (trace, v, 0)
    in
    let sys = Sys.create cfg in
    List.iter (fun mv -> ignore (Sys.apply sys mv)) trace;
    let digest = Sys.fingerprint sys in
    let cex =
      { config = cfg; trace; verdict; states = outcome.stats.states; digest }
    in
    { outcome = { outcome with verdict }; cex = Some cex; shrink_runs }

let check ?budgets ?reduction ?use_visited ?seed ?target ?recorder ?domains
    ?(shrink_violations = true) ?(log = ignore) cfg =
  let outcome =
    search_parallel ?budgets ?reduction ?use_visited ?seed ?target ?recorder
      ?domains cfg
  in
  package ~shrink_violations ~log cfg outcome

let guided ?(shrink_violations = true) ?(log = ignore) cfg schedule =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mc.Checker.guided: " ^ e));
  let _, fired, verdict = run_forced cfg schedule in
  let stats = fresh_stats () in
  stats.replays <- 1;
  stats.terminals <- 1;
  stats.max_depth_seen <- List.length fired;
  package ~shrink_violations ~log cfg
    { verdict; exhaustive = false; stats; trace = Some fired }
