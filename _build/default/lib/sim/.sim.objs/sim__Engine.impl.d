lib/sim/engine.ml: Heap Int Rng Trace Vtime
