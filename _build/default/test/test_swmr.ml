open Util
open Registers

let setup ?(seed = 7) ?(readers = 3) () =
  let scn = async_scenario ~seed () in
  let w =
    Swmr.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~base_inst:0
      ~readers ()
  in
  let rs =
    Array.init readers (fun j ->
        Swmr.reader ~net:scn.Harness.Scenario.net ~client_id:(200 + j)
          ~base_inst:0 ~reader_index:j ())
  in
  (scn, w, rs)

let test_all_readers_see_write () =
  let scn, w, rs = setup () in
  let got = Array.make 3 None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          Swmr.write w (int_value 5);
          Array.iteri (fun j r -> got.(j) <- Swmr.read r) rs );
    ]
  ;
  Array.iteri
    (fun j v ->
      Alcotest.(check (option value))
        (Printf.sprintf "reader %d" j)
        (Some (int_value 5))
        v)
    got

let test_readers_are_independent_instances () =
  let scn, w, _rs = setup () in
  run_fiber scn "w" (fun () -> Swmr.write w (int_value 1));
  check_int "one instance per reader" 3 (Array.length (Swmr.copies w))

let test_per_reader_atomicity_under_concurrency () =
  let scn, w, rs = setup ~seed:11 () in
  (* Each reader gets its own history so atomicity is checked per reader
     (the §5.1 composition guarantees per-reader atomicity). *)
  let histories = Array.map (fun _ -> Oracles.History.create ()) rs in
  let writer_history = Oracles.History.create () in
  let jobs =
    ( "writer",
      fun () ->
        let rng = Harness.Scenario.split_rng scn in
        for k = 1 to 20 do
          let v = Harness.Workload.value_for ~writer:0 k in
          let inv = Harness.Scenario.now scn in
          Swmr.write w v;
          let resp = Harness.Scenario.now scn in
          Oracles.History.record writer_history ~proc:"writer"
            ~kind:Oracles.History.Write ~inv ~resp v;
          Harness.Scenario.sleep scn (Sim.Rng.int_in rng 0 10)
        done )
    :: (Array.to_list
          (Array.mapi
             (fun j r ->
               ( Printf.sprintf "reader%d" j,
                 fun () ->
                   let rng = Harness.Scenario.split_rng scn in
                   for _ = 1 to 15 do
                     let inv = Harness.Scenario.now scn in
                     let v = Swmr.read r in
                     let resp = Harness.Scenario.now scn in
                     (match v with
                     | Some v ->
                       Oracles.History.record histories.(j)
                         ~proc:(Printf.sprintf "reader%d" j)
                         ~kind:Oracles.History.Read ~inv ~resp v
                     | None -> Alcotest.fail "read budget exhausted");
                     Harness.Scenario.sleep scn (Sim.Rng.int_in rng 0 10)
                   done ))
             rs))
  in
  run_fibers scn jobs;
  let cutoff =
    match Oracles.History.writes writer_history with
    | w :: _ -> w.Oracles.History.resp
    | [] -> Alcotest.fail "no writes"
  in
  Array.iteri
    (fun j h ->
      (* Merge this reader's reads with the writer's writes. *)
      let merged = Oracles.History.create () in
      List.iter
        (fun (o : Oracles.History.op) ->
          Oracles.History.record merged ~proc:o.proc ~kind:o.kind ~inv:o.inv
            ~resp:o.resp ?ts:o.ts ~ok:o.ok o.value)
        (Oracles.History.ops writer_history @ Oracles.History.ops h);
      let report = Oracles.Atomicity.Sw.check ~cutoff merged in
      if not (Oracles.Atomicity.Sw.is_clean report) then
        Alcotest.failf "reader %d: %a" j Oracles.Atomicity.Sw.pp report)
    histories

let test_with_byzantine () =
  let scn, w, rs = setup ~seed:12 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 4
    Byzantine.Behavior.garbage;
  let got = Array.make 3 None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          Swmr.write w (int_value 77);
          Array.iteri (fun j r -> got.(j) <- Swmr.read r) rs );
    ];
  Array.iteri
    (fun j v ->
      Alcotest.(check (option value))
        (Printf.sprintf "reader %d" j)
        (Some (int_value 77))
        v)
    got

let test_single_reader_degenerates_to_swsr () =
  let scn, w, rs = setup ~readers:1 () in
  let got = ref None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          Swmr.write w (int_value 3);
          got := Swmr.read rs.(0) );
    ];
  Alcotest.(check (option value)) "single reader" (Some (int_value 3)) !got

(* --- the §5.1 cross-reader gap and the write-back extension (E13) --- *)

let test_cross_reader_inversion_scripted () =
  let o = Harness.Swmr_inversion.run `Paper in
  Alcotest.(check (option value)) "reader 0 saw the new value"
    (Some (int_value 2)) o.Harness.Swmr_inversion.read_r0;
  Alcotest.(check (option value)) "later reader 1 regressed"
    (Some (int_value 1)) o.Harness.Swmr_inversion.read_r1;
  check_true "cross-reader inversion exhibited" o.Harness.Swmr_inversion.inversion

let test_write_back_eliminates_inversion () =
  let o = Harness.Swmr_inversion.run `Write_back in
  Alcotest.(check (option value)) "reader 0" (Some (int_value 2))
    o.Harness.Swmr_inversion.read_r0;
  Alcotest.(check (option value)) "reader 1 informed by write-back"
    (Some (int_value 2)) o.Harness.Swmr_inversion.read_r1;
  check_false "no inversion" o.Harness.Swmr_inversion.inversion

let wb_setup ?(seed = 7) ?(readers = 3) () =
  let scn = async_scenario ~seed () in
  let net = scn.Harness.Scenario.net in
  let w = Swmr_wb.writer ~net ~client_id:100 ~base_inst:0 ~readers () in
  let rs =
    Array.init readers (fun j ->
        Swmr_wb.reader ~net ~client_id:(200 + j) ~base_inst:0 ~reader_index:j
          ~readers ())
  in
  (scn, w, rs)

let test_wb_basic () =
  let scn, w, rs = wb_setup () in
  let got = Array.make 3 None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          Swmr_wb.write w (int_value 5);
          Array.iteri (fun j r -> got.(j) <- Swmr_wb.read r) rs );
    ];
  Array.iteri
    (fun j v ->
      Alcotest.(check (option value))
        (Printf.sprintf "wb reader %d" j)
        (Some (int_value 5))
        v)
    got;
  check_int "write-back writes counted" 2 (Swmr_wb.exchange_writes rs.(0))

let test_wb_byzantine () =
  let scn, w, rs = wb_setup ~seed:5 () in
  Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 2
    Byzantine.Behavior.garbage;
  let got = ref None in
  run_fibers scn
    [
      ( "all",
        fun () ->
          Swmr_wb.write w (int_value 9);
          got := Swmr_wb.read rs.(1) );
    ];
  Alcotest.(check (option value)) "tolerates byzantine" (Some (int_value 9)) !got

let test_wb_cross_reader_atomic_random () =
  (* Random concurrent workload with all reads merged into ONE history:
     the write-back variant must satisfy full (cross-reader) atomicity. *)
  for seed = 1 to 8 do
    let scn, w, rs = wb_setup ~seed ~readers:2 () in
    let h = scn.Harness.Scenario.history in
    let record proc kind inv v =
      Oracles.History.record h ~proc ~kind ~inv
        ~resp:(Harness.Scenario.now scn) v
    in
    run_fibers scn
      ([
         ( "writer",
           fun () ->
             for i = 1 to 15 do
               let inv = Harness.Scenario.now scn in
               Swmr_wb.write w (int_value i);
               record "writer" Oracles.History.Write inv (int_value i)
             done );
       ]
      @ (Array.to_list
           (Array.mapi
              (fun j r ->
                ( Printf.sprintf "r%d" j,
                  fun () ->
                    let rng = Harness.Scenario.split_rng scn in
                    for _ = 1 to 12 do
                      let inv = Harness.Scenario.now scn in
                      (match Swmr_wb.read r with
                      | Some v ->
                        record (Printf.sprintf "r%d" j) Oracles.History.Read
                          inv v
                      | None -> Alcotest.fail "read failed");
                      Harness.Scenario.sleep scn (Sim.Rng.int_in rng 0 15)
                    done ))
              rs)));
    let cutoff =
      match Oracles.History.writes h with
      | w :: _ -> w.Oracles.History.resp
      | [] -> Alcotest.fail "no writes"
    in
    let report = Oracles.Atomicity.Sw.check ~cutoff h in
    if not (Oracles.Atomicity.Sw.is_clean report) then
      Alcotest.failf "seed %d: %a" seed Oracles.Atomicity.Sw.pp report
  done

let tests =
  [
    case "all readers see the write" test_all_readers_see_write;
    case "per-reader instances" test_readers_are_independent_instances;
    case "per-reader atomicity" test_per_reader_atomicity_under_concurrency;
    case "byzantine server" test_with_byzantine;
    case "single reader degenerate" test_single_reader_degenerates_to_swsr;
    case "cross-reader inversion (scripted, E13)" test_cross_reader_inversion_scripted;
    case "write-back eliminates it (E13)" test_write_back_eliminates_inversion;
    case "write-back basic" test_wb_basic;
    case "write-back with byzantine" test_wb_byzantine;
    case "write-back cross-reader atomicity" test_wb_cross_reader_atomic_random;
  ]
