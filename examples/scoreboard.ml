(* A shared scoreboard with a deliberately tiny timestamp space.

     dune exec examples/scoreboard.exe

   Four players post scores through the MWMR register configured with a
   sequence bound of 8, so the bounded-epoch machinery of §5.2 visibly
   opens new epochs as the space exhausts — the situation the paper's
   2^64 bound pushes beyond any system lifetime, scaled down to watch it
   work. *)

open Registers

let () =
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let scn = Harness.Scenario.create ~seed:3 ~params () in
  let m = 4 in
  let cfg = { (Mwmr.default_config ~m) with seq_bound = 8 } in
  let players =
    Array.init m (fun i ->
        Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:i
          ~client_id:(20 + i))
  in
  (* One sequential referee fiber drives all posts, so the epoch structure
     always settles between operations (Lemma 16's precondition). *)
  let blips = ref 0 in
  ignore
    (Sim.Fiber.spawn ~name:"game" (fun () ->
         let rng = Harness.Scenario.split_rng scn in
         for round = 1 to 24 do
           let p = Sim.Rng.int rng m in
           let score = 100 + Sim.Rng.int rng 900 in
           let entry = Printf.sprintf "player%d:%d" p score in
           Mwmr.write players.(p) (Value.str entry);
           (match Mwmr.read players.((p + 1) mod m) with
           | Some v ->
             let shown = Value.to_string v in
             let fresh = Value.equal v (Value.str entry) in
             if not fresh then incr blips;
             Printf.printf "round %-2d  posted %-14s  board shows %-16s%s\n"
               round entry shown
               (if fresh then ""
                else " <- epoch-boundary blip (Fig 4, line 11)")
           | None -> assert false);
           Harness.Scenario.sleep scn 30
         done));
  Harness.Scenario.run scn;
  let epochs =
    Array.fold_left (fun acc p -> acc + Mwmr.epochs_opened p) 0 players
  in
  Printf.printf
    "\n24 posts with sequence bound 8: %d fresh epochs were opened\n\
     (next_epoch of §5.2).  A read that lands exactly on an exhausted\n\
     sequence space restamps the reader's own last entry (the paper's\n\
     line 11) — %d such blips above; with the real 2^64 bound the first\n\
     one would take longer than the system's lifetime to appear.\n"
    epochs !blips
