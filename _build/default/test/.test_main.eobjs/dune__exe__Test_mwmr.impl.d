test/test_mwmr.ml: Alcotest Array Byzantine Harness List Mwmr Oracles Printf Registers Sim Util
