(* Shared wiring for the experiment drivers. *)

open Registers

let async_params ~n ~f = Params.create_unchecked ~n ~f ~mode:Params.Async

let scenario ?(seed = 1) ?delay ~params () =
  Harness.Scenario.create ~seed ?delay ~params ()

(* Spawn jobs, run the engine, fail loudly if a fiber wedged. *)
let run_jobs scn jobs =
  let handles =
    List.map (fun (name, f) -> (name, Sim.Fiber.spawn ~name f)) jobs
  in
  Harness.Scenario.run scn;
  List.iter
    (fun (name, h) ->
      match Sim.Fiber.status h with
      | Sim.Fiber.Done -> ()
      | Sim.Fiber.Running ->
        failwith (Printf.sprintf "experiment fiber %s did not finish" name)
      | Sim.Fiber.Failed e -> raise e)
    handles

let value_str = function
  | Some v -> Value.to_string v
  | None -> "-"

let first_write_resp scn =
  match Oracles.History.writes scn.Harness.Scenario.history with
  | w :: _ -> Some w.Oracles.History.resp
  | [] -> None

let bool_str b = if b then "yes" else "no"

(* A standard concurrent writer/reader pair over a SWSR atomic register. *)
let atomic_pair scn =
  let net = scn.Harness.Scenario.net in
  let w = Swsr_atomic.writer ~net ~client_id:100 ~inst:0 () in
  let r = Swsr_atomic.reader ~net ~client_id:101 ~inst:0 () in
  (w, r)

let regular_pair scn =
  let net = scn.Harness.Scenario.net in
  let w = Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
  let r = Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
  (w, r)
