open Util

let test_queueing_order () =
  let mb = Sim.Mailbox.create () in
  Sim.Mailbox.push mb 1;
  Sim.Mailbox.push mb 2;
  check_int "queued" 2 (Sim.Mailbox.length mb);
  let got = ref [] in
  let _h =
    Sim.Fiber.spawn (fun () ->
        let first = Sim.Mailbox.recv mb in
        let second = Sim.Mailbox.recv mb in
        got := [ first; second ])
  in
  check_true "FIFO order" (!got = [ 1; 2 ])

let test_blocking_recv () =
  let mb = Sim.Mailbox.create () in
  let got = ref 0 in
  let h = Sim.Fiber.spawn (fun () -> got := Sim.Mailbox.recv mb) in
  check_true "blocked" (Sim.Fiber.status h = Sim.Fiber.Running);
  Sim.Mailbox.push mb 7;
  check_int "woken with value" 7 !got;
  check_true "done" (Sim.Fiber.status h = Sim.Fiber.Done)

let test_double_wait_rejected () =
  let mb = Sim.Mailbox.create () in
  let _h1 = Sim.Fiber.spawn (fun () -> ignore (Sim.Mailbox.recv mb)) in
  try
    ignore (Sim.Fiber.spawn (fun () -> ignore (Sim.Mailbox.recv mb)));
    Alcotest.fail "second waiter should be rejected"
  with Invalid_argument _ -> Sim.Mailbox.push mb 0

let test_recv_until_timeout () =
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  let mb = Sim.Mailbox.create () in
  let result = ref (Some 99) in
  run_engine_fiber e (fun () ->
      result :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 10) mb);
  check_true "timed out with None" (!result = None);
  check_int "time advanced to deadline" 10 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_recv_until_message_first () =
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  let mb = Sim.Mailbox.create () in
  Sim.Engine.schedule e ~delay:3 (fun () -> Sim.Mailbox.push mb 5);
  let result = ref None in
  run_engine_fiber e (fun () ->
      result :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 10) mb);
  check_true "message won the race" (!result = Some 5)

let test_recv_until_deadline_is_now () =
  (* Boundary: a deadline equal to the current instant still yields a
     timeout event at that same instant — the wait gives up without the
     clock moving, rather than blocking forever or raising. *)
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  Sim.Engine.schedule e ~delay:10 ignore;
  Sim.Engine.run e;
  check_int "clock at 10" 10 (Sim.Vtime.to_int (Sim.Engine.now e));
  let mb = Sim.Mailbox.create () in
  let result = ref (Some 99) in
  run_engine_fiber e (fun () ->
      result :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 10) mb);
  check_true "immediate timeout" (!result = None);
  check_int "clock unchanged" 10 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_recv_until_deadline_in_past () =
  (* Boundary: a deadline already behind the clock is clamped to "now"
     by the engine, so the wait times out at the current instant instead
     of dying in the heap with a stale timestamp. *)
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  Sim.Engine.schedule e ~delay:20 ignore;
  Sim.Engine.run e;
  let mb = Sim.Mailbox.create () in
  let result = ref (Some 99) in
  run_engine_fiber e (fun () ->
      result :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 5) mb);
  check_true "past deadline times out" (!result = None);
  check_int "clock did not rewind" 20 (Sim.Vtime.to_int (Sim.Engine.now e))

let test_recv_until_queued_message_beats_past_deadline () =
  (* Even with an expired deadline, an already-queued message wins: the
     fast path drains the queue before any timer is armed. *)
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  Sim.Engine.schedule e ~delay:20 ignore;
  Sim.Engine.run e;
  let mb = Sim.Mailbox.create () in
  Sim.Mailbox.push mb 42;
  let result = ref None in
  run_engine_fiber e (fun () ->
      result :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 5) mb);
  check_true "queued message delivered" (!result = Some 42)

let test_stale_timer_does_not_clobber () =
  (* After a timeout, the same fiber immediately waits again; the stale
     timer event must not disturb the second wait. *)
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  let mb = Sim.Mailbox.create () in
  Sim.Engine.schedule e ~delay:20 (fun () -> Sim.Mailbox.push mb 8);
  let first = ref (Some 0) and second = ref None in
  run_engine_fiber e (fun () ->
      first :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 5) mb;
      second :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 50) mb);
  check_true "first timed out" (!first = None);
  check_true "second got the message" (!second = Some 8)

let test_message_after_timeout_stays_queued () =
  let e = Sim.Engine.create ~rng:(Sim.Rng.create 1) () in
  let mb = Sim.Mailbox.create () in
  Sim.Engine.schedule e ~delay:20 (fun () -> Sim.Mailbox.push mb 3);
  let result = ref (Some 0) in
  run_engine_fiber e (fun () ->
      result :=
        Sim.Mailbox.recv_until ~engine:e ~deadline:(Sim.Vtime.of_int 5) mb);
  check_true "timed out" (!result = None);
  check_int "late message queued, not lost" 1 (Sim.Mailbox.length mb)

let test_drain () =
  let mb = Sim.Mailbox.create () in
  List.iter (Sim.Mailbox.push mb) [ 1; 2; 3 ];
  check_true "drain order" (Sim.Mailbox.drain mb = [ 1; 2; 3 ]);
  check_int "emptied" 0 (Sim.Mailbox.length mb)

let tests =
  [
    case "queueing order" test_queueing_order;
    case "blocking recv" test_blocking_recv;
    case "double wait rejected" test_double_wait_rejected;
    case "recv_until timeout" test_recv_until_timeout;
    case "recv_until message first" test_recv_until_message_first;
    case "recv_until deadline == now" test_recv_until_deadline_is_now;
    case "recv_until deadline in past" test_recv_until_deadline_in_past;
    case "recv_until queued beats past deadline"
      test_recv_until_queued_message_beats_past_deadline;
    case "stale timer" test_stale_timer_does_not_clobber;
    case "late message queued" test_message_after_timeout_stays_queued;
    case "drain" test_drain;
  ]
