type t = int

let default_modulus = (1 lsl 61) + 1

let validate_modulus m =
  if m < 3 || m mod 2 = 0 then
    invalid_arg "Seqnum: modulus must be odd and >= 3"

let zero = 0

let norm ~modulus x =
  let r = x mod modulus in
  if r < 0 then r + modulus else r

let succ ~modulus x = norm ~modulus (x + 1)

(* Clockwise distance from [y] to [x]: how many increments take y to x. *)
let cd ~modulus ~from:y ~to_:x = norm ~modulus (x - y)

let ge_cd ~modulus x y =
  x = y || cd ~modulus ~from:y ~to_:x < cd ~modulus ~from:x ~to_:y

let gt_cd ~modulus x y = x <> y && ge_cd ~modulus x y

let pp ppf t = Format.fprintf ppf "%d" t
