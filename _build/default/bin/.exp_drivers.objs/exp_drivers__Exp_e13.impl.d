bin/exp_e13.ml: Common Harness List Oracles Registers Sim Swmr Swmr_wb Value
