open Util

let test_gap_validation () =
  Alcotest.check_raises "bad gap" (Invalid_argument "Workload.gap: bad range")
    (fun () -> ignore (Harness.Workload.gap 5 2));
  let g = Harness.Workload.gap 1 3 in
  check_int "lo" 1 g.Harness.Workload.lo;
  check_int "hi" 3 g.Harness.Workload.hi

let test_values_distinct_across_writers () =
  let seen = Hashtbl.create 64 in
  for writer = 0 to 4 do
    for k = 1 to 50 do
      let v = Registers.Value.to_string (Harness.Workload.value_for ~writer k) in
      check_false "no collision" (Hashtbl.mem seen v);
      Hashtbl.add seen v ()
    done
  done

let test_writer_job_records_history () =
  let scn = async_scenario () in
  let w = Registers.Swsr_regular.writer ~net:scn.Harness.Scenario.net ~client_id:100 ~inst:0 in
  run_fiber scn "writer" (fun () ->
      Harness.Workload.writer_job scn ~write:(Registers.Swsr_regular.write w)
        ~count:7 ~gap:(Harness.Workload.gap 1 5) ());
  check_int "writes recorded" 7
    (List.length (Oracles.History.writes scn.Harness.Scenario.history))

let test_reader_job_records_history () =
  let scn = async_scenario () in
  let r = Registers.Swsr_regular.reader ~net:scn.Harness.Scenario.net ~client_id:101 ~inst:0 in
  run_fiber scn "reader" (fun () ->
      Harness.Workload.reader_job scn
        ~read:(fun () -> Registers.Swsr_regular.read r)
        ~count:5 ~gap:(Harness.Workload.gap 0 0) ());
  check_int "reads recorded" 5
    (List.length (Oracles.History.reads scn.Harness.Scenario.history))

let test_mwmr_job_mixes_and_stamps () =
  let scn = async_scenario () in
  let cfg = Registers.Mwmr.default_config ~m:2 in
  let p0 = Registers.Mwmr.process ~net:scn.Harness.Scenario.net ~cfg ~id:0 ~client_id:300 in
  run_fiber scn "p0" (fun () ->
      Harness.Workload.mwmr_job scn ~proc:"p0" ~process:p0 ~ops:10
        ~write_ratio:0.5 ~gap:(Harness.Workload.gap 0 5) ());
  let ops = Oracles.History.ops scn.Harness.Scenario.history in
  check_int "all ops recorded" 10 (List.length ops);
  check_true "mix of kinds"
    (List.exists (fun (o : Oracles.History.op) -> o.kind = Oracles.History.Write) ops
    && List.exists (fun (o : Oracles.History.op) -> o.kind = Oracles.History.Read) ops);
  List.iter
    (fun (o : Oracles.History.op) ->
      check_true "timestamp present" (o.Oracles.History.ts <> None))
    ops

let tests =
  [
    case "gap validation" test_gap_validation;
    case "values distinct" test_values_distinct_across_writers;
    case "writer job records" test_writer_job_records_history;
    case "reader job records" test_reader_job_records_history;
    case "mwmr job mixes and stamps" test_mwmr_job_mixes_and_stamps;
  ]
