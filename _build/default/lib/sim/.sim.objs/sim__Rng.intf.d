lib/sim/rng.mli:
