open Registers

type t = {
  net : Net.t;
  rng : Sim.Rng.t;
  servers : Server.t array;
  mutable byz : int list;
}

let install_honest t i = Net.install_honest_server t.net t.servers.(i)

let mark t label i =
  let engine = Net.engine t.net in
  let hub = Sim.Engine.hub engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Mark
         {
           time = Sim.Vtime.to_int (Sim.Engine.now engine);
           label = Printf.sprintf "byz.%s.s%d" label i;
         })

let sync_correct t =
  let byz = t.byz in
  Net.set_correct t.net (fun i -> not (List.mem i byz))

let deploy ~net ~rng =
  let n = (Net.params net : Params.t).n in
  let t =
    { net; rng; servers = Array.init n (fun id -> Server.create ~id); byz = [] }
  in
  for i = 0 to n - 1 do
    install_honest t i
  done;
  sync_correct t;
  t

let servers t = t.servers

let server t i = t.servers.(i)

let compromise t i behavior =
  mark t "compromise" i;
  if not (List.mem i t.byz) then t.byz <- i :: t.byz;
  let ctx = { Behavior.net = t.net; server_id = i; rng = Sim.Rng.split t.rng } in
  (Net.endpoints t.net).(i).Net.on_deliver <- (fun env -> behavior ctx env);
  sync_correct t

let restore t i =
  mark t "restore" i;
  t.byz <- List.filter (fun j -> j <> i) t.byz;
  (* A machine coming back from Byzantine control holds arbitrary state. *)
  Server.corrupt t.servers.(i) t.rng;
  install_honest t i;
  sync_correct t

(* Crash faults occupy a fault slot like Byzantine ones: a crashed server
   is not correct, so it leaves the ss-broadcast correct set and the
   synchronized-delivery target shrinks accordingly. *)
let crash t i =
  mark t "crash" i;
  if not (List.mem i t.byz) then t.byz <- i :: t.byz;
  (Net.endpoints t.net).(i).Net.on_deliver <- (fun _ -> ());
  sync_correct t

let recover ?(wipe = `Arbitrary) ?rng t i =
  mark t "recover" i;
  t.byz <- List.filter (fun j -> j <> i) t.byz;
  Behavior.apply_wipe wipe t.servers.(i)
    (match rng with Some r -> r | None -> t.rng);
  install_honest t i;
  sync_correct t

let byzantine_ids t = List.sort Int.compare t.byz

let compromise_first t ~count mk =
  for i = 0 to count - 1 do
    compromise t i (mk i)
  done

let move t ~from ~to_ behavior =
  restore t from;
  compromise t to_ behavior

let roam t assignments =
  let engine = Net.engine t.net in
  let hub = Sim.Engine.hub engine in
  if Obs.Hub.active hub then
    Obs.Hub.emit hub
      (Obs.Event.Mark
         {
           time = Sim.Vtime.to_int (Sim.Engine.now engine);
           label =
             Printf.sprintf "byz.roam.[%s]"
               (String.concat ","
                  (List.map (fun (i, _) -> string_of_int i) assignments));
         });
  let kept = List.map fst assignments in
  List.iter
    (fun i -> if not (List.mem i kept) then restore t i)
    t.byz;
  List.iter (fun (i, behavior) -> compromise t i behavior) assignments
