type t = { s : int; a : int list }

let capacity ~k = (k * k) + 1

let genesis ~k = { s = 1; a = List.init k (fun i -> i + 2) }

let is_wellformed ~k e =
  let cap = capacity ~k in
  let in_range x = x >= 1 && x <= cap in
  in_range e.s
  && List.length e.a = k
  && List.for_all in_range e.a
  && List.sort_uniq Int.compare e.a = e.a

let equal e1 e2 = e1.s = e2.s && e1.a = e2.a

let compare_structural e1 e2 =
  match Int.compare e1.s e2.s with
  | 0 -> List.compare Int.compare e1.a e2.a
  | c -> c

let mem x set = List.exists (fun y -> y = x) set

let gt ei ej = mem ej.s ei.a && not (mem ei.s ej.a)

let ge ei ej = equal ei ej || gt ei ej

let max_epoch epochs =
  List.find_opt (fun e -> List.for_all (fun e' -> ge e e') epochs) epochs

let next_epoch ~k epochs =
  if List.length epochs > k then
    invalid_arg "Epoch.next_epoch: more than k epochs";
  let cap = capacity ~k in
  let in_range x = x >= 1 && x <= cap in
  let used = List.concat_map (fun e -> List.filter in_range e.a) epochs in
  let used = List.sort_uniq Int.compare used in
  (* |used| <= k*k < K, so a fresh s exists; take the smallest for
     determinism. *)
  let rec fresh candidate =
    if mem candidate used then fresh (candidate + 1) else candidate
  in
  let s = fresh 1 in
  let heads =
    List.filter_map (fun e -> if in_range e.s then Some e.s else None) epochs
    |> List.sort_uniq Int.compare
  in
  (* Pad [heads] to exactly k elements with the smallest unused ground-set
     elements distinct from s. *)
  let rec pad acc candidate =
    if List.length acc >= k then List.sort_uniq Int.compare acc
    else if candidate > cap then List.sort_uniq Int.compare acc
    else if candidate = s || mem candidate acc then pad acc (candidate + 1)
    else pad (candidate :: acc) (candidate + 1)
  in
  let a = pad heads 1 in
  { s; a }

let arbitrary rng ~k =
  let cap = capacity ~k in
  let s = Sim.Rng.int_in rng 1 cap in
  let rec draw acc =
    if List.length acc >= k then List.sort_uniq Int.compare acc
    else
      let x = Sim.Rng.int_in rng 1 cap in
      if mem x acc then draw acc else draw (x :: acc)
  in
  { s; a = draw [] }

let pp ppf e =
  Format.fprintf ppf "(%d,{%s})" e.s
    (String.concat "," (List.map string_of_int e.a))
