test/test_value.ml: Alcotest Epoch Registers Sim Util Value
