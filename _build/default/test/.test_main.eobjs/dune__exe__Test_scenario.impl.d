test/test_scenario.ml: Alcotest Harness List Oracles Params Registers Sim String Swsr_atomic Swsr_regular Util
