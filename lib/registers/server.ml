type instance = { mutable last_val : Messages.cell; mutable helping : Messages.help }

type t = { id : int; insts : (int, instance) Hashtbl.t }

let create ~id = { id; insts = Hashtbl.create 4 }

let id t = t.id

let instance t inst =
  match Hashtbl.find_opt t.insts inst with
  | Some i -> i
  | None ->
    let i = { last_val = Messages.bot_cell; helping = None } in
    Hashtbl.add t.insts inst i;
    i

let instances t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.insts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let handle t (env : Messages.server_envelope) =
  let i = instance t env.inst in
  match env.body with
  | Messages.Write c ->
    i.last_val <- c;
    Some (Messages.Ack_write i.helping)
  | Messages.New_help c ->
    i.helping <- Some c;
    None
  | Messages.Read new_read ->
    if new_read then i.helping <- None;
    Some (Messages.Ack_read (i.last_val, i.helping))

(* A crash-recovery wipe loses the volatile state entirely: every known
   instance goes back to the pristine bot content a fresh automaton would
   lazily create.  (Keeping the instance table itself is immaterial — an
   absent instance is recreated with exactly this content.) *)
let reset t =
  List.iter
    (fun (_, i) ->
      i.last_val <- Messages.bot_cell;
      i.helping <- None)
    (instances t)

(* Corrupt instances in sorted-key order: the rng draws then depend only
   on which instances exist, not on hash-table layout, so a corruption at
   a given seed is reproducible across insertion orders and OCaml
   versions. *)
let corrupt t rng =
  List.iter
    (fun (_, i) ->
      i.last_val <- Messages.arbitrary_cell rng;
      i.helping <-
        (if Sim.Rng.bool rng then None else Some (Messages.arbitrary_cell rng)))
    (instances t)
