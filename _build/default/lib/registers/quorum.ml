let find ~eq ~threshold xs =
  if threshold <= 0 then invalid_arg "Quorum.find: threshold must be positive";
  let count x = List.length (List.filter (eq x) xs) in
  let rec scan seen = function
    | [] -> None
    | x :: rest ->
      if List.exists (eq x) seen then scan seen rest
      else if count x >= threshold then Some x
      else scan (x :: seen) rest
  in
  scan [] xs

let find_cell ~threshold cells =
  find ~eq:Messages.cell_equal ~threshold cells

let find_help ~threshold helps =
  let non_bot = List.filter_map (fun h -> h) helps in
  find ~eq:Messages.cell_equal ~threshold non_bot
