(** Bounded write sequence numbers and the clockwise-distance order (§4).

    The practically atomic register counts writes with a sequence number
    [wsn] drawn from [0 .. modulus-1] (the paper uses modulus 2^64 + 1).
    Two sequence numbers are compared by the clockwise-distance relation
    [>_cd]: [x >=_cd y] iff the clockwise distance from [y] to [x] is
    smaller than their anticlockwise distance.  The modulus must be odd so
    the two distances can never tie for distinct values.

    The modulus is a parameter (default [2^61 + 1], the largest practical
    odd bound below OCaml's native-int range); tests and experiments use
    tiny moduli to exercise wrap-around, which the paper can only reason
    about abstractly. *)

type t = int
(** A sequence number in [0 .. modulus-1]. *)

val default_modulus : int
(** [2^61 + 1]. The paper's "system-life-span" bound stand-in. *)

val validate_modulus : int -> unit
(** Raises [Invalid_argument] unless the modulus is odd and [>= 3]. *)

val zero : t

val succ : modulus:int -> t -> t
(** Next sequence number, wrapping at [modulus] (line N1 of Fig. 3). *)

val norm : modulus:int -> int -> t
(** Map an arbitrary (possibly corrupted) integer into the value space. *)

val ge_cd : modulus:int -> t -> t -> bool
(** [ge_cd ~modulus x y] is [x >=_cd y]. *)

val gt_cd : modulus:int -> t -> t -> bool
(** [gt_cd ~modulus x y] is [x >_cd y]  ([>=_cd] and [x <> y]). *)

val pp : Format.formatter -> t -> unit
