lib/kv/store.mli: Registers
