type mode =
  | Async
  | Sync of { max_delay : int; slack : int }

type retry = {
  deadline : Sim.Vtime.span;
  attempts : int;
  backoff : Sim.Vtime.span;
  backoff_factor : int;
  backoff_max : Sim.Vtime.span;
  jitter : Sim.Vtime.span;
  jitter_seed : int;
}

let default_retry =
  {
    deadline = 60;
    attempts = 4;
    backoff = 8;
    backoff_factor = 2;
    backoff_max = 64;
    jitter = 5;
    jitter_seed = 0x5eed;
  }

(* Exponential backoff before attempt [attempt] (1-based count of failed
   attempts so far), capped at [backoff_max].  The multiply loop stops as
   soon as the cap is reached, so huge attempt counts cannot overflow. *)
let backoff_span r ~attempt =
  if attempt <= 0 || r.backoff <= 0 then 0
  else begin
    let d = ref r.backoff in
    let k = ref (attempt - 1) in
    while !k > 0 && !d < r.backoff_max do
      d := !d * max 1 r.backoff_factor;
      decr k
    done;
    min !d r.backoff_max
  end

type t = { n : int; f : int; mode : mode; retry : retry option }

let satisfies_bound t =
  match t.mode with
  | Async -> t.n >= (8 * t.f) + 1
  | Sync _ -> t.n >= (3 * t.f) + 1

let create_unchecked ?retry ~n ~f ~mode () =
  if n <= 0 then invalid_arg "Params: n must be positive";
  if f < 0 then invalid_arg "Params: f must be non-negative";
  (match retry with
  | Some r when r.attempts <= 0 || r.deadline <= 0 ->
    invalid_arg "Params: retry needs attempts > 0 and deadline > 0"
  | Some _ | None -> ());
  { n; f; mode; retry }

let create ?retry ~n ~f ~mode () =
  let t = create_unchecked ?retry ~n ~f ~mode () in
  if satisfies_bound t then Ok t
  else
    Error
      (Printf.sprintf "resilience bound violated: n=%d, t=%d requires %s" n f
         (match mode with
         | Async -> "n >= 8t+1 (asynchronous)"
         | Sync _ -> "n >= 3t+1 (synchronous)"))

let create_exn ?retry ~n ~f ~mode () =
  match create ?retry ~n ~f ~mode () with
  | Ok t -> t
  | Error msg -> invalid_arg msg

let with_retry t retry = { t with retry }

let retry t = t.retry

let ack_wait t = match t.mode with Async -> t.n - t.f | Sync _ -> t.n

let read_quorum t =
  match t.mode with Async -> (2 * t.f) + 1 | Sync _ -> t.f + 1

let help_refresh_threshold t =
  match t.mode with Async -> (4 * t.f) + 1 | Sync _ -> t.f + 1

let write_ok_threshold t =
  match t.mode with Async -> t.n - t.f | Sync _ -> t.f + 1

let sync_timeout t =
  match t.mode with
  | Async -> None
  | Sync { max_delay; slack } -> Some ((2 * max_delay) + slack)

let pp ppf t =
  Format.fprintf ppf "{n=%d; t=%d; %s%s}" t.n t.f
    (match t.mode with Async -> "async" | Sync _ -> "sync")
    (match t.retry with
    | None -> ""
    | Some r -> Printf.sprintf "; retry=%dx%d" r.attempts r.deadline)
