test/test_link.ml: Alcotest List Sim Util
