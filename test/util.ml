(* Shared helpers for the test suite. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true msg b = check_bool msg true b

let check_false msg b = check_bool msg false b

let value = Alcotest.testable Registers.Value.pp Registers.Value.equal

(* A standard asynchronous deployment: n servers, all honest, uniform
   delays in [1,10]. *)
let async_scenario ?(seed = 7) ?(n = 9) ?(f = 1) () =
  let params = Registers.Params.create_exn ~n ~f ~mode:Registers.Params.Async () in
  Harness.Scenario.create ~seed ~params ()

let sync_scenario ?(seed = 7) ?(n = 4) ?(f = 1) ?(max_delay = 10) () =
  let params =
    Registers.Params.create_exn ~n ~f
      ~mode:(Registers.Params.Sync { max_delay; slack = 3 }) ()
  in
  Harness.Scenario.create ~seed ~params ()

(* Spawn a fiber, run the engine to quiescence, and fail the test if the
   fiber did not finish. *)
let run_fiber scn name f =
  let h = Sim.Fiber.spawn ~name f in
  Harness.Scenario.run scn;
  match Sim.Fiber.status h with
  | Sim.Fiber.Done -> ()
  | Sim.Fiber.Running -> Alcotest.failf "fiber %s did not finish" name
  | Sim.Fiber.Failed e -> raise e

(* Spawn a fiber over a bare engine (no scenario), run to quiescence. *)
let run_engine_fiber engine f =
  let h = Sim.Fiber.spawn f in
  Sim.Engine.run engine;
  match Sim.Fiber.status h with
  | Sim.Fiber.Done -> ()
  | Sim.Fiber.Running -> Alcotest.fail "fiber stuck"
  | Sim.Fiber.Failed e -> raise e

(* Spawn several fibers together, then run to quiescence. *)
let run_fibers scn jobs =
  let handles = List.map (fun (name, f) -> (name, Sim.Fiber.spawn ~name f)) jobs in
  Harness.Scenario.run scn;
  List.iter
    (fun (name, h) ->
      match Sim.Fiber.status h with
      | Sim.Fiber.Done -> ()
      | Sim.Fiber.Running -> Alcotest.failf "fiber %s did not finish" name
      | Sim.Fiber.Failed e -> raise e)
    handles

let case name f = Alcotest.test_case name `Quick f

(* Deterministic qcheck registration: a fixed generator seed so the suite
   is reproducible run to run; QCHECK_SEED overrides it for fuzzing. *)
let qcheck t =
  let seed =
    match int_of_string_opt (Sys.getenv "QCHECK_SEED") with
    | Some s -> s
    | None -> 20260707
    | exception Not_found -> 20260707
  in
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

let int_value i = Registers.Value.int i
