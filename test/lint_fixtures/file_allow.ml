(* Fixture: a floating [@@@lint.allow] covers the whole file. *)

[@@@lint.allow "R1"]

let roll () = Random.int 6

let cpu () = Sys.time ()

let unrelated_rule_still_fires l = List.hd l
