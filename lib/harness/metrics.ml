type summary = {
  count : int;
  mean : float;
  min : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

let percentile sorted p =
  if p <= 0.0 then sorted.(0)
  else
    let n = Array.length sorted in
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

let summary xs =
  if xs = [] then invalid_arg "Metrics.summary: empty sample";
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  let total = Array.fold_left ( +. ) 0.0 arr in
  {
    count = n;
    mean = total /. float_of_int n;
    min = arr.(0);
    p50 = percentile arr 0.5;
    p90 = percentile arr 0.9;
    p95 = percentile arr 0.95;
    p99 = percentile arr 0.99;
    p999 = percentile arr 0.999;
    max = arr.(n - 1);
  }

let summary_opt xs = if xs = [] then None else Some (summary xs)

let latencies ~kind h =
  Oracles.History.ops h
  |> List.filter_map (fun (o : Oracles.History.op) ->
         if o.kind = kind && o.ok then
           Some (float_of_int (Sim.Vtime.diff o.resp o.inv))
         else None)

let ok_reads h =
  List.length
    (List.filter (fun (o : Oracles.History.op) -> o.ok) (Oracles.History.reads h))

let failed_reads h =
  List.length
    (List.filter
       (fun (o : Oracles.History.op) -> not o.ok)
       (Oracles.History.reads h))

let stabilization_read_index ~valid h =
  let reads = Oracles.History.reads h in
  let n = List.length reads in
  if n = 0 then None
  else
    (* Last invalid read determines the clean suffix. *)
    let last_bad =
      List.fold_left
        (fun (i, acc) r -> (i + 1, if valid r then acc else Some i))
        (0, None) reads
      |> snd
    in
    match last_bad with
    | None -> Some 0
    | Some i when i + 1 < n -> Some (i + 1)
    | Some _ -> None

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p95=%.1f p99=%.1f p999=%.1f \
     max=%.1f"
    s.count s.mean s.min s.p50 s.p90 s.p95 s.p99 s.p999 s.max
