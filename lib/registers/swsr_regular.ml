type writer = {
  net : Net.t;
  port : Net.client_port;
  inst : int;
  probe : Instr.probe;
}

type reader = {
  net : Net.t;
  port : Net.client_port;
  inst : int;
  probe : Instr.probe;
  mutable iterations : int;
  mutable help_returns : int;
}

let writer ~net ~client_id ~inst =
  {
    net;
    port = Net.add_client net ~id:client_id;
    inst;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swsr_regular" `Write;
  }

let reader ~net ~client_id ~inst =
  {
    net;
    port = Net.add_client net ~id:client_id;
    inst;
    probe =
      Instr.probe ~engine:(Net.engine net)
        ~proc:(Printf.sprintf "c%d" client_id)
        ~reg:"swsr_regular" `Read;
    iterations = 0;
    help_returns = 0;
  }

(* operation write(v): lines 01-06.  The regular register carries no
   sequence number, so cells use sn = 0 throughout. *)
let write ?parent (w : writer) v =
  let span = Instr.start ?parent w.probe in
  let ctx = Instr.ctx span in
  let cell = { Messages.sn = Seqnum.zero; v } in
  let round =
    Net.ss_broadcast ~span:ctx w.net w.port ~inst:w.inst (Messages.Write cell)
  in
  let helps = Collect.ack_writes ~net:w.net ~port:w.port ~round in
  let threshold = Params.help_refresh_threshold (Net.params w.net) in
  (match Quorum.find_help ~threshold helps with
  | Some _ -> ()
  | None ->
    ignore
      (Net.ss_broadcast ~span:ctx w.net w.port ~inst:w.inst
         (Messages.New_help cell)));
  Sim.Trace.incr (Sim.Engine.trace (Net.engine w.net)) "write.ops";
  Instr.finish w.probe span

(* operation read(): lines 07-18. *)
let read ?parent ?(max_iterations = max_int) (r : reader) =
  let span = Instr.start ?parent r.probe in
  let ctx = Instr.ctx span in
  let params = Net.params r.net in
  let threshold = Params.read_quorum params in
  let new_read = ref true in
  let rec loop budget =
    if budget <= 0 then None
    else begin
      r.iterations <- r.iterations + 1;
      let round =
        Net.ss_broadcast ~span:ctx r.net r.port ~inst:r.inst
          (Messages.Read !new_read)
      in
      new_read := false;
      let acks = Collect.ack_reads ~net:r.net ~port:r.port ~round in
      let lasts = List.map fst acks in
      match Quorum.find_cell ~threshold lasts with
      | Some cell -> Some cell.Messages.v (* line 13: regular or atomic *)
      | None -> (
        let helps = List.map snd acks in
        match Quorum.find_help ~threshold helps with
        | Some cell ->
          r.help_returns <- r.help_returns + 1;
          Some cell.Messages.v (* line 15: atomic *)
        | None -> loop (budget - 1))
    end
  in
  let result = loop max_iterations in
  Sim.Trace.incr (Sim.Engine.trace (Net.engine r.net)) "read.ops";
  Instr.finish ~ok:(result <> None) r.probe span;
  result

let reader_iterations r = r.iterations

let help_returns r = r.help_returns

let writer_port (w : writer) = w.port

let reader_port (r : reader) = r.port
