lib/byzantine/behavior.mli: Registers Sim
