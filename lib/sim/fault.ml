type target = { name : string; corrupt : Rng.t -> unit }

type t = { mutable targets : target list (* newest first *) }

let create () = { targets = [] }

let register t ~name corrupt = t.targets <- { name; corrupt } :: t.targets

let names t = List.rev_map (fun tg -> tg.name) t.targets

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let inject_matching t ~rng ~prefix =
  let hit = ref 0 in
  List.iter
    (fun tg ->
      if starts_with ~prefix tg.name then begin
        incr hit;
        tg.corrupt rng
      end)
    (List.rev t.targets);
  !hit

let inject_all t ~rng = inject_matching t ~rng ~prefix:""

let schedule t ~engine ~at ~prefix =
  let rng = Rng.split (Engine.rng engine) in
  Engine.schedule_at engine at (fun () ->
      let hit = inject_matching t ~rng ~prefix in
      Trace.emit (Engine.trace engine) ~time:(Engine.now engine)
        ~tag:"fault"
        (Printf.sprintf "transient fault: corrupted %d targets (prefix %S)" hit
           prefix);
      Trace.add (Engine.trace engine) "fault.injections" hit;
      let hub = Engine.hub engine in
      if Obs.Hub.active hub then
        Obs.Hub.emit hub
          (Obs.Event.Fault_injected
             {
               time = Vtime.to_int (Engine.now engine);
               target = (if prefix = "" then "*" else prefix);
               hits = hit;
             }))
