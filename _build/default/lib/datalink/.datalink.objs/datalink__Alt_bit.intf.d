lib/datalink/alt_bit.mli: Sim
