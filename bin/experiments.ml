(* Experiment driver: regenerates every table of EXPERIMENTS.md.

     dune exec bin/experiments.exe -- run all
     dune exec bin/experiments.exe -- run E1 E3 --seed 42
     dune exec bin/experiments.exe -- list
*)

let all : (string * string * (seed:int -> unit)) list =
  [
    ("E1", "Figure 1: new/old inversion, regular vs atomic", Exp_drivers.Exp_e1.run);
    ("E2", "stabilization after a full transient fault", Exp_drivers.Exp_e2.run);
    ("E3", "asynchronous resilience bound (t < n/8)", Exp_drivers.Exp_e3.run);
    ("E4", "synchronous resilience bound (t < n/3)", Exp_drivers.Exp_e4.run);
    ("E5", "reader cost vs write pressure (helping)", Exp_drivers.Exp_e5.run);
    ("E6", "bounded epochs under sequence exhaustion", Exp_drivers.Exp_e6.run);
    ("E7", "baselines: classical and quiescence-dependent", Exp_drivers.Exp_e7.run);
    ("E8", "alternating-bit data link (footnote 3)", Exp_drivers.Exp_e8.run);
    ("E9", "message cost per operation", Exp_drivers.Exp_e9.run);
    ("E10", "mobile Byzantine faults (footnote 1)", Exp_drivers.Exp_e10.run);
    ("E11", "registers over lossy links (ss-transport)", Exp_drivers.Exp_e11.run);
    ("E12", "ablation: the lines N2-N7 sanity phase", Exp_drivers.Exp_e12.run);
    ("E13", "SWMR composition vs reader write-back", Exp_drivers.Exp_e13.run);
    ("E14", "scalability with n", Exp_drivers.Exp_e14.run);
  ]

open Cmdliner

let ids_arg =
  let doc = "Experiment ids to run (E1..E14), or $(b,all)." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)

let seed_arg =
  let doc = "Root random seed; every table is deterministic given it." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let json_arg =
  let doc =
    "Write one machine-readable run report per experiment as \
     $(docv)/<exp>.json (schema stabreg/run-report/v1).  $(docv) defaults \
     to $(b,results) when the flag is given without a value."
  in
  Arg.(
    value
    & opt ~vopt:(Some "results") (some string) None
    & info [ "json" ] ~docv:"DIR" ~doc)

let trace_out_arg =
  let doc =
    "Append the typed event stream of every instrumented deployment to \
     $(docv) as JSON lines (one event per line)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run ids seed json trace =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let wanted =
      if List.exists (fun id -> String.lowercase_ascii id = "all") ids then
        List.map (fun (id, _, _) -> id) all
      else ids
    in
    let unknown =
      List.filter
        (fun id -> not (List.exists (fun (i, _, _) -> i = id) all))
        wanted
    in
    match unknown with
    | _ :: _ ->
      `Error
        (false, "unknown experiment(s): " ^ String.concat ", " unknown)
    | [] ->
      List.iter
        (fun id ->
          let _, _, f = List.find (fun (i, _, _) -> i = id) all in
          Exp_drivers.Common.with_report ~exp:id ~seed (fun () -> f ~seed))
        wanted;
      Exp_drivers.Common.close_trace ();
      `Ok ()
  in
  let doc = "Run experiments and print their tables." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(ret (const run $ ids_arg $ seed_arg $ json_arg $ trace_out_arg))

let validate_cmd =
  let read_file path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let validate files =
    let problems =
      List.filter_map
        (fun path ->
          match Obs.Json.parse (read_file path) with
          | Error e -> Some (Printf.sprintf "%s: parse error: %s" path e)
          | Ok j -> (
            match Obs.Report.validate j with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "%s: %s" path e)))
        files
    in
    match problems with
    | [] ->
      Printf.printf "%d report(s) valid (%s)\n" (List.length files)
        Obs.Report.schema_version;
      `Ok ()
    | _ :: _ -> `Error (false, String.concat "\n" problems)
  in
  let files_arg =
    let doc = "Run-report JSON files to check against the schema." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate run-report files against the versioned schema.")
    Term.(ret (const validate $ files_arg))

let trace_cmd =
  (* A small annotated run with full event recording: lets adopters see
     the message flow of one write+read. *)
  let trace seed =
    let params =
      Registers.Params.create_exn ~n:9 ~f:1 ~mode:Registers.Params.Async
    in
    let scn = Harness.Scenario.create ~seed ~record_events:true ~params () in
    Byzantine.Adversary.compromise scn.Harness.Scenario.adversary 3
      Byzantine.Behavior.garbage;
    let w =
      Registers.Swsr_atomic.writer ~net:scn.Harness.Scenario.net ~client_id:1
        ~inst:0 ()
    in
    let r =
      Registers.Swsr_atomic.reader ~net:scn.Harness.Scenario.net ~client_id:2
        ~inst:0 ()
    in
    let got = ref None in
    Exp_drivers.Common.run_jobs scn
      [
        ( "wr",
          fun () ->
            Registers.Swsr_atomic.write w (Registers.Value.str "traced");
            got := Registers.Swsr_atomic.read r );
      ];
    Printf.printf
      "one prac_at_write + one prac_at_read, n=9, t=1, server 3 Byzantine\n";
    Printf.printf "read returned: %s\n\n" (Exp_drivers.Common.value_str !got);
    Harness.Report.kv
      [
        ("virtual time", string_of_int (Sim.Vtime.to_int (Harness.Scenario.now scn)));
        ("messages delivered", string_of_int (Harness.Scenario.messages_sent scn));
        ("ss-broadcasts", string_of_int (Harness.Scenario.broadcasts scn));
      ];
    print_newline ();
    List.iter
      (fun e -> Format.printf "%a@." Sim.Trace.pp_event e)
      (Sim.Trace.events (Sim.Engine.trace scn.Harness.Scenario.engine))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump counters and events of one annotated run.")
    Term.(const trace $ seed_arg)

let chaos_cmd =
  let family_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun e -> `Msg e)
            (Chaos.Campaign.family_of_string s)),
        fun fmt f ->
          Format.pp_print_string fmt (Chaos.Campaign.family_to_string f) )
  in
  let medium_conv =
    let parse = function
      | "fifo" -> Ok Chaos.Campaign.Fifo
      | "lossy" -> Ok Chaos.Campaign.Lossy
      | s -> Error (`Msg (Printf.sprintf "unknown medium %S" s))
    in
    Arg.conv
      ( parse,
        fun fmt m ->
          Format.pp_print_string fmt
            (match m with Chaos.Campaign.Fifo -> "fifo" | Lossy -> "lossy") )
  in
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error (fun e -> `Msg e) (Chaos.Strategy.of_string s)),
        fun fmt s -> Format.pp_print_string fmt (Chaos.Strategy.to_string s) )
  in
  let family_arg =
    let doc = "Register family to attack: $(b,regular), $(b,atomic) or \
               $(b,mwmr)." in
    Arg.(
      value
      & opt family_conv Chaos.Campaign.Regular
      & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let trials_arg =
    let doc = "Number of randomized trials in the campaign." in
    Arg.(value & opt int 5 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let byz_arg =
    let doc =
      "Compromise the first $(docv) server slots before the run starts \
       (beyond the schedule's own mobile roams).  More than t slots \
       deliberately exceeds the resilience bound."
    in
    Arg.(value & opt int 1 & info [ "byz" ] ~docv:"K" ~doc)
  in
  let strategy_arg =
    let doc =
      "Strategy of the $(b,--byz) slots: $(b,silent), $(b,garbage), \
       $(b,equivocate), $(b,frozen), $(b,collude), $(b,flaky:<p>), \
       $(b,delayed:<ticks>) or $(b,crash:<k>)."
    in
    Arg.(
      value
      & opt strategy_conv Chaos.Strategy.Garbage
      & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let medium_arg =
    let doc =
      "Communication medium: $(b,fifo) (reliable links) or $(b,lossy) \
       (self-stabilizing transports; enables link-chaos windows)."
    in
    Arg.(
      value
      & opt medium_conv Chaos.Campaign.Fifo
      & info [ "medium" ] ~docv:"MEDIUM" ~doc)
  in
  let out_arg =
    let doc = "Directory for shrunk counterexample artifacts." in
    Arg.(
      value & opt string "results/chaos" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-execute a repro artifact instead of running a campaign; fails \
       unless the replay reproduces the recorded verdict."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let expect_conv =
      let parse = function
        | "clean" -> Ok `Clean
        | "violation" -> Ok `Violation
        | s -> Error (`Msg (Printf.sprintf "unknown expectation %S" s))
      in
      Arg.conv
        ( parse,
          fun fmt e ->
            Format.pp_print_string fmt
              (match e with `Clean -> "clean" | `Violation -> "violation") )
    in
    let doc =
      "Fail (exit non-zero) unless the campaign ends as stated: $(b,clean) \
       (no trial violated) or $(b,violation) (at least one did).  Gives \
       CI a one-flag assertion for both sides of the resilience bound."
    in
    Arg.(
      value & opt (some expect_conv) None & info [ "expect" ] ~docv:"WHAT" ~doc)
  in
  let domains_arg =
    let doc =
      "Fan the campaign trials out over $(docv) OS-level domains.  Trials \
       are deterministic in their derived seeds, so the result is \
       identical for every value — only wall-clock changes."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let chaos family trials byz strategy medium out replay expect domains seed
      json trace =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let status = ref (`Ok ()) in
    let exp = "CHAOS-" ^ Chaos.Campaign.family_to_string family in
    (match replay with
    | Some path ->
      Exp_drivers.Common.with_report ~exp:"CHAOS-replay" ~seed (fun () ->
          match Exp_drivers.Exp_chaos.replay path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None ->
      Exp_drivers.Common.with_report ~exp ~seed (fun () ->
          let violations =
            Exp_drivers.Exp_chaos.run ~family ~medium ~byz ~strategy ~seed
              ~trials ~domains ~out
          in
          match (expect, violations) with
          | Some `Clean, _ :: _ ->
            status :=
              `Error
                ( false,
                  Printf.sprintf "expected a clean campaign, got %d violation(s)"
                    (List.length violations) )
          | Some `Violation, [] ->
            status :=
              `Error (false, "expected a violation, campaign ran clean")
          | _ -> ()));
    Exp_drivers.Common.close_trace ();
    !status
  in
  let doc =
    "Run a randomized chaos campaign (transient faults, mobile Byzantine \
     roams, link-chaos windows) against one register family, shrinking any \
     counterexample to a minimal replayable artifact."
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const chaos $ family_arg $ trials_arg $ byz_arg $ strategy_arg
       $ medium_arg $ out_arg $ replay_arg $ expect_arg $ domains_arg
       $ seed_arg $ json_arg $ trace_out_arg))

let mc_cmd =
  let mc_family_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun e -> `Msg e) (Mc.Config.family_of_string s)),
        fun fmt f -> Format.pp_print_string fmt (Mc.Config.family_to_string f)
      )
  in
  let byz_kind_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "silent" ] -> Ok Mc.Config.Silent
      | [ "collude" ] -> Ok (Mc.Config.Collude { sn = 99; v = 999 })
      | [ "collude"; sn; v ] -> (
        match (int_of_string_opt sn, int_of_string_opt v) with
        | Some sn, Some v -> Ok (Mc.Config.Collude { sn; v })
        | _ -> Error (`Msg "collude:<sn>:<v> wants integers"))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown byzantine behavior %S (silent, collude, \
                 collude:<sn>:<v>)"
                s))
    in
    Arg.conv
      ( parse,
        fun fmt k ->
          Format.pp_print_string fmt
            (match k with
            | Mc.Config.Silent -> "silent"
            | Mc.Config.Collude { sn; v } ->
              Printf.sprintf "collude:%d:%d" sn v) )
  in
  let corrupt_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "server"; i; sn; v ] -> (
        match
          (int_of_string_opt i, int_of_string_opt sn, int_of_string_opt v)
        with
        | Some server, Some sn, Some v ->
          Ok (Mc.Config.Corrupt_server { server; sn; v })
        | _ -> Error (`Msg "server:<i>:<sn>:<v> wants integers"))
      | [ "reader"; pwsn; v ] -> (
        match (int_of_string_opt pwsn, int_of_string_opt v) with
        | Some pwsn, Some v -> Ok (Mc.Config.Corrupt_reader { pwsn; v })
        | _ -> Error (`Msg "reader:<pwsn>:<v> wants integers"))
      | [ "writer"; sn ] -> (
        match int_of_string_opt sn with
        | Some sn -> Ok (Mc.Config.Corrupt_writer_sn sn)
        | None -> Error (`Msg "writer:<sn> wants an integer"))
      | [ "round"; client; round ] -> (
        match (int_of_string_opt client, int_of_string_opt round) with
        | Some client, Some round ->
          Ok (Mc.Config.Corrupt_round { client; round })
        | _ -> Error (`Msg "round:<client>:<round> wants integers"))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown corruption %S (server:<i>:<sn>:<v>, \
                 reader:<pwsn>:<v>, writer:<sn>, round:<client>:<round>)"
                s))
    in
    Arg.conv
      ( parse,
        fun fmt c ->
          Format.pp_print_string fmt
            (match c with
            | Mc.Config.Corrupt_server { server; sn; v } ->
              Printf.sprintf "server:%d:%d:%d" server sn v
            | Mc.Config.Corrupt_reader { pwsn; v } ->
              Printf.sprintf "reader:%d:%d" pwsn v
            | Mc.Config.Corrupt_writer_sn sn -> Printf.sprintf "writer:%d" sn
            | Mc.Config.Corrupt_round { client; round } ->
              Printf.sprintf "round:%d:%d" client round) )
  in
  let family_arg =
    let doc =
      "Register family to check: $(b,regular), $(b,atomic) or $(b,mwmr)."
    in
    Arg.(
      value
      & opt mc_family_conv Mc.Config.Regular
      & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let servers_arg =
    let doc = "Number of servers n." in
    Arg.(value & opt int 9 & info [ "servers" ] ~docv:"N" ~doc)
  in
  let t_arg =
    let doc = "Declared fault bound t the protocol is parameterized with." in
    Arg.(value & opt int 1 & info [ "t"; "fault-bound" ] ~docv:"T" ~doc)
  in
  let byz_arg =
    let doc =
      "Make the first $(docv) server slots Byzantine.  More than t slots \
       deliberately exceeds the paper's t < n/8 resilience bound."
    in
    Arg.(value & opt int 0 & info [ "byz" ] ~docv:"K" ~doc)
  in
  let strategy_arg =
    let doc =
      "Deterministic behavior of the $(b,--byz) slots: $(b,silent), \
       $(b,collude) or $(b,collude:<sn>:<v>)."
    in
    Arg.(
      value
      & opt byz_kind_conv Mc.Config.Silent
      & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let writes_arg =
    let doc = "Writes per writer." in
    Arg.(value & opt int 1 & info [ "writes" ] ~docv:"K" ~doc)
  in
  let reads_arg =
    let doc = "Reads per reader." in
    Arg.(value & opt int 1 & info [ "reads" ] ~docv:"K" ~doc)
  in
  let read_budget_arg =
    let doc = "Maximum inquiry iterations per read." in
    Arg.(value & opt int 8 & info [ "read-budget" ] ~docv:"K" ~doc)
  in
  let corrupt_arg =
    let doc =
      "Add one transient-corruption choice to the menu (repeatable): \
       $(b,server:<i>:<sn>:<v>), $(b,reader:<pwsn>:<v>), $(b,writer:<sn>) \
       or $(b,round:<client>:<round>).  The explorer fires each menu item \
       at most once per execution, at every possible point."
    in
    Arg.(value & opt_all corrupt_conv [] & info [ "corrupt" ] ~docv:"SPEC" ~doc)
  in
  let oracle_arg =
    let doc =
      "Safety oracle: $(b,default) (per family) or $(b,atomic) (force the \
       SW-atomicity oracle — against the regular family this exhibits the \
       Fig. 1 new/old inversion)."
    in
    let oracle_conv =
      Arg.conv
        ( (fun s ->
            Result.map_error (fun e -> `Msg e) (Mc.Config.oracle_of_string s)),
          fun fmt o ->
            Format.pp_print_string fmt (Mc.Config.oracle_to_string o) )
    in
    Arg.(
      value
      & opt oracle_conv Mc.Config.Family_default
      & info [ "oracle" ] ~docv:"ORACLE" ~doc)
  in
  let depth_arg =
    let doc = "Depth budget (moves per execution)." in
    Arg.(
      value
      & opt int Mc.Checker.default_budgets.Mc.Checker.max_depth
      & info [ "depth" ] ~docv:"D" ~doc)
  in
  let max_states_arg =
    let doc = "State budget (nodes expanded before truncating)." in
    Arg.(
      value
      & opt int Mc.Checker.default_budgets.Mc.Checker.max_states
      & info [ "max-states" ] ~docv:"S" ~doc)
  in
  let no_reduction_arg =
    let doc =
      "Disable the sleep-set partial-order reduction and symmetric-move \
       pruning (state merging stays on)."
    in
    Arg.(value & flag & info [ "no-reduction" ] ~doc)
  in
  let no_visited_arg =
    let doc =
      "Disable state merging entirely (every interleaving explored \
       verbatim; only feasible on tiny configurations)."
    in
    Arg.(value & flag & info [ "no-visited" ] ~doc)
  in
  let cross_check_arg =
    let doc =
      "After the reduced search, re-search with $(b,--no-reduction) and \
       fail unless both agree on the verdict (soundness check for the \
       partial-order reduction)."
    in
    Arg.(value & flag & info [ "cross-check" ] ~doc)
  in
  let expect_arg =
    let expect_conv =
      let parse = function
        | "clean" -> Ok `Clean
        | "violation" -> Ok `Violation
        | s -> Error (`Msg (Printf.sprintf "unknown expectation %S" s))
      in
      Arg.conv
        ( parse,
          fun fmt e ->
            Format.pp_print_string fmt
              (match e with `Clean -> "clean" | `Violation -> "violation") )
    in
    let doc =
      "Fail (exit non-zero) unless the search ends as stated: $(b,clean) \
       (exhaustively verified, no violation) or $(b,violation) (a \
       counterexample was found, shrunk and replayed)."
    in
    Arg.(
      value & opt (some expect_conv) None & info [ "expect" ] ~docv:"WHAT" ~doc)
  in
  let order_seed_arg =
    let doc =
      "Shuffle the exploration order at every node, deterministically from \
       this seed (swarm-style hunting: the reduced state space and any \
       exhaustive verdict are unchanged, but a state budget reaches \
       different corners first)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "order-seed" ] ~docv:"SEED" ~doc)
  in
  let target_arg =
    let doc =
      "Hunt one violation kind (e.g. $(b,inversion), $(b,stuck), \
       $(b,liveness), $(b,regularity)): terminals violating some other \
       way are counted and skipped.  A clean verdict under a target only \
       certifies the absence of that kind."
    in
    Arg.(
      value & opt (some string) None & info [ "target" ] ~docv:"KIND" ~doc)
  in
  let domains_arg =
    let doc =
      "Run a portfolio of $(docv) searches in parallel over OS-level \
       domains: slice 0 is the plain sequential search, the others \
       explore under shuffled orders derived from $(b,--order-seed), and \
       the merge deterministically prefers the lowest slice index, so the \
       reported verdict and counterexample are independent of thread \
       scheduling."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let sequential_check_arg =
    let doc =
      "After the (parallel) search, re-search sequentially and fail \
       unless both report the same verdict and the same trace \
       (determinism check for the parallel portfolio)."
    in
    Arg.(value & flag & info [ "sequential-check" ] ~doc)
  in
  let out_arg =
    let doc = "Directory for counterexample artifacts." in
    Arg.(value & opt string "results/mc" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-execute a counterexample artifact instead of searching; fails \
       unless the replay reproduces the recorded verdict and terminal \
       state bit-for-bit."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let guide_arg =
    let doc =
      "Check a hand-written witness schedule instead of searching: force \
       the file's moves (config + trace, schema stabreg/mc-guide/v1; a \
       cex artifact works too), drain deterministically, judge the \
       terminal state, and shrink any violation into a replayable \
       artifact.  For interleavings a budgeted search cannot reach \
       unaided."
    in
    Arg.(value & opt (some file) None & info [ "guide" ] ~docv:"FILE" ~doc)
  in
  let mc family servers t byz strategy writes reads read_budget corrupt
      oracle depth max_states no_reduction no_visited order_seed target
      cross_check domains sequential_check expect out replay guide seed json
      trace =
    Exp_drivers.Common.json_dir := json;
    Exp_drivers.Common.trace_out := trace;
    let status = ref (`Ok ()) in
    (match (replay, guide) with
    | Some _, Some _ ->
      status := `Error (true, "--replay and --guide are mutually exclusive")
    | Some path, None ->
      Exp_drivers.Common.with_report ~exp:"MC-replay" ~seed (fun () ->
          match Exp_drivers.Exp_mc.replay path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None, Some path ->
      Exp_drivers.Common.with_report ~exp:"MC-guide" ~seed (fun () ->
          match Exp_drivers.Exp_mc.guide ~expect ~out path with
          | Ok () -> ()
          | Error e -> status := `Error (false, e))
    | None, None ->
      let cfg =
        {
          Mc.Config.family;
          n = servers;
          f = t;
          byz = List.init byz (fun i -> (i, strategy));
          writes;
          reads;
          read_budget;
          menu = corrupt;
          oracle;
        }
      in
      let exp = "MC-" ^ Mc.Config.family_to_string family in
      (match Mc.Config.validate cfg with
      | Error e -> status := `Error (false, e)
      | Ok () ->
        Exp_drivers.Common.with_report ~exp ~seed (fun () ->
            let budgets = { Mc.Checker.max_states; max_depth = depth } in
            let reduction =
              if no_reduction then Mc.Checker.No_reduction
              else Mc.Checker.Sleep_sets
            in
            match
              Exp_drivers.Exp_mc.run ~cfg ~budgets ~reduction
                ~use_visited:(not no_visited) ~seed:order_seed ~target
                ~cross_check ~domains ~sequential_check ~expect ~out
            with
            | Ok () -> ()
            | Error e -> status := `Error (false, e))));
    Exp_drivers.Common.close_trace ();
    !status
  in
  let doc =
    "Exhaustively model-check one register family: enumerate every \
     interleaving of pending message deliveries and transient-corruption \
     choices (up to the budgets), check every terminal execution against \
     the family's safety and stabilization oracles, and shrink any \
     violation to a minimal replayable artifact."
  in
  Cmd.v
    (Cmd.info "mc" ~doc)
    Term.(
      ret
        (const mc $ family_arg $ servers_arg $ t_arg $ byz_arg $ strategy_arg
       $ writes_arg $ reads_arg $ read_budget_arg $ corrupt_arg $ oracle_arg
       $ depth_arg $ max_states_arg $ no_reduction_arg $ no_visited_arg
       $ order_seed_arg $ target_arg $ cross_check_arg $ domains_arg
       $ sequential_check_arg $ expect_arg $ out_arg $ replay_arg $ guide_arg
       $ seed_arg $ json_arg $ trace_out_arg))

let list_cmd =
  let list () =
    List.iter (fun (id, doc, _) -> Printf.printf "%-4s %s\n" id doc) all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const list $ const ())

let main =
  let doc =
    "Reproduction experiments for 'Stabilizing Server-Based Storage in \
     Byzantine Asynchronous Message-Passing Systems' (PODC 2015)."
  in
  Cmd.group
    (Cmd.info "stabreg-experiments" ~version:"1.0.0" ~doc)
    [ run_cmd; list_cmd; trace_cmd; validate_cmd; chaos_cmd; mc_cmd ]

let () = exit (Cmd.eval main)
