(** Structured execution traces and counters.

    Protocol and substrate code emit tagged events and bump named counters;
    experiments read counters for their cost tables and tests assert on
    them.  Event recording can be disabled (counters stay active) to keep
    long benchmark runs cheap. *)

type event = { time : Vtime.t; tag : string; detail : string }

type t

val create : ?record_events:bool -> unit -> t

val emit : t -> time:Vtime.t -> tag:string -> string -> unit
(** Record an event (no-op when event recording is disabled). *)

val emit_lazy : t -> time:Vtime.t -> tag:string -> (unit -> string) -> unit
(** Like {!emit}, but the detail string is only computed when recording is
    enabled — use on hot paths. *)

val recording : t -> bool

val events : t -> event list
(** All recorded events, oldest first. *)

val events_tagged : t -> string -> event list
(** Recorded events with the given tag, oldest first. *)

val incr : t -> string -> unit
(** Bump a named counter by one. *)

val add : t -> string -> int -> unit
(** Bump a named counter by [n]. *)

val counter : t -> string -> int
(** Current value of a counter (0 if never bumped). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val reset_counters : t -> unit

val pp_event : Format.formatter -> event -> unit
