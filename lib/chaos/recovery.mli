(** Crash-recovery bursts and the stabilization-time oracle.

    A recovery run crashes [crashed] rotating server slots every [gap]
    ticks for [bursts] bursts; each crashed slot rejoins after [down_for]
    ticks over arbitrary state — recovery is a transient fault by
    construction, exactly what the paper's registers must stabilize from.
    A writer/reader pair operates throughout via the typed-outcome API
    (so operations degrade or time out instead of hanging), and the
    oracle measures, per burst, the virtual time from the recovery
    instant to the first read the {!Oracles.Regularity} checker certifies
    on that burst's segment.

    Everything is deterministic in the seed: the same config and seed
    reproduce the report bit-for-bit, which is what the committed
    [stabreg/recovery/v1] artifacts assert under [--replay]. *)

type config = {
  n : int;
  f : int;
  bursts : int;  (** crash-recovery bursts *)
  crashed : int;  (** slots crashed per burst (rotating) *)
  down_for : int;  (** down window per crash, in ticks *)
  first_at : int;  (** first burst instant *)
  gap : int;  (** burst spacing *)
  writes : int;
  reads : int;  (** op counts for the workload pair *)
  read_budget : int;  (** inquiry-iteration budget per read *)
  gap_hi : int;  (** think time uniform in [0, gap_hi] *)
  retry : bool;  (** install {!Registers.Params.default_retry} *)
}

val default_config : config
(** [n = 9], [f = 1], 3 bursts of 2 slots down for 120 ticks every 700,
    60 writes / 70 reads, retry on. *)

val schedule : config -> Schedule.t
(** The fully concrete crash events the config denotes (all
    crash-recovery, rotating slots). *)

type tally = { ok : int; degraded : int; timed_out : int }
(** Typed-outcome counts for one operation kind. *)

type burst_report = {
  burst : int;
  crash_at : int;
  recovery_at : int;
  stab_time : int option;
      (** vtime from recovery to the first certified-correct read of the
          burst's segment; [None] when none landed before the next
          burst *)
}

type report = {
  seed : int;
  config : config;
  bursts : burst_report list;
  write_ops : tally;
  read_ops : tally;
  duration : int;
  stuck : string list;  (** watchdog: fibers that never finished *)
  converged : bool;  (** the last burst stabilized *)
}

val stabilization : Oracles.History.t -> lo:int -> hi:int -> int option
(** The oracle itself: first read in [\[lo, hi)] invoked at or after the
    segment's cutoff, successful, and not flagged by the regularity
    checker — returns its response minus [lo]. *)

val run :
  ?on_scenario:(Harness.Scenario.t -> unit) -> config -> seed:int -> report
(** Execute one recovery run.  Per-burst stabilization times are also
    observed into the scenario metrics histogram ["recovery.stab_time"],
    and per-op outcome kinds into ["recovery.read.<kind>"] /
    ["recovery.write.<kind>"] counters. *)

val schema : string
(** ["stabreg/recovery/v1"]. *)

val to_json : report -> Obs.Json.t

val of_json : Obs.Json.t -> (report, string) result

val replay : ?on_scenario:(Harness.Scenario.t -> unit) -> report -> report
(** Re-execute a report's config and seed from scratch. *)

val matches : report -> report -> bool
(** Bit-identical reproduction check between a committed report and its
    replay. *)

val pp_burst : Format.formatter -> burst_report -> unit
