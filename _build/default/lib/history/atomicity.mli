(** Atomicity checkers: regularity plus the absence of new/old inversions
    (§2.2), for single-writer and multi-writer histories.

    {!Sw} handles SWSR/SWMR histories: the single writer makes writes
    totally ordered by invocation time; each read is mapped to the index of
    the write whose (distinct) value it returned, and atomicity amounts to
    regularity plus monotonicity of those indices along the real-time order
    of reads — precisely "no two reads return new/old inverted values".

    {!Mw} handles MWMR histories using the (epoch, seq, writer) timestamps
    recorded with each operation: writes must be totally ordered by
    timestamp consistently with real time (Lemma 16), and reads must be
    monotone and sandwiched between the writes they follow and overlap. *)

type inversion = { earlier_read : History.op; later_read : History.op }

module Sw : sig
  type report = {
    regularity : Regularity.report;
    inversions : inversion list;
    malformed : string list;
        (** history-discipline problems: overlapping writes from the
            single writer, duplicate written values *)
  }

  val check : ?cutoff:Sim.Vtime.t -> History.t -> report

  val is_clean : report -> bool

  val pp : Format.formatter -> report -> unit
end

module Mw : sig
  type violation = {
    kind : string;
    detail : string;
  }

  type report = {
    writes_checked : int;
    reads_checked : int;
    violations : violation list;
  }

  val check :
    ?cutoff:Sim.Vtime.t ->
    tie:[ `Min_index | `Max_index ] ->
    History.t ->
    report
  (** [tie] must match the register's configured line-15 tie-break: with
      [`Min_index] the smaller writer id wins among equal (epoch, seq)
      timestamps, with [`Max_index] the larger (Definition 1's [j > i]). *)

  val is_clean : report -> bool

  val pp : Format.formatter -> report -> unit
end
