(** Waiting for acknowledgments from distinct servers (the [wait]
    statements of lines 02 and 11).

    Only acknowledgments tagged with the port's current round are
    considered (see {!Net} on the round tag); at most one acknowledgment
    per server counts, per the paper's "from (n-t) {e different} servers".
    In async mode the wait blocks until [Params.ack_wait] distinct servers
    answered; in sync mode it collects until all [n] answered or the
    round-trip timeout elapses (lines 02.M / 11.M of Fig. 5). *)

val acks :
  net:Net.t ->
  port:Net.client_port ->
  round:int ->
  filter:(Messages.to_client -> 'a option) ->
  'a list
(** [acks ~net ~port ~round ~filter] returns the filtered payloads
    collected, in server-id order.  [round] is the tag returned by the
    {!Net.ss_broadcast} this wait answers.  [filter] selects/decodes the
    expected acknowledgment kind; non-matching bodies from a server are
    ignored (a Byzantine server may send anything). *)

val ack_writes :
  net:Net.t -> port:Net.client_port -> round:int -> Messages.help list
(** Collect ACK_WRITE payloads (helping values). *)

val ack_reads :
  net:Net.t ->
  port:Net.client_port ->
  round:int ->
  (Messages.cell * Messages.help) list
(** Collect ACK_READ payloads ((last_val, helping_val) pairs). *)
