(** Filling an {!Obs.Report} from a deployment's metrics registry.

    Drivers call {!observe} once per run (typically on the first
    configuration they execute): it copies the system parameters, the
    per-message-class traffic counters ([msg.sent.*] / [msg.recv.*]),
    every populated ["op.<reg>.<op>"] latency histogram, and the scalar
    counters into the report.  Calling it twice on the same report would
    duplicate the message/op sections, so the caller gates it. *)

val mode_string : Registers.Params.t -> string
(** ["async"] or ["sync"]. *)

val observe_params : Obs.Report.t -> Registers.Params.t -> unit
(** Set [params] from the model parameters; first call wins. *)

val observe_metrics : Obs.Report.t -> Obs.Metrics.t -> unit
(** Copy message classes, op summaries and counters from a raw registry
    (for drivers without a {!Scenario}). *)

val observe : Obs.Report.t -> Scenario.t -> unit
(** {!observe_params} + {!observe_metrics} for a scenario. *)

val observe_trace : Obs.Report.t -> Sim.Trace.t -> unit
(** {!observe_metrics} on a trace's registry (for drivers that only hand
    back a [Sim.Trace.t]). *)
