(* CHAOS: randomized fault-schedule campaigns against one register family,
   with counterexample shrinking and deterministic replay.

     dune exec bin/experiments.exe -- chaos --family regular --trials 5
     dune exec bin/experiments.exe -- chaos --family regular --byz 3 \
       --strategy collude --expect violation
     dune exec bin/experiments.exe -- chaos --replay examples/chaos/....json
*)

open Chaos

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let parent = Filename.dirname path in
  if parent <> "" && parent <> "." then Obs.Report.mkdir_p parent;
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let artifact_path ~out ~family ~index ~trial_seed =
  Filename.concat out
    (Printf.sprintf "%s-trial%d-seed%d.json"
       (Campaign.family_to_string family)
       index trial_seed)

(* Run one campaign; returns the violating trials' artifact paths. *)
let run ~family ~medium ~byz ~strategy ~seed ~trials ~domains ~out ?recorder
    () =
  let base = Campaign.default_config ~family in
  let cfg =
    {
      base with
      Campaign.medium;
      initial = List.init byz (fun i -> (i, strategy));
    }
  in
  Printf.printf
    "chaos campaign: family=%s medium=%s n=%d t=%d initial=[%s] trials=%d \
     seed=%d domains=%d\n\n"
    (Campaign.family_to_string family)
    (match medium with Campaign.Fifo -> "fifo" | Campaign.Lossy -> "lossy")
    cfg.Campaign.n cfg.Campaign.f
    (String.concat "; "
       (List.map
          (fun (slot, s) ->
            Printf.sprintf "s%d:%s" slot (Strategy.to_string s))
          cfg.Campaign.initial))
    trials seed domains;
  let on_scenario ~trial scn =
    if trial = 0 then begin
      Common.attach_trace_sink (Harness.Scenario.hub scn);
      Common.observe_scn scn
    end
  in
  let result =
    Campaign.run ~on_scenario ~log:print_endline ?recorder ~domains cfg ~seed
      ~trials
  in
  print_newline ();
  let artifacts =
    List.filter_map
      (fun (t : Campaign.trial) ->
        match t.repro with
        | None -> None
        | Some repro ->
          let path =
            artifact_path ~out ~family ~index:t.index
              ~trial_seed:t.trial_seed
          in
          write_file path
            (Obs.Json.to_string_pretty (Campaign.repro_to_json repro));
          Printf.printf
            "trial %d: %s -> shrunk to %d event(s) in %d run(s), repro: %s\n"
            t.index
            (Campaign.verdict_kind t.outcome.Campaign.verdict)
            (List.length repro.Campaign.schedule)
            t.shrink_runs path;
          Some path)
      result.Campaign.trials
  in
  let violations = Campaign.violations result in
  Printf.printf "%d/%d trial(s) violated\n" (List.length violations) trials;
  Common.add_extra "chaos"
    (Obs.Json.Obj
       [
         ("family", Obs.Json.Str (Campaign.family_to_string family));
         ("trials", Obs.Json.Int trials);
         ("domains", Obs.Json.Int domains);
         ("violations", Obs.Json.Int (List.length violations));
         ( "verdicts",
           Obs.Json.List
             (List.map
                (fun (t : Campaign.trial) ->
                  Obs.Json.Str (Campaign.verdict_kind t.outcome.Campaign.verdict))
                result.Campaign.trials) );
         ("artifacts", Obs.Json.List (List.map (fun p -> Obs.Json.Str p) artifacts));
       ]);
  violations

(* Replay a repro artifact; Ok when the replay reproduces the recorded
   verdict kind. *)
let replay path =
  match Obs.Json.parse (read_file path) with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok j -> (
    match Campaign.repro_of_json j with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok repro ->
      let on_scenario scn =
        Common.attach_trace_sink (Harness.Scenario.hub scn);
        Common.observe_scn scn
      in
      let outcome = Campaign.replay ~on_scenario repro in
      Format.printf "recorded verdict: %a@." Campaign.pp_verdict
        repro.Campaign.verdict;
      Format.printf "replayed verdict: %a@." Campaign.pp_verdict
        outcome.Campaign.verdict;
      Printf.printf "schedule: %d event(s), %d ops, %d ticks\n"
        (List.length repro.Campaign.schedule)
        outcome.Campaign.ops outcome.Campaign.duration;
      Common.add_extra "chaos_replay"
        (Obs.Json.Obj
           [
             ("artifact", Obs.Json.Str path);
             ( "recorded",
               Obs.Json.Str (Campaign.verdict_kind repro.Campaign.verdict) );
             ( "replayed",
               Obs.Json.Str (Campaign.verdict_kind outcome.Campaign.verdict) );
           ]);
      if Campaign.same_verdict repro.Campaign.verdict outcome.Campaign.verdict
      then begin
        Printf.printf "replay reproduced the recorded verdict\n";
        Ok ()
      end
      else Error "replay did NOT reproduce the recorded verdict")
