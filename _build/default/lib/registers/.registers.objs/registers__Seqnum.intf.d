lib/registers/seqnum.mli: Format
