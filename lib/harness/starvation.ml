type outcome = {
  starved : bool;
  rounds_used : int;
  returned : Registers.Value.t option;
  params : Registers.Params.t;
  trace : Sim.Trace.t;
}

let predicted_starvation ~n ~f ~sync =
  if sync then
    (* f junk + (n-f) correct split two ways: no side reaches f+1 iff
       ceil((n-f)/2) <= f, i.e. n <= 3f. *)
    ((n - f) + 1) / 2 <= f
  else
    (* f junk + (n-2f) sampled correct split two ways (the other f correct
       acks are delayed out of the sample): no side reaches 2f+1 iff
       ceil((n-2f)/2) <= 2f, i.e. n <= 6f. *)
    ((n - (2 * f)) + 1) / 2 <= 2 * f

let scripted = Script.scripted

let far = Script.far

(* Link-creation order (see Net.add_client): the writer's port first
   (n client->server links, then n server->client), then the reader's. *)
let build_link_delay ~n ~f ~sync =
  let max_delay = 10 in
  let sampled_correct = if sync then n - f else n - (2 * f) in
  let fresh = (sampled_correct + 1) / 2 in
  (* Servers f .. f+fresh-1 receive each write quickly; the rest of the
     correct servers late. *)
  let call = ref 0 in
  fun _rng ->
    incr call;
    let c = !call in
    if c <= n then begin
      (* writer -> server (c-1) *)
      let server = c - 1 in
      if server < f then scripted [] 1 (* Byzantine: immaterial *)
      else if server < f + fresh then scripted [] 1
      else if sync then
        (* Timely but maximally slow: the widest split window the
           synchronous model allows.  The first write and its help
           broadcast settle quickly. *)
        scripted [ 1; 1 ] max_delay
      else
        (* Asynchronous: after the initial write (and its help refresh),
           every subsequent write stays in flight across the whole
           experiment. *)
        scripted [ 1; 1 ] far
    end
    else if c <= 2 * n then scripted [] 1 (* server -> writer acks *)
    else if c <= 3 * n then scripted [] 1 (* reader -> server *)
    else begin
      (* server (c - 3n - 1) -> reader acknowledgments *)
      let server = c - (3 * n) - 1 in
      if (not sync) && server >= n - f then
        (* Async: the last f correct servers never make it into the
           reader's (n-t)-acknowledgment sample. *)
        scripted [] far
      else scripted [] 1
    end

let run ~n ~f ?(sync = false) ?(budget = 6) ?(instrument = fun _ -> ()) () =
  if f < 1 || n <= 2 * f then invalid_arg "Starvation.run: need n > 2f >= 2";
  let params =
    if sync then
      Registers.Params.create_unchecked ~n ~f
        ~mode:(Registers.Params.Sync { max_delay = 10; slack = 3 }) ()
    else Registers.Params.create_unchecked ~n ~f ~mode:Registers.Params.Async ()
  in
  let rng = Sim.Rng.create 1 in
  let trace = Sim.Trace.create ~record_events:false () in
  let engine = Sim.Engine.create ~trace ~rng () in
  instrument engine;
  let net =
    Registers.Net.create ~engine ~params
      ~link_delay:(build_link_delay ~n ~f ~sync) ()
  in
  let adversary = Byzantine.Adversary.deploy ~net ~rng:(Sim.Rng.split rng) in
  for s = 0 to f - 1 do
    Byzantine.Adversary.compromise adversary s Byzantine.Behavior.equivocate
  done;
  let w = Registers.Swsr_regular.writer ~net ~client_id:100 ~inst:0 in
  let r = Registers.Swsr_regular.reader ~net ~client_id:101 ~inst:0 in
  let sleep d = Sim.Fiber.suspend (fun k -> Sim.Engine.schedule engine ~delay:d k) in
  let returned = ref None in
  let writes = if sync then 400 else 2 in
  ignore
    (Sim.Fiber.spawn ~name:"writer" (fun () ->
         for i = 1 to writes do
           Registers.Swsr_regular.write w (Registers.Value.int i)
         done));
  ignore
    (Sim.Fiber.spawn ~name:"reader" (fun () ->
         sleep 15;
         returned := Registers.Swsr_regular.read ~max_iterations:budget r));
  (* The asynchronous schedule keeps a write pending essentially forever;
     cap the run well past the reader's budget. *)
  Sim.Engine.run ~until:(Sim.Vtime.of_int (far / 2)) engine;
  {
    starved = !returned = None;
    rounds_used = Registers.Swsr_regular.reader_iterations r;
    returned = !returned;
    params;
    trace;
  }
