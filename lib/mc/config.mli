(** Model-checking configurations: a small, fully deterministic instance of
    one register family plus a bounded menu of transient-corruption choices.

    Everything nondeterministic in a chaos campaign (sampled delays,
    RNG-driven fault payloads, randomized Byzantine replies) is pinned to a
    deterministic choice here, so that the explorer's only sources of
    branching are {e which pending event fires next} and {e which menu item
    (if any) strikes} — the nondeterminism the paper's theorems quantify
    over. *)

type family = Regular | Atomic | Mwmr

val family_to_string : family -> string

val family_of_string : string -> (family, string) result

type byz_kind =
  | Silent  (** never replies — the strongest omission adversary *)
  | Collude of { sn : int; v : int }
      (** always replies with the fixed cell [(sn, Int v)] *)

type corruption =
  | Corrupt_server of { server : int; sn : int; v : int }
      (** overwrite every instance of [server]'s state with the cell
          [(sn, Int v)] (both [last_val] and [helping]) *)
  | Corrupt_reader of { pwsn : int; v : int }
      (** atomic family only: force the reader's [(pwsn, pv)] bookkeeping *)
  | Corrupt_writer_sn of int  (** atomic family only: force the wsn *)
  | Corrupt_round of { client : int; round : int }
      (** overwrite a client port's data-link round tag *)
  | Crash_recover of { server : int }
      (** crash-recovery: the server instantaneously rejoins with its
          volatile state wiped to pristine [bot] content (the model-step
          rendering of a crash plus recovery with lost state) *)

type oracle =
  | Family_default
      (** regularity for [Regular], SW atomicity for [Atomic], MW atomicity
          for [Mwmr] *)
  | Atomic_oracle
      (** force the SW atomicity oracle — checking the {e regular} register
          against it exhibits the Fig. 1 new/old inversion *)

val oracle_to_string : oracle -> string

val oracle_of_string : string -> (oracle, string) result

type t = {
  family : family;
  n : int;
  f : int;  (** the declared bound [t] the protocol is parameterized with *)
  byz : (int * byz_kind) list;
      (** actual compromised slots — may exceed [f] (over-bound runs) *)
  writes : int;  (** writes per writer *)
  reads : int;  (** reads per reader *)
  read_budget : int;  (** max inquiry iterations per read *)
  menu : corruption list;
      (** transient-corruption choices; the explorer may fire each at most
          once per execution, at any point where some client is active *)
  oracle : oracle;
}

val default : family:family -> t
(** n = 9, f = 1, no byzantine servers, 1 write, 1 read, budget 8, empty
    menu, family-default oracle. *)

val validate : t -> (unit, string) result

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
(** Parses and {!validate}s. *)
