lib/harness/scenario.ml: Array Byzantine Oracles Printf Registers Sim
