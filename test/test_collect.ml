(* The deadline-bounded collect layer: round-mismatch filtering, the
   retry loop, and the Ok / Degraded / Timed_out classification.

   Each test wires a bare net with honest automatons on a chosen subset
   of the server slots — the silent remainder is how we starve a collect
   of its quota without any Byzantine machinery. *)

open Util
open Registers

let setup ?(n = 9) ?(f = 1) ?(honest = 9) ?(seed = 5) () =
  let rng = Sim.Rng.create seed in
  let engine = Sim.Engine.create ~rng:(Sim.Rng.split rng) () in
  let params =
    Params.create_exn ~retry:Params.default_retry ~n ~f ~mode:Params.Async ()
  in
  let net =
    Net.create ~engine ~params ~link_delay:(fun rng ->
        Sim.Link.uniform rng ~lo:1 ~hi:10) ()
  in
  for i = 0 to honest - 1 do
    Net.install_honest_server net (Server.create ~id:i)
  done;
  (engine, net)

let write_body = Messages.Write { sn = 1; v = Value.int 7 }

let test_attempt_ignores_stale_round () =
  (* 7 honest slots against an ack_wait quota of 8; slot 8 answers with
     the PREVIOUS round's tag.  If the round filter leaked, the stale
     ack would complete the quota; instead the attempt must expire with
     exactly the 7 legitimate acknowledgments. *)
  let engine, net = setup ~honest:7 () in
  let port = Net.add_client net ~id:0 in
  let got = ref None in
  run_engine_fiber engine (fun () ->
      let round = Net.ss_broadcast net port ~inst:0 write_body in
      Net.reply net ~server:8 ~client:0 (Messages.Ack_write None)
        ~round:(round - 1);
      got :=
        Some
          (Collect.attempt_once ~net ~port ~round ~attempt:0
             ~filter:Collect.write_filter));
  match !got with
  | None -> Alcotest.fail "collect never returned"
  | Some (a : _ Collect.attempt) ->
    check_true "attempt deadline expired" a.expired;
    check_int "only current-round acks counted" 7 a.acks;
    check_int "stale payload filtered out" 7 (List.length a.payloads)

let test_retry_filters_late_previous_attempt_acks () =
  (* 7 fast slots plus one slow slot that acknowledges every request 100
     ticks later — past the attempt deadline.  During attempt k+1's
     window, the slow ack for attempt k's round arrives; it is tagged
     with the retired round and must not count, so every attempt tops
     out at 7 and the collect ends incomplete. *)
  let engine, net = setup ~honest:7 () in
  let slow = 8 in
  (Net.endpoints net).(slow).Net.on_deliver <-
    (fun (env : Messages.server_envelope) ->
      Sim.Engine.schedule engine ~delay:100 (fun () ->
          Net.reply net ~server:slow ~client:env.Messages.client
            (Messages.Ack_write None) ~round:env.Messages.round));
  let port = Net.add_client net ~id:0 in
  let got = ref None in
  run_engine_fiber engine (fun () ->
      got :=
        Some
          (Collect.retrying ~net ~port ~inst:0 ~body:write_body
             ~filter:Collect.write_filter ()));
  match !got with
  | None -> Alcotest.fail "collect never returned"
  | Some (c : _ Collect.collected) ->
    check_false "never reached the full quota" c.complete;
    check_int "late stale acks never counted" 7 c.acks;
    check_int "all retry attempts spent"
      (Option.get (Params.retry (Net.params net))).Params.attempts
      c.attempts

let test_retrying_full_service () =
  let engine, net = setup ~honest:9 () in
  let port = Net.add_client net ~id:0 in
  let got = ref None in
  run_engine_fiber engine (fun () ->
      let c =
        Collect.retrying ~net ~port ~inst:0 ~body:write_body
          ~filter:Collect.write_filter ()
      in
      got := Some (c, Collect.judge ~net ~port c));
  match !got with
  | None -> Alcotest.fail "collect never returned"
  | Some ((c : _ Collect.collected), o) ->
    check_true "full quota" c.complete;
    check_int "first try sufficed" 1 c.attempts;
    check_true "judged Ok" (Outcome.is_ok o)

let test_retrying_degraded () =
  (* 5 responders: at least a read quorum (2f+1 = 3) but below the full
     n-f = 8 quota -> Degraded, with the silent slots suspected. *)
  let engine, net = setup ~honest:5 () in
  let port = Net.add_client net ~id:0 in
  let got = ref None in
  run_engine_fiber engine (fun () ->
      let c =
        Collect.retrying ~net ~port ~inst:0 ~body:write_body
          ~filter:Collect.write_filter ()
      in
      got := Some (c, Collect.judge ~net ~port c));
  match !got with
  | None -> Alcotest.fail "collect never returned"
  | Some ((c : _ Collect.collected), o) -> (
    check_false "below the quota" c.complete;
    check_int "best attempt saw the responders" 5 c.acks;
    match o with
    | Outcome.Degraded r ->
      check_int "reason: acks" 5 r.Outcome.acks;
      check_int "reason: need" 8 r.Outcome.need;
      check_true "silent slots suspected" (r.Outcome.suspects <> [])
    | Outcome.Ok _ | Outcome.Timed_out _ ->
      Alcotest.fail "expected Degraded")

let test_retrying_timed_out () =
  (* 2 responders: below even the read quorum -> Timed_out. *)
  let engine, net = setup ~honest:2 () in
  let port = Net.add_client net ~id:0 in
  let got = ref None in
  run_engine_fiber engine (fun () ->
      let c =
        Collect.retrying ~net ~port ~inst:0 ~body:write_body
          ~filter:Collect.write_filter ()
      in
      got := Some (Collect.judge ~net ~port c));
  match !got with
  | None -> Alcotest.fail "collect never returned"
  | Some (Outcome.Timed_out r) ->
    check_int "reason: acks" 2 r.Outcome.acks
  | Some (Outcome.Ok _ | Outcome.Degraded _) ->
    Alcotest.fail "expected Timed_out"

let test_no_policy_is_legacy_blocking () =
  (* Without a retry policy the bounded entry points degenerate to the
     legacy semantics: a full complement of honest servers answers and
     no attempt accounting happens. *)
  let rng = Sim.Rng.create 5 in
  let engine = Sim.Engine.create ~rng:(Sim.Rng.split rng) () in
  let params = Params.create_exn ~n:9 ~f:1 ~mode:Params.Async () in
  let net =
    Net.create ~engine ~params ~link_delay:(fun rng ->
        Sim.Link.uniform rng ~lo:1 ~hi:10) ()
  in
  for i = 0 to 8 do
    Net.install_honest_server net (Server.create ~id:i)
  done;
  let port = Net.add_client net ~id:0 in
  let got = ref None in
  run_engine_fiber engine (fun () ->
      let c =
        Collect.retrying ~net ~port ~inst:0 ~body:write_body
          ~filter:Collect.write_filter ()
      in
      got := Some c);
  match !got with
  | Some (c : _ Collect.collected) ->
    check_true "complete" c.complete;
    check_int "one attempt" 1 c.attempts;
    check_int "quota met" 8 c.acks
  | None -> Alcotest.fail "collect never returned"

let tests =
  [
    case "attempt ignores stale rounds" test_attempt_ignores_stale_round;
    case "retry filters late previous-attempt acks"
      test_retry_filters_late_previous_attempt_acks;
    case "retrying: full service" test_retrying_full_service;
    case "retrying: degraded" test_retrying_degraded;
    case "retrying: timed out" test_retrying_timed_out;
    case "no policy = legacy blocking" test_no_policy_is_legacy_blocking;
  ]
