lib/registers/ss_transport.mli: Sim
