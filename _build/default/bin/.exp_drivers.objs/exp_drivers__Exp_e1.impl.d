bin/exp_e1.ml: Common Harness
