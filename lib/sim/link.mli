(** Directed FIFO reliable link with per-message sampled delays.

    Matches the paper's communication model (Section 2.1): each link is
    FIFO and reliable — no loss, corruption, duplication or creation —
    during normal operation.  Transient faults, however, may arbitrarily
    modify the link state (the messages in transit); {!corrupt_in_flight}
    and {!inject} exist for the fault injector, not for protocols.

    In the synchronous model of Section 3.3, delays on every link touching
    a correct process are bounded; build such links with a bounded
    {!sampler}. *)

type 'm t

type sampler = unit -> Vtime.span

val uniform : Rng.t -> lo:int -> hi:int -> sampler
(** Uniform integer delays in [\[lo, hi\]]. *)

val fixed : int -> sampler

val bimodal : Rng.t -> fast:int * int -> slow:int * int -> slow_probability:float -> sampler
(** Mostly-[fast] delays with occasional [slow] stragglers — a
    heavier-tailed medium that exercises interleavings uniform sampling
    rarely produces. *)

val create :
  engine:Engine.t -> delay:sampler -> name:string -> deliver:('m -> unit) -> 'm t
(** [create ~engine ~delay ~name ~deliver] is a link whose receiving end
    processes each message with [deliver].  Every delivery bumps the
    engine-trace counter ["net.msgs"]. *)

val send : 'm t -> 'm -> unit
(** Transmit a message.  Arrival time is [now + delay ()], pushed later if
    needed to preserve FIFO order with messages already in flight. *)

val send_timed : ?on_delivered:(unit -> unit) -> 'm t -> 'm -> Vtime.t
(** Like {!send}, also returning the chosen arrival instant.
    [on_delivered] fires when the message's delivery event does, after the
    receiver processed it — and even if a transient fault dropped the
    payload in transit (the delivery slot still happened).  The
    ss-broadcast implementation counts these callbacks to realize the
    synchronized delivery property (return after the (n-2t)-th correct
    delivery) under any scheduling order. *)

val in_flight : 'm t -> 'm list
(** Messages currently in transit, in arrival order. *)

val corrupt_in_flight : 'm t -> ('m -> 'm option) -> unit
(** Transient-fault hook: rewrite each in-transit message; [None] drops it.
    Arrival times are unchanged. *)

val inject : 'm t -> 'm -> unit
(** Transient-fault hook: add a spurious message to the link (it obeys the
    same FIFO arrival discipline as {!send}). *)
