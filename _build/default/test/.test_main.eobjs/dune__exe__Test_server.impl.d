test/test_server.ml: Alcotest List Messages Registers Server Sim Util Value
